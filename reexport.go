package iabc

// This file is the facade's vocabulary: aliases and thin wrappers
// re-exporting the implementation types a caller needs to drive Simulate,
// Sweep, Check, and MaxF — graphs and topologies, node sets, update rules,
// Byzantine strategies, delay policies, and the analysis helpers. The
// aliases are real type identities (not copies), so values cross the facade
// boundary without conversion; api/iabc.txt freezes this surface.

import (
	"fmt"
	"io"

	"iabc/internal/adversary"
	"iabc/internal/analysis"
	"iabc/internal/async"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/statestore"
	"iabc/internal/topology"
)

// —— Graphs and node sets ——

// Graph is an immutable directed graph (no self-loops); build one with
// NewBuilder, ParseEdgeList, or a topology constructor.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for an n-node graph.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// ParseEdgeList reads the "n <count>" header plus "from to" lines emitted
// by Graph.WriteEdgeList.
func ParseEdgeList(r io.Reader) (*Graph, error) { return graph.ParseEdgeList(r) }

// Set is a fixed-capacity bitset of node IDs.
type Set = nodeset.Set

// NewSet returns an empty set over node IDs [0, n).
func NewSet(n int) Set { return nodeset.New(n) }

// SetOf returns a set over [0, n) containing the given members.
func SetOf(n int, members ...int) Set { return nodeset.FromMembers(n, members...) }

// —— Paper topologies ——

// Complete returns the complete digraph K_n.
func Complete(n int) (*Graph, error) { return topology.Complete(n) }

// CoreNetwork returns the Definition 4 core network: a K_{2f+1} core whose
// members link bidirectionally to every peripheral node.
func CoreNetwork(n, f int) (*Graph, error) { return topology.CoreNetwork(n, f) }

// Chord returns the Definition 5 chord network: node i links
// bidirectionally to i±1, …, i±(f+1) (mod n).
func Chord(n, f int) (*Graph, error) { return topology.Chord(n, f) }

// Hypercube returns the d-dimensional bidirectional hypercube (§6.2).
func Hypercube(d int) (*Graph, error) { return topology.Hypercube(d) }

// Circulant returns the directed circulant: i → i+off (mod n) for every
// offset.
func Circulant(n int, offsets []int) (*Graph, error) { return topology.Circulant(n, offsets) }

// —— Algorithm 1 update rules ——

// UpdateRule is the node transition function Z_i.
type UpdateRule = core.UpdateRule

// ValueFrom is one received (value, sender) pair.
type ValueFrom = core.ValueFrom

// TrimmedMean is Algorithm 1's rule: drop the f largest and f smallest
// received values, average the survivors with the own state.
type TrimmedMean = core.TrimmedMean

// Mean averages all received values with the own state (f = 0 baseline).
type Mean = core.Mean

// —— Byzantine strategies ——

// Strategy decides the transmissions of faulty nodes each round.
type Strategy = adversary.Strategy

// RoundView is the omniscient per-round snapshot handed to strategies.
type RoundView = adversary.RoundView

// EdgeSink receives a strategy's per-edge transmissions on the fast path.
type EdgeSink = adversary.EdgeSink

// EdgeWriter is the optional zero-allocation strategy fast path; implement
// it to keep the engines' round loops allocation-free.
type EdgeWriter = adversary.EdgeWriter

// The built-in strategies of the paper's attack repertoire.
type (
	// Conforming follows the algorithm correctly (faulty in name only).
	Conforming = adversary.Conforming
	// Fixed sends one constant value to every receiver.
	Fixed = adversary.Fixed
	// Silent sends nothing.
	Silent = adversary.Silent
	// RandomNoise sends independent uniform noise per receiver per round.
	RandomNoise = adversary.RandomNoise
	// Extremes alternates amplified extremes across receivers.
	Extremes = adversary.Extremes
	// PartitionAttack is the Theorem 1 impossibility adversary: it freezes
	// two insulated sets at distinct values forever.
	PartitionAttack = adversary.PartitionAttack
	// Hug hugs the fault-free range's edge from inside — the sharpest
	// in-range attack.
	Hug = adversary.Hug
	// Insider equivocates per-receiver values just inside each receiver's
	// trim window.
	Insider = adversary.Insider
)

// AdversaryByName resolves a built-in strategy by CLI name, seeding
// randomized ones from seed. See AdversaryNames for the accepted names.
func AdversaryByName(name string, seed int64) (Strategy, error) {
	strat, err := adversary.ByName(name, seed)
	if err != nil {
		return nil, fmt.Errorf("iabc: unknown adversary %q (want one of %v)", name, AdversaryNames())
	}
	return strat, nil
}

// AdversaryNames lists the names AdversaryByName accepts (the canonical
// name per strategy; "" and "none" are aliases of "conforming").
func AdversaryNames() []string { return adversary.Names() }

// —— Simulation results and sweep inputs ——

// Trace records a synchronous run (see the sim package for field docs).
type Trace = sim.Trace

// Scenario is one variation of the base configuration in a Sweep.
type Scenario = sim.Scenario

// SweepResult is Sweep's output, index-aligned with the scenarios.
type SweepResult = sim.SweepResult

// AsyncTrace records an asynchronous run.
type AsyncTrace = async.Trace

// RangePoint samples the fault-free range at a simulation time.
type RangePoint = async.RangePoint

// —— Asynchronous delay policies ——

// DelayPolicy assigns per-message delays in the Async engine.
type DelayPolicy = async.DelayPolicy

// FixedDelay delivers every message after exactly D time units.
type FixedDelay = async.Fixed

// UniformDelay draws delays uniformly from (0, B].
type UniformDelay = async.Uniform

// TargetedDelay is the adversarial scheduler: full bound B on messages
// from Slow senders, Fast for everyone else.
type TargetedDelay = async.Targeted

// —— Condition checking, analysis, and repair ——

// CheckResult reports an exact Theorem 1 decision with work counters.
type CheckResult = condition.Result

// Witness is a partition certifying a Theorem 1 violation; re-verify it
// with Witness.Verify.
type Witness = condition.Witness

// Violation is one failed polynomial-time necessary condition.
type Violation = condition.Violation

// MaxFStats aggregates the checker work across a MaxF scan.
type MaxFStats = condition.MaxFStats

// RepairResult is Repair's output: the augmented graph and added edges.
type RepairResult = condition.RepairResult

// SyncThreshold returns the synchronous in-link threshold f+1.
func SyncThreshold(f int) int { return condition.SyncThreshold(f) }

// AsyncThreshold returns the Section 7 asynchronous threshold 2f+1.
func AsyncThreshold(f int) int { return condition.AsyncThreshold(f) }

// QuickScreen evaluates the polynomial-time necessary conditions
// (Corollaries 2 and 3) without the exponential check; a non-empty result
// proves the condition fails, an empty one proves nothing.
func QuickScreen(g *Graph, f int) []Violation { return condition.QuickScreen(g, f) }

// QuickScreenAsync is QuickScreen for the Section 7 asynchronous model.
func QuickScreenAsync(g *Graph, f int) []Violation { return condition.QuickScreenAsync(g, f) }

// Repair greedily adds edges until the graph satisfies the Theorem 1
// condition for f, within the given edge budget.
func Repair(g *Graph, f, maxEdges int) (*RepairResult, error) {
	return condition.Repair(g, f, maxEdges)
}

// —— Scan persistence (WithStateDir / WithBackend) ——

// StateBackend is the pluggable persistence layer behind WithBackend:
// a small keyed byte store over which Check and MaxF checkpoint scan
// progress and cache verdicts. Keys are slash-separated path-like strings;
// implementations must make Write atomic and return ErrStateNotFound from
// Read on absent keys.
type StateBackend = statestore.Backend

// DirBackend persists state as files under a local directory; build one
// with NewDirBackend, or let WithStateDir do it.
type DirBackend = statestore.Dir

// MemBackend is an in-memory StateBackend for tests and single-process
// pipelines.
type MemBackend = statestore.Mem

// ErrStateNotFound is returned by StateBackend.Read for absent keys.
var ErrStateNotFound = statestore.ErrNotFound

// NewDirBackend returns a DirBackend rooted at dir, creating it if absent.
func NewDirBackend(dir string) (*DirBackend, error) { return statestore.NewDir(dir) }

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return statestore.NewMem() }

// Alpha returns the Lemma 5 contraction parameter α for (g, f).
func Alpha(g *Graph, f int) (float64, error) { return analysis.Alpha(g, f) }

// RoundsToEpsilonBound returns the worst-case rounds bound to shrink
// initialRange below eps at contraction α.
func RoundsToEpsilonBound(n, f int, alpha, initialRange, eps float64) (int, error) {
	return analysis.RoundsToEpsilonBound(n, f, alpha, initialRange, eps)
}
