package iabc

// The facade's distributed arm: WithCoordinator / WithWorkerPool route
// Check, MaxF, and Sweep through internal/distrib's coordinator–worker job
// protocol, and Work is the worker entry point remote processes call to
// join. The contract mirrors WithWorkers: results are bit-identical to the
// single-process run at any worker count — and, here, under any schedule of
// worker crashes and lease re-executions.

import (
	"context"
	"sync"

	"iabc/internal/distrib"
)

// Work joins the coordinator listening at addr (see WithCoordinator or
// `iabc coordinate`) and processes jobs until the coordinator finishes —
// a clean nil return — or ctx is canceled. Workers are stateless: any
// number may join, leave, or crash without affecting results.
func Work(ctx context.Context, addr string) error {
	return distrib.Work(ctx, addr, distrib.WorkerOptions{})
}

// distributed reports whether the call should run through a coordinator.
func (c *config) distributed() bool { return c.coordAddr != "" || c.workerPool > 0 }

// startCoordinator binds the call's coordinator and starts the local worker
// pool. The returned stop func tears both down; it is safe to call after
// the work completed or failed.
func (c *config) startCoordinator() (*distrib.Coordinator, func(), error) {
	addr := c.coordAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	coord := distrib.NewCoordinator(distrib.Options{})
	if err := coord.Listen(addr); err != nil {
		return nil, nil, err
	}
	wctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < c.workerPool; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			distrib.Work(wctx, coord.Addr(), distrib.WorkerOptions{})
		}()
	}
	stop := func() {
		coord.Close()
		cancel()
		wg.Wait()
	}
	return coord, stop, nil
}

// emitCoordinatorEvent reports the scheduling summary once the work is done.
func emitCoordinatorEvent(obs Observer, coord *distrib.Coordinator) {
	if obs == nil {
		return
	}
	s := coord.Stats()
	obs(Event{Kind: EventCoordinator, Name: coord.Addr(), Done: s.JobsGranted, Total: s.WorkersSeen})
}
