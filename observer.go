package iabc

// EventKind discriminates the progress events an Observer receives.
type EventKind int

const (
	// EventRound reports one completed simulation step: a synchronous round
	// (Round, Range; Round 0 is the initial condition) or an asynchronous
	// fault-free state change (Time, Range).
	EventRound EventKind = iota
	// EventScenarioDone reports one completed sweep scenario (Scenario,
	// Name, Round = rounds executed, Range = final fault-free range).
	EventScenarioDone
	// EventCheckProgress reports exact-checker progress (F, Done =
	// fault sets processed, Total = full extent or 0 when unknown).
	EventCheckProgress
	// EventCheckDone reports one completed check of a MaxF scan (F,
	// Satisfied).
	EventCheckDone
	// EventNodeUpdate reports one fault-free state change in a cluster run
	// (Node, Round = the node's new round counter, Value = its new
	// estimate, Range = fault-free range after the change).
	EventNodeUpdate
	// EventCoordinator summarizes a distributed call's scheduling after the
	// work completes (Name = the coordinator's listen address, Done = jobs
	// granted, Total = workers that joined).
	EventCoordinator
)

// Event is one streaming progress report. Only the fields documented for
// the respective Kind are meaningful.
type Event struct {
	Kind EventKind
	// Round is the completed round (EventRound, synchronous) or the rounds
	// a scenario executed (EventScenarioDone).
	Round int
	// Range is the fault-free range U−µ after the step or scenario.
	Range float64
	// Time is the simulation time of an asynchronous state change
	// (EventRound from the Async engine).
	Time float64
	// Scenario is the completed scenario's index (EventScenarioDone).
	Scenario int
	// Name is the completed scenario's resolved name (EventScenarioDone).
	Name string
	// F is the fault-tolerance parameter being checked (EventCheckProgress,
	// EventCheckDone).
	F int
	// Satisfied is the completed check's verdict (EventCheckDone).
	Satisfied bool
	// Done and Total count processed vs. expected fault sets
	// (EventCheckProgress); Total is 0 when the extent exceeds the int64
	// binomial table.
	Done, Total int64
	// Node is the node whose state changed (EventNodeUpdate).
	Node int
	// Value is the node's new estimate (EventNodeUpdate).
	Value float64
}

// Observer receives streaming progress events from Simulate, Sweep, Check,
// MaxF, and Cluster — progress without waiting for (or materializing) the
// result.
// Events are delivered synchronously from the hot coordinators, serialized
// by the facade even when the work runs on multiple goroutines, so the
// callback must be fast; a slow observer slows the run.
type Observer func(Event)
