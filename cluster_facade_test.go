package iabc_test

// Facade contract of Cluster: conformance to the deterministic Async engine
// in the loss-free f = 0 regime, chaos convergence with serialized observer
// streaming, caller-owned transport semantics, and option-level errors.

import (
	"context"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iabc"
)

func clusterInitial(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64((i*7)%n) + 0.25
	}
	return v
}

// TestClusterMatchesSimulateAsync pins the live cluster against the
// deterministic conformance oracle: with f = 0 and loss-free delivery the
// quorum is the full in-neighborhood, the result is arrival-order
// independent, and the fault-free finals must be bit-identical to the Async
// engine's under any fixed delay.
func TestClusterMatchesSimulateAsync(t *testing.T) {
	g, err := iabc.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	initial := clusterInitial(g.N())
	const maxRounds = 15
	opts := []iabc.Option{iabc.WithInitial(initial), iabc.WithMaxRounds(maxRounds)}

	want, err := iabc.Simulate(context.Background(), g, append(opts,
		iabc.WithEngine(iabc.Async), iabc.WithDelays(iabc.FixedDelay{D: 1}))...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := iabc.Cluster(context.Background(), g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Final {
		if math.Float64bits(want.Final[i]) != math.Float64bits(got.Final[i]) {
			t.Errorf("final[%d]: cluster %v vs async engine %v", i, got.Final[i], want.Final[i])
		}
	}
	if got.Updates != int64(g.N()*maxRounds) {
		t.Errorf("updates = %d, want %d", got.Updates, g.N()*maxRounds)
	}
}

// TestClusterChaosFacade runs a faulty cluster under WithChaos and asserts
// ε-convergence, the validity (hull) invariant on every streamed update,
// and that observer delivery is serialized.
func TestClusterChaosFacade(t *testing.T) {
	g, err := iabc.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	initial := clusterInitial(n)
	lo0, hi0 := math.Inf(1), math.Inf(-1)
	for i := 0; i < n-1; i++ { // node n-1 is faulty
		lo0, hi0 = math.Min(lo0, initial[i]), math.Max(hi0, initial[i])
	}

	var inObserver atomic.Int32
	var updates int64
	res, err := iabc.Cluster(context.Background(), g,
		iabc.WithInitial(initial),
		iabc.WithF(1), iabc.WithFaulty(n-1),
		iabc.WithAdversary(iabc.Extremes{Amplitude: 3}),
		iabc.WithEpsilon(1e-6), iabc.WithMaxRounds(80),
		iabc.WithResendEvery(2*time.Millisecond),
		iabc.WithStallAfter(3*time.Second),
		iabc.WithChaos(iabc.ChaosConfig{
			Seed: 11, Drop: 0.2, Dup: 0.1, MaxDelay: 2 * time.Millisecond,
		}),
		iabc.WithObserver(func(e iabc.Event) {
			if inObserver.Add(1) != 1 {
				t.Error("observer invoked concurrently")
			}
			defer inObserver.Add(-1)
			if e.Kind != iabc.EventNodeUpdate {
				t.Errorf("unexpected event kind %d", e.Kind)
				return
			}
			updates++
			if e.Value < lo0-1e-9 || e.Value > hi0+1e-9 {
				t.Errorf("node %d round %d: value %v outside initial hull [%v, %v]",
					e.Node, e.Round, e.Value, lo0, hi0)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: stalled=%v finalRange=%v", res.Stalled, res.FinalRange)
	}
	if res.FinalRange > 1e-6 {
		t.Errorf("final range %v > epsilon", res.FinalRange)
	}
	if updates != res.Updates {
		t.Errorf("observer saw %d updates, result reports %d", updates, res.Updates)
	}
}

// TestClusterCallerOwnedTransport checks WithTransport semantics: the run
// uses the caller's chaos wrapper and leaves it open, so its fault counters
// can be inspected after the run.
func TestClusterCallerOwnedTransport(t *testing.T) {
	g, err := iabc.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	ch := iabc.NewChaosTransport(iabc.NewInprocTransport(g.N(), 0), iabc.ChaosConfig{
		Seed: 3, Drop: 0.1, MaxDelay: time.Millisecond,
	})
	defer ch.Close()
	res, err := iabc.Cluster(context.Background(), g,
		iabc.WithInitial(clusterInitial(g.N())),
		iabc.WithTransport(ch),
		iabc.WithEpsilon(1e-9), iabc.WithMaxRounds(60),
		iabc.WithResendEvery(2*time.Millisecond),
		iabc.WithStallAfter(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: stalled=%v finalRange=%v", res.Stalled, res.FinalRange)
	}
	stats := ch.Stats()
	if stats.Sent == 0 {
		t.Error("caller-owned transport saw no traffic")
	}
	// Still open after the run: a send must not fail with ErrTransportClosed.
	if err := ch.Send(context.Background(), 0, 1, iabc.Msg{}); err != nil {
		t.Errorf("caller-owned transport closed by the run: %v", err)
	}
}

// TestClusterOptionErrors covers Cluster's option-level failure modes.
func TestClusterOptionErrors(t *testing.T) {
	g, err := iabc.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	initial := clusterInitial(g.N())

	_, err = iabc.Cluster(context.Background(), g,
		iabc.WithInitial(initial),
		iabc.WithTransport(iabc.NewInprocTransport(g.N(), 0)),
		iabc.WithChaos(iabc.ChaosConfig{Drop: 0.5}))
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("WithTransport+WithChaos: err = %v, want mutual-exclusion error", err)
	}

	_, err = iabc.Cluster(context.Background(), g, iabc.WithInitial(initial), iabc.WithTransport(nil))
	if err == nil || !strings.Contains(err.Error(), "WithTransport(nil)") {
		t.Errorf("WithTransport(nil): err = %v", err)
	}

	if _, err = iabc.Cluster(context.Background(), g); err == nil {
		t.Error("missing WithInitial: want validation error")
	}

	_, err = iabc.Cluster(context.Background(), g,
		iabc.WithInitial(initial), iabc.WithFaulty(0))
	if err == nil || !strings.Contains(err.Error(), "Adversary") {
		t.Errorf("faulty without adversary: err = %v", err)
	}
}
