package iabc_test

// Docs-vs-tree consistency: every Go symbol README.md and docs/THEORY.md
// name in backticks must resolve in this repository, so refactors cannot
// silently strand the documentation. The CI docs job runs this test
// explicitly; it also runs under plain `go test ./...`.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// symbolIndex records what the tree declares.
type symbolIndex struct {
	// packages maps package name → set of exported top-level identifiers
	// (types, funcs, consts, vars).
	packages map[string]map[string]bool
	// members maps type name → set of exported methods (incl. interface
	// methods) and struct field names, across all packages.
	members map[string]map[string]bool
}

func buildSymbolIndex(t *testing.T, root string) *symbolIndex {
	t.Helper()
	idx := &symbolIndex{
		packages: map[string]map[string]bool{},
		members:  map[string]map[string]bool{},
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == ".github" || name == "docs" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pkg := strings.TrimSuffix(file.Name.Name, "_test")
		decls := idx.packages[pkg]
		if decls == nil {
			decls = map[string]bool{}
			idx.packages[pkg] = decls
		}
		addMember := func(typeName, member string) {
			if !ast.IsExported(member) {
				return
			}
			if idx.members[typeName] == nil {
				idx.members[typeName] = map[string]bool{}
			}
			idx.members[typeName][member] = true
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					decls[d.Name.Name] = true
					continue
				}
				if typ := receiverTypeName(d.Recv); typ != "" {
					addMember(typ, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						decls[s.Name.Name] = true
						switch tt := s.Type.(type) {
						case *ast.StructType:
							for _, f := range tt.Fields.List {
								for _, n := range f.Names {
									addMember(s.Name.Name, n.Name)
								}
							}
						case *ast.InterfaceType:
							for _, m := range tt.Methods.List {
								for _, n := range m.Names {
									addMember(s.Name.Name, n.Name)
								}
							}
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							decls[n.Name] = true
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("indexing tree: %v", err)
	}
	return idx
}

func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

var (
	backtickSpan = regexp.MustCompile("`([^`]+)`")
	qualifiedRef = regexp.MustCompile(`\b([A-Za-z][A-Za-z0-9]*)\.([A-Z][A-Za-z0-9]*)(?:\.([A-Za-z][A-Za-z0-9]*))?`)
)

// TestDocsSymbolsResolve greps README.md and docs/THEORY.md for
// backtick-quoted qualified references — pkg.Symbol, pkg.Type.Member, and
// Type.Member — and fails on any that no longer resolve in the tree.
func TestDocsSymbolsResolve(t *testing.T) {
	idx := buildSymbolIndex(t, ".")
	for _, doc := range []string{"README.md", filepath.Join("docs", "THEORY.md")} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		for _, span := range backtickSpan.FindAllStringSubmatch(string(data), -1) {
			for _, ref := range qualifiedRef.FindAllStringSubmatch(span[1], -1) {
				first, second, third := ref[1], ref[2], ref[3]
				if ast.IsExported(first) {
					// Type.Member (e.g. `Witness.Verify`): some type in the
					// tree must carry the member.
					if !idx.members[first][second] {
						t.Errorf("%s: `%s` names member %s.%s, which no type in the tree declares",
							doc, ref[0], first, second)
					}
					continue
				}
				decls, known := idx.packages[first]
				if !known {
					continue // not a package of this repo (e.g. stdlib, file names)
				}
				if !decls[second] {
					t.Errorf("%s: `%s` names %s.%s, which package %s does not declare",
						doc, ref[0], first, second, first)
					continue
				}
				if third != "" && ast.IsExported(third) && !idx.members[second][third] {
					t.Errorf("%s: `%s` names member %s.%s.%s, which type %s does not declare",
						doc, ref[0], first, second, third, second)
				}
			}
		}
	}
}

// TestTheoryGuideLinked pins the docs contract: docs/THEORY.md exists and
// README.md links to it.
func TestTheoryGuideLinked(t *testing.T) {
	if _, err := os.Stat(filepath.Join("docs", "THEORY.md")); err != nil {
		t.Fatalf("docs/THEORY.md missing: %v", err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "docs/THEORY.md") {
		t.Fatal("README.md does not link docs/THEORY.md")
	}
}
