package iabc_test

// Kill-mid-scan resume: the tentpole integration test. A subprocess starts a
// MaxF sweep over a state directory and is SIGKILLed mid-flight — a real
// process death, not a context cancel — then the scan is restarted in this
// process with the same directory. The resumed run must settle on the same
// best f with stats totals identical to an uninterrupted run, and a second
// full run of the settled graph must be served from the verdict cache.

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"iabc"
)

// stateKillTopo is the kill-resume workload: large enough that the f sweep
// runs for seconds (so the kill lands mid-scan and the 1s checkpoint flush
// has fired), small enough to finish promptly when resumed.
func stateKillTopo(t testing.TB) *iabc.Graph {
	t.Helper()
	g, err := iabc.Chord(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStateDirKillHelper is the subprocess body, inert in a normal test run.
func TestStateDirKillHelper(t *testing.T) {
	dir := os.Getenv("IABC_STATE_KILL_DIR")
	if dir == "" {
		t.Skip("subprocess helper; driven by TestStateDirKillResumeEquivalence")
	}
	_, _, err := iabc.MaxFWithStats(context.Background(), stateKillTopo(t), iabc.WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
}

// waitForEntry polls for any file under dir/sub, returning false on timeout.
func waitForEntry(dir, sub string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err == nil && len(entries) > 0 {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

func TestStateDirKillResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second kill/resume integration test")
	}
	g := stateKillTopo(t)
	bestBase, statsBase, err := iabc.MaxFWithStats(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestStateDirKillHelper")
	cmd.Env = append(os.Environ(), "IABC_STATE_KILL_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the scan is demonstrably in flight (the maxf record appears
	// once the first check settles), give the time-based checkpoint flush a
	// chance to land a mid-check checkpoint too, then kill without ceremony.
	if !waitForEntry(dir, "maxf", 30*time.Second) {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("subprocess never wrote a maxf record")
	}
	waitForEntry(dir, "checkpoint", 2*time.Second)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exit *exec.ExitError
	if err == nil {
		// The scan finished before the kill landed; the resume below then
		// degenerates to a pure cache replay, which the test still verifies.
		t.Log("subprocess completed before SIGKILL; verifying cache path")
	} else if !errors.As(err, &exit) {
		t.Fatal(err)
	}

	best, stats, err := iabc.MaxFWithStats(context.Background(), g, iabc.WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if best != bestBase {
		t.Fatalf("resumed best=%d, uninterrupted best=%d", best, bestBase)
	}
	if stats.ChecksResumed == 0 && stats.FaultSetsResumed == 0 && stats.CacheHits == 0 {
		t.Fatal("resumed run inherited nothing from the killed process")
	}
	got := stats
	got.ChecksResumed, got.CacheHits, got.FaultSetsResumed = 0, 0, 0
	if got != statsBase {
		t.Fatalf("resumed stats differ from uninterrupted:\nbase    %+v\nresumed %+v", statsBase, got)
	}

	// The sweep settled: a fresh run over the same directory is answered
	// entirely from the verdict cache, with identical totals.
	best2, stats2, err := iabc.MaxFWithStats(context.Background(), g, iabc.WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if best2 != bestBase || stats2.CacheHits != stats2.ChecksRun || stats2.CacheHits == 0 {
		t.Fatalf("settled graph not served from cache: best=%d stats=%+v", best2, stats2)
	}
}

// TestWithBackendCheckResume covers the facade's backend plumbing without
// subprocesses: Check over an injected MemBackend caches its verdict, and
// WithStateDir/WithBackend together are rejected.
func TestWithBackendCheckResume(t *testing.T) {
	g := facadeGraph(t)
	mem := iabc.NewMemBackend()
	first, err := iabc.Check(context.Background(), g, 2, iabc.WithBackend(mem))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first check must not be a cache hit")
	}
	second, err := iabc.Check(context.Background(), g, 2, iabc.WithBackend(mem))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second check should hit the verdict cache")
	}
	second.CacheHit = false
	if second != first {
		t.Fatalf("cached check differs:\nfirst  %+v\nsecond %+v", first, second)
	}

	if _, err := iabc.Check(context.Background(), g, 2,
		iabc.WithBackend(mem), iabc.WithStateDir(t.TempDir())); err == nil {
		t.Fatal("WithBackend + WithStateDir should be rejected")
	}
	if _, err := iabc.Check(context.Background(), g, 2, iabc.WithStateDir("")); err == nil {
		t.Fatal(`WithStateDir("") should be rejected`)
	}
}
