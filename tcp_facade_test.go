package iabc_test

// Facade-level pins for the cross-process deployment model: several Cluster
// calls, each animating a share of the nodes (WithLocalNodes) over its own
// TCP transport instance, must together behave as one cluster — and at
// f = 0 over loss-free loopback finish bit-identical to the deterministic
// simulator. This is the in-process twin of the multi-process CI gate
// (scripts/multiprocess_gate.sh), which runs the same topology as separate
// `iabc serve` processes.

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"iabc"
)

// tcpShards builds one TCPTransportConfig per shard over pre-bound loopback
// listeners (race-free ephemeral ports: the transport adopts the listener).
func tcpShards(t *testing.T, shards [][]int) []iabc.TCPTransportConfig {
	t.Helper()
	n := 0
	for _, s := range shards {
		n += len(s)
	}
	addrs := make([]string, n)
	lns := make([]net.Listener, len(shards))
	for si, shard := range shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[si] = ln
		for _, id := range shard {
			addrs[id] = ln.Addr().String()
		}
	}
	cfgs := make([]iabc.TCPTransportConfig, len(shards))
	for si, shard := range shards {
		cfgs[si] = iabc.TCPTransportConfig{
			Addrs:    addrs,
			Local:    shard,
			Listener: lns[si],
		}
	}
	return cfgs
}

// TestClusterShardedOverTCPMatchesSimulator splits a 6-node complete graph
// across three facade Cluster calls — two nodes each, real sockets between
// them — and requires the combined finals to be bit-identical to Simulate's.
func TestClusterShardedOverTCPMatchesSimulator(t *testing.T) {
	g, err := iabc.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	initial := []float64{3, 1, 4, 1.5, 9.2, 6}
	const maxRounds = 15

	want, err := iabc.Simulate(context.Background(), g,
		iabc.WithInitial(initial), iabc.WithMaxRounds(maxRounds))
	if err != nil {
		t.Fatal(err)
	}

	shards := [][]int{{0, 1}, {2, 3}, {4, 5}}
	cfgs := tcpShards(t, shards)
	results := make([]*iabc.ClusterResult, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si, shard := range shards {
		si, shard := si, shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[si], errs[si] = iabc.Cluster(context.Background(), g,
				iabc.WithInitial(initial),
				iabc.WithMaxRounds(maxRounds),
				iabc.WithTCPTransport(cfgs[si]),
				iabc.WithLocalNodes(shard...),
				iabc.WithLinger(100*time.Millisecond),
				iabc.WithStallAfter(10*time.Second),
			)
		}()
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
	}
	for si, shard := range shards {
		for _, id := range shard {
			if got := results[si].Rounds[id]; got != maxRounds {
				t.Errorf("node %d stopped at round %d, want %d", id, got, maxRounds)
			}
			if math.Float64bits(results[si].Final[id]) != math.Float64bits(want.Final[id]) {
				t.Errorf("node %d: sharded TCP cluster %v != simulator %v",
					id, results[si].Final[id], want.Final[id])
			}
		}
	}
}

// TestClusterChaosOverTCPConverges composes the chaos layer over the wire
// transport — WithTCPTransport plus WithChaos, no extra plumbing — and
// requires ε-convergence despite drops and duplicates on a single-shard TCP
// cluster with a Byzantine node.
func TestClusterChaosOverTCPConverges(t *testing.T) {
	g, err := iabc.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, g.N())
	for i := range addrs {
		addrs[i] = ln.Addr().String()
	}
	res, err := iabc.Cluster(context.Background(), g,
		iabc.WithInitial([]float64{7, 3, 1, 4, 1.5, 9.2}),
		iabc.WithF(1),
		iabc.WithFaulty(5),
		iabc.WithNamedAdversary("extremes"),
		iabc.WithMaxRounds(500),
		iabc.WithEpsilon(1e-6),
		iabc.WithTCPTransport(iabc.TCPTransportConfig{Addrs: addrs, Listener: ln}),
		iabc.WithChaos(iabc.ChaosConfig{Seed: 3, Drop: 0.15, Dup: 0.1}),
		iabc.WithResendEvery(2*time.Millisecond),
		iabc.WithStallAfter(15*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("chaos-over-TCP cluster did not converge: stalled=%v range=%g",
			res.Stalled, res.FinalRange)
	}
}

// TestClusterTCPOptionErrors pins the facade-level misuse errors.
func TestClusterTCPOptionErrors(t *testing.T) {
	g, err := iabc.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	initial := []float64{1, 2, 3}
	if _, err := iabc.Cluster(context.Background(), g,
		iabc.WithInitial(initial),
		iabc.WithTCPTransport(iabc.TCPTransportConfig{Addrs: []string{"127.0.0.1:1"}}),
	); err == nil {
		t.Error("address count mismatch accepted")
	}
	if _, err := iabc.Cluster(context.Background(), g,
		iabc.WithInitial(initial),
		iabc.WithTransport(iabc.NewInprocTransport(3, 0)),
		iabc.WithTCPTransport(iabc.TCPTransportConfig{Addrs: make([]string, 3)}),
	); err == nil {
		t.Error("WithTransport + WithTCPTransport accepted")
	}
}
