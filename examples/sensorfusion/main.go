// Sensorfusion: the data-aggregation workload that motivates iterative
// approximate consensus in partially connected networks (the paper cites
// Srinivasan & Azadmanesh's aggregation work as the application driver).
//
// Sixteen temperature sensors are arranged on a chord overlay (Definition 5)
// sized for f = 2. Each sensor reads the true temperature plus noise; two
// compromised sensors collude, equivocating different extreme readings to
// different neighbors every round. Algorithm 1 fuses the honest readings to
// a common estimate that stays inside the honest reading range.
//
// Run: go run ./examples/sensorfusion
package main

import (
	"fmt"
	"log"
	"math/rand"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

func main() {
	const (
		n        = 16
		f        = 2
		trueTemp = 21.5
		noise    = 0.8
	)
	rng := rand.New(rand.NewSource(2012))

	// Chord overlay: node i links to i+1, ..., i+2f+1 (mod n) — cheap,
	// regular, and known from §6.3 to need care: small chords fail the
	// condition, so verify before deploying.
	g, err := topology.Chord(n, f)
	if err != nil {
		log.Fatal(err)
	}
	res, err := condition.Check(g, f)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Satisfied {
		log.Fatalf("chord(n=%d, f=%d) cannot tolerate %d faults: %v", n, f, f, res.Witness)
	}
	fmt.Printf("overlay %s passes the exact Theorem 1 check for f=%d\n", g, f)

	// Honest sensors read trueTemp ± noise; sensors 5 and 11 are
	// compromised.
	readings := make([]float64, n)
	lo, hi := trueTemp, trueTemp
	for i := range readings {
		readings[i] = trueTemp + (rng.Float64()*2-1)*noise
		if readings[i] < lo {
			lo = readings[i]
		}
		if readings[i] > hi {
			hi = readings[i]
		}
	}
	faulty := nodeset.FromMembers(n, 5, 11)

	trace, err := sim.Sequential{}.Run(sim.Config{
		G:       g,
		F:       f,
		Faulty:  faulty,
		Initial: readings,
		Rule:    core.TrimmedMean{},
		// Equivocate: different random extreme per receiver per round.
		Adversary: &adversary.RandomNoise{Rng: rng, Lo: -40, Hi: 90},
		MaxRounds: 2000,
		Epsilon:   1e-4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fused := trace.U[trace.Rounds]
	fmt.Printf("honest readings span [%.3f, %.3f] around true %.1f°C\n", lo, hi, trueTemp)
	fmt.Printf("fused estimate after %d rounds: %.3f°C (range %.1e, converged=%v)\n",
		trace.Rounds, fused, trace.FinalRange(), trace.Converged)
	if round, bad := trace.ValidityViolation(1e-9); bad {
		log.Fatalf("validity violated at round %d — should be impossible", round)
	}
	fmt.Println("validity held: the colluding sensors never dragged the estimate outside the honest hull")
}
