// Sensorfusion: the data-aggregation workload that motivates iterative
// approximate consensus in partially connected networks (the paper cites
// Srinivasan & Azadmanesh's aggregation work as the application driver).
//
// Sixteen temperature sensors are arranged on a chord overlay (Definition 5)
// sized for f = 2. Each sensor reads the true temperature plus noise; two
// compromised sensors collude, equivocating different extreme readings to
// different neighbors every round. Algorithm 1 fuses the honest readings to
// a common estimate that stays inside the honest reading range. The whole
// pipeline — overlay, exact check, simulation — runs through the public
// iabc facade.
//
// Run: go run ./examples/sensorfusion
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"iabc"
)

func main() {
	const (
		n        = 16
		f        = 2
		trueTemp = 21.5
		noise    = 0.8
	)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2012))

	// Chord overlay: node i links to i+1, ..., i+2f+1 (mod n) — cheap,
	// regular, and known from §6.3 to need care: small chords fail the
	// condition, so verify before deploying.
	g, err := iabc.Chord(n, f)
	if err != nil {
		log.Fatal(err)
	}
	res, err := iabc.Check(ctx, g, f)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Satisfied {
		log.Fatalf("chord(n=%d, f=%d) cannot tolerate %d faults: %v", n, f, f, res.Witness)
	}
	fmt.Printf("overlay %s passes the exact Theorem 1 check for f=%d\n", g, f)

	// Honest sensors read trueTemp ± noise; sensors 5 and 11 are
	// compromised.
	readings := make([]float64, n)
	lo, hi := trueTemp, trueTemp
	for i := range readings {
		readings[i] = trueTemp + (rng.Float64()*2-1)*noise
		if readings[i] < lo {
			lo = readings[i]
		}
		if readings[i] > hi {
			hi = readings[i]
		}
	}

	out, err := iabc.Simulate(ctx, g,
		iabc.WithF(f),
		iabc.WithFaulty(5, 11),
		iabc.WithInitial(readings),
		// Equivocate: different random extreme per receiver per round.
		iabc.WithAdversary(&iabc.RandomNoise{Rng: rng, Lo: -40, Hi: 90}),
		iabc.WithMaxRounds(2000),
		iabc.WithEpsilon(1e-4),
	)
	if err != nil {
		log.Fatal(err)
	}

	trace := out.Trace
	fused := trace.U[trace.Rounds]
	fmt.Printf("honest readings span [%.3f, %.3f] around true %.1f°C\n", lo, hi, trueTemp)
	fmt.Printf("fused estimate after %d rounds: %.3f°C (range %.1e, converged=%v)\n",
		out.Rounds, fused, out.FinalRange, out.Converged)
	if round, bad := trace.ValidityViolation(1e-9); bad {
		log.Fatalf("validity violated at round %d — should be impossible", round)
	}
	fmt.Println("validity held: the colluding sensors never dragged the estimate outside the honest hull")
}
