// Quickstart: build a core network (Definition 4 of the paper), make one
// node Byzantine, and watch Algorithm 1 drive the fault-free nodes to
// agreement while the liar shouts values far outside the input range.
//
// Everything runs through the public iabc facade — the same four calls
// (Check, Simulate, Sweep, MaxF) an external program would import.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"iabc"
)

func main() {
	const (
		n = 4 // nodes
		f = 1 // tolerated faults
	)
	ctx := context.Background()

	// 1. Build the topology: a core network with n > 3f.
	g, err := iabc.CoreNetwork(n, f)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Verify the tight condition of Theorem 1 before trusting the run.
	res, err := iabc.Check(ctx, g, f)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Satisfied {
		log.Fatalf("topology cannot tolerate f=%d: witness %v", f, res.Witness)
	}
	fmt.Printf("topology %s satisfies Theorem 1 for f=%d\n", g, f)

	// 3. Simulate: node 3 is Byzantine and sends +1000 to everyone.
	out, err := iabc.Simulate(ctx, g,
		iabc.WithF(f),
		iabc.WithFaulty(3),
		iabc.WithInitial([]float64{10, 20, 30, 99}),
		iabc.WithAdversary(iabc.Fixed{Value: 1000}),
		iabc.WithMaxRounds(200),
		iabc.WithEpsilon(1e-6),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outcome.
	trace := out.Trace
	for r := 0; r <= trace.Rounds && r <= 10; r++ {
		fmt.Printf("round %2d: U=%.4f µ=%.4f range=%.2e\n",
			r, trace.U[r], trace.Mu[r], trace.Range(r))
	}
	fmt.Printf("...\nconverged=%v after %d rounds; final range %.2e\n",
		out.Converged, out.Rounds, out.FinalRange)
	fmt.Printf("agreement value ≈ %.4f — inside the honest input hull [10, 30], "+
		"untouched by the liar's 1000s\n", trace.U[trace.Rounds])
}
