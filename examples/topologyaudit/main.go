// Topologyaudit: given a communication topology, answer the deployment
// questions the paper's theory makes answerable:
//
//   - the largest f the topology can tolerate (exact Theorem 1 check);
//   - a concrete violating partition at f+1 — the sets an adversary would
//     exploit, and where to add links;
//   - the contraction parameter α and the worst-case rounds-to-ε bound.
//
// The audit runs over the paper's Section 6 menagerie (core, hypercube,
// chord) plus a deliberately weak custom graph, showing how an auditor
// reads the results — entirely through the public iabc facade.
//
// Run: go run ./examples/topologyaudit
package main

import (
	"context"
	"fmt"
	"log"

	"iabc"
)

func audit(name string, g *iabc.Graph) {
	ctx := context.Background()
	fmt.Printf("=== %s — %s, min in-degree %d\n", name, g, g.MinInDegree())
	maxF, err := iabc.MaxF(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	if maxF < 0 {
		fmt.Println("  cannot run iterative consensus at all: multiple source components")
		return
	}
	fmt.Printf("  tolerates up to f = %d Byzantine node(s)\n", maxF)

	if alpha, err := iabc.Alpha(g, maxF); err == nil {
		bound, err := iabc.RoundsToEpsilonBound(g.N(), maxF, alpha, 1.0, 1e-6)
		if err == nil {
			fmt.Printf("  α = %.4f; worst-case rounds for unit range → 1e-6: %d\n", alpha, bound)
		}
	}

	// Where does it break? Check f+1, show the witness, and let the
	// repair tool compute the missing links.
	res, err := iabc.Check(ctx, g, maxF+1)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Satisfied {
		fmt.Printf("  at f = %d it breaks: %v\n", maxF+1, res.Witness)
		if 3*(maxF+1) < g.N() {
			rep, err := iabc.Repair(g, maxF+1, g.N()*g.N())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  repair for f = %d: add %d edge(s): %v\n",
				maxF+1, len(rep.Added), rep.Added)
		} else {
			fmt.Printf("  unrepairable at f = %d: needs n > %d nodes (Corollary 2)\n",
				maxF+1, 3*(maxF+1))
		}
	}
}

func main() {
	core7, err := iabc.CoreNetwork(7, 2)
	if err != nil {
		log.Fatal(err)
	}
	audit("core network (n=7, f=2) — §6.1", core7)

	cube, err := iabc.Hypercube(3)
	if err != nil {
		log.Fatal(err)
	}
	audit("3-dimensional hypercube — §6.2/Fig. 3", cube)

	chord5, err := iabc.Chord(5, 1)
	if err != nil {
		log.Fatal(err)
	}
	audit("chord network (n=5, f=1) — §6.3", chord5)

	chord7, err := iabc.Chord(7, 2)
	if err != nil {
		log.Fatal(err)
	}
	audit("chord network (n=7, f=2) — §6.3 counterexample", chord7)

	// A custom design: two well-connected clusters joined by a thin bridge —
	// the classic mistake the Theorem 1 condition catches.
	b := iabc.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddUndirected(i, j)
			b.AddUndirected(i+4, j+4)
		}
	}
	b.AddUndirected(3, 4) // the thin bridge
	bridged, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	audit("two 4-cliques with one bridge (custom)", bridged)
}
