// Wirecluster: the Section 7 iteration sharded over real sockets. Six nodes
// of a complete graph are split across three independent Cluster calls —
// each animating two nodes over its own TCP transport instance, exactly the
// shape of three `iabc serve` processes on three machines — and the
// combined finals are compared bit-for-bit against the deterministic
// simulator, the conformance oracle the whole runtime hangs on.
//
// Everything rides the public facade: WithTCPTransport supplies the address
// map, WithLocalNodes picks each shard's share, and WithLinger keeps a
// finished shard answering laggards' history resends so its exit never
// masquerades as a crash.
//
// Run: go run ./examples/wirecluster
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"sync"
	"time"

	"iabc"
)

func main() {
	g, err := iabc.Complete(6)
	if err != nil {
		log.Fatal(err)
	}
	initial := []float64{3, 1, 4, 1.5, 9.2, 6}
	const maxRounds = 15

	// The oracle: one deterministic simulator run.
	want, err := iabc.Simulate(context.Background(), g,
		iabc.WithInitial(initial), iabc.WithMaxRounds(maxRounds))
	if err != nil {
		log.Fatal(err)
	}

	// One listener per shard; the address map covers all six nodes.
	shards := [][]int{{0, 1}, {2, 3}, {4, 5}}
	addrs := make([]string, g.N())
	listeners := make([]net.Listener, len(shards))
	for si, shard := range shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[si] = ln
		for _, id := range shard {
			addrs[id] = ln.Addr().String()
		}
	}

	// Three concurrent cluster shares — in separate processes these would be
	// three `iabc serve` invocations with a shared peers file.
	results := make([]*iabc.ClusterResult, len(shards))
	var wg sync.WaitGroup
	for si, shard := range shards {
		si, shard := si, shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := iabc.Cluster(context.Background(), g,
				iabc.WithInitial(initial),
				iabc.WithMaxRounds(maxRounds),
				iabc.WithTCPTransport(iabc.TCPTransportConfig{
					Addrs: addrs, Local: shard, Listener: listeners[si],
				}),
				iabc.WithLocalNodes(shard...),
				iabc.WithLinger(100*time.Millisecond),
				iabc.WithStallAfter(10*time.Second),
			)
			if err != nil {
				log.Fatal(err)
			}
			results[si] = res
		}()
	}
	wg.Wait()

	identical := true
	for si, shard := range shards {
		for _, id := range shard {
			v := results[si].Final[id]
			fmt.Printf("node %d (shard %d): final %v\n", id, si, v)
			if math.Float64bits(v) != math.Float64bits(want.Final[id]) {
				identical = false
			}
		}
	}
	fmt.Printf("bit-identical to the simulator: %v\n", identical)
}
