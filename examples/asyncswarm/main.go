// Asyncswarm: Section 7 in action. A swarm of drones must agree on a common
// altitude over an asynchronous radio network — messages arrive with
// arbitrary delays up to a bound B, one drone is compromised, and the
// network scheduler is adversarial (it starves the links from three honest
// drones as long as the bound allows).
//
// Under asynchrony the paper's requirements strengthen: each node waits for
// |N⁻| − f round-tagged messages (it can never wait for all), the ⇒
// threshold becomes 2f+1, in-degrees must reach 3f+1, and n must exceed 5f.
// The example first shows the boundary (6 drones needed for f = 1; 5 fail),
// then runs the compromised swarm to agreement — all through the public
// iabc facade (Check with WithAsyncCondition, Simulate with the Async
// engine).
//
// Run: go run ./examples/asyncswarm
package main

import (
	"context"
	"fmt"
	"log"

	"iabc"
)

func main() {
	const f = 1
	ctx := context.Background()

	// Boundary: K5 fails the asynchronous condition (n must exceed 5f).
	k5, err := iabc.Complete(5)
	if err != nil {
		log.Fatal(err)
	}
	res5, err := iabc.Check(ctx, k5, f, iabc.WithAsyncCondition())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 drones, f=1: async condition satisfied = %v (witness %v)\n",
		res5.Satisfied, res5.Witness)

	// 7 drones: comfortably above the n > 5f boundary.
	const n = 7
	g, err := iabc.Complete(n)
	if err != nil {
		log.Fatal(err)
	}
	res, err := iabc.Check(ctx, g, f, iabc.WithAsyncCondition())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d drones, f=1: async condition satisfied = %v\n", n, res.Satisfied)
	if !res.Satisfied {
		log.Fatal("unexpected: K7 should satisfy the Section 7 condition")
	}

	// Altitudes in meters; drone 6 is compromised and hugs the ceiling of
	// the honest range — the nastiest in-range behavior.
	altitudes := []float64{118, 95, 130, 104, 122, 110, 0}

	out, err := iabc.Simulate(ctx, g,
		iabc.WithEngine(iabc.Async),
		iabc.WithF(f),
		iabc.WithFaulty(6),
		iabc.WithInitial(altitudes),
		iabc.WithAdversary(iabc.Hug{High: true}),
		iabc.WithDelays(iabc.TargetedDelay{ // adversarial scheduler, delay bound B = 12
			Slow: iabc.SetOf(n, 0, 2, 4),
			B:    12,
			Fast: 0.3,
		}),
		iabc.WithMaxRounds(4000),
		iabc.WithEpsilon(0.01), // agree to within a centimeter
	)
	if err != nil {
		log.Fatal(err)
	}

	trace := out.AsyncTrace
	fmt.Printf("converged=%v stalled=%v after %d message deliveries (sim time %.1f)\n",
		out.Converged, trace.Stalled, trace.Deliveries, trace.Time)
	for i := 0; i < n-1; i++ {
		fmt.Printf("  drone %d altitude: %.3f m (round %d)\n", i, out.Final[i], trace.Rounds[i])
	}
	fmt.Println("the agreed altitude lies inside the honest span [95, 130] despite the hugger and the hostile scheduler")
}
