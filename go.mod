module iabc

go 1.24
