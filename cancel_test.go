package iabc_test

// Cancellation contract of the public facade: a mid-scan context.Canceled
// from Check, MaxF, or Sweep returns promptly (bounded by one scenario or
// fault set), reports partial progress in the wrapped error, and leaks no
// worker goroutines; a canceled Cluster additionally tears down every
// actor, send pump, and chaos delay goroutine even while sends are stuck
// in retry/backoff against a partition. These tests run under -race in CI.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iabc"
)

// waitNoLeakedGoroutines fails the test if the goroutine count does not
// return to (near) base within a grace period — workers must exit once
// cancellation is observed, not linger.
func waitNoLeakedGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		// A small slack absorbs runtime housekeeping goroutines that come
		// and go independently of this test.
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func cancelSweepInputs(t *testing.T) (*iabc.Graph, []iabc.Scenario, []iabc.Option) {
	t.Helper()
	g, err := iabc.CoreNetwork(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, g.N())
	for i := range initial {
		initial[i] = float64(i)
	}
	var scens []iabc.Scenario
	for i := 0; i < 24; i++ {
		scens = append(scens, iabc.Scenario{Adversary: iabc.Hug{High: i%2 == 0}})
	}
	opts := []iabc.Option{
		iabc.WithF(2), iabc.WithFaulty(0, 1), iabc.WithInitial(initial),
		iabc.WithMaxRounds(400),
	}
	return g, scens, opts
}

func TestSweepCancellationFacade(t *testing.T) {
	g, scens, opts := cancelSweepInputs(t)
	for _, workers := range []int{1, 4} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		all := append(opts,
			iabc.WithWorkers(workers),
			iabc.WithObserver(func(e iabc.Event) {
				if e.Kind == iabc.EventScenarioDone && seen.Add(1) == 2 {
					cancel()
				}
			}))
		res, err := iabc.Sweep(ctx, g, scens, all...)
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: res=%v err=%v, want nil + context.Canceled", workers, res, err)
		}
		if !strings.Contains(err.Error(), "canceled after") {
			t.Errorf("workers=%d: error does not report partial progress: %v", workers, err)
		}
		if n := seen.Load(); n >= int64(len(scens)) {
			t.Errorf("workers=%d: all %d scenarios ran despite cancellation", workers, n)
		}
		waitNoLeakedGoroutines(t, base)
		cancel()
	}
}

func TestCheckCancellationFacade(t *testing.T) {
	g, err := iabc.CoreNetwork(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		res, err := iabc.Check(ctx, g, 2,
			iabc.WithWorkers(workers),
			iabc.WithObserver(func(e iabc.Event) {
				if e.Kind == iabc.EventCheckProgress && seen.Add(1) == 3 {
					cancel()
				}
			}))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if !strings.Contains(err.Error(), "canceled after") {
			t.Errorf("workers=%d: error does not report partial progress: %v", workers, err)
		}
		if res.Satisfied {
			t.Errorf("workers=%d: interrupted check must not report a verdict", workers)
		}
		if res.FaultSetsExamined == 0 {
			t.Errorf("workers=%d: partial work counters missing", workers)
		}
		waitNoLeakedGoroutines(t, base)
		cancel()
	}
}

// TestClusterCancellationFacade cancels a cluster mid-chaos, during an
// unhealed partition that has every cross-cut send in retry/backoff, and
// requires a prompt context.Canceled return with zero leaked goroutines —
// actors, per-edge send pumps, the crash supervisor, and the chaos layer's
// delayed-delivery goroutines must all unwind.
func TestClusterCancellationFacade(t *testing.T) {
	g, err := iabc.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := iabc.Cluster(ctx, g,
		iabc.WithInitial(initial),
		iabc.WithMaxRounds(1_000_000), // unreachable: the partition stalls progress
		iabc.WithResendEvery(time.Millisecond),
		iabc.WithSendTimeout(10*time.Second), // keep sends parked in retry at cancel time
		iabc.WithChaos(iabc.ChaosConfig{
			Seed: 5, Drop: 0.1, MaxDelay: 2 * time.Millisecond,
			Partitions: []iabc.LinkPartition{{
				A: iabc.SetOf(n, 0), B: iabc.SetOf(n, 0).Complement(), From: 0, // never heals
			}},
		}))
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("res=%v err=%v, want nil + context.Canceled", res, err)
	}
	if !strings.Contains(err.Error(), "canceled after") {
		t.Errorf("error does not report partial progress: %v", err)
	}
	waitNoLeakedGoroutines(t, base)
	cancel()
}

func TestMaxFCancellationFacade(t *testing.T) {
	g, err := iabc.CoreNetwork(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var checks atomic.Int64
	best, stats, err := iabc.MaxFWithStats(ctx, g,
		iabc.WithWorkers(4),
		iabc.WithObserver(func(e iabc.Event) {
			if e.Kind == iabc.EventCheckDone && checks.Add(1) == 2 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// Two checks (f=0, f=1) completed before the cancel, so the scan had
	// decided at least f=1 and accumulated their stats.
	if best < 1 {
		t.Errorf("best=%d: completed checks must be reported on cancellation", best)
	}
	if stats.ChecksRun < 2 || stats.FaultSetsExamined == 0 {
		t.Errorf("partial stats missing: %+v", stats)
	}
	waitNoLeakedGoroutines(t, base)
	cancel()
}
