// Package iabc reproduces "Iterative Approximate Byzantine Consensus in
// Arbitrary Directed Graphs" (Vaidya, Tseng, Liang; PODC 2012) as a
// production-quality Go library.
//
// The implementation lives under internal/:
//
//   - internal/core — Algorithm 1 (the trimmed-mean update) and the
//     UpdateRule abstraction;
//   - internal/condition — the tight necessary & sufficient condition of
//     Theorem 1, propagation machinery, exact checker with witnesses;
//   - internal/sim, internal/async — synchronous and asynchronous engines;
//   - internal/adversary — Byzantine strategies;
//   - internal/graph, internal/topology, internal/nodeset — substrates;
//   - internal/analysis — α, Lemma 5 contraction bounds, rate measurement;
//   - internal/experiments — one reproduction per paper artifact (E1–E10).
//
// bench_test.go in this directory hosts the benchmark harness: one
// Benchmark per experiment plus micro-benchmarks for the hot paths. See
// README.md for a guided tour and EXPERIMENTS.md for paper-vs-measured
// results.
package iabc
