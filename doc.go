// Package iabc reproduces "Iterative Approximate Byzantine Consensus in
// Arbitrary Directed Graphs" (Vaidya, Tseng, Liang; PODC 2012) as a
// production-quality Go library.
//
// # The public facade
//
// This root package is the supported way to use the system. Four
// context-aware, option-based entry points expose the paper's two pillars
// — Algorithm 1 simulation across the cross-checked engines, and the exact
// Theorem 1 analysis view — behind one coherent API:
//
//   - Simulate(ctx, g, opts...) — one run on any engine (WithEngine:
//     Sequential, ConcurrentPool, Matrix, or the §7 Async model), returning
//     an engine-independent Outcome;
//   - Sweep(ctx, g, scenarios, opts...) — batched scenario sweeps over
//     pooled engine state, fanned across cores (WithWorkers), with the
//     matrix replay dimension composed in via WithExtras/WithBatch;
//   - Check(ctx, g, f, opts...) — the exact Theorem 1 decision with
//     witnesses, parallel fault-set scanning, and the §7 threshold under
//     WithAsyncCondition;
//   - MaxF(ctx, g, opts...) / MaxFWithStats — the largest tolerable f;
//   - Cluster(ctx, g, opts...) — the §7 iteration as a live cluster of
//     goroutine-per-node actors over a pluggable Transport, with seeded
//     network chaos via WithChaos and per-update observer streaming.
//
// Every entry point honors its context — cancellation is checked at
// scenario, fault-set, or event-batch granularity, never inside the
// zero-allocation round loops — and streams progress through WithObserver
// without materializing traces. The supporting vocabulary (graphs,
// topologies, node sets, update rules, adversaries, delay policies) is
// re-exported here as type aliases, so callers never import internal
// packages; the in-tree CLI and all examples/ are consumers of this facade
// and nothing else (enforced by TestFacadeOnlyConsumers).
//
// The implementation lives under internal/:
//
//   - internal/core — Algorithm 1 (the trimmed-mean update) and the
//     UpdateRule abstraction, plus the zero-allocation fast path
//     (core.Scratch / BufferedRule.UpdateInto);
//   - internal/condition — the tight necessary & sufficient condition of
//     Theorem 1, propagation machinery, exact checker with witnesses;
//   - internal/sim, internal/async — synchronous and asynchronous engines;
//   - internal/node, internal/transport — the live actor runtime behind
//     Cluster and its message transports, chaos injection included;
//   - internal/adversary — Byzantine strategies;
//   - internal/graph, internal/topology, internal/nodeset — substrates;
//   - internal/analysis — α, Lemma 5 contraction bounds, rate measurement;
//   - internal/experiments — one reproduction per paper artifact (E1–E15).
//
// # Choosing an engine
//
// Three synchronous engines share one semantics and produce bit-identical
// traces (cross-checked by tests):
//
//   - sim.Sequential — the default. Single goroutine, flat preallocated
//     message plane, allocation-free steady state; fastest for a single
//     scenario and the reference the others are checked against.
//   - sim.Concurrent — one goroutine per node with per-edge channels and a
//     coordinator barrier. Use it to exercise the algorithm as genuine
//     message passing (races, goroutine scheduling); ~4× slower than
//     Sequential.
//   - sim.Matrix — materializes every round as a row-stochastic transition
//     (the matrix representation of arXiv:1203.1888). Run matches
//     Sequential; RunBatch streams each round's transition over many
//     initial vectors in structure-of-arrays layout, a few flops per edge
//     per vector and O(edges) program memory however long the run — use it
//     for multi-scenario sensitivity sweeps where the round structure is
//     shared. Supports the affine rules (TrimmedMean, Mean) only.
//
// For sweeps that vary the adversary (or fault set) rather than the initial
// vector — where the round structure itself changes and the matrix replay
// does not apply — sim.Sweep re-simulates each scenario over pooled
// per-worker engine state (a sim.ScenarioRunner: the sequential plane, the
// node-pool sim.ConcurrentPool, or the matrix scratch) and fans independent
// scenarios across cores (SweepOptions.Workers; ≤ 0 selects GOMAXPROCS).
// With the Matrix engine, SweepOptions.Extras composes both batching
// dimensions: each scenario's recorded round programs are SoA-replayed over
// K extra initial vectors. sim.RunScenarios is the single-worker sequential
// shorthand. Parallel sweeps are bit-identical to sequential ones as long as
// scenarios do not share mutable adversary state.
//
// internal/async is a different model entirely (Section 7 quorum
// iteration under message delays), not a fourth engine for the synchronous
// semantics.
//
// # Fast-path invariants
//
// The hot loops rely on, and the test suite enforces, these invariants:
//
//  1. Canonical summation order. An update is a_i·(own + Σ survivors),
//     summed own-first then in received (ascending sender) order. Every
//     path — reference Update, scratch UpdateInto, matrix row replay —
//     produces bit-identical float64 results.
//  2. Total trimming order. Trimming sorts by (value, sender); sender
//     breaks ties deterministically ("breaking ties arbitrarily" in the
//     paper). The quickselect fast path and the sort-based reference agree
//     on the exact survivor set, NaN and ±Inf included.
//  3. Steady-state zero allocation. core.Scratch buffers, the engines'
//     edge-indexed message planes, and the async ring inboxes reuse their
//     storage, and strategies implementing adversary.EdgeWriter scatter
//     faulty values straight onto the planes — with an EdgeWriter adversary
//     the round loop allocates nothing in steady state (enforced by
//     TestEngineRoundLoopZeroSteadyStateAllocs and the *-steady
//     benchmarks). Only the Messages-map fallback and trace growth beyond
//     the preallocated window allocate.
//  4. Determinism. Given identical configs (and seeds for randomized
//     strategies), every engine produces identical traces across runs.
//  5. Pruning soundness. The exact checker's degree lower bound can never
//     skip a real witness: a node of an insulated set X has at most |X|−1
//     in-neighbors inside X (the graph type rejects self-loops), so
//     insulation forces base(v) ≤ threshold + |X| − 2 for every member —
//     any node above that bound is excluded from size-|X| candidates with
//     its whole combination subtree. Every insulated set therefore
//     consists solely of admitted nodes, surviving candidates keep the
//     full enumeration's relative order, and condition.Check returns a
//     bit-identical Satisfied verdict and Witness with or without pruning
//     (and with or without the empty-complement memo, which only skips
//     peels whose emptiness is implied by a memoized subset). Enforced by
//     the property tests in internal/condition/prune_test.go and the
//     E14 cross-validation against condition.CheckViaReducedGraphs.
//  6. Facade stability. The root package's exported surface is frozen in
//     api/iabc.txt, regenerated only by a deliberate `go generate .`;
//     TestAPISurfaceGolden fails the build when the tree drifts from the
//     committed golden, so breaking the public API is always an explicit,
//     reviewed act. The facade adds context, options, and observation —
//     never semantics: every entry point is pinned bit-identical to the
//     internal implementation it fronts (facade_test.go), cancellation is
//     checked only between scenarios / fault sets / event batches (the
//     round loops stay allocation-free, invariant 3), and observer
//     callbacks are serialized even when work fans across workers.
//  7. Flat program encoding. The matrix engine records each round as one
//     CSR-style flat program — a shared column stream with row offsets, a
//     separate literal stream for adversary-injected values, and per-row
//     weights — walked in the exact canonical order of invariant 1, so the
//     contiguous batch kernels stay bit-identical to the scalar reference.
//     Batch replay is streaming: every program is pushed through all K
//     extra vectors before the next round rebuilds it in place, holding
//     program memory at O(edges) independent of the round count (enforced
//     by TestStreamingReplayMatchesRetainedReference,
//     TestStreamingReplayProgramMemoryOEdges, and FuzzRoundProgramFlat).
//  8. Calendar-queue event core. The async engine's pending-event set is a
//     bucketed calendar queue: days of fitted width, day d in bucket d mod
//     nbuckets, resized on a 2-per-bucket grow / ⅛-per-bucket shrink
//     hysteresis, with all day indexing through one monotone clamped map so
//     push placement and pop windows can never disagree. Pop order is
//     exactly the heap's (at, seq) contract — earliest time, FIFO among
//     ties — so traces are bit-identical to the container/heap reference
//     (TestCalendarQueueRunMatchesHeap, FuzzCalendarQueueMatchesHeap)
//     while push/pop allocate nothing in steady state.
//
// bench_test.go in this directory hosts the benchmark harness: one
// Benchmark per experiment plus micro-benchmarks for the hot paths; `iabc
// bench` runs the same hot paths from the CLI and records a BENCH_<date>.json
// trajectory artifact. See README.md for a guided tour and EXPERIMENTS.md
// for paper-vs-measured results.
package iabc

//go:generate go run ./cmd/apigen
