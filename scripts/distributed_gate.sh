#!/usr/bin/env bash
# Distributed-scan conformance gate for the coordinator–worker job protocol.
#
# Phase 1 (conformance): run `iabc coordinate` over chord:21,2 with two
# external `iabc work` processes joined over loopback, and require the
# maxf/work report lines to be byte-identical to the single-process oracle
# (`iabc maxf`) — same verdict, same witness-bearing counters, no double
# counting across leases.
#
# Phase 2 (crash-identical resume): relaunch, SIGKILL one worker mid-scan,
# and require the surviving worker to re-run the victim's requeued leases to
# the exact same report lines. The coordinator journals only acknowledged
# gap-free prefixes and fences stale jobIDs, so a crashed lease re-executes
# as pure replay — byte-identical, not merely equivalent.
set -euo pipefail

cd "$(dirname "$0")/.."
bin=$(mktemp -d)/iabc
go build -o "$bin" ./cmd/iabc

work=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$work"' EXIT

topo=chord:21,2
port=$(( (RANDOM % 10000) + 20000 ))
addr="127.0.0.1:$port"

echo "== oracle: single-process iabc maxf -topo $topo"
"$bin" maxf -topo "$topo" > "$work/oracle.out"
grep -E '^(maxf|work):' "$work/oracle.out" > "$work/oracle.lines"

echo "== phase 1: coordinator + 2 workers on $addr vs oracle"
"$bin" coordinate -topo "$topo" -listen "$addr" > "$work/coord1.out" 2>&1 &
coord=$!
"$bin" work -join "$addr" > "$work/worker1a.out" 2>&1 &
w1=$!
"$bin" work -join "$addr" > "$work/worker1b.out" 2>&1 &
w2=$!
wait "$coord" || { echo "coordinator failed:"; cat "$work/coord1.out"; exit 1; }
wait "$w1" "$w2" || { echo "worker failed:"; cat "$work"/worker1*.out; exit 1; }

grep -E '^(maxf|work):' "$work/coord1.out" > "$work/phase1.lines"
if ! diff -u "$work/oracle.lines" "$work/phase1.lines"; then
  echo "FAIL: distributed report differs from the single-process oracle"
  cat "$work/coord1.out"
  exit 1
fi
grep -q '^distrib: 2 worker(s) joined' "$work/coord1.out" \
  || { echo "FAIL: both workers should have joined"; cat "$work/coord1.out"; exit 1; }
echo "phase 1 OK: maxf/work lines byte-identical across 2 workers"

echo "== phase 2: SIGKILL one worker mid-scan, leases must replay identically"
port=$((port + 1))
addr="127.0.0.1:$port"
"$bin" coordinate -topo "$topo" -listen "$addr" > "$work/coord2.out" 2>&1 &
coord=$!
"$bin" work -join "$addr" > "$work/worker2a.out" 2>&1 &
w1=$!
"$bin" work -join "$addr" > "$work/worker2b.out" 2>&1 &
w2=$!
sleep 1
kill -9 "$w2" 2>/dev/null || true
wait "$w2" 2>/dev/null || true
wait "$coord" || { echo "coordinator failed after worker kill:"; cat "$work/coord2.out"; exit 1; }
wait "$w1" || { echo "surviving worker failed:"; cat "$work/worker2a.out"; exit 1; }

grep -E '^(maxf|work):' "$work/coord2.out" > "$work/phase2.lines"
if ! diff -u "$work/oracle.lines" "$work/phase2.lines"; then
  echo "FAIL: report after SIGKILLed worker differs from the oracle"
  cat "$work/coord2.out"
  exit 1
fi
grep -q '^distrib: 2 worker(s) joined' "$work/coord2.out" \
  || { echo "FAIL: victim should have joined before the kill"; cat "$work/coord2.out"; exit 1; }
echo "phase 2 OK: requeued leases re-ran to a byte-identical report"
echo "distributed gate PASSED"
