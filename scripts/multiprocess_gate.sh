#!/usr/bin/env bash
# Multi-process conformance gate for the TCP transport and `iabc serve`.
#
# Phase 1 (conformance): launch one `iabc serve` process per node of a
# complete:3 topology on loopback, let the cluster run every round, and
# require the collected hex-float finals to be byte-identical to the
# single-process oracle (`iabc run -finals` — the sequential simulator,
# which the in-process cluster is already pinned against). Also requires
# every process to report "validity: held".
#
# Phase 2 (safety under partial failure): relaunch with a round budget the
# survivors cannot finish without the victim, SIGKILL one process mid-run,
# and require the survivors to STALL — report "verdict: stalled" with
# validity still held — rather than fabricate progress. At f = 0 the quorum
# is the full in-neighborhood, so any post-kill round completion would be a
# protocol violation.
set -euo pipefail

cd "$(dirname "$0")/.."
bin=$(mktemp -d)/iabc
go build -o "$bin" ./cmd/iabc

work=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$work"' EXIT

topo=complete:3
seed=7
rounds=20
base=$(( (RANDOM % 10000) + 20000 ))
peers="$work/peers.txt"
{
  echo "# node address"
  for i in 0 1 2; do
    echo "$i 127.0.0.1:$((base + i))"
  done
} > "$peers"

echo "== phase 1: 3-process finals vs single-process oracle (ports $base-$((base + 2)))"
"$bin" run -topo "$topo" -f 0 -eps 0 -rounds "$rounds" -seed "$seed" -finals \
  | grep '^final' | sort -n -k2 > "$work/oracle.txt"

pids=()
for i in 0 1 2; do
  "$bin" serve -topo "$topo" -id "$i" -peers "$peers" -f 0 -rounds "$rounds" \
    -seed "$seed" -stall 10s -linger 1s > "$work/serve$i.out" 2>&1 &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid" || { echo "serve process $pid failed:"; cat "$work"/serve*.out; exit 1; }
done

grep -h '^final' "$work"/serve{0,1,2}.out | sort -n -k2 > "$work/got.txt"
if ! diff -u "$work/oracle.txt" "$work/got.txt"; then
  echo "FAIL: multi-process finals differ from the oracle"
  exit 1
fi
for i in 0 1 2; do
  grep -q '^validity: held' "$work/serve$i.out" || { echo "FAIL: node $i validity line missing"; cat "$work/serve$i.out"; exit 1; }
  grep -q '^verdict: max rounds' "$work/serve$i.out" || { echo "FAIL: node $i did not finish all rounds"; cat "$work/serve$i.out"; exit 1; }
done
echo "phase 1 OK: finals bit-identical across 3 processes"

echo "== phase 2: SIGKILL one node, survivors must stall, not violate validity"
pids=()
for i in 0 1 2; do
  "$bin" serve -topo "$topo" -id "$i" -peers "$peers" -f 0 -rounds 1000000 \
    -seed "$seed" -stall 2s -linger 0s > "$work/kill$i.out" 2>&1 &
  pids+=($!)
done
sleep 0.5
kill -9 "${pids[2]}" 2>/dev/null || true
wait "${pids[2]}" 2>/dev/null || true
for i in 0 1; do
  wait "${pids[$i]}" || { echo "survivor $i failed:"; cat "$work/kill$i.out"; exit 1; }
  grep -q '^verdict: stalled' "$work/kill$i.out" || { echo "FAIL: survivor $i did not stall"; cat "$work/kill$i.out"; exit 1; }
  grep -q '^validity: held' "$work/kill$i.out" || { echo "FAIL: survivor $i validity violated"; cat "$work/kill$i.out"; exit 1; }
done
echo "phase 2 OK: survivors stalled with validity held"
echo "multiprocess gate PASSED"
