package iabc

// This file is the facade's surface: four context-aware, option-based entry
// points — Simulate, Sweep, Check, MaxF — unifying the engines behind
// internal/sim and internal/async with the exact Theorem 1 machinery of
// internal/condition. See doc.go for the package guide and the stability
// invariant, and api/iabc.txt for the frozen surface.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"iabc/internal/async"
	"iabc/internal/condition"
	"iabc/internal/sim"
)

// Outcome is Simulate's engine-independent result summary. The full record
// is in Trace (synchronous engines) or AsyncTrace (the Async engine);
// exactly one of the two is non-nil.
type Outcome struct {
	// Engine is the engine that produced the run.
	Engine Engine
	// Converged reports whether the epsilon stop fired.
	Converged bool
	// Rounds is the number of iterations executed — for the Async engine,
	// the smallest round counter among fault-free nodes.
	Rounds int
	// FinalRange is the fault-free range U−µ after the last step.
	FinalRange float64
	// Final is the state vector after the last step.
	Final []float64
	// Trace is the synchronous engines' full record; nil for Async.
	Trace *Trace
	// AsyncTrace is the Async engine's full record; nil otherwise.
	AsyncTrace *AsyncTrace
}

// Simulate runs Algorithm 1 (or, with WithEngine(Async), the Section 7
// asynchronous iteration) on g and returns the engine-independent Outcome.
//
// Required options: WithInitial. Typical options: WithF, WithFaulty,
// WithAdversary or WithNamedAdversary, WithMaxRounds, WithEpsilon,
// WithEngine; the Async engine additionally requires WithDelays.
// WithObserver streams one EventRound per completed round (per fault-free
// state change under Async).
//
// ctx is honored by the Async engine at event-batch granularity; the
// synchronous engines run a single bounded simulation and complete it
// (cancel long scans at the Sweep/Check level, where work is divisible).
func Simulate(ctx context.Context, g *Graph, opts ...Option) (*Outcome, error) {
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if c.engine == Async {
		return simulateAsync(ctx, g, c)
	}
	engine, err := c.engine.simEngine()
	if err != nil {
		return nil, err
	}
	cfg, err := c.simConfig(g)
	if err != nil {
		return nil, err
	}
	if obs := c.observer; obs != nil {
		cfg.OnRound = func(round int, u, mu float64) {
			obs(Event{Kind: EventRound, Round: round, Range: u - mu})
		}
	}
	tr, err := engine.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Engine:     c.engine,
		Converged:  tr.Converged,
		Rounds:     tr.Rounds,
		FinalRange: tr.FinalRange(),
		Final:      tr.Final,
		Trace:      tr,
	}, nil
}

// simulateAsync is Simulate's Async-engine arm.
func simulateAsync(ctx context.Context, g *Graph, c *config) (*Outcome, error) {
	faulty, err := c.faultySet(g.N())
	if err != nil {
		return nil, err
	}
	cfg := async.Config{
		G:            g,
		F:            c.f,
		Faulty:       faulty,
		Initial:      c.initial,
		Rule:         c.rule,
		Adversary:    c.adversary,
		Delays:       c.delays,
		MaxRounds:    c.maxRounds,
		Epsilon:      c.epsilon,
		FaultyTick:   c.faultyTick,
		HistoryEvery: c.historyEvery,
	}
	if obs := c.observer; obs != nil {
		cfg.OnRange = func(t, rng float64) {
			obs(Event{Kind: EventRound, Time: t, Range: rng})
		}
	}
	tr, err := async.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	faultFree := NewSet(g.N()).Complement() // everyone, when no fault set is given
	if faulty.Cap() != 0 {
		faultFree = faulty.Complement()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	faultFree.ForEach(func(i int) bool {
		lo = math.Min(lo, tr.Final[i])
		hi = math.Max(hi, tr.Final[i])
		return true
	})
	return &Outcome{
		Engine:     Async,
		Converged:  tr.Converged,
		Rounds:     tr.MinRound(faultFree),
		FinalRange: hi - lo,
		Final:      tr.Final,
		AsyncTrace: tr,
	}, nil
}

// Sweep runs the base configuration once per scenario over pooled engine
// state, fanning independent scenarios across WithWorkers goroutines and —
// with the Matrix engine and WithExtras/WithBatch — SoA-replaying each
// scenario's recorded rounds over extra initial vectors. Scenarios are
// scheduled largest-estimated-cost-first; results are index-aligned with
// scenarios and bit-identical at any worker count.
//
// ctx cancels between scenarios: the error wraps ctx.Err() with the
// completed count and the result is nil (a sweep never returns partially).
// WithObserver streams one EventScenarioDone per completed scenario.
func Sweep(ctx context.Context, g *Graph, scenarios []Scenario, opts ...Option) (*SweepResult, error) {
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if (c.batch > 0 || len(c.extras) > 0) && !c.hasEngine {
		// The replay dimension only exists on the matrix engine; select it
		// rather than failing on the default. Sweep is the only entry point
		// that consumes extras, so the auto-selection lives here — Simulate
		// ignores WithExtras/WithBatch per the Option contract.
		c.engine = Matrix
	}
	engine, err := c.engine.simEngine()
	if err != nil {
		return nil, fmt.Errorf("iabc: sweeps run on the synchronous engines: %w", err)
	}
	base, err := c.simConfig(g)
	if err != nil {
		return nil, err
	}
	store, err := c.stateBackend()
	if err != nil {
		return nil, err
	}
	so := sim.SweepOptions{
		Engine:    engine,
		Workers:   c.workers,
		Extras:    c.batchExtras(c.initial),
		Store:     store,
		StateSalt: fmt.Sprintf("seed=%d", c.seed),
	}
	if obs := c.observer; obs != nil {
		var mu sync.Mutex
		so.OnScenario = func(i int, name string, tr *Trace) {
			mu.Lock()
			defer mu.Unlock()
			obs(Event{
				Kind:     EventScenarioDone,
				Scenario: i,
				Name:     name,
				Round:    tr.Rounds,
				Range:    tr.FinalRange(),
			})
		}
	}
	if c.distributed() {
		coord, stop, err := c.startCoordinator()
		if err != nil {
			return nil, err
		}
		defer stop()
		if !c.hasWorkers && c.workerPool > 0 {
			// In-flight scenario jobs default to the pool size, so every
			// local worker has one to run.
			so.Workers = c.workerPool
		}
		res, err := coord.Sweep(ctx, base, scenarios, c.seed, so)
		if err != nil {
			return nil, err
		}
		emitCoordinatorEvent(c.observer, coord)
		return res, nil
	}
	return sim.Sweep(ctx, base, scenarios, so)
}

// Check decides the tight Theorem 1 condition for (g, f) exactly —
// synchronous threshold f+1, or the Section 7 threshold 2f+1 under
// WithAsyncCondition — fanning the fault-set scan across WithWorkers
// goroutines. The verdict and witness are identical at any worker count.
//
// ctx cancels at fault-set granularity: the error wraps ctx.Err() with the
// scan progress, and the returned CheckResult carries the work counters
// accumulated so far (its verdict is meaningless on error). WithObserver
// streams one EventCheckProgress per processed fault set.
func Check(ctx context.Context, g *Graph, f int, opts ...Option) (CheckResult, error) {
	c, err := newConfig(opts)
	if err != nil {
		return CheckResult{}, err
	}
	threshold := condition.SyncThreshold(f)
	if c.async {
		threshold = condition.AsyncThreshold(f)
	}
	var progress condition.ProgressFunc
	if obs := c.observer; obs != nil {
		var mu sync.Mutex
		progress = func(p condition.Progress) {
			mu.Lock()
			defer mu.Unlock()
			obs(Event{Kind: EventCheckProgress, F: f, Done: p.FaultSetsDone, Total: p.FaultSetsTotal})
		}
	}
	store, err := c.stateBackend()
	if err != nil {
		return CheckResult{}, err
	}
	so := condition.ScanOptions{
		Workers:    c.workers,
		OnProgress: progress,
		Store:      store,
	}
	if c.distributed() {
		coord, stop, err := c.startCoordinator()
		if err != nil {
			return CheckResult{}, err
		}
		defer stop()
		res, err := coord.CheckScan(ctx, g, f, threshold, so)
		if err != nil {
			return res, err
		}
		emitCoordinatorEvent(c.observer, coord)
		return res, nil
	}
	return condition.CheckScan(ctx, g, f, threshold, so)
}

// MaxF returns the largest f for which g satisfies the synchronous
// Theorem 1 condition, or -1 if even f = 0 fails. See MaxFWithStats for
// the aggregated work counters.
func MaxF(ctx context.Context, g *Graph, opts ...Option) (int, error) {
	best, _, err := MaxFWithStats(ctx, g, opts...)
	return best, err
}

// MaxFWithStats is MaxF plus the aggregated checker work of the scan. On
// error — including cancellation, which is honored at fault-set
// granularity inside each check — it returns the best f decided so far and
// the stats up to the interruption. WithObserver streams EventCheckProgress
// during each check and one EventCheckDone per completed f.
func MaxFWithStats(ctx context.Context, g *Graph, opts ...Option) (int, MaxFStats, error) {
	c, err := newConfig(opts)
	if err != nil {
		return -1, MaxFStats{}, err
	}
	store, err := c.stateBackend()
	if err != nil {
		return -1, MaxFStats{}, err
	}
	mo := condition.MaxFOptions{Workers: c.workers, Store: store}
	if obs := c.observer; obs != nil {
		var mu sync.Mutex
		emit := func(e Event) {
			mu.Lock()
			defer mu.Unlock()
			obs(e)
		}
		mo.OnCheck = func(f int, res condition.Result) {
			emit(Event{Kind: EventCheckDone, F: f, Satisfied: res.Satisfied})
		}
		mo.OnProgress = func(f int, p condition.Progress) {
			emit(Event{Kind: EventCheckProgress, F: f, Done: p.FaultSetsDone, Total: p.FaultSetsTotal})
		}
	}
	if c.distributed() {
		coord, stop, err := c.startCoordinator()
		if err != nil {
			return -1, MaxFStats{}, err
		}
		defer stop()
		mo.CheckRunner = coord.CheckScan
		best, stats, err := condition.MaxFScan(ctx, g, mo)
		if err != nil {
			return best, stats, err
		}
		emitCoordinatorEvent(c.observer, coord)
		return best, stats, nil
	}
	return condition.MaxFScan(ctx, g, mo)
}
