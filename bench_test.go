package iabc_test

// The benchmark harness: one benchmark per paper experiment (E1–E10, see
// DESIGN.md's experiment index and internal/experiments) plus
// micro-benchmarks for the hot paths (the trimmed-mean update, the exact
// condition checker, propagation, and both simulation engines).
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkE7 -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/async"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/distrib"
	"iabc/internal/experiments"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// —— Experiment benchmarks: cost of regenerating each paper artifact. ——

func BenchmarkE1Theorem1Attack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E1Theorem1Attack()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Frozen {
			b.Fatal("attack did not freeze the partition")
		}
	}
}

func BenchmarkE2Corollary2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E2Corollary2()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("corollary 2 sweep failed")
		}
	}
}

func BenchmarkE3Corollary3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E3Corollary3()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("corollary 3 sweep failed")
		}
	}
}

func BenchmarkE4Hypercube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E4Hypercube()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("hypercube sweep failed")
		}
	}
}

func BenchmarkE5CoreNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E5CoreNetwork()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("core network sweep failed")
		}
	}
}

func BenchmarkE6Chord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E6Chord()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("chord sweep failed")
		}
	}
}

func BenchmarkE7ConvergenceRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E7ConvergenceRate()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("rate sweep failed")
		}
	}
}

func BenchmarkE8Async(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E8Async()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("async sweep failed")
		}
	}
}

func BenchmarkE9TrimAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E9RuleAblation()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("ablation failed")
		}
	}
}

func BenchmarkE10Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E10Scaling()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("scaling failed")
		}
	}
}

func BenchmarkE11Conjecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E11Conjecture()
		if err != nil {
			b.Fatal(err)
		}
		if !r.F1.ConjectureHolds || !r.F2.ConjectureHolds {
			b.Fatal("conjecture verdict changed")
		}
	}
}

func BenchmarkE12Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E12Density()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("density sweep failed")
		}
	}
}

func BenchmarkE13Connectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E13Connectivity()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("connectivity comparison failed")
		}
	}
}

func BenchmarkE14ReducedCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E14ReducedCrossCheck()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("cross-check failed")
		}
	}
}

func BenchmarkE15Delayed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E15Delayed()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatal("staleness sweep failed")
		}
	}
}

// —— Micro-benchmarks: the hot paths behind the experiments. ——

// BenchmarkTrimmedMeanUpdate measures one Z_i evaluation (equation (2)) at
// realistic in-degrees: the copy+sort reference (Update) against the
// quickselect fast path (UpdateInto) that the engines run on. The fast path
// is the hot one — it must stay at 0 allocs/op.
func BenchmarkTrimmedMeanUpdate(b *testing.B) {
	rule := core.TrimmedMean{}
	for _, tc := range []struct{ inDeg, f int }{
		{3, 1}, {7, 2}, {15, 3}, {63, 5},
	} {
		rng := rand.New(rand.NewSource(1))
		received := make([]core.ValueFrom, tc.inDeg)
		for i := range received {
			received[i] = core.ValueFrom{From: i, Value: rng.Float64()}
		}
		b.Run(benchName("indeg", tc.inDeg, "f", tc.f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rule.Update(0.5, received, tc.f); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(benchName("indeg", tc.inDeg, "f", tc.f)+"/fast", func(b *testing.B) {
			var scratch core.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rule.UpdateInto(&scratch, 0.5, received, tc.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConditionCheck measures the exact Theorem 1 decision across the
// families the paper studies. core_n19_f6 is the degree-bound pruning
// showcase: ~342M candidate sets accounted, >99.9% skipped unvisited —
// a size the unpruned enumeration could not finish in reasonable time.
func BenchmarkConditionCheck(b *testing.B) {
	cases := []struct {
		name string
		g    *graph.Graph
		f    int
	}{
		{"core_n7_f2", mustCore(b, 7, 2), 2},
		{"core_n13_f4", mustCore(b, 13, 4), 4},
		{"core_n16_f2", mustCore(b, 16, 2), 2},
		{"core_n19_f6", mustCore(b, 19, 6), 6},
		{"chord_n7_f2", mustChord(b, 7, 2), 2},
		{"chord_n16_f2", mustChord(b, 16, 2), 2},
		{"hypercube_d4_f1", mustCube(b, 4), 1},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := condition.Check(tc.g, tc.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustCore(tb testing.TB, n, f int) *graph.Graph {
	tb.Helper()
	g, err := topology.CoreNetwork(n, f)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func mustChord(tb testing.TB, n, f int) *graph.Graph {
	tb.Helper()
	g, err := topology.Chord(n, f)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func mustCube(tb testing.TB, d int) *graph.Graph {
	tb.Helper()
	g, err := topology.Hypercube(d)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// benchName builds names like "indeg=7/f=2".
func benchName(k1 string, v1 int, k2 string, v2 int) string {
	return fmt.Sprintf("%s=%d/%s=%d", k1, v1, k2, v2)
}

// BenchmarkPropagates measures Definition 3 on a long chain (worst-case
// step count).
func BenchmarkPropagates(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		g, err := topology.DirectedCycle(n)
		if err != nil {
			b.Fatal(err)
		}
		a := nodeset.FromMembers(n, 0)
		rest := a.Complement()
		b.Run(benchName("cycle", n, "th", 1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := condition.Propagates(g, a, rest, 1)
				if err != nil || !p.OK {
					b.Fatalf("err=%v ok=%v", err, p.OK)
				}
			}
		})
	}
}

// BenchmarkEngineRound compares the engines' per-round throughput on a
// mid-sized core network under attack. The plain sub-benchmarks measure a
// whole Run per op (setup included); the -steady variants set MaxRounds to
// b.N so one op is one round of the hot loop with setup amortized away —
// with an EdgeWriter adversary these must report 0 allocs/op.
func BenchmarkEngineRound(b *testing.B) {
	const (
		n, f   = 16, 2
		rounds = 100
	)
	g := mustCore(b, n, f)
	faulty := nodeset.FromMembers(n, 0, 1)
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i)
	}
	cfg := sim.Config{
		G: g, F: f, Faulty: faulty, Initial: initial,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Hug{High: true},
		MaxRounds: rounds,
	}
	for _, eng := range []sim.Engine{sim.Sequential{}, sim.Concurrent{}, sim.Matrix{}} {
		b.Run(eng.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr, err := eng.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if tr.Rounds != rounds {
					b.Fatalf("rounds = %d", tr.Rounds)
				}
			}
			b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
	// Concurrent is excluded from the steady variants: its per-round cost is
	// goroutine scheduling, not allocation, and the barrier makes single-run
	// round counts scheduler-dependent in timing.
	for _, eng := range []sim.Engine{sim.Sequential{}, sim.Matrix{}} {
		b.Run(eng.Name()+"-steady", func(b *testing.B) {
			b.ReportAllocs()
			steady := cfg
			steady.MaxRounds = b.N
			tr, err := eng.Run(steady)
			if err != nil {
				b.Fatal(err)
			}
			if tr.Rounds != b.N {
				b.Fatalf("rounds = %d, want %d", tr.Rounds, b.N)
			}
		})
	}
}

// BenchmarkRunScenarios measures engine-level scenario batching: K
// adversary variations sharing one engine setup, against K independent
// Sequential runs of the same configs.
func BenchmarkRunScenarios(b *testing.B) {
	const (
		n, f   = 16, 2
		rounds = 100
	)
	g := mustCore(b, n, f)
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i)
	}
	base := sim.Config{
		G: g, F: f, Faulty: nodeset.FromMembers(n, 0, 1), Initial: initial,
		Rule: core.TrimmedMean{}, MaxRounds: rounds,
		Adversary: adversary.Hug{High: true},
	}
	scens := []sim.Scenario{
		{Adversary: adversary.Hug{High: true}},
		{Adversary: adversary.Hug{}},
		{Adversary: adversary.Extremes{Amplitude: 50}},
		{Adversary: adversary.Fixed{Value: 1e6}},
		{Adversary: adversary.Fixed{Value: -1e6}},
		{Adversary: &adversary.Insider{High: true}},
		{Adversary: &adversary.Insider{}},
		{Adversary: adversary.Conforming{}},
	}
	b.Run("batched8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trs, err := sim.RunScenarios(base, scens)
			if err != nil {
				b.Fatal(err)
			}
			if len(trs) != len(scens) {
				b.Fatalf("traces = %d", len(trs))
			}
		}
		b.ReportMetric(float64(rounds*len(scens))*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
	})
	b.Run("separate8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sc := range scens {
				cfg := base
				cfg.Adversary = sc.Adversary
				if _, err := (sim.Sequential{}).Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(rounds*len(scens))*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
	})
	// The parallel sweep: same scenarios fanned across workers, one private
	// engine per worker, bit-identical traces. Speedup tracks core count
	// (compare against batched8 on a multi-core machine).
	for _, workers := range []int{2, 4, 0} {
		name := fmt.Sprintf("parallel8/workers=%d", workers)
		if workers == 0 {
			name = "parallel8/workers=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.Sweep(context.Background(), base, scens, sim.SweepOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Traces) != len(scens) {
					b.Fatalf("traces = %d", len(res.Traces))
				}
			}
			b.ReportMetric(float64(rounds*len(scens))*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
	// Pooled engines through the same sweep: the node-pool concurrent
	// variant (goroutines/channels built once per sweep) and the matrix
	// runner.
	for _, eng := range []sim.Engine{sim.Concurrent{}, sim.Matrix{}} {
		eng := eng
		b.Run("pooled8/"+eng.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Sweep(context.Background(), base, scens, sim.SweepOptions{Engine: eng, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds*len(scens))*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}

// BenchmarkMatrixScenarioSweep measures the composed batching dimensions:
// 8 adversary scenarios, each recorded once on the matrix engine and
// SoA-replayed over 64 extra initial vectors, fanned across all cores. The
// metric counts replayed vector-rounds, comparable to BenchmarkMatrixBatch.
func BenchmarkMatrixScenarioSweep(b *testing.B) {
	const (
		n, f   = 16, 2
		rounds = 100
		batch  = 64
	)
	g := mustCore(b, n, f)
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i)
	}
	base := sim.Config{
		G: g, F: f, Faulty: nodeset.FromMembers(n, 0, 1), Initial: initial,
		Rule: core.TrimmedMean{}, MaxRounds: rounds,
		Adversary: adversary.Hug{High: true},
	}
	scens := []sim.Scenario{
		{Adversary: adversary.Hug{High: true}},
		{Adversary: adversary.Hug{}},
		{Adversary: adversary.Extremes{Amplitude: 50}},
		{Adversary: adversary.Fixed{Value: 1e6}},
		{Adversary: adversary.Fixed{Value: -1e6}},
		{Adversary: &adversary.Insider{High: true}},
		{Adversary: &adversary.Insider{}},
		{Adversary: adversary.Conforming{}},
	}
	extras := make([][]float64, batch)
	for x := range extras {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + x)
		}
		extras[x] = v
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Sweep(context.Background(), base, scens, sim.SweepOptions{
			Engine: sim.Matrix{}, Workers: 0, Extras: extras,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Finals) != len(scens) {
			b.Fatalf("finals = %d", len(res.Finals))
		}
	}
	b.ReportMetric(float64(rounds*len(scens)*batch)*float64(b.N)/b.Elapsed().Seconds(), "vecrounds/s")
}

// BenchmarkSequentialSteadyState isolates the engine's own round loop — no
// adversary maps, fault-free network — where the flat-buffer rewrite should
// hold per-round allocation at (amortized) zero.
func BenchmarkSequentialSteadyState(b *testing.B) {
	const (
		n      = 32
		rounds = 100
	)
	g := mustCore(b, n, 3)
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := sim.Sequential{}.Run(sim.Config{
			G: g, F: 3, Initial: initial,
			Rule:      core.TrimmedMean{},
			MaxRounds: rounds,
		})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Rounds != rounds {
			b.Fatalf("rounds = %d", tr.Rounds)
		}
	}
	b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkMatrixBatch measures the amortized multi-scenario path: one
// primary run recording the round programs, then replay over a batch of
// initial vectors. The metric is vector-rounds per second over the batch.
func BenchmarkMatrixBatch(b *testing.B) {
	const (
		n, f   = 16, 2
		rounds = 100
		batch  = 64
	)
	g := mustCore(b, n, f)
	faulty := nodeset.FromMembers(n, 0, 1)
	initial := make([]float64, n)
	extras := make([][]float64, batch)
	for x := range extras {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + x)
		}
		extras[x] = v
	}
	for i := range initial {
		initial[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, finals, err := sim.Matrix{}.RunBatch(sim.Config{
			G: g, F: f, Faulty: faulty, Initial: initial,
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Hug{High: true},
			MaxRounds: rounds,
		}, extras)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Rounds != rounds || len(finals) != batch {
			b.Fatalf("rounds = %d, finals = %d", tr.Rounds, len(finals))
		}
	}
	b.ReportMetric(float64(rounds)*batch*float64(b.N)/b.Elapsed().Seconds(), "vecrounds/s")
}

// BenchmarkMatrixStreamBatch is BenchmarkMatrixBatch on a 20× horizon: the
// streaming replay keeps program memory at O(edges) however many rounds
// run, so the long-horizon rate should match the short one — any gap is a
// regression in the stream-bound path.
func BenchmarkMatrixStreamBatch(b *testing.B) {
	const (
		n, f   = 16, 2
		rounds = 2000
		batch  = 64
	)
	g := mustCore(b, n, f)
	faulty := nodeset.FromMembers(n, 0, 1)
	initial := make([]float64, n)
	extras := make([][]float64, batch)
	for x := range extras {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + x)
		}
		extras[x] = v
	}
	for i := range initial {
		initial[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, finals, err := sim.Matrix{}.RunBatch(sim.Config{
			G: g, F: f, Faulty: faulty, Initial: initial,
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Hug{High: true},
			MaxRounds: rounds,
		}, extras)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Rounds != rounds || len(finals) != batch {
			b.Fatalf("rounds = %d, finals = %d", tr.Rounds, len(finals))
		}
	}
	b.ReportMetric(float64(rounds)*batch*float64(b.N)/b.Elapsed().Seconds(), "vecrounds/s")
}

// BenchmarkAsyncCalendarQueue isolates the event-loop steady state the
// calendar queue carries: constant delays, no epsilon stop, an EdgeWriter
// adversary — the run is all queue push/pop and quorum bookkeeping. The
// metric counts delivered messages.
func BenchmarkAsyncCalendarQueue(b *testing.B) {
	g, err := topology.Complete(7)
	if err != nil {
		b.Fatal(err)
	}
	initial := []float64{0, 1, 2, 3, 4, 5, 6}
	b.ReportAllocs()
	var delivered float64
	for i := 0; i < b.N; i++ {
		tr, err := async.Run(context.Background(), async.Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(7, 6),
			Initial: initial, Rule: core.TrimmedMean{},
			Adversary: adversary.Fixed{Value: 1e4},
			Delays:    async.Fixed{D: 1},
			MaxRounds: 400,
		})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Converged {
			b.Fatal("steady-state run unexpectedly converged")
		}
		delivered += float64(tr.Deliveries)
	}
	b.ReportMetric(delivered/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAsyncRun measures the discrete-event engine end to end.
func BenchmarkAsyncRun(b *testing.B) {
	g, err := topology.Complete(7)
	if err != nil {
		b.Fatal(err)
	}
	initial := []float64{0, 1, 2, 3, 4, 5, 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := async.Run(context.Background(), async.Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(7, 6),
			Initial: initial, Rule: core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 10},
			Delays:    &async.Uniform{B: 2, Rng: rand.New(rand.NewSource(int64(i)))},
			MaxRounds: 100, Epsilon: 1e-6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !tr.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkConditionCheckParallel contrasts the parallel checker with the
// sequential one (BenchmarkConditionCheck/core_n13_f4 is the comparable
// sequential row).
func BenchmarkConditionCheckParallel(b *testing.B) {
	g := mustCore(b, 13, 4)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := condition.CheckParallel(context.Background(), g, 4, workers)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Satisfied {
					b.Fatal("core(13,4) should satisfy")
				}
			}
		})
	}
}

// BenchmarkMaxF measures the full tolerance search on K10 (answers f = 3).
func BenchmarkMaxF(b *testing.B) {
	g, err := topology.Complete(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		maxF, err := condition.MaxF(g)
		if err != nil {
			b.Fatal(err)
		}
		if maxF != 3 {
			b.Fatalf("MaxF = %d", maxF)
		}
	}
}

// BenchmarkDistribDispatch measures the distributed job protocol's
// scheduling floor: no-op jobs leased through a loopback coordinator to two
// in-process workers — grant, report, and ack per job, with nothing to
// compute. Real scans amortize this cost over whole fault-set ranges.
func BenchmarkDistribDispatch(b *testing.B) {
	coord := distrib.NewCoordinator(distrib.Options{})
	if err := coord.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			distrib.Work(ctx, coord.Addr(), distrib.WorkerOptions{})
		}()
	}
	defer func() {
		coord.Close()
		cancel()
		wg.Wait()
	}()
	b.ReportAllocs()
	b.ResetTimer()
	if err := coord.DispatchNoop(context.Background(), int64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
