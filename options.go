package iabc

import (
	"fmt"
	"math/rand"
	"time"

	"iabc/internal/core"
	"iabc/internal/sim"
	"iabc/internal/statestore"
	"iabc/internal/transport"
)

// Engine selects the execution engine behind Simulate and Sweep. The three
// synchronous engines share one semantics and produce bit-identical traces;
// Async is the Section 7 quorum-iteration model under message delays (see
// the package documentation's engine guide).
type Engine int

const (
	// Sequential is the default: the single-goroutine reference engine on a
	// flat message plane, allocation-free in steady state.
	Sequential Engine = iota
	// ConcurrentPool runs one goroutine per node with per-edge channels; in
	// sweeps the goroutine/channel machinery is pooled per worker and
	// reset per scenario.
	ConcurrentPool
	// Matrix materializes each round as a row-stochastic transition and can
	// replay recorded rounds over extra initial vectors (WithExtras /
	// WithBatch). Affine rules only (TrimmedMean, Mean).
	Matrix
	// Async is the Section 7 asynchronous quorum iteration driven by a
	// DelayPolicy (WithDelays). Simulate only — sweeps are synchronous.
	Async
)

// String returns the engine's name as used in traces and CSV output.
func (e Engine) String() string {
	switch e {
	case Sequential:
		return "sequential"
	case ConcurrentPool:
		return "concurrent"
	case Matrix:
		return "matrix"
	case Async:
		return "async"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// simEngine maps the selector to the internal engine implementation.
func (e Engine) simEngine() (sim.Engine, error) {
	switch e {
	case Sequential:
		return sim.Sequential{}, nil
	case ConcurrentPool:
		return sim.Concurrent{}, nil
	case Matrix:
		return sim.Matrix{}, nil
	case Async:
		return nil, fmt.Errorf("iabc: the async engine runs through Simulate only")
	}
	return nil, fmt.Errorf("iabc: unknown engine %d", int(e))
}

// DefaultMaxRounds is the iteration cap applied when WithMaxRounds is not
// given.
const DefaultMaxRounds = 10000

// config collects the options; the zero value plus defaults (see
// newConfig) is a valid fault-free configuration.
type config struct {
	f             int
	faulty        Set
	faultyRaw     []int
	hasFaulty     bool
	initial       []float64
	rule          UpdateRule
	adversary     Strategy
	adversaryName string
	hasAdvName    bool
	seed          int64
	maxRounds     int
	hasMaxRounds  bool
	epsilon       float64
	recordStates  bool
	engine        Engine
	hasEngine     bool
	workers       int
	hasWorkers    bool
	extras        [][]float64
	batch         int
	observer      Observer
	delays        DelayPolicy
	faultyTick    float64
	historyEvery  int
	async         bool
	transport     transport.Transport
	tcp           *transport.TCPConfig
	localNodes    []int
	linger        time.Duration
	chaos         transport.ChaosConfig
	hasChaos      bool
	resendEvery   time.Duration
	sendTimeout   time.Duration
	stallAfter    time.Duration
	stateDir      string
	backend       statestore.Backend
	coordAddr     string
	workerPool    int
	err           error // first option-level error, surfaced by the entry points
}

// Option configures one aspect of a Simulate, Sweep, Check, or MaxF call.
// Options not consulted by an entry point are ignored (WithDelays by a
// synchronous Simulate, WithEpsilon by Check, …), so one option list can
// drive a whole pipeline.
type Option func(*config)

// newConfig applies opts over the defaults: fault-free, TrimmedMean rule,
// Sequential engine, DefaultMaxRounds iterations, seed 1, one worker.
func newConfig(opts []Option) (*config, error) {
	c := &config{rule: core.TrimmedMean{}, seed: 1, maxRounds: DefaultMaxRounds, workers: 1}
	for _, opt := range opts {
		opt(c)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.hasAdvName {
		strat, err := AdversaryByName(c.adversaryName, c.seed)
		if err != nil {
			return nil, err
		}
		c.adversary = strat
	}
	if c.batch > 0 && len(c.extras) > 0 {
		return nil, fmt.Errorf("iabc: WithBatch and WithExtras configure the same replay dimension; use one")
	}
	return c, nil
}

// fail records the first option-level error.
func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithF sets the fault-tolerance parameter f (how many faults the update
// rule trims against, and the bound on Check's fault sets). Default 0.
func WithF(f int) Option { return func(c *config) { c.f = f } }

// WithFaulty marks the listed node IDs as actually faulty. It replaces any
// earlier WithFaulty/WithFaultySet; the ids are bounds-checked against the
// graph when the entry point runs.
func WithFaulty(ids ...int) Option {
	return func(c *config) {
		c.faulty = Set{}
		c.hasFaulty = true
		for _, id := range ids {
			if id < 0 {
				c.fail(fmt.Errorf("iabc: negative faulty node id %d", id))
				return
			}
		}
		c.faultyRaw = append([]int(nil), ids...)
	}
}

// WithFaultySet marks the given set as the actual fault set; its capacity
// must match the graph's node count.
func WithFaultySet(s Set) Option {
	return func(c *config) {
		c.faulty = s
		c.hasFaulty = true
		c.faultyRaw = nil
	}
}

// WithInitial sets the initial state vector v[0] (length must equal the
// graph's node count). Required by Simulate and Sweep.
func WithInitial(v []float64) Option { return func(c *config) { c.initial = v } }

// WithRule sets the update rule Z_i shared by all nodes. Default
// TrimmedMean.
func WithRule(r UpdateRule) Option { return func(c *config) { c.rule = r } }

// WithAdversary sets the Byzantine strategy driving faulty transmissions.
func WithAdversary(s Strategy) Option {
	return func(c *config) { c.adversary = s; c.hasAdvName = false }
}

// WithNamedAdversary selects a built-in strategy by its CLI name (see
// AdversaryNames); randomized strategies are seeded from WithSeed. The name
// is resolved when the entry point runs, so WithSeed may appear later in
// the option list.
func WithNamedAdversary(name string) Option {
	return func(c *config) { c.adversaryName = name; c.hasAdvName = true; c.adversary = nil }
}

// WithSeed seeds the randomized pieces: named randomized adversaries and
// the WithBatch perturbations. Default 1.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithMaxRounds caps the number of iterations (per scenario in a sweep;
// per node in the async model). Default DefaultMaxRounds. The value is
// passed through to the engine's validation, so a non-positive cap fails
// there with the engine's own error.
func WithMaxRounds(rounds int) Option {
	return func(c *config) { c.maxRounds = rounds; c.hasMaxRounds = true }
}

// WithEpsilon stops a run once the fault-free range U−µ is ≤ eps. Default
// 0: run all rounds.
func WithEpsilon(eps float64) Option { return func(c *config) { c.epsilon = eps } }

// WithRecordStates retains the full per-round state matrix in the trace
// (synchronous engines only; memory (MaxRounds+1) × n floats).
func WithRecordStates() Option { return func(c *config) { c.recordStates = true } }

// WithEngine selects the execution engine. Default Sequential; WithExtras
// or WithBatch auto-select Matrix when no engine is given.
func WithEngine(e Engine) Option {
	return func(c *config) { c.engine = e; c.hasEngine = true }
}

// WithWorkers fans independent units of work — sweep scenarios, checker
// fault sets — across n goroutines. 0 selects GOMAXPROCS; the default is 1
// (fully sequential and safe for scenarios sharing mutable adversary
// state). Results are bit-identical at any worker count.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = -1 // internal convention: ≤ 0 selects GOMAXPROCS
		}
		c.workers = n
		c.hasWorkers = true
	}
}

// WithExtras replays each sweep scenario's recorded round programs over
// these extra initial vectors (Matrix engine; every vector must have
// length n). SweepResult.Finals holds the per-vector final states.
func WithExtras(extras [][]float64) Option {
	return func(c *config) { c.extras = extras }
}

// WithBatch is WithExtras with k synthesized vectors: the base initial
// vector plus i.i.d. uniform noise in [-0.5, 0.5), deterministically seeded
// from WithSeed — the one-line form of a what-if sensitivity grid.
func WithBatch(k int) Option {
	return func(c *config) {
		if k < 0 {
			c.fail(fmt.Errorf("iabc: negative batch size %d", k))
			return
		}
		c.batch = k
	}
}

// WithObserver streams progress events to fn while a call runs: per-round
// ranges from Simulate, per-scenario completions from Sweep, and checker
// progress from Check and MaxF. Events may originate from worker
// goroutines, but fn is never invoked concurrently — the facade serializes
// delivery. See Event for the payloads.
func WithObserver(fn Observer) Option { return func(c *config) { c.observer = fn } }

// WithDelays sets the async engine's per-message delay policy. Required by
// Simulate with WithEngine(Async).
func WithDelays(p DelayPolicy) Option { return func(c *config) { c.delays = p } }

// WithFaultyTick sets the interval at which async faulty nodes emit their
// round batches (0 defaults to 1.0).
func WithFaultyTick(t float64) Option { return func(c *config) { c.faultyTick = t } }

// WithHistoryEvery decimates the async trace history to every k-th state
// change (see the async engine's Config.HistoryEvery).
func WithHistoryEvery(k int) Option { return func(c *config) { c.historyEvery = k } }

// WithAsyncCondition makes Check decide the Section 7 asynchronous
// condition (in-link threshold 2f+1) instead of the synchronous f+1.
func WithAsyncCondition() Option { return func(c *config) { c.async = true } }

// WithTransport makes Cluster run over t instead of a run-owned in-process
// transport. The caller keeps ownership: Cluster leaves t open, so a chaos
// wrapper built with NewChaosTransport can be inspected (ChaosStats) after
// the run. Mutually exclusive with WithChaos — wrap explicitly when you
// need both a custom transport and fault injection.
func WithTransport(t Transport) Option {
	return func(c *config) {
		if t == nil {
			c.fail(fmt.Errorf("iabc: WithTransport(nil)"))
			return
		}
		c.transport = t
	}
}

// WithChaos makes Cluster inject seeded network faults: the run-owned
// transport (in-process by default, wire under WithTCPTransport) is wrapped
// in a chaos layer configured by cfg, and cfg.Crashes additionally drive
// the actor crash/restart supervisor. Mutually exclusive with
// WithTransport.
func WithChaos(cfg ChaosConfig) Option {
	return func(c *config) { c.chaos = cfg; c.hasChaos = true }
}

// WithTCPTransport makes Cluster run over a run-owned wire transport:
// cfg.Addrs maps every node id to its host:port (length must equal the
// graph's node count), and the instance hosts the WithLocalNodes subset
// (all nodes when cfg.Local and WithLocalNodes are both empty — a
// single-process cluster over real sockets). The transport is closed when
// the run returns. Composes with WithChaos (the chaos layer wraps the wire
// transport); mutually exclusive with WithTransport — build the transport
// yourself with NewTCPTransport when you need to keep it open.
func WithTCPTransport(cfg TCPTransportConfig) Option {
	return func(c *config) { cc := cfg; c.tcp = &cc }
}

// WithLocalNodes restricts the actors a Cluster call animates to the listed
// node ids — this process's share of a cross-process deployment. The stop
// conditions become local (see the node runtime's Config.Local); combine
// with WithLinger so a finished process keeps serving history resends to
// remote laggards. Default: all nodes.
func WithLocalNodes(ids ...int) Option {
	return func(c *config) { c.localNodes = append([]int(nil), ids...) }
}

// WithLinger keeps a Cluster call's actors alive for d after its local stop
// condition fires, still draining deliveries and serving stall-triggered
// history resends. Without it a finished process's exit looks like a crash
// to remote peers that still need its history. Default 0: return
// immediately.
func WithLinger(d time.Duration) Option { return func(c *config) { c.linger = d } }

// WithResendEvery sets a cluster actor's initial stall-triggered
// retransmission interval (it backs off exponentially while no progress is
// made). 0 — the default — selects the node runtime's default.
func WithResendEvery(d time.Duration) Option { return func(c *config) { c.resendEvery = d } }

// WithSendTimeout sets the per-message send budget covering all retries in
// a cluster run; expired sends are abandoned and repaired by a later resend
// pass. 0 — the default — selects the node runtime's default.
func WithSendTimeout(d time.Duration) Option { return func(c *config) { c.sendTimeout = d } }

// WithStallAfter ends a cluster run with ClusterResult.Stalled once no
// fault-free state change has been observed for d — the liveness cutoff for
// runs under liveness-destroying partitions. 0 (the default) disables it;
// set it whenever the chaos schedule may suspend liveness past MaxRounds'
// reach.
func WithStallAfter(d time.Duration) Option { return func(c *config) { c.stallAfter = d } }

// WithStateDir makes Check and MaxF checkpoint scan progress and cache
// verdicts under dir (created if absent), so an interrupted run restarted
// with the same directory skips completed work and a repeated run over the
// same graph returns its memoized verdict. The directory is a plain
// filesystem layout — safe to inspect, copy, or delete between runs.
// Mutually exclusive with WithBackend.
func WithStateDir(dir string) Option {
	return func(c *config) {
		if dir == "" {
			c.fail(fmt.Errorf("iabc: WithStateDir(\"\")"))
			return
		}
		c.stateDir = dir
	}
}

// WithBackend makes Check and MaxF persist checkpoints and verdicts through
// b — any StateBackend implementation, e.g. NewMemBackend for tests or a
// custom remote store. Mutually exclusive with WithStateDir.
func WithBackend(b StateBackend) Option {
	return func(c *config) {
		if b == nil {
			c.fail(fmt.Errorf("iabc: WithBackend(nil)"))
			return
		}
		c.backend = b
	}
}

// WithCoordinator makes Check, MaxF, and Sweep run as a distributed
// coordinator: the call binds a job port at addr ("host:port"; ":0" picks a
// free port), partitions its work into leased job ranges, and serves them to
// workers that join via Work or `iabc work -join`. Results — verdicts,
// witnesses, work counters, traces — are identical to the single-process
// run, including when workers crash mid-lease; combine with WithStateDir or
// WithBackend for a durable frontier that survives coordinator restarts
// too. Without WithWorkerPool the call waits for remote workers to join.
func WithCoordinator(addr string) Option {
	return func(c *config) {
		if addr == "" {
			c.fail(fmt.Errorf("iabc: WithCoordinator(\"\")"))
			return
		}
		c.coordAddr = addr
	}
}

// WithWorkerPool distributes the call across n in-process workers joined to
// the call's own coordinator (an ephemeral loopback port unless
// WithCoordinator gives it a public one — the two compose). Unlike
// WithWorkers, the work flows through the full job protocol: leases,
// stealing, and the durable frontier behave exactly as in a multi-machine
// deployment, which makes a pool of one a deterministic end-to-end test of
// a distributed setup.
func WithWorkerPool(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.fail(fmt.Errorf("iabc: WithWorkerPool(%d): need at least one worker", n))
			return
		}
		c.workerPool = n
	}
}

// stateBackend resolves the configured persistence backend, if any.
func (c *config) stateBackend() (statestore.Backend, error) {
	if c.backend != nil && c.stateDir != "" {
		return nil, fmt.Errorf("iabc: WithStateDir and WithBackend are mutually exclusive")
	}
	if c.backend != nil {
		return c.backend, nil
	}
	if c.stateDir != "" {
		return statestore.NewDir(c.stateDir)
	}
	return nil, nil
}

// faultySet materializes the configured fault set for an n-node graph.
func (c *config) faultySet(n int) (Set, error) {
	if !c.hasFaulty {
		return Set{}, nil
	}
	if c.faultyRaw != nil {
		s := NewSet(n)
		for _, id := range c.faultyRaw {
			if id >= n {
				return Set{}, fmt.Errorf("iabc: faulty node %d out of range [0,%d)", id, n)
			}
			s.Add(id)
		}
		return s, nil
	}
	return c.faulty, nil
}

// batchExtras synthesizes the WithBatch replay vectors around initial.
func (c *config) batchExtras(initial []float64) [][]float64 {
	if c.batch == 0 {
		return c.extras
	}
	rng := rand.New(rand.NewSource(c.seed))
	extras := make([][]float64, c.batch)
	for x := range extras {
		v := make([]float64, len(initial))
		for i := range v {
			v[i] = initial[i] + rng.Float64() - 0.5
		}
		extras[x] = v
	}
	return extras
}

// simConfig assembles the synchronous engine configuration.
func (c *config) simConfig(g *Graph) (sim.Config, error) {
	faulty, err := c.faultySet(g.N())
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		G:            g,
		F:            c.f,
		Faulty:       faulty,
		Initial:      c.initial,
		Rule:         c.rule,
		Adversary:    c.adversary,
		MaxRounds:    c.maxRounds,
		Epsilon:      c.epsilon,
		RecordStates: c.recordStates,
	}, nil
}
