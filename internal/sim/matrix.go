package sim

import (
	"errors"
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// Matrix is the batched engine built on the matrix representation of
// iterative approximate Byzantine consensus (Vaidya, arXiv:1203.1888): for a
// fixed execution, every round of Algorithm 1 is the application of a
// row-stochastic transition to the state vector,
//
//	v[t] = M[t] · v[t−1],
//
// where row i places weight a_i on node i itself and on each surviving
// in-neighbor, and the Byzantine influence appears as per-round constants
// (the values the adversary injected on surviving edges). Matrix.Run
// materializes that transition — a roundProgram — for each round while
// executing it, and produces traces bit-identical to Sequential: the program
// rows replay the exact summation order of the canonical update (own state
// first, then survivors in ascending sender order, one multiply by a_i at
// the end).
//
// The payoff is RunBatch: the recorded per-round programs can be replayed
// over many additional initial-value vectors at a few flops per edge, with
// the round structure (trim decisions, adversary values, weights) paid for
// once. The batch columns follow the primary execution's matrices — the
// matrix-representation semantics, i.e. a sensitivity/what-if analysis of
// the recorded execution, not independent simulations.
//
// Matrix supports the rules whose rounds are affine in the state:
// core.TrimmedMean and core.Mean. The zero value is ready to use.
type Matrix struct{}

var _ Engine = Matrix{}

// Name implements Engine.
func (Matrix) Name() string { return "matrix" }

// rowTerm is one summand of a program row, in canonical received order:
// either a reference to a state-vector column (a fault-free or ghost value,
// col ≥ 0) or an adversary-injected literal (col == −1).
type rowTerm struct {
	col int
	val float64
}

// roundProgram is one round's row-stochastic transition. terms[i] lists the
// surviving in-edge summands of node i; weight[i] is a_i. Frozen nodes
// (faulty with undefined ghost update) have no terms and weight 1, so the
// row is the identity.
type roundProgram struct {
	terms  [][]rowTerm
	weight []float64
}

// apply evaluates dst = M·src with the canonical summation order.
func (pr *roundProgram) apply(src, dst []float64) {
	for i := range dst {
		sum := src[i]
		for _, t := range pr.terms[i] {
			if t.col >= 0 {
				sum += src[t.col]
			} else {
				sum += t.val
			}
		}
		dst[i] = pr.weight[i] * sum
	}
}

// applyBatch evaluates dst = M·src over K state vectors stored
// structure-of-arrays: src[i*K+x] is vector x's value at node i. Each
// program row is decoded once and applied to all K columns in contiguous
// inner loops (acc is a caller-owned K-wide accumulator), so the batch pays
// the sparse row walk once instead of K times and the inner loops vectorize.
// Per column the floating-point operations and their order are exactly those
// of apply, so results are bit-identical to K scalar replays.
func (pr *roundProgram) applyBatch(src, dst []float64, K int, acc []float64) {
	for i := range pr.weight {
		base := i * K
		copy(acc, src[base:base+K])
		for _, t := range pr.terms[i] {
			if t.col >= 0 {
				col := src[t.col*K : t.col*K+K]
				for x := range acc {
					acc[x] += col[x]
				}
			} else {
				v := t.val
				for x := range acc {
					acc[x] += v
				}
			}
		}
		w := pr.weight[i]
		for x := range acc {
			dst[base+x] = w * acc[x]
		}
	}
}

// Run implements Engine.
func (Matrix) Run(cfg Config) (*Trace, error) {
	tr, _, err := runMatrix(cfg, false)
	return tr, err
}

// newRunner builds the matrix engine's pooled runner for scenario sweeps:
// the plane, receive buffer, survivor mask, and recorded-program storage are
// all reused across scenarios, and replay buffers are kept warm for the
// composed Extras dimension.
func (Matrix) newRunner(g *graph.Graph) ScenarioRunner {
	return &matrixRunner{g: g, st: newMatrixScratch(g)}
}

// matrixRunner implements ScenarioRunner and batchRunner over a
// matrixScratch.
type matrixRunner struct {
	g    *graph.Graph
	st   *matrixScratch
	bufs replayBufs
}

func (r *matrixRunner) RunScenario(cfg *Config) (*Trace, error) {
	if cfg.G != r.g {
		return nil, errors.New("sim: scenario config graph differs from the runner's graph")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, _, err := runMatrixOn(r.st, cfg, false)
	if err != nil {
		return nil, err
	}
	return &tr.Trace, nil
}

// runBatchScenario records the scenario's round programs, replays them over
// the extra initial vectors, and recycles the program storage for the next
// scenario.
func (r *matrixRunner) runBatchScenario(cfg *Config, extras [][]float64) (*Trace, [][]float64, error) {
	if cfg.G != r.g {
		return nil, nil, errors.New("sim: scenario config graph differs from the runner's graph")
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	tr, progs, err := runMatrixOn(r.st, cfg, true)
	if err != nil {
		return nil, nil, err
	}
	finals := replayPrograms(progs, extras, r.g.N(), &r.bufs)
	r.st.recycle(progs)
	return &tr.Trace, finals, nil
}

func (r *matrixRunner) Close() {}

// replayBufs holds the structure-of-arrays replay state (cur/nxt ping-pong
// planes and the K-wide accumulator) so repeated replays do not reallocate.
type replayBufs struct {
	cur, nxt, acc []float64
}

// replayPrograms replays the recorded program sequence over every extra
// initial vector in SoA layout and returns the per-vector final states,
// index-aligned with extras. Results are bit-identical to replaying the
// vectors one at a time (see applyBatch).
func replayPrograms(progs []*roundProgram, extras [][]float64, n int, bufs *replayBufs) [][]float64 {
	K := len(extras)
	finals := make([][]float64, K)
	if K == 0 {
		return finals
	}
	if cap(bufs.cur) < n*K {
		bufs.cur = make([]float64, n*K)
		bufs.nxt = make([]float64, n*K)
	}
	if cap(bufs.acc) < K {
		bufs.acc = make([]float64, K)
	}
	// Transpose extras into SoA: cur[i*K+x] = extras[x][i].
	cur, nxt, acc := bufs.cur[:n*K], bufs.nxt[:n*K], bufs.acc[:K]
	for x, init := range extras {
		for i, v := range init {
			cur[i*K+x] = v
		}
	}
	for _, pr := range progs {
		pr.applyBatch(cur, nxt, K, acc)
		cur, nxt = nxt, cur
	}
	for x := range finals {
		final := make([]float64, n)
		for i := range final {
			final[i] = cur[i*K+x]
		}
		finals[x] = final
	}
	return finals
}

// RunBatch executes cfg once (the primary run), recording each round's
// transition program, then replays the same program sequence over every
// extra initial vector. It returns the primary trace and, index-aligned
// with extras, each extra vector's final state. Extra vectors must have
// length cfg.G.N().
//
// Replay cost is O(rounds · edges) for the whole batch-row walk plus
// O(rounds · edges · K) flops with no trimming, no sorting, and no
// adversary calls — the amortization that makes wide multi-scenario sweeps
// cheap. The batch is laid out structure-of-arrays (see applyBatch) so each
// recorded program row streams over all K vectors in one pass; results are
// bit-identical to replaying the vectors one at a time. The recording
// retains every executed round's program, O(rounds · edges) memory for the
// primary run: cap MaxRounds (or rely on the Epsilon stop) accordingly on
// large graphs.
func (Matrix) RunBatch(cfg Config, extras [][]float64) (*Trace, [][]float64, error) {
	if cfg.G == nil {
		return nil, nil, errors.New("sim: nil graph")
	}
	n := cfg.G.N()
	for x, init := range extras {
		if len(init) != n {
			return nil, nil, fmt.Errorf("sim: extra initial %d has length %d, want n = %d", x, len(init), n)
		}
	}
	tr, progs, err := runMatrix(cfg, true)
	if err != nil {
		return nil, nil, err
	}
	var bufs replayBufs
	return tr, replayPrograms(progs, extras, n, &bufs), nil
}

// matrixScratch bundles the reusable per-graph state behind matrix runs: the
// source-tracking plane, receive buffer, survivor mask, frozen flags, and a
// free list of round programs recycled across recorded scenarios.
type matrixScratch struct {
	g      *graph.Graph
	p      *edgePlane
	recv   []core.ValueFrom
	mask   []bool
	frozen []bool
	pool   []*roundProgram
}

func newMatrixScratch(g *graph.Graph) *matrixScratch {
	n := g.N()
	p := newEdgePlane(g, nodeset.New(n), true)
	return &matrixScratch{
		g:      g,
		p:      p,
		recv:   newRecvPlane(p),
		mask:   make([]bool, p.inOff[n]),
		frozen: make([]bool, n),
	}
}

// takeProgram hands out a program, preferring the free list so term-slice
// capacity survives across rounds and scenarios.
func (st *matrixScratch) takeProgram() *roundProgram {
	if k := len(st.pool); k > 0 {
		pr := st.pool[k-1]
		st.pool = st.pool[:k-1]
		return pr
	}
	n := st.p.n
	return &roundProgram{terms: make([][]rowTerm, n), weight: make([]float64, n)}
}

// recycle returns recorded programs to the free list once their replay is
// done.
func (st *matrixScratch) recycle(progs []*roundProgram) {
	st.pool = append(st.pool, progs...)
}

// runMatrix is the single-run entry: validate, build fresh scratch, run.
func runMatrix(cfg Config, keep bool) (*Trace, []*roundProgram, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	tr, progs, err := runMatrixOn(newMatrixScratch(cfg.G), &cfg, keep)
	if err != nil {
		return nil, nil, err
	}
	return &tr.Trace, progs, nil
}

// runMatrixOn is the shared primary loop over reusable scratch state. When
// keep is true every round's program is retained (and returned) for replay;
// otherwise a single program is rebuilt in place each round to keep the run
// allocation-light. The config must already be validated and its graph must
// match the scratch's.
func runMatrixOn(st *matrixScratch, cfg *Config, keep bool) (*tracer, []*roundProgram, error) {
	var trimF int // f used for trimming; -1 marks the Mean rule
	switch cfg.Rule.(type) {
	case core.TrimmedMean:
		trimF = cfg.F
	case core.Mean:
		trimF = -1
	default:
		return nil, nil, fmt.Errorf("sim: matrix engine requires an affine-representable rule (core.TrimmedMean or core.Mean), got %s", cfg.Rule.Name())
	}

	n := st.p.n
	faulty := cfg.faulty()
	faultFree := faulty.Complement()
	st.p.setFaulty(faulty)

	states := snapshot(cfg.Initial)
	next := make([]float64, n)
	tr := newTrace(cfg, states, faultFree)
	p := st.p

	recv := st.recv
	mask := st.mask
	var scratch core.Scratch
	hasAdv := cfg.Adversary != nil && len(p.faulty) > 0
	var ew adversary.EdgeWriter
	if hasAdv {
		ew, _ = cfg.Adversary.(adversary.EdgeWriter)
	}

	// frozen[i]: the update is statically undefined for node i's in-degree
	// (only possible for faulty nodes — Validate rejects it for fault-free
	// ones); the row stays the identity, matching Sequential's freeze.
	frozen := st.frozen
	for i := 0; i < n; i++ {
		frozen[i] = cfg.Rule.Validate(cfg.G.InDegree(i), cfg.F) != nil
	}

	var progs []*roundProgram
	var spare *roundProgram
	newProgram := func() *roundProgram {
		if keep {
			pr := st.takeProgram()
			progs = append(progs, pr)
			return pr
		}
		// The program is applied before the next round rebuilds it, so one
		// rebuilt-in-place program suffices.
		if spare == nil {
			spare = st.takeProgram()
		}
		return spare
	}
	defer func() {
		if spare != nil {
			st.recycle([]*roundProgram{spare})
		}
	}()

	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		p.fill(states)
		if hasAdv {
			p.applyAdversary(cfg.Adversary, ew, roundView(cfg, round, states, faultFree, faulty))
		}
		pr := newProgram()
		for i := 0; i < n; i++ {
			lo, hi := p.inOff[i], p.inOff[i+1]
			if frozen[i] {
				pr.terms[i] = pr.terms[i][:0]
				pr.weight[i] = 1
				continue
			}
			buf := recv[lo:hi]
			for k := range buf {
				buf[k].Value = p.values[lo+k]
			}
			row := mask[lo:hi]
			if trimF >= 0 {
				if err := scratch.SurvivorMask(buf, trimF, row); err != nil {
					return nil, nil, fmt.Errorf("sim: node %d round %d: %w", i, round, err)
				}
				pr.weight[i] = core.Weight(len(buf), trimF)
			} else {
				for k := range row {
					row[k] = true
				}
				pr.weight[i] = 1 / float64(len(buf)+1)
			}
			terms := pr.terms[i][:0]
			for k := range buf {
				if !row[k] {
					continue
				}
				if p.fromState[lo+k] {
					terms = append(terms, rowTerm{col: buf[k].From})
				} else {
					terms = append(terms, rowTerm{col: -1, val: buf[k].Value})
				}
			}
			pr.terms[i] = terms
		}

		pr.apply(states, next)
		states, next = next, states

		if done := tr.record(cfg, round, states, faultFree); done {
			break
		}
	}
	tr.finish(states)
	return tr, progs, nil
}
