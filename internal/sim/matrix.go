package sim

import (
	"errors"
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// Matrix is the batched engine built on the matrix representation of
// iterative approximate Byzantine consensus (Vaidya, arXiv:1203.1888): for a
// fixed execution, every round of Algorithm 1 is the application of a
// row-stochastic transition to the state vector,
//
//	v[t] = M[t] · v[t−1],
//
// where row i places weight a_i on node i itself and on each surviving
// in-neighbor, and the Byzantine influence appears as per-round constants
// (the values the adversary injected on surviving edges). Matrix.Run
// materializes that transition — a roundProgram — for each round while
// executing it, and produces traces bit-identical to Sequential: the program
// rows replay the exact summation order of the canonical update (own state
// first, then survivors in ascending sender order, one multiply by a_i at
// the end).
//
// The payoff is RunBatch: each round's program is replayed over many
// additional initial-value vectors at a few flops per edge, with the round
// structure (trim decisions, adversary values, weights) paid for once. The
// replay streams: every program is pushed through all extra vectors the
// moment it is recorded, before the next round rebuilds it, so the whole
// batch needs only O(edges) program memory however many rounds execute. The
// batch columns follow the primary execution's matrices — the
// matrix-representation semantics, i.e. a sensitivity/what-if analysis of
// the recorded execution, not independent simulations.
//
// Matrix supports the rules whose rounds are affine in the state:
// core.TrimmedMean and core.Mean. The zero value is ready to use.
type Matrix struct{}

var _ Engine = Matrix{}

// Name implements Engine.
func (Matrix) Name() string { return "matrix" }

// roundProgram is one round's row-stochastic transition in a flat CSR-style
// encoding: row i's summands are cols[rowOff[i]:rowOff[i+1]] in canonical
// received order. An entry ≥ 0 references a state-vector column (a
// fault-free or ghost value); an entry of −1 consumes the next literal from
// the consts stream (an adversary-injected value) — the separated col/const
// streams keep both dense while the shared cols walk preserves the exact
// per-row term order. weight[i] is a_i. Frozen nodes (faulty with undefined
// ghost update) have no terms and weight 1, so the row is the identity.
//
// The whole program is three contiguous arrays plus the offsets — O(edges)
// memory with no per-row slice headers — so apply/applyBatch stream it with
// contiguous loads and the backing capacity survives reset across rounds.
type roundProgram struct {
	rowOff []int32
	cols   []int32
	consts []float64
	weight []float64
}

// reset readies the program for re-recording an n-node round, keeping the
// backing arrays' capacity.
func (pr *roundProgram) reset(n int) {
	pr.rowOff = append(pr.rowOff[:0], 0)
	pr.cols = pr.cols[:0]
	pr.consts = pr.consts[:0]
	if cap(pr.weight) < n {
		pr.weight = make([]float64, n)
	}
	pr.weight = pr.weight[:n]
}

// endRow seals the current row after its terms were appended.
func (pr *roundProgram) endRow() {
	pr.rowOff = append(pr.rowOff, int32(len(pr.cols)))
}

// apply evaluates dst = M·src with the canonical summation order.
func (pr *roundProgram) apply(src, dst []float64) {
	cols, consts, weight, rowOff := pr.cols, pr.consts, pr.weight, pr.rowOff
	ci := 0
	for i := range dst {
		sum := src[i]
		for _, c := range cols[rowOff[i]:rowOff[i+1]] {
			if c >= 0 {
				sum += src[c]
			} else {
				sum += consts[ci]
				ci++
			}
		}
		dst[i] = weight[i] * sum
	}
}

// applyBatch evaluates dst = M·src over K state vectors stored
// structure-of-arrays: src[i*K+x] is vector x's value at node i. Each
// program row is decoded once and applied to all K columns in contiguous
// inner loops (acc is a caller-owned K-wide accumulator), so the batch pays
// the flat row walk once instead of K times and the K-stride inner loops run
// over plain contiguous slices of equal length — the shape the compiler
// turns into branch-free, bounds-check-eliminated code. Per column the
// floating-point operations and their order are exactly those of apply, so
// results are bit-identical to K scalar replays.
func (pr *roundProgram) applyBatch(src, dst []float64, K int, acc []float64) {
	cols, consts, weight, rowOff := pr.cols, pr.consts, pr.weight, pr.rowOff
	acc = acc[:K]
	ci := 0
	for i := range weight {
		base := i * K
		copy(acc, src[base:base+K])
		for _, c := range cols[rowOff[i]:rowOff[i+1]] {
			if c >= 0 {
				col := src[int(c)*K : int(c)*K+K]
				for x := range acc {
					acc[x] += col[x]
				}
			} else {
				v := consts[ci]
				ci++
				for x := range acc {
					acc[x] += v
				}
			}
		}
		w := weight[i]
		out := dst[base : base+K]
		for x := range acc {
			out[x] = w * acc[x]
		}
	}
}

// Run implements Engine.
func (Matrix) Run(cfg Config) (*Trace, error) {
	tr, _, err := runMatrix(cfg, false, nil)
	return tr, err
}

// newRunner builds the matrix engine's pooled runner for scenario sweeps:
// the plane, receive buffer, survivor mask, and program storage are all
// reused across scenarios, and the streaming replay buffers are kept warm
// for the composed Extras dimension.
func (Matrix) newRunner(g *graph.Graph) ScenarioRunner {
	return &matrixRunner{g: g, st: newMatrixScratch(g)}
}

// matrixRunner implements ScenarioRunner and batchRunner over a
// matrixScratch.
type matrixRunner struct {
	g    *graph.Graph
	st   *matrixScratch
	bufs replayBufs
}

func (r *matrixRunner) RunScenario(cfg *Config) (*Trace, error) {
	if cfg.G != r.g {
		return nil, errors.New("sim: scenario config graph differs from the runner's graph")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, _, err := runMatrixOn(r.st, cfg, false, nil)
	if err != nil {
		return nil, err
	}
	return &tr.Trace, nil
}

// runBatchScenario streams the scenario's round programs through the extra
// initial vectors as they are recorded — the program storage is one
// rebuilt-in-place round, O(edges), regardless of the scenario's round
// budget. The finals are materialized fresh (not aliased to the pooled
// replay buffers) because Sweep retains every scenario's finals side by
// side.
func (r *matrixRunner) runBatchScenario(cfg *Config, extras [][]float64) (*Trace, [][]float64, error) {
	if cfg.G != r.g {
		return nil, nil, errors.New("sim: scenario config graph differs from the runner's graph")
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	var stream replayStream
	stream.init(&r.bufs, extras, r.g.N())
	tr, _, err := runMatrixOn(r.st, cfg, false, &stream)
	if err != nil {
		return nil, nil, err
	}
	return &tr.Trace, stream.finals(nil), nil
}

func (r *matrixRunner) Close() {}

// replayBufs holds the structure-of-arrays replay state (cur/nxt ping-pong
// planes, the K-wide accumulator, and the finals storage) so repeated
// replays do not reallocate.
type replayBufs struct {
	cur, nxt, acc []float64
	// finals/finalsBack are the per-vector result storage replayPrograms
	// hands back: headers and backing are reused across calls, so results
	// from one replay are only valid until the next replay through the same
	// bufs.
	finals     [][]float64
	finalsBack []float64
}

// soa readies the ping-pong planes and accumulator for an n×K replay and
// returns them, reusing capacity when it suffices.
func (bufs *replayBufs) soa(n, K int) (cur, nxt, acc []float64) {
	if cap(bufs.cur) < n*K {
		bufs.cur = make([]float64, n*K)
		bufs.nxt = make([]float64, n*K)
	}
	if cap(bufs.acc) < K {
		bufs.acc = make([]float64, K)
	}
	return bufs.cur[:n*K], bufs.nxt[:n*K], bufs.acc[:K]
}

// takeFinals returns a K×n finals matrix backed by the bufs' reusable
// storage.
func (bufs *replayBufs) takeFinals(n, K int) [][]float64 {
	if cap(bufs.finals) < K {
		bufs.finals = make([][]float64, K)
	}
	if cap(bufs.finalsBack) < n*K {
		bufs.finalsBack = make([]float64, n*K)
	}
	finals := bufs.finals[:K]
	back := bufs.finalsBack[:n*K]
	for x := range finals {
		finals[x] = back[x*n : (x+1)*n : (x+1)*n]
	}
	return finals
}

// replayStream is the streaming half of the O(edges) batch replay: the
// primary loop hands each round's freshly recorded program to step, which
// pushes it through all K extra vectors before the next round rebuilds the
// program — no program sequence is ever retained.
type replayStream struct {
	K        int
	n        int
	cur, nxt []float64 // SoA ping-pong planes, views into a replayBufs
	acc      []float64
}

// init carves the SoA planes out of bufs and seeds cur with the transposed
// extras: cur[i*K+x] = extras[x][i]. A zero-length extras slice leaves the
// stream inert (step is a no-op).
func (s *replayStream) init(bufs *replayBufs, extras [][]float64, n int) {
	s.K = len(extras)
	s.n = n
	if s.K == 0 {
		s.cur, s.nxt, s.acc = nil, nil, nil
		return
	}
	s.cur, s.nxt, s.acc = bufs.soa(n, s.K)
	for x, init := range extras {
		for i, v := range init {
			s.cur[i*s.K+x] = v
		}
	}
}

// step advances all K vectors through one recorded round program. Per
// column the operations are exactly those of apply (see applyBatch), so the
// streamed batch is bit-identical to retaining the program sequence and
// replaying it afterwards.
func (s *replayStream) step(pr *roundProgram) {
	if s.K == 0 {
		return
	}
	pr.applyBatch(s.cur, s.nxt, s.K, s.acc)
	s.cur, s.nxt = s.nxt, s.cur
}

// finals transposes the streamed SoA state back into per-vector final
// slices, index-aligned with the init extras. With dst == nil the finals
// are freshly allocated (safe to retain — the stream's buffers are reused);
// otherwise they are written into dst[:K].
func (s *replayStream) finals(dst [][]float64) [][]float64 {
	if dst == nil {
		dst = make([][]float64, s.K)
	}
	dst = dst[:s.K]
	for x := range dst {
		if dst[x] == nil {
			dst[x] = make([]float64, s.n)
		}
		for i := range dst[x] {
			dst[x][i] = s.cur[i*s.K+x]
		}
	}
	return dst
}

// replayPrograms replays a retained program sequence over every extra
// initial vector in SoA layout and returns the per-vector final states,
// index-aligned with extras. Results are bit-identical to replaying the
// vectors one at a time (see applyBatch). The returned finals are backed by
// bufs-owned storage — allocation-free once the bufs are warm — and remain
// valid only until the next replay through the same bufs; copy them out to
// retain them longer.
func replayPrograms(progs []*roundProgram, extras [][]float64, n int, bufs *replayBufs) [][]float64 {
	K := len(extras)
	if K == 0 {
		return bufs.finals[:0:0]
	}
	cur, nxt, acc := bufs.soa(n, K)
	// Transpose extras into SoA: cur[i*K+x] = extras[x][i].
	for x, init := range extras {
		for i, v := range init {
			cur[i*K+x] = v
		}
	}
	for _, pr := range progs {
		pr.applyBatch(cur, nxt, K, acc)
		cur, nxt = nxt, cur
	}
	finals := bufs.takeFinals(n, K)
	for x := range finals {
		final := finals[x]
		for i := range final {
			final[i] = cur[i*K+x]
		}
	}
	return finals
}

// validateExtras bounds-checks the extra initial vectors against the
// config's graph.
func validateExtras(cfg *Config, extras [][]float64) error {
	if cfg.G == nil {
		return errors.New("sim: nil graph")
	}
	n := cfg.G.N()
	for x, init := range extras {
		if len(init) != n {
			return fmt.Errorf("sim: extra initial %d has length %d, want n = %d", x, len(init), n)
		}
	}
	return nil
}

// RunBatch executes cfg once (the primary run), streaming each round's
// transition program through every extra initial vector as it is recorded.
// It returns the primary trace and, index-aligned with extras, each extra
// vector's final state. Extra vectors must have length cfg.G.N().
//
// Replay cost is O(rounds · edges) time for the batch-row walk plus
// O(rounds · edges · K) flops with no trimming, no sorting, and no
// adversary calls — the amortization that makes wide multi-scenario sweeps
// cheap. The batch is laid out structure-of-arrays (see applyBatch) so each
// recorded program row streams over all K vectors in one pass; results are
// bit-identical to replaying the vectors one at a time. Program memory is
// O(edges) — one flat program rebuilt in place per round — independent of
// the round count, so arbitrarily long runs and large K compose freely.
func (Matrix) RunBatch(cfg Config, extras [][]float64) (*Trace, [][]float64, error) {
	if err := validateExtras(&cfg, extras); err != nil {
		return nil, nil, err
	}
	var bufs replayBufs
	var stream replayStream
	stream.init(&bufs, extras, cfg.G.N())
	tr, _, err := runMatrix(cfg, false, &stream)
	if err != nil {
		return nil, nil, err
	}
	return tr, stream.finals(nil), nil
}

// runBatchRetained is the record-then-replay reference implementation of
// RunBatch: it retains every executed round's program — O(rounds · edges)
// memory — and replays the whole sequence afterwards through
// replayPrograms. The streaming production path is pinned bit-identical to
// it by the conformance suite (TestStreamingReplayMatchesRetainedReference);
// it is not used outside tests.
func runBatchRetained(cfg Config, extras [][]float64, bufs *replayBufs) (*Trace, [][]float64, error) {
	if err := validateExtras(&cfg, extras); err != nil {
		return nil, nil, err
	}
	tr, progs, err := runMatrix(cfg, true, nil)
	if err != nil {
		return nil, nil, err
	}
	return tr, replayPrograms(progs, extras, cfg.G.N(), bufs), nil
}

// matrixScratch bundles the reusable per-graph state behind matrix runs: the
// source-tracking plane, receive buffer, survivor mask, frozen flags, and a
// free list of round programs recycled across recorded scenarios.
type matrixScratch struct {
	g      *graph.Graph
	p      *edgePlane
	recv   []core.ValueFrom
	mask   []bool
	frozen []bool
	pool   []*roundProgram
}

func newMatrixScratch(g *graph.Graph) *matrixScratch {
	n := g.N()
	p := newEdgePlane(g, nodeset.New(n), true)
	return &matrixScratch{
		g:      g,
		p:      p,
		recv:   newRecvPlane(p),
		mask:   make([]bool, p.inOff[n]),
		frozen: make([]bool, n),
	}
}

// takeProgram hands out a program, preferring the free list so flat-array
// capacity survives across rounds and scenarios.
func (st *matrixScratch) takeProgram() *roundProgram {
	if k := len(st.pool); k > 0 {
		pr := st.pool[k-1]
		st.pool = st.pool[:k-1]
		return pr
	}
	return &roundProgram{}
}

// recycle returns recorded programs to the free list once their replay is
// done.
func (st *matrixScratch) recycle(progs []*roundProgram) {
	st.pool = append(st.pool, progs...)
}

// runMatrix is the single-run entry: validate, build fresh scratch, run.
func runMatrix(cfg Config, keep bool, stream *replayStream) (*Trace, []*roundProgram, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	tr, progs, err := runMatrixOn(newMatrixScratch(cfg.G), &cfg, keep, stream)
	if err != nil {
		return nil, nil, err
	}
	return &tr.Trace, progs, nil
}

// runMatrixOn is the shared primary loop over reusable scratch state. When
// stream is non-nil every round's freshly recorded program is additionally
// pushed through the stream's extra vectors before the next round rebuilds
// it — the O(edges)-memory streaming replay. When keep is true every
// round's program is retained (and returned) instead — the
// O(rounds · edges) reference used by runBatchRetained and its tests.
// Otherwise a single program is rebuilt in place each round to keep the run
// allocation-light. The config must already be validated and its graph must
// match the scratch's.
func runMatrixOn(st *matrixScratch, cfg *Config, keep bool, stream *replayStream) (*tracer, []*roundProgram, error) {
	var trimF int // f used for trimming; -1 marks the Mean rule
	switch cfg.Rule.(type) {
	case core.TrimmedMean:
		trimF = cfg.F
	case core.Mean:
		trimF = -1
	default:
		return nil, nil, fmt.Errorf("sim: matrix engine requires an affine-representable rule (core.TrimmedMean or core.Mean), got %s", cfg.Rule.Name())
	}

	n := st.p.n
	faulty := cfg.faulty()
	faultFree := faulty.Complement()
	st.p.setFaulty(faulty)

	states := snapshot(cfg.Initial)
	next := make([]float64, n)
	tr := newTrace(cfg, states, faultFree)
	p := st.p

	recv := st.recv
	mask := st.mask
	var scratch core.Scratch
	hasAdv := cfg.Adversary != nil && len(p.faulty) > 0
	var ew adversary.EdgeWriter
	if hasAdv {
		ew, _ = cfg.Adversary.(adversary.EdgeWriter)
	}

	// frozen[i]: the update is statically undefined for node i's in-degree
	// (only possible for faulty nodes — Validate rejects it for fault-free
	// ones); the row stays the identity, matching Sequential's freeze.
	frozen := st.frozen
	for i := 0; i < n; i++ {
		frozen[i] = cfg.Rule.Validate(cfg.G.InDegree(i), cfg.F) != nil
	}

	var progs []*roundProgram
	var spare *roundProgram
	newProgram := func() *roundProgram {
		if keep {
			pr := st.takeProgram()
			progs = append(progs, pr)
			return pr
		}
		// The program is applied (and streamed) before the next round
		// rebuilds it, so one rebuilt-in-place program suffices.
		if spare == nil {
			spare = st.takeProgram()
		}
		return spare
	}
	defer func() {
		if spare != nil {
			st.recycle([]*roundProgram{spare})
		}
	}()

	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		p.fill(states)
		if hasAdv {
			p.applyAdversary(cfg.Adversary, ew, roundView(cfg, round, states, faultFree, faulty))
		}
		pr := newProgram()
		pr.reset(n)
		for i := 0; i < n; i++ {
			lo, hi := p.inOff[i], p.inOff[i+1]
			if frozen[i] {
				pr.weight[i] = 1
				pr.endRow()
				continue
			}
			buf := recv[lo:hi]
			for k := range buf {
				buf[k].Value = p.values[lo+k]
			}
			row := mask[lo:hi]
			if trimF >= 0 {
				if err := scratch.SurvivorMask(buf, trimF, row); err != nil {
					return nil, nil, fmt.Errorf("sim: node %d round %d: %w", i, round, err)
				}
				pr.weight[i] = core.Weight(len(buf), trimF)
			} else {
				for k := range row {
					row[k] = true
				}
				pr.weight[i] = 1 / float64(len(buf)+1)
			}
			for k := range buf {
				if !row[k] {
					continue
				}
				if p.fromState[lo+k] {
					pr.cols = append(pr.cols, int32(buf[k].From))
				} else {
					pr.cols = append(pr.cols, -1)
					pr.consts = append(pr.consts, buf[k].Value)
				}
			}
			pr.endRow()
		}

		pr.apply(states, next)
		states, next = next, states
		if stream != nil {
			stream.step(pr)
		}

		if done := tr.record(cfg, round, states, faultFree); done {
			break
		}
	}
	tr.finish(states)
	return tr, progs, nil
}
