//go:build race

package sim

// raceEnabled reports that the race detector is active; allocation-exact
// tests skip, since instrumentation allocates nondeterministically.
const raceEnabled = true
