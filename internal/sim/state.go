package sim

// Sweep-level durability: each completed scenario of a Sweep is persisted
// as one record through a statestore.Backend, so a SIGKILLed sweep resumes
// scenario-identically — the checker's checkpoint/resume story (see
// internal/condition/state.go) extended to the simulation side, closing the
// asymmetry ROADMAP item 2 notes.
//
// Soundness: a scenario's trace is a pure function of its derived Config
// (engines are deterministic; randomized adversaries are seeded at
// construction). The sweep's state key therefore hashes the full derived
// identity — graph encoding, engine, rule, adversary names, every float of
// every initial vector — plus a caller-supplied salt for identity the
// config cannot see (the seed behind a *RandomNoise). Floats are stored as
// IEEE-754 bit patterns, so a resumed trace is bit-identical to the one the
// interrupted run produced, NaN and ±Inf included.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"iabc/internal/nodeset"
	"iabc/internal/statestore"
)

// sweepStateVersion versions the persisted scenario record schema; bump on
// any change so stale records miss instead of misparse.
const sweepStateVersion = 1

// floatBits converts a float slice to its bit-pattern image (nil-safe).
func floatBits(fs []float64) []uint64 {
	if fs == nil {
		return nil
	}
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = math.Float64bits(f)
	}
	return out
}

// bitsFloat inverts floatBits.
func bitsFloat(bs []uint64) []float64 {
	if bs == nil {
		return nil
	}
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = math.Float64frombits(b)
	}
	return out
}

func floatBits2(fss [][]float64) [][]uint64 {
	if fss == nil {
		return nil
	}
	out := make([][]uint64, len(fss))
	for i, fs := range fss {
		out[i] = floatBits(fs)
	}
	return out
}

func bitsFloat2(bss [][]uint64) [][]float64 {
	if bss == nil {
		return nil
	}
	out := make([][]float64, len(bss))
	for i, bs := range bss {
		out[i] = bitsFloat(bs)
	}
	return out
}

// traceRecord is the bit-exact serialized image of a Trace.
type traceRecord struct {
	Rounds        int        `json:"rounds"`
	Converged     bool       `json:"converged"`
	U             []uint64   `json:"u"`
	Mu            []uint64   `json:"mu"`
	States        [][]uint64 `json:"states,omitempty"`
	Final         []uint64   `json:"final"`
	FaultFreeN    int        `json:"fault_free_n"`
	FaultFree     []int      `json:"fault_free"`
	RuleName      string     `json:"rule"`
	AdversaryName string     `json:"adversary"`
}

func toTraceRecord(tr *Trace) traceRecord {
	return traceRecord{
		Rounds:        tr.Rounds,
		Converged:     tr.Converged,
		U:             floatBits(tr.U),
		Mu:            floatBits(tr.Mu),
		States:        floatBits2(tr.States),
		Final:         floatBits(tr.Final),
		FaultFreeN:    tr.FaultFree.Cap(),
		FaultFree:     tr.FaultFree.Members(),
		RuleName:      tr.RuleName,
		AdversaryName: tr.AdversaryName,
	}
}

func (rec *traceRecord) trace() *Trace {
	return &Trace{
		Rounds:        rec.Rounds,
		Converged:     rec.Converged,
		U:             bitsFloat(rec.U),
		Mu:            bitsFloat(rec.Mu),
		States:        bitsFloat2(rec.States),
		Final:         bitsFloat(rec.Final),
		FaultFree:     nodeset.FromMembers(rec.FaultFreeN, rec.FaultFree...),
		RuleName:      rec.RuleName,
		AdversaryName: rec.AdversaryName,
	}
}

// scenarioResultRecord pairs a trace with its extras finals — the payload a
// distributed worker ships back and the sweep checkpoint stores.
type scenarioResultRecord struct {
	Trace  traceRecord `json:"trace"`
	Finals [][]uint64  `json:"finals,omitempty"`
}

// EncodeScenarioResult serializes one scenario's outcome bit-exactly —
// shared by the sweep checkpoint records and the distributed runner's
// result frames.
func EncodeScenarioResult(tr *Trace, finals [][]float64) ([]byte, error) {
	return json.Marshal(scenarioResultRecord{Trace: toTraceRecord(tr), Finals: floatBits2(finals)})
}

// DecodeScenarioResult inverts EncodeScenarioResult.
func DecodeScenarioResult(raw []byte) (*Trace, [][]float64, error) {
	var rec scenarioResultRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, nil, fmt.Errorf("sim: decoding scenario result: %w", err)
	}
	return rec.Trace.trace(), bitsFloat2(rec.Finals), nil
}

// sweepScenarioKeyRecord is what the state key hashes per scenario — every
// input that determines the trace.
type sweepScenarioKeyRecord struct {
	Name      string   `json:"name"`
	Adversary string   `json:"adversary"`
	Rule      string   `json:"rule"`
	F         int      `json:"f"`
	MaxRounds int      `json:"max_rounds"`
	Epsilon   uint64   `json:"epsilon"`
	Faulty    []int    `json:"faulty"`
	Initial   []uint64 `json:"initial"`
	Record    bool     `json:"record_states"`
}

// sweepIdent derives the sweep's full identity string. The per-scenario
// record embeds it whole (not just its hash), so a hash collision degrades
// to a cache miss, never a foreign trace.
func sweepIdent(engineName, salt string, cfgs []Config, scenarios []Scenario, extras [][]float64) (string, error) {
	keys := make([]sweepScenarioKeyRecord, len(cfgs))
	for i := range cfgs {
		cfg := &cfgs[i]
		_, advName := names(cfg)
		keys[i] = sweepScenarioKeyRecord{
			Name:      scenarioName(&scenarios[i]),
			Adversary: advName,
			Rule:      cfg.Rule.Name(),
			F:         cfg.F,
			MaxRounds: cfg.MaxRounds,
			Epsilon:   math.Float64bits(cfg.Epsilon),
			Faulty:    cfg.faulty().Members(),
			Initial:   floatBits(cfg.Initial),
			Record:    cfg.RecordStates,
		}
	}
	ident, err := json.Marshal(struct {
		Version   int                      `json:"version"`
		Graph     string                   `json:"graph"`
		Engine    string                   `json:"engine"`
		Salt      string                   `json:"salt,omitempty"`
		Scenarios []sweepScenarioKeyRecord `json:"scenarios"`
		Extras    [][]uint64               `json:"extras,omitempty"`
	}{sweepStateVersion, cfgs[0].G.Encode(), engineName, salt, keys, floatBits2(extras)})
	if err != nil {
		return "", err
	}
	return string(ident), nil
}

// sweepScenarioRecord is the persisted image of one completed scenario.
type sweepScenarioRecord struct {
	Version int             `json:"version"`
	Ident   string          `json:"ident"`
	Index   int             `json:"index"`
	Result  json.RawMessage `json:"result"`
}

// sweepState carries one Sweep run's persistence.
type sweepState struct {
	store statestore.Backend
	ident string
	base  string // key prefix "sweep/<hash>"
}

// newSweepState derives the sweep identity and key prefix.
func newSweepState(store statestore.Backend, engineName, salt string, cfgs []Config, scenarios []Scenario, extras [][]float64) (*sweepState, error) {
	ident, err := sweepIdent(engineName, salt, cfgs, scenarios, extras)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256([]byte(ident))
	return &sweepState{
		store: store, ident: ident,
		base: "sweep/" + hex.EncodeToString(sum[:8]),
	}, nil
}

func (ss *sweepState) key(i int) string { return fmt.Sprintf("%s/s%06d", ss.base, i) }

// load returns scenario i's persisted result, or (nil, nil, nil) when
// absent, stale, or foreign — those simply re-run.
func (ss *sweepState) load(ctx context.Context, i int) (*Trace, [][]float64, error) {
	raw, err := ss.store.Read(ctx, ss.key(i))
	if err == statestore.ErrNotFound {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sim: reading sweep checkpoint: %w", err)
	}
	var rec sweepScenarioRecord
	if json.Unmarshal(raw, &rec) != nil || rec.Version != sweepStateVersion ||
		rec.Ident != ss.ident || rec.Index != i {
		return nil, nil, nil // foreign or stale record: re-run the scenario
	}
	tr, finals, err := DecodeScenarioResult(rec.Result)
	if err != nil {
		return nil, nil, nil // corrupt payload: re-run the scenario
	}
	return tr, finals, nil
}

// save persists scenario i's completed result.
func (ss *sweepState) save(ctx context.Context, i int, tr *Trace, finals [][]float64) error {
	payload, err := EncodeScenarioResult(tr, finals)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(sweepScenarioRecord{
		Version: sweepStateVersion, Ident: ss.ident, Index: i, Result: payload,
	})
	if err != nil {
		return err
	}
	if err := ss.store.Write(ctx, ss.key(i), raw); err != nil {
		return fmt.Errorf("sim: writing sweep checkpoint: %w", err)
	}
	return nil
}
