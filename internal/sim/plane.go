package sim

import (
	"sort"

	"iabc/internal/adversary"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// edgePlane is the flat, edge-indexed message plane behind the engines'
// round loops. Every directed edge (s, i) gets a stable flat index: the
// in-edges of node i occupy the contiguous range [inOff[i], inOff[i+1]), in
// ascending sender order. One []float64 then carries the value delivered on
// every edge this round — no per-round maps, no per-round allocation.
//
// The geometry (offsets, sender lists, reverse index) depends only on the
// graph, so RunScenarios builds it once and replays it across scenarios,
// swapping the fault set with setFaulty. The plane is refilled in place
// every round.
type edgePlane struct {
	g *graph.Graph
	n int
	// inOff has length n+1; senders[inOff[i]:inOff[i+1]] are N-_i ascending.
	inOff   []int
	senders []int
	// values[e] is the value carried by in-edge e this round.
	values []float64
	// fromState[e], when tracking is enabled (Matrix engine), records
	// whether values[e] is the sender's (ghost) state rather than an
	// adversary-injected literal.
	fromState []bool
	// edgeOf[s][k] is the flat index of the edge s -> OutView(s)[k]: the
	// reverse index the adversary scatter uses.
	edgeOf [][]int
	// faulty lists the faulty node IDs ascending — hoisted out of the round
	// loop so cfg.faulty() is not re-materialized per round.
	faulty []int
	// sink is the reusable EdgeSink handed to EdgeWriter strategies; it
	// scatters straight into values (and fromState) via edgeOf.
	sink planeSink
}

// planeSink adapts the plane to adversary.EdgeSink for one faulty sender at
// a time. It lives inside the plane so taking its address never allocates.
type planeSink struct {
	p      *edgePlane
	sender int
}

// Send implements adversary.EdgeSink: deliver value on the sender's k-th
// out-edge, marking it adversary-injected for source tracking.
func (s *planeSink) Send(k int, value float64) {
	e := s.p.edgeOf[s.sender][k]
	s.p.values[e] = value
	if s.p.fromState != nil {
		s.p.fromState[e] = false
	}
}

// newEdgePlane builds the plane for one run. trackSource enables the
// fromState plane (only the Matrix engine needs it).
func newEdgePlane(g *graph.Graph, faulty nodeset.Set, trackSource bool) *edgePlane {
	n := g.N()
	p := &edgePlane{
		g:      g,
		n:      n,
		inOff:  make([]int, n+1),
		edgeOf: make([][]int, n),
	}
	p.sink.p = p
	p.setFaulty(faulty)
	for i := 0; i < n; i++ {
		p.inOff[i+1] = p.inOff[i] + g.InDegree(i)
	}
	m := p.inOff[n]
	p.senders = make([]int, m)
	p.values = make([]float64, m)
	if trackSource {
		p.fromState = make([]bool, m)
	}
	for i := 0; i < n; i++ {
		copy(p.senders[p.inOff[i]:p.inOff[i+1]], g.InView(i))
	}
	for s := 0; s < n; s++ {
		outs := g.OutView(s)
		idx := make([]int, len(outs))
		for k, to := range outs {
			// Position of s within the sorted in-list of `to`.
			pos := sort.SearchInts(g.InView(to), s)
			idx[k] = p.inOff[to] + pos
		}
		p.edgeOf[s] = idx
	}
	return p
}

// setFaulty re-materializes the ascending faulty-ID list, reusing the
// existing slice storage. RunScenarios calls it when a scenario swaps the
// fault set.
func (p *edgePlane) setFaulty(faulty nodeset.Set) {
	p.faulty = p.faulty[:0]
	faulty.ForEach(func(i int) bool {
		p.faulty = append(p.faulty, i)
		return true
	})
}

// fill loads the fault-free default for the round: every in-edge carries the
// sender's (ghost) state.
func (p *edgePlane) fill(states []float64) {
	for e, s := range p.senders {
		p.values[e] = states[s]
	}
	if p.fromState != nil {
		for e := range p.fromState {
			p.fromState[e] = true
		}
	}
}

// applyAdversary scatters each faulty sender's transmissions onto the plane,
// in ascending sender order (preserving the deterministic rng stream of
// randomized strategies). When the strategy implements adversary.EdgeWriter
// (ew non-nil, probed once per run by the caller) values are written
// straight onto the plane with no per-round map; otherwise the Messages map
// fallback runs. Either way, edges the strategy leaves unwritten keep the
// ghost default already in place, matching the synchronous substitution
// semantics (see package adversary).
func (p *edgePlane) applyAdversary(adv adversary.Strategy, ew adversary.EdgeWriter, view adversary.RoundView) {
	if ew != nil {
		for _, s := range p.faulty {
			p.sink.sender = s
			ew.WriteMessages(view, s, &p.sink)
		}
		return
	}
	for _, s := range p.faulty {
		msgs := adv.Messages(view, s)
		for k, to := range p.g.OutView(s) {
			if v, ok := msgs[to]; ok {
				e := p.edgeOf[s][k]
				p.values[e] = v
				if p.fromState != nil {
					p.fromState[e] = false
				}
			}
		}
	}
}
