package sim

import (
	"sort"

	"iabc/internal/adversary"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// edgePlane is the flat, edge-indexed message plane behind the engines'
// round loops. Every directed edge (s, i) gets a stable flat index: the
// in-edges of node i occupy the contiguous range [inOff[i], inOff[i+1]), in
// ascending sender order. One []float64 then carries the value delivered on
// every edge this round — no per-round maps, no per-round allocation.
//
// The plane is built once per run (O(m log d) for the reverse index) and
// refilled in place every round.
type edgePlane struct {
	g *graph.Graph
	n int
	// inOff has length n+1; senders[inOff[i]:inOff[i+1]] are N-_i ascending.
	inOff   []int
	senders []int
	// values[e] is the value carried by in-edge e this round.
	values []float64
	// fromState[e], when tracking is enabled (Matrix engine), records
	// whether values[e] is the sender's (ghost) state rather than an
	// adversary-injected literal.
	fromState []bool
	// edgeOf[s][k] is the flat index of the edge s -> OutView(s)[k]: the
	// reverse index the adversary scatter uses.
	edgeOf [][]int
	// faulty lists the faulty node IDs ascending — hoisted out of the round
	// loop so cfg.faulty() is not re-materialized per round.
	faulty []int
}

// newEdgePlane builds the plane for one run. trackSource enables the
// fromState plane (only the Matrix engine needs it).
func newEdgePlane(g *graph.Graph, faulty nodeset.Set, trackSource bool) *edgePlane {
	n := g.N()
	p := &edgePlane{
		g:      g,
		n:      n,
		inOff:  make([]int, n+1),
		edgeOf: make([][]int, n),
		faulty: faulty.Members(),
	}
	for i := 0; i < n; i++ {
		p.inOff[i+1] = p.inOff[i] + g.InDegree(i)
	}
	m := p.inOff[n]
	p.senders = make([]int, m)
	p.values = make([]float64, m)
	if trackSource {
		p.fromState = make([]bool, m)
	}
	for i := 0; i < n; i++ {
		copy(p.senders[p.inOff[i]:p.inOff[i+1]], g.InView(i))
	}
	for s := 0; s < n; s++ {
		outs := g.OutView(s)
		idx := make([]int, len(outs))
		for k, to := range outs {
			// Position of s within the sorted in-list of `to`.
			pos := sort.SearchInts(g.InView(to), s)
			idx[k] = p.inOff[to] + pos
		}
		p.edgeOf[s] = idx
	}
	return p
}

// fill loads the fault-free default for the round: every in-edge carries the
// sender's (ghost) state.
func (p *edgePlane) fill(states []float64) {
	for e, s := range p.senders {
		p.values[e] = states[s]
	}
	if p.fromState != nil {
		for e := range p.fromState {
			p.fromState[e] = true
		}
	}
}

// applyAdversary asks the strategy for each faulty sender's transmissions —
// in ascending sender order, preserving the deterministic rng stream of
// randomized strategies — and scatters them onto the plane. Receivers the
// strategy omits keep the ghost default already in place, matching the
// synchronous substitution semantics (see package adversary).
func (p *edgePlane) applyAdversary(adv adversary.Strategy, view adversary.RoundView) {
	for _, s := range p.faulty {
		msgs := adv.Messages(view, s)
		for k, to := range p.g.OutView(s) {
			if v, ok := msgs[to]; ok {
				e := p.edgeOf[s][k]
				p.values[e] = v
				if p.fromState != nil {
					p.fromState[e] = false
				}
			}
		}
	}
}
