package sim

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// scenarioBase builds the shared base config for scenario-sweep tests.
func scenarioBase(t *testing.T) Config {
	t.Helper()
	g, err := topology.CoreNetwork(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 10)
	for i := range initial {
		initial[i] = float64(i) * 1.25
	}
	return Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(10, 0, 1), Initial: initial,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Hug{High: true},
		MaxRounds: 80, Epsilon: 1e-9, RecordStates: true,
	}
}

// TestScenarioOverrideSemantics pins the Scenario.apply override rules: the
// Cap() sentinel for sized sets, the HasFaulty escape hatch for zero-value
// sets, and nil-ness for Initial. Regression for the ambiguity where "keep
// base" and "override to fault-free" were indistinguishable depending on how
// the empty set was constructed.
func TestScenarioOverrideSemantics(t *testing.T) {
	base := scenarioBase(t)
	n := base.G.N()

	// Reference traces for the two behaviors a fault-set override can mean.
	withFaults, err := Sequential{}.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faultFreeCfg := base
	faultFreeCfg.Faulty = nodeset.New(n)
	noFaults, err := Sequential{}.Run(faultFreeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(withFaults.U[1]) == math.Float64bits(noFaults.U[1]) {
		t.Fatal("test is vacuous: faulty and fault-free runs coincide")
	}

	cases := []struct {
		name string
		s    Scenario
		want *Trace
	}{
		{"zero-value set keeps base", Scenario{Name: "keep"}, withFaults},
		{"sized empty set overrides to fault-free", Scenario{Name: "sized", Faulty: nodeset.New(n)}, noFaults},
		{"HasFaulty with zero-value set overrides to fault-free", Scenario{Name: "flagged", HasFaulty: true}, noFaults},
		{"non-empty set overrides", Scenario{Name: "moved", Faulty: nodeset.FromMembers(n, 3, 4)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			traces, err := RunScenarios(base, []Scenario{tc.s})
			if err != nil {
				t.Fatal(err)
			}
			if tc.want != nil {
				assertTracesEqual(t, tc.name, tc.want, traces[0])
				return
			}
			// The moved fault set must match a direct run of the derived
			// config.
			cfg := base
			cfg.Faulty = tc.s.Faulty
			want, err := Sequential{}.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertTracesEqual(t, tc.name, want, traces[0])
		})
	}

	// Initial: nil keeps base, non-nil overrides.
	override := make([]float64, n)
	for i := range override {
		override[i] = 100 - float64(i)
	}
	traces, err := RunScenarios(base, []Scenario{{Name: "init"}, {Name: "init2", Initial: override}})
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, "nil initial keeps base", withFaults, traces[0])
	cfg := base
	cfg.Initial = override
	want, err := Sequential{}.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, "initial override", want, traces[1])
}

// failAboveRule is a rule that passes static validation but errors at run
// time once a node's own state reaches the threshold — the hook the
// error-contract test uses to force a mid-sweep failure.
type failAboveRule struct{ threshold float64 }

func (failAboveRule) Name() string                { return "fail-above" }
func (failAboveRule) Validate(inDeg, f int) error { return nil }
func (r failAboveRule) Update(own float64, received []core.ValueFrom, f int) (float64, error) {
	if own >= r.threshold {
		return 0, errors.New("threshold tripped")
	}
	return (core.TrimmedMean{}).Update(own, received, f)
}

// TestSweepErrorContract pins the partial-result contract: any failure —
// up-front validation or mid-sweep runtime — yields nil traces (never a
// completed prefix) and an error naming the failing scenario's index and
// name. Exercised at both worker counts.
func TestSweepErrorContract(t *testing.T) {
	base := scenarioBase(t)
	n := base.G.N()

	t.Run("validation", func(t *testing.T) {
		scens := []Scenario{
			{Name: "ok"},
			{Name: "short-initial", Initial: []float64{1, 2, 3}},
		}
		traces, err := RunScenarios(base, scens)
		if err == nil {
			t.Fatal("expected validation error")
		}
		if traces != nil {
			t.Fatalf("traces must be nil on error, got %d", len(traces))
		}
		if !strings.Contains(err.Error(), "scenario 1") || !strings.Contains(err.Error(), "short-initial") {
			t.Errorf("error does not name the failing scenario: %v", err)
		}
	})

	t.Run("runtime", func(t *testing.T) {
		cfg := base
		cfg.Rule = failAboveRule{threshold: 50}
		cfg.Adversary = adversary.Conforming{}
		// Above threshold (and not all equal, so the epsilon stop does not
		// fire at round 0): the first fault-free update errors.
		hot := make([]float64, n)
		for i := range hot {
			hot[i] = 75 + float64(i)
		}
		scens := []Scenario{
			{Name: "cool"},
			{Name: "hot", Initial: hot},
			{Name: "cool2"},
		}
		for _, workers := range []int{1, 3} {
			res, err := Sweep(context.Background(), cfg, scens, SweepOptions{Workers: workers})
			if err == nil {
				t.Fatalf("workers=%d: expected runtime error", workers)
			}
			if res != nil {
				t.Fatalf("workers=%d: result must be nil on error", workers)
			}
			if !strings.Contains(err.Error(), "scenario 1") || !strings.Contains(err.Error(), "hot") {
				t.Errorf("workers=%d: error does not name the failing scenario: %v", workers, err)
			}
		}
	})
}

// TestSweepSizeAwareScheduling pins the scheduling satellite: with more
// than one effective worker, Sweep dispatches scenarios
// largest-estimated-cost-first (effective MaxRounds × edges × replay
// width), and the SweepResult is bit-identical to an unsorted
// (natural-order) execution — scheduling may only move work in time, never
// change results. A single-worker sweep keeps natural order, so its
// OnScenario stream arrives index-ordered.
func TestSweepSizeAwareScheduling(t *testing.T) {
	base := scenarioBase(t)
	base.Epsilon = 0 // run every scenario to its full (overridden) budget
	scens := []Scenario{
		{Name: "short", Adversary: adversary.Hug{}, MaxRounds: 10},
		{Name: "long", Adversary: adversary.Extremes{Amplitude: 20}, MaxRounds: 120},
		{Name: "base-budget", Adversary: adversary.Fixed{Value: 1e5}},
		{Name: "mid", Adversary: adversary.Hug{High: true}, MaxRounds: 40},
		{Name: "long-too", Adversary: adversary.Conforming{}, MaxRounds: 120},
	}
	cfgs := make([]Config, len(scens))
	for i := range scens {
		cfgs[i] = scens[i].apply(base)
		if err := cfgs[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}

	order := scheduleOrder(cfgs, 0)
	// Costs: 10, 120, 80 (base), 40, 120 → descending with stable ties:
	// 1, 4, 2, 3, 0.
	want := []int{1, 4, 2, 3, 0}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("scheduleOrder = %v, want %v", order, want)
		}
	}

	for _, workers := range []int{1, 3} {
		opts := SweepOptions{Workers: workers}
		scheduled, err := Sweep(context.Background(), base, scens, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		natural, err := sweepOrdered(context.Background(), Sequential{}, scens, cfgs, opts, []int{0, 1, 2, 3, 4})
		if err != nil {
			t.Fatalf("workers=%d natural: %v", workers, err)
		}
		for i := range scens {
			if scheduled.Traces[i].Rounds != cfgs[i].MaxRounds {
				t.Errorf("scenario %d ran %d rounds, want MaxRounds override %d",
					i, scheduled.Traces[i].Rounds, cfgs[i].MaxRounds)
			}
			assertTracesEqual(t, scens[i].Name, natural.Traces[i], scheduled.Traces[i])
		}
	}

	// A single-worker sweep keeps natural dispatch order: OnScenario
	// arrives strictly index-ascending.
	var seen []int
	if _, err := Sweep(context.Background(), base, scens, SweepOptions{
		Workers:    1,
		OnScenario: func(i int, _ string, _ *Trace) { seen = append(seen, i) },
	}); err != nil {
		t.Fatal(err)
	}
	for k := range seen {
		if seen[k] != k {
			t.Fatalf("workers=1 delivery order = %v, want index order", seen)
		}
	}

	// The MaxRounds override must match a direct run of the derived config.
	direct, err := Sequential{}.Run(cfgs[1])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(context.Background(), base, scens[1:2], SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, "maxrounds override", direct, res.Traces[0])
}

// TestSweepCancellation pins the context contract: a canceled sweep returns
// nil, wraps context.Canceled with the completed-scenario count, and stops
// within one scenario at any worker count.
func TestSweepCancellation(t *testing.T) {
	base := scenarioBase(t)
	base.Epsilon = 0
	base.MaxRounds = 50
	scens := parallelScenarios(base.G.N())

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, workers := range []int{1, 4} {
			res, err := Sweep(ctx, base, scens, SweepOptions{Workers: workers})
			if res != nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: res=%v err=%v, want nil + context.Canceled", workers, res, err)
			}
			if !strings.Contains(err.Error(), "canceled after") {
				t.Errorf("workers=%d: error does not report progress: %v", workers, err)
			}
		}
	})

	t.Run("mid-sweep", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Int64
		opts := SweepOptions{Workers: 2, OnScenario: func(int, string, *Trace) {
			if fired.Add(1) == 2 {
				cancel()
			}
		}}
		res, err := Sweep(ctx, base, scens, opts)
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("res=%v err=%v, want nil + context.Canceled", res, err)
		}
		if n := fired.Load(); n >= int64(len(scens)) {
			t.Errorf("sweep ran all %d scenarios despite cancellation", n)
		}
	})
}

// TestSweepOnScenario checks the per-scenario observer hook: one call per
// completed scenario with the scenario's index, resolved name, and trace.
func TestSweepOnScenario(t *testing.T) {
	base := scenarioBase(t)
	scens := []Scenario{
		{Name: "first"},
		{Adversary: adversary.Extremes{Amplitude: 5}}, // name defaults to the adversary
	}
	var mu sync.Mutex
	got := map[int]string{}
	res, err := Sweep(context.Background(), base, scens, SweepOptions{
		Workers: 2,
		OnScenario: func(i int, name string, tr *Trace) {
			mu.Lock()
			defer mu.Unlock()
			if tr == nil || tr.Rounds == 0 {
				t.Errorf("scenario %d: bad trace in observer", i)
			}
			got[i] = name
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scens) || got[0] != "first" || got[1] != scens[1].Adversary.Name() {
		t.Fatalf("observer calls = %v", got)
	}
	if len(res.Traces) != len(scens) {
		t.Fatalf("traces = %d", len(res.Traces))
	}
}

// parallelScenarios builds one scenario per built-in adversary, each with a
// fresh strategy instance so no mutable state (rng streams, insider scratch)
// is shared across workers. Must be re-invoked per sweep: randomized
// strategies consume their stream.
func parallelScenarios(n int) []Scenario {
	mks := []struct {
		name string
		mk   func() adversary.Strategy
	}{
		{"conforming", func() adversary.Strategy { return adversary.Conforming{} }},
		{"fixed-high", func() adversary.Strategy { return adversary.Fixed{Value: 1e6} }},
		{"fixed-low", func() adversary.Strategy { return adversary.Fixed{Value: -1e6} }},
		{"silent", func() adversary.Strategy { return adversary.Silent{} }},
		{"noise", func() adversary.Strategy {
			return &adversary.RandomNoise{Rng: rand.New(rand.NewSource(4242)), Lo: -9, Hi: 9}
		}},
		{"extremes", func() adversary.Strategy { return adversary.Extremes{Amplitude: 40} }},
		{"partition", func() adversary.Strategy {
			return adversary.PartitionAttack{
				L: nodeset.FromMembers(n, 2, 3), R: nodeset.FromMembers(n, 4, 5),
				Low: 0, High: 11, Eps: 0.5,
			}
		}},
		{"hug-high", func() adversary.Strategy { return adversary.Hug{High: true} }},
		{"hug-low", func() adversary.Strategy { return adversary.Hug{} }},
		{"insider-high", func() adversary.Strategy { return &adversary.Insider{High: true} }},
		{"insider-low", func() adversary.Strategy { return &adversary.Insider{} }},
	}
	var scens []Scenario
	for _, m := range mks {
		scens = append(scens, Scenario{Name: m.name, Adversary: m.mk()})
		// A second variation per strategy (different fault set) so the
		// sweep is longer than the worker count and fault-set swapping is
		// exercised mid-sweep.
		scens = append(scens, Scenario{
			Name: m.name + "/moved", Adversary: m.mk(),
			Faulty: nodeset.FromMembers(n, 1, 7),
		})
	}
	return scens
}

// TestSweepParallelBitIdentical is the race-mode equivalence gate: a
// parallel sweep (workers > 1) must be bit-identical to the sequential sweep
// on every built-in adversary, for every pooled engine. Run under -race in
// CI, this also proves the worker-private runners share no simulation state.
func TestSweepParallelBitIdentical(t *testing.T) {
	base := scenarioBase(t)
	n := base.G.N()
	for _, eng := range []Engine{Sequential{}, Concurrent{}, Matrix{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			seq, err := Sweep(context.Background(), base, parallelScenarios(n), SweepOptions{Engine: eng, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 0} { // 0 = GOMAXPROCS
				par, err := Sweep(context.Background(), base, parallelScenarios(n), SweepOptions{Engine: eng, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(par.Traces) != len(seq.Traces) {
					t.Fatalf("workers=%d: %d traces, want %d", workers, len(par.Traces), len(seq.Traces))
				}
				for i := range seq.Traces {
					assertTracesEqual(t, seq.Traces[i].AdversaryName, seq.Traces[i], par.Traces[i])
				}
			}
		})
	}
}

// TestSweepMatrixBatchConformance pins the composed batching dimensions:
// Sweep with the Matrix engine and Extras must reproduce, bit for bit, both
// the per-scenario primary traces and the per-scenario RunBatch finals of
// independent Matrix.RunBatch calls.
func TestSweepMatrixBatchConformance(t *testing.T) {
	base := scenarioBase(t)
	n := base.G.N()
	const K = 7
	extras := make([][]float64, K)
	rng := rand.New(rand.NewSource(9))
	for x := range extras {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*20 - 5
		}
		extras[x] = v
	}
	scens := []Scenario{
		{Name: "hug", Adversary: adversary.Hug{High: true}},
		{Name: "extremes", Adversary: adversary.Extremes{Amplitude: 30}},
		{Name: "fault-free", HasFaulty: true, Adversary: adversary.Conforming{}},
		{Name: "moved", Faulty: nodeset.FromMembers(n, 4, 8), Adversary: adversary.Fixed{Value: 1e4}},
	}
	for _, workers := range []int{1, 2} {
		res, err := Sweep(context.Background(), base, scens, SweepOptions{Engine: Matrix{}, Workers: workers, Extras: extras})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Finals) != len(scens) {
			t.Fatalf("workers=%d: %d finals, want %d", workers, len(res.Finals), len(scens))
		}
		for i, s := range scens {
			cfg := s.apply(base)
			wantTr, wantFinals, err := Matrix{}.RunBatch(cfg, extras)
			if err != nil {
				t.Fatal(err)
			}
			assertTracesEqual(t, s.Name, wantTr, res.Traces[i])
			for x := range wantFinals {
				for j := range wantFinals[x] {
					if math.Float64bits(wantFinals[x][j]) != math.Float64bits(res.Finals[i][x][j]) {
						t.Fatalf("workers=%d scenario %s extra %d node %d: %v != %v",
							workers, s.Name, x, j, res.Finals[i][x][j], wantFinals[x][j])
					}
				}
			}
		}
	}
	// Extras with a non-matrix engine is a configuration error.
	if _, err := Sweep(context.Background(), base, scens, SweepOptions{Engine: Sequential{}, Extras: extras}); err == nil {
		t.Fatal("Extras with the sequential engine should be rejected")
	}
	// Mis-sized extra vectors are rejected before any simulation.
	if _, err := Sweep(context.Background(), base, scens, SweepOptions{Engine: Matrix{}, Extras: [][]float64{{1, 2}}}); err == nil {
		t.Fatal("short extra vector should be rejected")
	}
}

// TestConcurrentPoolReuse drives one pool through many scenarios (changing
// adversary, fault set, and initial vector) and checks every trace against
// the one-shot Concurrent engine, then exercises the pool's failure modes.
func TestConcurrentPoolReuse(t *testing.T) {
	base := scenarioBase(t)
	n := base.G.N()
	pool := NewConcurrentPool(base.G)
	defer pool.Close()

	scens := parallelScenarios(n)
	for i := range scens {
		cfg := scens[i].apply(base)
		got, err := pool.RunScenario(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", scens[i].Name, err)
		}
		// Fresh strategy for the reference run: pooled run consumed any rng.
		ref := parallelScenarios(n)[i].apply(base)
		want, err := Concurrent{}.Run(ref)
		if err != nil {
			t.Fatal(err)
		}
		assertTracesEqual(t, scens[i].Name, want, got)
	}

	other, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := Config{
		G: other, F: 1, Initial: []float64{0, 1, 2, 3, 4},
		Rule: core.TrimmedMean{}, MaxRounds: 5,
	}
	if _, err := pool.RunScenario(&mismatch); err == nil {
		t.Fatal("pool must reject a config for a different graph")
	}
	bad := base
	bad.MaxRounds = 0
	if _, err := pool.RunScenario(&bad); err == nil {
		t.Fatal("pool must validate configs")
	}
}

// TestConcurrentPoolClosed checks that a closed pool refuses work and that
// double-Close is safe.
func TestConcurrentPoolClosed(t *testing.T) {
	base := scenarioBase(t)
	pool := NewConcurrentPool(base.G)
	pool.Close()
	pool.Close() // idempotent
	cfg := base
	if _, err := pool.RunScenario(&cfg); err == nil {
		t.Fatal("closed pool must refuse scenarios")
	}
}

// oddEngine is an Engine without a pooled runner, pinning the generic
// fallback path of NewScenarioRunner. It must not embed any in-package
// engine: method promotion would hand it a newRunner and silently bypass
// the fallback under test.
type oddEngine struct{}

func (oddEngine) Name() string                   { return "odd" }
func (oddEngine) Run(cfg Config) (*Trace, error) { return Sequential{}.Run(cfg) }

var _ Engine = oddEngine{}

// TestNewScenarioRunnerFallback checks the generic (no-reuse) runner path
// and the nil-engine default.
func TestNewScenarioRunnerFallback(t *testing.T) {
	base := scenarioBase(t)
	want, err := Sequential{}.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	r := NewScenarioRunner(oddEngine{}, base.G)
	defer r.Close()
	cfg := base
	got, err := r.RunScenario(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, "generic fallback", want, got)

	nr := NewScenarioRunner(nil, base.G)
	defer nr.Close()
	got, err = nr.RunScenario(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, "nil engine default", want, got)

	// Sweep through the fallback engine must also work.
	res, err := Sweep(context.Background(), base, []Scenario{{Name: "a"}, {Name: "b"}}, SweepOptions{Engine: oddEngine{}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, "sweep fallback a", want, res.Traces[0])
	assertTracesEqual(t, "sweep fallback b", want, res.Traces[1])
}

// TestSweepEmptyAndGraphChecks covers the trivial contracts: empty scenario
// lists, and pooled runners rejecting foreign graphs.
func TestSweepEmptyAndGraphChecks(t *testing.T) {
	base := scenarioBase(t)
	res, err := Sweep(context.Background(), base, nil, SweepOptions{})
	if err != nil || len(res.Traces) != 0 {
		t.Fatalf("empty sweep: res=%v err=%v", res, err)
	}
	traces, err := RunScenarios(base, nil)
	if err != nil || traces != nil {
		t.Fatalf("empty RunScenarios: traces=%v err=%v", traces, err)
	}

	var other *graph.Graph
	other, err = topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{Sequential{}, Matrix{}} {
		r := NewScenarioRunner(eng, other)
		cfg := base // graph differs from the runner's
		if _, err := r.RunScenario(&cfg); err == nil {
			t.Fatalf("%s runner must reject a foreign graph", eng.Name())
		}
		r.Close()
	}
}
