package sim

import (
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// TestEngineRoundLoopZeroSteadyStateAllocs is the allocation regression gate
// behind invariant 3 of doc.go: with an EdgeWriter adversary the engines'
// round loops allocate nothing in steady state. Measured differentially —
// a run with 4× the rounds must allocate exactly as much as the short run
// (setup only); any per-round allocation shows up multiplied by 300.
func TestEngineRoundLoopZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates nondeterministically")
	}
	g, err := topology.CoreNetwork(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 16)
	for i := range initial {
		initial[i] = float64(i)
	}
	faulty := nodeset.FromMembers(16, 0, 1)

	adversaries := []struct {
		name string
		mk   func() adversary.Strategy
	}{
		{"hug-high", func() adversary.Strategy { return adversary.Hug{High: true} }},
		{"extremes", func() adversary.Strategy { return adversary.Extremes{Amplitude: 30} }},
		{"fixed", func() adversary.Strategy { return adversary.Fixed{Value: 1e4} }},
		{"insider-high", func() adversary.Strategy { return &adversary.Insider{High: true} }},
		{"silent", func() adversary.Strategy { return adversary.Silent{} }},
	}
	// Concurrent is excluded: goroutine stacks and runtime channel machinery
	// make its allocation profile scheduling-dependent.
	for _, eng := range []Engine{Sequential{}, Matrix{}} {
		for _, adv := range adversaries {
			t.Run(eng.Name()+"/"+adv.name, func(t *testing.T) {
				measure := func(rounds int) float64 {
					strat := adv.mk()
					return testing.AllocsPerRun(5, func() {
						tr, err := eng.Run(Config{
							G: g, F: 2, Faulty: faulty, Initial: initial,
							Rule: core.TrimmedMean{}, Adversary: strat,
							MaxRounds: rounds,
						})
						if err != nil {
							t.Fatal(err)
						}
						if tr.Rounds != rounds {
							t.Fatalf("rounds = %d, want %d", tr.Rounds, rounds)
						}
					})
				}
				short, long := measure(100), measure(400)
				if long > short {
					t.Errorf("round loop allocates in steady state: %.1f allocs at 100 rounds vs %.1f at 400 (≈%.3f/round)",
						short, long, (long-short)/300)
				}
			})
		}
	}
}

// TestScenarioBatchSharesSetup pins the amortization contract of
// RunScenarios: running K scenarios through one call must allocate less
// than K independent Sequential runs (the plane geometry and receive
// buffers are built once).
func TestScenarioBatchSharesSetup(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates nondeterministically")
	}
	g, err := topology.CoreNetwork(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 16)
	for i := range initial {
		initial[i] = float64(i)
	}
	base := Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(16, 0, 1), Initial: initial,
		Rule: core.TrimmedMean{}, Adversary: adversary.Hug{High: true},
		MaxRounds: 50,
	}
	scens := []Scenario{
		{Adversary: adversary.Hug{High: true}},
		{Adversary: adversary.Hug{}},
		{Adversary: adversary.Extremes{Amplitude: 10}},
		{Adversary: adversary.Fixed{Value: -50}},
	}
	batched := testing.AllocsPerRun(5, func() {
		if _, err := RunScenarios(base, scens); err != nil {
			t.Fatal(err)
		}
	})
	separate := testing.AllocsPerRun(5, func() {
		for _, sc := range scens {
			cfg := sc.apply(base)
			if _, err := (Sequential{}).Run(cfg); err != nil {
				t.Fatal(err)
			}
		}
	})
	if batched >= separate {
		t.Errorf("RunScenarios allocates %.0f vs %.0f for separate runs; setup is not amortized", batched, separate)
	}
}
