package sim

import (
	"sync"

	"iabc/internal/core"
)

// Concurrent runs one goroutine per node; values travel over dedicated
// per-edge channels of capacity one ("channel size is one or none"), and a
// coordinator enforces the synchronous round barrier. It produces traces
// bit-identical to Sequential — the cross-check test in engine_test.go
// asserts this — while exercising the algorithm as genuine message passing.
//
// The zero value is ready to use.
type Concurrent struct{}

var _ Engine = Concurrent{}

// Name implements Engine.
func (Concurrent) Name() string { return "concurrent" }

// roundOrder carries the coordinator's instruction for one round to a node
// goroutine.
type roundOrder struct {
	// send maps receiver -> value for faulty senders; nil for fault-free
	// nodes (which send their own state).
	send map[int]float64
}

// nodeReport is what a node goroutine returns to the coordinator after
// completing a round.
type nodeReport struct {
	id    int
	state float64
}

// Run implements Engine.
func (Concurrent) Run(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	faultFree := cfg.faultFree()
	faulty := cfg.faulty()

	states := make([]float64, n)
	copy(states, cfg.Initial)
	tr := newTrace(&cfg, states, faultFree)

	// One channel per directed edge, capacity 1: within a round each edge
	// carries exactly one value, and the barrier guarantees all receives
	// complete before the next round's sends begin.
	edgeCh := make(map[[2]int]chan float64, cfg.G.NumEdges())
	cfg.G.ForEachEdge(func(from, to int) {
		edgeCh[[2]int{from, to}] = make(chan float64, 1)
	})

	orders := make([]chan roundOrder, n)
	for i := range orders {
		orders[i] = make(chan roundOrder, 1)
	}
	reports := make(chan nodeReport, n)
	errs := make(chan error, n)

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		state := states[i]
		isFaulty := faulty.Contains(i)
		outs := cfg.G.OutNeighbors(i)
		ins := cfg.G.InNeighbors(i)
		outChans := make([]chan<- float64, len(outs))
		for k, to := range outs {
			outChans[k] = edgeCh[[2]int{i, to}]
		}
		inChans := make([]<-chan float64, len(ins))
		for k, from := range ins {
			inChans[k] = edgeCh[[2]int{from, i}]
		}
		go func() {
			defer wg.Done()
			recv := make([]core.ValueFrom, len(ins))
			for order := range orders[i] {
				// Phase 1: transmit on every outgoing edge.
				for k, to := range outs {
					v := state
					if order.send != nil {
						if ov, ok := order.send[to]; ok {
							v = ov
						}
					}
					outChans[k] <- v
				}
				// Phase 2: receive one value per incoming edge, in
				// in-neighbor order (deterministic).
				for k, from := range ins {
					recv[k] = core.ValueFrom{From: from, Value: <-inChans[k]}
				}
				// Phase 3: apply the update rule (ghost update for faulty
				// nodes too — see package adversary).
				v, err := cfg.Rule.Update(state, recv, cfg.F)
				switch {
				case err == nil:
					state = v
				case isFaulty:
					// Ghost update undefined: freeze the ghost state,
					// mirroring Sequential.
				default:
					errs <- err
					return
				}
				reports <- nodeReport{id: i, state: state}
			}
		}()
	}

	// Coordinator: one iteration per loop turn.
	var runErr error
	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		view := roundView(&cfg, round, states, faultFree)
		msgs := faultyMessages(&cfg, view)
		for i := 0; i < n; i++ {
			var order roundOrder
			if faulty.Contains(i) && msgs != nil {
				// Substitute ghost state for omitted receivers so every edge
				// carries a value (matching Sequential's semantics).
				send := make(map[int]float64, cfg.G.OutDegree(i))
				for _, to := range cfg.G.OutNeighbors(i) {
					if v, ok := msgs[i][to]; ok {
						send[to] = v
					} else {
						send[to] = states[i]
					}
				}
				order.send = send
			}
			orders[i] <- order
		}
		for done := 0; done < n; done++ {
			select {
			case rep := <-reports:
				states[rep.id] = rep.state
			case err := <-errs:
				runErr = err
			}
		}
		if runErr != nil {
			break
		}
		if stop := tr.record(&cfg, round, states, faultFree); stop {
			break
		}
	}
	for i := range orders {
		close(orders[i])
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	tr.finish(states)
	return &tr.Trace, nil
}
