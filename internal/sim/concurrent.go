package sim

import (
	"sync"

	"iabc/internal/adversary"
	"iabc/internal/core"
)

// Concurrent runs one goroutine per node; values travel over dedicated
// per-edge channels of capacity one ("channel size is one or none"), and a
// coordinator enforces the synchronous round barrier. It produces traces
// bit-identical to Sequential — the cross-check test in sim_test.go asserts
// this — while exercising the algorithm as genuine message passing.
//
// Channels are held in one flat slice indexed by the edgePlane's in-edge
// index (no map of [2]int keys), faulty transmissions travel through
// coordinator-owned flat send buffers instead of per-round maps, and the
// fault set is materialized once per run.
//
// The zero value is ready to use.
type Concurrent struct{}

var _ Engine = Concurrent{}

// Name implements Engine.
func (Concurrent) Name() string { return "concurrent" }

// nodeReport is what a node goroutine returns to the coordinator after
// completing a round.
type nodeReport struct {
	id    int
	state float64
}

// bufSink adapts one faulty sender's flat send buffer to adversary.EdgeSink:
// the coordinator points it at sendBuf[s] and EdgeWriter strategies scatter
// without a per-round map.
type bufSink struct {
	buf []float64
}

// Send implements adversary.EdgeSink.
func (s *bufSink) Send(k int, value float64) { s.buf[k] = value }

// Run implements Engine.
func (Concurrent) Run(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	faulty := cfg.faulty()
	faultFree := faulty.Complement()

	states := snapshot(cfg.Initial)
	tr := newTrace(&cfg, states, faultFree)
	p := newEdgePlane(cfg.G, faulty, false)

	// One channel per directed edge, capacity 1: within a round each edge
	// carries exactly one value, and the barrier guarantees all receives
	// complete before the next round's sends begin. chans[e] is the channel
	// of the in-edge with flat index e.
	chans := make([]chan float64, p.inOff[n])
	for e := range chans {
		chans[e] = make(chan float64, 1)
	}

	// sendBuf[s][k] is the value faulty sender s puts on its k-th out-edge
	// this round. The coordinator fills it before signaling the round order
	// (a channel send, so the write happens-before the node's read), and
	// rewrites it only after the node's round report has been received.
	sendBuf := make([][]float64, n)
	for _, s := range p.faulty {
		sendBuf[s] = make([]float64, cfg.G.OutDegree(s))
	}

	// orders[i] carries one bool per round: whether node i must transmit
	// from sendBuf[i] (true) or its own state (false).
	orders := make([]chan bool, n)
	for i := range orders {
		orders[i] = make(chan bool, 1)
	}
	reports := make(chan nodeReport, n)
	errs := make(chan error, n)

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		state := states[i]
		isFaulty := faulty.Contains(i)
		outs := cfg.G.OutView(i)
		ins := cfg.G.InView(i)
		outChans := make([]chan<- float64, len(outs))
		for k := range outs {
			outChans[k] = chans[p.edgeOf[i][k]]
		}
		inChans := chans[p.inOff[i]:p.inOff[i+1]]
		override := sendBuf[i]
		go func() {
			defer wg.Done()
			recv := make([]core.ValueFrom, len(ins))
			for k, from := range ins {
				recv[k].From = from
			}
			buffered, _ := cfg.Rule.(core.BufferedRule)
			var scratch core.Scratch
			for useOverride := range orders[i] {
				// Phase 1: transmit on every outgoing edge.
				for k := range outChans {
					v := state
					if useOverride {
						v = override[k]
					}
					outChans[k] <- v
				}
				// Phase 2: receive one value per incoming edge, in
				// in-neighbor order (deterministic).
				for k := range inChans {
					recv[k].Value = <-inChans[k]
				}
				// Phase 3: apply the update rule (ghost update for faulty
				// nodes too — see package adversary).
				var v float64
				var err error
				if buffered != nil {
					v, err = buffered.UpdateInto(&scratch, state, recv, cfg.F)
				} else {
					v, err = cfg.Rule.Update(state, recv, cfg.F)
				}
				switch {
				case err == nil:
					state = v
				case isFaulty:
					// Ghost update undefined: freeze the ghost state,
					// mirroring Sequential.
				default:
					errs <- err
					return
				}
				reports <- nodeReport{id: i, state: state}
			}
		}()
	}

	hasAdv := cfg.Adversary != nil && len(p.faulty) > 0
	var ew adversary.EdgeWriter
	if hasAdv {
		ew, _ = cfg.Adversary.(adversary.EdgeWriter)
	}
	var sink bufSink

	// Coordinator: one iteration per loop turn.
	var runErr error
	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		if hasAdv {
			view := roundView(&cfg, round, states, faultFree, faulty)
			for _, s := range p.faulty {
				// Substitute ghost state for omitted receivers so every edge
				// carries a value (matching Sequential's semantics): prefill
				// the ghost, then let the strategy overwrite.
				if ew != nil {
					for k := range sendBuf[s] {
						sendBuf[s][k] = states[s]
					}
					sink.buf = sendBuf[s]
					ew.WriteMessages(view, s, &sink)
					continue
				}
				msgs := cfg.Adversary.Messages(view, s)
				for k, to := range cfg.G.OutView(s) {
					if v, ok := msgs[to]; ok {
						sendBuf[s][k] = v
					} else {
						sendBuf[s][k] = states[s]
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			orders[i] <- hasAdv && faulty.Contains(i)
		}
		for done := 0; done < n; done++ {
			select {
			case rep := <-reports:
				states[rep.id] = rep.state
			case err := <-errs:
				runErr = err
			}
		}
		if runErr != nil {
			break
		}
		if stop := tr.record(&cfg, round, states, faultFree); stop {
			break
		}
	}
	for i := range orders {
		close(orders[i])
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	tr.finish(states)
	return &tr.Trace, nil
}
