// Package sim executes the synchronous iterative algorithm of Section 2.3 on
// a directed graph: in every iteration each node transmits its state on all
// outgoing edges, receives one value per incoming edge, and applies its
// update rule Z_i. Faulty nodes' transmissions are overridden by an
// adversary.Strategy.
//
// Three engines share one semantics:
//
//   - Sequential: a single-goroutine reference implementation running on a
//     flat edge-indexed message plane, allocation-free in steady state —
//     used by benchmarks and exhaustive tests.
//   - Concurrent: one goroutine per node exchanging values over per-edge
//     channels with a coordinator barrier — demonstrating that the algorithm
//     maps onto real message passing.
//   - Matrix: materializes each round as a row-stochastic transition (the
//     matrix representation of arXiv:1203.1888) and can replay the recorded
//     round structure over batches of initial vectors (RunBatch).
//
// All are deterministic given identical configs and produce bit-identical
// traces; cross-check tests enforce this.
package sim

import (
	"errors"
	"fmt"
	"math"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// Config describes one simulation run.
type Config struct {
	// G is the communication graph.
	G *graph.Graph
	// F is the algorithm's fault-tolerance parameter f (how many faults the
	// update rule trims against).
	F int
	// Faulty is the actual fault set. It may be empty, and may have fewer
	// than F members; validity/convergence guarantees require |Faulty| ≤ F.
	Faulty nodeset.Set
	// Initial holds v_i[0] for every node, length G.N(). Entries of faulty
	// nodes seed their ghost state.
	Initial []float64
	// Rule is the transition function Z_i, shared by all nodes.
	Rule core.UpdateRule
	// Adversary decides faulty transmissions. It may be nil iff Faulty is
	// empty (or when faulty nodes should behave correctly, use
	// adversary.Conforming explicitly for clarity).
	Adversary adversary.Strategy
	// MaxRounds caps the number of iterations. Must be ≥ 1.
	MaxRounds int
	// Epsilon, when > 0, stops the run once U[t] − µ[t] ≤ Epsilon over
	// fault-free nodes.
	Epsilon float64
	// RecordStates retains the full per-round state matrix in the trace
	// (memory: (MaxRounds+1) × n floats). U[t] and µ[t] are always recorded.
	RecordStates bool
	// OnRound, when non-nil, is invoked after every recorded round with the
	// round number and the fault-free maximum U and minimum µ — round 0 is
	// the initial condition. It streams progress without waiting for (or
	// materializing) the trace; the engines call it synchronously from the
	// round loop, so it must be fast and must not retain the arguments'
	// backing state. It fires on primary runs only, not on matrix batch
	// replays.
	OnRound func(round int, u, mu float64)
}

// Validate checks the configuration and returns a descriptive error for the
// first problem found.
func (c *Config) Validate() error {
	if c.G == nil {
		return errors.New("sim: nil graph")
	}
	n := c.G.N()
	if len(c.Initial) != n {
		return fmt.Errorf("sim: len(Initial) = %d, want n = %d", len(c.Initial), n)
	}
	if c.Rule == nil {
		return errors.New("sim: nil update rule")
	}
	if c.F < 0 {
		return fmt.Errorf("sim: negative F %d", c.F)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("sim: MaxRounds must be ≥ 1, got %d", c.MaxRounds)
	}
	if c.Faulty.Cap() != 0 && c.Faulty.Cap() != n {
		return fmt.Errorf("sim: Faulty set capacity %d does not match n = %d", c.Faulty.Cap(), n)
	}
	if !c.faulty().Empty() && c.Adversary == nil {
		return errors.New("sim: faulty nodes configured but Adversary is nil (use adversary.Conforming for correct behavior)")
	}
	if c.faulty().Count() == n {
		return errors.New("sim: all nodes faulty — no fault-free node to track")
	}
	var err error
	c.faultFree().ForEach(func(i int) bool {
		if e := c.Rule.Validate(c.G.InDegree(i), c.F); e != nil {
			err = fmt.Errorf("sim: node %d: %w", i, e)
			return false
		}
		return true
	})
	return err
}

// faulty returns the fault set, normalizing a zero-value Set.
func (c *Config) faulty() nodeset.Set {
	if c.Faulty.Cap() == 0 {
		return nodeset.New(c.G.N())
	}
	return c.Faulty
}

// faultFree returns V − Faulty.
func (c *Config) faultFree() nodeset.Set {
	return c.faulty().Complement()
}

// Trace records a run. Index 0 of U/Mu/States is the initial condition;
// index t is the state after iteration t.
type Trace struct {
	// Rounds is the number of iterations executed.
	Rounds int
	// Converged reports whether the Epsilon stop condition fired.
	Converged bool
	// U[t] and Mu[t] are max and min over fault-free nodes after round t.
	U, Mu []float64
	// States, when recorded, is the full matrix: States[t][i] is node i's
	// state after round t. Faulty entries are ghost states (what the node
	// would hold had it followed the algorithm), not trustworthy values.
	States [][]float64
	// Final is the state vector after the last round.
	Final []float64
	// FaultFree is V − Faulty.
	FaultFree nodeset.Set
	// RuleName and AdversaryName echo the configuration for reports.
	RuleName, AdversaryName string
}

// Range returns U[t] − µ[t].
func (t *Trace) Range(round int) float64 { return t.U[round] - t.Mu[round] }

// FinalRange returns the fault-free range after the last executed round.
func (t *Trace) FinalRange() float64 { return t.Range(t.Rounds) }

// ValidityViolation scans for a violation of the validity condition (1):
// U[t] ≤ U[t−1] and µ[t] ≥ µ[t−1] for all t. It returns the first round at
// which it is violated beyond tol (use a small tolerance such as 1e-9 to
// absorb floating-point rounding in the weighted averages), or 0 and false
// if validity holds throughout.
func (t *Trace) ValidityViolation(tol float64) (round int, violated bool) {
	for r := 1; r <= t.Rounds; r++ {
		if t.U[r] > t.U[r-1]+tol || t.Mu[r] < t.Mu[r-1]-tol {
			return r, true
		}
	}
	return 0, false
}

// Engine runs a configured simulation to completion.
type Engine interface {
	// Run executes the simulation. The returned trace is independent of the
	// config (inputs are copied).
	Run(cfg Config) (*Trace, error)
	// Name identifies the engine.
	Name() string
}

// roundView builds the omniscient adversary snapshot for the coming round.
// faulty is the caller's pre-materialized fault set, hoisted out of the
// round loop so no set is rebuilt per round.
func roundView(cfg *Config, round int, states []float64, faultFree, faulty nodeset.Set) adversary.RoundView {
	lo, hi := faultFreeRange(states, faultFree)
	return adversary.RoundView{
		Round:  round,
		G:      cfg.G,
		F:      cfg.F,
		Faulty: faulty,
		States: states,
		Lo:     lo,
		Hi:     hi,
	}
}

// faultFreeRange returns (µ, U) over the fault-free entries of states.
func faultFreeRange(states []float64, faultFree nodeset.Set) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	faultFree.ForEach(func(i int) bool {
		if states[i] < lo {
			lo = states[i]
		}
		if states[i] > hi {
			hi = states[i]
		}
		return true
	})
	return lo, hi
}

// names extracts the rule/adversary names for the trace.
func names(cfg *Config) (rule, adv string) {
	rule = cfg.Rule.Name()
	adv = "none"
	if cfg.Adversary != nil {
		adv = cfg.Adversary.Name()
	}
	return rule, adv
}
