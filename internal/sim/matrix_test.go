package sim

import (
	"math"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// TestMatrixTraceBitIdenticalToSequential is the matrix-representation
// cross-check: on randomized topologies, fault sets, and adversaries, the
// Matrix engine's traces equal Sequential's bit for bit.
func TestMatrixTraceBitIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1888)) // arXiv:1203.1888
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		f := rng.Intn(3)
		if n < 3*f+1 {
			f = 0
		}
		g, err := topology.RandomDigraph(n, 0.85, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.MinInDegree() < 2*f+1 {
			continue
		}
		initial := make([]float64, n)
		for i := range initial {
			initial[i] = rng.NormFloat64() * 3
		}
		faulty := nodeset.New(n)
		for k := 0; k < f; k++ {
			faulty.Add(rng.Intn(n))
		}
		var strat adversary.Strategy
		seed := rng.Int63()
		makeCfg := func() Config {
			switch trial % 4 {
			case 0:
				strat = &adversary.RandomNoise{Rng: rand.New(rand.NewSource(seed)), Lo: -4, Hi: 9}
			case 1:
				strat = adversary.Extremes{Amplitude: 7}
			case 2:
				strat = adversary.Silent{}
			default:
				strat = adversary.Hug{High: true}
			}
			if faulty.Empty() {
				strat = nil
			}
			rule := core.UpdateRule(core.TrimmedMean{})
			if f == 0 && trial%2 == 0 {
				rule = core.Mean{}
			}
			return Config{
				G: g, F: f, Faulty: faulty, Initial: initial,
				Rule: rule, Adversary: strat,
				MaxRounds: 50, Epsilon: 1e-10, RecordStates: true,
			}
		}
		trSeq, err := Sequential{}.Run(makeCfg())
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		trMat, err := Matrix{}.Run(makeCfg())
		if err != nil {
			t.Fatalf("trial %d matrix: %v", trial, err)
		}
		if trSeq.Rounds != trMat.Rounds || trSeq.Converged != trMat.Converged {
			t.Fatalf("trial %d: rounds/converged mismatch: %d/%v vs %d/%v",
				trial, trSeq.Rounds, trSeq.Converged, trMat.Rounds, trMat.Converged)
		}
		for r := 0; r <= trSeq.Rounds; r++ {
			if math.Float64bits(trSeq.U[r]) != math.Float64bits(trMat.U[r]) ||
				math.Float64bits(trSeq.Mu[r]) != math.Float64bits(trMat.Mu[r]) {
				t.Fatalf("trial %d round %d: U/µ mismatch", trial, r)
			}
			for i := 0; i < n; i++ {
				if math.Float64bits(trSeq.States[r][i]) != math.Float64bits(trMat.States[r][i]) {
					t.Fatalf("trial %d round %d node %d: %v vs %v",
						trial, r, i, trSeq.States[r][i], trMat.States[r][i])
				}
			}
		}
	}
}

// TestMatrixRunBatchReplaysPrimary checks the replay contract: feeding the
// primary initial vector through RunBatch's program replay reproduces the
// primary final state exactly, and every extra vector gets a final of the
// right shape.
func TestMatrixRunBatchReplaysPrimary(t *testing.T) {
	g, err := topology.CoreNetwork(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i) / 2
	}
	cfg := Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(n, 0, 1),
		Initial: initial, Rule: core.TrimmedMean{},
		Adversary: adversary.Extremes{Amplitude: 20},
		MaxRounds: 120, Epsilon: 1e-9,
	}
	extras := [][]float64{
		append([]float64(nil), initial...),
		make([]float64, n), // all zeros
	}
	tr, finals, err := Matrix{}.RunBatch(cfg, extras)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != len(extras) {
		t.Fatalf("got %d finals, want %d", len(finals), len(extras))
	}
	for i := range tr.Final {
		if math.Float64bits(finals[0][i]) != math.Float64bits(tr.Final[i]) {
			t.Fatalf("replay of primary initial diverged at node %d: %v vs %v",
				i, finals[0][i], tr.Final[i])
		}
	}
	if len(finals[1]) != n {
		t.Fatalf("extra final has length %d, want %d", len(finals[1]), n)
	}
}

// TestMatrixRunBatchSoAMatchesScalarReplay is the SoA property test: the
// batched structure-of-arrays replay must be bit-identical to replaying each
// extra vector on its own (a K=1 batch walks the program rows exactly like
// the scalar apply), across random scenarios and with NaN/±Inf entries in
// the extras. Including the primary initial vector among the extras also
// cross-checks applyBatch against the primary loop's scalar apply.
func TestMatrixRunBatchSoAMatchesScalarReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0}
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(8)
		f := rng.Intn(3)
		if n < 3*f+1 {
			f = 0
		}
		g, err := topology.RandomDigraph(n, 0.85, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.MinInDegree() < 2*f+1 {
			continue
		}
		initial := make([]float64, n)
		for i := range initial {
			initial[i] = rng.NormFloat64() * 5
		}
		faulty := nodeset.New(n)
		for k := 0; k < f; k++ {
			faulty.Add(rng.Intn(n))
		}
		var strat adversary.Strategy
		if !faulty.Empty() {
			strat = adversary.Extremes{Amplitude: 11}
		}
		cfg := Config{
			G: g, F: f, Faulty: faulty, Initial: initial,
			Rule: core.TrimmedMean{}, Adversary: strat,
			MaxRounds: 40, Epsilon: 1e-12,
		}
		K := 2 + rng.Intn(7)
		extras := make([][]float64, K)
		extras[0] = append([]float64(nil), initial...) // anchor: primary replay
		for x := 1; x < K; x++ {
			v := make([]float64, n)
			for i := range v {
				if rng.Intn(6) == 0 {
					v[i] = specials[rng.Intn(len(specials))]
				} else {
					v[i] = rng.NormFloat64() * 10
				}
			}
			extras[x] = v
		}
		tr, batched, err := Matrix{}.RunBatch(cfg, extras)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range tr.Final {
			if math.Float64bits(batched[0][i]) != math.Float64bits(tr.Final[i]) {
				t.Fatalf("trial %d: batched primary replay diverged from scalar apply at node %d: %v vs %v",
					trial, i, batched[0][i], tr.Final[i])
			}
		}
		for x := 1; x < K; x++ {
			_, single, err := Matrix{}.RunBatch(cfg, [][]float64{extras[x]})
			if err != nil {
				t.Fatalf("trial %d extra %d: %v", trial, x, err)
			}
			for i := range single[0] {
				if math.Float64bits(batched[x][i]) != math.Float64bits(single[0][i]) {
					t.Fatalf("trial %d extra %d node %d: SoA %v vs scalar %v",
						trial, x, i, batched[x][i], single[0][i])
				}
			}
		}
	}
}

// TestMatrixRunBatchMatchesIndependentRuns covers the one regime where the
// replay semantics coincide with full re-simulation: with f = 0, no faults,
// and no epsilon stop the round transition is state-independent, so the
// recorded programs applied to any initial vector equal an independent
// engine run from that vector.
func TestMatrixRunBatchMatchesIndependentRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(6)
		g, err := topology.RandomDigraph(n, 0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.MinInDegree() < 1 {
			continue
		}
		initial := make([]float64, n)
		for i := range initial {
			initial[i] = rng.Float64() * 4
		}
		cfg := Config{
			G: g, F: 0, Initial: initial,
			Rule: core.TrimmedMean{}, MaxRounds: 25, // Epsilon 0: run all rounds
		}
		const K = 5
		extras := make([][]float64, K)
		for x := range extras {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			extras[x] = v
		}
		_, finals, err := Matrix{}.RunBatch(cfg, extras)
		if err != nil {
			t.Fatal(err)
		}
		for x := range extras {
			indep := cfg
			indep.Initial = extras[x]
			tr, err := Sequential{}.Run(indep)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tr.Final {
				if math.Float64bits(finals[x][i]) != math.Float64bits(tr.Final[i]) {
					t.Fatalf("trial %d extra %d node %d: batch %v vs independent run %v",
						trial, x, i, finals[x][i], tr.Final[i])
				}
			}
		}
	}
}

// TestMatrixRunBatchRejectsBadShape checks the extras length validation.
func TestMatrixRunBatchRejectsBadShape(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{G: g, F: 0, Initial: make([]float64, 4), Rule: core.TrimmedMean{}, MaxRounds: 3}
	if _, _, err := (Matrix{}).RunBatch(cfg, [][]float64{{1, 2}}); err == nil {
		t.Fatal("short extra vector should be rejected")
	}
}

// TestMatrixRejectsNonAffineRule: TrimmedMidpoint rounds are not affine in
// the state, so the matrix engine must refuse them.
func TestMatrixRejectsNonAffineRule(t *testing.T) {
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Matrix{}.Run(Config{
		G: g, F: 1, Initial: make([]float64, 5),
		Rule: core.TrimmedMidpoint{}, MaxRounds: 3,
	})
	if err == nil {
		t.Fatal("matrix engine should reject TrimmedMidpoint")
	}
}
