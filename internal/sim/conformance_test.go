package sim

// The cross-engine differential suite: one scenario table driven through
// Sequential, Concurrent, Matrix, and (for synchronous-delivery
// configurations) the async engine, with every built-in adversary exercised
// through both the Messages-map path and the EdgeWriter fast path. All
// synchronous engines must agree bit for bit — this is the harness that
// keeps the four implementations honest as each gets optimized separately.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/async"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// mapOnly embeds a Strategy as an interface field, hiding any WriteMessages
// method from type assertions: engines probing for adversary.EdgeWriter get
// nothing and fall back to the Messages map path.
type mapOnly struct {
	adversary.Strategy
}

// confScenario is one row of the conformance table. makeAdv returns a fresh
// strategy per engine run so randomized strategies replay identical streams;
// nil means fault-free.
type confScenario struct {
	name    string
	build   func() (*graph.Graph, error)
	f       int
	faulty  []int
	rule    core.UpdateRule
	makeAdv func() adversary.Strategy
	rounds  int
	epsilon float64
}

// conformanceScenarios is the shared table: every built-in strategy, several
// graph families, and each supported rule.
func conformanceScenarios() []confScenario {
	core72 := func() (*graph.Graph, error) { return topology.CoreNetwork(7, 2) }
	core103 := func() (*graph.Graph, error) { return topology.CoreNetwork(10, 3) }
	k6 := func() (*graph.Graph, error) { return topology.Complete(6) }
	chord72 := func() (*graph.Graph, error) { return topology.Chord(7, 2) }

	scenarios := []confScenario{
		{name: "fault-free/trimmed-mean", build: core72, f: 2, rule: core.TrimmedMean{},
			makeAdv: nil, rounds: 40},
		{name: "fault-free/mean", build: k6, f: 0, rule: core.Mean{},
			makeAdv: nil, rounds: 40},
		{name: "midpoint/extremes", build: core72, f: 2, faulty: []int{2, 5}, rule: core.TrimmedMidpoint{},
			makeAdv: func() adversary.Strategy { return adversary.Extremes{Amplitude: 9} }, rounds: 40},
	}
	// Every built-in strategy on the hardest shared topology.
	builtins := []struct {
		name string
		mk   func() adversary.Strategy
	}{
		{"conforming", func() adversary.Strategy { return adversary.Conforming{} }},
		{"fixed", func() adversary.Strategy { return adversary.Fixed{Value: 1e5} }},
		{"silent", func() adversary.Strategy { return adversary.Silent{} }},
		{"noise", func() adversary.Strategy {
			return &adversary.RandomNoise{Rng: rand.New(rand.NewSource(1888)), Lo: -7, Hi: 12}
		}},
		{"extremes", func() adversary.Strategy { return adversary.Extremes{Amplitude: 25} }},
		{"partition-attack", func() adversary.Strategy {
			return adversary.PartitionAttack{
				L: nodeset.FromMembers(7, 0, 2), R: nodeset.FromMembers(7, 1, 3, 4),
				Low: 0, High: 6, Eps: 0.5,
			}
		}},
		{"hug-high", func() adversary.Strategy { return adversary.Hug{High: true} }},
		{"hug-low", func() adversary.Strategy { return adversary.Hug{} }},
		{"insider-high", func() adversary.Strategy { return &adversary.Insider{High: true} }},
		{"insider-low", func() adversary.Strategy { return &adversary.Insider{} }},
	}
	for _, b := range builtins {
		scenarios = append(scenarios, confScenario{
			name: "core7f2/" + b.name, build: core72, f: 2, faulty: []int{2, 5},
			rule: core.TrimmedMean{}, makeAdv: b.mk, rounds: 50, epsilon: 1e-9,
		})
	}
	// The Theorem 1 attack on its violating graph (frozen, never converges)
	// and a bigger core network with the sharpest insider.
	scenarios = append(scenarios,
		confScenario{
			name: "chord7f2/partition-freeze", build: chord72, f: 2, faulty: []int{5, 6},
			rule: core.TrimmedMean{},
			makeAdv: func() adversary.Strategy {
				return adversary.PartitionAttack{
					L: nodeset.FromMembers(7, 0, 2), R: nodeset.FromMembers(7, 1, 3, 4),
					Low: 0, High: 6, Eps: 0.5,
				}
			}, rounds: 60,
		},
		confScenario{
			name: "core10f3/insider-high", build: core103, f: 3, faulty: []int{0, 1, 2},
			rule:    core.TrimmedMean{},
			makeAdv: func() adversary.Strategy { return &adversary.Insider{High: true} },
			rounds:  60, epsilon: 1e-9,
		},
		confScenario{
			name: "core10f3/noise", build: core103, f: 3, faulty: []int{0, 4, 9},
			rule: core.TrimmedMean{},
			makeAdv: func() adversary.Strategy {
				return &adversary.RandomNoise{Rng: rand.New(rand.NewSource(7)), Lo: -40, Hi: 40}
			}, rounds: 60, epsilon: 1e-9,
		},
	)
	return scenarios
}

// buildConfig materializes the scenario for one engine run. wrap selects the
// adversary path: map (EdgeWriter hidden) or writer (strategy as built).
func (sc *confScenario) buildConfig(t *testing.T, wrapMap bool) Config {
	t.Helper()
	g, err := sc.build()
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i) * 0.75
	}
	faulty := nodeset.New(n)
	for _, id := range sc.faulty {
		faulty.Add(id)
	}
	var adv adversary.Strategy
	if sc.makeAdv != nil {
		adv = sc.makeAdv()
		if wrapMap {
			adv = mapOnly{adv}
		}
	}
	return Config{
		G: g, F: sc.f, Faulty: faulty, Initial: initial,
		Rule: sc.rule, Adversary: adv,
		MaxRounds: sc.rounds, Epsilon: sc.epsilon, RecordStates: true,
	}
}

// assertTracesEqual compares two traces bit for bit.
func assertTracesEqual(t *testing.T, label string, want, got *Trace) {
	t.Helper()
	if want.Rounds != got.Rounds || want.Converged != got.Converged {
		t.Fatalf("%s: rounds/converged = %d/%v, want %d/%v",
			label, got.Rounds, got.Converged, want.Rounds, want.Converged)
	}
	for r := 0; r <= want.Rounds; r++ {
		if math.Float64bits(want.U[r]) != math.Float64bits(got.U[r]) ||
			math.Float64bits(want.Mu[r]) != math.Float64bits(got.Mu[r]) {
			t.Fatalf("%s: U/µ mismatch at round %d: (%v,%v) vs (%v,%v)",
				label, r, got.U[r], got.Mu[r], want.U[r], want.Mu[r])
		}
		for i := range want.States[r] {
			if math.Float64bits(want.States[r][i]) != math.Float64bits(got.States[r][i]) {
				t.Fatalf("%s: state mismatch at round %d node %d: %v vs %v",
					label, r, i, got.States[r][i], want.States[r][i])
			}
		}
	}
	for i := range want.Final {
		if math.Float64bits(want.Final[i]) != math.Float64bits(got.Final[i]) {
			t.Fatalf("%s: final mismatch at node %d: %v vs %v", label, i, got.Final[i], want.Final[i])
		}
	}
}

// TestCrossEngineConformance drives every scenario through all three
// synchronous engines and both adversary paths, asserting bit-identical
// traces against the Sequential map-path reference.
func TestCrossEngineConformance(t *testing.T) {
	for _, sc := range conformanceScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ref, err := Sequential{}.Run(sc.buildConfig(t, true))
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			_, affine := sc.rule.(core.TrimmedMean)
			if _, isMean := sc.rule.(core.Mean); isMean {
				affine = true
			}
			type variant struct {
				label   string
				engine  Engine
				wrapMap bool
			}
			variants := []variant{
				{"sequential/writer", Sequential{}, false},
				{"concurrent/map", Concurrent{}, true},
				{"concurrent/writer", Concurrent{}, false},
			}
			if affine {
				variants = append(variants,
					variant{"matrix/map", Matrix{}, true},
					variant{"matrix/writer", Matrix{}, false},
				)
			}
			for _, v := range variants {
				tr, err := v.engine.Run(sc.buildConfig(t, v.wrapMap))
				if err != nil {
					t.Fatalf("%s: %v", v.label, err)
				}
				assertTracesEqual(t, v.label, ref, tr)
			}
			// The scenario-batched sequential loop must also agree: run the
			// same config twice through RunScenarios (second run reuses the
			// plane, catching stale-state bugs in the shared setup).
			base := sc.buildConfig(t, false)
			traces, err := RunScenarios(base, []Scenario{{Name: "a"}, {Name: "b"}})
			if err != nil {
				t.Fatalf("RunScenarios: %v", err)
			}
			// Randomized strategies consume their stream across scenario
			// runs, so only replay-safe (deterministic per-round) strategies
			// can be compared on both slots; slot 0 always matches.
			if sc.makeAdv == nil || !consumesRng(sc.makeAdv()) {
				assertTracesEqual(t, "scenarios[0]", ref, traces[0])
				assertTracesEqual(t, "scenarios[1]", ref, traces[1])

				// The pooled runners behind Sweep must agree for every
				// engine: the second slot reuses the pooled state (node
				// goroutines, matrix scratch), catching stale-state bugs.
				sweepEngines := []Engine{Concurrent{}}
				if affine {
					sweepEngines = append(sweepEngines, Matrix{})
				}
				for _, eng := range sweepEngines {
					res, err := Sweep(context.Background(), sc.buildConfig(t, false),
						[]Scenario{{Name: "a"}, {Name: "b"}},
						SweepOptions{Engine: eng, Workers: 1})
					if err != nil {
						t.Fatalf("Sweep/%s: %v", eng.Name(), err)
					}
					assertTracesEqual(t, "sweep/"+eng.Name()+"[0]", ref, res.Traces[0])
					assertTracesEqual(t, "sweep/"+eng.Name()+"[1]", ref, res.Traces[1])
				}
			}
		})
	}
}

// consumesRng reports whether the strategy advances internal randomness
// between rounds (making back-to-back runs diverge by design).
func consumesRng(s adversary.Strategy) bool {
	_, ok := s.(*adversary.RandomNoise)
	return ok
}

// TestAsyncSynchronousDeliveryConformance pins the asynchronous engine to
// the synchronous semantics in the one regime where they must coincide:
// f = 0 (the round quorum is the full in-neighborhood), constant delays
// (async.Fixed), and a faulty tick equal to the delay so adversarial batches
// land exactly on round boundaries. With a single faulty sender the event
// order makes every emission see the same omniscient view as the
// synchronous round, so fault-free states must match Sequential bit for bit
// — through both adversary paths.
func TestAsyncSynchronousDeliveryConformance(t *testing.T) {
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	const rounds = 25
	// Conforming and Silent are excluded: Conforming transmits the sender's
	// ghost state, which evolves in the synchronous engines but is frozen at
	// the initial value in async (it does not model faulty internal state),
	// and Silent starves the full-in-degree quorum outright.
	strategies := []struct {
		name string
		mk   func() adversary.Strategy
	}{
		{"fixed", func() adversary.Strategy { return adversary.Fixed{Value: 42} }},
		{"noise", func() adversary.Strategy {
			return &adversary.RandomNoise{Rng: rand.New(rand.NewSource(55)), Lo: -3, Hi: 3}
		}},
		{"extremes", func() adversary.Strategy { return adversary.Extremes{Amplitude: 2} }},
		{"partition-attack", func() adversary.Strategy {
			return adversary.PartitionAttack{
				L: nodeset.FromMembers(n, 0), R: nodeset.FromMembers(n, 1, 2),
				Low: 0, High: 3, Eps: 0.25,
			}
		}},
		{"hug-high", func() adversary.Strategy { return adversary.Hug{High: true} }},
		{"hug-low", func() adversary.Strategy { return adversary.Hug{} }},
		{"insider-high", func() adversary.Strategy { return &adversary.Insider{High: true} }},
		{"insider-low", func() adversary.Strategy { return &adversary.Insider{} }},
	}
	for _, st := range strategies {
		st := st
		for _, path := range []string{"map", "writer"} {
			path := path
			t.Run(st.name+"/"+path, func(t *testing.T) {
				initial := []float64{0, 1, 2, 3, 9}
				faulty := nodeset.FromMembers(n, 4)
				wrap := func(s adversary.Strategy) adversary.Strategy {
					if path == "map" {
						return mapOnly{s}
					}
					return s
				}
				ref, err := Sequential{}.Run(Config{
					G: g, F: 0, Faulty: faulty, Initial: initial,
					Rule: core.TrimmedMean{}, Adversary: wrap(st.mk()),
					MaxRounds: rounds,
				})
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				atr, err := async.Run(context.Background(), async.Config{
					G: g, F: 0, Faulty: faulty, Initial: initial,
					Rule: core.TrimmedMean{}, Adversary: wrap(st.mk()),
					Delays: async.Fixed{D: 1}, FaultyTick: 1,
					MaxRounds: rounds,
				})
				if err != nil {
					t.Fatalf("async: %v", err)
				}
				if atr.Stalled {
					t.Fatal("async run stalled under synchronous delivery")
				}
				for i := 0; i < n; i++ {
					if faulty.Contains(i) {
						continue // async leaves faulty finals at their initial value
					}
					if atr.Rounds[i] != rounds {
						t.Fatalf("node %d stopped at round %d, want %d", i, atr.Rounds[i], rounds)
					}
					if math.Float64bits(ref.Final[i]) != math.Float64bits(atr.Final[i]) {
						t.Fatalf("node %d: async final %v != sequential final %v",
							i, atr.Final[i], ref.Final[i])
					}
				}
			})
		}
	}
}
