package sim_test

import (
	"fmt"
	"log"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// Example runs Algorithm 1 on a core network with one Byzantine node lying
// far outside the input range: the fault-free nodes agree inside their own
// hull.
func Example() {
	g, err := topology.CoreNetwork(4, 1)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sim.Sequential{}.Run(sim.Config{
		G:         g,
		F:         1,
		Faulty:    nodeset.FromMembers(4, 3),
		Initial:   []float64{10, 20, 30, 99},
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Fixed{Value: 1000},
		MaxRounds: 500,
		Epsilon:   1e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, violated := trace.ValidityViolation(1e-9)
	fmt.Println("converged:", trace.Converged)
	fmt.Println("validity violated:", violated)
	fmt.Println("agreement inside [10,30]:", trace.U[trace.Rounds] <= 30 && trace.Mu[trace.Rounds] >= 10)
	// Output:
	// converged: true
	// validity violated: false
	// agreement inside [10,30]: true
}
