package sim

import (
	"math"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

func initialRamp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{
		G: g, F: 1, Initial: initialRamp(4), Rule: core.TrimmedMean{}, MaxRounds: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"nil graph", func(c *Config) { c.G = nil }},
		{"wrong initial length", func(c *Config) { c.Initial = []float64{1} }},
		{"nil rule", func(c *Config) { c.Rule = nil }},
		{"negative F", func(c *Config) { c.F = -1 }},
		{"zero rounds", func(c *Config) { c.MaxRounds = 0 }},
		{"faulty capacity mismatch", func(c *Config) { c.Faulty = nodeset.FromMembers(9, 1) }},
		{"faulty without adversary", func(c *Config) { c.Faulty = nodeset.FromMembers(4, 1) }},
		{"all faulty", func(c *Config) {
			c.Faulty = nodeset.Universe(4)
			c.Adversary = adversary.Fixed{Value: 0}
		}},
		{"in-degree too small", func(c *Config) { c.F = 2 }}, // K4 in-degree 3 < 5
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func engines() []Engine {
	return []Engine{Sequential{}, Concurrent{}, Matrix{}}
}

func TestF0ConvergenceOnStronglyConnected(t *testing.T) {
	// With f = 0 and no faults, the mean iteration converges on any
	// strongly connected graph.
	graphs := map[string]func() (*graph.Graph, error){
		"cycle":     func() (*graph.Graph, error) { return topology.DirectedCycle(6) },
		"ring":      func() (*graph.Graph, error) { return topology.UndirectedRing(7) },
		"hypercube": func() (*graph.Graph, error) { return topology.Hypercube(3) },
	}
	for name, build := range graphs {
		for _, eng := range engines() {
			g, err := build()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := eng.Run(Config{
				G: g, F: 0, Initial: initialRamp(g.N()),
				Rule: core.TrimmedMean{}, MaxRounds: 5000, Epsilon: 1e-9,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, eng.Name(), err)
			}
			if !tr.Converged {
				t.Errorf("%s/%s: no convergence, final range %v", name, eng.Name(), tr.FinalRange())
			}
			if r, bad := tr.ValidityViolation(1e-9); bad {
				t.Errorf("%s/%s: validity violated at round %d", name, eng.Name(), r)
			}
		}
	}
}

func TestTheorem2ValidityUnderAllAdversaries(t *testing.T) {
	// On a Theorem 1-satisfying graph, Algorithm 1 keeps U non-increasing
	// and µ non-decreasing under every adversary in the suite.
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	faulty := nodeset.FromMembers(7, 2, 5)
	strategies := []adversary.Strategy{
		adversary.Conforming{},
		adversary.Fixed{Value: 1e6},
		adversary.Fixed{Value: -1e6},
		adversary.Silent{},
		&adversary.RandomNoise{Rng: rand.New(rand.NewSource(1)), Lo: -1e3, Hi: 1e3},
		adversary.Extremes{Amplitude: 50},
		adversary.Hug{High: true},
		adversary.Hug{},
		adversary.Insider{High: true},
		adversary.Insider{},
		adversary.PartitionAttack{
			L:   nodeset.FromMembers(7, 3),
			R:   nodeset.FromMembers(7, 4, 6),
			Low: 0, High: 6, Eps: 10,
		},
	}
	for _, strat := range strategies {
		for _, eng := range engines() {
			tr, err := eng.Run(Config{
				G: g, F: 2, Faulty: faulty, Initial: initialRamp(7),
				Rule: core.TrimmedMean{}, Adversary: strat, MaxRounds: 300, Epsilon: 1e-7,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", strat.Name(), eng.Name(), err)
			}
			if r, bad := tr.ValidityViolation(1e-9); bad {
				t.Errorf("%s/%s: validity violated at round %d (U: %v->%v, µ: %v->%v)",
					strat.Name(), eng.Name(), r, tr.U[r-1], tr.U[r], tr.Mu[r-1], tr.Mu[r])
			}
			// Validity also means staying within the initial hull.
			if tr.U[tr.Rounds] > tr.U[0]+1e-9 || tr.Mu[tr.Rounds] < tr.Mu[0]-1e-9 {
				t.Errorf("%s/%s: left initial hull", strat.Name(), eng.Name())
			}
		}
	}
}

func TestTheorem3ConvergenceOnCoreNetworks(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		g, err := topology.CoreNetwork(tc.n, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		faulty := nodeset.New(tc.n)
		for i := 0; i < tc.f; i++ {
			faulty.Add(i) // core members as faulty: hardest position
		}
		tr, err := Sequential{}.Run(Config{
			G: g, F: tc.f, Faulty: faulty, Initial: initialRamp(tc.n),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 100},
			MaxRounds: 20000, Epsilon: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Converged {
			t.Errorf("CoreNetwork(%d,%d): no convergence in %d rounds, range %v",
				tc.n, tc.f, tr.Rounds, tr.FinalRange())
		}
	}
}

func TestTheorem1AttackFreezesViolatingGraph(t *testing.T) {
	// Chord(7,2) violates Theorem 1 with F={5,6}, L={0,2}, R={1,3,4}.
	// The proof's adversary must freeze L at m and R at M forever.
	g, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := nodeset.FromMembers(7, 0, 2)
	r := nodeset.FromMembers(7, 1, 3, 4)
	faulty := nodeset.FromMembers(7, 5, 6)
	const m, M = 0.0, 1.0
	initial := make([]float64, 7)
	l.ForEach(func(i int) bool { initial[i] = m; return true })
	r.ForEach(func(i int) bool { initial[i] = M; return true })

	for _, eng := range engines() {
		tr, err := eng.Run(Config{
			G: g, F: 2, Faulty: faulty, Initial: initial,
			Rule: core.TrimmedMean{},
			Adversary: adversary.PartitionAttack{
				L: l, R: r, Low: m, High: M, Eps: 0.5,
			},
			MaxRounds: 500, Epsilon: 1e-12, RecordStates: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if tr.Converged {
			t.Fatalf("%s: converged on a violating graph under the Theorem 1 attack", eng.Name())
		}
		final := tr.Final
		l.ForEach(func(i int) bool {
			if math.Abs(final[i]-m) > 1e-12 {
				t.Errorf("%s: L node %d drifted to %v, want frozen at %v", eng.Name(), i, final[i], m)
			}
			return true
		})
		r.ForEach(func(i int) bool {
			if math.Abs(final[i]-M) > 1e-12 {
				t.Errorf("%s: R node %d drifted to %v, want frozen at %v", eng.Name(), i, final[i], M)
			}
			return true
		})
		if got := tr.FinalRange(); math.Abs(got-(M-m)) > 1e-12 {
			t.Errorf("%s: final range %v, want %v", eng.Name(), got, M-m)
		}
	}
}

func TestMeanRuleViolatesValidityUnderAttack(t *testing.T) {
	// The ablation behind E9: without trimming, a single liar drags the
	// fault-free nodes outside the initial hull.
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sequential{}.Run(Config{
		G: g, F: 0, // Mean ignores f; F=0 passes validation on K5
		Faulty:    nodeset.FromMembers(5, 4),
		Initial:   []float64{0, 0.25, 0.5, 1, 0.5},
		Rule:      core.Mean{},
		Adversary: adversary.Fixed{Value: 100},
		MaxRounds: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := tr.ValidityViolation(1e-9); !bad {
		t.Fatal("mean rule should violate validity under a fixed extreme liar")
	}
	if tr.U[tr.Rounds] <= 1 {
		t.Fatalf("fault-free max %v should exceed initial hull max 1", tr.U[tr.Rounds])
	}
}

func TestTrimmedMeanResistsSameAttack(t *testing.T) {
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sequential{}.Run(Config{
		G: g, F: 1,
		Faulty:    nodeset.FromMembers(5, 4),
		Initial:   []float64{0, 0.25, 0.5, 1, 0.5},
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Fixed{Value: 100},
		MaxRounds: 200, Epsilon: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := tr.ValidityViolation(1e-9); bad {
		t.Fatal("trimmed mean should maintain validity")
	}
	if !tr.Converged {
		t.Fatalf("trimmed mean should converge; range %v", tr.FinalRange())
	}
}

func TestEnginesProduceIdenticalTraces(t *testing.T) {
	// Property: Sequential and Concurrent agree bit-for-bit across random
	// configurations. Randomized adversaries need identical seeds, so each
	// engine gets a freshly seeded strategy.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		f := rng.Intn(2)
		if n < 3*f+1 {
			f = 0
		}
		g, err := topology.RandomDigraph(n, 0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.MinInDegree() < 2*f+1 {
			continue
		}
		initial := make([]float64, n)
		for i := range initial {
			initial[i] = rng.Float64() * 10
		}
		faulty := nodeset.New(n)
		if f > 0 {
			faulty.Add(rng.Intn(n))
		}
		seed := rng.Int63()
		makeCfg := func(strategySeed int64) Config {
			return Config{
				G: g, F: f, Faulty: faulty, Initial: initial,
				Rule:      core.TrimmedMean{},
				Adversary: &adversary.RandomNoise{Rng: rand.New(rand.NewSource(strategySeed)), Lo: -5, Hi: 15},
				MaxRounds: 60, Epsilon: 1e-10, RecordStates: true,
			}
		}
		trSeq, err := Sequential{}.Run(makeCfg(seed))
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		trCon, err := Concurrent{}.Run(makeCfg(seed))
		if err != nil {
			t.Fatalf("concurrent: %v", err)
		}
		if trSeq.Rounds != trCon.Rounds || trSeq.Converged != trCon.Converged {
			t.Fatalf("trial %d: rounds/converged mismatch: %d/%v vs %d/%v",
				trial, trSeq.Rounds, trSeq.Converged, trCon.Rounds, trCon.Converged)
		}
		for r := 0; r <= trSeq.Rounds; r++ {
			if trSeq.U[r] != trCon.U[r] || trSeq.Mu[r] != trCon.Mu[r] {
				t.Fatalf("trial %d round %d: U/µ mismatch", trial, r)
			}
			for i := 0; i < n; i++ {
				if trSeq.States[r][i] != trCon.States[r][i] {
					t.Fatalf("trial %d round %d node %d: state %v vs %v",
						trial, r, i, trSeq.States[r][i], trCon.States[r][i])
				}
			}
		}
	}
}

func TestSilentFaultsAreSubstituted(t *testing.T) {
	// A silent faulty node behaves like one repeating its ghost state:
	// the run must proceed and converge.
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sequential{}.Run(Config{
		G: g, F: 1, Faulty: nodeset.FromMembers(4, 3),
		Initial: initialRamp(4), Rule: core.TrimmedMean{},
		Adversary: adversary.Silent{}, MaxRounds: 300, Epsilon: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("silent fault should not prevent convergence; range %v", tr.FinalRange())
	}
}

func TestTraceAccessors(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sequential{}.Run(Config{
		G: g, F: 0, Initial: []float64{0, 1, 2, 3},
		Rule: core.TrimmedMean{}, MaxRounds: 3, RecordStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Range(0); got != 3 {
		t.Errorf("Range(0) = %v, want 3", got)
	}
	if len(tr.U) != tr.Rounds+1 || len(tr.Mu) != tr.Rounds+1 {
		t.Errorf("U/Mu lengths %d/%d, want %d", len(tr.U), len(tr.Mu), tr.Rounds+1)
	}
	if len(tr.States) != tr.Rounds+1 {
		t.Errorf("States length %d, want %d", len(tr.States), tr.Rounds+1)
	}
	if tr.RuleName != "trimmed-mean" || tr.AdversaryName != "none" {
		t.Errorf("names = %q/%q", tr.RuleName, tr.AdversaryName)
	}
	if tr.FaultFree.Count() != 4 {
		t.Errorf("FaultFree = %v", tr.FaultFree)
	}
	// K4 with mean weights converges in one round to 1.5 exactly? Not
	// necessarily exactly — but all states must be equal by symmetry.
	if tr.FinalRange() > 1e-12 {
		t.Errorf("K4 f=0 should converge immediately, range %v", tr.FinalRange())
	}
}

func TestEpsilonZeroRunsAllRounds(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sequential{}.Run(Config{
		G: g, F: 0, Initial: initialRamp(4), Rule: core.TrimmedMean{}, MaxRounds: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rounds != 7 || tr.Converged {
		t.Fatalf("rounds=%d converged=%v, want 7/false", tr.Rounds, tr.Converged)
	}
}

func TestGhostUpdateErrorDoesNotAbortRun(t *testing.T) {
	// Node 3 is faulty with in-degree 1 < 2f+1: its ghost update errors,
	// but the run must succeed because fault-free nodes are unaffected.
	b := graph.NewBuilder(5)
	// K4 among 0..3... wait, give 0..3 a clique and node 4 faulty with a
	// single in-edge but edges out to everyone.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				b.AddEdge(i, j)
			}
		}
	}
	b.AddEdge(0, 4)
	for j := 0; j < 4; j++ {
		b.AddEdge(4, j)
	}
	g := b.MustBuild()
	for _, eng := range engines() {
		tr, err := eng.Run(Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(5, 4),
			Initial: initialRamp(5), Rule: core.TrimmedMean{},
			Adversary: adversary.Fixed{Value: -3}, MaxRounds: 100, Epsilon: 1e-8,
		})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if !tr.Converged {
			t.Errorf("%s: fault-free clique should converge", eng.Name())
		}
	}
}

func TestConditionSatisfiedImpliesConvergenceRandomized(t *testing.T) {
	// The sufficiency direction of the paper, sampled: random digraphs that
	// pass the exact Theorem 1 check converge under an adversary; those
	// that fail it are not exercised here (E1 covers the necessity side).
	rng := rand.New(rand.NewSource(99))
	tested := 0
	for trial := 0; trial < 60 && tested < 12; trial++ {
		n := 4 + rng.Intn(4)
		f := 1
		g, err := topology.RandomDigraph(n, 0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := condition.Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			continue
		}
		tested++
		faulty := nodeset.FromMembers(n, rng.Intn(n))
		initial := make([]float64, n)
		for i := range initial {
			initial[i] = rng.Float64()
		}
		tr, err := Sequential{}.Run(Config{
			G: g, F: f, Faulty: faulty, Initial: initial,
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 10},
			MaxRounds: 30000, Epsilon: 1e-7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Converged {
			t.Errorf("graph satisfying Theorem 1 failed to converge (n=%d):\n%s",
				n, g.EdgeListString())
		}
	}
	if tested < 5 {
		t.Fatalf("only %d satisfying graphs sampled; broaden the generator", tested)
	}
}
