package sim

import (
	"math"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// replayExtras builds K deterministic extra initial vectors for an n-node
// graph, anchored so vector 0 replays the primary initial state.
func replayExtras(n, K int, seed int64, primary []float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	extras := make([][]float64, K)
	extras[0] = append([]float64(nil), primary...)
	for x := 1; x < K; x++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*40 - 20
		}
		extras[x] = v
	}
	return extras
}

// TestStreamingReplayMatchesRetainedReference pins the streaming RunBatch
// path bit-identical to the record-then-replay reference across the full
// conformance table × K ∈ {1, 7, 64}: same primary trace, same finals for
// every extra vector. This is the contract that let the retained program
// sequence be deleted from the production path.
func TestStreamingReplayMatchesRetainedReference(t *testing.T) {
	for _, sc := range conformanceScenarios() {
		sc := sc
		switch sc.rule.(type) {
		case core.TrimmedMean, core.Mean:
		default:
			continue // matrix engine requires an affine-representable rule
		}
		t.Run(sc.name, func(t *testing.T) {
			for _, K := range []int{1, 7, 64} {
				cfg := sc.buildConfig(t, false)
				extras := replayExtras(cfg.G.N(), K, int64(1888+K), cfg.Initial)

				var bufs replayBufs
				refTr, refFinals, err := runBatchRetained(sc.buildConfig(t, false), extras, &bufs)
				if err != nil {
					t.Fatalf("K=%d: retained reference: %v", K, err)
				}
				gotTr, gotFinals, err := Matrix{}.RunBatch(cfg, extras)
				if err != nil {
					t.Fatalf("K=%d: streaming: %v", K, err)
				}

				assertTracesEqual(t, "primary", refTr, gotTr)
				if len(gotFinals) != len(refFinals) {
					t.Fatalf("K=%d: got %d finals, want %d", K, len(gotFinals), len(refFinals))
				}
				for x := range refFinals {
					for i := range refFinals[x] {
						if math.Float64bits(refFinals[x][i]) != math.Float64bits(gotFinals[x][i]) {
							t.Fatalf("K=%d: finals[%d][%d]: streaming %v != retained %v",
								K, x, i, gotFinals[x][i], refFinals[x][i])
						}
					}
				}
			}
		})
	}
}

// refProgram is the pre-CSR per-row program representation, kept only here
// as the semantic reference for the flat kernel: row i is a slice of terms
// evaluated in order, col ≥ 0 reading the state vector and col < 0
// contributing the literal.
type refProgram struct {
	rows   [][]refTerm
	weight []float64
}

type refTerm struct {
	col int
	lit float64
}

func (rp *refProgram) apply(src, dst []float64) {
	for i, row := range rp.rows {
		sum := src[i]
		for _, tm := range row {
			if tm.col >= 0 {
				sum += src[tm.col]
			} else {
				sum += tm.lit
			}
		}
		dst[i] = rp.weight[i] * sum
	}
}

// flatten re-encodes the reference program in the production CSR layout.
func (rp *refProgram) flatten() *roundProgram {
	pr := &roundProgram{}
	pr.reset(len(rp.rows))
	for i, row := range rp.rows {
		pr.weight[i] = rp.weight[i]
		for _, tm := range row {
			if tm.col >= 0 {
				pr.cols = append(pr.cols, int32(tm.col))
			} else {
				pr.cols = append(pr.cols, -1)
				pr.consts = append(pr.consts, tm.lit)
			}
		}
		pr.endRow()
	}
	return pr
}

// FuzzRoundProgramFlat decodes random row-stochastic programs and state
// vectors from the fuzz input and requires the CSR flat kernel to match the
// per-row reference bit for bit — apply against the reference row walk, and
// applyBatch against K independent scalar applies.
func FuzzRoundProgramFlat(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{8, 0, 0, 0xFF, 0xFF, 7, 7, 7, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{1, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		n := int(next())%8 + 1
		rp := &refProgram{rows: make([][]refTerm, n), weight: make([]float64, n)}
		for i := 0; i < n; i++ {
			terms := int(next()) % 5
			for k := 0; k < terms; k++ {
				sel := int(next()) % (n + 1)
				if sel == n {
					rp.rows[i] = append(rp.rows[i], refTerm{col: -1, lit: float64(next())/16 - 8})
				} else {
					rp.rows[i] = append(rp.rows[i], refTerm{col: sel})
				}
			}
			// Row-stochastic weighting: equal weight over own state + terms.
			rp.weight[i] = 1 / float64(len(rp.rows[i])+1)
		}
		pr := rp.flatten()

		const K = 5
		src := make([]float64, n)
		soa := make([]float64, n*K)
		cols := make([][]float64, K)
		for x := 0; x < K; x++ {
			cols[x] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			src[i] = float64(next())/8 - 16
			for x := 0; x < K; x++ {
				v := float64(next())/8 - 16
				soa[i*K+x] = v
				cols[x][i] = v
			}
		}

		want := make([]float64, n)
		rp.apply(src, want)
		got := make([]float64, n)
		pr.apply(src, got)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("apply: dst[%d] = %v, reference %v", i, got[i], want[i])
			}
		}

		dst := make([]float64, n*K)
		acc := make([]float64, K)
		pr.applyBatch(soa, dst, K, acc)
		for x := 0; x < K; x++ {
			rp.apply(cols[x], want)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(dst[i*K+x]) {
					t.Fatalf("applyBatch: vector %d dst[%d] = %v, scalar reference %v",
						x, i, dst[i*K+x], want[i])
				}
			}
		}
	})
}

// batchAllocsConfig is the fixture for the streaming-replay allocation
// gates: a core network run that never converges, so the round count is
// exactly MaxRounds.
func batchAllocsConfig(t *testing.T, rounds int) (Config, [][]float64) {
	t.Helper()
	g, err := topology.CoreNetwork(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 16)
	for i := range initial {
		initial[i] = float64(i)
	}
	cfg := Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(16, 0, 1), Initial: initial,
		Rule: core.TrimmedMean{}, Adversary: adversary.Extremes{Amplitude: 30},
		MaxRounds: rounds,
	}
	return cfg, replayExtras(16, 8, 99, initial)
}

// TestStreamingReplayZeroSteadyStateAllocs extends the differential allocs
// gate to the streaming batch replay: a RunBatch with 4× the rounds must
// allocate exactly as much as the short one (setup plus finals only) — the
// single rebuilt-in-place program adds nothing per round. The retained
// reference cannot pass this (one program per round), which the second half
// demonstrates.
func TestStreamingReplayZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates nondeterministically")
	}
	measureStream := func(rounds int) float64 {
		cfg, extras := batchAllocsConfig(t, rounds)
		return testing.AllocsPerRun(5, func() {
			tr, _, err := Matrix{}.RunBatch(cfg, extras)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Rounds != rounds {
				t.Fatalf("rounds = %d, want %d", tr.Rounds, rounds)
			}
		})
	}
	short, long := measureStream(100), measureStream(400)
	if long > short {
		t.Errorf("streaming replay allocates in steady state: %.1f allocs at 100 rounds vs %.1f at 400 (≈%.3f/round)",
			short, long, (long-short)/300)
	}

	measureRetained := func(rounds int) float64 {
		cfg, extras := batchAllocsConfig(t, rounds)
		return testing.AllocsPerRun(5, func() {
			var bufs replayBufs
			if _, _, err := runBatchRetained(cfg, extras, &bufs); err != nil {
				t.Fatal(err)
			}
		})
	}
	if rShort, rLong := measureRetained(100), measureRetained(400); rLong <= rShort {
		t.Errorf("retained reference no longer allocates per round (%.1f at 100 rounds vs %.1f at 400); the differential gate has lost its discriminating power",
			rShort, rLong)
	}
}

// TestStreamingReplayProgramMemoryOEdges is the acceptance bound for the
// O(edges) claim: MaxRounds = 10⁵ on chord(16,2) with K = 32 must fit under
// a total allocation budget that is obviously independent of the round
// count, while the retained-program reference — one program per round —
// blows through it at a fraction of the rounds.
func TestStreamingReplayProgramMemoryOEdges(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates nondeterministically")
	}
	g, err := topology.Chord(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 16)
	for i := range initial {
		initial[i] = float64(i)
	}
	const K = 32
	extras := replayExtras(16, K, 7, initial)
	mkCfg := func(rounds int) Config {
		return Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(16, 3), Initial: initial,
			Rule: core.TrimmedMean{}, Adversary: adversary.Extremes{Amplitude: 30},
			MaxRounds: rounds,
		}
	}

	// The budget covers setup (plane, scratch, trace, SoA buffers, finals)
	// plus the amortized growth of the round-indexed U/µ history past its
	// 4096-entry preallocation — a few dozen allocations, nowhere near one
	// per round.
	const budget = 500

	streaming := testing.AllocsPerRun(1, func() {
		tr, _, err := Matrix{}.RunBatch(mkCfg(100_000), extras)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Rounds != 100_000 {
			t.Fatalf("rounds = %d, want 100000", tr.Rounds)
		}
	})
	if streaming > budget {
		t.Errorf("streaming RunBatch at 10⁵ rounds: %.0f allocs, budget %d — program memory is not O(edges)", streaming, budget)
	}

	// The retained path allocates at least one program per round: even at
	// 1/50 of the rounds it cannot meet the same budget.
	retained := testing.AllocsPerRun(1, func() {
		var bufs replayBufs
		if _, _, err := runBatchRetained(mkCfg(2_000), extras, &bufs); err != nil {
			t.Fatal(err)
		}
	})
	if retained <= budget {
		t.Errorf("retained reference at 2000 rounds: %.0f allocs — unexpectedly within the streaming budget %d; the bound no longer discriminates", retained, budget)
	}
}

// TestReplayProgramsReusesCallerFinals is the regression test for the
// caller-owned finals buffer: a second replay through the same replayBufs
// must be allocation-free and must hand back the same backing storage,
// while still producing bit-identical results.
func TestReplayProgramsReusesCallerFinals(t *testing.T) {
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 7)
	for i := range initial {
		initial[i] = float64(i) * 0.5
	}
	cfg := Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(7, 2, 5), Initial: initial,
		Rule: core.TrimmedMean{}, Adversary: adversary.Hug{High: true},
		MaxRounds: 40,
	}
	_, progs, err := runMatrix(cfg, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	extras := replayExtras(7, 6, 3, initial)

	var bufs replayBufs
	first := replayPrograms(progs, extras, 7, &bufs)
	want := make([][]float64, len(first))
	for x := range first {
		want[x] = append([]float64(nil), first[x]...)
	}

	second := replayPrograms(progs, extras, 7, &bufs)
	for x := range want {
		if &second[x][0] != &first[x][0] {
			t.Fatalf("finals[%d] not backed by the caller-owned buffer across replays", x)
		}
		for i := range want[x] {
			if math.Float64bits(want[x][i]) != math.Float64bits(second[x][i]) {
				t.Fatalf("finals[%d][%d] = %v on reuse, want %v", x, i, second[x][i], want[x][i])
			}
		}
	}

	if !raceEnabled {
		allocs := testing.AllocsPerRun(10, func() {
			replayPrograms(progs, extras, 7, &bufs)
		})
		if allocs != 0 {
			t.Errorf("warm replayPrograms allocates %.1f per call, want 0", allocs)
		}
	}
}
