package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the trace as a CSV time series — the raw data behind
// range-vs-round convergence figures. Columns: round, U, mu, range, and
// (when the trace was recorded with RecordStates) one column per node.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"round", "U", "mu", "range"}
	if t.States != nil {
		for i := range t.States[0] {
			header = append(header, fmt.Sprintf("node%d", i))
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r <= t.Rounds; r++ {
		row := []string{
			strconv.Itoa(r),
			formatFloat(t.U[r]),
			formatFloat(t.Mu[r]),
			formatFloat(t.U[r] - t.Mu[r]),
		}
		if t.States != nil {
			for _, v := range t.States[r] {
				row = append(row, formatFloat(v))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}
