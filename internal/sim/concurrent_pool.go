package sim

import (
	"errors"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"sync"
)

// ConcurrentPool is the reusable form of the Concurrent engine: the n node
// goroutines, the per-edge channels, and the coordinator plumbing are
// constructed once for a graph and then reset per scenario, so a sweep pays
// the ~hundreds of goroutine/channel allocations once instead of per run.
// Traces are bit-identical to Concurrent.Run (and therefore to Sequential) —
// the node round protocol and the coordinator barrier are the same; only the
// lifetime of the machinery changes.
//
// A pool is NOT safe for concurrent use: one scenario runs at a time.
// Parallel sweeps give each worker its own pool (see Sweep). Close shuts the
// node goroutines down; it must be called exactly once, after which the pool
// is unusable.
type ConcurrentPool struct {
	g *graph.Graph
	// p supplies the edge geometry (flat in-edge indexing); its value plane
	// is unused — messages travel over channels.
	p *edgePlane
	// chans[e] is the capacity-1 channel of the in-edge with flat index e.
	chans []chan float64
	// orders[i] carries per-scenario init and per-round transmit commands.
	orders  []chan poolCmd
	reports chan nodeReport
	errs    chan error
	// sendBuf[s][k] is the value faulty sender s puts on its k-th out-edge
	// this round; allocated lazily the first time s is faulty in a scenario.
	sendBuf [][]float64
	// rule and f are the scenario's update parameters; written by the
	// coordinator before the init commands are sent (the channel send
	// publishes them to the node goroutines).
	rule core.UpdateRule
	f    int

	wg     sync.WaitGroup
	closed bool
}

var _ ScenarioRunner = (*ConcurrentPool)(nil)

// poolCmd is one instruction to a pooled node goroutine.
type poolCmd struct {
	kind     uint8   // pcInit or pcRound
	override bool    // pcRound: transmit from sendBuf instead of own state
	state    float64 // pcInit: the node's initial state
	isFaulty bool    // pcInit: whether the node is faulty this scenario
}

const (
	pcInit uint8 = iota
	pcRound
)

// newRunner implements the pooled-runner hook for the Concurrent engine.
func (Concurrent) newRunner(g *graph.Graph) ScenarioRunner { return NewConcurrentPool(g) }

// NewConcurrentPool builds the pool and starts its node goroutines.
func NewConcurrentPool(g *graph.Graph) *ConcurrentPool {
	n := g.N()
	p := newEdgePlane(g, nodeset.New(n), false)
	pl := &ConcurrentPool{
		g:       g,
		p:       p,
		chans:   make([]chan float64, p.inOff[n]),
		orders:  make([]chan poolCmd, n),
		reports: make(chan nodeReport, n),
		errs:    make(chan error, n),
		sendBuf: make([][]float64, n),
	}
	for e := range pl.chans {
		pl.chans[e] = make(chan float64, 1)
	}
	for i := range pl.orders {
		pl.orders[i] = make(chan poolCmd, 1)
	}
	pl.wg.Add(n)
	for i := 0; i < n; i++ {
		go pl.node(i)
	}
	return pl
}

// node is the long-lived goroutine for node i: the same three-phase round
// protocol as Concurrent.Run, looping across scenarios until Close.
func (pl *ConcurrentPool) node(i int) {
	defer pl.wg.Done()
	ins := pl.g.InView(i)
	outs := pl.g.OutView(i)
	outChans := make([]chan<- float64, len(outs))
	for k := range outs {
		outChans[k] = pl.chans[pl.p.edgeOf[i][k]]
	}
	inChans := pl.chans[pl.p.inOff[i]:pl.p.inOff[i+1]]
	recv := make([]core.ValueFrom, len(ins))
	for k, from := range ins {
		recv[k].From = from
	}
	var (
		state    float64
		isFaulty bool
		rule     core.UpdateRule
		buffered core.BufferedRule
		f        int
		scratch  core.Scratch
	)
	for cmd := range pl.orders[i] {
		if cmd.kind == pcInit {
			state = cmd.state
			isFaulty = cmd.isFaulty
			// The init send happens-after the coordinator's writes, so the
			// shared rule/f fields are safely published here.
			rule = pl.rule
			buffered, _ = rule.(core.BufferedRule)
			f = pl.f
			continue
		}
		// Phase 1: transmit on every outgoing edge.
		override := pl.sendBuf[i]
		for k := range outChans {
			v := state
			if cmd.override {
				v = override[k]
			}
			outChans[k] <- v
		}
		// Phase 2: receive one value per incoming edge, in in-neighbor
		// order (deterministic).
		for k := range inChans {
			recv[k].Value = <-inChans[k]
		}
		// Phase 3: apply the update rule (ghost update for faulty nodes
		// too — see package adversary).
		var v float64
		var err error
		if buffered != nil {
			v, err = buffered.UpdateInto(&scratch, state, recv, f)
		} else {
			v, err = rule.Update(state, recv, f)
		}
		switch {
		case err == nil:
			state = v
			pl.reports <- nodeReport{id: i, state: state}
		case isFaulty:
			// Ghost update undefined: freeze the ghost state, mirroring
			// Sequential.
			pl.reports <- nodeReport{id: i, state: state}
		default:
			// Unlike the one-shot engine the goroutine must survive for the
			// next scenario, so report the error and stay in the loop with
			// the state frozen.
			pl.errs <- err
		}
	}
}

// RunScenario implements ScenarioRunner: reset the pool to cfg and run the
// coordinator loop. The trace is bit-identical to Concurrent{}.Run(cfg).
func (pl *ConcurrentPool) RunScenario(cfg *Config) (*Trace, error) {
	if pl.closed {
		return nil, errors.New("sim: ConcurrentPool is closed")
	}
	if cfg.G != pl.g {
		return nil, errors.New("sim: scenario config graph differs from the pool's graph")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := pl.g.N()
	faulty := cfg.faulty()
	faultFree := faulty.Complement()

	states := snapshot(cfg.Initial)
	tr := newTrace(cfg, states, faultFree)
	pl.p.setFaulty(faulty)
	for _, s := range pl.p.faulty {
		if pl.sendBuf[s] == nil {
			pl.sendBuf[s] = make([]float64, pl.g.OutDegree(s))
		}
	}
	pl.rule, pl.f = cfg.Rule, cfg.F
	for i := 0; i < n; i++ {
		pl.orders[i] <- poolCmd{kind: pcInit, state: states[i], isFaulty: faulty.Contains(i)}
	}

	hasAdv := cfg.Adversary != nil && len(pl.p.faulty) > 0
	var ew adversary.EdgeWriter
	if hasAdv {
		ew, _ = cfg.Adversary.(adversary.EdgeWriter)
	}
	var sink bufSink

	var runErr error
	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		if hasAdv {
			view := roundView(cfg, round, states, faultFree, faulty)
			for _, s := range pl.p.faulty {
				// Substitute ghost state for omitted receivers so every edge
				// carries a value (matching Sequential's semantics): prefill
				// the ghost, then let the strategy overwrite.
				if ew != nil {
					for k := range pl.sendBuf[s] {
						pl.sendBuf[s][k] = states[s]
					}
					sink.buf = pl.sendBuf[s]
					ew.WriteMessages(view, s, &sink)
					continue
				}
				msgs := cfg.Adversary.Messages(view, s)
				for k, to := range pl.g.OutView(s) {
					if v, ok := msgs[to]; ok {
						pl.sendBuf[s][k] = v
					} else {
						pl.sendBuf[s][k] = states[s]
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			pl.orders[i] <- poolCmd{kind: pcRound, override: hasAdv && faulty.Contains(i)}
		}
		for done := 0; done < n; done++ {
			select {
			case rep := <-pl.reports:
				states[rep.id] = rep.state
			case err := <-pl.errs:
				runErr = err
			}
		}
		if runErr != nil {
			break
		}
		if stop := tr.record(cfg, round, states, faultFree); stop {
			break
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	tr.finish(states)
	return &tr.Trace, nil
}

// Close shuts down the node goroutines and waits for them to exit.
func (pl *ConcurrentPool) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	for i := range pl.orders {
		close(pl.orders[i])
	}
	pl.wg.Wait()
}
