package sim

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"iabc/internal/core"
	"iabc/internal/topology"
)

func TestWriteCSVWithStates(t *testing.T) {
	g, err := topology.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sequential{}.Run(Config{
		G: g, F: 0, Initial: []float64{0, 1, 2},
		Rule: core.TrimmedMean{}, MaxRounds: 4, RecordStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != tr.Rounds+2 { // header + rounds+1 rows
		t.Fatalf("rows = %d, want %d", len(records), tr.Rounds+2)
	}
	wantHeader := []string{"round", "U", "mu", "range", "node0", "node1", "node2"}
	for i, h := range wantHeader {
		if records[0][i] != h {
			t.Fatalf("header = %v, want %v", records[0], wantHeader)
		}
	}
	// First data row reproduces the initial condition exactly.
	u, err := strconv.ParseFloat(records[1][1], 64)
	if err != nil || u != 2 {
		t.Fatalf("U[0] = %q", records[1][1])
	}
	n2, err := strconv.ParseFloat(records[1][6], 64)
	if err != nil || n2 != 2 {
		t.Fatalf("node2[0] = %q", records[1][6])
	}
}

func TestWriteCSVWithoutStates(t *testing.T) {
	g, err := topology.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sequential{}.Run(Config{
		G: g, F: 0, Initial: []float64{0, 1, 2},
		Rule: core.TrimmedMean{}, MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.HasPrefix(lines[0], "round,U,mu,range") || strings.Contains(lines[0], "node0") {
		t.Fatalf("header = %q", lines[0])
	}
}
