package sim

import (
	"context"
	"math"
	"strings"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/nodeset"
	"iabc/internal/statestore"
)

// sweepStateScenarios builds a small mixed sweep for the durability tests.
func sweepStateScenarios() []Scenario {
	return []Scenario{
		{Name: "hug-high", Adversary: adversary.Hug{High: true}},
		{Name: "hug-low", Adversary: adversary.Hug{}},
		{Name: "extremes", Adversary: adversary.Extremes{Amplitude: 50}},
		{Name: "silent", Adversary: adversary.Silent{}},
	}
}

// TestSweepResumeBitIdentical interrupts a durable sweep partway, then
// re-runs it over the same store: the resumed sweep must skip the persisted
// scenarios and still produce traces bit-identical to an undisturbed sweep.
func TestSweepResumeBitIdentical(t *testing.T) {
	base := scenarioBase(t)
	scens := sweepStateScenarios()
	want, err := Sweep(context.Background(), base, scens, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	store := statestore.NewMem()
	// First run: cancel after two scenarios have completed (OnScenario fires
	// after the checkpoint write, so both are durable when the cancel lands).
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	_, err = Sweep(ctx, base, scens, SweepOptions{
		Workers: 1, Store: store,
		OnScenario: func(int, string, *Trace) {
			if done++; done == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted sweep returned no error")
	}
	if keys, err := store.List(context.Background(), "sweep/"); err != nil || len(keys) != 2 {
		t.Fatalf("store holds %d records (err %v), want 2", len(keys), err)
	}

	// Second run over the same store: two scenarios resume, two run fresh.
	var ran []string
	res, err := Sweep(context.Background(), base, scens, SweepOptions{
		Workers: 1, Store: store,
		OnScenario: func(_ int, name string, _ *Trace) { ran = append(ran, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosResumed != 2 {
		t.Fatalf("ScenariosResumed = %d, want 2", res.ScenariosResumed)
	}
	if len(ran) != len(scens)-2 {
		t.Fatalf("resumed sweep ran %d scenarios (%v), want %d", len(ran), ran, len(scens)-2)
	}
	for i := range scens {
		assertTracesEqual(t, scens[i].Name, want.Traces[i], res.Traces[i])
	}

	// Third run: everything resumes, nothing executes.
	res, err = Sweep(context.Background(), base, scens, SweepOptions{
		Workers: 1, Store: store,
		OnScenario: func(_ int, name string, _ *Trace) { t.Errorf("scenario %s ran on a fully resumed sweep", name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosResumed != len(scens) {
		t.Fatalf("ScenariosResumed = %d, want %d", res.ScenariosResumed, len(scens))
	}
	for i := range scens {
		assertTracesEqual(t, scens[i].Name, want.Traces[i], res.Traces[i])
	}
}

// TestSweepResumeIdentityChecks pins when persisted records are trusted:
// only the exact sweep identity resumes; a different salt, a different
// scenario set, or a corrupted record re-runs — never misattributes.
func TestSweepResumeIdentityChecks(t *testing.T) {
	base := scenarioBase(t)
	scens := sweepStateScenarios()
	store := statestore.NewMem()
	ctx := context.Background()
	if _, err := Sweep(ctx, base, scens, SweepOptions{Workers: 1, Store: store}); err != nil {
		t.Fatal(err)
	}
	keys, err := store.List(ctx, "sweep/")
	if err != nil || len(keys) != len(scens) {
		t.Fatalf("List: %v (%d keys)", err, len(keys))
	}

	run := func(opts SweepOptions, scens []Scenario) int {
		t.Helper()
		opts.Workers, opts.Store = 1, store
		res, err := Sweep(ctx, base, scens, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.ScenariosResumed
	}
	if got := run(SweepOptions{}, scens); got != len(scens) {
		t.Fatalf("same identity resumed %d, want %d", got, len(scens))
	}
	if got := run(SweepOptions{StateSalt: "seed=7"}, scens); got != 0 {
		t.Fatalf("different salt resumed %d, want 0", got)
	}
	renamed := append([]Scenario(nil), scens...)
	renamed[0].Name = "renamed"
	if got := run(SweepOptions{}, renamed); got != 0 {
		t.Fatalf("different scenario set resumed %d, want 0", got)
	}

	// Corrupt one record in place: that scenario re-runs, the rest resume.
	if err := store.Write(ctx, keys[0], []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if got := run(SweepOptions{}, scens); got != len(scens)-1 {
		t.Fatalf("corrupt record: resumed %d, want %d", got, len(scens)-1)
	}
}

// TestSweepResumeParallelAndRunner exercises the durable sweep on the
// parallel path and through the Runner hook together: a Runner-backed sweep
// persists what the Runner returns, and the resumed result is bit-identical.
func TestSweepResumeParallelAndRunner(t *testing.T) {
	base := scenarioBase(t)
	scens := sweepStateScenarios()
	want, err := Sweep(context.Background(), base, scens, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	store := statestore.NewMem()
	res, err := Sweep(context.Background(), base, scens, SweepOptions{
		Workers: 4, Store: store,
		Runner: func(ctx context.Context, index int, cfg *Config, extras [][]float64) (*Trace, [][]float64, error) {
			tr, err := Sequential{}.Run(*cfg)
			return tr, nil, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scens {
		assertTracesEqual(t, scens[i].Name, want.Traces[i], res.Traces[i])
	}

	// Resume with the default engine (no Runner): identity matches because
	// the Runner produced engine-identical traces under the same engine name.
	res, err = Sweep(context.Background(), base, scens, SweepOptions{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosResumed != len(scens) {
		t.Fatalf("ScenariosResumed = %d, want %d", res.ScenariosResumed, len(scens))
	}
	for i := range scens {
		assertTracesEqual(t, scens[i].Name, want.Traces[i], res.Traces[i])
	}
}

// TestScenarioResultRoundTrip pins the bit-exactness of the shared scenario
// result codec, non-finite floats included.
func TestScenarioResultRoundTrip(t *testing.T) {
	tr := &Trace{
		Rounds: 1, Converged: true,
		U:         []float64{math.NaN(), math.Inf(1)},
		Mu:        []float64{math.Inf(-1), 1.5},
		States:    [][]float64{{1, -0.0}, {math.NaN(), -3}},
		Final:     []float64{0.1, 0.2},
		FaultFree: nodeset.FromMembers(2, 1),
		RuleName:  "trimmed-mean", AdversaryName: "hug-high",
	}
	finals := [][]float64{{math.Inf(1), -0.0}, nil}
	raw, err := EncodeScenarioResult(tr, finals)
	if err != nil {
		t.Fatal(err)
	}
	got, gotFinals, err := DecodeScenarioResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, "round-trip", tr, got)
	if len(gotFinals) != len(finals) {
		t.Fatalf("finals length %d, want %d", len(gotFinals), len(finals))
	}
	for i := range finals {
		if len(gotFinals[i]) != len(finals[i]) {
			t.Fatalf("finals[%d] length %d, want %d", i, len(gotFinals[i]), len(finals[i]))
		}
		for j := range finals[i] {
			if math.Float64bits(gotFinals[i][j]) != math.Float64bits(finals[i][j]) {
				t.Fatalf("finals[%d][%d] = %x, want %x", i, j,
					math.Float64bits(gotFinals[i][j]), math.Float64bits(finals[i][j]))
			}
		}
	}
	if _, _, err := DecodeScenarioResult([]byte("{broken")); err == nil ||
		!strings.Contains(err.Error(), "decoding scenario result") {
		t.Fatalf("corrupt decode error = %v", err)
	}
}
