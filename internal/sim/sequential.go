package sim

import (
	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
)

// Sequential is the single-goroutine reference engine. The zero value is
// ready to use.
//
// The round loop runs allocation-free in steady state: messages live on a
// flat edge-indexed plane (see edgePlane), received vectors are views into
// one preallocated buffer with sender IDs written once at setup, rules
// implementing core.BufferedRule are driven through the zero-allocation
// UpdateInto path, and strategies implementing adversary.EdgeWriter scatter
// faulty values straight onto the plane with no per-round map. Only the
// Messages-map fallback (for strategies without an EdgeWriter) and trace
// growth beyond the preallocated window still allocate.
type Sequential struct{}

var _ Engine = Sequential{}

// Name implements Engine.
func (Sequential) Name() string { return "sequential" }

// Run implements Engine.
func (Sequential) Run(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := newEdgePlane(cfg.G, cfg.faulty(), false)
	tr, err := runSequential(&cfg, p, newRecvPlane(p))
	if err != nil {
		return nil, err
	}
	return &tr.Trace, nil
}

// newRecvPlane builds the flat received-vector buffer for all nodes; the
// From fields never change across rounds, so they are written exactly once.
func newRecvPlane(p *edgePlane) []core.ValueFrom {
	recv := make([]core.ValueFrom, p.inOff[p.n])
	for e, s := range p.senders {
		recv[e].From = s
	}
	return recv
}

// runSequential is the sequential round loop over an existing plane and
// receive buffer. The plane's fault set must already match cfg (setFaulty);
// RunScenarios replays this loop with the same plane across scenarios.
func runSequential(cfg *Config, p *edgePlane, recv []core.ValueFrom) (*tracer, error) {
	n := cfg.G.N()
	faulty := cfg.faulty()
	faultFree := faulty.Complement()

	states := snapshot(cfg.Initial)
	next := make([]float64, n)

	tr := newTrace(cfg, states, faultFree)
	buffered, _ := cfg.Rule.(core.BufferedRule)
	var scratch core.Scratch
	hasAdv := cfg.Adversary != nil && len(p.faulty) > 0
	var ew adversary.EdgeWriter
	if hasAdv {
		ew, _ = cfg.Adversary.(adversary.EdgeWriter)
	}

	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		p.fill(states)
		if hasAdv {
			p.applyAdversary(cfg.Adversary, ew, roundView(cfg, round, states, faultFree, faulty))
		}

		for i := 0; i < n; i++ {
			lo, hi := p.inOff[i], p.inOff[i+1]
			buf := recv[lo:hi]
			for k := range buf {
				buf[k].Value = p.values[lo+k]
			}
			var v float64
			var err error
			if buffered != nil {
				v, err = buffered.UpdateInto(&scratch, states[i], buf, cfg.F)
			} else {
				v, err = cfg.Rule.Update(states[i], buf, cfg.F)
			}
			if err != nil {
				if faultFree.Contains(i) {
					return nil, err
				}
				// A faulty node's ghost update may be undefined (e.g.
				// in-degree below 2f+1); its state is meaningless anyway,
				// so freeze it rather than failing the run.
				v = states[i]
			}
			next[i] = v
		}
		states, next = next, states

		if done := tr.record(cfg, round, states, faultFree); done {
			break
		}
	}
	tr.finish(states)
	return tr, nil
}

// tracer accumulates a Trace incrementally; shared by all engines.
type tracer struct {
	Trace
	epsilon float64
}

// tracePrealloc caps the up-front U/µ capacity so short runs with huge
// MaxRounds don't over-allocate; runs longer than this grow amortized.
const tracePrealloc = 4096

func newTrace(cfg *Config, initial []float64, faultFree nodeset.Set) *tracer {
	lo, hi := faultFreeRange(initial, faultFree)
	t := &tracer{epsilon: cfg.Epsilon}
	capHint := cfg.MaxRounds + 1
	if capHint > tracePrealloc {
		capHint = tracePrealloc
	}
	t.U = append(make([]float64, 0, capHint), hi)
	t.Mu = append(make([]float64, 0, capHint), lo)
	t.FaultFree = faultFree.Clone()
	t.RuleName, t.AdversaryName = names(cfg)
	if cfg.RecordStates {
		t.States = append(t.States, snapshot(initial))
	}
	if t.epsilon > 0 && hi-lo <= t.epsilon {
		t.Converged = true // already in agreement at round 0
	}
	if cfg.OnRound != nil {
		cfg.OnRound(0, hi, lo)
	}
	return t
}

// record appends round results; returns true when the epsilon stop fires.
func (t *tracer) record(cfg *Config, round int, states []float64, faultFree nodeset.Set) bool {
	lo, hi := faultFreeRange(states, faultFree)
	t.U = append(t.U, hi)
	t.Mu = append(t.Mu, lo)
	t.Rounds = round
	if cfg.RecordStates {
		t.States = append(t.States, snapshot(states))
	}
	if cfg.OnRound != nil {
		cfg.OnRound(round, hi, lo)
	}
	if t.epsilon > 0 && hi-lo <= t.epsilon {
		t.Converged = true
		return true
	}
	return false
}

func (t *tracer) finish(states []float64) {
	t.Final = snapshot(states)
}

func snapshot(states []float64) []float64 {
	out := make([]float64, len(states))
	copy(out, states)
	return out
}
