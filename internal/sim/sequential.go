package sim

import (
	"iabc/internal/core"
	"iabc/internal/nodeset"
)

// Sequential is the single-goroutine reference engine. The zero value is
// ready to use.
type Sequential struct{}

var _ Engine = Sequential{}

// Name implements Engine.
func (Sequential) Name() string { return "sequential" }

// Run implements Engine.
func (Sequential) Run(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	faultFree := cfg.faultFree()

	states := make([]float64, n)
	copy(states, cfg.Initial)
	next := make([]float64, n)

	tr := newTrace(&cfg, states, faultFree)

	// Reusable received-vector buffers, one per node, sized to in-degree.
	recv := make([][]core.ValueFrom, n)
	for i := 0; i < n; i++ {
		recv[i] = make([]core.ValueFrom, cfg.G.InDegree(i))
	}

	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		view := roundView(&cfg, round, states, faultFree)
		msgs := faultyMessages(&cfg, view)

		for i := 0; i < n; i++ {
			buf := recv[i]
			for k, from := range cfg.G.InNeighbors(i) {
				buf[k] = core.ValueFrom{From: from, Value: receivedValue(from, i, states, msgs)}
			}
			v, err := cfg.Rule.Update(states[i], buf, cfg.F)
			if err != nil {
				if faultFree.Contains(i) {
					return nil, err
				}
				// A faulty node's ghost update may be undefined (e.g.
				// in-degree below 2f+1); its state is meaningless anyway,
				// so freeze it rather than failing the run.
				v = states[i]
			}
			next[i] = v
		}
		states, next = next, states

		if done := tr.record(&cfg, round, states, faultFree); done {
			break
		}
	}
	tr.finish(states)
	return &tr.Trace, nil
}

// tracer accumulates a Trace incrementally; shared by both engines.
type tracer struct {
	Trace
	epsilon float64
}

func newTrace(cfg *Config, initial []float64, faultFree nodeset.Set) *tracer {
	lo, hi := faultFreeRange(initial, faultFree)
	t := &tracer{epsilon: cfg.Epsilon}
	t.U = append(t.U, hi)
	t.Mu = append(t.Mu, lo)
	t.FaultFree = faultFree.Clone()
	t.RuleName, t.AdversaryName = names(cfg)
	if cfg.RecordStates {
		t.States = append(t.States, snapshot(initial))
	}
	if t.epsilon > 0 && hi-lo <= t.epsilon {
		t.Converged = true // already in agreement at round 0
	}
	return t
}

// record appends round results; returns true when the epsilon stop fires.
func (t *tracer) record(cfg *Config, round int, states []float64, faultFree nodeset.Set) bool {
	lo, hi := faultFreeRange(states, faultFree)
	t.U = append(t.U, hi)
	t.Mu = append(t.Mu, lo)
	t.Rounds = round
	if cfg.RecordStates {
		t.States = append(t.States, snapshot(states))
	}
	if t.epsilon > 0 && hi-lo <= t.epsilon {
		t.Converged = true
		return true
	}
	return false
}

func (t *tracer) finish(states []float64) {
	t.Final = snapshot(states)
}

func snapshot(states []float64) []float64 {
	out := make([]float64, len(states))
	copy(out, states)
	return out
}
