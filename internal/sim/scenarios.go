package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/statestore"
)

// Scenario is one variation of a base Config in a batched sweep. Zero-value
// fields keep the base configuration, so a sweep that only varies the
// adversary sets nothing else.
type Scenario struct {
	// Name labels the scenario in results (defaults to the adversary name).
	Name string
	// Adversary overrides base.Adversary when non-nil.
	Adversary adversary.Strategy
	// Initial overrides base.Initial when non-nil (length must be n).
	Initial []float64
	// Faulty overrides base.Faulty when it has non-zero capacity: any set
	// built with nodeset.New(n) — including an empty one — is an override.
	// A zero-value Set keeps the base fault set unless HasFaulty is set.
	Faulty nodeset.Set
	// HasFaulty forces the Faulty override even when Faulty is a zero-value
	// set, so a scenario can reset the base to fault-free without having to
	// construct a sized empty set.
	HasFaulty bool
	// MaxRounds overrides base.MaxRounds when > 0, letting one sweep mix
	// short and long scenarios. Sweep schedules the costliest scenarios
	// first (see scheduleOrder), so uneven round budgets do not leave one
	// long scenario bounding the tail.
	MaxRounds int
}

// apply merges the scenario's overrides into a copy of base.
func (s *Scenario) apply(base Config) Config {
	cfg := base
	if s.Adversary != nil {
		cfg.Adversary = s.Adversary
	}
	if s.Initial != nil {
		cfg.Initial = s.Initial
	}
	if s.HasFaulty || s.Faulty.Cap() != 0 {
		cfg.Faulty = s.Faulty
	}
	if s.MaxRounds > 0 {
		cfg.MaxRounds = s.MaxRounds
	}
	return cfg
}

// ScenarioRunner is a reusable engine instance for scenario sweeps: it is
// constructed once per worker for one graph, and then executes many derived
// configs over the same pooled state (edge planes, receive buffers, node
// goroutines), amortizing the per-run setup across the whole sweep.
//
// RunScenario validates the config; the config's graph must be the exact
// *graph.Graph the runner was built for. Close releases pooled resources
// (node goroutines for the concurrent pool); the runner must not be used
// afterwards.
type ScenarioRunner interface {
	RunScenario(cfg *Config) (*Trace, error)
	Close()
}

// runnerFactory is implemented by engines that provide a pooled runner.
type runnerFactory interface {
	newRunner(g *graph.Graph) ScenarioRunner
}

// batchRunner extends ScenarioRunner with recorded-program replay over extra
// initial vectors (the Matrix engine's second batching dimension).
type batchRunner interface {
	ScenarioRunner
	runBatchScenario(cfg *Config, extras [][]float64) (*Trace, [][]float64, error)
}

// NewScenarioRunner returns a reusable runner for engine over g. Sequential,
// Concurrent (a node pool, see NewConcurrentPool), and Matrix provide pooled
// implementations; any other engine falls back to a fresh Run per scenario.
// A nil engine selects Sequential.
func NewScenarioRunner(engine Engine, g *graph.Graph) ScenarioRunner {
	if engine == nil {
		engine = Sequential{}
	}
	if f, ok := engine.(runnerFactory); ok {
		return f.newRunner(g)
	}
	return genericRunner{engine}
}

// genericRunner adapts any Engine to ScenarioRunner with no state reuse.
type genericRunner struct{ e Engine }

func (r genericRunner) RunScenario(cfg *Config) (*Trace, error) { return r.e.Run(*cfg) }
func (r genericRunner) Close()                                  {}

// SweepOptions configures Sweep.
type SweepOptions struct {
	// Engine selects the per-scenario engine; nil defaults to Sequential.
	// Sequential, Concurrent, and Matrix all run through pooled
	// ScenarioRunners (one per worker).
	Engine Engine
	// Workers fans scenarios across goroutines, one private runner (and
	// message plane) each; scenarios are independent, so the sweep scales
	// with cores. Workers ≤ 0 selects GOMAXPROCS (matching
	// condition.CheckParallel); 1 is the sequential sweep. Results are
	// bit-identical for any worker count provided scenarios do not share
	// mutable adversary state (see the Sweep doc comment).
	Workers int
	// Extras, when non-empty, composes the two batching dimensions: each
	// scenario's recorded round-program sequence is additionally replayed
	// over these K initial vectors (structure-of-arrays, see
	// Matrix.RunBatch) and the per-vector final states are returned in
	// SweepResult.Finals. Requires the Matrix engine. Every vector must
	// have length n.
	Extras [][]float64
	// OnScenario, when non-nil, is invoked once per completed scenario with
	// its index, resolved name, and trace — streaming per-scenario progress
	// before the sweep returns. A single-worker sweep delivers in index
	// order; with more than one effective worker it is called concurrently
	// from worker goroutines (scenarios complete out of order, and the
	// cost-first schedule reorders dispatch), so the callback must be safe
	// for concurrent use. It is not called for scenarios that fail or are
	// skipped after a failure or cancellation, nor for scenarios resumed
	// from a Store checkpoint (they did not run).
	OnScenario func(index int, name string, tr *Trace)
	// Store, when non-nil, makes the sweep durable: every completed
	// scenario's trace (and extras finals) is persisted bit-exactly, keyed
	// by the sweep's full derived identity, and a fresh Sweep over the same
	// store skips persisted scenarios outright — resuming a killed sweep
	// scenario-identically. Store errors abort the sweep. Records belong to
	// one exact identity (graph, engine, rule, scenario overrides, extras,
	// StateSalt); anything else re-runs.
	Store statestore.Backend
	// StateSalt folds caller-known identity into the sweep's state key that
	// the configs themselves cannot expose — typically the seed behind a
	// randomized adversary, whose Name() does not include it. Two sweeps
	// differing only in such hidden state must pass different salts or they
	// would resume from each other's checkpoints.
	StateSalt string
	// Runner, when non-nil, replaces the engine execution of each scenario:
	// instead of running cfg on a pooled ScenarioRunner, the sweep calls
	// Runner and stores whatever it returns. This is the seam the
	// distributed coordinator plugs into — scheduling, validation,
	// OnScenario, checkpointing, and result assembly stay in Sweep while
	// the simulation itself happens elsewhere. The Runner must return a
	// trace bit-identical to what the configured engine would produce
	// (returned finals must align with Extras), and must be safe for
	// concurrent use when Workers > 1.
	Runner func(ctx context.Context, index int, cfg *Config, extras [][]float64) (*Trace, [][]float64, error)
}

// SweepResult is the output of Sweep, index-aligned with the scenarios.
type SweepResult struct {
	// Traces[i] is scenario i's trace, bit-identical to what the selected
	// engine's Run would produce for the derived config.
	Traces []*Trace
	// Finals[i][x] is the final state vector of Extras[x] replayed through
	// scenario i's recorded round programs; nil when Extras was empty.
	Finals [][][]float64
	// ScenariosResumed counts scenarios served from a Store checkpoint
	// instead of running — provenance only; the traces are bit-identical
	// either way.
	ScenariosResumed int
}

// Sweep executes base once per scenario, amortizing the graph-dependent
// engine setup across the batch and, with Workers > 1, fanning the
// independent scenarios out across worker goroutines — each worker owns a
// private ScenarioRunner, so no simulation state is shared.
//
// With the Matrix engine and non-empty Extras the two batching dimensions
// compose: each scenario's primary run records one round program per round,
// and the whole program sequence is then SoA-replayed over the K extra
// initial vectors at a few flops per edge per vector.
//
// Scheduling: with more than one effective worker, scenarios are
// dispatched largest-estimated-cost-first (effective MaxRounds × edges ×
// replay width, see scheduleOrder), so a parallel sweep with uneven round
// budgets does not end with one long scenario running alone while the
// other workers idle. A single-worker sweep runs in natural index order —
// reordering buys nothing there, and OnScenario then fires in index
// order. Results are index-aligned with scenarios and bit-identical
// regardless of the execution order — scheduling changes only the tail
// latency.
//
// Cancellation: ctx is checked between scenarios (never inside the
// zero-allocation round loop), so cancellation returns within one
// scenario's simulation time. On cancellation the result is nil and the
// error wraps ctx.Err() together with how many scenarios had completed.
//
// Error contract: every derived config is validated up front (fail fast,
// nothing simulated); any scenario error — validation or mid-sweep — is
// wrapped with the scenario's index and name, and the returned SweepResult
// is nil: Sweep never hands back a partially filled sweep. With multiple
// failing scenarios, the error reported is the failure with the lowest
// index among those executed; a scenario failure takes precedence over a
// concurrent cancellation.
//
// Concurrency contract: with Workers > 1 different scenarios run on
// different goroutines, so scenarios must not share mutable adversary state
// (a *RandomNoise rng, an *Insider scratch) — give each scenario its own
// strategy instance. Stateless built-ins (Hug, Extremes, Fixed, Silent,
// Conforming, PartitionAttack) are safe to share.
func Sweep(ctx context.Context, base Config, scenarios []Scenario, opts SweepOptions) (*SweepResult, error) {
	if len(scenarios) == 0 {
		return &SweepResult{}, nil
	}
	engine := opts.Engine
	if engine == nil {
		engine = Sequential{}
	}
	// Validate every derived config up front so a bad scenario fails fast
	// instead of after its predecessors' simulation time.
	cfgs := make([]Config, len(scenarios))
	for i := range scenarios {
		cfgs[i] = scenarios[i].apply(base)
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("sim: scenario %d (%s): %w", i, scenarioName(&scenarios[i]), err)
		}
	}
	if len(opts.Extras) > 0 {
		if _, ok := engine.(Matrix); !ok {
			return nil, fmt.Errorf("sim: Extras replay requires the Matrix engine, got %s", engine.Name())
		}
		n := base.G.N()
		for x, init := range opts.Extras {
			if len(init) != n {
				return nil, fmt.Errorf("sim: extra initial %d has length %d, want n = %d", x, len(init), n)
			}
		}
	}
	order := make([]int, len(cfgs))
	for i := range order {
		order[i] = i
	}
	if resolveWorkers(opts.Workers, len(scenarios)) > 1 {
		order = scheduleOrder(cfgs, len(opts.Extras))
	}
	return sweepOrdered(ctx, engine, scenarios, cfgs, opts, order)
}

// resolveWorkers maps the Workers option to the goroutine count actually
// used: ≤ 0 selects GOMAXPROCS, and a sweep never runs more workers than
// it has scenarios.
func resolveWorkers(workers, scenarios int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > scenarios {
		workers = scenarios
	}
	return workers
}

// scheduleOrder returns the execution order for a sweep: scenario indexes
// sorted by descending estimated cost — effective MaxRounds × edges ×
// (1 + replay width) — with the stable original order breaking ties. Edges
// and replay width are shared by every scenario of a sweep today, so the
// ranking is driven by per-scenario MaxRounds overrides; the full product is
// kept so the estimate stays honest if the other factors ever vary.
func scheduleOrder(cfgs []Config, extras int) []int {
	order := make([]int, len(cfgs))
	cost := make([]int64, len(cfgs))
	for i := range cfgs {
		order[i] = i
		cost[i] = int64(cfgs[i].MaxRounds) * int64(cfgs[i].G.NumEdges()) * int64(1+extras)
	}
	sort.SliceStable(order, func(a, b int) bool { return cost[order[a]] > cost[order[b]] })
	return order
}

// sweepOrdered runs the validated configs in the given execution order.
// Result slots are keyed by the original scenario index, so any order
// yields the same SweepResult — the regression test pins this by replaying
// a sweep in natural order.
func sweepOrdered(ctx context.Context, engine Engine, scenarios []Scenario, cfgs []Config, opts SweepOptions, order []int) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &SweepResult{Traces: make([]*Trace, len(scenarios))}
	if len(opts.Extras) > 0 {
		res.Finals = make([][][]float64, len(scenarios))
	}
	// With a store, serve persisted scenarios before running anything: the
	// remaining order excludes them, so a resumed sweep only pays for the
	// scenarios the interrupted run had not settled.
	var ss *sweepState
	if opts.Store != nil {
		var err error
		ss, err = newSweepState(opts.Store, engine.Name(), opts.StateSalt, cfgs, scenarios, opts.Extras)
		if err != nil {
			return nil, err
		}
		remaining := order[:0]
		for _, i := range order {
			tr, finals, err := ss.load(ctx, i)
			if err != nil {
				return nil, err
			}
			if tr == nil {
				remaining = append(remaining, i)
				continue
			}
			res.Traces[i] = tr
			if res.Finals != nil {
				res.Finals[i] = finals
			}
			res.ScenariosResumed++
		}
		order = remaining
	}
	var completed atomic.Int64
	// runOne executes scenario i on runner r; each index is written by
	// exactly one worker, so result slots need no locking.
	runOne := func(r ScenarioRunner, i int) error {
		var (
			tr     *Trace
			finals [][]float64
			err    error
		)
		switch {
		case opts.Runner != nil:
			tr, finals, err = opts.Runner(ctx, i, &cfgs[i], opts.Extras)
		case res.Finals != nil:
			tr, finals, err = r.(batchRunner).runBatchScenario(&cfgs[i], opts.Extras)
		default:
			tr, err = r.RunScenario(&cfgs[i])
		}
		if err != nil {
			return fmt.Errorf("sim: scenario %d (%s): %w", i, scenarioName(&scenarios[i]), err)
		}
		if ss != nil {
			if err := ss.save(ctx, i, tr, finals); err != nil {
				return fmt.Errorf("sim: scenario %d (%s): %w", i, scenarioName(&scenarios[i]), err)
			}
		}
		res.Traces[i] = tr
		if res.Finals != nil {
			res.Finals[i] = finals
		}
		completed.Add(1)
		if opts.OnScenario != nil {
			opts.OnScenario(i, scenarioName(&scenarios[i]), tr)
		}
		return nil
	}
	cancelErr := func() error {
		return fmt.Errorf("sim: sweep canceled after %d/%d scenarios: %w",
			completed.Load(), len(cfgs), context.Cause(ctx))
	}
	// newWorkerRunner builds the per-worker engine state — skipped entirely
	// when a Runner hook executes scenarios elsewhere.
	newWorkerRunner := func() ScenarioRunner {
		if opts.Runner != nil {
			return genericRunner{engine}
		}
		return NewScenarioRunner(engine, cfgs[0].G)
	}
	if len(order) == 0 {
		return res, nil
	}

	workers := resolveWorkers(opts.Workers, len(order))
	if workers == 1 {
		r := newWorkerRunner()
		defer r.Close()
		for _, i := range order {
			if ctx.Err() != nil {
				return nil, cancelErr()
			}
			if err := runOne(r, i); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		canceled atomic.Bool
		mu       sync.Mutex
		firstErr error
		firstIdx = len(scenarios)
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			r := newWorkerRunner()
			defer r.Close()
			for !failed.Load() && !canceled.Load() {
				k := int(next.Add(1) - 1)
				if k >= len(order) {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				i := order[k]
				if err := runOne(r, i); err != nil {
					mu.Lock()
					if firstErr == nil || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if canceled.Load() {
		return nil, cancelErr()
	}
	return res, nil
}

// RunScenarios executes base once per scenario on the sequential round loop,
// amortizing the engine setup — edge-plane geometry (the O(m log d) reverse
// index), receive buffers — across the whole batch. It is Sweep with the
// default engine and a single worker; use Sweep directly for multi-core
// sweeps, other engines, or the composed matrix-replay dimension.
//
// Traces are index-aligned with scenarios and bit-identical to what
// Sequential.Run would produce for each derived config. On any error the
// returned trace slice is nil (never a partial prefix) and the error names
// the failing scenario's index and name.
func RunScenarios(base Config, scenarios []Scenario) ([]*Trace, error) {
	res, err := Sweep(context.Background(), base, scenarios, SweepOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	return res.Traces, nil
}

// scenarioName resolves the label used in errors and reports.
func scenarioName(s *Scenario) string {
	if s.Name != "" {
		return s.Name
	}
	if s.Adversary != nil {
		return s.Adversary.Name()
	}
	return "base"
}

// newRunner builds the sequential engine's pooled runner.
func (Sequential) newRunner(g *graph.Graph) ScenarioRunner {
	p := newEdgePlane(g, nodeset.New(g.N()), false)
	return &sequentialRunner{g: g, p: p, recv: newRecvPlane(p)}
}

// sequentialRunner reuses one edge plane and receive buffer across
// scenarios — the sequential engine's pooled form.
type sequentialRunner struct {
	g    *graph.Graph
	p    *edgePlane
	recv []core.ValueFrom
}

func (r *sequentialRunner) RunScenario(cfg *Config) (*Trace, error) {
	if cfg.G != r.g {
		return nil, fmt.Errorf("sim: scenario config graph differs from the runner's graph")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r.p.setFaulty(cfg.faulty())
	tr, err := runSequential(cfg, r.p, r.recv)
	if err != nil {
		return nil, err
	}
	return &tr.Trace, nil
}

func (r *sequentialRunner) Close() {}
