package sim

import (
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/nodeset"
)

// Scenario is one variation of a base Config in a batched sweep. Zero-value
// fields keep the base configuration, so a sweep that only varies the
// adversary sets nothing else.
type Scenario struct {
	// Name labels the scenario in results (defaults to the adversary name).
	Name string
	// Adversary overrides base.Adversary when non-nil.
	Adversary adversary.Strategy
	// Initial overrides base.Initial when non-nil (length must be n).
	Initial []float64
	// Faulty overrides base.Faulty when non-empty-capacity.
	Faulty nodeset.Set
}

// apply merges the scenario's overrides into a copy of base.
func (s *Scenario) apply(base Config) Config {
	cfg := base
	if s.Adversary != nil {
		cfg.Adversary = s.Adversary
	}
	if s.Initial != nil {
		cfg.Initial = s.Initial
	}
	if s.Faulty.Cap() != 0 {
		cfg.Faulty = s.Faulty
	}
	return cfg
}

// RunScenarios executes base once per scenario on the sequential round loop,
// amortizing the graph-dependent setup — edge-plane geometry (the O(m log d)
// reverse index), receive buffers — across the whole batch. This is the
// engine-level companion of Matrix.RunBatch: RunBatch replays one recorded
// execution over many initial vectors, while RunScenarios re-simulates under
// different adversaries (or fault sets or initial vectors), the sweep
// dimension the matrix replay cannot vary.
//
// Traces are index-aligned with scenarios and bit-identical to what
// Sequential.Run would produce for each derived config.
func RunScenarios(base Config, scenarios []Scenario) ([]*Trace, error) {
	if len(scenarios) == 0 {
		return nil, nil
	}
	// Validate every derived config up front so a bad scenario fails fast
	// instead of after its predecessors' simulation time.
	cfgs := make([]Config, len(scenarios))
	for i := range scenarios {
		cfgs[i] = scenarios[i].apply(base)
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("sim: scenario %d (%s): %w", i, scenarioName(&scenarios[i]), err)
		}
	}
	p := newEdgePlane(base.G, cfgs[0].faulty(), false)
	recv := newRecvPlane(p)
	traces := make([]*Trace, len(scenarios))
	for i := range cfgs {
		p.setFaulty(cfgs[i].faulty())
		tr, err := runSequential(&cfgs[i], p, recv)
		if err != nil {
			return nil, fmt.Errorf("sim: scenario %d (%s): %w", i, scenarioName(&scenarios[i]), err)
		}
		traces[i] = &tr.Trace
	}
	return traces, nil
}

// scenarioName resolves the label used in errors and reports.
func scenarioName(s *Scenario) string {
	if s.Name != "" {
		return s.Name
	}
	if s.Adversary != nil {
		return s.Adversary.Name()
	}
	return "base"
}
