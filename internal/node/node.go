// Package node promotes the Section 7 asynchronous iteration from a
// discrete-event simulation into genuinely independent node actors: one
// goroutine-per-node runtime in which every fault-free node owns its state,
// round counter, and quorum inbox, and talks to its peers exclusively
// through a transport.Transport. Faulty actors are driven by the existing
// adversary.Strategy vocabulary.
//
// The protocol per actor is exactly the async engine's: broadcast the
// round-0 state, wait until round-tagged values from |N⁻_i| − f distinct
// in-neighbors have arrived (quorum.Count — up to f faulty in-neighbors may
// stay silent forever), apply the update rule (core.TrimmedMean realizes
// Algorithm 1's trimming), advance, broadcast the new round. The inbox is
// the same quorum.Ring the simulator uses: first arrival per (sender,
// round) wins, duplicates and equivocating re-sends are dropped.
//
// What the package adds over the simulator is robustness machinery for
// real, faulty networks:
//
//   - Idempotent retransmission. A stalled actor (no round progress for
//     ResendEvery) rebroadcasts its history. Because the message for round
//     k is a pure function of the actor's round-k state, resends never
//     change a receiver's trajectory — they only repair losses. This turns
//     chaos-layer drops and healed partitions into mere delays, which is
//     precisely the regime the Part II convergence theorem covers.
//   - Send retry with capped backoff and a per-message timeout. A cut link
//     (transport.ErrLinkDown) or a backpressured queue never deadlocks an
//     actor: the send pump retries with exponential backoff until the
//     per-message budget expires, then abandons — the resend pass recovers.
//   - Crash/restart. A supervisor stops an actor for each configured crash
//     window and restarts it from its durable (round, value, history)
//     state with a reset inbox; on restart the actor rebroadcasts its
//     current round and peer resends re-fill what the crash lost.
//
// The deterministic simulator remains the conformance oracle: under
// loss-free delivery and f = 0 (where the quorum is the full
// in-neighborhood and the result is arrival-order independent), a cluster
// must finish bit-identical to async.Run — pinned by the package tests.
package node

import (
	"errors"
	"fmt"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/quorum"
	"iabc/internal/transport"
)

// Default timing knobs applied by Config.withDefaults.
const (
	// DefaultResendEvery is the stall-triggered retransmission interval.
	DefaultResendEvery = 5 * time.Millisecond
	// DefaultFaultyTick is the interval at which faulty actors emit their
	// round batches.
	DefaultFaultyTick = 2 * time.Millisecond
	// DefaultSendTimeout is the per-message budget covering all retries.
	DefaultSendTimeout = 100 * time.Millisecond
	// DefaultRetryBackoff is the initial retry backoff; it doubles per
	// attempt, capped at maxBackoffFactor times the initial value.
	DefaultRetryBackoff = time.Millisecond
)

// maxBackoffFactor caps the exponential send backoff at this multiple of
// the initial RetryBackoff.
const maxBackoffFactor = 16

// Config describes one cluster run.
type Config struct {
	// G is the communication graph.
	G *graph.Graph
	// F is the fault-tolerance parameter.
	F int
	// Faulty is the actual fault set (|Faulty| ≤ F for guarantees).
	Faulty nodeset.Set
	// Initial holds v_i[0], length G.N().
	Initial []float64
	// Rule is the update rule; core.TrimmedMean realizes the Section 7
	// algorithm when fed the |N⁻_i|−F quorum vector.
	Rule core.UpdateRule
	// Adversary decides faulty transmissions. May be nil iff Faulty is
	// empty. Strategies see runner-maintained omniscient snapshots, like
	// the simulator's RoundView — an in-process cluster grants the
	// adversary the full knowledge the failure model (Section 2.2) allows.
	Adversary adversary.Strategy
	// Transport carries every message. Required; the caller owns it (Run
	// does not close it) so one chaos wrapper can be inspected after the
	// run.
	Transport transport.Transport
	// MaxRounds caps every fault-free node's round counter.
	MaxRounds int
	// Epsilon, when > 0, ends the run once the fault-free range is ≤
	// Epsilon.
	Epsilon float64
	// ResendEvery is the initial stall-triggered retransmission interval:
	// an actor that made no round progress for this long rebroadcasts its
	// history, then backs off exponentially (doubling per silent interval,
	// capped at maxResendBackoffFactor times this value) until progress
	// resumes (0 selects DefaultResendEvery).
	ResendEvery time.Duration
	// FaultyTick is the wall-clock interval between a faulty actor's round
	// batches (0 selects DefaultFaultyTick).
	FaultyTick time.Duration
	// SendTimeout is the per-message send budget including all retries
	// (0 selects DefaultSendTimeout). Expired sends are abandoned and
	// repaired by a later resend pass.
	SendTimeout time.Duration
	// RetryBackoff is the initial retry backoff after a failed send,
	// doubling per attempt up to maxBackoffFactor times this value
	// (0 selects DefaultRetryBackoff).
	RetryBackoff time.Duration
	// StallAfter, when > 0, ends the run with Result.Stalled once no
	// fault-free state change has been observed for this long — the
	// liveness cutoff for runs under liveness-destroying partitions.
	StallAfter time.Duration
	// Crashes stops each listed node's actor for its window and restarts
	// it from durable state afterwards (a window that never closes leaves
	// the node down). Windows are measured from Run's start. Crashes of
	// faulty nodes are ignored — the adversary is not supervised.
	Crashes []transport.Crash
	// Local, when non-empty, restricts the actors this Run spawns to the
	// listed node ids — this process's share of a cross-process deployment
	// over a wire transport that Recv-hosts only those nodes. Remote nodes
	// still exist in G and Initial; they are simply driven by other
	// processes. With Local a strict subset, the stop conditions become
	// local: MaxRounds completion counts local fault-free nodes only, and
	// the Epsilon/OnUpdate range treats remote nodes as frozen at their
	// Initial values (conservative — it can only overestimate the true
	// range at f = 0), so cross-process runs should stop on MaxRounds and
	// judge convergence over the collected finals. Empty means all nodes.
	Local []int
	// Linger, when > 0, keeps local actors alive this long after the local
	// stop condition fires. Actors at MaxRounds still serve stall-triggered
	// history resends, so lingering is what lets remote laggards finish
	// when this process's nodes are already done; without it a finished
	// process's exit looks like a crash to the rest of the cluster.
	Linger time.Duration
	// QuorumOverride, when non-nil, replaces the |N⁻_i| − F quorum count
	// for node i. Tests use it to force pathological quorums; leave nil.
	QuorumOverride func(i int) int
	// OnUpdate, when non-nil, observes every fault-free state change:
	// node, its new round counter, its new value, and the fault-free range
	// after the change. Calls are serialized on the runner goroutine.
	OnUpdate func(node, round int, value, rng float64)
}

// withDefaults returns c with zero timing knobs replaced by the defaults.
func (c Config) withDefaults() Config {
	if c.ResendEvery <= 0 {
		c.ResendEvery = DefaultResendEvery
	}
	if c.FaultyTick <= 0 {
		c.FaultyTick = DefaultFaultyTick
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = DefaultSendTimeout
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.G == nil {
		return errors.New("node: nil graph")
	}
	n := c.G.N()
	if len(c.Initial) != n {
		return fmt.Errorf("node: len(Initial) = %d, want n = %d", len(c.Initial), n)
	}
	if c.Rule == nil {
		return errors.New("node: nil update rule")
	}
	if c.Transport == nil {
		return errors.New("node: nil transport")
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("node: MaxRounds must be ≥ 1, got %d", c.MaxRounds)
	}
	if c.F < 0 {
		return fmt.Errorf("node: negative F %d", c.F)
	}
	if c.Faulty.Cap() != 0 && c.Faulty.Cap() != n {
		return fmt.Errorf("node: Faulty set capacity %d does not match n = %d", c.Faulty.Cap(), n)
	}
	if !c.faulty().Empty() && c.Adversary == nil {
		return errors.New("node: faulty nodes configured but Adversary is nil")
	}
	if c.faulty().Count() == n {
		return errors.New("node: all nodes faulty")
	}
	for _, cr := range c.Crashes {
		if cr.Node < 0 || cr.Node >= n {
			return fmt.Errorf("node: crash of node %d outside [0,%d)", cr.Node, n)
		}
	}
	for _, i := range c.Local {
		if i < 0 || i >= n {
			return fmt.Errorf("node: local node %d outside [0,%d)", i, n)
		}
	}
	var err error
	c.faulty().Complement().ForEach(func(i int) bool {
		q := quorum.Count(c.G.InDegree(i), c.F)
		if e := c.Rule.Validate(q, c.F); e != nil {
			err = fmt.Errorf("node: node %d (in-degree %d, quorum %d): %w", i, c.G.InDegree(i), q, e)
			return false
		}
		return true
	})
	return err
}

func (c *Config) faulty() nodeset.Set {
	if c.Faulty.Cap() == 0 {
		return nodeset.New(c.G.N())
	}
	return c.Faulty
}

// Result records one cluster run. Unlike the simulator's trace there is no
// event history — per-update streaming goes through Config.OnUpdate — but
// the robustness counters record what the run survived.
type Result struct {
	// Converged reports whether the Epsilon stop fired.
	Converged bool
	// Stalled reports whether the StallAfter liveness cutoff fired before
	// convergence or MaxRounds.
	Stalled bool
	// Rounds[i] is node i's final round counter (0 for faulty nodes — the
	// cluster does not model faulty internal state).
	Rounds []int
	// Final is the final state vector (faulty entries are their initial
	// values).
	Final []float64
	// InitialRange and FinalRange are the fault-free ranges U−µ at start
	// and end.
	InitialRange, FinalRange float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Deliveries counts messages received by fault-free actors, including
	// duplicates and stale rounds.
	Deliveries int64
	// Updates counts fault-free state changes.
	Updates int64
	// Resends counts messages retransmitted by stall-triggered history
	// rebroadcasts.
	Resends int64
	// Abandoned counts sends dropped after the retry budget expired.
	Abandoned int64
	// OutDropped counts messages dropped at full outbound pump queues.
	OutDropped int64
	// Restarts counts crash-supervisor actor restarts.
	Restarts int64
}

// MinRound returns the smallest round counter among fault-free nodes.
func (r *Result) MinRound(faultFree nodeset.Set) int {
	min := int(^uint(0) >> 1)
	faultFree.ForEach(func(i int) bool {
		if r.Rounds[i] < min {
			min = r.Rounds[i]
		}
		return true
	})
	return min
}
