package node

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/async"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
	"iabc/internal/transport"
)

// clusterDefaults returns a Config with fast test timings over tr.
func clusterDefaults(tr transport.Transport) Config {
	return Config{
		Rule:         core.TrimmedMean{},
		Transport:    tr,
		ResendEvery:  2 * time.Millisecond,
		FaultyTick:   time.Millisecond,
		SendTimeout:  100 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	}
}

// TestClusterConformsToAsyncFaultFree is the oracle test the tentpole hangs
// on: with f = 0 the quorum is the full in-neighborhood, which makes every
// update arrival-order independent — so a real concurrent cluster over a
// loss-free transport must finish bit-identical to the deterministic
// discrete-event engine, no matter how the scheduler interleaves it.
func TestClusterConformsToAsyncFaultFree(t *testing.T) {
	g, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	initial := []float64{3, 1, 4, 1.5, 9.2, 6}
	const maxRounds = 20

	want, err := async.Run(context.Background(), async.Config{
		G: g, Initial: initial, Rule: core.TrimmedMean{},
		Delays: async.Fixed{D: 1}, MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := transport.NewInproc(g.N(), 256)
	defer tr.Close()
	cfg := clusterDefaults(tr)
	cfg.G, cfg.Initial, cfg.MaxRounds = g, initial, maxRounds
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < g.N(); i++ {
		if got.Rounds[i] != maxRounds {
			t.Errorf("node %d stopped at round %d, want %d", i, got.Rounds[i], maxRounds)
		}
		if math.Float64bits(got.Final[i]) != math.Float64bits(want.Final[i]) {
			t.Errorf("node %d: cluster %v != async %v", i, got.Final[i], want.Final[i])
		}
	}
	if got.Updates != int64(g.N()*maxRounds) {
		t.Errorf("Updates = %d, want %d", got.Updates, g.N()*maxRounds)
	}
}

// TestClusterConformsToAsyncWithFixedAdversary extends the oracle to a
// state-independent adversary: Fixed sends the same value on every edge
// every round, so the cluster's wall-clock emission times cannot change
// what any receiver computes, and fault-free finals must still match the
// simulator bit for bit.
func TestClusterConformsToAsyncWithFixedAdversary(t *testing.T) {
	g, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	initial := []float64{7, 3, 1, 4, 1.5, 9.2}
	faulty := nodeset.FromMembers(n, 0)
	adv := adversary.Fixed{Value: 42}
	const maxRounds = 12

	want, err := async.Run(context.Background(), async.Config{
		G: g, Initial: initial, Rule: core.TrimmedMean{},
		Faulty: faulty, Adversary: adv,
		Delays: async.Fixed{D: 1}, FaultyTick: 1, MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := transport.NewInproc(n, 256)
	defer tr.Close()
	cfg := clusterDefaults(tr)
	cfg.G, cfg.Initial, cfg.MaxRounds = g, initial, maxRounds
	cfg.Faulty, cfg.Adversary = faulty, adv
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	faulty.Complement().ForEach(func(i int) bool {
		if math.Float64bits(got.Final[i]) != math.Float64bits(want.Final[i]) {
			t.Errorf("node %d: cluster %v != async %v", i, got.Final[i], want.Final[i])
		}
		return true
	})
}

// TestClusterConvergesUnderChaosWithFaults is the robustness headline: a
// 2f+1-satisfying graph with one Byzantine node must still ε-converge when
// the network drops a quarter of all messages, duplicates others, and
// reorders by jitter — losses are masked by stall-triggered resends, and
// validity is preserved throughout.
func TestClusterConvergesUnderChaosWithFaults(t *testing.T) {
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	initial := []float64{0, 10, 2.5, 7, 5, 1, 9}
	faulty := nodeset.FromMembers(n, 6)
	ch := transport.NewChaos(transport.NewInproc(n, 256), transport.ChaosConfig{
		Seed: 7, Drop: 0.25, Dup: 0.15, MaxDelay: 2 * time.Millisecond,
	})
	defer ch.Close()

	lo0, hi0 := math.Inf(1), math.Inf(-1)
	for i := 0; i < n-1; i++ {
		lo0, hi0 = math.Min(lo0, initial[i]), math.Max(hi0, initial[i])
	}

	cfg := clusterDefaults(ch)
	cfg.G, cfg.Initial, cfg.MaxRounds = g, initial, 80
	cfg.F, cfg.Faulty, cfg.Adversary = 1, faulty, adversary.Extremes{Amplitude: 3}
	cfg.Epsilon = 1e-6
	cfg.StallAfter = 3 * time.Second // safety net: never hang the suite
	cfg.OnUpdate = func(node, round int, value, rng float64) {
		if value < lo0-1e-9 || value > hi0+1e-9 {
			t.Errorf("node %d round %d: value %v outside initial hull [%v, %v]",
				node, round, value, lo0, hi0)
		}
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no ε-convergence under chaos: stalled=%v finalRange=%v updates=%d resends=%d abandoned=%d",
			res.Stalled, res.FinalRange, res.Updates, res.Resends, res.Abandoned)
	}
	if res.FinalRange > cfg.Epsilon {
		t.Fatalf("FinalRange = %v > ε = %v", res.FinalRange, cfg.Epsilon)
	}
	if st := ch.Stats(); st.Dropped == 0 {
		t.Error("chaos dropped nothing — the run proved nothing")
	}
}

// TestClusterPartitionValidityUnderStall pins the safety half of the
// guarantee when liveness is destroyed: a permanent partition starves every
// quorum, the StallAfter cutoff fires, and every estimate observed before
// and at the stall stays inside the initial fault-free hull — validity
// needs no liveness.
func TestClusterPartitionValidityUnderStall(t *testing.T) {
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	initial := []float64{0, 10, 4, 6, 2}
	ch := transport.NewChaos(transport.NewInproc(n, 256), transport.ChaosConfig{
		Partitions: []transport.Partition{{
			A:    nodeset.FromMembers(n, 0, 1),
			B:    nodeset.FromMembers(n, 2, 3, 4),
			From: 25 * time.Millisecond, // Until 0: never heals
		}},
	})
	defer ch.Close()

	cfg := clusterDefaults(ch)
	cfg.G, cfg.Initial, cfg.MaxRounds = g, initial, 200000
	cfg.F = 1 // quorum 3 of in-degree 4: satisfiable only across the cut
	cfg.StallAfter = 80 * time.Millisecond
	updates := 0
	cfg.OnUpdate = func(node, round int, value, rng float64) {
		updates++
		if value < 0-1e-9 || value > 10+1e-9 {
			t.Errorf("node %d round %d: value %v escaped initial hull [0, 10]", node, round, value)
		}
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled {
		t.Fatalf("expected stall under permanent partition; converged=%v minRound=%d of %d",
			res.Converged, res.MinRound(nodeset.Universe(n)), cfg.MaxRounds)
	}
	if updates == 0 {
		// A starved scheduler can delay actor startup past the cut; the
		// stall and validity assertions above still hold, just vacuously.
		t.Logf("no updates before the cut (loaded machine?) — validity checked only trivially")
	}
	for i, v := range res.Final {
		if v < -1e-9 || v > 10+1e-9 {
			t.Errorf("final[%d] = %v outside initial hull", i, v)
		}
	}
}

// TestClusterCrashRestartRecovers crashes one node from the very start:
// with f = 0 everyone needs its round-0 value, so the whole cluster blocks
// on retry/backoff until the crash window closes, the supervisor restarts
// the actor from durable state, and the run must then converge.
func TestClusterCrashRestartRecovers(t *testing.T) {
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	crash := transport.Crash{Node: 2, From: 0, Until: 30 * time.Millisecond}
	ch := transport.NewChaos(transport.NewInproc(n, 256), transport.ChaosConfig{
		Crashes: []transport.Crash{crash},
	})
	defer ch.Close()

	cfg := clusterDefaults(ch)
	cfg.G, cfg.Initial, cfg.MaxRounds = g, []float64{1, 2, 3, 4, 5}, 10
	cfg.Epsilon = 1e-12
	cfg.Crashes = []transport.Crash{crash}
	cfg.StallAfter = 3 * time.Second // safety net
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence after crash heal: stalled=%v finalRange=%v restarts=%d abandoned=%d",
			res.Stalled, res.FinalRange, res.Restarts, res.Abandoned)
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Restarts)
	}
	if res.Elapsed < crash.Until {
		t.Errorf("run finished in %v, before the crash window closed at %v", res.Elapsed, crash.Until)
	}
}

// TestClusterCancelReleasesEverything cancels a run whose sends are stuck
// in retry/backoff against a permanent partition: Run must return promptly
// with the cancellation cause and leave zero goroutines behind.
func TestClusterCancelReleasesEverything(t *testing.T) {
	base := runtime.NumGoroutine()
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	ch := transport.NewChaos(transport.NewInproc(n, 16), transport.ChaosConfig{
		Partitions: []transport.Partition{{
			A:    nodeset.FromMembers(n, 0),
			B:    nodeset.FromMembers(n, 1, 2, 3, 4),
			From: 0,
		}},
	})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	cfg := clusterDefaults(ch)
	cfg.G, cfg.Initial, cfg.MaxRounds = g, []float64{1, 2, 3, 4, 5}, 100000
	cfg.F = 1
	_, err = Run(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d vs base %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterValidateErrors spot-checks configuration validation.
func TestClusterValidateErrors(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInproc(4, 4)
	defer tr.Close()
	base := func() Config {
		c := clusterDefaults(tr)
		c.G, c.Initial, c.MaxRounds = g, []float64{1, 2, 3, 4}, 5
		return c
	}
	cases := map[string]func(*Config){
		"nil transport":  func(c *Config) { c.Transport = nil },
		"nil rule":       func(c *Config) { c.Rule = nil },
		"bad initial":    func(c *Config) { c.Initial = []float64{1} },
		"bad max rounds": func(c *Config) { c.MaxRounds = 0 },
		"negative f":     func(c *Config) { c.F = -1 },
		"faulty no adv":  func(c *Config) { c.Faulty = nodeset.FromMembers(4, 0) },
		"quorum too low": func(c *Config) { c.F = 2 }, // quorum 1 < 2f+1
		"bad crash node": func(c *Config) { c.Crashes = []transport.Crash{{Node: 9}} },
	}
	for name, mutate := range cases {
		cfg := base()
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

// TestClusterLocalSplitConformsToAsync runs one logical cluster as two
// concurrent Run calls over a shared transport, each animating half the
// nodes via Config.Local — the in-process model of a cross-process
// deployment. At f = 0 over loss-free delivery the combined finals must
// still be bit-identical to the discrete-event oracle, and each half must
// stop on its *local* MaxRounds completion. A small Linger keeps each
// half's actors serving resends after it finishes, exactly as `iabc serve`
// processes do so a finished process doesn't look crashed to laggards.
func TestClusterLocalSplitConformsToAsync(t *testing.T) {
	g, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	initial := []float64{3, 1, 4, 1.5, 9.2, 6}
	const maxRounds = 20

	want, err := async.Run(context.Background(), async.Config{
		G: g, Initial: initial, Rule: core.TrimmedMean{},
		Delays: async.Fixed{D: 1}, MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := transport.NewInproc(g.N(), 256)
	defer tr.Close()
	halves := [][]int{{0, 1, 2}, {3, 4, 5}}
	results := make([]*Result, len(halves))
	errs := make([]error, len(halves))
	var wg sync.WaitGroup
	for h, local := range halves {
		h, local := h, local
		cfg := clusterDefaults(tr)
		cfg.G, cfg.Initial, cfg.MaxRounds = g, initial, maxRounds
		cfg.Local, cfg.Linger = local, 20*time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[h], errs[h] = Run(context.Background(), cfg)
		}()
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("half %d: %v", h, err)
		}
	}
	for h, local := range halves {
		for _, i := range local {
			if results[h].Rounds[i] != maxRounds {
				t.Errorf("node %d stopped at round %d, want %d", i, results[h].Rounds[i], maxRounds)
			}
			if math.Float64bits(results[h].Final[i]) != math.Float64bits(want.Final[i]) {
				t.Errorf("node %d: split cluster %v != async %v", i, results[h].Final[i], want.Final[i])
			}
		}
		if got := results[h].Updates; got != int64(len(local)*maxRounds) {
			t.Errorf("half %d: Updates = %d, want %d (local nodes only)", h, got, len(local)*maxRounds)
		}
	}
}
