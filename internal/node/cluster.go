package node

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/nodeset"
	"iabc/internal/transport"
)

// updateMsg reports one fault-free state change to the runner.
type updateMsg struct {
	node, round int
	value       float64
}

// runner owns the cross-actor state of one cluster run: the authoritative
// state vector (fed by actor updates, read by adversary snapshots), the
// stop conditions, and the robustness counters.
type runner struct {
	cfg        Config
	faulty     nodeset.Set
	faultFree  nodeset.Set
	edgeWriter adversary.EdgeWriter
	start      time.Time

	mu     sync.Mutex
	states []float64
	rounds []int

	updates chan updateMsg
	errc    chan error

	deliveries, updatesN, resends, abandoned, outDropped, restarts atomic.Int64
}

// fail records the first actor error; later errors are dropped.
func (r *runner) fail(err error) {
	select {
	case r.errc <- err:
	default:
	}
}

// apply commits one state change and returns the fault-free range after it.
func (r *runner) apply(u updateMsg) float64 {
	r.mu.Lock()
	r.states[u.node] = u.value
	r.rounds[u.node] = u.round
	lo, hi := faultFreeRange(r.states, r.faultFree)
	r.mu.Unlock()
	r.updatesN.Add(1)
	return hi - lo
}

// view builds the omniscient snapshot a faulty emission sees — the cluster
// equivalent of the simulator's per-round RoundView, taken at emission time.
func (r *runner) view(round int) adversary.RoundView {
	r.mu.Lock()
	states := make([]float64, len(r.states))
	copy(states, r.states)
	r.mu.Unlock()
	lo, hi := faultFreeRange(states, r.faultFree)
	return adversary.RoundView{
		Round:  round,
		G:      r.cfg.G,
		F:      r.cfg.F,
		Faulty: r.faulty,
		States: states,
		Lo:     lo,
		Hi:     hi,
	}
}

// supervise runs one fault-free actor through its crash schedule: run until
// the next window opens, hold it down for the window, then restart it from
// its durable state with a reset inbox. A window that never closes leaves
// the node down for the rest of the run.
func (r *runner) supervise(ctx context.Context, a *actor, crashes []transport.Crash) {
	for _, cr := range crashes {
		if until := r.start.Add(cr.From); time.Until(until) > 0 {
			if !r.incarnation(ctx, a, until) {
				return
			}
		}
		if cr.Until <= 0 {
			return // crashed for good
		}
		if !sleepUntil(ctx, r.start.Add(cr.Until)) {
			return
		}
		// Restart: durable (round, value, history) survives; the volatile
		// inbox is lost, so rebase an empty ring at the current round and
		// rely on peer resends to re-fill it.
		a.inbox.Reset(a.round)
		a.progressed = false
		r.restarts.Add(1)
	}
	r.incarnation(ctx, a, time.Time{})
}

// incarnation runs the actor loop plus its send pumps until the deadline
// (zero = none) or ctx. It returns only after every pump exited — a crash
// stops the node's outbound side too. The return value reports whether the
// parent ctx is still live.
func (r *runner) incarnation(ctx context.Context, a *actor, deadline time.Time) bool {
	var ictx context.Context
	var cancel context.CancelFunc
	if deadline.IsZero() {
		ictx, cancel = context.WithCancel(ctx)
	} else {
		ictx, cancel = context.WithDeadline(ctx, deadline)
	}
	var wg sync.WaitGroup
	wg.Add(len(a.qs))
	a.sender.start(ictx, wg.Done)
	a.run(ictx)
	cancel()
	wg.Wait()
	return ctx.Err() == nil
}

// sleepUntil blocks until t or ctx, reporting whether ctx is still live.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Run executes one cluster to completion: every fault-free node as a live
// actor over cfg.Transport, every faulty node driven by cfg.Adversary. It
// returns when the Epsilon stop fires, every fault-free node reaches
// MaxRounds, the StallAfter liveness cutoff fires, an actor fails, or ctx
// is canceled (wrapping context.Cause(ctx)). On return no goroutine started
// by Run is still alive; the transport is left open for the caller.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	faulty := cfg.faulty()
	faultFree := faulty.Complement()
	// The nodes this process animates: everything by default, cfg.Local's
	// share in a cross-process deployment.
	local := nodeset.Universe(n)
	if len(cfg.Local) > 0 {
		local = nodeset.FromMembers(n, cfg.Local...)
	}
	localFaultFree := faultFree.Intersect(local)

	r := &runner{
		cfg:       cfg,
		faulty:    faulty,
		faultFree: faultFree,
		start:     time.Now(),
		states:    make([]float64, n),
		rounds:    make([]int, n),
		updates:   make(chan updateMsg, 64*n),
		errc:      make(chan error, 1),
	}
	copy(r.states, cfg.Initial)
	r.edgeWriter, _ = cfg.Adversary.(adversary.EdgeWriter)
	lo, hi := faultFreeRange(r.states, faultFree)

	// Crash schedules per local fault-free node, ordered by window start.
	crashByNode := make(map[int][]transport.Crash)
	for _, cr := range cfg.Crashes {
		if localFaultFree.Contains(cr.Node) {
			crashByNode[cr.Node] = append(crashByNode[cr.Node], cr)
		}
	}
	for _, crs := range crashByNode {
		sort.Slice(crs, func(i, j int) bool { return crs[i].From < crs[j].From })
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	localFaultFree.ForEach(func(i int) bool {
		a := newActor(i, r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.supervise(runCtx, a, crashByNode[i])
		}()
		return true
	})
	faulty.Intersect(local).ForEach(func(s int) bool {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runFaulty(runCtx, s)
		}()
		return true
	})
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	res := &Result{InitialRange: hi - lo}
	var stallC <-chan time.Time
	var stallTimer *time.Timer
	if cfg.StallAfter > 0 {
		stallTimer = time.NewTimer(cfg.StallAfter)
		defer stallTimer.Stop()
		stallC = stallTimer.C
	}

	onUpdate := func(u updateMsg) float64 {
		rng := r.apply(u)
		if cfg.OnUpdate != nil {
			cfg.OnUpdate(u.node, u.round, u.value, rng)
		}
		return rng
	}

	target := localFaultFree.Count()
	atMax := 0
	var runErr error
	var lingerTimer *time.Timer
	var lingerC <-chan time.Time
	finishing := false
	// finish ends the run's local work: liveness judging stops (no further
	// local progress is owed), and the actors either exit now or linger —
	// still draining deliveries and serving history resends — so remote
	// laggards in a cross-process deployment can finish before this
	// process's exit starts looking like a crash to them.
	finish := func() {
		if finishing {
			return
		}
		finishing = true
		if stallTimer != nil {
			stallTimer.Stop()
			stallC = nil
		}
		if cfg.Linger > 0 {
			lingerTimer = time.NewTimer(cfg.Linger)
			lingerC = lingerTimer.C
			return
		}
		cancel()
	}
	defer func() {
		if lingerTimer != nil {
			lingerTimer.Stop()
		}
	}()
	if target == 0 {
		finish() // no local fault-free work: run is just linger + faulty emitters
	}
loop:
	for {
		select {
		case u := <-r.updates:
			rng := onUpdate(u)
			if u.round == cfg.MaxRounds {
				atMax++
			}
			if cfg.Epsilon > 0 && rng <= cfg.Epsilon {
				res.Converged = true
				finish()
			} else if atMax == target {
				finish()
			}
			if stallTimer != nil && !finishing {
				if !stallTimer.Stop() {
					select {
					case <-stallTimer.C:
					default:
					}
				}
				stallTimer.Reset(cfg.StallAfter)
			}
		case err := <-r.errc:
			runErr = err
			cancel()
		case <-stallC:
			res.Stalled = true
			cancel()
		case <-lingerC:
			cancel()
		case <-done:
			break loop
		}
	}
	// All actors have exited; drain updates that raced the shutdown so the
	// result reflects every state change that was committed.
	for {
		select {
		case u := <-r.updates:
			rng := onUpdate(u)
			if !res.Converged && cfg.Epsilon > 0 && rng <= cfg.Epsilon {
				res.Converged = true
			}
		default:
			goto drained
		}
	}
drained:
	if runErr == nil {
		select {
		case runErr = <-r.errc:
		default:
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil && !res.Converged {
		return nil, fmt.Errorf("node: cluster canceled after %d updates: %w",
			r.updatesN.Load(), context.Cause(ctx))
	}

	res.Rounds = r.rounds
	res.Final = r.states
	lo, hi = faultFreeRange(r.states, faultFree)
	res.FinalRange = hi - lo
	res.Elapsed = time.Since(r.start)
	res.Deliveries = r.deliveries.Load()
	res.Updates = r.updatesN.Load()
	res.Resends = r.resends.Load()
	res.Abandoned = r.abandoned.Load()
	res.OutDropped = r.outDropped.Load()
	res.Restarts = r.restarts.Load()
	return res, nil
}

func faultFreeRange(states []float64, faultFree nodeset.Set) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	faultFree.ForEach(func(i int) bool {
		if states[i] < lo {
			lo = states[i]
		}
		if states[i] > hi {
			hi = states[i]
		}
		return true
	})
	return lo, hi
}
