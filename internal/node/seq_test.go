package node

import "testing"

// TestSeqOfNoCollisionsBeyondEpochMask pins the transmission-identity
// contract: distinct (round, epoch, edge) triples map to distinct Seqs even
// when epochs pass the 16-bit boundary the old bit-packing masked with.
// Under the packed encoding, epoch e and e+65536 produced identical Seqs, so
// after 65536 resend passes the chaos layer re-drew the same per-Seq fault
// decisions and a dropped message stayed dropped on every later pass.
func TestSeqOfNoCollisionsBeyondEpochMask(t *testing.T) {
	// A grid straddling the old mask boundaries on both epoch and edge,
	// including the exact aliasing pairs (e, e+65536) and (edge, edge+65536).
	rounds := []int{0, 1, 7, 1 << 20}
	epochs := []int{0, 1, 2, 65535, 65536, 65537, 2 * 65536, 3*65536 + 1}
	edges := []int{0, 1, 63, 65535, 65536, 65537}
	type triple struct{ r, ep, ed int }
	seen := make(map[uint64]triple, len(rounds)*len(epochs)*len(edges))
	for _, r := range rounds {
		for _, ep := range epochs {
			for _, ed := range edges {
				seq := seqOf(r, ep, ed)
				if prev, dup := seen[seq]; dup {
					t.Fatalf("seqOf collision: (%d,%d,%d) and (%d,%d,%d) both map to %#x",
						prev.r, prev.ep, prev.ed, r, ep, ed, seq)
				}
				seen[seq] = triple{r, ep, ed}
			}
		}
	}
}

// TestSeqOfDeterministic: equal triples must map to equal Seqs — the chaos
// layer's reproducibility keys off it.
func TestSeqOfDeterministic(t *testing.T) {
	if seqOf(3, 70000, 5) != seqOf(3, 70000, 5) {
		t.Fatal("seqOf is not a pure function")
	}
}
