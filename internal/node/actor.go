package node

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/hashrand"
	"iabc/internal/quorum"
	"iabc/internal/transport"
)

// edgeQueueCap bounds each out-edge's send queue. Enqueues onto a full queue
// are dropped (counted in Result.OutDropped) — a later resend pass repairs
// the loss, so a slow or dead link cannot grow memory or block the actor.
const edgeQueueCap = 64

// seqOf derives a transmission identity for a Msg.Seq from the round, the
// resend epoch (0 for a round's first broadcast, a fresh per-actor epoch for
// each history resend pass and restart re-announcement), and the out-edge
// index. Distinct epochs give retransmissions distinct Seqs, so a chaos
// layer that keys its drop decision on Seq re-draws per transmission — a
// message dropped once is not doomed to be dropped on every resend.
//
// The identity is a keyed 64-bit hash of the full triple rather than a
// bit-packed word: packing masked the epoch to 16 bits, so a long stall
// (> 65536 resend passes) aliased epoch e with e+65536 and the chaos layer
// re-drew the *same* fault decisions — exactly the doomed-forever pattern
// epochs exist to break. Seq only ever feeds keyed hashing and dedup is
// per (sender, round) at the receiver, so collision resistance, not
// invertibility, is the requirement.
func seqOf(round, epoch, edge int) uint64 {
	return hashrand.Key(0, uint64(round), uint64(epoch), uint64(edge))
}

// sender owns a node's outbound side: one bounded queue and one pump
// goroutine per out-edge, so a dead or partitioned destination delays only
// its own edge (no head-of-line blocking across links). Each pump retries
// failed sends with capped exponential backoff inside a per-message
// SendTimeout budget, then abandons — degrade, never deadlock.
type sender struct {
	id   int
	r    *runner
	outs []int
	qs   []chan transport.Msg
}

func newSender(id int, r *runner) *sender {
	outs := r.cfg.G.OutView(id)
	s := &sender{id: id, r: r, outs: outs, qs: make([]chan transport.Msg, len(outs))}
	for e := range s.qs {
		s.qs[e] = make(chan transport.Msg, edgeQueueCap)
	}
	return s
}

// start launches the per-edge pumps for one actor incarnation.
func (s *sender) start(ctx context.Context, done func()) {
	for e := range s.qs {
		e := e
		go func() {
			defer done()
			s.pumpEdge(ctx, e)
		}()
	}
}

// enqueue hands a message to edge e's pump without blocking.
func (s *sender) enqueue(e int, m transport.Msg) bool {
	select {
	case s.qs[e] <- m:
		return true
	default:
		s.r.outDropped.Add(1)
		return false
	}
}

func (s *sender) pumpEdge(ctx context.Context, e int) {
	to := s.outs[e]
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-s.qs[e]:
			s.sendOne(ctx, to, m)
		}
	}
}

// sendOne drives one message through the transport: retry on failure with
// exponential backoff (doubling from RetryBackoff, capped at
// maxBackoffFactor times it) until the per-message SendTimeout budget is
// spent, then abandon. ErrLinkDown is the designed-for case — the link may
// heal mid-budget, which is how sends survive short partitions.
func (s *sender) sendOne(ctx context.Context, to int, m transport.Msg) {
	cfg := &s.r.cfg
	deadline := time.Now().Add(cfg.SendTimeout)
	backoff := cfg.RetryBackoff
	maxBackoff := cfg.RetryBackoff * maxBackoffFactor
	for {
		sctx, cancel := context.WithDeadline(ctx, deadline)
		err := cfg.Transport.Send(sctx, s.id, to, m)
		cancel()
		if err == nil {
			return
		}
		if ctx.Err() != nil || errors.Is(err, transport.ErrClosed) {
			return
		}
		if !time.Now().Add(backoff).Before(deadline) {
			s.r.abandoned.Add(1)
			return
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// actor is one fault-free node: it owns the durable protocol state (round,
// value, history of broadcast values) and a volatile quorum inbox. The
// durable part survives crash windows — the supervisor re-runs the same
// actor, so a restart resumes from the last completed round, exactly the
// "resume from durable state and resend the current round" contract.
type actor struct {
	*sender
	id     int
	r      *runner
	ins    []int
	quorum int
	recv   <-chan transport.Delivery

	// Durable state.
	round   int
	value   float64
	history []float64
	epoch   int
	started bool

	// Volatile state (reset across restarts).
	inbox      *quorum.Ring
	progressed bool

	buffered core.BufferedRule
	scratch  core.Scratch
	recvBuf  []core.ValueFrom
}

func newActor(id int, r *runner) *actor {
	cfg := &r.cfg
	deg := cfg.G.InDegree(id)
	q := quorum.Count(deg, cfg.F)
	if cfg.QuorumOverride != nil {
		q = cfg.QuorumOverride(id)
	}
	buffered, _ := cfg.Rule.(core.BufferedRule)
	return &actor{
		sender:   newSender(id, r),
		id:       id,
		r:        r,
		ins:      cfg.G.InView(id),
		quorum:   q,
		recv:     cfg.Transport.Recv(id),
		value:    cfg.Initial[id],
		history:  append(make([]float64, 0, cfg.MaxRounds+1), cfg.Initial[id]),
		inbox:    quorum.NewRing(deg),
		recvBuf:  make([]core.ValueFrom, 0, deg),
		buffered: buffered,
	}
}

// run executes one incarnation of the actor until ctx is done. After
// reaching MaxRounds the actor lingers in the same loop: it keeps draining
// deliveries and serving stall-triggered resends, because laggards may
// still need its history — the runner ends the run when every fault-free
// node is done.
func (a *actor) run(ctx context.Context) {
	if !a.started {
		a.started = true
		a.broadcast(a.round, 0)
	} else {
		// Restart: re-announce the current round under a fresh epoch so the
		// re-transmissions are distinct Seqs.
		a.broadcast(a.round, a.nextEpoch())
	}
	delay := a.r.cfg.ResendEvery
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case d := <-a.recv:
			a.r.deliveries.Add(1)
			if !a.onDelivery(ctx, d) {
				return
			}
			// Burst-drain the backlog before yielding to the timer: under a
			// resend flood most deliveries are stale dedups, and draining
			// them in a tight loop keeps the queue from backing up into the
			// transport.
			for drained := false; !drained; {
				select {
				case d := <-a.recv:
					a.r.deliveries.Add(1)
					if !a.onDelivery(ctx, d) {
						return
					}
				case <-ctx.Done():
					return
				default:
					drained = true
				}
			}
		case <-timer.C:
			if a.progressed {
				a.progressed = false
				delay = a.r.cfg.ResendEvery
			} else {
				// Back off while the stall persists: a fixed-rate resend
				// storm from every stalled node congests the very network
				// the resends are trying to repair (and on a loaded machine
				// the flood itself can hold the stall open). Progress resets
				// the backoff.
				a.resendHistory()
				if delay *= 2; delay > maxResendBackoffFactor*a.r.cfg.ResendEvery {
					delay = maxResendBackoffFactor * a.r.cfg.ResendEvery
				}
			}
			timer.Reset(delay)
		}
	}
}

// maxResendBackoffFactor caps the stall-resend backoff at this multiple of
// ResendEvery.
const maxResendBackoffFactor = 32

func (a *actor) nextEpoch() int {
	a.epoch++
	return a.epoch
}

// broadcast enqueues round k's value on every out-edge.
func (a *actor) broadcast(k, epoch int) {
	for e := range a.outs {
		m := transport.Msg{Round: k, Value: a.history[k], Seq: seqOf(k, epoch, e)}
		if a.enqueue(e, m) && epoch > 0 {
			a.r.resends.Add(1)
		}
	}
}

// deepResendEvery makes every k-th resend pass cover the full history;
// the passes between cover only the recent window, which keeps a long
// stall from flooding the network with thousands of old rounds per tick
// while still repairing arbitrarily deep laggards within k ticks.
const (
	deepResendEvery    = 8
	shallowResendDepth = 4
)

// resendHistory rebroadcasts completed rounds, newest first (the current
// round unblocks same-round peers; older rounds repair laggards). It fires
// only when a resend interval passed with no round progress. Safe by
// idempotence: round k's message is a pure function of the round-k state,
// and receivers dedup per (sender, round), so resends repair losses without
// ever altering a fault-free trajectory.
func (a *actor) resendHistory() {
	ep := a.nextEpoch()
	lo := 0
	if ep%deepResendEvery != 0 && a.round > shallowResendDepth {
		lo = a.round - shallowResendDepth
	}
	for k := a.round; k >= lo; k-- {
		a.broadcast(k, ep)
	}
}

// onDelivery ingests one message and advances as many rounds as the inbox
// then supports — the same quorum discipline as the async engine, sharing
// its ring. Reports false only when the run must end (rule error or ctx
// done while reporting).
func (a *actor) onDelivery(ctx context.Context, d transport.Delivery) bool {
	if d.Round < a.round {
		return true // stale: a resend the actor no longer needs
	}
	pos := sort.SearchInts(a.ins, d.From)
	if pos >= len(a.ins) || a.ins[pos] != d.From {
		return true // not an in-neighbor; ignore forged or misrouted traffic
	}
	if !a.inbox.Put(d.Round, pos, d.Value) {
		return true // duplicate (resend or chaos dup): first arrival won
	}
	cfg := &a.r.cfg
	for a.round < cfg.MaxRounds && a.inbox.Filled(a.round) >= a.quorum {
		received := a.inbox.Gather(a.round, a.ins, a.recvBuf[:0])
		var v float64
		var err error
		if a.buffered != nil {
			v, err = a.buffered.UpdateInto(&a.scratch, a.value, received, cfg.F)
		} else {
			v, err = cfg.Rule.Update(a.value, received, cfg.F)
		}
		if err != nil {
			a.r.fail(fmt.Errorf("node: node %d round %d: %w", a.id, a.round, err))
			return false
		}
		a.inbox.Pop()
		a.value = v
		a.round++
		a.history = append(a.history, v)
		a.progressed = true
		select {
		case a.r.updates <- updateMsg{node: a.id, round: a.round, value: v}:
		case <-ctx.Done():
			return false
		}
		a.broadcast(a.round, 0)
	}
	return true
}

// faultySink scatters an EdgeWriter emission onto a faulty sender's
// out-edges, mirroring the async engine's emitSink.
type faultySink struct {
	snd   *sender
	round int
}

// Send implements adversary.EdgeSink.
func (s *faultySink) Send(k int, value float64) {
	s.snd.enqueue(k, transport.Msg{Round: s.round, Value: value, Seq: seqOf(s.round, 0, k)})
}

// runFaulty drives one faulty node: every FaultyTick it asks the adversary
// for its next round batch against a fresh omniscient snapshot and enqueues
// the chosen values (each round emitted once — a faulty node owes nobody
// retransmissions; its silence is the fault the quorum tolerates). It also
// drains its delivery stream so honest senders never block on a faulty
// receiver's full queue.
func (r *runner) runFaulty(ctx context.Context, s int) {
	snd := newSender(s, r)
	var pumps int
	pumpDone := make(chan struct{}, len(snd.qs))
	snd.start(ctx, func() { pumpDone <- struct{}{} })
	pumps = len(snd.qs)
	defer func() {
		for i := 0; i < pumps; i++ {
			<-pumpDone
		}
	}()

	recv := r.cfg.Transport.Recv(s)
	tick := time.NewTicker(r.cfg.FaultyTick)
	defer tick.Stop()
	round := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-recv:
			// Discard: faulty behavior is the adversary's, not the protocol's.
		case <-tick.C:
			if round > r.cfg.MaxRounds {
				continue // emissions done; keep draining until the run ends
			}
			r.emitFaulty(snd, s, round)
			round++
		}
	}
}

// emitFaulty enqueues one faulty round batch, via the EdgeWriter fast path
// when the strategy provides it.
func (r *runner) emitFaulty(snd *sender, s, round int) {
	view := r.view(round)
	if r.edgeWriter != nil {
		r.edgeWriter.WriteMessages(view, s, &faultySink{snd: snd, round: round})
		return
	}
	msgs := r.cfg.Adversary.Messages(view, s)
	for e, to := range r.cfg.G.OutView(s) {
		if v, ok := msgs[to]; ok {
			snd.enqueue(e, transport.Msg{Round: round, Value: v, Seq: seqOf(round, 0, e)})
		}
		// Omitted receivers genuinely get nothing: asynchronous silence.
	}
}

var _ adversary.EdgeSink = (*faultySink)(nil)
