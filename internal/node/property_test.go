package node

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
	"iabc/internal/transport"
)

// runChaosHull derives a whole adversarial scenario from one seed — graph
// size, fault placement, adversary, initial values, drop/dup/delay rates,
// and a healing partition window — runs the cluster through it, and asserts
// the two properties that must survive any delivery pattern:
//
//  1. Validity on every observed update: no fault-free estimate ever leaves
//     the initial fault-free hull (the safety half of the guarantee, which
//     needs no liveness assumption at all).
//  2. ε-convergence: since the partition heals and drops are masked by
//     resends, delivery is eventual, so the Part II convergence theorem
//     applies and the run must not stall.
//
// A stall verdict gets one retry: wall-clock-based chaos on a starved CI
// scheduler can legitimately exceed StallAfter between updates, while a
// genuine liveness bug stalls on every attempt. Validity violations are
// never retried — they fail the test on first sight.
func runChaosHull(t testing.TB, seed int64, maxRounds int) {
	for attempt := 0; ; attempt++ {
		res, chaosStats, desc := chaosHullAttempt(t, seed, maxRounds)
		if res.Converged {
			return
		}
		if attempt == 1 {
			t.Fatalf("seed %d (%s): no convergence twice: stalled=%v finalRange=%v updates=%d resends=%d abandoned=%d stats=%+v",
				seed, desc, res.Stalled, res.FinalRange, res.Updates, res.Resends, res.Abandoned, chaosStats)
		}
		t.Logf("seed %d (%s): attempt %d stalled (finalRange=%v); retrying once", seed, desc, attempt, res.FinalRange)
	}
}

func chaosHullAttempt(t testing.TB, seed int64, maxRounds int) (*Result, transport.Stats, string) {
	rng := rand.New(rand.NewSource(seed))
	n := 6 + rng.Intn(3)
	g, err := topology.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	faultyNode := rng.Intn(n)
	faulty := nodeset.FromMembers(n, faultyNode)

	advs := []adversary.Strategy{
		adversary.Extremes{Amplitude: 1 + 4*rng.Float64()},
		adversary.Hug{High: rng.Intn(2) == 0},
		adversary.Fixed{Value: -50 + 100*rng.Float64()},
	}
	adv := advs[rng.Intn(len(advs))]

	initial := make([]float64, n)
	for i := range initial {
		initial[i] = 10 * rng.Float64()
	}
	lo0, hi0 := math.Inf(1), math.Inf(-1)
	faulty.Complement().ForEach(func(i int) bool {
		lo0, hi0 = math.Min(lo0, initial[i]), math.Max(hi0, initial[i])
		return true
	})

	// A random cut that heals: liveness is suspended, never destroyed.
	side := rng.Perm(n)[:1+rng.Intn(n-1)]
	a := nodeset.FromMembers(n, side...)
	ch := transport.NewChaos(transport.NewInproc(n, 256), transport.ChaosConfig{
		Seed:     seed,
		Drop:     0.1 + 0.2*rng.Float64(),
		Dup:      0.3 * rng.Float64(),
		MaxDelay: time.Duration(1+2*rng.Float64()) * time.Millisecond,
		Partitions: []transport.Partition{{
			A: a, B: a.Complement(), From: 4 * time.Millisecond, Until: 12 * time.Millisecond,
		}},
	})
	defer ch.Close()

	cfg := Config{
		G: g, F: 1, Faulty: faulty, Initial: initial,
		Rule: core.TrimmedMean{}, Adversary: adv, Transport: ch,
		MaxRounds: maxRounds, Epsilon: 1e-4,
		ResendEvery: 2 * time.Millisecond, FaultyTick: time.Millisecond,
		StallAfter: 2 * time.Second, // bounded wall time even if the property fails
	}
	violations := 0
	cfg.OnUpdate = func(node, round int, value, rngNow float64) {
		if value < lo0-1e-9 || value > hi0+1e-9 {
			if violations < 5 {
				t.Errorf("seed %d (%s): node %d round %d: value %v outside initial hull [%v, %v]",
					seed, adv.Name(), node, round, value, lo0, hi0)
			}
			violations++
		}
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res, ch.Stats(), fmt.Sprintf("%s, n=%d", adv.Name(), n)
}

// TestClusterChaosProperty drives a seed battery through runChaosHull.
func TestClusterChaosProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			runChaosHull(t, seed, 150)
		})
	}
}

// FuzzClusterChaosHull lets the fuzzer hunt for a chaos schedule that
// violates validity or starves a run that should converge. Under plain `go
// test` only the corpus seeds run; `go test -fuzz=ClusterChaosHull` mines
// new ones.
func FuzzClusterChaosHull(f *testing.F) {
	for _, seed := range []int64{1, 7, 13} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runChaosHull(t, seed, 80)
	})
}

// TestClusterChaosSoak is the CI chaos-soak entry point: a wider seed
// matrix, overridable via IABC_SOAK_SEEDS (comma-separated integers), with
// wall time bounded per seed by StallAfter + MaxRounds. Skipped under
// -short so the quick loop stays quick.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	seeds := []int64{101, 202, 303, 404}
	if env := os.Getenv("IABC_SOAK_SEEDS"); env != "" {
		seeds = seeds[:0]
		for _, s := range strings.Split(env, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				t.Fatalf("IABC_SOAK_SEEDS: %v", err)
			}
			seeds = append(seeds, v)
		}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			runChaosHull(t, seed, 200)
		})
	}
}
