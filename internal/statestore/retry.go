package statestore

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Retry wraps a Backend with capped exponential backoff on transient
// errors, so a scan coordinator journaling its frontier through a flaky
// medium (a briefly unreachable network filesystem, an object store
// returning 5xx) rides out the blip instead of aborting a multi-hour run.
//
// Permanent outcomes are never retried: ErrNotFound is a successful Read
// of an absent key, ErrInvalidKey can only recur, and context
// cancellation means the caller has moved on. Everything else is presumed
// transient by default; Transient narrows that. Retrying Write is safe
// because the Backend contract makes writes atomic and idempotent — a
// replayed Write of the same value converges to the same state.
type Retry struct {
	// Inner is the wrapped backend. Required.
	Inner Backend
	// Attempts caps the total tries per operation (first call included).
	// Values < 1 mean DefaultRetryAttempts.
	Attempts int
	// BaseDelay seeds the exponential backoff (doubling per retry);
	// values <= 0 mean DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep; values <= 0 mean
	// DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Transient, when non-nil, classifies an error as retryable. The
	// default treats every error except ErrNotFound, ErrInvalidKey, and
	// context errors as transient.
	Transient func(error) bool
	// sleep is the test seam; nil means a context-aware timer sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// Default Retry tuning. Three retries over ~350ms rides out short blips
// without stretching genuine outages into minutes.
const (
	DefaultRetryAttempts  = 4
	DefaultRetryBaseDelay = 50 * time.Millisecond
	DefaultRetryMaxDelay  = 2 * time.Second
)

// NewRetry wraps inner with the default retry policy.
func NewRetry(inner Backend) *Retry { return &Retry{Inner: inner} }

// transient applies the configured or default classification.
func (r *Retry) transient(err error) bool {
	if r.Transient != nil {
		return r.Transient(err)
	}
	return !errors.Is(err, ErrNotFound) &&
		!errors.Is(err, ErrInvalidKey) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// do runs op under the retry policy.
func (r *Retry) do(ctx context.Context, op func() error) error {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = DefaultRetryAttempts
	}
	delay := r.BaseDelay
	if delay <= 0 {
		delay = DefaultRetryBaseDelay
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultRetryMaxDelay
	}
	sleep := r.sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if serr := sleep(ctx, delay); serr != nil {
				return serr
			}
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
		}
		if err = op(); err == nil || !r.transient(err) {
			return err
		}
	}
	return fmt.Errorf("statestore: giving up after %d attempts: %w", attempts, err)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Read implements Backend.
func (r *Retry) Read(ctx context.Context, key string) ([]byte, error) {
	var v []byte
	err := r.do(ctx, func() error {
		var e error
		v, e = r.Inner.Read(ctx, key)
		return e
	})
	return v, err
}

// Write implements Backend.
func (r *Retry) Write(ctx context.Context, key string, value []byte) error {
	return r.do(ctx, func() error { return r.Inner.Write(ctx, key, value) })
}

// Delete implements Backend.
func (r *Retry) Delete(ctx context.Context, key string) error {
	return r.do(ctx, func() error { return r.Inner.Delete(ctx, key) })
}

// List implements Backend.
func (r *Retry) List(ctx context.Context, prefix string) ([]string, error) {
	var keys []string
	err := r.do(ctx, func() error {
		var e error
		keys, e = r.Inner.List(ctx, prefix)
		return e
	})
	return keys, err
}

var _ Backend = (*Retry)(nil)
