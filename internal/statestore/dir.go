package statestore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Dir is a Backend rooted in a local directory: each key maps to the file
// <root>/<key>. Writes are atomic — the value lands in a temp file in the
// destination directory and is renamed into place — so a reader (or a
// process resuming after a kill mid-write) never observes a torn record;
// it sees either the previous value or the new one.
type Dir struct {
	root string
}

// NewDir returns a directory backend rooted at root, creating the directory
// (and parents) if needed.
func NewDir(root string) (*Dir, error) {
	if root == "" {
		return nil, errors.New("statestore: empty state directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: creating state dir: %w", err)
	}
	return &Dir{root: root}, nil
}

// Root returns the backing directory.
func (s *Dir) Root() string { return s.root }

// path maps a validated key to its file path.
func (s *Dir) path(key string) string {
	return filepath.Join(s.root, filepath.FromSlash(key))
}

// Read implements Backend.
func (s *Dir) Read(ctx context.Context, key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	return b, err
}

// Write implements Backend. The temp-then-rename dance keeps the update
// atomic on POSIX filesystems; the temp file lives next to the destination
// so the rename never crosses devices.
func (s *Dir) Write(ctx context.Context, key string, value []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+filepath.Base(dst)+".tmp-*")
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	_, werr := tmp.Write(value)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("statestore: writing %s: %w", key, werr)
		}
		return fmt.Errorf("statestore: writing %s: %w", key, cerr)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("statestore: %w", err)
	}
	return nil
}

// Delete implements Backend.
func (s *Dir) Delete(ctx context.Context, key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	err := os.Remove(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// List implements Backend: it walks the root and returns every stored key
// with the given prefix, sorted ascending (WalkDir visits lexically).
// Temp files from in-flight writes are skipped.
func (s *Dir) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var keys []string
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("statestore: listing %q: %w", prefix, err)
	}
	return keys, nil
}

var (
	_ Backend = (*Dir)(nil)
	_ Backend = (*Mem)(nil)
)
