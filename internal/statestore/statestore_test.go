package statestore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestBackendConformance drives every built-in backend through the Backend
// contract: read-your-writes, ErrNotFound on absent keys, idempotent
// deletes, prefix listing in sorted order, and overwrite semantics.
func TestBackendConformance(t *testing.T) {
	backends := map[string]func(t *testing.T) Backend{
		"mem": func(t *testing.T) Backend { return NewMem() },
		"dir": func(t *testing.T) Backend {
			d, err := NewDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		// The injected-fault extension: a Retry over a backend that fails
		// every other call with a transient error must still satisfy the
		// whole contract verbatim.
		"retry-over-flaky": func(t *testing.T) Backend {
			r := NewRetry(&flakyBackend{inner: NewMem(), failEvery: 2})
			r.sleep = func(context.Context, time.Duration) error { return nil }
			return r
		},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			b := mk(t)
			ctx := context.Background()

			if _, err := b.Read(ctx, "check/absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Read absent: err = %v, want ErrNotFound", err)
			}
			if err := b.Delete(ctx, "check/absent"); err != nil {
				t.Fatalf("Delete absent: %v", err)
			}

			if err := b.Write(ctx, "check/a-f1", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := b.Write(ctx, "check/a-f2", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if err := b.Write(ctx, "maxf/a", []byte("v3")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Read(ctx, "check/a-f1")
			if err != nil || string(got) != "v1" {
				t.Fatalf("Read = %q, %v", got, err)
			}

			// Overwrite replaces.
			if err := b.Write(ctx, "check/a-f1", []byte("v1b")); err != nil {
				t.Fatal(err)
			}
			got, _ = b.Read(ctx, "check/a-f1")
			if string(got) != "v1b" {
				t.Fatalf("after overwrite: Read = %q", got)
			}

			keys, err := b.List(ctx, "check/")
			if err != nil {
				t.Fatal(err)
			}
			if want := []string{"check/a-f1", "check/a-f2"}; !reflect.DeepEqual(keys, want) {
				t.Fatalf("List(check/) = %v, want %v", keys, want)
			}
			all, err := b.List(ctx, "")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 3 {
				t.Fatalf("List(\"\") = %v, want 3 keys", all)
			}

			if err := b.Delete(ctx, "check/a-f1"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Read(ctx, "check/a-f1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Read deleted: err = %v, want ErrNotFound", err)
			}

			// Bad keys are rejected uniformly.
			for _, bad := range []string{"", "a//b", "../escape", "a/../b", "sp ace", "semi;colon"} {
				if err := b.Write(ctx, bad, []byte("x")); err == nil {
					t.Fatalf("Write(%q) accepted", bad)
				}
				if _, err := b.Read(ctx, bad); err == nil {
					t.Fatalf("Read(%q) accepted", bad)
				}
			}
		})
	}
}

func TestValidKey(t *testing.T) {
	for key, want := range map[string]bool{
		"check/ab12-f2-t3": true,
		"a":                true,
		"a.b_c-d/e":        true,
		"":                 false,
		"/a":               false,
		"a/":               false,
		"..":               false,
		"a/..":             false,
		"a b":              false,
		"ü":                false,
	} {
		if got := ValidKey(key); got != want {
			t.Errorf("ValidKey(%q) = %v, want %v", key, got, want)
		}
	}
}

// TestDirAtomicWriteLeavesNoTemp checks that completed writes leave no temp
// droppings and that List never surfaces them.
func TestDirAtomicWriteLeavesNoTemp(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := d.Write(ctx, "check/key", []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(root, "check"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1 (temp files left behind?)", len(entries))
	}
}

// TestDirSurvivesReopen pins the durability property the resume path relies
// on: a fresh Dir over the same root sees earlier writes.
func TestDirSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	d1, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Write(ctx, "maxf/k", []byte("state")); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Read(ctx, "maxf/k")
	if err != nil || string(got) != "state" {
		t.Fatalf("reopened Read = %q, %v", got, err)
	}
}

// TestConcurrentAccess hammers both backends from many goroutines; run
// under -race this pins the concurrency contract.
func TestConcurrentAccess(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string]Backend{"mem": NewMem(), "dir": dir} {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						_ = b.Write(ctx, "check/shared", []byte("payload"))
						if v, err := b.Read(ctx, "check/shared"); err == nil && string(v) != "payload" {
							t.Errorf("torn read: %q", v)
						}
						_, _ = b.List(ctx, "check/")
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestMemCanceledContext checks context errors surface instead of results.
func TestMemCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMem()
	if err := m.Write(ctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Write on canceled ctx: %v", err)
	}
	if _, err := m.Read(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Read on canceled ctx: %v", err)
	}
}
