package statestore

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// errTransient is the injected fault the flaky backend raises.
var errTransient = errors.New("statestore_test: transient blip")

// flakyBackend fails every failEvery-th operation with errTransient before
// delegating; ops counts the attempts that reached it.
type flakyBackend struct {
	inner     Backend
	failEvery int64
	ops       atomic.Int64
}

func (f *flakyBackend) fail() bool {
	return f.ops.Add(1)%f.failEvery == 0
}

func (f *flakyBackend) Read(ctx context.Context, key string) ([]byte, error) {
	if f.fail() {
		return nil, errTransient
	}
	return f.inner.Read(ctx, key)
}

func (f *flakyBackend) Write(ctx context.Context, key string, value []byte) error {
	if f.fail() {
		return errTransient
	}
	return f.inner.Write(ctx, key, value)
}

func (f *flakyBackend) Delete(ctx context.Context, key string) error {
	if f.fail() {
		return errTransient
	}
	return f.inner.Delete(ctx, key)
}

func (f *flakyBackend) List(ctx context.Context, prefix string) ([]string, error) {
	if f.fail() {
		return nil, errTransient
	}
	return f.inner.List(ctx, prefix)
}

// noSleep makes a Retry deterministic and instant for tests.
func noSleep(r *Retry) *Retry {
	r.sleep = func(context.Context, time.Duration) error { return nil }
	return r
}

// TestRetryNeverRetriesNotFound pins the contract ErrNotFound is a final
// answer: the inner backend must see exactly one Read.
func TestRetryNeverRetriesNotFound(t *testing.T) {
	inner := &flakyBackend{inner: NewMem(), failEvery: 1 << 30} // never fails
	r := noSleep(NewRetry(inner))
	if _, err := r.Read(context.Background(), "check/absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read absent = %v, want ErrNotFound", err)
	}
	if got := inner.ops.Load(); got != 1 {
		t.Fatalf("inner saw %d attempts, want 1 (ErrNotFound retried?)", got)
	}
}

// TestRetryNeverRetriesInvalidKey pins the same for key validation errors.
func TestRetryNeverRetriesInvalidKey(t *testing.T) {
	inner := &flakyBackend{inner: NewMem(), failEvery: 1 << 30}
	r := noSleep(NewRetry(inner))
	if err := r.Write(context.Background(), "bad key", []byte("v")); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("Write bad key = %v, want ErrInvalidKey", err)
	}
	if got := inner.ops.Load(); got != 1 {
		t.Fatalf("inner saw %d attempts, want 1 (ErrInvalidKey retried?)", got)
	}
}

// TestRetryRecoversFromTransient checks a blip shorter than the attempt
// budget is absorbed and the operation succeeds.
func TestRetryRecoversFromTransient(t *testing.T) {
	inner := &flakyBackend{inner: NewMem(), failEvery: 2} // every other op fails
	r := noSleep(NewRetry(inner))
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := r.Write(ctx, "check/k", []byte("v")); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	got, err := r.Read(ctx, "check/k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

// TestRetryGivesUpAfterAttempts checks a persistent fault surfaces, wrapped,
// after exactly Attempts tries.
func TestRetryGivesUpAfterAttempts(t *testing.T) {
	inner := &flakyBackend{inner: NewMem(), failEvery: 1} // always fails
	r := noSleep(&Retry{Inner: inner, Attempts: 3})
	err := r.Write(context.Background(), "check/k", []byte("v"))
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want wrapped errTransient", err)
	}
	if got := inner.ops.Load(); got != 3 {
		t.Fatalf("inner saw %d attempts, want 3", got)
	}
}

// TestRetryBackoffCappedAndExponential records the sleeps of a failing run
// and checks doubling up to the cap.
func TestRetryBackoffCappedAndExponential(t *testing.T) {
	inner := &flakyBackend{inner: NewMem(), failEvery: 1}
	var slept []time.Duration
	r := &Retry{
		Inner: inner, Attempts: 6,
		BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	_ = r.Write(context.Background(), "check/k", []byte("v"))
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		40 * time.Millisecond, 40 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full: %v)", i, slept[i], want[i], slept)
		}
	}
}

// TestRetryHonorsContextDuringBackoff checks cancellation interrupts the
// sleep between attempts rather than burning the full budget.
func TestRetryHonorsContextDuringBackoff(t *testing.T) {
	inner := &flakyBackend{inner: NewMem(), failEvery: 1}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Retry{Inner: inner, Attempts: 10, sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	if err := r.Write(ctx, "check/k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := inner.ops.Load(); got != 1 {
		t.Fatalf("inner saw %d attempts, want 1 (kept going after cancel)", got)
	}
}

// TestRetryCustomTransient checks the classifier override is honored.
func TestRetryCustomTransient(t *testing.T) {
	inner := &flakyBackend{inner: NewMem(), failEvery: 1}
	r := noSleep(&Retry{Inner: inner, Attempts: 5, Transient: func(error) bool { return false }})
	if err := r.Write(context.Background(), "check/k", []byte("v")); !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want errTransient", err)
	}
	if got := inner.ops.Load(); got != 1 {
		t.Fatalf("inner saw %d attempts, want 1 (classifier ignored)", got)
	}
}
