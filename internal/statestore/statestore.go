// Package statestore persists small run-state blobs — scan checkpoints and
// memoized check verdicts — behind a pluggable Backend interface, so the
// multi-hour exact scans in internal/condition survive process death and
// repeated topologies across sweeps hit a verdict cache instead of
// recomputing.
//
// A Backend is a flat key/value namespace with hierarchical, slash-separated
// keys ("check/ab12…-f2-t3"). Values are opaque byte slices (the condition
// package stores versioned JSON records); every operation takes a context so
// remote backends (object stores) can honor cancellation. Two
// implementations ship here: Dir, rooted in a local directory with atomic
// writes, and Mem, an in-process map for tests and embedding.
//
// Consistency contract: Write is atomic — a reader never observes a torn
// value, even across a crash mid-write (Dir writes a temp file and renames
// it into place). Read of an absent key returns ErrNotFound. Delete of an
// absent key is a no-op. Backends must be safe for concurrent use.
package statestore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Read when the key has no value.
var ErrNotFound = errors.New("statestore: key not found")

// ErrInvalidKey is wrapped by every built-in backend when a key fails
// ValidKey. It is a permanent error — Retry never retries it.
var ErrInvalidKey = errors.New("statestore: invalid key")

// Backend is the pluggable persistence provider. Keys are validated by
// ValidKey; implementations may reject others.
type Backend interface {
	// Read returns the value stored at key, or ErrNotFound.
	Read(ctx context.Context, key string) ([]byte, error)
	// Write stores value at key atomically, replacing any previous value.
	Write(ctx context.Context, key string, value []byte) error
	// Delete removes key. Deleting an absent key is not an error.
	Delete(ctx context.Context, key string) error
	// List returns the keys with the given prefix, sorted ascending.
	List(ctx context.Context, prefix string) ([]string, error)
}

// ValidKey reports whether key is acceptable to the built-in backends:
// non-empty slash-separated segments of [A-Za-z0-9._-], no empty segments,
// and no "." or ".." segments — so a key can never escape a Dir root.
func ValidKey(key string) bool {
	if key == "" {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			case r == '.' || r == '_' || r == '-':
			default:
				return false
			}
		}
	}
	return true
}

// checkKey returns the error all built-in backends report for a bad key.
func checkKey(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("%w: %q", ErrInvalidKey, key)
	}
	return nil
}

// Mem is an in-memory Backend: a mutex-guarded map. The zero value is not
// usable; use NewMem. It is safe for concurrent use and is the backend of
// choice for tests and for callers that want verdict caching within one
// process without touching disk.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// Read implements Backend.
func (s *Mem) Read(ctx context.Context, key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Write implements Backend.
func (s *Mem) Write(ctx context.Context, key string, value []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), value...)
	return nil
}

// Delete implements Backend.
func (s *Mem) Delete(ctx context.Context, key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// List implements Backend.
func (s *Mem) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored keys.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
