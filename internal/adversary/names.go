package adversary

import (
	"fmt"
	"math/rand"
)

// ByName resolves a built-in strategy by its canonical CLI name, seeding
// randomized ones from seed. It is the single resolution point shared by the
// facade (iabc.AdversaryByName) and the distributed sweep runner, so a
// scenario named on a coordinator resolves to the identical strategy on a
// worker. "" and "none" are aliases of "conforming".
func ByName(name string, seed int64) (Strategy, error) {
	switch name {
	case "", "none", "conforming":
		return Conforming{}, nil
	case "fixed-high":
		return Fixed{Value: 1e6}, nil
	case "fixed-low":
		return Fixed{Value: -1e6}, nil
	case "silent":
		return Silent{}, nil
	case "noise":
		return &RandomNoise{Rng: rand.New(rand.NewSource(seed)), Lo: -1e3, Hi: 1e3}, nil
	case "extremes":
		return Extremes{Amplitude: 100}, nil
	case "hug-high":
		return Hug{High: true}, nil
	case "hug-low":
		return Hug{}, nil
	case "insider-high":
		return &Insider{High: true}, nil
	case "insider-low":
		return &Insider{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown strategy %q (want one of %v)", name, Names())
	}
}

// CanonicalName maps a strategy value back to the ByName name that
// reconstructs it exactly, or ok=false when the value is not a named
// built-in configuration — a Fixed with a custom value, a user-defined
// Strategy, or a *RandomNoise (whose generator state cannot be rebuilt from
// a name, so it is never distributable by name). The round-trip property —
// ByName(CanonicalName(s)) behaves identically to s — is what lets a
// coordinator ship a scenario to a worker as a name and still get a
// bit-identical trace back.
func CanonicalName(s Strategy) (string, bool) {
	switch v := s.(type) {
	case Conforming:
		return "conforming", true
	case Fixed:
		switch v.Value {
		case 1e6:
			return "fixed-high", true
		case -1e6:
			return "fixed-low", true
		}
	case Silent:
		return "silent", true
	case Extremes:
		if v.Amplitude == 100 {
			return "extremes", true
		}
	case Hug:
		if v.High {
			return "hug-high", true
		}
		return "hug-low", true
	case *Insider:
		if v.High {
			return "insider-high", true
		}
		return "insider-low", true
	case Insider:
		if v.High {
			return "insider-high", true
		}
		return "insider-low", true
	}
	return "", false
}

// Names lists the names ByName accepts (one canonical name per strategy).
func Names() []string {
	return []string{
		"conforming", "fixed-high", "fixed-low", "silent", "noise",
		"extremes", "hug-high", "hug-low", "insider-high", "insider-low",
	}
}
