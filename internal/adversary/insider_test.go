package adversary

import (
	"testing"

	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

func TestInsiderSurvivesTrimming(t *testing.T) {
	v := view(t) // K5, node 4 faulty, fault-free states 1..4 (f=1)
	msgs := Insider{High: true}.Messages(v, 4)
	// Receiver 0's honest in-neighbors are 1, 2, 3 with states 2, 3, 4.
	// The (f+1)-th largest = 2nd largest = 3: survives one-high trimming.
	if got := msgs[0]; got != 3 {
		t.Errorf("to 0: %v, want 3 (second-largest honest value)", got)
	}
	low := Insider{}.Messages(v, 4)
	// Receiver 0's honest values sorted: 2, 3, 4 → (f+1)-th smallest = 3?
	// No: k = f = 1 → honest[1] = 3... values are states of 1,2,3 = 2,3,4 →
	// honest[1] = 3.
	if got := low[0]; got != 3 {
		t.Errorf("low to 0: %v, want 3", got)
	}
	// Receiver 1's honest in-neighbors are 0, 2, 3 with states 1, 3, 4:
	// high → 3, low → 3.
	if got := msgs[1]; got != 3 {
		t.Errorf("to 1: %v, want 3", got)
	}
}

func TestInsiderWithinHonestHull(t *testing.T) {
	v := view(t)
	for _, strat := range []Strategy{Insider{High: true}, Insider{}} {
		for to, val := range strat.Messages(v, 4) {
			if val < v.Lo || val > v.Hi {
				t.Errorf("%s to %d: %v outside honest hull [%v,%v]", strat.Name(), to, val, v.Lo, v.Hi)
			}
		}
	}
}

func TestInsiderNoHonestNeighborsFallsBack(t *testing.T) {
	// Star: node 0 hub; leaves only hear the hub. Make the hub faulty:
	// leaves have no honest in-neighbors.
	g, err := topology.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	v := RoundView{
		Round: 1, G: g, F: 1,
		Faulty: nodeset.FromMembers(4, 0),
		States: []float64{9, 1, 2, 3},
		Lo:     1, Hi: 3,
	}
	msgs := Insider{High: true}.Messages(v, 0)
	for to, val := range msgs {
		if val != v.Hi {
			t.Errorf("to %d: %v, want fallback to Hi=%v", to, val, v.Hi)
		}
	}
}

func TestInsiderNames(t *testing.T) {
	if (Insider{High: true}).Name() == (Insider{}).Name() {
		t.Error("direction should be visible in the name")
	}
	if (Insider{High: true}).String() == "" {
		t.Error("empty String()")
	}
}
