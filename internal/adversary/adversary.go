// Package adversary implements Byzantine fault strategies matching the
// paper's failure model (Section 2.2): faulty nodes may send incorrect and
// mismatching values to different out-neighbors, may collude, and have
// complete knowledge of the state of every node and of the algorithm.
//
// A Strategy receives a RoundView — the omniscient global snapshot — and
// decides, per faulty sender, the value delivered on each outgoing edge.
// Returning no entry for a receiver models omission; the synchronous engine
// substitutes the sender's ghost state (indistinguishable, to the receiver,
// from a Byzantine node that chose to send that value), while the
// asynchronous engine delivers nothing.
package adversary

import (
	"fmt"
	"math/rand"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// RoundView is the omniscient snapshot handed to strategies at the start of
// each iteration, before messages are exchanged.
type RoundView struct {
	// Round is the iteration about to execute (1-based).
	Round int
	// G is the communication graph.
	G *graph.Graph
	// F is the algorithm's fault-tolerance parameter.
	F int
	// Faulty is the actual fault set.
	Faulty nodeset.Set
	// States holds every node's current state v_j[t−1]. Entries for faulty
	// nodes are engine-maintained ghost states (what the node would hold if
	// it ran the algorithm); strategies are free to ignore them.
	States []float64
	// Lo and Hi are µ[t−1] and U[t−1]: the extremes over fault-free nodes.
	Lo, Hi float64
}

// Strategy decides what a faulty node transmits. Implementations must be
// deterministic given their configuration (seeded *rand.Rand for randomized
// ones) so simulations are reproducible.
type Strategy interface {
	// Name identifies the strategy in traces and benchmarks.
	Name() string
	// Messages returns the value sender transmits to each out-neighbor this
	// round, keyed by receiver. Omitted receivers get no message.
	Messages(view RoundView, sender int) map[int]float64
}

// EdgeSink receives the values an EdgeWriter scatters onto a faulty sender's
// outgoing edges. k indexes the sender's sorted out-neighbor list: Send(k, v)
// delivers v on the edge to view.G.OutView(sender)[k]. Edges not written
// behave exactly like receivers omitted from Messages (the synchronous
// engines substitute the ghost state; the asynchronous engine delivers
// nothing). Implementations are engine-owned flat buffers, so Send is O(1)
// and allocation-free.
type EdgeSink interface {
	Send(k int, value float64)
}

// EdgeWriter is the allocation-free fast path of Strategy. Engines probe for
// it once per run and, when present, call WriteMessages instead of Messages,
// scattering values straight onto their flat edge planes with no per-round
// map.
//
// Contract: WriteMessages must be observationally identical to Messages —
// for every view and sender, Send(k, v) is called exactly once for each
// entry (OutView(sender)[k] -> v) of the Messages map and for nothing else
// (call order along the out-edge list is ascending k). Randomized strategies
// must consume their rng stream identically on both paths.
// FuzzEdgeWriterEquivalence enforces this for the built-ins.
type EdgeWriter interface {
	Strategy
	WriteMessages(view RoundView, sender int, w EdgeSink)
}

// Conforming behaves exactly like a fault-free node: it sends the ghost
// state on every outgoing edge. Useful as a control in experiments.
type Conforming struct{}

var _ EdgeWriter = Conforming{}

// Name implements Strategy.
func (Conforming) Name() string { return "conforming" }

// Messages sends the ghost state to all out-neighbors.
func (Conforming) Messages(view RoundView, sender int) map[int]float64 {
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		out[to] = view.States[sender]
	}
	return out
}

// WriteMessages implements EdgeWriter.
func (Conforming) WriteMessages(view RoundView, sender int, w EdgeSink) {
	v := view.States[sender]
	for k := range view.G.OutView(sender) {
		w.Send(k, v)
	}
}

// Fixed sends a constant value on every edge, every round — the classic
// "stubborn" fault. With Value outside the initial input range it doubles
// as a validity stress test: Algorithm 1 must trim it away.
type Fixed struct {
	Value float64
}

var _ EdgeWriter = Fixed{}

// Name implements Strategy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%g)", f.Value) }

// Messages sends Value to all out-neighbors.
func (f Fixed) Messages(view RoundView, sender int) map[int]float64 {
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		out[to] = f.Value
	}
	return out
}

// WriteMessages implements EdgeWriter.
func (f Fixed) WriteMessages(view RoundView, sender int, w EdgeSink) {
	for k := range view.G.OutView(sender) {
		w.Send(k, f.Value)
	}
}

// Silent omits every message — a crash-like fault. The synchronous engine
// substitutes the ghost state (see package comment); the asynchronous engine
// genuinely withholds, exercising the wait-for-|N⁻|−f quorum path.
type Silent struct{}

var _ EdgeWriter = Silent{}

// Name implements Strategy.
func (Silent) Name() string { return "silent" }

// Messages returns an empty map.
func (Silent) Messages(RoundView, int) map[int]float64 { return map[int]float64{} }

// WriteMessages implements EdgeWriter: nothing is written.
func (Silent) WriteMessages(RoundView, int, EdgeSink) {}

// RandomNoise sends an independent uniform value in [Lo, Hi] on every edge,
// every round — maximal equivocation. Rng must be non-nil and is used only
// from the engine's coordinator, so no locking is needed.
type RandomNoise struct {
	Rng    *rand.Rand
	Lo, Hi float64
}

var _ EdgeWriter = (*RandomNoise)(nil)

// Name implements Strategy.
func (r *RandomNoise) Name() string { return fmt.Sprintf("noise[%g,%g]", r.Lo, r.Hi) }

// Messages draws one uniform sample per out-neighbor.
func (r *RandomNoise) Messages(view RoundView, sender int) map[int]float64 {
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		out[to] = r.Lo + r.Rng.Float64()*(r.Hi-r.Lo)
	}
	return out
}

// WriteMessages implements EdgeWriter. Draw order matches Messages exactly
// (one Float64 per out-neighbor, ascending), so both paths consume the same
// rng stream.
func (r *RandomNoise) WriteMessages(view RoundView, sender int, w EdgeSink) {
	for k := range view.G.OutView(sender) {
		w.Send(k, r.Lo+r.Rng.Float64()*(r.Hi-r.Lo))
	}
}

// Extremes splits receivers: even-ID receivers get U[t−1]+Amplitude,
// odd-ID receivers get µ[t−1]−Amplitude. It equivocates maximally in
// opposite directions, the generic version of the Theorem 1 attack.
type Extremes struct {
	Amplitude float64
}

var _ EdgeWriter = Extremes{}

// Name implements Strategy.
func (e Extremes) Name() string { return fmt.Sprintf("extremes(±%g)", e.Amplitude) }

// Messages sends Hi+Amplitude to even receivers, Lo−Amplitude to odd.
func (e Extremes) Messages(view RoundView, sender int) map[int]float64 {
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		if to%2 == 0 {
			out[to] = view.Hi + e.Amplitude
		} else {
			out[to] = view.Lo - e.Amplitude
		}
	}
	return out
}

// WriteMessages implements EdgeWriter.
func (e Extremes) WriteMessages(view RoundView, sender int, w EdgeSink) {
	high, low := view.Hi+e.Amplitude, view.Lo-e.Amplitude
	for k, to := range view.G.OutView(sender) {
		if to%2 == 0 {
			w.Send(k, high)
		} else {
			w.Send(k, low)
		}
	}
}

// PartitionAttack is the adversary from the proof of Theorem 1. Given a
// violating partition (F = the faulty set running this strategy, L, R, C),
// it sends Low−Eps to nodes in L, High+Eps to nodes in R, and
// (Low+High)/2 to nodes in C. On a graph that violates Theorem 1, with L
// starting at Low and R at High, this freezes L at Low and R at High
// forever — the constructive impossibility that experiment E1 demonstrates.
type PartitionAttack struct {
	L, R nodeset.Set
	// Low and High are the input values m and M of the proof (Low < High).
	Low, High float64
	// Eps is how far outside [Low, High] the lies sit (m⁻ = Low−Eps,
	// M⁺ = High+Eps). Must be > 0.
	Eps float64
}

var _ EdgeWriter = PartitionAttack{}

// Name implements Strategy.
func (PartitionAttack) Name() string { return "partition-attack" }

// Messages sends m⁻ into L, M⁺ into R, and the midpoint into C.
func (p PartitionAttack) Messages(view RoundView, sender int) map[int]float64 {
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		switch {
		case p.L.Contains(to):
			out[to] = p.Low - p.Eps
		case p.R.Contains(to):
			out[to] = p.High + p.Eps
		default:
			out[to] = (p.Low + p.High) / 2
		}
	}
	return out
}

// WriteMessages implements EdgeWriter.
func (p PartitionAttack) WriteMessages(view RoundView, sender int, w EdgeSink) {
	for k, to := range view.G.OutView(sender) {
		switch {
		case p.L.Contains(to):
			w.Send(k, p.Low-p.Eps)
		case p.R.Contains(to):
			w.Send(k, p.High+p.Eps)
		default:
			w.Send(k, (p.Low+p.High)/2)
		}
	}
}

// Hug sends the current extreme of the fault-free range (U[t−1] if High,
// else µ[t−1]) on every edge. The value is always inside the valid range,
// so it is never distinguishable from a slow fault-free node, yet it drags
// the average toward the extreme every round — the canonical worst case for
// convergence rate (experiment E7 measures the slowdown).
type Hug struct {
	High bool
}

var _ EdgeWriter = Hug{}

// Name implements Strategy.
func (h Hug) Name() string {
	if h.High {
		return "hug-high"
	}
	return "hug-low"
}

// Messages sends the hugged extreme to all out-neighbors.
func (h Hug) Messages(view RoundView, sender int) map[int]float64 {
	v := view.Lo
	if h.High {
		v = view.Hi
	}
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		out[to] = v
	}
	return out
}

// WriteMessages implements EdgeWriter.
func (h Hug) WriteMessages(view RoundView, sender int, w EdgeSink) {
	v := view.Lo
	if h.High {
		v = view.Hi
	}
	for k := range view.G.OutView(sender) {
		w.Send(k, v)
	}
}
