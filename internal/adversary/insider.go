package adversary

import (
	"fmt"
	"sort"
)

// Insider is the sharpest in-range attack in the suite: for each receiver it
// inspects the receiver's own incoming values from fault-free nodes and
// sends the value that maximally drags the receiver's update toward an
// extreme while being guaranteed to survive trimming.
//
// Sending the global extreme (Hug) can be trimmed away when the receiver's
// neighborhood doesn't contain the extreme holder; Insider instead sends the
// (f+1)-th largest (or smallest) fault-free value in the receiver's own
// in-neighborhood — at most f values exceed it, so after the f-largest are
// discarded it always survives (possibly displaced by colluding copies of
// itself, which carry the same value). This exploits the full omniscience
// the failure model grants (Section 2.2).
//
// The EdgeWriter fast path lives on *Insider: it reuses an internal scratch
// buffer across calls and so must not be shared between goroutines. The
// value type remains a valid (allocating) Strategy.
type Insider struct {
	// High selects the drag direction.
	High bool

	// scratch backs the allocation-free WriteMessages path; it grows to the
	// largest honest in-neighborhood seen and is then reused.
	scratch []float64
}

var (
	_ Strategy   = Insider{}
	_ EdgeWriter = (*Insider)(nil)
)

// Name implements Strategy.
func (a Insider) Name() string {
	if a.High {
		return "insider-high"
	}
	return "insider-low"
}

// Messages implements Strategy.
func (a Insider) Messages(view RoundView, sender int) map[int]float64 {
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		v, _ := a.valueFor(view, to, nil)
		out[to] = v
	}
	return out
}

// WriteMessages implements EdgeWriter, producing exactly the values of
// Messages with zero steady-state allocations.
func (a *Insider) WriteMessages(view RoundView, sender int, w EdgeSink) {
	for k, to := range view.G.OutView(sender) {
		var v float64
		v, a.scratch = a.valueFor(view, to, a.scratch[:0])
		w.Send(k, v)
	}
}

// valueFor computes the surviving-extreme value for one receiver, gathering
// honest in-neighbor states into buf (grown as needed and returned for
// reuse).
func (a Insider) valueFor(view RoundView, receiver int, buf []float64) (float64, []float64) {
	honest := buf
	for _, from := range view.G.InView(receiver) {
		if !view.Faulty.Contains(from) {
			honest = append(honest, view.States[from])
		}
	}
	if len(honest) == 0 {
		// No honest in-neighbors to hide among; fall back to the hull edge.
		if a.High {
			return view.Hi, honest
		}
		return view.Lo, honest
	}
	sort.Float64s(honest)
	k := view.F
	if k >= len(honest) {
		k = len(honest) - 1
	}
	if a.High {
		// (f+1)-th largest honest value in the receiver's neighborhood.
		return honest[len(honest)-1-k], honest
	}
	// (f+1)-th smallest.
	return honest[k], honest
}

// String aids debugging.
func (a Insider) String() string { return fmt.Sprintf("Insider{High:%v}", a.High) }
