package adversary

import (
	"fmt"
	"sort"
)

// Insider is the sharpest in-range attack in the suite: for each receiver it
// inspects the receiver's own incoming values from fault-free nodes and
// sends the value that maximally drags the receiver's update toward an
// extreme while being guaranteed to survive trimming.
//
// Sending the global extreme (Hug) can be trimmed away when the receiver's
// neighborhood doesn't contain the extreme holder; Insider instead sends the
// (f+1)-th largest (or smallest) fault-free value in the receiver's own
// in-neighborhood — at most f values exceed it, so after the f-largest are
// discarded it always survives (possibly displaced by colluding copies of
// itself, which carry the same value). This exploits the full omniscience
// the failure model grants (Section 2.2).
type Insider struct {
	// High selects the drag direction.
	High bool
}

var _ Strategy = Insider{}

// Name implements Strategy.
func (a Insider) Name() string {
	if a.High {
		return "insider-high"
	}
	return "insider-low"
}

// Messages implements Strategy.
func (a Insider) Messages(view RoundView, sender int) map[int]float64 {
	out := make(map[int]float64)
	for _, to := range view.G.OutNeighbors(sender) {
		out[to] = a.valueFor(view, to)
	}
	return out
}

// valueFor computes the surviving-extreme value for one receiver.
func (a Insider) valueFor(view RoundView, receiver int) float64 {
	var honest []float64
	for _, from := range view.G.InNeighbors(receiver) {
		if !view.Faulty.Contains(from) {
			honest = append(honest, view.States[from])
		}
	}
	if len(honest) == 0 {
		// No honest in-neighbors to hide among; fall back to the hull edge.
		if a.High {
			return view.Hi
		}
		return view.Lo
	}
	sort.Float64s(honest)
	k := view.F
	if k >= len(honest) {
		k = len(honest) - 1
	}
	if a.High {
		// (f+1)-th largest honest value in the receiver's neighborhood.
		return honest[len(honest)-1-k]
	}
	// (f+1)-th smallest.
	return honest[k]
}

// String aids debugging.
func (a Insider) String() string { return fmt.Sprintf("Insider{High:%v}", a.High) }
