package adversary

import (
	"math"
	"math/rand"
	"testing"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// recordSink captures every Send for comparison against the Messages map.
type recordSink struct {
	ks []int
	vs []float64
}

func (r *recordSink) Send(k int, value float64) {
	r.ks = append(r.ks, k)
	r.vs = append(r.vs, value)
}

// strategyPair yields two independently-constructed instances of the same
// strategy configuration: one queried via Messages, one via WriteMessages.
// Randomized strategies need separate but identically-seeded instances so
// both paths consume a fresh stream.
type strategyPair struct {
	name       string
	mapSide    Strategy
	writerSide EdgeWriter
}

func builtinPairs(n int, seed int64) []strategyPair {
	l := nodeset.New(n)
	r := nodeset.New(n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			l.Add(i)
		case 1:
			r.Add(i)
		}
	}
	return []strategyPair{
		{"conforming", Conforming{}, Conforming{}},
		{"fixed", Fixed{Value: 13.5}, Fixed{Value: 13.5}},
		{"silent", Silent{}, Silent{}},
		{"noise",
			&RandomNoise{Rng: rand.New(rand.NewSource(seed)), Lo: -2, Hi: 5},
			&RandomNoise{Rng: rand.New(rand.NewSource(seed)), Lo: -2, Hi: 5}},
		{"extremes", Extremes{Amplitude: 4}, Extremes{Amplitude: 4}},
		{"partition-attack",
			PartitionAttack{L: l, R: r, Low: -1, High: 1, Eps: 0.5},
			PartitionAttack{L: l, R: r, Low: -1, High: 1, Eps: 0.5}},
		{"hug-high", Hug{High: true}, Hug{High: true}},
		{"hug-low", Hug{}, Hug{}},
		{"insider-high", Insider{High: true}, &Insider{High: true}},
		{"insider-low", Insider{}, &Insider{}},
	}
}

// checkEquivalence asserts the EdgeWriter contract for one (view, sender):
// WriteMessages sends exactly the Messages map, keyed through OutView, in
// ascending edge order, with bit-identical values.
func checkEquivalence(t *testing.T, name string, view RoundView, sender int, mapSide Strategy, writerSide EdgeWriter) {
	t.Helper()
	msgs := mapSide.Messages(view, sender)
	var rec recordSink
	writerSide.WriteMessages(view, sender, &rec)

	outs := view.G.OutView(sender)
	if len(rec.ks) != len(msgs) {
		t.Fatalf("%s sender %d: WriteMessages sent %d values, Messages has %d entries",
			name, sender, len(rec.ks), len(msgs))
	}
	prev := -1
	for idx, k := range rec.ks {
		if k < 0 || k >= len(outs) {
			t.Fatalf("%s sender %d: edge index %d out of range [0,%d)", name, sender, k, len(outs))
		}
		if k <= prev {
			t.Fatalf("%s sender %d: edge indices not strictly ascending: %v", name, sender, rec.ks)
		}
		prev = k
		want, ok := msgs[outs[k]]
		if !ok {
			t.Fatalf("%s sender %d: WriteMessages sent on edge to %d, absent from Messages", name, sender, outs[k])
		}
		if math.Float64bits(want) != math.Float64bits(rec.vs[idx]) {
			t.Fatalf("%s sender %d -> %d: WriteMessages value %v != Messages value %v",
				name, sender, outs[k], rec.vs[idx], want)
		}
	}
}

// fuzzView builds a random graph, state vector, and omniscient view from
// fuzz-controlled bytes. Returns ok=false when the derived graph gives the
// sender no out-edges worth checking (still exercised: zero-edge senders
// must produce zero sends).
func fuzzView(nRaw uint8, seed int64, fRaw uint8, edges []byte) (RoundView, int) {
	n := 3 + int(nRaw)%8
	b := graph.NewBuilder(n)
	bit := func(idx int) bool {
		if len(edges) == 0 {
			return idx%3 != 0
		}
		byteIdx := (idx / 8) % len(edges)
		return edges[byteIdx]>>(uint(idx)%8)&1 == 1
	}
	idx := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && bit(idx) {
				b.AddEdge(i, j)
			}
			idx++
		}
	}
	g := b.MustBuild()
	rng := rand.New(rand.NewSource(seed))
	states := make([]float64, n)
	for i := range states {
		states[i] = rng.NormFloat64() * 10
	}
	sender := int(uint64(seed)>>4) % n
	faulty := nodeset.FromMembers(n, sender)
	if n > 2 {
		faulty.Add((sender + 1) % n) // a colluder, so Insider skips >1 faulty
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range states {
		if faulty.Contains(i) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return RoundView{
		Round:  1 + int(fRaw)%5,
		G:      g,
		F:      int(fRaw) % 3,
		Faulty: faulty,
		States: states,
		Lo:     lo,
		Hi:     hi,
	}, sender
}

// FuzzEdgeWriterEquivalence fuzzes the EdgeWriter contract across every
// built-in strategy: for random graphs, states, fault sets, and f, the
// WriteMessages scatter must match the Messages map exactly.
func FuzzEdgeWriterEquivalence(f *testing.F) {
	f.Add(uint8(5), int64(1), uint8(1), []byte{0xff, 0x3c})
	f.Add(uint8(0), int64(42), uint8(0), []byte{})
	f.Add(uint8(7), int64(-9), uint8(2), []byte{0b10101010, 0b01010101, 0x01})
	f.Add(uint8(3), int64(1<<40), uint8(4), []byte{0x00, 0x80})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, fRaw uint8, edges []byte) {
		view, sender := fuzzView(nRaw, seed, fRaw, edges)
		for _, pair := range builtinPairs(view.G.N(), seed) {
			checkEquivalence(t, pair.name, view, sender, pair.mapSide, pair.writerSide)
		}
	})
}

// TestEdgeWriterEquivalenceAcrossRounds drives stateful writers (Insider's
// scratch, RandomNoise's stream) through many consecutive rounds on one
// graph, mirroring how engines actually call them.
func TestEdgeWriterEquivalenceAcrossRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		view, sender := fuzzView(uint8(rng.Intn(256)), rng.Int63(), uint8(rng.Intn(256)), []byte{byte(rng.Intn(256)), byte(rng.Intn(256))})
		pairs := builtinPairs(view.G.N(), 1234+int64(trial))
		for round := 1; round <= 5; round++ {
			view.Round = round
			for i := range view.States {
				view.States[i] += rng.NormFloat64()
			}
			for _, pair := range pairs {
				checkEquivalence(t, pair.name, view, sender, pair.mapSide, pair.writerSide)
			}
		}
	}
}
