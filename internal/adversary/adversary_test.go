package adversary

import (
	"math/rand"
	"testing"

	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// view builds a RoundView over K5 with node 4 faulty and fault-free states
// 1..4 (so Lo=1, Hi=4).
func view(t *testing.T) RoundView {
	t.Helper()
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	return RoundView{
		Round:  1,
		G:      g,
		F:      1,
		Faulty: nodeset.FromMembers(5, 4),
		States: []float64{1, 2, 3, 4, 2.5},
		Lo:     1,
		Hi:     4,
	}
}

func TestConforming(t *testing.T) {
	v := view(t)
	msgs := Conforming{}.Messages(v, 4)
	if len(msgs) != 4 {
		t.Fatalf("got %d messages, want 4", len(msgs))
	}
	for to, val := range msgs {
		if val != 2.5 {
			t.Errorf("to %d: %v, want ghost state 2.5", to, val)
		}
	}
}

func TestFixed(t *testing.T) {
	v := view(t)
	msgs := Fixed{Value: 99}.Messages(v, 4)
	for to, val := range msgs {
		if val != 99 {
			t.Errorf("to %d: %v, want 99", to, val)
		}
	}
	if got := (Fixed{Value: 99}).Name(); got != "fixed(99)" {
		t.Errorf("Name = %q", got)
	}
}

func TestSilent(t *testing.T) {
	if got := (Silent{}).Messages(view(t), 4); len(got) != 0 {
		t.Fatalf("Silent sent %v", got)
	}
}

func TestRandomNoiseDeterministicPerSeed(t *testing.T) {
	v := view(t)
	a := &RandomNoise{Rng: rand.New(rand.NewSource(5)), Lo: -1, Hi: 1}
	b := &RandomNoise{Rng: rand.New(rand.NewSource(5)), Lo: -1, Hi: 1}
	ma := a.Messages(v, 4)
	mb := b.Messages(v, 4)
	if len(ma) != 4 {
		t.Fatalf("got %d messages", len(ma))
	}
	for to := range ma {
		if ma[to] != mb[to] {
			t.Fatal("same seed produced different noise")
		}
		if ma[to] < -1 || ma[to] > 1 {
			t.Fatalf("noise %v outside [-1,1]", ma[to])
		}
	}
}

func TestExtremesSplit(t *testing.T) {
	v := view(t)
	msgs := Extremes{Amplitude: 10}.Messages(v, 4)
	for to, val := range msgs {
		if to%2 == 0 && val != v.Hi+10 {
			t.Errorf("even receiver %d got %v, want %v", to, val, v.Hi+10)
		}
		if to%2 == 1 && val != v.Lo-10 {
			t.Errorf("odd receiver %d got %v, want %v", to, val, v.Lo-10)
		}
	}
}

func TestPartitionAttack(t *testing.T) {
	v := view(t)
	p := PartitionAttack{
		L:    nodeset.FromMembers(5, 0, 1),
		R:    nodeset.FromMembers(5, 2),
		Low:  0,
		High: 1,
		Eps:  0.5,
	}
	msgs := p.Messages(v, 4)
	if msgs[0] != -0.5 || msgs[1] != -0.5 {
		t.Errorf("L receivers got %v/%v, want -0.5", msgs[0], msgs[1])
	}
	if msgs[2] != 1.5 {
		t.Errorf("R receiver got %v, want 1.5", msgs[2])
	}
	if msgs[3] != 0.5 {
		t.Errorf("C receiver got %v, want midpoint 0.5", msgs[3])
	}
}

func TestHug(t *testing.T) {
	v := view(t)
	high := Hug{High: true}.Messages(v, 4)
	low := Hug{}.Messages(v, 4)
	for to := range high {
		if high[to] != v.Hi {
			t.Errorf("hug-high to %d = %v, want %v", to, high[to], v.Hi)
		}
		if low[to] != v.Lo {
			t.Errorf("hug-low to %d = %v, want %v", to, low[to], v.Lo)
		}
	}
	if (Hug{High: true}).Name() == (Hug{}).Name() {
		t.Error("hug names should differ by direction")
	}
}

func TestMessagesRespectOutEdges(t *testing.T) {
	// On a sparse graph, strategies must only message actual out-neighbors.
	g, err := topology.DirectedCycle(5)
	if err != nil {
		t.Fatal(err)
	}
	v := RoundView{
		Round: 1, G: g, F: 1,
		Faulty: nodeset.FromMembers(5, 0),
		States: []float64{0, 1, 2, 3, 4},
		Lo:     1, Hi: 4,
	}
	strategies := []Strategy{
		Conforming{}, Fixed{Value: 1}, Extremes{Amplitude: 1},
		&RandomNoise{Rng: rand.New(rand.NewSource(1)), Lo: 0, Hi: 1},
		Hug{High: true},
		PartitionAttack{L: nodeset.FromMembers(5, 1), R: nodeset.FromMembers(5, 2), Low: 0, High: 1, Eps: 1},
	}
	for _, s := range strategies {
		msgs := s.Messages(v, 0)
		for to := range msgs {
			if !g.HasEdge(0, to) {
				t.Errorf("%s messaged non-neighbor %d", s.Name(), to)
			}
		}
		if len(msgs) != 1 { // cycle: exactly one out-neighbor
			t.Errorf("%s sent %d messages, want 1", s.Name(), len(msgs))
		}
	}
}
