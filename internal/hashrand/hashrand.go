// Package hashrand provides lock-free deterministic pseudo-randomness
// keyed by message coordinates. Where math/rand draws from a stateful
// stream — inherently single-consumer unless locked — hashrand computes
// each variate as a pure function of (seed, from, to, seq), so any number
// of concurrent goroutines can evaluate it without synchronization and a
// run is reproducible from the seed alone regardless of scheduling.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014), the finalizer
// used to seed xoshiro-family generators: a 64-bit mix with full avalanche,
// far stronger than needed to decorrelate adjacent (from, to, seq) keys.
package hashrand

// Splitmix64 advances and finalizes one splitmix64 step for x.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Key mixes a seed and three message coordinates into one 64-bit key.
// Each coordinate passes through its own splitmix64 round before combining,
// so permuting (from, to, seq) or shifting the seed yields unrelated keys.
func Key(seed int64, from, to, seq uint64) uint64 {
	h := Splitmix64(uint64(seed))
	h = Splitmix64(h ^ from)
	h = Splitmix64(h ^ to)
	h = Splitmix64(h ^ seq)
	return h
}

// Unit maps the key (seed, from, to, seq) to a float64 in [0, 1),
// uniformly over the 2⁵³ representable grid — the hash-keyed equivalent of
// rand.Float64.
func Unit(seed int64, from, to, seq uint64) float64 {
	return float64(Key(seed, from, to, seq)>>11) / (1 << 53)
}
