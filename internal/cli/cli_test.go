package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run invokes Main with captured output.
func run(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf strings.Builder
	code = Main(args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestNoArgsShowsUsage(t *testing.T) {
	code, _, stderr := run(t, "")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Commands:") {
		t.Errorf("usage missing from stderr: %q", stderr)
	}
}

func TestHelp(t *testing.T) {
	code, stdout, _ := run(t, "", "help")
	if code != 0 || !strings.Contains(stdout, "Commands:") {
		t.Fatalf("help failed: code=%d out=%q", code, stdout)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, stderr := run(t, "", "frobnicate")
	if code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestCheckSatisfied(t *testing.T) {
	code, stdout, _ := run(t, "", "check", "-topo", "core:7,2", "-f", "2")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "SATISFIED") {
		t.Errorf("output: %q", stdout)
	}
}

func TestCheckViolated(t *testing.T) {
	code, stdout, _ := run(t, "", "check", "-topo", "chord:7,2", "-f", "2")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "VIOLATED") || !strings.Contains(stdout, "witness") {
		t.Errorf("output: %q", stdout)
	}
}

func TestCheckAsyncFlag(t *testing.T) {
	code, stdout, _ := run(t, "", "check", "-topo", "complete:5", "-f", "1", "-async")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "VIOLATED") { // K5 fails n > 5f
		t.Errorf("K5 async should be violated: %q", stdout)
	}
	if !strings.Contains(stdout, "screen: corollary2") {
		t.Errorf("quick screen output missing: %q", stdout)
	}
}

func TestCheckBadTopo(t *testing.T) {
	code, _, stderr := run(t, "", "check", "-topo", "nosuch:4", "-f", "1")
	if code != 1 || !strings.Contains(stderr, "unknown topology") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestMaxF(t *testing.T) {
	code, stdout, _ := run(t, "", "maxf", "-topo", "complete:7")
	if code != 0 || !strings.Contains(stdout, "maxf: 2") {
		t.Fatalf("code=%d out=%q", code, stdout)
	}
	code, stdout, _ = run(t, "", "maxf", "-topo", "hypercube:3")
	if code != 0 || !strings.Contains(stdout, "maxf: 0") {
		t.Fatalf("hypercube: code=%d out=%q", code, stdout)
	}
}

// TestCheckStateDir drives the -state-dir flag end to end: first run scans
// and persists, second run is served from the verdict cache with the
// verdict/work lines byte-identical and the provenance on its own line.
func TestCheckStateDir(t *testing.T) {
	dir := t.TempDir()
	code, first, _ := run(t, "", "check", "-topo", "core:7,2", "-f", "2", "-state-dir", dir)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(first, "state:") {
		t.Errorf("fresh run printed provenance: %q", first)
	}
	code, second, _ := run(t, "", "check", "-topo", "core:7,2", "-f", "2", "-state-dir", dir)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(second, "state: verdict served from cache") {
		t.Errorf("cached run missing provenance line: %q", second)
	}
	// Everything except the provenance line is byte-identical.
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "state:") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(first) != strip(second) {
		t.Errorf("cached output differs:\nfirst  %q\nsecond %q", first, second)
	}
}

// TestMaxFStateDir: same contract for the sweep — cached rerun, identical
// maxf/work lines, provenance reporting the cache hits.
func TestMaxFStateDir(t *testing.T) {
	dir := t.TempDir()
	code, first, _ := run(t, "", "maxf", "-topo", "complete:7", "-state-dir", dir)
	if code != 0 || !strings.Contains(first, "maxf: 2") {
		t.Fatalf("code=%d out=%q", code, first)
	}
	code, second, _ := run(t, "", "maxf", "-topo", "complete:7", "-state-dir", dir)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(second, "verdict cache hits") {
		t.Errorf("cached sweep missing provenance: %q", second)
	}
	for _, prefix := range []string{"maxf:", "work:"} {
		var a, b string
		for _, line := range strings.Split(first, "\n") {
			if strings.HasPrefix(line, prefix) {
				a = line
			}
		}
		for _, line := range strings.Split(second, "\n") {
			if strings.HasPrefix(line, prefix) {
				b = line
			}
		}
		if a == "" || a != b {
			t.Errorf("%q line differs: first %q, second %q", prefix, a, b)
		}
	}
}

func TestMaxFDisconnected(t *testing.T) {
	edge := "n 4\n0 1\n1 0\n2 3\n3 2\n"
	code, stdout, _ := run(t, edge, "maxf", "-topo", "-")
	if code != 0 || !strings.Contains(stdout, "none") {
		t.Fatalf("code=%d out=%q", code, stdout)
	}
}

func TestRunConverges(t *testing.T) {
	code, stdout, _ := run(t, "", "run",
		"-topo", "core:7,2", "-f", "2", "-faulty", "0,1",
		"-adversary", "extremes", "-rounds", "5000", "-eps", "1e-6")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, stdout)
	}
	if !strings.Contains(stdout, "converged: true") {
		t.Errorf("output: %q", stdout)
	}
	if !strings.Contains(stdout, "validity: held") {
		t.Errorf("validity line missing: %q", stdout)
	}
}

func TestRunWithTraceEvery(t *testing.T) {
	code, stdout, _ := run(t, "", "run",
		"-topo", "complete:4", "-f", "1", "-rounds", "20", "-eps", "0",
		"-adversary", "none", "-trace-every", "5")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "round      0") && !strings.Contains(stdout, "round  ") {
		t.Errorf("trace lines missing: %q", stdout)
	}
}

func TestRunConcurrentEngine(t *testing.T) {
	code, stdout, _ := run(t, "", "run",
		"-topo", "complete:5", "-f", "1", "-faulty", "4",
		"-adversary", "fixed-high", "-engine", "concurrent",
		"-rounds", "500", "-eps", "1e-6")
	if code != 0 || !strings.Contains(stdout, "engine=concurrent") {
		t.Fatalf("code=%d out=%q", code, stdout)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"run", "-topo", "complete:5", "-faulty", "9"},                        // out of range
		{"run", "-topo", "complete:5", "-faulty", "x"},                        // bad id
		{"run", "-topo", "complete:5", "-adversary", "nope"},                  // bad strategy
		{"run", "-topo", "complete:5", "-engine", "quantum"},                  // bad engine
		{"run", "-topo", "ring:6", "-f", "1", "-faulty", "0", "-rounds", "5"}, // in-degree too small
	}
	for _, args := range cases {
		code, _, stderr := run(t, "", args...)
		if code != 1 {
			t.Errorf("args %v: code=%d stderr=%q, want failure", args, code, stderr)
		}
	}
}

func TestRunWithCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	code, stdout, _ := run(t, "", "run",
		"-topo", "complete:4", "-f", "1", "-rounds", "10", "-eps", "0",
		"-adversary", "none", "-csv", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "trace written to") {
		t.Errorf("missing csv confirmation: %q", stdout)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,U,mu,range,node0") {
		t.Errorf("csv header: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	code, _, _ = run(t, "", "run",
		"-topo", "complete:4", "-f", "1", "-rounds", "2",
		"-csv", filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv"))
	if code != 1 {
		t.Error("unwritable csv path should fail")
	}
}

func TestTopoEdgeList(t *testing.T) {
	code, stdout, _ := run(t, "", "topo", "-topo", "cycle:3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "n 3") || !strings.Contains(stdout, "0 1") {
		t.Errorf("edge list: %q", stdout)
	}
}

func TestTopoDOT(t *testing.T) {
	code, stdout, _ := run(t, "", "topo", "-topo", "ring:4", "-format", "dot")
	if code != 0 || !strings.Contains(stdout, "digraph") || !strings.Contains(stdout, "dir=both") {
		t.Fatalf("code=%d out=%q", code, stdout)
	}
	code, _, _ = run(t, "", "topo", "-topo", "ring:4", "-format", "pdf")
	if code != 1 {
		t.Fatalf("bad format accepted")
	}
}

func TestStdinTopology(t *testing.T) {
	edge := "n 4\n" + "0 1\n1 0\n0 2\n2 0\n0 3\n3 0\n1 2\n2 1\n1 3\n3 1\n2 3\n3 2\n"
	code, stdout, _ := run(t, edge, "check", "-topo", "-", "-f", "1")
	if code != 0 || !strings.Contains(stdout, "SATISFIED") {
		t.Fatalf("stdin K4: code=%d out=%q", code, stdout)
	}
}

func TestFileTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(path, []byte("n 3\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := run(t, "", "maxf", "-topo", "file:"+path)
	if code != 0 || !strings.Contains(stdout, "maxf: 0") {
		t.Fatalf("code=%d out=%q", code, stdout)
	}
	code, _, stderr := run(t, "", "maxf", "-topo", "file:/nonexistent/x")
	if code != 1 || stderr == "" {
		t.Fatal("missing file should fail")
	}
}

func TestParseTopoSpecs(t *testing.T) {
	specs := map[string]int{ // spec -> expected n
		"complete:6":       6,
		"core:7,2":         7,
		"hypercube:3":      8,
		"chord:9,2":        9,
		"ring:5":           5,
		"cycle:4":          4,
		"wheel:6":          6,
		"star:4":           4,
		"grid:2,3":         6,
		"torus:3,3":        9,
		"random:10,0.5,42": 10,
	}
	for spec, wantN := range specs {
		g, err := ParseTopo(spec, nil)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if g.N() != wantN {
			t.Errorf("%s: n = %d, want %d", spec, g.N(), wantN)
		}
	}
	bad := []string{"complete", "complete:x", "core:4", "grid:2", "random:10,2,1,9"}
	for _, spec := range bad {
		if _, err := ParseTopo(spec, nil); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
}

func TestExperimentsCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	code, stdout, stderr := run(t, "", "experiments")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"E1 —", "E5 —", "E10 —"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("missing %q in experiments output", want)
		}
	}
}
