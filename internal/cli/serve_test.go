package cli

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// freePort reserves an ephemeral loopback port and releases it for the test
// to reuse. The close-then-rebind window is a real race, but ephemeral-port
// reuse on loopback in a fresh test process makes collisions vanishingly
// rare — and a collision fails loudly, not silently.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// writePeers writes a peers file mapping each node id to addrs[id].
func writePeers(t *testing.T, addrs []string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("# node address\n")
	for id, a := range addrs {
		fmt.Fprintf(&b, "%d %s\n", id, a)
	}
	path := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// finalsOf extracts sorted "final <id> <hex>" lines from command output.
func finalsOf(out string) []string {
	var finals []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "final ") {
			finals = append(finals, line)
		}
	}
	sort.Strings(finals)
	return finals
}

// TestServeAllLocalMatchesRunOracle hosts every node of the cluster in one
// serve process — still over real loopback sockets — and requires its hex
// finals to be bit-identical to the sequential simulator's (`run -finals`):
// the single-process corner of the cross-process conformance gate.
func TestServeAllLocalMatchesRunOracle(t *testing.T) {
	code, oracleOut, stderr := run(t, "", "run",
		"-topo", "complete:4", "-f", "0", "-eps", "0", "-rounds", "15", "-seed", "11", "-finals")
	if code != 0 {
		t.Fatalf("oracle exit = %d: %s", code, stderr)
	}
	want := finalsOf(oracleOut)
	if len(want) != 4 {
		t.Fatalf("oracle printed %d finals, want 4: %q", len(want), oracleOut)
	}

	addr := freePort(t)
	peers := writePeers(t, []string{addr, addr, addr, addr})
	code, serveOut, stderr := run(t, "", "serve",
		"-topo", "complete:4", "-id", "0,1,2,3", "-peers", peers,
		"-f", "0", "-rounds", "15", "-seed", "11", "-stall", "10s", "-linger", "0s")
	if code != 0 {
		t.Fatalf("serve exit = %d: %s%s", code, serveOut, stderr)
	}
	got := finalsOf(serveOut)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("serve finals differ from oracle:\nserve:\n%s\noracle:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	if !strings.Contains(serveOut, "verdict: max rounds") {
		t.Errorf("verdict line missing or wrong: %q", serveOut)
	}
	if !strings.Contains(serveOut, "validity: held") {
		t.Errorf("validity line missing: %q", serveOut)
	}
}

func TestServePeersFileErrors(t *testing.T) {
	addr := freePort(t)
	cases := map[string]string{
		"missing-node":  "0 " + addr + "\n1 " + addr + "\n", // complete:3 needs node 2
		"bad-id":        "zero " + addr + "\n1 " + addr + "\n2 " + addr + "\n",
		"duplicate":     "0 " + addr + "\n0 " + addr + "\n2 " + addr + "\n",
		"excess-fields": "0 " + addr + " extra\n1 " + addr + "\n2 " + addr + "\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "peers.txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			code, _, stderr := run(t, "", "serve",
				"-topo", "complete:3", "-id", "0", "-peers", path, "-rounds", "2")
			if code != 1 {
				t.Errorf("exit = %d, want 1 (stderr %q)", code, stderr)
			}
		})
	}
	t.Run("no-peers-flag", func(t *testing.T) {
		code, _, stderr := run(t, "", "serve", "-topo", "complete:3", "-id", "0")
		if code != 1 || !strings.Contains(stderr, "-peers") {
			t.Errorf("exit = %d, stderr = %q", code, stderr)
		}
	})
	t.Run("no-id-flag", func(t *testing.T) {
		path := writePeers(t, []string{addr, addr, addr})
		code, _, stderr := run(t, "", "serve", "-topo", "complete:3", "-peers", path)
		if code != 1 || !strings.Contains(stderr, "-id") {
			t.Errorf("exit = %d, stderr = %q", code, stderr)
		}
	})
	t.Run("split-local-addresses", func(t *testing.T) {
		other := freePort(t)
		path := writePeers(t, []string{addr, other, addr})
		code, _, stderr := run(t, "", "serve",
			"-topo", "complete:3", "-id", "0,1", "-peers", path, "-rounds", "2")
		if code != 1 || !strings.Contains(stderr, "one listener") {
			t.Errorf("exit = %d, stderr = %q", code, stderr)
		}
	})
}
