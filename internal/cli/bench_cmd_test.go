package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchCommandWritesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("bench measures for ~1s per hot path")
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	code, stdout, stderr := run(t, "", "bench", "-short", "-out", path,
		"-notes", "unit-test run")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"trimmed-mean/fast", "engine/sequential", "engine/matrix-batch64", "wrote "} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art BenchArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Go == "" || art.Date == "" || len(art.Results) < 5 {
		t.Fatalf("artifact incomplete: %+v", art)
	}
	if art.Notes != "unit-test run" {
		t.Errorf("notes = %q", art.Notes)
	}
	for _, r := range art.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Errorf("bad result row: %+v", r)
		}
		if r.Name == "trimmed-mean/fast/indeg=15,f=3" && r.AllocsPerOp != 0 {
			t.Errorf("fast path allocates: %+v", r)
		}
	}
}

func TestBenchCommandBadFlag(t *testing.T) {
	code, _, _ := run(t, "", "bench", "-no-such-flag")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

func TestCompareArtifacts(t *testing.T) {
	baseline := &BenchArtifact{Results: []BenchResult{
		{Name: "engine/sequential/core_n16_f2", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "engine/matrix/core_n16_f2", NsPerOp: 2000, AllocsPerOp: 0},
		{Name: "retired/benchmark", NsPerOp: 1},
	}}
	cases := []struct {
		name    string
		fresh   []BenchResult
		wantReg int
	}{
		{"identical", []BenchResult{
			{Name: "engine/sequential/core_n16_f2", NsPerOp: 1000, AllocsPerOp: 100},
		}, 0},
		{"within threshold", []BenchResult{
			{Name: "engine/sequential/core_n16_f2", NsPerOp: 1200, AllocsPerOp: 110},
		}, 0},
		{"ns regression", []BenchResult{
			{Name: "engine/sequential/core_n16_f2", NsPerOp: 1600, AllocsPerOp: 100},
		}, 1},
		{"alloc regression", []BenchResult{
			{Name: "engine/sequential/core_n16_f2", NsPerOp: 1000, AllocsPerOp: 200},
		}, 1},
		{"alloc jitter below slack ignored", []BenchResult{
			{Name: "engine/matrix/core_n16_f2", NsPerOp: 2000, AllocsPerOp: 8},
		}, 0},
		{"both regress", []BenchResult{
			{Name: "engine/sequential/core_n16_f2", NsPerOp: 9999, AllocsPerOp: 999},
		}, 2},
		{"new benchmark skipped", []BenchResult{
			{Name: "engine/brand-new/thing", NsPerOp: 1e9, AllocsPerOp: 1e6},
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs := compareArtifacts(&BenchArtifact{Results: tc.fresh}, baseline, 0.25)
			if len(regs) != tc.wantReg {
				t.Errorf("regressions = %d (%v), want %d", len(regs), regs, tc.wantReg)
			}
		})
	}
}

func TestBenchCompareMissingBaseline(t *testing.T) {
	// The baseline loads before any measurement, so this fails fast.
	code, _, stderr := run(t, "", "bench", "-short", "-out", "-",
		"-compare", filepath.Join(t.TempDir(), "absent.json"))
	if code != 1 || !strings.Contains(stderr, "baseline") {
		t.Errorf("missing baseline should fail: code=%d stderr=%q", code, stderr)
	}
}
