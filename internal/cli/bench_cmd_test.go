package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchCommandWritesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("bench measures for ~1s per hot path")
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	code, stdout, stderr := run(t, "", "bench", "-short", "-out", path,
		"-notes", "unit-test run")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"trimmed-mean/fast", "engine/sequential", "engine/matrix-batch64", "wrote "} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art BenchArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Go == "" || art.Date == "" || len(art.Results) < 5 {
		t.Fatalf("artifact incomplete: %+v", art)
	}
	if art.Notes != "unit-test run" {
		t.Errorf("notes = %q", art.Notes)
	}
	for _, r := range art.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Errorf("bad result row: %+v", r)
		}
		if r.Name == "trimmed-mean/fast/indeg=15,f=3" && r.AllocsPerOp != 0 {
			t.Errorf("fast path allocates: %+v", r)
		}
	}
}

func TestBenchCommandBadFlag(t *testing.T) {
	code, _, _ := run(t, "", "bench", "-no-such-flag")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}
