package cli

// The distributed pair: `iabc coordinate` runs a maxf scan whose fault-set
// ranges are leased out over the job protocol, and `iabc work` joins a
// coordinator and processes them. Both speak through the public facade
// (WithCoordinator / WithWorkerPool / Work); the maxf and work report lines
// are printed by the same helper cmdMaxF uses, so a distributed run diffs
// byte-identical against a single-process one — the CI distributed gate
// relies on this.

import (
	"context"
	"flag"
	"fmt"
	"io"

	"iabc"
)

func cmdCoordinate(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("coordinate", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	listen := fs.String("listen", "127.0.0.1:0", "address to serve the job protocol on; workers join with `iabc work -join`")
	stateDir := fs.String("state-dir", "", "checkpoint/resume directory: the durable frontier is byte-identical to a single-process run's")
	pool := fs.Int("pool", 0, "local in-process workers to start alongside external ones")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	opts := []iabc.Option{iabc.WithCoordinator(*listen)}
	if *stateDir != "" {
		opts = append(opts, iabc.WithStateDir(*stateDir))
	}
	if *pool > 0 {
		opts = append(opts, iabc.WithWorkerPool(*pool))
	}
	// The scheduling summary arrives once the scan completes; everything
	// before it runs through the exact same MaxFWithStats path as `iabc maxf`.
	var summary iabc.Event
	opts = append(opts, iabc.WithObserver(func(e iabc.Event) {
		if e.Kind == iabc.EventCoordinator {
			summary = e
		}
	}))
	fmt.Fprintf(stdout, "coordinate: serving jobs on %s\n", *listen)
	maxF, stats, err := iabc.MaxFWithStats(context.Background(), g, opts...)
	if err != nil {
		return err
	}
	printMaxFReport(stdout, g, maxF, stats)
	// Off the maxf/work/state lines, like the resume provenance.
	fmt.Fprintf(stdout, "distrib: %d worker(s) joined at %s, %d job(s) granted\n",
		summary.Total, summary.Name, summary.Done)
	return nil
}

func cmdWork(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	join := fs.String("join", "", "coordinator address to join (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("cli: -join is required")
	}
	fmt.Fprintf(stdout, "worker: joining %s\n", *join)
	if err := iabc.Work(context.Background(), *join); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "worker: coordinator finished, exiting")
	return nil
}
