package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"time"

	"iabc"
)

// cmdCluster runs the live actor cluster — goroutine-per-node Section 7
// iteration over an in-process transport, optionally behind the seeded
// chaos layer — and reports the stop verdict plus the robustness counters.
func cmdCluster(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	f := fs.Int("f", 1, "fault-tolerance parameter")
	faultyList := fs.String("faulty", "", "comma-separated faulty node IDs")
	advName := fs.String("adversary", "extremes", "byzantine strategy")
	rounds := fs.Int("rounds", 1000, "maximum rounds per node")
	eps := fs.Float64("eps", 1e-6, "convergence threshold on U−µ (0 = run all rounds)")
	seed := fs.Int64("seed", 1, "seed for initial values, randomized adversaries, and chaos")
	drop := fs.Float64("drop", 0, "chaos: per-message drop probability")
	dup := fs.Float64("dup", 0, "chaos: per-message duplication probability")
	delay := fs.Duration("delay", 0, "chaos: max per-message reordering delay")
	resend := fs.Duration("resend", 0, "initial stall-triggered resend interval (0 = default)")
	stall := fs.Duration("stall", 5*time.Second, "liveness cutoff: give up after this long without progress (0 = none)")
	timeout := fs.Duration("timeout", 0, "cancel the whole run after this long (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	n := g.N()
	ids, err := parseNodeList(*faultyList)
	if err != nil {
		return err
	}
	strat, err := iabc.AdversaryByName(*advName, *seed)
	if err != nil {
		return err
	}
	initial := make([]float64, n)
	rng := rand.New(rand.NewSource(*seed))
	for i := range initial {
		initial[i] = rng.Float64() * 100
	}
	opts := []iabc.Option{
		iabc.WithF(*f),
		iabc.WithFaulty(ids...),
		iabc.WithInitial(initial),
		iabc.WithAdversary(strat),
		iabc.WithMaxRounds(*rounds),
		iabc.WithEpsilon(*eps),
		iabc.WithResendEvery(*resend),
		iabc.WithStallAfter(*stall),
	}
	chaotic := *drop > 0 || *dup > 0 || *delay > 0
	if chaotic {
		opts = append(opts, iabc.WithChaos(iabc.ChaosConfig{
			Seed: *seed, Drop: *drop, Dup: *dup, MaxDelay: *delay,
		}))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := iabc.Cluster(ctx, g, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %s  f=%d  faulty=%s  adversary=%s  chaos=%v\n",
		g, *f, iabc.SetOf(n, ids...), strat.Name(), chaotic)
	verdict := "max rounds"
	switch {
	case res.Converged:
		verdict = "converged"
	case res.Stalled:
		verdict = "stalled"
	}
	faultFree := iabc.SetOf(n, ids...).Complement()
	fmt.Fprintf(stdout, "verdict: %s  min round: %d  final range: %.3e  elapsed: %s\n",
		verdict, res.MinRound(faultFree), res.FinalRange, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "traffic: %d deliveries, %d updates, %d resends, %d abandoned sends, %d queue drops, %d restarts\n",
		res.Deliveries, res.Updates, res.Resends, res.Abandoned, res.OutDropped, res.Restarts)
	return nil
}
