package cli

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"strconv"

	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
	"iabc/internal/workload"
)

// cmdRepair implements `iabc repair`.
func cmdRepair(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	f := fs.Int("f", 1, "fault-tolerance target")
	maxEdges := fs.Int("max-edges", 100, "edge-addition budget")
	emit := fs.Bool("emit", false, "print the repaired topology as an edge list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	res, err := condition.Repair(g, *f, *maxEdges)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %s  f=%d\n", g, *f)
	if len(res.Added) == 0 {
		fmt.Fprintln(stdout, "already satisfies the condition — no edges needed")
	} else {
		fmt.Fprintf(stdout, "repaired with %d added edge(s) in %d iteration(s):\n", len(res.Added), res.Iterations)
		for _, e := range res.Added {
			fmt.Fprintf(stdout, "  add %d -> %d\n", e[0], e[1])
		}
	}
	if *emit {
		return res.Repaired.WriteEdgeList(stdout)
	}
	return nil
}

// cmdSweep implements `iabc sweep`: for a topology family and a range of n,
// report condition verdict, α, and rounds-to-ε under a chosen adversary as
// CSV — the raw series behind convergence-vs-size figures.
func cmdSweep(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	family := fs.String("family", "core", "core|chord|complete|circulant")
	f := fs.Int("f", 1, "fault-tolerance parameter")
	from := fs.Int("from", 0, "first n (default: smallest legal)")
	to := fs.Int("to", 12, "last n (inclusive)")
	eps := fs.Float64("eps", 1e-6, "convergence threshold")
	advName := fs.String("adversary", "extremes", "byzantine strategy")
	rounds := fs.Int("rounds", 100000, "round cap per point")
	seed := fs.Int64("seed", 1, "seed for randomized pieces")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var build func(n int) (*graph.Graph, error)
	switch *family {
	case "core":
		build = func(n int) (*graph.Graph, error) { return topology.CoreNetwork(n, *f) }
	case "chord":
		build = func(n int) (*graph.Graph, error) { return topology.Chord(n, *f) }
	case "complete":
		build = func(n int) (*graph.Graph, error) { return topology.Complete(n) }
	case "circulant":
		build = func(n int) (*graph.Graph, error) {
			offs := make([]int, 2*(*f)+1)
			for i := range offs {
				offs[i] = i + 1
			}
			return topology.Circulant(n, offs)
		}
	default:
		return fmt.Errorf("cli: unknown family %q (core|chord|complete|circulant)", *family)
	}
	if *from == 0 {
		*from = 3*(*f) + 1
	}
	if *from > *to {
		return fmt.Errorf("cli: empty range %d..%d", *from, *to)
	}

	strat, err := adversaryByName(*advName, *seed)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(stdout)
	if err := cw.Write([]string{"family", "n", "f", "satisfied", "rounds_to_eps", "converged"}); err != nil {
		return err
	}
	for n := *from; n <= *to; n++ {
		g, err := build(n)
		if err != nil {
			// Families have their own minimum sizes; skip points below.
			continue
		}
		chk, err := condition.CheckParallel(g, *f, 0)
		if err != nil {
			return err
		}
		row := []string{*family, strconv.Itoa(n), strconv.Itoa(*f), strconv.FormatBool(chk.Satisfied), "", ""}
		if chk.Satisfied {
			fset := firstNodes(n, *f)
			tr, err := sim.Sequential{}.Run(sim.Config{
				G: g, F: *f, Faulty: fset,
				Initial:   workload.Bimodal(n, 0, 1),
				Rule:      core.TrimmedMean{},
				Adversary: strat,
				MaxRounds: *rounds, Epsilon: *eps,
			})
			if err != nil {
				return err
			}
			row[4] = strconv.Itoa(tr.Rounds)
			row[5] = strconv.FormatBool(tr.Converged)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// firstNodes returns {0, ..., k-1} over n nodes — the sweep places faults
// on the lowest IDs, which in core networks is inside the core (the
// hardest position).
func firstNodes(n, k int) nodeset.Set {
	s := nodeset.New(n)
	for i := 0; i < k && i < n; i++ {
		s.Add(i)
	}
	return s
}
