package cli

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"strings"

	"iabc"
	"iabc/internal/workload"
)

// cmdRepair implements `iabc repair`.
func cmdRepair(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	f := fs.Int("f", 1, "fault-tolerance target")
	maxEdges := fs.Int("max-edges", 100, "edge-addition budget")
	emit := fs.Bool("emit", false, "print the repaired topology as an edge list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	res, err := iabc.Repair(g, *f, *maxEdges)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %s  f=%d\n", g, *f)
	if len(res.Added) == 0 {
		fmt.Fprintln(stdout, "already satisfies the condition — no edges needed")
	} else {
		fmt.Fprintf(stdout, "repaired with %d added edge(s) in %d iteration(s):\n", len(res.Added), res.Iterations)
		for _, e := range res.Added {
			fmt.Fprintf(stdout, "  add %d -> %d\n", e[0], e[1])
		}
	}
	if *emit {
		return res.Repaired.WriteEdgeList(stdout)
	}
	return nil
}

// cmdSweep implements `iabc sweep`: for a topology family and a range of n,
// report condition verdict, α, and rounds-to-ε under a chosen adversary as
// CSV — the raw series behind convergence-vs-size figures.
//
// With -adversaries a,b,c every point is re-simulated under each listed
// strategy through iabc.Sweep, which shares the per-graph engine setup
// (pooled runners) across the batch; -engine selects which pooled engine
// runs the scenarios and -workers fans them across cores (0 = GOMAXPROCS).
// With -engine matrix, -batch K composes the second batching dimension:
// each scenario's recorded round programs are replayed over K perturbed
// initial vectors and the per-row scenario_final_range_max column reports
// the worst final range across them. The legacy -scenarios K flag is the
// single-config form of the same replay (base adversary only).
//
// Any failing scenario aborts the sweep with a non-zero exit and an error
// naming the scenario's index and name — the same contract on every
// engine, pinned by TestSweepNamesFailingScenario.
func cmdSweep(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	family := fs.String("family", "core", "core|chord|complete|circulant")
	f := fs.Int("f", 1, "fault-tolerance parameter")
	from := fs.Int("from", 0, "first n (default: smallest legal)")
	to := fs.Int("to", 12, "last n (inclusive)")
	eps := fs.Float64("eps", 1e-6, "convergence threshold")
	advName := fs.String("adversary", "extremes", "byzantine strategy")
	advList := fs.String("adversaries", "", "comma-separated strategies; each point is run under all of them via the batched scenario engine")
	rounds := fs.Int("rounds", 100000, "round cap per point")
	seed := fs.Int64("seed", 1, "seed for randomized pieces")
	engineName := fs.String("engine", "sequential", "sequential|concurrent|matrix")
	scenarios := fs.Int("scenarios", 0, "batched what-if initial vectors per point (matrix engine replay of the base adversary)")
	batch := fs.Int("batch", 0, "matrix-replay initial vectors per scenario row (composes with -adversaries; requires -engine matrix)")
	workers := fs.Int("workers", 1, "parallel scenario workers per point (0 = GOMAXPROCS); scenarios run bit-identically at any worker count")
	stateDir := fs.String("state-dir", "", "checkpoint/resume directory: completed scenarios of an interrupted sweep are resumed, not re-simulated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenarios < 0 {
		return fmt.Errorf("cli: negative scenarios %d", *scenarios)
	}
	if *batch < 0 {
		return fmt.Errorf("cli: negative batch %d", *batch)
	}
	engineSet := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "engine" {
			engineSet = true
		}
	})
	if *scenarios > 0 {
		// The scenarios column is a matrix-engine replay; an explicitly
		// chosen different engine would be silently ignored, so reject it.
		if engineSet && *engineName != "matrix" {
			return fmt.Errorf("cli: -scenarios uses the matrix engine's batched replay; drop -engine %s or use -engine matrix", *engineName)
		}
		if *advList != "" {
			return fmt.Errorf("cli: -scenarios (initial-vector replay) and -adversaries (scenario batch) are separate batching dimensions; use -batch to compose them")
		}
		if *batch > 0 {
			return fmt.Errorf("cli: -scenarios and -batch are the same replay dimension; use -batch (per scenario row) or -scenarios (base config only), not both")
		}
		*engineName = "matrix"
	}
	if *batch > 0 {
		// -batch is the composed replay: it rides on the scenario sweep, so
		// it needs the matrix engine. Auto-select it when -engine is unset.
		if engineSet && *engineName != "matrix" {
			return fmt.Errorf("cli: -batch replays recorded matrix programs; drop -engine %s or use -engine matrix", *engineName)
		}
		*engineName = "matrix"
	}
	engine, err := engineByName(*engineName)
	if err != nil {
		return err
	}
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}

	var build func(n int) (*iabc.Graph, error)
	switch *family {
	case "core":
		build = func(n int) (*iabc.Graph, error) { return iabc.CoreNetwork(n, *f) }
	case "chord":
		build = func(n int) (*iabc.Graph, error) { return iabc.Chord(n, *f) }
	case "complete":
		build = func(n int) (*iabc.Graph, error) { return iabc.Complete(n) }
	case "circulant":
		build = func(n int) (*iabc.Graph, error) {
			offs := make([]int, 2*(*f)+1)
			for i := range offs {
				offs[i] = i + 1
			}
			return iabc.Circulant(n, offs)
		}
	default:
		return fmt.Errorf("cli: unknown family %q (core|chord|complete|circulant)", *family)
	}
	if *from == 0 {
		*from = 3*(*f) + 1
	}
	if *from > *to {
		return fmt.Errorf("cli: empty range %d..%d", *from, *to)
	}

	advNames := []string{*advName}
	if *advList != "" {
		advNames = strings.Split(*advList, ",")
	}
	strats := make([]iabc.Strategy, len(advNames))
	for i, name := range advNames {
		name = strings.TrimSpace(name)
		advNames[i] = name
		if strats[i], err = iabc.AdversaryByName(name, *seed); err != nil {
			return err
		}
	}
	// The scenario-sweep path covers both multi-adversary batches and the
	// composed -batch replay (which works on the single base adversary too).
	useSweep := *advList != "" || *batch > 0
	cw := csv.NewWriter(stdout)
	if err := cw.Write([]string{"family", "n", "f", "engine", "workers", "adversary", "satisfied", "rounds_to_eps", "converged", "scenario_final_range_max"}); err != nil {
		return err
	}
	// maxFinalRange is the worst fault-free final range across a batch of
	// replayed final-state vectors.
	maxFinalRange := func(finals [][]float64, faultFree iabc.Set) string {
		maxRange := 0.0
		for _, final := range finals {
			lo, hi := math.Inf(1), math.Inf(-1)
			faultFree.ForEach(func(i int) bool {
				lo = math.Min(lo, final[i])
				hi = math.Max(hi, final[i])
				return true
			})
			maxRange = math.Max(maxRange, hi-lo)
		}
		return strconv.FormatFloat(maxRange, 'e', 3, 64)
	}
	// perturbedInitials builds the replay vectors for one point, shared by
	// the legacy -scenarios path and the composed -batch path.
	perturbedInitials := func(n, k int) [][]float64 {
		extras := make([][]float64, k)
		rng := rand.New(rand.NewSource(*seed + int64(n)))
		for x := range extras {
			v := workload.Bimodal(n, 0, 1)
			for i := range v {
				v[i] += rng.Float64() * 0.5
			}
			extras[x] = v
		}
		return extras
	}
	ctx := context.Background()
	for n := *from; n <= *to; n++ {
		g, err := build(n)
		if err != nil {
			// Families have their own minimum sizes; skip points below.
			continue
		}
		chk, err := iabc.Check(ctx, g, *f, iabc.WithWorkers(0))
		if err != nil {
			return err
		}
		faultyIDs := firstNodes(n, *f)
		baseOpts := func(extra ...iabc.Option) []iabc.Option {
			opts := []iabc.Option{
				iabc.WithEngine(engine),
				iabc.WithF(*f),
				iabc.WithFaulty(faultyIDs...),
				iabc.WithInitial(workload.Bimodal(n, 0, 1)),
				iabc.WithAdversary(strats[0]),
				iabc.WithMaxRounds(*rounds),
				iabc.WithEpsilon(*eps),
			}
			if *stateDir != "" {
				opts = append(opts, iabc.WithStateDir(*stateDir), iabc.WithSeed(*seed))
			}
			return append(opts, extra...)
		}
		var traces []*iabc.Trace
		rowRanges := make([]string, len(advNames))
		rowWorkers := 1
		if chk.Satisfied {
			switch {
			case *scenarios > 0:
				// Matrix replay of the base adversary: a one-scenario sweep
				// carrying the extra initial vectors.
				res, err := iabc.Sweep(ctx, g, []iabc.Scenario{{Name: advNames[0]}},
					baseOpts(iabc.WithExtras(perturbedInitials(n, *scenarios)))...)
				if err != nil {
					return err
				}
				rowRanges[0] = maxFinalRange(res.Finals[0], res.Traces[0].FaultFree)
				traces = res.Traces
			case useSweep:
				// One pooled engine setup per worker per point, re-simulated
				// under every listed adversary; with -batch each scenario's
				// recorded programs also replay the perturbed initials.
				scens := make([]iabc.Scenario, len(strats))
				for i, s := range strats {
					scens[i] = iabc.Scenario{Name: advNames[i], Adversary: s}
				}
				opts := baseOpts(iabc.WithWorkers(*workers))
				if *batch > 0 {
					opts = append(opts, iabc.WithExtras(perturbedInitials(n, *batch)))
				}
				res, err := iabc.Sweep(ctx, g, scens, opts...)
				if err != nil {
					return err
				}
				traces = res.Traces
				for i := range res.Finals {
					rowRanges[i] = maxFinalRange(res.Finals[i], traces[i].FaultFree)
				}
				// Report what actually ran: a sweep never spins up more
				// workers than there are scenarios.
				rowWorkers = min(effWorkers, len(scens))
			default:
				out, err := iabc.Simulate(ctx, g, baseOpts()...)
				if err != nil {
					return err
				}
				traces = []*iabc.Trace{out.Trace}
			}
		}
		for i, name := range advNames {
			row := []string{*family, strconv.Itoa(n), strconv.Itoa(*f),
				engine.String(), strconv.Itoa(rowWorkers), name,
				strconv.FormatBool(chk.Satisfied), "", "", rowRanges[i]}
			if i < len(traces) {
				row[7] = strconv.Itoa(traces[i].Rounds)
				row[8] = strconv.FormatBool(traces[i].Converged)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// firstNodes returns {0, ..., k-1} — the sweep places faults on the lowest
// IDs, which in core networks is inside the core (the hardest position).
func firstNodes(n, k int) []int {
	var ids []int
	for i := 0; i < k && i < n; i++ {
		ids = append(ids, i)
	}
	return ids
}
