package cli

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
	"iabc/internal/workload"
)

// cmdRepair implements `iabc repair`.
func cmdRepair(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	f := fs.Int("f", 1, "fault-tolerance target")
	maxEdges := fs.Int("max-edges", 100, "edge-addition budget")
	emit := fs.Bool("emit", false, "print the repaired topology as an edge list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	res, err := condition.Repair(g, *f, *maxEdges)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %s  f=%d\n", g, *f)
	if len(res.Added) == 0 {
		fmt.Fprintln(stdout, "already satisfies the condition — no edges needed")
	} else {
		fmt.Fprintf(stdout, "repaired with %d added edge(s) in %d iteration(s):\n", len(res.Added), res.Iterations)
		for _, e := range res.Added {
			fmt.Fprintf(stdout, "  add %d -> %d\n", e[0], e[1])
		}
	}
	if *emit {
		return res.Repaired.WriteEdgeList(stdout)
	}
	return nil
}

// cmdSweep implements `iabc sweep`: for a topology family and a range of n,
// report condition verdict, α, and rounds-to-ε under a chosen adversary as
// CSV — the raw series behind convergence-vs-size figures.
//
// With -scenarios K > 0 the sweep additionally replays each point's
// recorded round structure (sim.Matrix.RunBatch) over K perturbed initial
// vectors — a sensitivity column at amortized per-round cost instead of K
// full re-simulations. With -adversaries a,b,c the sweep varies the other
// batching dimension: every point is re-simulated under each listed
// strategy through sim.RunScenarios, which shares the per-graph engine
// setup across the whole batch, and the CSV gains one row per adversary.
func cmdSweep(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	family := fs.String("family", "core", "core|chord|complete|circulant")
	f := fs.Int("f", 1, "fault-tolerance parameter")
	from := fs.Int("from", 0, "first n (default: smallest legal)")
	to := fs.Int("to", 12, "last n (inclusive)")
	eps := fs.Float64("eps", 1e-6, "convergence threshold")
	advName := fs.String("adversary", "extremes", "byzantine strategy")
	advList := fs.String("adversaries", "", "comma-separated strategies; each point is run under all of them via the batched scenario engine")
	rounds := fs.Int("rounds", 100000, "round cap per point")
	seed := fs.Int64("seed", 1, "seed for randomized pieces")
	engineName := fs.String("engine", "sequential", "sequential|concurrent|matrix")
	scenarios := fs.Int("scenarios", 0, "batched what-if initial vectors per point (matrix engine replay)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := engineByName(*engineName)
	if err != nil {
		return err
	}
	if *scenarios < 0 {
		return fmt.Errorf("cli: negative scenarios %d", *scenarios)
	}
	engineSet := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "engine" {
			engineSet = true
		}
	})
	if *scenarios > 0 {
		// The scenarios column is a matrix-engine replay; an explicitly
		// chosen different engine would be silently ignored, so reject it.
		if engineSet && *engineName != "matrix" {
			return fmt.Errorf("cli: -scenarios uses the matrix engine's batched replay; drop -engine %s or use -engine matrix", *engineName)
		}
		if *advList != "" {
			return fmt.Errorf("cli: -scenarios (initial-vector replay) and -adversaries (scenario batch) are separate batching dimensions; use one per sweep")
		}
	}
	if *advList != "" && engineSet && *engineName != "sequential" {
		return fmt.Errorf("cli: -adversaries runs the batched sequential scenario engine; drop -engine %s", *engineName)
	}

	var build func(n int) (*graph.Graph, error)
	switch *family {
	case "core":
		build = func(n int) (*graph.Graph, error) { return topology.CoreNetwork(n, *f) }
	case "chord":
		build = func(n int) (*graph.Graph, error) { return topology.Chord(n, *f) }
	case "complete":
		build = func(n int) (*graph.Graph, error) { return topology.Complete(n) }
	case "circulant":
		build = func(n int) (*graph.Graph, error) {
			offs := make([]int, 2*(*f)+1)
			for i := range offs {
				offs[i] = i + 1
			}
			return topology.Circulant(n, offs)
		}
	default:
		return fmt.Errorf("cli: unknown family %q (core|chord|complete|circulant)", *family)
	}
	if *from == 0 {
		*from = 3*(*f) + 1
	}
	if *from > *to {
		return fmt.Errorf("cli: empty range %d..%d", *from, *to)
	}

	advNames := []string{*advName}
	if *advList != "" {
		advNames = strings.Split(*advList, ",")
	}
	strats := make([]adversary.Strategy, len(advNames))
	for i, name := range advNames {
		name = strings.TrimSpace(name)
		advNames[i] = name
		if strats[i], err = adversaryByName(name, *seed); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(stdout)
	if err := cw.Write([]string{"family", "n", "f", "adversary", "satisfied", "rounds_to_eps", "converged", "scenario_final_range_max"}); err != nil {
		return err
	}
	for n := *from; n <= *to; n++ {
		g, err := build(n)
		if err != nil {
			// Families have their own minimum sizes; skip points below.
			continue
		}
		chk, err := condition.CheckParallel(g, *f, 0)
		if err != nil {
			return err
		}
		cfg := sim.Config{
			G: g, F: *f, Faulty: firstNodes(n, *f),
			Initial:   workload.Bimodal(n, 0, 1),
			Rule:      core.TrimmedMean{},
			Adversary: strats[0],
			MaxRounds: *rounds, Epsilon: *eps,
		}
		var traces []*sim.Trace
		scenarioRange := ""
		if chk.Satisfied {
			switch {
			case *scenarios > 0:
				extras := make([][]float64, *scenarios)
				rng := rand.New(rand.NewSource(*seed + int64(n)))
				for x := range extras {
					v := workload.Bimodal(n, 0, 1)
					for i := range v {
						v[i] += rng.Float64() * 0.5
					}
					extras[x] = v
				}
				tr, finals, err := sim.Matrix{}.RunBatch(cfg, extras)
				if err != nil {
					return err
				}
				maxRange := 0.0
				for _, final := range finals {
					lo, hi := math.Inf(1), math.Inf(-1)
					tr.FaultFree.ForEach(func(i int) bool {
						lo = math.Min(lo, final[i])
						hi = math.Max(hi, final[i])
						return true
					})
					maxRange = math.Max(maxRange, hi-lo)
				}
				scenarioRange = strconv.FormatFloat(maxRange, 'e', 3, 64)
				traces = []*sim.Trace{tr}
			case len(strats) > 1:
				// One shared engine setup per point, re-simulated under
				// every listed adversary.
				scens := make([]sim.Scenario, len(strats))
				for i, s := range strats {
					scens[i] = sim.Scenario{Name: advNames[i], Adversary: s}
				}
				if traces, err = sim.RunScenarios(cfg, scens); err != nil {
					return err
				}
			default:
				tr, err := engine.Run(cfg)
				if err != nil {
					return err
				}
				traces = []*sim.Trace{tr}
			}
		}
		for i, name := range advNames {
			row := []string{*family, strconv.Itoa(n), strconv.Itoa(*f), name,
				strconv.FormatBool(chk.Satisfied), "", "", scenarioRange}
			if i < len(traces) {
				row[5] = strconv.Itoa(traces[i].Rounds)
				row[6] = strconv.FormatBool(traces[i].Converged)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// firstNodes returns {0, ..., k-1} over n nodes — the sweep places faults
// on the lowest IDs, which in core networks is inside the core (the
// hardest position).
func firstNodes(n, k int) nodeset.Set {
	s := nodeset.New(n)
	for i := 0; i < k && i < n; i++ {
		s.Add(i)
	}
	return s
}
