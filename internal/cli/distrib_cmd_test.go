package cli

import (
	"regexp"
	"strings"
	"testing"
)

// reportLines extracts the lines the distributed gate diffs: maxf, work, and
// state (resume provenance must also agree between the two paths).
func reportLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "maxf:") || strings.HasPrefix(line, "work:") ||
			strings.HasPrefix(line, "state:") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// TestCoordinateMatchesMaxF is the in-process version of the CI distributed
// gate: `iabc coordinate` with a local worker pool prints maxf/work lines
// byte-identical to `iabc maxf`.
func TestCoordinateMatchesMaxF(t *testing.T) {
	code, oracle, stderr := run(t, "", "maxf", "-topo", "chord:11,3")
	if code != 0 {
		t.Fatalf("maxf exit = %d, stderr=%q", code, stderr)
	}
	code, distributed, stderr := run(t, "",
		"coordinate", "-topo", "chord:11,3", "-listen", "127.0.0.1:0", "-pool", "2")
	if code != 0 {
		t.Fatalf("coordinate exit = %d, stderr=%q", code, stderr)
	}
	if got, want := reportLines(distributed), reportLines(oracle); got != want {
		t.Fatalf("distributed report differs:\n%s\nwant:\n%s", got, want)
	}
	if m := regexp.MustCompile(`(?m)^distrib: 2 worker\(s\) joined at 127\.0\.0\.1:\d+, \d+ job\(s\) granted$`).FindString(distributed); m == "" {
		t.Fatalf("missing distrib summary line in:\n%s", distributed)
	}
}

// TestCoordinateSharesStateDir runs a distributed scan into a state dir and
// then a single-process one over the same dir: every verdict must be served
// from the distributed run's durable frontier.
func TestCoordinateSharesStateDir(t *testing.T) {
	dir := t.TempDir()
	code, first, stderr := run(t, "",
		"coordinate", "-topo", "chord:7,2", "-state-dir", dir, "-pool", "2")
	if code != 0 {
		t.Fatalf("coordinate exit = %d, stderr=%q", code, stderr)
	}
	if strings.Contains(first, "state:") {
		t.Fatalf("fresh run claims resumed state:\n%s", first)
	}
	code, second, stderr := run(t, "", "maxf", "-topo", "chord:7,2", "-state-dir", dir)
	if code != 0 {
		t.Fatalf("maxf exit = %d, stderr=%q", code, stderr)
	}
	if !strings.Contains(second, "verdict cache hits") {
		t.Fatalf("single-process run did not hit the distributed run's cache:\n%s", second)
	}
	// Cached verdicts restore the original counters, so the maxf/work lines
	// still agree; only the state provenance line differs by design.
	strip := func(report string) string {
		var keep []string
		for _, line := range strings.Split(report, "\n") {
			if !strings.HasPrefix(line, "state:") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if got, want := strip(reportLines(second)), strip(reportLines(first)); got != want {
		t.Fatalf("cached report diverged:\n%s\nwant:\n%s", got, want)
	}
}

func TestWorkRequiresJoin(t *testing.T) {
	code, _, stderr := run(t, "", "work")
	if code != 1 || !strings.Contains(stderr, "-join is required") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}
