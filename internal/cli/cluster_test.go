package cli

import (
	"strings"
	"testing"
)

func TestClusterConverges(t *testing.T) {
	code, stdout, stderr := run(t, "", "cluster",
		"-topo", "complete:6", "-f", "1", "-faulty", "5",
		"-adversary", "extremes", "-rounds", "200", "-eps", "1e-6",
		"-resend", "2ms", "-stall", "10s")
	if code != 0 {
		t.Fatalf("exit = %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "verdict: converged") {
		t.Errorf("output: %q", stdout)
	}
	if !strings.Contains(stdout, "chaos=false") {
		t.Errorf("chaos flag line missing: %q", stdout)
	}
}

func TestClusterChaos(t *testing.T) {
	code, stdout, stderr := run(t, "", "cluster",
		"-topo", "complete:6", "-f", "1", "-faulty", "5",
		"-adversary", "hug-high", "-rounds", "200", "-eps", "1e-6",
		"-drop", "0.2", "-dup", "0.1", "-delay", "2ms",
		"-resend", "2ms", "-stall", "10s")
	if code != 0 {
		t.Fatalf("exit = %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "verdict: converged") {
		t.Errorf("output: %q", stdout)
	}
	if !strings.Contains(stdout, "chaos=true") || !strings.Contains(stdout, "resends") {
		t.Errorf("chaos/traffic lines missing: %q", stdout)
	}
}

func TestClusterBadAdversary(t *testing.T) {
	code, _, stderr := run(t, "", "cluster", "-topo", "complete:4", "-adversary", "nope")
	if code != 1 || !strings.Contains(stderr, "unknown adversary") {
		t.Errorf("exit = %d, stderr = %q", code, stderr)
	}
}
