// Package cli implements the iabc command. It is a consumer of the public
// iabc facade — the same API external programs use — plus the internal
// experiment harness; it does not reach into internal/sim or
// internal/condition directly (enforced by TestFacadeOnlyConsumers at the
// repository root).
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"iabc"
	"iabc/internal/experiments"
)

const usage = `iabc — iterative approximate Byzantine consensus (Vaidya, Tseng, Liang; PODC 2012)

Commands:
  check        decide the Theorem 1 condition exactly (add -async for §7)
  maxf         largest f the topology tolerates
  run          simulate Algorithm 1 under a Byzantine adversary
  cluster      run the live actor cluster, optionally under network chaos
  serve        run this process's nodes of a cross-process TCP cluster
  coordinate   run a maxf scan served to distributed workers as leased jobs
  work         join a coordinator and process its jobs until it finishes
  repair       add edges until the topology satisfies the condition
  sweep        family sweep (rounds-to-ε vs n) as CSV
  topo         emit the topology (edge list or DOT)
  experiments  regenerate every paper experiment table (E1–E15)
  bench        run the hot-path micro-benchmarks, write BENCH_<date>.json
  help         this text

Run 'iabc <command> -h' for command flags. Topology specs:
  complete:<n> core:<n>,<f> hypercube:<d> chord:<n>,<f> ring:<n> cycle:<n>
  wheel:<n> star:<n> grid:<r>,<c> torus:<r>,<c> random:<n>,<p>,<seed>
  file:<path>  -  (stdin edge list)
`

// Main dispatches the CLI and returns the process exit code.
func Main(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "check":
		err = cmdCheck(rest, stdin, stdout)
	case "maxf":
		err = cmdMaxF(rest, stdin, stdout)
	case "run":
		err = cmdRun(rest, stdin, stdout)
	case "cluster":
		err = cmdCluster(rest, stdin, stdout)
	case "serve":
		err = cmdServe(rest, stdin, stdout)
	case "coordinate":
		err = cmdCoordinate(rest, stdin, stdout)
	case "work":
		err = cmdWork(rest, stdout)
	case "repair":
		err = cmdRepair(rest, stdin, stdout)
	case "sweep":
		err = cmdSweep(rest, stdout)
	case "topo":
		err = cmdTopo(rest, stdin, stdout)
	case "experiments":
		err = experiments.RunAll(stdout)
	case "bench":
		err = cmdBench(rest, stdout)
	case "help", "-h", "--help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "iabc: unknown command %q\n\n%s", cmd, usage)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "iabc %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

func cmdCheck(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	f := fs.Int("f", 1, "fault-tolerance parameter")
	asyncMode := fs.Bool("async", false, "use the §7 asynchronous condition (threshold 2f+1)")
	stateDir := fs.String("state-dir", "", "checkpoint/resume directory: an interrupted check resumes here, a repeated one hits the verdict cache")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	screen := iabc.QuickScreen(g, *f)
	var opts []iabc.Option
	if *asyncMode {
		screen = iabc.QuickScreenAsync(g, *f)
		opts = append(opts, iabc.WithAsyncCondition())
	}
	if *stateDir != "" {
		opts = append(opts, iabc.WithStateDir(*stateDir))
	}
	for _, v := range screen {
		fmt.Fprintf(stdout, "screen: %s\n", v)
	}
	res, err := iabc.Check(context.Background(), g, *f, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %s  f=%d  async=%v\n", g, *f, *asyncMode)
	if res.Satisfied {
		fmt.Fprintf(stdout, "condition: SATISFIED — iterative approximate consensus is possible\n")
	} else {
		fmt.Fprintf(stdout, "condition: VIOLATED — witness %s\n", res.Witness)
	}
	fmt.Fprintf(stdout, "work: %d fault sets, %d candidate sets (%d pruned by degree bound, %d memo hits)\n",
		res.FaultSetsExamined, res.CandidatesExamined, res.CandidatesPruned, res.MemoHits)
	if res.CandidatesExamined > 0 {
		fmt.Fprintf(stdout, "pruned: %.1f%% of the candidate space skipped unvisited\n",
			100*float64(res.CandidatesPruned)/float64(res.CandidatesExamined))
	}
	// Resume/cache provenance stays off the verdict and work lines, so those
	// diff byte-identical between interrupted-and-resumed and uninterrupted
	// runs (the CI resume gate relies on this).
	if res.CacheHit {
		fmt.Fprintln(stdout, "state: verdict served from cache (no enumeration)")
	} else if res.FaultSetsResumed > 0 {
		fmt.Fprintf(stdout, "state: resumed past %d checkpointed fault sets\n", res.FaultSetsResumed)
	}
	return nil
}

func cmdMaxF(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("maxf", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	stateDir := fs.String("state-dir", "", "checkpoint/resume directory: an interrupted scan resumes here, a repeated one hits the verdict cache")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	var opts []iabc.Option
	if *stateDir != "" {
		opts = append(opts, iabc.WithStateDir(*stateDir))
	}
	maxF, stats, err := iabc.MaxFWithStats(context.Background(), g, opts...)
	if err != nil {
		return err
	}
	printMaxFReport(stdout, g, maxF, stats)
	return nil
}

// printMaxFReport prints the maxf result lines. cmdMaxF and cmdCoordinate
// share it so a distributed scan's maxf/work/state lines diff byte-identical
// against the single-process run (the CI distributed gate relies on this).
func printMaxFReport(stdout io.Writer, g *iabc.Graph, maxF int, stats iabc.MaxFStats) {
	fmt.Fprintf(stdout, "graph: %s\n", g)
	switch {
	case maxF < 0:
		fmt.Fprintln(stdout, "maxf: none — even f=0 fails (multiple source components)")
	default:
		fmt.Fprintf(stdout, "maxf: %d\n", maxF)
		if alpha, err := iabc.Alpha(g, maxF); err == nil {
			fmt.Fprintf(stdout, "alpha at maxf: %.6f\n", alpha)
		}
	}
	fmt.Fprintf(stdout, "work: %d checks, %d fault sets, %d candidate sets (%d pruned, %d memo hits)\n",
		stats.ChecksRun, stats.FaultSetsExamined, stats.CandidatesExamined,
		stats.CandidatesPruned, stats.MemoHits)
	// Provenance on its own line — the maxf/work lines diff byte-identical
	// between resumed and uninterrupted runs (the CI resume gate relies on
	// this).
	if stats.ChecksResumed > 0 || stats.FaultSetsResumed > 0 || stats.CacheHits > 0 {
		fmt.Fprintf(stdout, "state: %d checks replayed, %d fault sets resumed, %d verdict cache hits\n",
			stats.ChecksResumed, stats.FaultSetsResumed, stats.CacheHits)
	}
}

// engineByName resolves the -engine flag shared by run and sweep.
func engineByName(name string) (iabc.Engine, error) {
	switch name {
	case "sequential":
		return iabc.Sequential, nil
	case "concurrent":
		return iabc.ConcurrentPool, nil
	case "matrix":
		return iabc.Matrix, nil
	default:
		return 0, fmt.Errorf("cli: unknown engine %q (sequential|concurrent|matrix)", name)
	}
}

func cmdRun(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	f := fs.Int("f", 1, "fault-tolerance parameter")
	faultyList := fs.String("faulty", "", "comma-separated faulty node IDs")
	advName := fs.String("adversary", "extremes", "byzantine strategy")
	rounds := fs.Int("rounds", 10000, "maximum iterations")
	eps := fs.Float64("eps", 1e-6, "convergence threshold on U−µ (0 = run all rounds)")
	engineName := fs.String("engine", "sequential", "sequential|concurrent|matrix")
	seed := fs.Int64("seed", 1, "seed for randomized pieces")
	every := fs.Int("trace-every", 0, "print U, µ every k rounds (0 = summary only)")
	csvPath := fs.String("csv", "", "write the round-by-round trace as CSV to this file")
	finals := fs.Bool("finals", false, "print per-node finals as hex floats — the bit-exact oracle the multi-process gate diffs `iabc serve` output against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	n := g.N()
	ids, err := parseNodeList(*faultyList)
	if err != nil {
		return err
	}
	// Bounds checks on ids are the facade's job (WithFaulty/Simulate).
	strat, err := iabc.AdversaryByName(*advName, *seed)
	if err != nil {
		return err
	}
	engine, err := engineByName(*engineName)
	if err != nil {
		return err
	}
	initial := make([]float64, n)
	rng := rand.New(rand.NewSource(*seed))
	for i := range initial {
		initial[i] = rng.Float64() * 100
	}
	opts := []iabc.Option{
		iabc.WithEngine(engine),
		iabc.WithF(*f),
		iabc.WithFaulty(ids...),
		iabc.WithInitial(initial),
		iabc.WithAdversary(strat),
		iabc.WithMaxRounds(*rounds),
		iabc.WithEpsilon(*eps),
	}
	if *csvPath != "" {
		opts = append(opts, iabc.WithRecordStates())
	}
	out, err := iabc.Simulate(context.Background(), g, opts...)
	if err != nil {
		return err
	}
	tr := out.Trace
	if *csvPath != "" {
		file, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("cli: %w", err)
		}
		if err := tr.WriteCSV(file); err != nil {
			file.Close()
			return fmt.Errorf("cli: writing csv: %w", err)
		}
		if err := file.Close(); err != nil {
			return fmt.Errorf("cli: %w", err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *csvPath)
	}
	fmt.Fprintf(stdout, "graph: %s  f=%d  faulty=%s  adversary=%s  engine=%s\n",
		g, *f, iabc.SetOf(n, ids...), strat.Name(), engine)
	if *every > 0 {
		for r := 0; r <= tr.Rounds; r += *every {
			fmt.Fprintf(stdout, "round %6d  U=%.8f  µ=%.8f  range=%.3e\n",
				r, tr.U[r], tr.Mu[r], tr.Range(r))
		}
	}
	if *finals {
		faultFree := iabc.SetOf(n, ids...).Complement()
		faultFree.ForEach(func(i int) bool {
			fmt.Fprintf(stdout, "final %d %s\n", i, strconv.FormatFloat(out.Final[i], 'x', -1, 64))
			return true
		})
	}
	fmt.Fprintf(stdout, "rounds: %d  converged: %v  final range: %.3e\n",
		out.Rounds, out.Converged, out.FinalRange)
	if round, bad := tr.ValidityViolation(1e-9); bad {
		fmt.Fprintf(stdout, "VALIDITY VIOLATED at round %d\n", round)
	} else {
		fmt.Fprintln(stdout, "validity: held throughout")
	}
	return nil
}

func cmdTopo(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required)")
	format := fs.String("format", "edgelist", "edgelist|dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	switch *format {
	case "edgelist":
		return g.WriteEdgeList(stdout)
	case "dot":
		name := strings.ReplaceAll(*topoSpec, ":", "_")
		_, err := io.WriteString(stdout, g.DOT(name))
		return err
	default:
		return fmt.Errorf("cli: unknown format %q", *format)
	}
}
