// Package cli implements the iabc command-line tool. Command logic lives
// here — not in package main — so every path is unit-testable and main
// contains a single os.Exit.
package cli

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"iabc/internal/graph"
	"iabc/internal/topology"
)

// ParseTopo builds a graph from a topology spec string (see package main's
// doc comment for the grammar). stdin supplies the edge list for the "-"
// spec.
func ParseTopo(spec string, stdin io.Reader) (*graph.Graph, error) {
	if spec == "-" {
		return graph.ParseEdgeList(stdin)
	}
	name, argStr, _ := strings.Cut(spec, ":")
	var args []int
	var floatArgs []float64
	if argStr != "" {
		for _, part := range strings.Split(argStr, ",") {
			part = strings.TrimSpace(part)
			if iv, err := strconv.Atoi(part); err == nil {
				args = append(args, iv)
				floatArgs = append(floatArgs, float64(iv))
				continue
			}
			fv, err := strconv.ParseFloat(part, 64)
			if err != nil {
				if name == "file" {
					break // path, not numbers
				}
				return nil, fmt.Errorf("cli: bad argument %q in spec %q", part, spec)
			}
			args = append(args, int(fv))
			floatArgs = append(floatArgs, fv)
		}
	}
	need := func(k int) error {
		if len(args) != k {
			return fmt.Errorf("cli: spec %q needs %d argument(s), got %d", spec, k, len(args))
		}
		return nil
	}
	switch name {
	case "complete":
		if err := need(1); err != nil {
			return nil, err
		}
		return topology.Complete(args[0])
	case "core":
		if err := need(2); err != nil {
			return nil, err
		}
		return topology.CoreNetwork(args[0], args[1])
	case "hypercube":
		if err := need(1); err != nil {
			return nil, err
		}
		return topology.Hypercube(args[0])
	case "chord":
		if err := need(2); err != nil {
			return nil, err
		}
		return topology.Chord(args[0], args[1])
	case "ring":
		if err := need(1); err != nil {
			return nil, err
		}
		return topology.UndirectedRing(args[0])
	case "cycle":
		if err := need(1); err != nil {
			return nil, err
		}
		return topology.DirectedCycle(args[0])
	case "wheel":
		if err := need(1); err != nil {
			return nil, err
		}
		return topology.Wheel(args[0])
	case "star":
		if err := need(1); err != nil {
			return nil, err
		}
		return topology.Star(args[0])
	case "grid":
		if err := need(2); err != nil {
			return nil, err
		}
		return topology.Grid(args[0], args[1])
	case "torus":
		if err := need(2); err != nil {
			return nil, err
		}
		return topology.Torus(args[0], args[1])
	case "random":
		if err := need(3); err != nil {
			return nil, err
		}
		return topology.RandomDigraph(args[0], floatArgs[1], rand.New(rand.NewSource(int64(args[2]))))
	case "file":
		f, err := os.Open(argStr)
		if err != nil {
			return nil, fmt.Errorf("cli: %w", err)
		}
		defer f.Close()
		return graph.ParseEdgeList(f)
	default:
		return nil, fmt.Errorf("cli: unknown topology %q (see iabc help)", name)
	}
}

// parseNodeList parses "0,3,5" into node IDs.
func parseNodeList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("cli: bad node id %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
