package cli

import (
	"strings"
	"testing"
)

func TestRepairCommand(t *testing.T) {
	code, stdout, _ := run(t, "", "repair", "-topo", "chord:7,2", "-f", "2")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "repaired with") || !strings.Contains(stdout, "add ") {
		t.Errorf("output: %q", stdout)
	}
}

func TestRepairCommandNoOp(t *testing.T) {
	code, stdout, _ := run(t, "", "repair", "-topo", "core:7,2", "-f", "2")
	if code != 0 || !strings.Contains(stdout, "already satisfies") {
		t.Fatalf("code=%d out=%q", code, stdout)
	}
}

func TestRepairCommandEmit(t *testing.T) {
	code, stdout, _ := run(t, "", "repair", "-topo", "hypercube:3", "-f", "1", "-emit")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "n 8") {
		t.Errorf("emitted edge list missing: %q", stdout)
	}
}

func TestRepairCommandErrors(t *testing.T) {
	code, _, _ := run(t, "", "repair", "-topo", "complete:3", "-f", "1")
	if code != 1 {
		t.Error("n ≤ 3f should fail")
	}
	code, _, _ = run(t, "", "repair", "-topo", "hypercube:3", "-f", "1", "-max-edges", "1")
	if code != 1 {
		t.Error("tiny budget should fail")
	}
}

func TestSweepCore(t *testing.T) {
	code, stdout, stderr := run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "6", "-rounds", "5000")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if lines[0] != "family,n,f,engine,workers,adversary,satisfied,rounds_to_eps,converged,scenario_final_range_max" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // n = 4, 5, 6
		t.Fatalf("rows = %d, want 4:\n%s", len(lines), stdout)
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, "true") {
			t.Errorf("core row should satisfy and converge: %q", line)
		}
		if !strings.Contains(line, "extremes") {
			t.Errorf("adversary column missing: %q", line)
		}
	}
}

func TestSweepAdversaryBatch(t *testing.T) {
	code, stdout, stderr := run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "5",
		"-rounds", "5000", "-adversaries", "extremes,hug-high,insider-high")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 7 { // header + (n=4,5) × 3 adversaries
		t.Fatalf("rows = %d, want 7:\n%s", len(lines), stdout)
	}
	for _, name := range []string{"extremes", "hug-high", "insider-high"} {
		found := 0
		for _, line := range lines[1:] {
			cols := strings.Split(line, ",")
			if cols[5] == name {
				found++
				if cols[8] != "true" {
					t.Errorf("%s row did not converge: %q", name, line)
				}
				if cols[3] != "sequential" || cols[4] != "1" {
					t.Errorf("engine/workers columns wrong: %q", line)
				}
			}
		}
		if found != 2 {
			t.Errorf("adversary %s: %d rows, want 2", name, found)
		}
	}
}

// TestSweepWorkersAndEngines drives the scenario batch through every pooled
// engine and a parallel worker count; rows must converge identically.
func TestSweepWorkersAndEngines(t *testing.T) {
	var ref string
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"sequential-w1", nil},
		{"sequential-w4", []string{"-workers", "4"}},
		{"sequential-auto", []string{"-workers", "0"}},
		{"concurrent", []string{"-engine", "concurrent"}},
		{"matrix", []string{"-engine", "matrix"}},
		{"matrix-w4", []string{"-engine", "matrix", "-workers", "4"}},
	} {
		args := append([]string{"sweep", "-family", "core", "-f", "1", "-to", "5",
			"-rounds", "5000", "-adversaries", "extremes,hug-high,insider-high"}, tc.args...)
		code, stdout, stderr := run(t, "", args...)
		if code != 0 {
			t.Fatalf("%s: exit = %d, stderr = %q", tc.name, code, stderr)
		}
		lines := strings.Split(strings.TrimSpace(stdout), "\n")
		if len(lines) != 7 { // header + (n=4,5) × 3 adversaries
			t.Fatalf("%s: rows = %d, want 7:\n%s", tc.name, len(lines), stdout)
		}
		// rounds_to_eps/converged must agree across engines and worker
		// counts (bit-identical traces): compare rows minus the
		// engine/workers columns.
		var canon []string
		for _, line := range lines[1:] {
			cols := strings.Split(line, ",")
			canon = append(canon, strings.Join(append(cols[:3:3], cols[5:]...), ","))
		}
		joined := strings.Join(canon, "\n")
		if ref == "" {
			ref = joined
		} else if joined != ref {
			t.Errorf("%s: results differ from reference:\n%s\nvs\n%s", tc.name, joined, ref)
		}
	}
}

// TestSweepComposedBatch covers -batch: matrix-replay vectors per scenario
// row, composing with -adversaries.
func TestSweepComposedBatch(t *testing.T) {
	code, stdout, stderr := run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "5",
		"-rounds", "5000", "-adversaries", "extremes,hug-high", "-batch", "4", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 5 { // header + (n=4,5) × 2 adversaries
		t.Fatalf("rows = %d, want 5:\n%s", len(lines), stdout)
	}
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if cols[3] != "matrix" {
			t.Errorf("-batch must auto-select the matrix engine: %q", line)
		}
		if cols[9] == "" {
			t.Errorf("per-row scenario range missing: %q", line)
		}
	}
	// -batch alone (no -adversaries) replays the base adversary's scenario.
	code, stdout, stderr = run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "4",
		"-rounds", "5000", "-batch", "3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines = strings.Split(strings.TrimSpace(stdout), "\n")
	if cols := strings.Split(lines[1], ","); cols[9] == "" || cols[3] != "matrix" {
		t.Errorf("solo -batch row malformed: %q", lines[1])
	}
}

func TestSweepAdversariesFlagConflicts(t *testing.T) {
	code, _, stderr := run(t, "", "sweep", "-family", "core", "-adversaries", "extremes,hug-high", "-scenarios", "2")
	if code != 1 || !strings.Contains(stderr, "batching") {
		t.Errorf("-adversaries with -scenarios should be rejected: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = run(t, "", "sweep", "-family", "core", "-scenarios", "2", "-batch", "2")
	if code != 1 || !strings.Contains(stderr, "-batch") {
		t.Errorf("-scenarios with -batch should be rejected: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = run(t, "", "sweep", "-family", "core", "-batch", "2", "-engine", "concurrent")
	if code != 1 || !strings.Contains(stderr, "matrix") {
		t.Errorf("-batch with a non-matrix engine should be rejected: code=%d stderr=%q", code, stderr)
	}
	code, _, _ = run(t, "", "sweep", "-family", "core", "-adversaries", "extremes,warp-core")
	if code != 1 {
		t.Error("unknown adversary in -adversaries should fail")
	}
}

func TestSweepMatrixScenarios(t *testing.T) {
	code, stdout, stderr := run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "5",
		"-rounds", "5000", "-scenarios", "4")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 10 || cols[9] == "" {
			t.Errorf("scenario column missing in %q", line)
		}
		if cols[3] != "matrix" {
			t.Errorf("-scenarios engine column should be matrix: %q", line)
		}
	}
}

func TestSweepEngineFlag(t *testing.T) {
	code, stdout, stderr := run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "4",
		"-rounds", "5000", "-engine", "matrix")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	if !strings.Contains(stdout, "true") {
		t.Errorf("core(4,1) should converge: %q", stdout)
	}
	code, _, _ = run(t, "", "sweep", "-family", "core", "-engine", "warp")
	if code != 1 {
		t.Error("unknown engine should fail")
	}
	code, _, stderr = run(t, "", "sweep", "-family", "core", "-engine", "concurrent", "-scenarios", "2")
	if code != 1 || !strings.Contains(stderr, "matrix") {
		t.Errorf("-scenarios with a non-matrix engine should be rejected: code=%d stderr=%q", code, stderr)
	}
}

func TestSweepChordShowsViolations(t *testing.T) {
	code, stdout, _ := run(t, "", "sweep", "-family", "chord", "-f", "2", "-from", "7", "-to", "9", "-rounds", "100")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "chord,7,2,sequential,1,extremes,false") {
		t.Errorf("chord(7,2) should report false: %q", stdout)
	}
}

// TestSweepNamesFailingScenario pins the CLI-level error contract: a
// failing scenario makes `iabc sweep` exit non-zero with an error naming
// the scenario's index and name — identically on every engine. The failure
// vector is a per-scenario validation error (-rounds 0 fails each derived
// config's MaxRounds check), which the sweep wraps with the scenario label
// before the CLI surfaces it.
func TestSweepNamesFailingScenario(t *testing.T) {
	for _, engine := range []string{"sequential", "concurrent", "matrix"} {
		t.Run(engine, func(t *testing.T) {
			code, _, stderr := run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "4",
				"-adversaries", "extremes,hug-high", "-engine", engine, "-rounds", "0")
			if code != 1 {
				t.Fatalf("exit = %d, want 1 (stderr %q)", code, stderr)
			}
			if !strings.Contains(stderr, "scenario 0 (extremes)") {
				t.Errorf("stderr does not name the failing scenario index and name: %q", stderr)
			}
		})
	}
	// The single-scenario -batch replay path reports through the same
	// contract.
	code, _, stderr := run(t, "", "sweep", "-family", "core", "-f", "1", "-to", "4",
		"-batch", "2", "-rounds", "0")
	if code != 1 || !strings.Contains(stderr, "scenario 0 (extremes)") {
		t.Errorf("-batch path: code=%d stderr=%q", code, stderr)
	}
}

func TestSweepErrors(t *testing.T) {
	code, _, _ := run(t, "", "sweep", "-family", "klein-bottle")
	if code != 1 {
		t.Error("unknown family should fail")
	}
	code, _, _ = run(t, "", "sweep", "-family", "core", "-from", "9", "-to", "4")
	if code != 1 {
		t.Error("empty range should fail")
	}
	code, _, _ = run(t, "", "sweep", "-family", "core", "-adversary", "bogus")
	if code != 1 {
		t.Error("unknown adversary should fail")
	}
}
