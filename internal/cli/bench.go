package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"iabc"
	"iabc/internal/core"
	"iabc/internal/distrib"

	"math/rand"
)

// BenchResult is one hot-path measurement in the BENCH_<date>.json
// trajectory artifact.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// BenchArtifact is the file cmdBench writes. One artifact per run; the
// dated series across PRs is the performance trajectory of the repo.
type BenchArtifact struct {
	Date    string        `json:"date"`
	Go      string        `json:"go"`
	Notes   string        `json:"notes,omitempty"`
	Results []BenchResult `json:"results"`
}

// cmdBench implements `iabc bench`: run the hot-path micro-benchmarks with
// allocation tracking (the in-binary equivalent of `go test -bench
// -benchmem` over the engine and checker paths) and write the JSON
// trajectory artifact. The engine, sweep, checker, and async rows all run
// through the public iabc facade — the numbers include the facade's option
// dispatch, so they measure what external callers actually get. With
// -compare it additionally diffs the fresh numbers against a committed
// baseline artifact and fails on large regressions — the trend gate CI
// runs as a non-blocking job.
//
// On a multi-core host the scenarios8-workers row records the measured
// parallel speedup over the single-worker scenarios8 row in its extras
// (speedup_vs_scenarios8, workers) — the scaling measurement EXPERIMENTS.md
// documents; a single-core host omits it, since both rows necessarily run
// on the same core there.
func cmdBench(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "", "artifact path (default BENCH_<yyyy-mm-dd>.json; - for stdout only)")
	notes := fs.String("notes", "", "free-form note recorded in the artifact (e.g. before/after context)")
	short := fs.Bool("short", false, "skip the slow exact-checker benchmark (CI smoke mode)")
	compare := fs.String("compare", "", "baseline artifact to diff against; exits nonzero on regression")
	maxRegress := fs.Float64("max-regress", 0.25, "relative ns/op (and allocs/op) slowdown tolerated by -compare")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Load the baseline before measuring so a bad path fails fast.
	var baseline *BenchArtifact
	if *compare != "" {
		var err error
		if baseline, err = loadBenchArtifact(*compare); err != nil {
			return err
		}
	}

	art := BenchArtifact{
		Date:  time.Now().UTC().Format(time.RFC3339),
		Go:    runtime.Version(),
		Notes: *notes,
	}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := BenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		art.Results = append(art.Results, res)
		fmt.Fprintf(stdout, "%-40s %12.1f ns/op %8d B/op %6d allocs/op\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	ctx := context.Background()

	received := make([]core.ValueFrom, 15)
	rng := rand.New(rand.NewSource(1))
	for i := range received {
		received[i] = core.ValueFrom{From: i, Value: rng.Float64()}
	}
	run("trimmed-mean/reference/indeg=15,f=3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (core.TrimmedMean{}).Update(0.5, received, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("trimmed-mean/fast/indeg=15,f=3", func(b *testing.B) {
		var scratch core.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (core.TrimmedMean{}).UpdateInto(&scratch, 0.5, received, 3); err != nil {
				b.Fatal(err)
			}
		}
	})

	const (
		n, f, rounds = 16, 2, 100
	)
	g, err := iabc.CoreNetwork(n, f)
	if err != nil {
		return err
	}
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i)
	}
	engOpts := func(extra ...iabc.Option) []iabc.Option {
		return append([]iabc.Option{
			iabc.WithF(f),
			iabc.WithFaulty(0, 1),
			iabc.WithInitial(initial),
			iabc.WithAdversary(iabc.Hug{High: true}),
			iabc.WithMaxRounds(rounds),
		}, extra...)
	}
	for _, eng := range []iabc.Engine{iabc.Sequential, iabc.ConcurrentPool, iabc.Matrix} {
		eng := eng
		// Options are pure setters, so one slice serves every iteration —
		// the loop measures the engine, not option-closure construction.
		opts := engOpts(iabc.WithEngine(eng))
		run("engine/"+eng.String()+"/core_n16_f2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := iabc.Simulate(ctx, g, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if out.Rounds != rounds {
					b.Fatalf("rounds = %d", out.Rounds)
				}
			}
			b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
	const batch = 64
	extras := make([][]float64, batch)
	for x := range extras {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + x)
		}
		extras[x] = v
	}
	batchOpts := engOpts(iabc.WithEngine(iabc.Matrix), iabc.WithExtras(extras))
	run("engine/matrix-batch64/core_n16_f2", func(b *testing.B) {
		b.ReportAllocs()
		scens := []iabc.Scenario{{Name: "base"}}
		for i := 0; i < b.N; i++ {
			res, err := iabc.Sweep(ctx, g, scens, batchOpts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Finals[0]) != batch {
				b.Fatalf("finals = %d", len(res.Finals[0]))
			}
		}
		b.ReportMetric(float64(rounds)*batch*float64(b.N)/b.Elapsed().Seconds(), "vecrounds/s")
	})
	// The same batch on a long horizon: 20× the rounds through the streaming
	// replay, whose program memory stays O(edges) however far the horizon
	// extends. The vecrounds/s metric is comparable to matrix-batch64; the
	// row exists so the trend gate catches regressions that only show up
	// when the replay is stream-bound rather than setup-bound.
	const streamRounds = 2000
	streamOpts := engOpts(iabc.WithEngine(iabc.Matrix), iabc.WithExtras(extras),
		iabc.WithMaxRounds(streamRounds))
	run("engine/matrix-stream-batch64/core_n16_f2", func(b *testing.B) {
		b.ReportAllocs()
		scens := []iabc.Scenario{{Name: "base"}}
		for i := 0; i < b.N; i++ {
			res, err := iabc.Sweep(ctx, g, scens, streamOpts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Finals[0]) != batch {
				b.Fatalf("finals = %d", len(res.Finals[0]))
			}
		}
		b.ReportMetric(float64(streamRounds)*batch*float64(b.N)/b.Elapsed().Seconds(), "vecrounds/s")
	})

	// Steady-state round loop with an EdgeWriter adversary: MaxRounds is b.N
	// so one op is one round and setup amortizes away — allocs/op must
	// report 0 (doc.go invariant 3).
	for _, eng := range []iabc.Engine{iabc.Sequential, iabc.Matrix} {
		eng := eng
		run("engine/"+eng.String()+"-steady/core_n16_f2", func(b *testing.B) {
			b.ReportAllocs()
			out, err := iabc.Simulate(ctx, g,
				engOpts(iabc.WithEngine(eng), iabc.WithMaxRounds(b.N))...)
			if err != nil {
				b.Fatal(err)
			}
			if out.Rounds != b.N {
				b.Fatalf("rounds = %d, want %d", out.Rounds, b.N)
			}
		})
	}

	// Scenario batching: the same point re-simulated under 8 adversaries
	// with the engine setup shared — the sweep dimension the matrix replay
	// cannot vary.
	scenAdvs := []iabc.Strategy{
		iabc.Hug{High: true}, iabc.Hug{},
		iabc.Extremes{Amplitude: 50},
		iabc.Fixed{Value: 1e6}, iabc.Fixed{Value: -1e6},
		&iabc.Insider{High: true}, &iabc.Insider{},
		iabc.Conforming{},
	}
	scens := make([]iabc.Scenario, len(scenAdvs))
	for i, s := range scenAdvs {
		scens[i] = iabc.Scenario{Adversary: s}
	}
	seqSweepOpts := engOpts()
	run("engine/scenarios8/core_n16_f2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := iabc.Sweep(ctx, g, scens, seqSweepOpts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Traces) != len(scens) {
				b.Fatalf("traces = %d", len(res.Traces))
			}
		}
		b.ReportMetric(float64(rounds)*float64(len(scens))*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
	})
	// The same sweep fanned across GOMAXPROCS workers, one private engine
	// per worker — the multi-core scenario path behind `sweep -workers`.
	parSweepOpts := engOpts(iabc.WithWorkers(0))
	run("engine/scenarios8-workers/core_n16_f2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := iabc.Sweep(ctx, g, scens, parSweepOpts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Traces) != len(scens) {
				b.Fatalf("traces = %d", len(res.Traces))
			}
		}
		b.ReportMetric(float64(rounds)*float64(len(scens))*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
	})
	// Both batching dimensions composed: 8 adversary scenarios, each
	// recorded once on the matrix engine and replayed over 64 extra initial
	// vectors. The metric counts replayed vector-rounds only, comparable to
	// matrix-batch64.
	comboOpts := engOpts(iabc.WithEngine(iabc.Matrix), iabc.WithWorkers(0), iabc.WithExtras(extras))
	run("engine/matrix-scenarios8-batch64/core_n16_f2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := iabc.Sweep(ctx, g, scens, comboOpts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Finals) != len(scens) {
				b.Fatalf("finals = %d", len(res.Finals))
			}
		}
		b.ReportMetric(float64(rounds)*float64(len(scens))*batch*float64(b.N)/b.Elapsed().Seconds(), "vecrounds/s")
	})
	// The multi-core scaling measurement: speedup of the worker-fanned
	// sweep over the single-worker one. Only recorded when there is more
	// than one CPU — on a single core the ratio is ≈ 1 by construction and
	// would pollute the artifact's trend.
	if runtime.NumCPU() > 1 {
		var seqNs float64
		for _, r := range art.Results {
			if r.Name == "engine/scenarios8/core_n16_f2" {
				seqNs = r.NsPerOp
			}
		}
		for i := range art.Results {
			r := &art.Results[i]
			if r.Name == "engine/scenarios8-workers/core_n16_f2" && seqNs > 0 {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra["speedup_vs_scenarios8"] = seqNs / r.NsPerOp
				r.Extra["workers"] = float64(runtime.GOMAXPROCS(0))
				fmt.Fprintf(stdout, "%-40s %12.2fx speedup over scenarios8 (%d CPUs)\n",
					"engine/scenarios8-workers (parallel)", seqNs/r.NsPerOp, runtime.NumCPU())
			}
		}
	}

	ag, err := iabc.Complete(7)
	if err != nil {
		return err
	}
	run("async/complete_n7_f1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := iabc.Simulate(ctx, ag,
				iabc.WithEngine(iabc.Async),
				iabc.WithF(1),
				iabc.WithFaulty(6),
				iabc.WithInitial([]float64{0, 1, 2, 3, 4, 5, 6}),
				iabc.WithAdversary(iabc.Extremes{Amplitude: 10}),
				iabc.WithDelays(&iabc.UniformDelay{B: 2, Rng: rand.New(rand.NewSource(int64(i)))}),
				iabc.WithMaxRounds(100),
				iabc.WithEpsilon(1e-6),
			)
			if err != nil {
				b.Fatal(err)
			}
			if !out.Converged {
				b.Fatal("did not converge")
			}
		}
	})

	// The event-loop steady state behind the async row: constant delays, no
	// epsilon stop, an EdgeWriter adversary — the run is all calendar-queue
	// push/pop and quorum bookkeeping, with no convergence check ending it
	// early. One op is a full 400-round run; the events/s metric counts
	// delivered messages.
	run("async/calendar-queue/complete_n7_f1", func(b *testing.B) {
		b.ReportAllocs()
		var delivered float64
		for i := 0; i < b.N; i++ {
			out, err := iabc.Simulate(ctx, ag,
				iabc.WithEngine(iabc.Async),
				iabc.WithF(1),
				iabc.WithFaulty(6),
				iabc.WithInitial([]float64{0, 1, 2, 3, 4, 5, 6}),
				iabc.WithAdversary(iabc.Fixed{Value: 1e4}),
				iabc.WithDelays(iabc.FixedDelay{D: 1}),
				iabc.WithMaxRounds(400),
			)
			if err != nil {
				b.Fatal(err)
			}
			if out.Converged {
				b.Fatal("steady-state run unexpectedly converged")
			}
			delivered += float64(out.AsyncTrace.Deliveries)
		}
		b.ReportMetric(delivered/b.Elapsed().Seconds(), "events/s")
	})

	// Raw in-process transport throughput: one op is one message through the
	// bounded per-node queue, streamed from a producer goroutine — the floor
	// under every cluster message the actor runtime sends. The queue is
	// deeper than the default so the row measures channel hand-off, not
	// producer/consumer lockstep.
	run("transport/inproc/stream", func(b *testing.B) {
		b.ReportAllocs()
		tr := iabc.NewInprocTransport(2, 1024)
		defer tr.Close()
		rc := tr.Recv(1)
		go func() {
			for i := 0; i < b.N; i++ {
				if tr.Send(ctx, 0, 1, iabc.Msg{Round: i, Value: 1, Seq: uint64(i)}) != nil {
					return
				}
			}
		}()
		for i := 0; i < b.N; i++ {
			<-rc
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
	})

	// Distributed dispatch floor: a loopback coordinator with two in-process
	// workers leasing no-op jobs — one op is one job granted, reported, and
	// acknowledged through the framed TCP job protocol. The jobs/s metric is
	// the scheduling ceiling under `iabc coordinate`; real scans amortize one
	// job across a whole fault-set range.
	run("distrib/dispatch/loopback-2workers", func(b *testing.B) {
		coord := distrib.NewCoordinator(distrib.Options{})
		if err := coord.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		wctx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				distrib.Work(wctx, coord.Addr(), distrib.WorkerOptions{})
			}()
		}
		defer func() {
			coord.Close()
			cancel()
			wg.Wait()
		}()
		b.ReportAllocs()
		b.ResetTimer()
		if err := coord.DispatchNoop(ctx, int64(b.N)); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	})

	// Exact checker rows. Degree-bound pruning turned core_n13_f4 from the
	// suite's slowest row (~10 ms/op unpruned) into a sub-millisecond one,
	// so it and the maxf scan now run in -short CI smoke too and sit under
	// the -compare trend gate on every run.
	cg, err := iabc.CoreNetwork(13, 4)
	if err != nil {
		return err
	}
	run("condition/check/core_n13_f4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := iabc.Check(ctx, cg, 4)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Satisfied {
				b.Fatal("core(13,4) should satisfy")
			}
		}
	})
	mg, err := iabc.CoreNetwork(16, 2)
	if err != nil {
		return err
	}
	run("condition/maxf/core_n16_f2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			maxF, err := iabc.MaxF(ctx, mg)
			if err != nil {
				b.Fatal(err)
			}
			if maxF != 2 {
				b.Fatalf("MaxF = %d", maxF)
			}
		}
	})
	if !*short {
		// Degree-regular circulants at small threshold admit most candidates,
		// so this row tracks the checker's un-prunable worst case.
		hg, err := iabc.Chord(16, 2)
		if err != nil {
			return err
		}
		run("condition/check/chord_n16_f2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := iabc.Check(ctx, hg, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	path := *out
	if path != "-" {
		if path == "" {
			path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}

	if baseline != nil {
		regs := compareArtifacts(&art, baseline, *maxRegress)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(stdout, "REGRESSION: %s\n", r)
			}
			return fmt.Errorf("cli: %d benchmark regression(s) vs %s (threshold +%.0f%%)",
				len(regs), *compare, *maxRegress*100)
		}
		fmt.Fprintf(stdout, "no regressions vs %s (threshold +%.0f%%)\n", *compare, *maxRegress*100)
	}
	return nil
}

// loadBenchArtifact reads a BENCH_<date>.json trajectory file.
func loadBenchArtifact(path string) (*BenchArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cli: reading baseline: %w", err)
	}
	var art BenchArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("cli: parsing baseline %s: %w", path, err)
	}
	return &art, nil
}

// allocSlack absorbs small absolute allocation jitter (trace growth past the
// preallocated window, map resizing) so the relative threshold only fires on
// real regressions; a 0→2 allocs/op change is noise, 1000→1300 is not.
const allocSlack = 16

// compareArtifacts diffs fresh results against a baseline by benchmark name
// and returns one description per regression beyond maxRegress (relative).
// Benchmarks present on only one side are skipped — the suite grows across
// PRs and a trend gate must not punish new coverage.
func compareArtifacts(fresh, baseline *BenchArtifact, maxRegress float64) []string {
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var regs []string
	for _, r := range fresh.Results {
		old, ok := base[r.Name]
		if !ok {
			continue
		}
		if r.NsPerOp > old.NsPerOp*(1+maxRegress) {
			regs = append(regs, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%+.1f%%)",
				r.Name, r.NsPerOp, old.NsPerOp, (r.NsPerOp/old.NsPerOp-1)*100))
		}
		if r.AllocsPerOp > old.AllocsPerOp+allocSlack &&
			float64(r.AllocsPerOp) > float64(old.AllocsPerOp)*(1+maxRegress) {
			regs = append(regs, fmt.Sprintf("%s: %d allocs/op vs baseline %d",
				r.Name, r.AllocsPerOp, old.AllocsPerOp))
		}
	}
	return regs
}
