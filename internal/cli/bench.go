package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/async"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"

	"math/rand"
)

// BenchResult is one hot-path measurement in the BENCH_<date>.json
// trajectory artifact.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// BenchArtifact is the file cmdBench writes. One artifact per run; the
// dated series across PRs is the performance trajectory of the repo.
type BenchArtifact struct {
	Date    string        `json:"date"`
	Go      string        `json:"go"`
	Notes   string        `json:"notes,omitempty"`
	Results []BenchResult `json:"results"`
}

// cmdBench implements `iabc bench`: run the hot-path micro-benchmarks with
// allocation tracking (the in-binary equivalent of `go test -bench
// -benchmem` over the engine and checker paths) and write the JSON
// trajectory artifact.
func cmdBench(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "", "artifact path (default BENCH_<yyyy-mm-dd>.json; - for stdout only)")
	notes := fs.String("notes", "", "free-form note recorded in the artifact (e.g. before/after context)")
	short := fs.Bool("short", false, "skip the slow exact-checker benchmark (CI smoke mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	art := BenchArtifact{
		Date:  time.Now().UTC().Format(time.RFC3339),
		Go:    runtime.Version(),
		Notes: *notes,
	}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := BenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		art.Results = append(art.Results, res)
		fmt.Fprintf(stdout, "%-40s %12.1f ns/op %8d B/op %6d allocs/op\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	received := make([]core.ValueFrom, 15)
	rng := rand.New(rand.NewSource(1))
	for i := range received {
		received[i] = core.ValueFrom{From: i, Value: rng.Float64()}
	}
	run("trimmed-mean/reference/indeg=15,f=3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (core.TrimmedMean{}).Update(0.5, received, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("trimmed-mean/fast/indeg=15,f=3", func(b *testing.B) {
		var scratch core.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (core.TrimmedMean{}).UpdateInto(&scratch, 0.5, received, 3); err != nil {
				b.Fatal(err)
			}
		}
	})

	const (
		n, f, rounds = 16, 2, 100
	)
	g, err := topology.CoreNetwork(n, f)
	if err != nil {
		return err
	}
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = float64(i)
	}
	engCfg := sim.Config{
		G: g, F: f, Faulty: nodeset.FromMembers(n, 0, 1), Initial: initial,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Hug{High: true},
		MaxRounds: rounds,
	}
	for _, eng := range []sim.Engine{sim.Sequential{}, sim.Concurrent{}, sim.Matrix{}} {
		eng := eng
		run("engine/"+eng.Name()+"/core_n16_f2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr, err := eng.Run(engCfg)
				if err != nil {
					b.Fatal(err)
				}
				if tr.Rounds != rounds {
					b.Fatalf("rounds = %d", tr.Rounds)
				}
			}
			b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
	const batch = 64
	extras := make([][]float64, batch)
	for x := range extras {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + x)
		}
		extras[x] = v
	}
	run("engine/matrix-batch64/core_n16_f2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := (sim.Matrix{}).RunBatch(engCfg, extras); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rounds)*batch*float64(b.N)/b.Elapsed().Seconds(), "vecrounds/s")
	})

	ag, err := topology.Complete(7)
	if err != nil {
		return err
	}
	run("async/complete_n7_f1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := async.Run(async.Config{
				G: ag, F: 1, Faulty: nodeset.FromMembers(7, 6),
				Initial: []float64{0, 1, 2, 3, 4, 5, 6}, Rule: core.TrimmedMean{},
				Adversary: adversary.Extremes{Amplitude: 10},
				Delays:    &async.Uniform{B: 2, Rng: rand.New(rand.NewSource(int64(i)))},
				MaxRounds: 100, Epsilon: 1e-6,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !tr.Converged {
				b.Fatal("did not converge")
			}
		}
	})

	if !*short {
		cg, err := topology.CoreNetwork(13, 4)
		if err != nil {
			return err
		}
		run("condition/check/core_n13_f4", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := condition.Check(cg, 4)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Satisfied {
					b.Fatal("core(13,4) should satisfy")
				}
			}
		})
	}

	path := *out
	if path == "-" {
		return nil
	}
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}
