package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"iabc"
)

// cmdServe runs this process's share of a cross-process cluster: the node
// actors listed in -id, over a TCP transport whose address map comes from
// the -peers file, against the same topology and seed every other process
// was started with. Every process derives the identical initial vector from
// -seed, so at f = 0 over a loss-free network the collected finals must be
// bit-identical to the single-process oracle (`iabc run -finals`) — the
// multi-process CI gate diffs exactly that.
//
// The peers file maps every node id to its host:port, one per line:
//
//	# node  address
//	0 127.0.0.1:9000
//	1 127.0.0.1:9001
//	2 127.0.0.1:9002
//
// All of a process's -id nodes must share one address — a process has one
// listener. Finals are printed as hex floats (one `final <id> <value>` line
// per local node) so bit-identity is diffable as text.
func cmdServe(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	topoSpec := fs.String("topo", "", "topology spec (required; must match every peer)")
	idList := fs.String("id", "", "comma-separated node ids this process animates (required)")
	peersPath := fs.String("peers", "", "peers file mapping every node id to host:port (required)")
	f := fs.Int("f", 0, "fault-tolerance parameter")
	faultyList := fs.String("faulty", "", "comma-separated faulty node IDs (locally hosted ones are adversary-driven)")
	advName := fs.String("adversary", "extremes", "byzantine strategy for local faulty nodes")
	rounds := fs.Int("rounds", 50, "rounds each local node runs")
	eps := fs.Float64("eps", 0, "local convergence threshold (0 = run all rounds; judge convergence over the collected finals)")
	seed := fs.Int64("seed", 1, "shared seed: every process derives the same initial vector from it")
	resend := fs.Duration("resend", 0, "initial stall-triggered resend interval (0 = default)")
	stall := fs.Duration("stall", 10*time.Second, "liveness cutoff: give up after this long without local progress (0 = none)")
	linger := fs.Duration("linger", 500*time.Millisecond, "keep serving history resends this long after local completion, so laggard peers can finish")
	timeout := fs.Duration("timeout", 0, "cancel the whole run after this long (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := ParseTopo(*topoSpec, stdin)
	if err != nil {
		return err
	}
	n := g.N()
	local, err := parseNodeList(*idList)
	if err != nil {
		return err
	}
	if len(local) == 0 {
		return fmt.Errorf("cli: serve needs -id (the node ids this process animates)")
	}
	addrs, err := parsePeers(*peersPath, n)
	if err != nil {
		return err
	}
	// One process, one listener: every local id must resolve to it.
	listen := addrs[local[0]]
	for _, id := range local {
		if id < 0 || id >= n {
			return fmt.Errorf("cli: local node %d outside [0,%d)", id, n)
		}
		if addrs[id] != listen {
			return fmt.Errorf("cli: local nodes %d and %d map to different addresses (%s vs %s); a process has one listener",
				local[0], id, listen, addrs[id])
		}
	}
	faulty, err := parseNodeList(*faultyList)
	if err != nil {
		return err
	}
	strat, err := iabc.AdversaryByName(*advName, *seed)
	if err != nil {
		return err
	}
	// The shared deterministic initial vector: same derivation as `iabc run`
	// and `iabc cluster`, so the single-process oracle and every serve
	// process agree bit for bit.
	initial := make([]float64, n)
	rng := rand.New(rand.NewSource(*seed))
	for i := range initial {
		initial[i] = rng.Float64() * 100
	}
	// Validity reference: the fault-free initial hull. Every fault-free
	// update must stay inside it (Section 2.2's validity condition).
	faultFree := iabc.SetOf(n, faulty...).Complement()
	hullLo, hullHi := math.Inf(1), math.Inf(-1)
	faultFree.ForEach(func(i int) bool {
		hullLo, hullHi = math.Min(hullLo, initial[i]), math.Max(hullHi, initial[i])
		return true
	})
	validityViolated := false

	opts := []iabc.Option{
		iabc.WithF(*f),
		iabc.WithFaulty(faulty...),
		iabc.WithInitial(initial),
		iabc.WithAdversary(strat),
		iabc.WithMaxRounds(*rounds),
		iabc.WithEpsilon(*eps),
		iabc.WithResendEvery(*resend),
		iabc.WithStallAfter(*stall),
		iabc.WithLocalNodes(local...),
		iabc.WithLinger(*linger),
		iabc.WithTCPTransport(iabc.TCPTransportConfig{Addrs: addrs, Listen: listen}),
		iabc.WithObserver(func(e iabc.Event) {
			if e.Kind == iabc.EventNodeUpdate && (e.Value < hullLo-1e-9 || e.Value > hullHi+1e-9) {
				validityViolated = true
			}
		}),
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fmt.Fprintf(stdout, "graph: %s  f=%d  local=%s  listen=%s\n",
		g, *f, iabc.SetOf(n, local...), listen)
	res, err := iabc.Cluster(ctx, g, opts...)
	if err != nil {
		return err
	}
	for _, id := range local {
		if faultFree.Contains(id) {
			fmt.Fprintf(stdout, "final %d %s\n", id, strconv.FormatFloat(res.Final[id], 'x', -1, 64))
		}
	}
	verdict := "max rounds"
	switch {
	case res.Converged:
		verdict = "converged"
	case res.Stalled:
		verdict = "stalled"
	}
	localFree := iabc.SetOf(n, local...).Intersect(faultFree)
	minRound := 0
	if !localFree.Empty() {
		minRound = res.MinRound(localFree)
	}
	fmt.Fprintf(stdout, "verdict: %s  min round: %d  elapsed: %s\n",
		verdict, minRound, res.Elapsed.Round(time.Millisecond))
	if validityViolated {
		fmt.Fprintln(stdout, "VALIDITY VIOLATED: a local update left the fault-free initial hull")
	} else {
		fmt.Fprintln(stdout, "validity: held")
	}
	fmt.Fprintf(stdout, "traffic: %d deliveries, %d updates, %d resends, %d abandoned sends, %d queue drops\n",
		res.Deliveries, res.Updates, res.Resends, res.Abandoned, res.OutDropped)
	return nil
}

// parsePeers reads a peers file: one "id host:port" line per node, '#'
// comments and blank lines ignored. Every id in [0, n) must appear exactly
// once.
func parsePeers(path string, n int) ([]string, error) {
	if path == "" {
		return nil, fmt.Errorf("cli: serve needs -peers (the id -> host:port map)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	addrs := make([]string, n)
	seen := make([]bool, n)
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("cli: %s:%d: want 'id host:port', got %q", path, ln+1, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 || id >= n {
			return nil, fmt.Errorf("cli: %s:%d: node id %q outside [0,%d)", path, ln+1, fields[0], n)
		}
		if seen[id] {
			return nil, fmt.Errorf("cli: %s:%d: duplicate entry for node %d", path, ln+1, id)
		}
		seen[id] = true
		addrs[id] = fields[1]
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("cli: %s: no address for node %d", path, id)
		}
	}
	return addrs, nil
}
