package distrib

// The package's conformance battery: everything here compares a distributed
// run against the single-process oracle — same verdict, same witness, same
// work counters, same bit-exact traces — under clean runs, worker death,
// zombie leases, stealing, and checkpoint resume.

import (
	"bufio"
	"context"
	"math"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/statestore"
	"iabc/internal/topology"
)

func testGraph(t *testing.T, kind string, n, f int) *graph.Graph {
	t.Helper()
	var g *graph.Graph
	var err error
	switch kind {
	case "core":
		g, err = topology.CoreNetwork(n, f)
	case "chord":
		g, err = topology.Chord(n, f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testCluster starts a coordinator on a loopback port plus n in-process
// workers; everything is torn down via t.Cleanup.
func testCluster(t *testing.T, opts Options, workers int) *Coordinator {
	t.Helper()
	c := NewCoordinator(opts)
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Work(ctx, c.Addr(), WorkerOptions{})
		}()
	}
	t.Cleanup(func() {
		cancel()
		c.Close()
		wg.Wait()
	})
	return c
}

// waitUntil polls cond for up to five seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDistributedCheckMatchesOracle pins the headline property on both
// verdicts: a check distributed across three workers returns a Result
// deep-equal to the sequential single-process scan — witness, early-exit
// counters, everything.
func TestDistributedCheckMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		kind string
		n, f int
	}{
		{"core", 13, 4},  // satisfied
		{"chord", 7, 2},  // violated
		{"chord", 11, 3}, // violated
	} {
		g := testGraph(t, tc.kind, tc.n, tc.f)
		threshold := condition.SyncThreshold(tc.f)
		want, err := condition.CheckScan(context.Background(), g, tc.f, threshold, condition.ScanOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		c := testCluster(t, Options{ChunkSize: 64, ReportEvery: 16}, 3)
		got, err := c.CheckScan(context.Background(), g, tc.f, threshold, condition.ScanOptions{})
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", tc.kind, tc.n, tc.f, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s(%d,%d): distributed result %+v, oracle %+v", tc.kind, tc.n, tc.f, got, want)
		}
	}
}

// TestDistributedCheckKilledWorker kills one of two workers mid-scan (its
// jobs drop with the connection and are requeued); the surviving worker
// finishes and the Result is still oracle-identical.
func TestDistributedCheckKilledWorker(t *testing.T) {
	g := testGraph(t, "core", 13, 4)
	threshold := condition.SyncThreshold(4)
	want, err := condition.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c := testCluster(t, Options{ChunkSize: 32, ReportEvery: 8, Lease: 500 * time.Millisecond}, 1)
	doomedCtx, kill := context.WithCancel(context.Background())
	var doomed sync.WaitGroup
	doomed.Add(1)
	go func() {
		defer doomed.Done()
		Work(doomedCtx, c.Addr(), WorkerOptions{})
	}()
	defer func() { kill(); doomed.Wait() }()

	var once sync.Once
	got, err := c.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{
		// First progress report → the doomed worker is killed mid-phase.
		OnProgress: func(condition.Progress) { once.Do(kill) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result after worker kill %+v, oracle %+v", got, want)
	}
}

// TestDistributedCheckResume interrupts a durable distributed check, then
// completes it in a second run: the composed Result matches the oracle with
// FaultSetsResumed recording the replayed prefix, and a third run is a pure
// cache hit — the same provenance the single-process scan reports.
func TestDistributedCheckResume(t *testing.T) {
	g := testGraph(t, "core", 13, 4)
	threshold := condition.SyncThreshold(4)
	want, err := condition.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	store := statestore.NewMem()
	c := testCluster(t, Options{ChunkSize: 16, ReportEvery: 8}, 2)

	ctx, cancel := context.WithCancel(context.Background())
	_, err = c.CheckScan(ctx, g, 4, threshold, condition.ScanOptions{
		Store: store, CheckpointEvery: 1,
		OnProgress: func(p condition.Progress) {
			if p.FaultSetsDone >= 100 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted distributed check returned no error")
	}

	got, err := c.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if got.FaultSetsResumed == 0 {
		t.Fatal("resumed check replayed no prefix")
	}
	adjusted := got
	adjusted.FaultSetsResumed = 0
	if !reflect.DeepEqual(adjusted, want) {
		t.Fatalf("resumed result %+v, oracle %+v", got, want)
	}

	cached, err := c.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !cached.CacheHit || cached.Satisfied != want.Satisfied {
		t.Fatalf("third run not served from verdict cache: %+v", cached)
	}
}

// TestZombieLeaseFencing drives a raw wire client that takes a job and
// stalls past its lease: the range is requeued and finished by a live
// worker, and the zombie's late report is answered with a cancel ack and
// never journaled — the Result stays oracle-identical.
func TestZombieLeaseFencing(t *testing.T) {
	g := testGraph(t, "core", 13, 4)
	threshold := condition.SyncThreshold(4)
	want, err := condition.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCoordinator(Options{Lease: 100 * time.Millisecond, ChunkSize: 16, ReportEvery: 8})
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type checkOut struct {
		res condition.Result
		err error
	}
	resCh := make(chan checkOut, 1)
	go func() {
		res, err := c.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{})
		resCh <- checkOut{res, err}
	}()

	// The zombie speaks just enough protocol to hold a lease.
	nc, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	var scratch []byte
	mustRead := func(wantKind byte) []byte {
		t.Helper()
		kind, payload, sc, err := readFrame(br, scratch)
		scratch = sc
		if err != nil || kind != wantKind {
			t.Fatalf("zombie read kind %d err %v, want kind %d", kind, err, wantKind)
		}
		return payload
	}
	if _, err := nc.Write(appendHello(nil)); err != nil {
		t.Fatal(err)
	}
	mustRead(kindHello)
	if _, err := nc.Write(appendJobRequest(nil)); err != nil {
		t.Fatal(err)
	}
	grant, err := decodeJobGrant(mustRead(kindJobGrant))
	if err != nil {
		t.Fatal(err)
	}

	// Stall until the lease sweeper requeues the zombie's range.
	waitUntil(t, "lease requeue", func() bool { return c.Stats().LeasesRequeued >= 1 })

	// The late report must be fenced: cancel ack, nothing journaled.
	if _, err := nc.Write(appendReportOK(nil, reportOK{
		jobID: grant.jobID, through: grant.lo + int64(grant.reportEvery),
		counters: condition.WorkCounters{Candidates: 1 << 40}, // poison: journaling this would corrupt the totals
	})); err != nil {
		t.Fatal(err)
	}
	a, err := decodeAck(mustRead(kindAck))
	if err != nil {
		t.Fatal(err)
	}
	if !a.cancel {
		t.Fatal("zombie report was not answered with a cancel ack")
	}

	// A live worker finishes the scan, re-running the zombie's range.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	go Work(ctx, c.Addr(), WorkerOptions{})

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !reflect.DeepEqual(out.res, want) {
		t.Fatalf("result with zombie lease %+v, oracle %+v", out.res, want)
	}
	if s := c.Stats(); s.StaleReports == 0 {
		t.Fatalf("no stale report counted: %+v", s)
	}
}

// wireClient is a hand-driven protocol client for scheduling tests that
// need exact control over when reports happen.
type wireClient struct {
	t       *testing.T
	nc      net.Conn
	br      *bufio.Reader
	scratch []byte
}

func dialWire(t *testing.T, addr string) *wireClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	w := &wireClient{t: t, nc: nc, br: bufio.NewReader(nc)}
	w.write(appendHello(nil))
	w.read(kindHello)
	return w
}

func (w *wireClient) write(frame []byte) {
	w.t.Helper()
	if _, err := w.nc.Write(frame); err != nil {
		w.t.Fatal(err)
	}
}

func (w *wireClient) read(wantKind byte) []byte {
	w.t.Helper()
	kind, payload, sc, err := readFrame(w.br, w.scratch)
	w.scratch = sc
	if err != nil || kind != wantKind {
		w.t.Fatalf("read kind %d err %v, want kind %d", kind, err, wantKind)
	}
	return payload
}

func (w *wireClient) requestJob() jobGrant {
	w.t.Helper()
	w.write(appendJobRequest(nil))
	g, err := decodeJobGrant(w.read(kindJobGrant))
	if err != nil {
		w.t.Fatal(err)
	}
	return g
}

// TestStealSplitsLargestLease pins the steal geometry with hand-driven
// clients: client A leases the whole enumeration, client B's request steals
// the far half beyond A's safe point, A learns the shrink through its next
// ack, and after both clients vanish a real worker still produces the
// oracle Result from the requeued remainders.
func TestStealSplitsLargestLease(t *testing.T) {
	g := testGraph(t, "core", 13, 4)
	threshold := condition.SyncThreshold(4)
	want, err := condition.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// One chunk covers the whole enumeration, so the queue drains on the
	// first grant and a second client can only get work by stealing.
	c := NewCoordinator(Options{ChunkSize: 1 << 20, ReportEvery: 4, Lease: 200 * time.Millisecond})
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resCh := make(chan condition.Result, 1)
	go func() {
		res, err := c.CheckScan(context.Background(), g, 4, threshold, condition.ScanOptions{})
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()

	a := dialWire(t, c.Addr())
	grantA := a.requestJob()
	if grantA.lo != 0 || grantA.hi != condition.NumFaultSets(13, 4) {
		t.Fatalf("client A granted [%d, %d), want the whole enumeration", grantA.lo, grantA.hi)
	}

	b := dialWire(t, c.Addr())
	grantB := b.requestJob()
	safe := grantA.lo + int64(grantA.reportEvery)
	mid := safe + (grantA.hi-safe)/2
	if grantB.lo != mid || grantB.hi != grantA.hi {
		t.Fatalf("steal granted [%d, %d), want [%d, %d)", grantB.lo, grantB.hi, mid, grantA.hi)
	}
	if s := c.Stats(); s.JobsStolen != 1 {
		t.Fatalf("JobsStolen = %d, want 1", s.JobsStolen)
	}

	// A really scans its first slice (reports journal counters, so they must
	// be earned) and its report is acked with the shrunken upper bound.
	scanner, err := condition.NewShardScanner(g, 4, threshold)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := scanner.ScanRange(context.Background(), grantA.lo, safe)
	if err != nil || rr.Violation >= 0 {
		t.Fatalf("ScanRange: viol %d err %v", rr.Violation, err)
	}
	a.write(appendReportOK(nil, reportOK{jobID: grantA.jobID, through: safe, counters: rr.Satisfied}))
	ackA, err := decodeAck(a.read(kindAck))
	if err != nil {
		t.Fatal(err)
	}
	if ackA.cancel || ackA.newHi != mid {
		t.Fatalf("ack after steal = %+v, want newHi %d", ackA, mid)
	}

	// Both clients die; their remainders [safe, mid) and [mid, hi) requeue,
	// and a real worker finishes everything to the oracle Result.
	a.nc.Close()
	b.nc.Close()
	waitUntil(t, "requeue after disconnect", func() bool { return c.Stats().LeasesRequeued >= 2 })

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	go Work(ctx, c.Addr(), WorkerOptions{})

	got := <-resCh
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result with stealing %+v, oracle %+v", got, want)
	}
}

// TestDistributedMaxFMatchesOracle distributes the full monotone f-sweep:
// best f and every aggregated stat must equal the sequential MaxFScan.
func TestDistributedMaxFMatchesOracle(t *testing.T) {
	g := testGraph(t, "chord", 11, 3)
	wantBest, wantStats, err := condition.MaxFScan(context.Background(), g, condition.MaxFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, Options{ChunkSize: 32, ReportEvery: 8}, 2)
	gotBest, gotStats, err := c.MaxF(context.Background(), g, condition.MaxFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gotBest != wantBest {
		t.Fatalf("distributed maxf = %d, oracle %d", gotBest, wantBest)
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("distributed stats %+v, oracle %+v", gotStats, wantStats)
	}
}

// —— distributed sweeps ——

func sweepBase(t *testing.T) sim.Config {
	t.Helper()
	g, err := topology.CoreNetwork(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 10)
	for i := range initial {
		initial[i] = float64(i) * 1.25
	}
	return sim.Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(10, 0, 1), Initial: initial,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Hug{High: true},
		MaxRounds: 60, Epsilon: 1e-9, RecordStates: true,
	}
}

func sweepScenarios() []sim.Scenario {
	return []sim.Scenario{
		{Name: "hug-low", Adversary: adversary.Hug{}},
		{Name: "silent", Adversary: adversary.Silent{}},
		{Name: "fixed-high", Adversary: adversary.Fixed{Value: 1e6}},
		{Name: "insider", Adversary: &adversary.Insider{High: true}},
	}
}

func assertTraceBits(t *testing.T, label string, want, got *sim.Trace) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: trace nil (want %v, got %v)", label, want != nil, got != nil)
	}
	if got.Rounds != want.Rounds || got.Converged != want.Converged {
		t.Fatalf("%s: rounds/converged = %d/%v, want %d/%v", label, got.Rounds, got.Converged, want.Rounds, want.Converged)
	}
	eq := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d, want %d", label, name, len(b), len(a))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: %s[%d] differs: %x vs %x", label, name, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
	eq("U", want.U, got.U)
	eq("Mu", want.Mu, got.Mu)
	eq("Final", want.Final, got.Final)
	if len(want.States) != len(got.States) {
		t.Fatalf("%s: states length %d, want %d", label, len(got.States), len(want.States))
	}
	for r := range want.States {
		eq("States", want.States[r], got.States[r])
	}
}

// TestDistributedSweepMatchesLocal runs a sweep across two workers and
// compares every trace bit-for-bit against the local sweep; with the Matrix
// engine and extra initial vectors, the replayed finals must match too.
func TestDistributedSweepMatchesLocal(t *testing.T) {
	base := sweepBase(t)
	scens := sweepScenarios()
	ctx := context.Background()

	want, err := sim.Sweep(ctx, base, scens, sim.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, Options{}, 2)
	got, err := c.Sweep(ctx, base, scens, 1, sim.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scens {
		assertTraceBits(t, scens[i].Name, want.Traces[i], got.Traces[i])
	}

	// Matrix engine + extras: the SoA replay's final vectors distribute too.
	extras := [][]float64{{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}}
	wantM, err := sim.Sweep(ctx, base, scens, sim.SweepOptions{Engine: sim.Matrix{}, Workers: 1, Extras: extras})
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := c.Sweep(ctx, base, scens, 1, sim.SweepOptions{Engine: sim.Matrix{}, Workers: 2, Extras: extras})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scens {
		assertTraceBits(t, scens[i].Name+"/matrix", wantM.Traces[i], gotM.Traces[i])
		if len(gotM.Finals[i]) != len(wantM.Finals[i]) {
			t.Fatalf("%s: finals width %d, want %d", scens[i].Name, len(gotM.Finals[i]), len(wantM.Finals[i]))
		}
		for x := range wantM.Finals[i] {
			for j := range wantM.Finals[i][x] {
				if math.Float64bits(gotM.Finals[i][x][j]) != math.Float64bits(wantM.Finals[i][x][j]) {
					t.Fatalf("%s: finals[%d][%d] differ", scens[i].Name, x, j)
				}
			}
		}
	}
}

// TestDistributedSweepResume composes the distributed sweep with sweep-level
// checkpointing: a second distributed run over the same store resumes every
// scenario without granting a single job.
func TestDistributedSweepResume(t *testing.T) {
	base := sweepBase(t)
	scens := sweepScenarios()
	ctx := context.Background()
	want, err := sim.Sweep(ctx, base, scens, sim.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	store := statestore.NewMem()
	c := testCluster(t, Options{}, 2)
	if _, err := c.Sweep(ctx, base, scens, 1, sim.SweepOptions{Workers: 2, Store: store}); err != nil {
		t.Fatal(err)
	}
	granted := c.Stats().JobsGranted

	res, err := c.Sweep(ctx, base, scens, 1, sim.SweepOptions{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosResumed != len(scens) {
		t.Fatalf("ScenariosResumed = %d, want %d", res.ScenariosResumed, len(scens))
	}
	if c.Stats().JobsGranted != granted {
		t.Fatalf("fully resumed sweep granted %d jobs", c.Stats().JobsGranted-granted)
	}
	for i := range scens {
		assertTraceBits(t, scens[i].Name, want.Traces[i], res.Traces[i])
	}
}

// TestDistributedSweepRejectsUnnamedAdversary pins the distributability
// boundary: strategies that cannot be reconstructed from a canonical name
// are rejected up front with a descriptive error.
func TestDistributedSweepRejectsUnnamedAdversary(t *testing.T) {
	base := sweepBase(t)
	c := testCluster(t, Options{}, 1)
	_, err := c.Sweep(context.Background(), base, []sim.Scenario{
		{Name: "custom", Adversary: adversary.Extremes{Amplitude: 50}},
	}, 1, sim.SweepOptions{})
	if err == nil || !strings.Contains(err.Error(), "not a named built-in") {
		t.Fatalf("unnamed adversary error = %v", err)
	}
}

// TestDispatchNoop pushes empty jobs through the full grant/report/ack cycle
// — the benchmark kernel's correctness check.
func TestDispatchNoop(t *testing.T) {
	c := testCluster(t, Options{}, 2)
	if err := c.DispatchNoop(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.JobsGranted < 300 {
		t.Fatalf("granted %d jobs, want >= 300", s.JobsGranted)
	}
}
