package distrib

// Job specs: the JSON payloads of kindSpec frames. A spec is the full,
// self-contained identity of an enumeration — everything a worker needs to
// execute any index range of it. Specs are immutable once registered and
// cached per connection by specID, so the (potentially large) JSON crosses
// the wire once per worker.

import (
	"encoding/json"
	"fmt"
	"math"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
)

// scanSpec identifies one exact-check scan: any worker holding it can
// reproduce the canonical fault-set enumeration and scan any range.
type scanSpec struct {
	// Graph is the edge-list encoding (graph.EdgeListString), the format
	// with a parser on the receiving side.
	Graph     string `json:"graph"`
	F         int    `json:"f"`
	Threshold int    `json:"threshold"`
}

// sweepScenarioSpec is one sim.Scenario with every override serialized
// bit-exactly (floats as IEEE-754 bit patterns).
type sweepScenarioSpec struct {
	Name         string   `json:"name,omitempty"`
	Adversary    string   `json:"adversary,omitempty"`
	HasAdversary bool     `json:"has_adversary,omitempty"`
	Initial      []uint64 `json:"initial,omitempty"`
	Faulty       []int    `json:"faulty,omitempty"`
	HasFaulty    bool     `json:"has_faulty,omitempty"`
	MaxRounds    int      `json:"max_rounds,omitempty"`
}

// sweepSpec identifies one scenario sweep: base configuration, scenario
// overrides, engine, and extras. Adversaries travel as canonical names
// (adversary.CanonicalName) and are re-resolved on the worker; rules
// likewise. Strategies and rules outside the named built-ins are not
// distributable — buildSweepSpec rejects them with a descriptive error.
type sweepSpec struct {
	Graph        string              `json:"graph"`
	Engine       string              `json:"engine"`
	Rule         string              `json:"rule"`
	F            int                 `json:"f"`
	Faulty       []int               `json:"faulty,omitempty"`
	HasFaulty    bool                `json:"has_faulty,omitempty"`
	Adversary    string              `json:"adversary,omitempty"`
	HasAdversary bool                `json:"has_adversary,omitempty"`
	Initial      []uint64            `json:"initial"`
	MaxRounds    int                 `json:"max_rounds"`
	Epsilon      uint64              `json:"epsilon"`
	RecordStates bool                `json:"record_states,omitempty"`
	Seed         int64               `json:"seed,omitempty"`
	Extras       [][]uint64          `json:"extras,omitempty"`
	Scenarios    []sweepScenarioSpec `json:"scenarios"`
}

// jobSpec is the kindSpec payload: a tagged union over the job kinds.
type jobSpec struct {
	Kind  string     `json:"kind"` // "scan" | "sweep" | "noop"
	Scan  *scanSpec  `json:"scan,omitempty"`
	Sweep *sweepSpec `json:"sweep,omitempty"`
}

// floatBits / bitsFloat mirror the sim package's bit-exact float transport.
func floatBits(fs []float64) []uint64 {
	if fs == nil {
		return nil
	}
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = math.Float64bits(f)
	}
	return out
}

func bitsFloat(bs []uint64) []float64 {
	if bs == nil {
		return nil
	}
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = math.Float64frombits(b)
	}
	return out
}

func floatBits2(fss [][]float64) [][]uint64 {
	if fss == nil {
		return nil
	}
	out := make([][]uint64, len(fss))
	for i, fs := range fss {
		out[i] = floatBits(fs)
	}
	return out
}

func bitsFloat2(bss [][]uint64) [][]float64 {
	if bss == nil {
		return nil
	}
	out := make([][]float64, len(bss))
	for i, bs := range bss {
		out[i] = bitsFloat(bs)
	}
	return out
}

// adversaryName canonicalizes a strategy for the wire, or errors when it is
// not a named built-in.
func adversaryName(s adversary.Strategy, where string) (string, error) {
	name, ok := adversary.CanonicalName(s)
	if !ok {
		return "", fmt.Errorf("distrib: %s adversary %q is not a named built-in; distributed sweeps require strategies resolvable by adversary.ByName", where, s.Name())
	}
	return name, nil
}

// buildScanSpec serializes a scan identity.
func buildScanSpec(g *graph.Graph, f, threshold int) ([]byte, error) {
	return json.Marshal(jobSpec{Kind: "scan", Scan: &scanSpec{
		Graph: g.EdgeListString(), F: f, Threshold: threshold,
	}})
}

// buildSweepSpec serializes a sweep identity, rejecting non-distributable
// pieces (custom rules, unnamed adversaries) with descriptive errors.
func buildSweepSpec(base sim.Config, scenarios []sim.Scenario, engineName string, extras [][]float64, seed int64) ([]byte, error) {
	spec := sweepSpec{
		Graph:        base.G.EdgeListString(),
		Engine:       engineName,
		F:            base.F,
		Initial:      floatBits(base.Initial),
		MaxRounds:    base.MaxRounds,
		Epsilon:      math.Float64bits(base.Epsilon),
		RecordStates: base.RecordStates,
		Seed:         seed,
		Extras:       floatBits2(extras),
	}
	rule := base.Rule
	if rule == nil {
		rule = core.TrimmedMean{}
	}
	spec.Rule = rule.Name()
	if _, err := ruleByName(spec.Rule); err != nil {
		return nil, fmt.Errorf("distrib: base rule %q is not a named built-in; distributed sweeps require trimmed-mean, mean, or trimmed-midpoint", spec.Rule)
	}
	if base.Faulty.Cap() != 0 {
		spec.Faulty = base.Faulty.Members()
		spec.HasFaulty = true
	}
	if base.Adversary != nil {
		name, err := adversaryName(base.Adversary, "base")
		if err != nil {
			return nil, err
		}
		spec.Adversary, spec.HasAdversary = name, true
	}
	spec.Scenarios = make([]sweepScenarioSpec, len(scenarios))
	for i := range scenarios {
		s := &scenarios[i]
		ss := sweepScenarioSpec{
			Name:      s.Name,
			Initial:   floatBits(s.Initial),
			MaxRounds: s.MaxRounds,
		}
		if s.Adversary != nil {
			name, err := adversaryName(s.Adversary, fmt.Sprintf("scenario %d", i))
			if err != nil {
				return nil, err
			}
			ss.Adversary, ss.HasAdversary = name, true
		}
		if s.HasFaulty || s.Faulty.Cap() != 0 {
			ss.Faulty = s.Faulty.Members()
			ss.HasFaulty = true
			if s.Faulty.Cap() == 0 {
				ss.Faulty = []int{}
			}
		}
		spec.Scenarios[i] = ss
	}
	return json.Marshal(jobSpec{Kind: "sweep", Sweep: &spec})
}

// buildNoopSpec serializes the benchmark's empty spec.
func buildNoopSpec() ([]byte, error) {
	return json.Marshal(jobSpec{Kind: "noop"})
}

// ruleByName resolves the built-in update rules.
func ruleByName(name string) (core.UpdateRule, error) {
	switch name {
	case "trimmed-mean":
		return core.TrimmedMean{}, nil
	case "mean":
		return core.Mean{}, nil
	case "trimmed-midpoint":
		return core.TrimmedMidpoint{}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown rule %q", name)
	}
}

// engineByName resolves the synchronous engines a sweep spec may name.
func engineByName(name string) (sim.Engine, error) {
	switch name {
	case "sequential":
		return sim.Sequential{}, nil
	case "concurrent":
		return sim.Concurrent{}, nil
	case "matrix":
		return sim.Matrix{}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown engine %q", name)
	}
}

// workerSpec is a decoded spec's executable form, cached per connection.
type workerSpec struct {
	kind string
	// scan:
	scanner *condition.ShardScanner
	// sweep:
	base      sim.Config
	scenarios []sim.Scenario
	engine    sim.Engine
	extras    [][]float64
}

// resolveSpec decodes and materializes a spec payload on a worker.
func resolveSpec(payload []byte) (*workerSpec, error) {
	var spec jobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return nil, fmt.Errorf("distrib: decoding spec: %w", err)
	}
	switch spec.Kind {
	case "noop":
		return &workerSpec{kind: "noop"}, nil
	case "scan":
		if spec.Scan == nil {
			return nil, fmt.Errorf("distrib: scan spec missing body")
		}
		g, err := graph.ParseEdgeListString(spec.Scan.Graph)
		if err != nil {
			return nil, fmt.Errorf("distrib: scan spec graph: %w", err)
		}
		scanner, err := condition.NewShardScanner(g, spec.Scan.F, spec.Scan.Threshold)
		if err != nil {
			return nil, err
		}
		return &workerSpec{kind: "scan", scanner: scanner}, nil
	case "sweep":
		return resolveSweepSpec(spec.Sweep)
	default:
		return nil, fmt.Errorf("distrib: unknown spec kind %q", spec.Kind)
	}
}

func resolveSweepSpec(spec *sweepSpec) (*workerSpec, error) {
	if spec == nil {
		return nil, fmt.Errorf("distrib: sweep spec missing body")
	}
	g, err := graph.ParseEdgeListString(spec.Graph)
	if err != nil {
		return nil, fmt.Errorf("distrib: sweep spec graph: %w", err)
	}
	engine, err := engineByName(spec.Engine)
	if err != nil {
		return nil, err
	}
	rule, err := ruleByName(spec.Rule)
	if err != nil {
		return nil, err
	}
	ws := &workerSpec{
		kind:   "sweep",
		engine: engine,
		extras: bitsFloat2(spec.Extras),
		base: sim.Config{
			G:            g,
			F:            spec.F,
			Initial:      bitsFloat(spec.Initial),
			Rule:         rule,
			MaxRounds:    spec.MaxRounds,
			Epsilon:      math.Float64frombits(spec.Epsilon),
			RecordStates: spec.RecordStates,
		},
	}
	if spec.HasFaulty {
		ws.base.Faulty = nodeset.FromMembers(g.N(), spec.Faulty...)
	}
	if spec.HasAdversary {
		strat, err := adversary.ByName(spec.Adversary, spec.Seed)
		if err != nil {
			return nil, err
		}
		ws.base.Adversary = strat
	}
	ws.scenarios = make([]sim.Scenario, len(spec.Scenarios))
	for i, ss := range spec.Scenarios {
		s := sim.Scenario{
			Name:      ss.Name,
			Initial:   bitsFloat(ss.Initial),
			MaxRounds: ss.MaxRounds,
		}
		if ss.HasAdversary {
			strat, err := adversary.ByName(ss.Adversary, spec.Seed)
			if err != nil {
				return nil, err
			}
			s.Adversary = strat
		}
		if ss.HasFaulty {
			s.HasFaulty = true
			s.Faulty = nodeset.FromMembers(g.N(), ss.Faulty...)
		}
		ws.scenarios[i] = s
	}
	return ws, nil
}

// witnessRecord is the JSON image of a condition.Witness: the universe size
// plus the members of each part.
type witnessRecord struct {
	N int   `json:"n"`
	F []int `json:"f"`
	L []int `json:"l"`
	C []int `json:"c"`
	R []int `json:"r"`
}

// encodeWitness serializes a witness for a reportViol frame.
func encodeWitness(w *condition.Witness) ([]byte, error) {
	return json.Marshal(witnessRecord{
		N: w.F.Cap(),
		F: w.F.Members(), L: w.L.Members(), C: w.C.Members(), R: w.R.Members(),
	})
}

// decodeWitness inverts encodeWitness.
func decodeWitness(raw []byte) (*condition.Witness, error) {
	var rec witnessRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("distrib: decoding witness: %w", err)
	}
	return &condition.Witness{
		F: nodeset.FromMembers(rec.N, rec.F...),
		L: nodeset.FromMembers(rec.N, rec.L...),
		C: nodeset.FromMembers(rec.N, rec.C...),
		R: nodeset.FromMembers(rec.N, rec.R...),
	}, nil
}
