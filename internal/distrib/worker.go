package distrib

// The worker side: dial the coordinator, pull jobs, execute them with the
// same kernels the single-process scan uses (condition.ShardScanner,
// sim.Sweep), and report results in lockstep. Workers are stateless between
// jobs — everything they know arrives in a spec — so any number of them can
// join, die, or be SIGKILLed without affecting the computed result.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"iabc/internal/sim"
)

// WorkerOptions configures Work.
type WorkerOptions struct {
	// DialPatience bounds how long the worker keeps retrying the initial
	// dial — workers routinely start before the coordinator has bound its
	// port (0 = 10s).
	DialPatience time.Duration
}

// Work connects to a coordinator at addr and processes jobs until the
// coordinator finishes (clean nil return), ctx is canceled, or the
// connection fails mid-protocol.
func Work(ctx context.Context, addr string, opts WorkerOptions) error {
	if opts.DialPatience <= 0 {
		opts.DialPatience = 10 * time.Second
	}
	nc, err := dialRetry(ctx, addr, opts.DialPatience)
	if err != nil {
		return err
	}
	defer nc.Close()
	// Unblock the reads below when ctx fires; the protocol has no other
	// cancellation point while waiting on the coordinator.
	stop := context.AfterFunc(ctx, func() { nc.Close() })
	defer stop()

	w := &worker{
		ctx:   ctx,
		nc:    nc,
		br:    bufio.NewReader(nc),
		specs: make(map[uint64]*workerSpec),
	}
	if err := w.hello(); err != nil {
		return w.wrap(err)
	}
	for {
		grant, done, err := w.requestJob()
		if err != nil {
			return w.wrap(err)
		}
		if done {
			return nil
		}
		spec, err := w.spec(grant.specID)
		if err != nil {
			return w.wrap(err)
		}
		if err := w.run(grant, spec); err != nil {
			return w.wrap(err)
		}
	}
}

func dialRetry(ctx context.Context, addr string, patience time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(patience)
	var lastErr error
	for {
		d := net.Dialer{Timeout: time.Second}
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return nc, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distrib: dialing coordinator %s: %w", addr, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

type worker struct {
	ctx     context.Context
	nc      net.Conn
	br      *bufio.Reader
	scratch []byte
	out     []byte
	specs   map[uint64]*workerSpec
}

// wrap maps connection teardown to the caller's intent: a coordinator that
// hangs up at a frame boundary is a clean shutdown, and a read error caused
// by our own ctx-triggered close reports the cancellation, not the close.
func (w *worker) wrap(err error) error {
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	if cerr := context.Cause(w.ctx); cerr != nil {
		return cerr
	}
	return err
}

func (w *worker) send(frame []byte) error {
	_, err := w.nc.Write(frame)
	return err
}

// read returns the next frame; the payload aliases the worker's scratch
// buffer and is valid until the next read.
func (w *worker) read() (byte, []byte, error) {
	kind, payload, scratch, err := readFrame(w.br, w.scratch)
	w.scratch = scratch
	return kind, payload, err
}

func (w *worker) hello() error {
	if err := w.send(appendHello(w.out[:0])); err != nil {
		return err
	}
	kind, payload, err := w.read()
	if err != nil {
		return err
	}
	if kind != kindHello {
		return fmt.Errorf("distrib: expected hello, got frame kind %d", kind)
	}
	return decodeHello(payload)
}

func (w *worker) requestJob() (jobGrant, bool, error) {
	if err := w.send(appendJobRequest(w.out[:0])); err != nil {
		return jobGrant{}, false, err
	}
	kind, payload, err := w.read()
	if err != nil {
		return jobGrant{}, false, err
	}
	switch kind {
	case kindDone:
		return jobGrant{}, true, nil
	case kindJobGrant:
		g, err := decodeJobGrant(payload)
		return g, false, err
	default:
		return jobGrant{}, false, fmt.Errorf("distrib: expected grant, got frame kind %d", kind)
	}
}

// spec returns the cached spec or fetches it from the coordinator.
func (w *worker) spec(specID uint64) (*workerSpec, error) {
	if ws, ok := w.specs[specID]; ok {
		return ws, nil
	}
	if err := w.send(appendNeedSpec(w.out[:0], specID)); err != nil {
		return nil, err
	}
	kind, payload, err := w.read()
	if err != nil {
		return nil, err
	}
	if kind != kindSpec {
		return nil, fmt.Errorf("distrib: expected spec, got frame kind %d", kind)
	}
	id, body, err := decodeSpec(payload)
	if err != nil {
		return nil, err
	}
	if id != specID {
		return nil, fmt.Errorf("distrib: asked for spec %d, got %d", specID, id)
	}
	ws, err := resolveSpec(body)
	if err != nil {
		return nil, err
	}
	w.specs[specID] = ws
	return ws, nil
}

// readAck reads the ack answering the report just sent.
func (w *worker) readAck(jobID uint64) (ack, error) {
	kind, payload, err := w.read()
	if err != nil {
		return ack{}, err
	}
	if kind != kindAck {
		return ack{}, fmt.Errorf("distrib: expected ack, got frame kind %d", kind)
	}
	a, err := decodeAck(payload)
	if err != nil {
		return ack{}, err
	}
	if a.jobID != jobID {
		return ack{}, fmt.Errorf("distrib: ack for job %d while running job %d", a.jobID, jobID)
	}
	return a, nil
}

func (w *worker) run(g jobGrant, ws *workerSpec) error {
	switch {
	case g.kind == jobScan && ws.kind == "scan":
		return w.runScan(g, ws)
	case g.kind == jobScenario && ws.kind == "sweep":
		return w.runScenarios(g, ws)
	case g.kind == jobNoop && ws.kind == "noop":
		if err := w.send(appendReportOK(w.out[:0], reportOK{jobID: g.jobID, through: g.hi})); err != nil {
			return err
		}
		_, err := w.readAck(g.jobID)
		return err
	default:
		return fmt.Errorf("distrib: job kind %d does not match spec kind %q", g.kind, ws.kind)
	}
}

// runScan scans [lo, hi) in reportEvery-sized slices, renewing the lease
// with each report and honoring steal shrinks (ack.newHi) and cancels.
func (w *worker) runScan(g jobGrant, ws *workerSpec) error {
	acked, hi := g.lo, g.hi
	for acked < hi {
		end := acked + int64(g.reportEvery)
		if end > hi {
			end = hi
		}
		rr, err := ws.scanner.ScanRange(w.ctx, acked, end)
		if err != nil {
			return err
		}
		if rr.Violation >= 0 {
			witness, err := encodeWitness(rr.Witness)
			if err != nil {
				return err
			}
			if err := w.send(appendReportViol(w.out[:0], reportViol{
				jobID: g.jobID, viol: rr.Violation, sat: rr.Satisfied, partial: rr.Partial, witness: witness,
			})); err != nil {
				return err
			}
			_, err = w.readAck(g.jobID)
			return err
		}
		if err := w.send(appendReportOK(w.out[:0], reportOK{
			jobID: g.jobID, through: end, counters: rr.Satisfied,
		})); err != nil {
			return err
		}
		a, err := w.readAck(g.jobID)
		if err != nil {
			return err
		}
		if a.cancel {
			return nil
		}
		acked, hi = end, a.newHi
	}
	return nil
}

// runScenarios executes each scenario index in [lo, hi) as a one-scenario
// sim.Sweep — the same engine path a local sweep takes — and reports the
// bit-exact encoded result.
func (w *worker) runScenarios(g jobGrant, ws *workerSpec) error {
	for i := g.lo; i < g.hi; i++ {
		if i < 0 || i >= int64(len(ws.scenarios)) {
			return fmt.Errorf("distrib: scenario index %d outside [0, %d)", i, len(ws.scenarios))
		}
		res, err := sim.Sweep(w.ctx, ws.base, ws.scenarios[i:i+1], sim.SweepOptions{
			Engine: ws.engine, Workers: 1, Extras: ws.extras,
		})
		if err != nil {
			return err
		}
		var finals [][]float64
		if res.Finals != nil {
			finals = res.Finals[0]
		}
		payload, err := sim.EncodeScenarioResult(res.Traces[0], finals)
		if err != nil {
			return err
		}
		if err := w.send(appendReportTrace(w.out[:0], reportTrace{jobID: g.jobID, index: i, payload: payload})); err != nil {
			return err
		}
		a, err := w.readAck(g.jobID)
		if err != nil {
			return err
		}
		if a.cancel {
			return nil
		}
	}
	return nil
}
