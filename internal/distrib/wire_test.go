package distrib

import (
	"bufio"
	"bytes"
	"testing"

	"iabc/internal/condition"
)

// testFrames returns one valid encoded frame per kind, paired with a
// re-encoder that rebuilds the frame from its decoded form.
func testFrames(t *testing.T) [][]byte {
	t.Helper()
	counters := condition.WorkCounters{Candidates: 7, Pruned: 2, MemoHits: 3}
	return [][]byte{
		appendHello(nil),
		appendJobRequest(nil),
		appendJobGrant(nil, jobGrant{jobID: 9, specID: 2, kind: jobScan, lo: 128, hi: 1152, reportEvery: 256}),
		appendNeedSpec(nil, 2),
		appendSpec(nil, 2, []byte(`{"kind":"noop"}`)),
		appendReportOK(nil, reportOK{jobID: 9, through: 384, counters: counters}),
		appendReportViol(nil, reportViol{jobID: 9, viol: 400, sat: counters, partial: condition.WorkCounters{Candidates: 1}, witness: []byte(`{"n":4}`)}),
		appendReportTrace(nil, reportTrace{jobID: 9, index: 3, payload: []byte(`{"version":1}`)}),
		appendAck(nil, ack{jobID: 9, newHi: 512, cancel: true}),
		appendDone(nil),
	}
}

// reencode rebuilds a frame from its decoded payload, or returns nil when
// the payload does not decode (the fuzzer then only requires totality).
func reencode(kind byte, payload []byte) []byte {
	switch kind {
	case kindHello:
		if decodeHello(payload) != nil {
			return nil
		}
		return appendHello(nil)
	case kindJobRequest:
		if len(payload) != 0 {
			return nil
		}
		return appendJobRequest(nil)
	case kindDone:
		if len(payload) != 0 {
			return nil
		}
		return appendDone(nil)
	case kindJobGrant:
		g, err := decodeJobGrant(payload)
		if err != nil {
			return nil
		}
		return appendJobGrant(nil, g)
	case kindNeedSpec:
		id, err := decodeNeedSpec(payload)
		if err != nil {
			return nil
		}
		return appendNeedSpec(nil, id)
	case kindSpec:
		id, body, err := decodeSpec(payload)
		if err != nil {
			return nil
		}
		return appendSpec(nil, id, body)
	case kindReportOK:
		r, err := decodeReportOK(payload)
		if err != nil {
			return nil
		}
		return appendReportOK(nil, r)
	case kindReportViol:
		r, err := decodeReportViol(payload)
		if err != nil {
			return nil
		}
		return appendReportViol(nil, r)
	case kindReportTrace:
		r, err := decodeReportTrace(payload)
		if err != nil {
			return nil
		}
		return appendReportTrace(nil, r)
	case kindAck:
		a, err := decodeAck(payload)
		if err != nil || payload[16] > ackFlagCancel {
			return nil // undefined flag bits do not re-encode canonically
		}
		return appendAck(nil, a)
	}
	return nil
}

// TestJobWireRoundTrip pins that every frame kind survives encode → frame
// read → decode → re-encode byte-identically.
func TestJobWireRoundTrip(t *testing.T) {
	frames := testFrames(t)
	var stream []byte
	for _, f := range frames {
		stream = append(stream, f...)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var scratch []byte
	for i, frame := range frames {
		kind, payload, sc, err := readFrame(br, scratch)
		scratch = sc
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		re := reencode(kind, payload)
		if re == nil {
			t.Fatalf("frame %d (kind %d): decoded form did not re-encode", i, kind)
		}
		if !bytes.Equal(re, frame) {
			t.Fatalf("frame %d (kind %d): re-encoded % x, want % x", i, kind, re, frame)
		}
	}
	if _, _, _, err := readFrame(br, scratch); err == nil {
		t.Fatal("expected EOF after the last frame")
	}
}

// FuzzJobWireCodec mirrors transport's FuzzWireCodec for the job protocol:
// an arbitrary byte stream never panics the frame reader or any decoder, the
// scratch buffer never exceeds the sanity cap, and every frame that decodes
// re-encodes to exactly the bytes consumed.
func FuzzJobWireCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendHello(nil))
	var all []byte
	counters := condition.WorkCounters{Candidates: 7, Pruned: 2, MemoHits: 3}
	for _, frame := range [][]byte{
		appendJobRequest(nil),
		appendJobGrant(nil, jobGrant{jobID: 1, specID: 1, kind: jobScenario, lo: 0, hi: 1, reportEvery: 1}),
		appendSpec(nil, 1, []byte(`{"kind":"noop"}`)),
		appendReportOK(nil, reportOK{jobID: 1, through: 1, counters: counters}),
		appendReportViol(nil, reportViol{jobID: 1, viol: 0, sat: counters, witness: []byte(`{}`)}),
		appendAck(nil, ack{jobID: 1, newHi: 1}),
		appendDone(nil),
	} {
		all = append(all, frame...)
	}
	f.Add(all)
	f.Add([]byte{0, 0, 0, 32, 1, 2, 3})         // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0}) // hostile length
	f.Add([]byte{0, 0, 0, 0})                   // zero-length frame
	f.Add([]byte{0, 0, 0, 6, kindAck, 0})       // wrong fixed length
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var scratch []byte
		offset := 0
		for {
			kind, payload, sc, err := readFrame(br, scratch)
			scratch = sc
			if cap(scratch) > maxFramePayload {
				t.Fatalf("scratch grew to %d bytes, cap is %d", cap(scratch), maxFramePayload)
			}
			if err != nil {
				return // any error ends the stream; no panic is the property
			}
			frameLen := frameHeaderLen + 1 + len(payload)
			consumed := data[offset : offset+frameLen]
			if re := reencode(kind, payload); re != nil && !bytes.Equal(re, consumed) {
				t.Fatalf("kind %d re-encodes to % x, consumed % x", kind, re, consumed)
			}
			offset += frameLen
		}
	})
}
