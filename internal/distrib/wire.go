// Package distrib is the distributed scan runner: a coordinator that
// partitions the repo's three long-running computations — the exact
// condition check, the maxf scan, and scenario sweeps — into addressable
// job ranges and serves them to workers over framed TCP, with leases,
// work stealing, and crash-identical resume.
//
// The protocol is a lockstep request/report loop per connection:
//
//	worker                          coordinator
//	hello          ─────────────▶
//	               ◀─────────────  hello
//	jobRequest     ─────────────▶
//	               ◀─────────────  jobGrant (or done)
//	needSpec       ─────────────▶                 (first time per spec)
//	               ◀─────────────  spec
//	reportOK       ─────────────▶                 (every reportEvery items)
//	               ◀─────────────  ack {newHi, cancel}
//	…              ─────────────▶
//	jobRequest     ─────────────▶
//
// Every job is a half-open index range into a deterministic enumeration
// (canonical fault sets for scans, scenario indexes for sweeps), and every
// item's work is a pure function of the job's spec — so a lease that
// expires or dies is simply re-executed elsewhere with an identical
// outcome. See docs/THEORY.md, "Soundness of the distributed scan".
package distrib

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"iabc/internal/condition"
)

// Wire format: 4-byte big-endian length prefix covering a 1-byte frame kind
// plus the kind's payload. Fixed-size kinds are strict (the length must
// match exactly); variable-size kinds (spec, reportViol, reportTrace) carry
// a JSON tail and are bounded by maxFramePayload, checked before any
// allocation — the same hostile-length discipline as internal/transport.
const (
	frameHeaderLen = 4
	// maxFramePayload caps any declared frame length. Spec and trace
	// payloads are JSON of graphs, scenario lists, or recorded traces;
	// 16 MiB is far above any real instance while still bounding what a
	// corrupt prefix can make the reader allocate.
	maxFramePayload = 16 << 20
	// wireVersion is the protocol version exchanged in hello frames.
	wireVersion = 1
	// helloMagic guards against a stray client dialing the job port.
	helloMagic = 0x69616264 // "iabd"
)

// Frame kinds.
const (
	kindHello byte = iota + 1
	kindJobRequest
	kindJobGrant
	kindNeedSpec
	kindSpec
	kindReportOK
	kindReportViol
	kindReportTrace
	kindAck
	kindDone
)

// Fixed payload sizes per kind (kind byte excluded).
const (
	helloLen       = 5  // magic u32, version u8
	jobGrantLen    = 37 // jobID u64, specID u64, kind u8, lo u64, hi u64, reportEvery u32
	needSpecLen    = 8  // specID u64
	reportOKLen    = 40 // jobID u64, through u64, counters 3×u64
	ackLen         = 17 // jobID u64, newHi u64, flags u8
	specMinLen     = 8  // specID u64 + JSON tail
	reportViolMin  = 64 // jobID u64, viol u64, sat 3×u64, partial 3×u64 + witness JSON
	reportTraceMin = 16 // jobID u64, index u64 + result JSON
)

// jobKind discriminates what a granted index range indexes into.
type jobKind uint8

const (
	// jobScan ranges over the canonical fault-set enumeration of a scan
	// spec (condition.ShardScanner order).
	jobScan jobKind = iota + 1
	// jobScenario ranges over the scenario list of a sweep spec; scenarios
	// are indivisible, so grants always have hi = lo+1.
	jobScenario
	// jobNoop is the dispatch benchmark's empty job: acknowledged complete
	// without any computation.
	jobNoop
)

// jobGrant assigns a worker the half-open range [lo, hi) of the spec's
// enumeration. reportEvery is the lockstep report cadence in items.
type jobGrant struct {
	jobID       uint64
	specID      uint64
	kind        jobKind
	lo, hi      int64
	reportEvery uint32
}

// reportOK reports the clean completion of [prevAcked, through) with the
// aggregate work counters of exactly that span.
type reportOK struct {
	jobID    uint64
	through  int64
	counters condition.WorkCounters
}

// reportViol reports that the scan stopped at absolute index viol: the
// prefix [prevAcked, viol) passed with counters sat, the violating item
// itself contributed the early-exit delta partial, and witness is the
// violating partition's JSON (see witnessRecord).
type reportViol struct {
	jobID        uint64
	viol         int64
	sat, partial condition.WorkCounters
	witness      []byte
}

// reportTrace carries one completed scenario's bit-exact result
// (sim.EncodeScenarioResult payload).
type reportTrace struct {
	jobID   uint64
	index   int64
	payload []byte
}

// ack answers every report. newHi is the job's authoritative upper bound —
// it shrinks when the remainder was stolen — and cancel tells the worker to
// abandon the job (its lease was requeued, or the result is moot).
type ack struct {
	jobID  uint64
	newHi  int64
	cancel bool
}

const ackFlagCancel = 1

// —— encoders: append the full frame (header, kind, payload) to dst ——

func appendHeader(dst []byte, kind byte, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+payloadLen))
	return append(dst, kind)
}

func appendHello(dst []byte) []byte {
	dst = appendHeader(dst, kindHello, helloLen)
	dst = binary.BigEndian.AppendUint32(dst, helloMagic)
	return append(dst, wireVersion)
}

func appendJobRequest(dst []byte) []byte { return appendHeader(dst, kindJobRequest, 0) }
func appendDone(dst []byte) []byte       { return appendHeader(dst, kindDone, 0) }

func appendJobGrant(dst []byte, g jobGrant) []byte {
	dst = appendHeader(dst, kindJobGrant, jobGrantLen)
	dst = binary.BigEndian.AppendUint64(dst, g.jobID)
	dst = binary.BigEndian.AppendUint64(dst, g.specID)
	dst = append(dst, byte(g.kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(g.lo))
	dst = binary.BigEndian.AppendUint64(dst, uint64(g.hi))
	return binary.BigEndian.AppendUint32(dst, g.reportEvery)
}

func appendNeedSpec(dst []byte, specID uint64) []byte {
	dst = appendHeader(dst, kindNeedSpec, needSpecLen)
	return binary.BigEndian.AppendUint64(dst, specID)
}

func appendSpec(dst []byte, specID uint64, payload []byte) []byte {
	dst = appendHeader(dst, kindSpec, specMinLen+len(payload))
	dst = binary.BigEndian.AppendUint64(dst, specID)
	return append(dst, payload...)
}

func appendCounters(dst []byte, c condition.WorkCounters) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.Candidates))
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.Pruned))
	return binary.BigEndian.AppendUint64(dst, uint64(c.MemoHits))
}

func appendReportOK(dst []byte, r reportOK) []byte {
	dst = appendHeader(dst, kindReportOK, reportOKLen)
	dst = binary.BigEndian.AppendUint64(dst, r.jobID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.through))
	return appendCounters(dst, r.counters)
}

func appendReportViol(dst []byte, r reportViol) []byte {
	dst = appendHeader(dst, kindReportViol, reportViolMin+len(r.witness))
	dst = binary.BigEndian.AppendUint64(dst, r.jobID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.viol))
	dst = appendCounters(dst, r.sat)
	dst = appendCounters(dst, r.partial)
	return append(dst, r.witness...)
}

func appendReportTrace(dst []byte, r reportTrace) []byte {
	dst = appendHeader(dst, kindReportTrace, reportTraceMin+len(r.payload))
	dst = binary.BigEndian.AppendUint64(dst, r.jobID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.index))
	return append(dst, r.payload...)
}

func appendAck(dst []byte, a ack) []byte {
	dst = appendHeader(dst, kindAck, ackLen)
	dst = binary.BigEndian.AppendUint64(dst, a.jobID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.newHi))
	var flags byte
	if a.cancel {
		flags |= ackFlagCancel
	}
	return append(dst, flags)
}

// —— decoders: total on arbitrary payload bytes ——

func wantLen(kind string, p []byte, want int) error {
	if len(p) != want {
		return fmt.Errorf("distrib: %s payload %d bytes, want %d", kind, len(p), want)
	}
	return nil
}

func decodeHello(p []byte) error {
	if err := wantLen("hello", p, helloLen); err != nil {
		return err
	}
	if magic := binary.BigEndian.Uint32(p); magic != helloMagic {
		return fmt.Errorf("distrib: bad hello magic %#x", magic)
	}
	if v := p[4]; v != wireVersion {
		return fmt.Errorf("distrib: protocol version %d, want %d", v, wireVersion)
	}
	return nil
}

func decodeJobGrant(p []byte) (jobGrant, error) {
	if err := wantLen("jobGrant", p, jobGrantLen); err != nil {
		return jobGrant{}, err
	}
	g := jobGrant{
		jobID:       binary.BigEndian.Uint64(p[0:8]),
		specID:      binary.BigEndian.Uint64(p[8:16]),
		kind:        jobKind(p[16]),
		lo:          int64(binary.BigEndian.Uint64(p[17:25])),
		hi:          int64(binary.BigEndian.Uint64(p[25:33])),
		reportEvery: binary.BigEndian.Uint32(p[33:37]),
	}
	if g.kind < jobScan || g.kind > jobNoop {
		return jobGrant{}, fmt.Errorf("distrib: unknown job kind %d", g.kind)
	}
	if g.lo < 0 || g.hi < g.lo || g.reportEvery == 0 {
		return jobGrant{}, fmt.Errorf("distrib: invalid grant range [%d, %d) every %d", g.lo, g.hi, g.reportEvery)
	}
	return g, nil
}

func decodeNeedSpec(p []byte) (uint64, error) {
	if err := wantLen("needSpec", p, needSpecLen); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(p), nil
}

func decodeSpec(p []byte) (uint64, []byte, error) {
	if len(p) < specMinLen {
		return 0, nil, fmt.Errorf("distrib: spec payload %d bytes, want >= %d", len(p), specMinLen)
	}
	return binary.BigEndian.Uint64(p[0:8]), p[specMinLen:], nil
}

func decodeCounters(p []byte) condition.WorkCounters {
	return condition.WorkCounters{
		Candidates: int64(binary.BigEndian.Uint64(p[0:8])),
		Pruned:     int64(binary.BigEndian.Uint64(p[8:16])),
		MemoHits:   int64(binary.BigEndian.Uint64(p[16:24])),
	}
}

func decodeReportOK(p []byte) (reportOK, error) {
	if err := wantLen("reportOK", p, reportOKLen); err != nil {
		return reportOK{}, err
	}
	return reportOK{
		jobID:    binary.BigEndian.Uint64(p[0:8]),
		through:  int64(binary.BigEndian.Uint64(p[8:16])),
		counters: decodeCounters(p[16:40]),
	}, nil
}

func decodeReportViol(p []byte) (reportViol, error) {
	if len(p) < reportViolMin {
		return reportViol{}, fmt.Errorf("distrib: reportViol payload %d bytes, want >= %d", len(p), reportViolMin)
	}
	return reportViol{
		jobID:   binary.BigEndian.Uint64(p[0:8]),
		viol:    int64(binary.BigEndian.Uint64(p[8:16])),
		sat:     decodeCounters(p[16:40]),
		partial: decodeCounters(p[40:64]),
		witness: p[reportViolMin:],
	}, nil
}

func decodeReportTrace(p []byte) (reportTrace, error) {
	if len(p) < reportTraceMin {
		return reportTrace{}, fmt.Errorf("distrib: reportTrace payload %d bytes, want >= %d", len(p), reportTraceMin)
	}
	return reportTrace{
		jobID:   binary.BigEndian.Uint64(p[0:8]),
		index:   int64(binary.BigEndian.Uint64(p[8:16])),
		payload: p[reportTraceMin:],
	}, nil
}

func decodeAck(p []byte) (ack, error) {
	if err := wantLen("ack", p, ackLen); err != nil {
		return ack{}, err
	}
	return ack{
		jobID:  binary.BigEndian.Uint64(p[0:8]),
		newHi:  int64(binary.BigEndian.Uint64(p[8:16])),
		cancel: p[16]&ackFlagCancel != 0,
	}, nil
}

// readFrame reads one frame into scratch (grown only up to the sanity cap)
// and returns its kind and payload, which alias scratch and are valid until
// the next call. io.EOF at a frame boundary is returned as-is; a stream
// ending mid-frame yields io.ErrUnexpectedEOF.
func readFrame(br *bufio.Reader, scratch []byte) (kind byte, payload, newScratch []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, scratch, fmt.Errorf("distrib: zero-length frame")
	}
	if n > maxFramePayload {
		return 0, nil, scratch, fmt.Errorf("distrib: frame length %d exceeds cap %d", n, maxFramePayload)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(br, scratch); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, scratch, err
	}
	return scratch[0], scratch[1:], scratch, nil
}
