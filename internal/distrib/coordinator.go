package distrib

// The coordinator owns the authoritative job state: a queue of pending index
// spans, a map of leased jobs, and — for scans — the durable contiguous
// frontier (condition.ScanFrontier). Each worker connection is served by its
// own goroutine in lockstep (only that goroutine writes to the connection),
// so all cross-connection coordination happens under one mutex.
//
// Correctness rests on three invariants:
//
//   - Job ranges are pairwise disjoint at all times: grants chunk spans off
//     the queue, stealing splits a leased range at a point the worker cannot
//     have passed (acked + reportEvery), and requeues re-insert exactly the
//     unacknowledged remainder [acked, hi).
//   - Reports are fenced by jobID: a lease that expires (or whose connection
//     drops) is removed from the job map before its range is requeued, so a
//     zombie worker's late report finds no job and is answered with a cancel
//     ack — it is never journaled, and each index is journaled exactly once.
//   - The frontier only advances over gap-free satisfied prefixes, so the
//     durable checkpoint — and the composed Result — are byte-identical to
//     the single-process scan no matter how leases moved.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"iabc/internal/condition"
	"iabc/internal/graph"
	"iabc/internal/sim"
)

// Defaults for Options zero values.
const (
	DefaultLease       = 10 * time.Second
	DefaultChunkSize   = 1024
	DefaultReportEvery = 256
)

// Options configures a Coordinator.
type Options struct {
	// Lease is how long a granted job may go without a report before its
	// unacknowledged remainder is requeued (0 = DefaultLease).
	Lease time.Duration
	// ChunkSize is the maximum fault sets per scan grant (0 = DefaultChunkSize).
	ChunkSize int
	// ReportEvery is the scan report cadence in fault sets (0 =
	// DefaultReportEvery). Smaller values tighten lease granularity and
	// steal latency at the cost of more round trips.
	ReportEvery int
}

func (o Options) withDefaults() Options {
	if o.Lease <= 0 {
		o.Lease = DefaultLease
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.ReportEvery <= 0 {
		o.ReportEvery = DefaultReportEvery
	}
	return o
}

// Stats counts coordinator-side scheduling events.
type Stats struct {
	// WorkersSeen counts completed hello exchanges.
	WorkersSeen int64
	// JobsGranted counts grants sent (steal grants included).
	JobsGranted int64
	// JobsStolen counts grants carved out of another worker's leased range.
	JobsStolen int64
	// LeasesRequeued counts jobs whose remainder was requeued after a lease
	// expiry or connection drop.
	LeasesRequeued int64
	// StaleReports counts reports answered with a cancel ack because their
	// job had been requeued, canceled, or completed elsewhere.
	StaleReports int64
}

// span is a pending half-open index range.
type span struct{ lo, hi int64 }

// job is one leased range.
type job struct {
	id      uint64
	lo, hi  int64
	acked   int64 // all of [lo, acked) has been reported and journaled
	expires time.Time
	owner   *connState
}

// phase is one distributed computation: a single scan, sweep, or noop batch.
// The coordinator runs at most one phase at a time (MaxF runs its checks
// sequentially, exactly like the single-process scan).
type phase struct {
	specID      uint64
	kind        jobKind
	chunk       int64
	reportEvery uint32
	// open marks a phase whose spans arrive incrementally (sweeps submit
	// scenario jobs as sim.Sweep schedules them); a closed phase completes
	// when queue and jobs drain.
	open  bool
	queue []span
	jobs  map[uint64]*job
	// Scan state: the durable frontier plus the minimal violation seen.
	fr          *condition.ScanFrontier
	bestViol    int64
	witnessRaw  []byte
	violPartial condition.WorkCounters
	onProgress  condition.ProgressFunc
	// Sweep state: per-scenario-index result channels (buffered 1).
	results map[int64]chan []byte

	completed bool
	err       error
	done      chan struct{}
}

type connState struct{ nc net.Conn }

// Coordinator serves job ranges to workers and aggregates their reports.
type Coordinator struct {
	opts Options
	ln   net.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	conns    map[*connState]struct{}
	specs    map[uint64][]byte
	nextSpec uint64
	nextJob  uint64
	ph       *phase
	stats    Stats

	sweepStop chan struct{}
	wg        sync.WaitGroup
}

// NewCoordinator returns an unstarted coordinator; call Listen.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		opts:      opts.withDefaults(),
		conns:     make(map[*connState]struct{}),
		specs:     make(map[uint64][]byte),
		sweepStop: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Listen binds the job port ("host:port"; ":0" picks a free port) and starts
// accepting workers.
func (c *Coordinator) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("distrib: listen %s: %w", addr, err)
	}
	c.ln = ln
	c.wg.Add(2)
	go c.acceptLoop()
	go c.leaseSweeper()
	return nil
}

// Addr returns the bound listen address.
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Stats returns a snapshot of the scheduling counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close stops accepting, disconnects workers, and fails any active phase.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.sweepStop)
	for cs := range c.conns {
		cs.nc.Close()
	}
	if ph := c.ph; ph != nil && !ph.completed {
		ph.completed = true
		ph.err = errors.New("distrib: coordinator closed")
		close(ph.done)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	var err error
	if c.ln != nil {
		err = c.ln.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return
		}
		cs := &connState{nc: nc}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return
		}
		c.conns[cs] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go c.handleConn(cs)
	}
}

// leaseSweeper requeues expired leases and periodically wakes grant waiters.
func (c *Coordinator) leaseSweeper() {
	defer c.wg.Done()
	tick := c.opts.Lease / 4
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		if ph := c.ph; ph != nil && !ph.completed {
			for id, j := range ph.jobs {
				if now.After(j.expires) {
					delete(ph.jobs, id)
					c.requeueLocked(ph, j)
				}
			}
			c.checkCompleteLocked(ph)
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// requeueLocked puts a removed job's unacknowledged remainder back on the
// queue, unless a lower violation made it moot.
func (c *Coordinator) requeueLocked(ph *phase, j *job) {
	c.stats.LeasesRequeued++
	if j.acked < j.hi && (ph.bestViol < 0 || j.lo <= ph.bestViol) {
		ph.queue = append(ph.queue, span{j.acked, j.hi})
	}
}

// checkCompleteLocked settles the phase once all work has drained.
func (c *Coordinator) checkCompleteLocked(ph *phase) {
	if !ph.completed && !ph.open && len(ph.queue) == 0 && len(ph.jobs) == 0 {
		ph.completed = true
		close(ph.done)
	}
}

// failPhaseLocked aborts the phase with err (first error wins).
func (c *Coordinator) failPhaseLocked(ph *phase, err error) {
	if ph.completed {
		return
	}
	ph.completed = true
	ph.err = err
	ph.queue = nil
	for id := range ph.jobs {
		delete(ph.jobs, id)
	}
	close(ph.done)
}

// —— connection serving ——

func (c *Coordinator) handleConn(cs *connState) {
	defer c.wg.Done()
	defer c.dropConn(cs)
	nc := cs.nc
	br := bufio.NewReader(nc)
	var scratch, out []byte

	// Hello exchange first; anything else is a stray client.
	kind, payload, scratch, err := readFrame(br, scratch)
	if err != nil || kind != kindHello || decodeHello(payload) != nil {
		return
	}
	if _, err := nc.Write(appendHello(out[:0])); err != nil {
		return
	}
	c.mu.Lock()
	c.stats.WorkersSeen++
	c.mu.Unlock()

	for {
		kind, payload, newScratch, err := readFrame(br, scratch)
		if err != nil {
			return
		}
		scratch = newScratch
		var notify condition.ProgressFunc
		out = out[:0]
		switch kind {
		case kindJobRequest:
			grant, spanDone := c.nextGrant(cs)
			if spanDone {
				out = appendDone(out)
			} else {
				out = appendJobGrant(out, grant)
			}
		case kindNeedSpec:
			specID, err := decodeNeedSpec(payload)
			if err != nil {
				return
			}
			c.mu.Lock()
			spec, ok := c.specs[specID]
			c.mu.Unlock()
			if !ok {
				return
			}
			out = appendSpec(out, specID, spec)
		case kindReportOK:
			r, err := decodeReportOK(payload)
			if err != nil {
				return
			}
			a, np, err := c.handleReportOK(r)
			if err != nil {
				return
			}
			notify = np
			out = appendAck(out, a)
		case kindReportViol:
			r, err := decodeReportViol(payload)
			if err != nil {
				return
			}
			a, np, err := c.handleReportViol(r)
			if err != nil {
				return
			}
			notify = np
			out = appendAck(out, a)
		case kindReportTrace:
			r, err := decodeReportTrace(payload)
			if err != nil {
				return
			}
			out = appendAck(out, c.handleReportTrace(r))
		default:
			return
		}
		if _, err := nc.Write(out); err != nil {
			return
		}
		if notify != nil {
			notify(condition.Progress{})
		}
	}
}

// dropConn removes the connection and requeues every job it still leases.
func (c *Coordinator) dropConn(cs *connState) {
	cs.nc.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.conns, cs)
	if ph := c.ph; ph != nil && !ph.completed {
		for id, j := range ph.jobs {
			if j.owner == cs {
				delete(ph.jobs, id)
				c.requeueLocked(ph, j)
			}
		}
		c.checkCompleteLocked(ph)
	}
	c.cond.Broadcast()
}

// nextGrant blocks until a job is available, carving one off the largest
// pending span — or, when the queue is dry, stealing the far half of the
// largest leased scan range. done=true means the coordinator is shutting
// down and the worker should exit.
func (c *Coordinator) nextGrant(cs *connState) (jobGrant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return jobGrant{}, true
		}
		if ph := c.ph; ph != nil && !ph.completed {
			if len(ph.queue) > 0 {
				// Pop the largest span; grant a chunk, push back the rest.
				best := 0
				for i, sp := range ph.queue {
					if sp.hi-sp.lo > ph.queue[best].hi-ph.queue[best].lo {
						best = i
					}
				}
				sp := ph.queue[best]
				ph.queue[best] = ph.queue[len(ph.queue)-1]
				ph.queue = ph.queue[:len(ph.queue)-1]
				hi := sp.lo + ph.chunk
				if hi > sp.hi {
					hi = sp.hi
				}
				if hi < sp.hi {
					ph.queue = append(ph.queue, span{hi, sp.hi})
				}
				return c.grantLocked(ph, cs, sp.lo, hi), false
			}
			if ph.kind == jobScan {
				// Steal: split the leased range with the most work beyond
				// its safe point (the furthest index the worker could reach
				// before its next report round-trips).
				var victim *job
				var bestAvail int64
				for _, j := range ph.jobs {
					safe := j.acked + int64(ph.reportEvery)
					if safe > j.hi {
						safe = j.hi
					}
					if avail := j.hi - safe; avail > bestAvail {
						bestAvail, victim = avail, j
					}
				}
				if victim != nil && bestAvail >= 2*int64(ph.reportEvery) {
					safe := victim.acked + int64(ph.reportEvery)
					mid := safe + (victim.hi-safe)/2
					hi := victim.hi
					victim.hi = mid // conveyed by the victim's next ack.newHi
					c.stats.JobsStolen++
					return c.grantLocked(ph, cs, mid, hi), false
				}
			}
		}
		c.cond.Wait()
	}
}

func (c *Coordinator) grantLocked(ph *phase, cs *connState, lo, hi int64) jobGrant {
	c.nextJob++
	j := &job{id: c.nextJob, lo: lo, hi: hi, acked: lo, expires: time.Now().Add(c.opts.Lease), owner: cs}
	ph.jobs[j.id] = j
	c.stats.JobsGranted++
	return jobGrant{jobID: j.id, specID: ph.specID, kind: ph.kind, lo: lo, hi: hi, reportEvery: ph.reportEvery}
}

// staleAck answers a report whose job is gone: the worker must abandon it.
func (c *Coordinator) staleAckLocked(jobID uint64) ack {
	c.stats.StaleReports++
	return ack{jobID: jobID, cancel: true}
}

// lookupJob fences a report: nil means the job was requeued, canceled, or
// never existed, and the report must not be journaled.
func (ph *phase) lookupJob(id uint64) *job {
	if ph == nil || ph.completed {
		return nil
	}
	return ph.jobs[id]
}

func (c *Coordinator) handleReportOK(r reportOK) (ack, condition.ProgressFunc, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ph := c.ph
	j := ph.lookupJob(r.jobID)
	if j == nil {
		return c.staleAckLocked(r.jobID), nil, nil
	}
	if r.through < j.acked || r.through > j.hi {
		return ack{}, nil, fmt.Errorf("distrib: report through %d outside [%d, %d]", r.through, j.acked, j.hi)
	}
	if ph.fr != nil && r.through > j.acked {
		if err := ph.fr.CompleteSpan(context.Background(), j.acked, r.through, r.counters); err != nil {
			c.failPhaseLocked(ph, err)
			return c.staleAckLocked(r.jobID), nil, nil
		}
	}
	j.acked = r.through
	j.expires = time.Now().Add(c.opts.Lease)
	if j.acked >= j.hi {
		delete(ph.jobs, j.id)
		c.checkCompleteLocked(ph)
	}
	return ack{jobID: j.id, newHi: j.hi}, ph.onProgress, nil
}

func (c *Coordinator) handleReportViol(r reportViol) (ack, condition.ProgressFunc, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ph := c.ph
	j := ph.lookupJob(r.jobID)
	if j == nil {
		return c.staleAckLocked(r.jobID), nil, nil
	}
	if r.viol < j.acked || r.viol >= j.hi {
		return ack{}, nil, fmt.Errorf("distrib: violation %d outside [%d, %d)", r.viol, j.acked, j.hi)
	}
	if ph.fr != nil && r.viol > j.acked {
		if err := ph.fr.CompleteSpan(context.Background(), j.acked, r.viol, r.sat); err != nil {
			c.failPhaseLocked(ph, err)
			return c.staleAckLocked(r.jobID), nil, nil
		}
	}
	if ph.bestViol < 0 || r.viol < ph.bestViol {
		ph.bestViol = r.viol
		ph.witnessRaw = append(ph.witnessRaw[:0], r.witness...)
		ph.violPartial = r.partial
	}
	delete(ph.jobs, j.id)
	// Everything past the lowest violation is moot: the sequential scan
	// would never have reached it. Ranges are disjoint, so no other job or
	// span straddles the violation.
	for id, jj := range ph.jobs {
		if jj.lo > ph.bestViol {
			delete(ph.jobs, id)
		}
	}
	keep := ph.queue[:0]
	for _, sp := range ph.queue {
		if sp.lo <= ph.bestViol {
			keep = append(keep, sp)
		}
	}
	ph.queue = keep
	c.checkCompleteLocked(ph)
	return ack{jobID: j.id, newHi: j.hi}, ph.onProgress, nil
}

func (c *Coordinator) handleReportTrace(r reportTrace) ack {
	c.mu.Lock()
	defer c.mu.Unlock()
	ph := c.ph
	j := ph.lookupJob(r.jobID)
	if j == nil {
		return c.staleAckLocked(r.jobID)
	}
	ch := ph.results[r.index]
	if ch == nil {
		return c.staleAckLocked(r.jobID)
	}
	delete(ph.results, r.index)
	ch <- append([]byte(nil), r.payload...) // buffered 1; payload aliases the read scratch
	delete(ph.jobs, j.id)
	c.checkCompleteLocked(ph)
	return ack{jobID: j.id, newHi: j.hi}
}

// —— phase lifecycle ——

func (c *Coordinator) registerSpec(payload []byte) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSpec++
	c.specs[c.nextSpec] = payload
	return c.nextSpec
}

func (c *Coordinator) startPhase(ph *phase) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("distrib: coordinator closed")
	}
	if c.ph != nil && !c.ph.completed {
		return errors.New("distrib: a phase is already running")
	}
	ph.jobs = make(map[uint64]*job)
	ph.done = make(chan struct{})
	ph.bestViol = -1
	c.ph = ph
	c.checkCompleteLocked(ph)
	c.cond.Broadcast()
	return nil
}

// waitPhase blocks until the phase drains or ctx fires; either way the
// coordinator's active phase is cleared before returning.
func (c *Coordinator) waitPhase(ctx context.Context, ph *phase) error {
	var err error
	select {
	case <-ph.done:
		err = ph.err
	case <-ctx.Done():
		err = context.Cause(ctx)
	}
	c.mu.Lock()
	if !ph.completed {
		c.failPhaseLocked(ph, err)
	}
	if c.ph == ph {
		c.ph = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return err
}

// —— the three distributed entry points ——

// CheckScan runs one exact check with the fault-set enumeration distributed
// across connected workers. It implements condition.MaxFOptions.CheckRunner
// and honors the CheckScan contract: same Result for the same identity,
// opts.Store consulted for resume and verdict caching.
func (c *Coordinator) CheckScan(ctx context.Context, g *graph.Graph, f, threshold int, opts condition.ScanOptions) (condition.Result, error) {
	fr, cached, err := condition.LoadScanFrontier(ctx, opts.Store, g, f, threshold, opts.CheckpointEvery)
	if err != nil {
		return condition.Result{}, err
	}
	if cached != nil {
		return *cached, nil
	}
	resume, _ := fr.ResumePoint()
	total := fr.Total()
	spec, err := buildScanSpec(g, f, threshold)
	if err != nil {
		return condition.Result{}, err
	}
	ph := &phase{
		specID:      c.registerSpec(spec),
		kind:        jobScan,
		chunk:       int64(c.opts.ChunkSize),
		reportEvery: uint32(c.opts.ReportEvery),
		fr:          fr,
	}
	if resume < total {
		ph.queue = []span{{resume, total}}
	}
	if opts.OnProgress != nil {
		cb, fr := opts.OnProgress, fr
		ph.onProgress = func(condition.Progress) {
			done, _ := fr.Position()
			cb(condition.Progress{FaultSetsDone: done, FaultSetsTotal: total})
		}
	}
	if err := c.startPhase(ph); err != nil {
		return condition.Result{}, err
	}
	if err := c.waitPhase(ctx, ph); err != nil {
		fr.Flush(context.Background())
		return condition.Result{}, err
	}

	frontier, agg := fr.Position()
	res := condition.Result{
		Satisfied:          true,
		FaultSetsExamined:  frontier,
		CandidatesExamined: agg.Candidates,
		CandidatesPruned:   agg.Pruned,
		MemoHits:           agg.MemoHits,
		FaultSetsResumed:   resume,
	}
	if ph.bestViol >= 0 {
		w, err := decodeWitness(ph.witnessRaw)
		if err != nil {
			return condition.Result{}, err
		}
		res.Satisfied = false
		res.Witness = w
		res.FaultSetsExamined = ph.bestViol + 1
		res.CandidatesExamined += ph.violPartial.Candidates
		res.CandidatesPruned += ph.violPartial.Pruned
		res.MemoHits += ph.violPartial.MemoHits
	}
	if err := fr.Finish(ctx, res); err != nil {
		return condition.Result{}, err
	}
	return res, nil
}

// MaxF runs the monotone f-sweep with every per-f check distributed. It is
// condition.MaxFScan with CheckRunner pointed at the coordinator, so replay,
// verdict caching, and stats aggregation are shared with the single-process
// path.
func (c *Coordinator) MaxF(ctx context.Context, g *graph.Graph, opts condition.MaxFOptions) (int, condition.MaxFStats, error) {
	opts.CheckRunner = c.CheckScan
	return condition.MaxFScan(ctx, g, opts)
}

// Sweep runs a scenario sweep with each scenario executed on a worker. The
// base configuration and scenarios must be distributable: rules and
// adversaries are shipped by canonical name (see adversary.CanonicalName).
// seed re-seeds named random adversaries on the workers. Durable resume
// (opts.Store) composes: resumed scenarios never reach the job queue.
func (c *Coordinator) Sweep(ctx context.Context, base sim.Config, scenarios []sim.Scenario, seed int64, opts sim.SweepOptions) (*sim.SweepResult, error) {
	engine := opts.Engine
	if engine == nil {
		engine = sim.Sequential{}
	}
	spec, err := buildSweepSpec(base, scenarios, engine.Name(), opts.Extras, seed)
	if err != nil {
		return nil, err
	}
	ph := &phase{
		specID:      c.registerSpec(spec),
		kind:        jobScenario,
		chunk:       1,
		reportEvery: 1,
		open:        true,
		results:     make(map[int64]chan []byte),
	}
	if err := c.startPhase(ph); err != nil {
		return nil, err
	}
	opts.Runner = func(ctx context.Context, index int, cfg *sim.Config, extras [][]float64) (*sim.Trace, [][]float64, error) {
		ch, err := c.submitScenario(ph, int64(index))
		if err != nil {
			return nil, nil, err
		}
		select {
		case raw := <-ch:
			return sim.DecodeScenarioResult(raw)
		case <-ph.done:
			if ph.err != nil {
				return nil, nil, ph.err
			}
			return nil, nil, errors.New("distrib: phase ended before scenario result")
		case <-ctx.Done():
			return nil, nil, context.Cause(ctx)
		}
	}
	res, err := sim.Sweep(ctx, base, scenarios, opts)
	c.mu.Lock()
	ph.open = false
	if !ph.completed {
		c.failPhaseLocked(ph, nil)
	}
	if c.ph == ph {
		c.ph = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return res, err
}

// submitScenario enqueues scenario index i and returns the channel its
// encoded result will arrive on.
func (c *Coordinator) submitScenario(ph *phase, i int64) (chan []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ph.completed {
		if ph.err != nil {
			return nil, ph.err
		}
		return nil, errors.New("distrib: phase already ended")
	}
	ch := make(chan []byte, 1)
	ph.results[i] = ch
	ph.queue = append(ph.queue, span{i, i + 1})
	c.cond.Broadcast()
	return ch, nil
}

// DispatchNoop pushes n empty jobs through the full grant/report/ack cycle —
// the dispatch-throughput benchmark kernel.
func (c *Coordinator) DispatchNoop(ctx context.Context, n int64) error {
	spec, err := buildNoopSpec()
	if err != nil {
		return err
	}
	ph := &phase{
		specID:      c.registerSpec(spec),
		kind:        jobNoop,
		chunk:       1,
		reportEvery: 1,
		queue:       []span{{0, n}},
	}
	if err := c.startPhase(ph); err != nil {
		return err
	}
	return c.waitPhase(ctx, ph)
}
