package delayed

import (
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
	"iabc/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{
		G: g, F: 2, Initial: workload.Ramp(7), Rule: core.TrimmedMean{},
		B: 3, Stale: Fresh{}, MaxRounds: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"nil graph", func(c *Config) { c.G = nil }},
		{"bad initial", func(c *Config) { c.Initial = nil }},
		{"nil rule", func(c *Config) { c.Rule = nil }},
		{"nil policy", func(c *Config) { c.Stale = nil }},
		{"zero B", func(c *Config) { c.B = 0 }},
		{"zero rounds", func(c *Config) { c.MaxRounds = 0 }},
		{"negative F", func(c *Config) { c.F = -1 }},
		{"faulty capacity", func(c *Config) { c.Faulty = nodeset.FromMembers(3, 0) }},
		{"faulty no adversary", func(c *Config) { c.Faulty = nodeset.FromMembers(7, 0) }},
		{"all faulty", func(c *Config) {
			c.Faulty = nodeset.Universe(7)
			c.Adversary = adversary.Fixed{Value: 0}
		}},
		{"in-degree too small", func(c *Config) { c.F = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestFreshMatchesSynchronousEngine(t *testing.T) {
	// With B = 1 (or the Fresh policy) the model degenerates to the
	// synchronous engine: traces must be bit-identical.
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	faulty := nodeset.FromMembers(7, 0, 1)
	initial := workload.Ramp(7)

	syncTr, err := sim.Sequential{}.Run(sim.Config{
		G: g, F: 2, Faulty: faulty, Initial: initial,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Extremes{Amplitude: 10},
		MaxRounds: 50, Epsilon: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 4} {
		delTr, err := Run(Config{
			G: g, F: 2, Faulty: faulty, Initial: initial,
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 10},
			B:         b, Stale: Fresh{},
			MaxRounds: 50, Epsilon: 1e-9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if delTr.Rounds != syncTr.Rounds || delTr.Converged != syncTr.Converged {
			t.Fatalf("B=%d: rounds/converged %d/%v vs sync %d/%v",
				b, delTr.Rounds, delTr.Converged, syncTr.Rounds, syncTr.Converged)
		}
		for r := 0; r <= syncTr.Rounds; r++ {
			if delTr.U[r] != syncTr.U[r] || delTr.Mu[r] != syncTr.Mu[r] {
				t.Fatalf("B=%d round %d: U/µ diverge from synchronous engine", b, r)
			}
		}
	}
}

func TestConvergesUnderMaxStaleness(t *testing.T) {
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(7, 0, 1),
		Initial:   workload.Bimodal(7, 0, 1),
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Hug{High: true},
		B:         5, Stale: MaxStale{B: 5},
		MaxRounds: 20000, Epsilon: 1e-7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("no convergence under max staleness; range %v", tr.FinalRange())
	}
	if r, bad := tr.EnvelopeViolation(1e-9); bad {
		t.Fatalf("envelope validity violated at round %d", r)
	}
}

func TestStalenessSlowsConvergence(t *testing.T) {
	// Rounds-to-ε must not decrease as the staleness bound grows (the E15
	// shape).
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, b := range []int{1, 3, 6} {
		tr, err := Run(Config{
			G: g, F: 2, Faulty: nodeset.FromMembers(7, 0, 1),
			Initial:   workload.Bimodal(7, 0, 1),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 10},
			B:         b, Stale: MaxStale{B: b},
			MaxRounds: 50000, Epsilon: 1e-7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Converged {
			t.Fatalf("B=%d: no convergence", b)
		}
		if tr.Rounds < prev {
			t.Fatalf("B=%d converged in %d rounds, faster than smaller bound's %d", b, tr.Rounds, prev)
		}
		prev = tr.Rounds
	}
}

func TestUniformStaleDeterministicAndValid(t *testing.T) {
	g, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *Trace {
		tr, err := Run(Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(6, 5),
			Initial:   workload.Uniform(6, 0, 10, rand.New(rand.NewSource(7))),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Fixed{Value: 1e6},
			B:         4, Stale: &UniformStale{B: 4, Rng: rand.New(rand.NewSource(seed))},
			MaxRounds: 2000, Epsilon: 1e-7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(9), mk(9)
	if a.Rounds != b.Rounds || a.FinalRange() != b.FinalRange() {
		t.Fatal("same seed produced different runs")
	}
	if !a.Converged {
		t.Fatal("no convergence under uniform staleness")
	}
	if r, bad := a.EnvelopeViolation(1e-9); bad {
		t.Fatalf("envelope violated at %d", r)
	}
	// The liar at 1e6 must never leak into the envelope.
	for r := 0; r <= a.Rounds; r++ {
		if a.U[r] > 10+1e-9 {
			t.Fatalf("round %d: U = %v escaped the honest hull", r, a.U[r])
		}
	}
}

func TestEarlyRoundsClampStaleness(t *testing.T) {
	// Round 1 has only v[0] available: even MaxStale(B=8) must run without
	// touching uninitialized history.
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(Config{
		G: g, F: 1, Initial: []float64{0, 1, 2, 3},
		Rule: core.TrimmedMean{},
		B:    8, Stale: MaxStale{B: 8},
		MaxRounds: 2000, Epsilon: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("no convergence; range %v", tr.FinalRange())
	}
	// Staleness this deep is genuinely slow (the recurrence
	// x[t] = x[t−1]/2 + x[t−8]/2 has its second characteristic root near
	// 0.98), so only convergence within the cap is asserted.
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []StalePolicy{Fresh{}, MaxStale{B: 3}, &UniformStale{B: 3}} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

func TestAlreadyConvergedAtStart(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(Config{
		G: g, F: 1, Initial: workload.Constant(4, 5),
		Rule: core.TrimmedMean{}, B: 2, Stale: Fresh{},
		MaxRounds: 10, Epsilon: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged || tr.Rounds != 0 {
		t.Fatalf("converged=%v rounds=%d, want true/0", tr.Converged, tr.Rounds)
	}
}
