// Package delayed implements the partially asynchronous model the paper's
// Section 7 points at: the generalization "to the (partially) asynchronous
// model defined in Section 7 of [4] (Bertsekas–Tsitsiklis) that allows for
// message delay of up to B iterations", which the paper defers to a future
// technical report. Rounds remain synchronous, but the value node i uses
// from in-neighbor j at round t may be any of j's last B states:
// v_j[t−1−d] with 0 ≤ d ≤ B−1, chosen per (edge, round) by a StalePolicy.
//
// Algorithm 1 runs unchanged on the stale vectors. Validity weakens from
// per-round monotonicity to an envelope property — the running maximum of
// U over any window of B rounds is non-increasing (each new state is a
// convex combination of values from the last B rounds) — while convergence
// still holds on Theorem 1-satisfying graphs; experiment E15 measures the
// slowdown as B grows.
package delayed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// StalePolicy chooses, per edge and round, how stale the delivered value is:
// 0 means the freshest possible (the sender's previous-round state),
// B−1 the stalest the model admits. Implementations must be deterministic
// given their configuration.
type StalePolicy interface {
	// Staleness returns d ∈ [0, B−1] for the value from -> to uses at
	// round. The engine clamps d to the history actually available in the
	// first rounds.
	Staleness(from, to, round int) int
	// Name identifies the policy in traces.
	Name() string
}

// Fresh is the degenerate policy d = 0: the model collapses to the
// synchronous engine (a cross-check test asserts bit-identical traces).
type Fresh struct{}

var _ StalePolicy = Fresh{}

// Name implements StalePolicy.
func (Fresh) Name() string { return "fresh" }

// Staleness implements StalePolicy.
func (Fresh) Staleness(int, int, int) int { return 0 }

// MaxStale always serves the oldest value the bound admits — the
// adversarial schedule within the model.
type MaxStale struct {
	B int
}

var _ StalePolicy = MaxStale{}

// Name implements StalePolicy.
func (m MaxStale) Name() string { return fmt.Sprintf("max-stale(B=%d)", m.B) }

// Staleness implements StalePolicy.
func (m MaxStale) Staleness(int, int, int) int { return m.B - 1 }

// UniformStale draws d uniformly from [0, B−1] per edge per round.
type UniformStale struct {
	B   int
	Rng *rand.Rand
}

var _ StalePolicy = (*UniformStale)(nil)

// Name implements StalePolicy.
func (u *UniformStale) Name() string { return fmt.Sprintf("uniform-stale(B=%d)", u.B) }

// Staleness implements StalePolicy.
func (u *UniformStale) Staleness(int, int, int) int { return u.Rng.Intn(u.B) }

// Config describes one partially asynchronous run.
type Config struct {
	// G is the communication graph.
	G *graph.Graph
	// F is the fault-tolerance parameter.
	F int
	// Faulty is the actual fault set.
	Faulty nodeset.Set
	// Initial holds v_i[0], length G.N().
	Initial []float64
	// Rule is the update rule (core.TrimmedMean for Algorithm 1).
	Rule core.UpdateRule
	// Adversary decides faulty transmissions; Byzantine senders are not
	// bound by the staleness model (they may fabricate anything anyway).
	Adversary adversary.Strategy
	// B bounds the staleness: values may be up to B−1 rounds old. B ≥ 1.
	B int
	// Stale chooses per-edge staleness each round. Required.
	Stale StalePolicy
	// MaxRounds caps the iterations; Epsilon is the stop threshold.
	MaxRounds int
	Epsilon   float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.G == nil {
		return errors.New("delayed: nil graph")
	}
	n := c.G.N()
	if len(c.Initial) != n {
		return fmt.Errorf("delayed: len(Initial) = %d, want n = %d", len(c.Initial), n)
	}
	if c.Rule == nil {
		return errors.New("delayed: nil update rule")
	}
	if c.Stale == nil {
		return errors.New("delayed: nil stale policy")
	}
	if c.B < 1 {
		return fmt.Errorf("delayed: B must be ≥ 1, got %d", c.B)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("delayed: MaxRounds must be ≥ 1, got %d", c.MaxRounds)
	}
	if c.F < 0 {
		return fmt.Errorf("delayed: negative F %d", c.F)
	}
	if c.Faulty.Cap() != 0 && c.Faulty.Cap() != n {
		return fmt.Errorf("delayed: Faulty capacity %d does not match n = %d", c.Faulty.Cap(), n)
	}
	if !c.faulty().Empty() && c.Adversary == nil {
		return errors.New("delayed: faulty nodes configured but Adversary is nil")
	}
	if c.faulty().Count() == n {
		return errors.New("delayed: all nodes faulty")
	}
	var err error
	c.faulty().Complement().ForEach(func(i int) bool {
		if e := c.Rule.Validate(c.G.InDegree(i), c.F); e != nil {
			err = fmt.Errorf("delayed: node %d: %w", i, e)
			return false
		}
		return true
	})
	return err
}

func (c *Config) faulty() nodeset.Set {
	if c.Faulty.Cap() == 0 {
		return nodeset.New(c.G.N())
	}
	return c.Faulty
}

// Trace records a partially asynchronous run.
type Trace struct {
	// Rounds executed; Converged reports the Epsilon stop.
	Rounds    int
	Converged bool
	// U and Mu are per-round extremes over fault-free nodes (index 0 =
	// initial). Unlike the synchronous model they need not be monotone
	// round-to-round; see EnvelopeViolation.
	U, Mu []float64
	// Final is the last state vector.
	Final []float64
	// FaultFree is V − Faulty.
	FaultFree nodeset.Set
	// B echoes the staleness bound for envelope checks.
	B int
}

// Range returns U[t] − µ[t].
func (t *Trace) Range(round int) float64 { return t.U[round] - t.Mu[round] }

// FinalRange returns the last round's fault-free range.
func (t *Trace) FinalRange() float64 { return t.Range(t.Rounds) }

// EnvelopeViolation checks the weakened validity of the B-delayed model:
// U[t] must not exceed the maximum of U over the previous B rounds (+tol),
// and µ[t] must not fall below the corresponding minimum. It returns the
// first violating round, or 0 and false.
func (t *Trace) EnvelopeViolation(tol float64) (int, bool) {
	for r := 1; r <= t.Rounds; r++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for k := r - t.B; k < r; k++ {
			idx := k
			if idx < 0 {
				idx = 0
			}
			if t.U[idx] > hi {
				hi = t.U[idx]
			}
			if t.Mu[idx] < lo {
				lo = t.Mu[idx]
			}
		}
		if t.U[r] > hi+tol || t.Mu[r] < lo-tol {
			return r, true
		}
	}
	return 0, false
}

// Run executes the partially asynchronous simulation.
func Run(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	faulty := cfg.faulty()
	faultFree := faulty.Complement()

	// history[k] = state vector at round t−1−k (k = 0 freshest), ring of
	// depth B.
	history := make([][]float64, cfg.B)
	for k := range history {
		history[k] = make([]float64, n)
		copy(history[k], cfg.Initial)
	}
	current := make([]float64, n)
	copy(current, cfg.Initial)

	lo, hi := faultFreeRange(current, faultFree)
	tr := &Trace{
		U:         []float64{hi},
		Mu:        []float64{lo},
		FaultFree: faultFree.Clone(),
		B:         cfg.B,
	}
	if cfg.Epsilon > 0 && hi-lo <= cfg.Epsilon {
		tr.Converged = true
	}

	next := make([]float64, n)
	recv := make([][]core.ValueFrom, n)
	for i := 0; i < n; i++ {
		recv[i] = make([]core.ValueFrom, cfg.G.InDegree(i))
	}

	for round := 1; round <= cfg.MaxRounds && !tr.Converged; round++ {
		var msgs map[int]map[int]float64
		if cfg.Adversary != nil {
			view := adversary.RoundView{
				Round: round, G: cfg.G, F: cfg.F, Faulty: faulty,
				States: current, Lo: tr.Mu[round-1], Hi: tr.U[round-1],
			}
			msgs = make(map[int]map[int]float64)
			faulty.ForEach(func(s int) bool {
				msgs[s] = cfg.Adversary.Messages(view, s)
				return true
			})
		}
		maxDepth := round - 1 // rounds of history that actually exist
		if maxDepth > cfg.B-1 {
			maxDepth = cfg.B - 1
		}
		for i := 0; i < n; i++ {
			buf := recv[i]
			for k, from := range cfg.G.InNeighbors(i) {
				v, decided := resolveByzantine(msgs, from, i, current)
				if !decided {
					d := cfg.Stale.Staleness(from, i, round)
					if d < 0 {
						d = 0
					}
					if d > maxDepth {
						d = maxDepth
					}
					v = history[d][from]
				}
				buf[k] = core.ValueFrom{From: from, Value: v}
			}
			v, err := cfg.Rule.Update(current[i], buf, cfg.F)
			if err != nil {
				if faultFree.Contains(i) {
					return nil, err
				}
				v = current[i] // freeze undefined ghost updates
			}
			next[i] = v
		}

		// Advance to v[t] and rotate history so the invariant
		// history[k] == v[t−k] holds at the start of round t+1 (where the
		// staleness-d lookup reads history[d] = v[(t+1)−1−d]).
		current, next = next, current
		oldest := history[len(history)-1]
		for k := len(history) - 1; k >= 1; k-- {
			history[k] = history[k-1]
		}
		history[0] = oldest
		copy(history[0], current)

		lo, hi := faultFreeRange(current, faultFree)
		tr.U = append(tr.U, hi)
		tr.Mu = append(tr.Mu, lo)
		tr.Rounds = round
		if cfg.Epsilon > 0 && hi-lo <= cfg.Epsilon {
			tr.Converged = true
		}
	}
	tr.Final = make([]float64, n)
	copy(tr.Final, current)
	return tr, nil
}

// resolveByzantine resolves a faulty sender's transmission: the adversary's
// chosen value, or — on omission — the sender's current ghost state,
// mirroring the synchronous engine. decided is false for fault-free
// senders, whose value comes from the staleness model instead.
func resolveByzantine(msgs map[int]map[int]float64, from, to int, current []float64) (v float64, decided bool) {
	m, isFaulty := msgs[from]
	if !isFaulty {
		return 0, false
	}
	if v, ok := m[to]; ok {
		return v, true
	}
	return current[from], true
}

func faultFreeRange(states []float64, faultFree nodeset.Set) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	faultFree.ForEach(func(i int) bool {
		if states[i] < lo {
			lo = states[i]
		}
		if states[i] > hi {
			hi = states[i]
		}
		return true
	})
	return lo, hi
}
