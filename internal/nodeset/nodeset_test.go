package nodeset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	s := New(100)
	if got := s.Cap(); got != 100 {
		t.Fatalf("Cap() = %d, want 100", got)
	}
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(99)
	if got := s.Count(); got != 4 {
		t.Fatalf("Count() = %d, want 4", got)
	}
	for _, id := range []int{0, 63, 64, 99} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []int{1, 62, 65, 98, -1, 100} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
	s.Remove(63)
	if s.Contains(63) {
		t.Error("Contains(63) after Remove = true")
	}
	if got := s.Count(); got != 3 {
		t.Fatalf("Count() after remove = %d, want 3", got)
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	s := New(4)
	s.Add(4)
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromMembersAndMembers(t *testing.T) {
	s := FromMembers(10, 3, 1, 7)
	want := []int{1, 3, 7}
	if got := s.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
}

func TestUniverse(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		u := Universe(n)
		if got := u.Count(); got != n {
			t.Errorf("Universe(%d).Count() = %d", n, got)
		}
		if c := u.Complement(); !c.Empty() {
			t.Errorf("Universe(%d).Complement() = %v, want empty", n, c)
		}
	}
}

func TestRange(t *testing.T) {
	s := Range(10, 2, 5)
	if got, want := s.Members(), []int{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Range members = %v, want %v", got, want)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromMembers(8, 0, 1, 2, 3)
	b := FromMembers(8, 2, 3, 4, 5)

	if got, want := a.Union(b).Members(), []int{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b).Members(), []int{2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Difference(b).Members(), []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Difference = %v, want %v", got, want)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	if a.Disjoint(b) {
		t.Error("Disjoint = true for overlapping sets")
	}
	if !FromMembers(8, 0).Disjoint(FromMembers(8, 7)) {
		t.Error("Disjoint = false for disjoint sets")
	}
	if !FromMembers(8, 1, 2).SubsetOf(a) {
		t.Error("SubsetOf = false for genuine subset")
	}
	if b.SubsetOf(a) {
		t.Error("SubsetOf = true for non-subset")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("union across capacities did not panic")
		}
	}()
	New(4).UnionWith(New(8))
}

func TestCloneIndependence(t *testing.T) {
	a := FromMembers(8, 1, 2)
	b := a.Clone()
	b.Add(5)
	if a.Contains(5) {
		t.Fatal("mutating clone affected original")
	}
	if !a.Equal(FromMembers(8, 1, 2)) {
		t.Fatal("original changed")
	}
}

func TestMinAndForEachEarlyStop(t *testing.T) {
	if got := New(8).Min(); got != -1 {
		t.Errorf("Min of empty = %d, want -1", got)
	}
	s := FromMembers(130, 70, 5, 129)
	if got := s.Min(); got != 5 {
		t.Errorf("Min = %d, want 5", got)
	}
	var visited []int
	s.ForEach(func(id int) bool {
		visited = append(visited, id)
		return len(visited) < 2
	})
	if want := []int{5, 70}; !reflect.DeepEqual(visited, want) {
		t.Errorf("early-stop visit = %v, want %v", visited, want)
	}
}

func TestString(t *testing.T) {
	if got, want := FromMembers(8, 1, 3).String(), "{1, 3}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := New(8).String(), "{}"; got != want {
		t.Errorf("empty String() = %q, want %q", got, want)
	}
}

func TestSubsetsCount(t *testing.T) {
	ground := FromMembers(20, 2, 5, 9, 14)
	count := 0
	Subsets(ground, func(s Set) bool {
		if !s.SubsetOf(ground) {
			t.Errorf("enumerated non-subset %v", s)
		}
		count++
		return true
	})
	if count != 16 {
		t.Fatalf("Subsets enumerated %d sets, want 2^4 = 16", count)
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	Subsets(Universe(6), func(Set) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop after %d, want 5", count)
	}
}

func TestSubsetsAscendingSize(t *testing.T) {
	ground := Universe(6)
	prevSize := -1
	var bySize [7]int
	SubsetsAscendingSize(ground, 0, 6, func(s Set) bool {
		c := s.Count()
		if c < prevSize {
			t.Fatalf("size decreased: %d after %d", c, prevSize)
		}
		prevSize = c
		bySize[c]++
		return true
	})
	want := [7]int{1, 6, 15, 20, 15, 6, 1}
	if bySize != want {
		t.Fatalf("size histogram = %v, want %v", bySize, want)
	}
}

func TestSubsetsAscendingSizeBounds(t *testing.T) {
	ground := Universe(5)
	count := 0
	SubsetsAscendingSize(ground, 2, 3, func(s Set) bool {
		if c := s.Count(); c < 2 || c > 3 {
			t.Errorf("size %d outside [2,3]", c)
		}
		count++
		return true
	})
	if want := 10 + 10; count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
	// Out-of-range bounds clamp rather than panic.
	count = 0
	SubsetsAscendingSize(ground, -3, 99, func(Set) bool { count++; return true })
	if count != 32 {
		t.Fatalf("clamped enumeration = %d, want 32", count)
	}
}

func TestSubsetsAscendingSizeEarlyStop(t *testing.T) {
	count := 0
	SubsetsAscendingSize(Universe(8), 1, 8, func(Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop after %d, want 3", count)
	}
}

// randomSet builds a pseudo-random set for property tests.
func randomSet(rng *rand.Rand, capacity int) Set {
	s := New(capacity)
	for i := 0; i < capacity; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickAlgebraLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			capacity := 1 + rng.Intn(150)
			vals[0] = reflect.ValueOf(randomSet(rng, capacity))
			vals[1] = reflect.ValueOf(randomSet(rng, capacity))
		},
	}

	law := func(a, b Set) bool {
		union := a.Union(b)
		inter := a.Intersect(b)
		// |A∪B| + |A∩B| = |A| + |B|
		if union.Count()+inter.Count() != a.Count()+b.Count() {
			return false
		}
		// De Morgan: complement(A∪B) == complement(A) ∩ complement(B)
		if !union.Complement().Equal(a.Complement().Intersect(b.Complement())) {
			return false
		}
		// A−B = A ∩ complement(B)
		if !a.Difference(b).Equal(a.Intersect(b.Complement())) {
			return false
		}
		// Disjoint ⟺ IntersectionCount == 0
		if a.Disjoint(b) != (a.IntersectionCount(b) == 0) {
			return false
		}
		// Complement is an involution.
		if !a.Complement().Complement().Equal(a) {
			return false
		}
		// Subset relations of union/intersection.
		return inter.SubsetOf(a) && a.SubsetOf(union)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMembersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		capacity := 1 + rng.Intn(200)
		s := randomSet(rng, capacity)
		back := FromMembers(capacity, s.Members()...)
		return back.Equal(s)
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatal("Members/FromMembers round-trip failed")
		}
	}
}

func TestSortedMembers(t *testing.T) {
	in := []int{5, 1, 3}
	got := SortedMembers(in)
	if want := []int{1, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedMembers = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(in, []int{5, 1, 3}) {
		t.Fatal("SortedMembers mutated its input")
	}
}
