// Package nodeset provides compact bitsets over node identifiers.
//
// A Set holds node IDs in the range [0, capacity). Sets are the backbone of
// the condition checker in internal/condition: the exponential enumeration
// over partitions of V manipulates millions of sets, so every operation is
// word-parallel and allocation is kept to explicit Clone/New calls.
//
// The zero value of Set is an empty set with capacity 0. Most callers should
// use New to size the set to the graph order.
package nodeset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const wordBits = 64

// Set is a bitset over node IDs. Operations that combine two sets require
// them to have the same capacity (word count); combining sets built with
// different capacities for the same graph is a programming error and panics.
type Set struct {
	words []uint64
	cap   int
}

// New returns an empty set with capacity for node IDs in [0, capacity).
func New(capacity int) Set {
	if capacity < 0 {
		panic(fmt.Sprintf("nodeset: negative capacity %d", capacity))
	}
	return Set{
		words: make([]uint64, (capacity+wordBits-1)/wordBits),
		cap:   capacity,
	}
}

// FromMembers returns a set with the given capacity containing exactly the
// listed members.
func FromMembers(capacity int, members ...int) Set {
	s := New(capacity)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Universe returns the full set {0, ..., capacity-1}.
func Universe(capacity int) Set {
	s := New(capacity)
	for w := range s.words {
		s.words[w] = ^uint64(0)
	}
	s.trim()
	return s
}

// Range returns the set {lo, ..., hi-1}. It panics if the range is out of
// bounds.
func Range(capacity, lo, hi int) Set {
	s := New(capacity)
	for i := lo; i < hi; i++ {
		s.Add(i)
	}
	return s
}

// trim clears any bits at positions >= cap that block operations like
// complement from leaking phantom members.
func (s *Set) trim() {
	if r := s.cap % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Cap returns the capacity the set was created with.
func (s Set) Cap() int { return s.cap }

// Add inserts id into the set. It panics if id is out of range.
func (s Set) Add(id int) {
	s.check(id)
	s.words[id/wordBits] |= 1 << uint(id%wordBits)
}

// Remove deletes id from the set. It panics if id is out of range.
func (s Set) Remove(id int) {
	s.check(id)
	s.words[id/wordBits] &^= 1 << uint(id%wordBits)
}

// Contains reports whether id is in the set.
func (s Set) Contains(id int) bool {
	if id < 0 || id >= s.cap {
		return false
	}
	return s.words[id/wordBits]&(1<<uint(id%wordBits)) != 0
}

func (s Set) check(id int) {
	if id < 0 || id >= s.cap {
		panic(fmt.Sprintf("nodeset: id %d out of range [0,%d)", id, s.cap))
	}
}

// Count returns the number of members.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), cap: s.cap}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t contain the same members.
func (s Set) Equal(t Set) bool {
	if s.cap != t.cap {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

func (s Set) sameShape(t Set) {
	if s.cap != t.cap {
		panic(fmt.Sprintf("nodeset: capacity mismatch %d vs %d", s.cap, t.cap))
	}
}

// UnionWith adds every member of t to s (in place).
func (s Set) UnionWith(t Set) {
	s.sameShape(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith removes members of s not in t (in place).
func (s Set) IntersectWith(t Set) {
	s.sameShape(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// DifferenceWith removes every member of t from s (in place).
func (s Set) DifferenceWith(t Set) {
	s.sameShape(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Union returns a new set containing members of s or t.
func (s Set) Union(t Set) Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set containing members of both s and t.
func (s Set) Intersect(t Set) Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a new set containing members of s not in t.
func (s Set) Difference(t Set) Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// Complement returns the set of IDs in [0, cap) not in s.
func (s Set) Complement() Set {
	c := Set{words: make([]uint64, len(s.words)), cap: s.cap}
	for i, w := range s.words {
		c.words[i] = ^w
	}
	c.trim()
	return c
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s Set) IntersectionCount(t Set) int {
	s.sameShape(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// Disjoint reports whether s and t share no members.
func (s Set) Disjoint(t Set) bool {
	s.sameShape(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	s.sameShape(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each member in ascending order. If fn returns false,
// iteration stops early.
func (s Set) ForEach(fn func(id int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the members in ascending order.
func (s Set) Members() []int {
	m := make([]int, 0, s.Count())
	s.ForEach(func(id int) bool {
		m = append(m, id)
		return true
	})
	return m
}

// Min returns the smallest member, or -1 if the set is empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Subsets enumerates every subset of ground (including the empty set and
// ground itself), invoking fn for each. Enumeration stops early if fn
// returns false. The Set passed to fn is reused between calls; fn must
// Clone it to retain it.
//
// The number of subsets is 2^|ground|; callers are responsible for keeping
// |ground| small enough (the condition checker caps it).
func Subsets(ground Set, fn func(Set) bool) {
	members := ground.Members()
	if len(members) > 62 {
		panic(fmt.Sprintf("nodeset: Subsets over %d members is infeasible", len(members)))
	}
	cur := New(ground.cap)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(members) {
			return fn(cur)
		}
		if !rec(i + 1) {
			return false
		}
		cur.Add(members[i])
		if !rec(i + 1) {
			return false
		}
		cur.Remove(members[i])
		return true
	}
	rec(0)
}

// SubsetsAscendingSize enumerates subsets of ground in non-decreasing order
// of size, from size lo to size hi inclusive. The Set passed to fn is reused;
// Clone to retain. Enumeration stops early if fn returns false.
func SubsetsAscendingSize(ground Set, lo, hi int, fn func(Set) bool) {
	SubsetsAscendingSizeHooked(ground, lo, hi, nil, nil, fn)
}

// SubsetsAscendingSizePruned is SubsetsAscendingSize with a per-size
// admission filter: before enumerating size-k subsets, admit(id, k) is asked
// once for every ground member, and rejected members are excluded from every
// size-k candidate. Excluding one member prunes its entire combination
// subtree — the C(m−1, k−1) candidates containing it — without visiting any
// of them, which is what makes degree-bound pruning in the condition checker
// pay: the admission scan is O(m) per size while the subtrees it removes are
// exponential.
//
// sized, if non-nil, is called once per size k (before that size's
// enumeration, including sizes whose pool is smaller than k) with the number
// of admitted members and the ground size, so callers can account for the
// candidates never visited: C(total, k) − C(kept, k). A nil admit admits
// every member, reducing to SubsetsAscendingSize with a sized callback.
//
// The admitted pool keeps the ground's ascending member order, so the
// surviving candidates are enumerated in exactly the relative order
// SubsetsAscendingSize would visit them — a caller whose admission filter
// never rejects a member of a "hit" subset sees the same first hit.
func SubsetsAscendingSizePruned(ground Set, lo, hi int, admit func(id, size int) bool, sized func(size, kept, total int), fn func(Set) bool) {
	members := ground.Members()
	if hi > len(members) {
		hi = len(members)
	}
	if lo < 0 {
		lo = 0
	}
	cur := New(ground.cap)
	pool := make([]int, 0, len(members))
	for k := lo; k <= hi; k++ {
		pool = pool[:0]
		for _, id := range members {
			if admit == nil || admit(id, k) {
				pool = append(pool, id)
			}
		}
		if sized != nil {
			sized(k, len(pool), len(members))
		}
		if k > len(pool) {
			continue
		}
		if !combinations(pool, k, cur, nil, nil, fn) {
			return
		}
	}
}

// SubsetsAscendingSizeHooked is SubsetsAscendingSize with membership-change
// callbacks: onAdd(id) fires whenever id enters the candidate subset and
// onRemove(id) whenever it leaves — one call per element transition,
// including the unwinding after an early stop, so adds and removes always
// balance. Callers use the hooks to maintain incrementally updated state
// (e.g. the condition checker's in-degree-from-candidate counters) instead
// of recomputing per candidate. Either hook may be nil.
func SubsetsAscendingSizeHooked(ground Set, lo, hi int, onAdd, onRemove func(id int), fn func(Set) bool) {
	members := ground.Members()
	if hi > len(members) {
		hi = len(members)
	}
	if lo < 0 {
		lo = 0
	}
	cur := New(ground.cap)
	for k := lo; k <= hi; k++ {
		if !combinations(members, k, cur, onAdd, onRemove, fn) {
			return
		}
	}
}

// combinations enumerates all k-subsets of members into cur, calling fn per
// subset. Returns false if fn requested a stop. With no hooks installed —
// the exact checker's 2^|W| inner loop — membership updates stay direct,
// inlinable Set calls.
func combinations(members []int, k int, cur Set, onAdd, onRemove func(int), fn func(Set) bool) bool {
	add, del := cur.Add, cur.Remove
	if onAdd != nil || onRemove != nil {
		add = func(id int) {
			cur.Add(id)
			if onAdd != nil {
				onAdd(id)
			}
		}
		del = func(id int) {
			cur.Remove(id)
			if onRemove != nil {
				onRemove(id)
			}
		}
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
		add(members[i])
	}
	defer func() {
		for _, i := range idx {
			if i < len(members) {
				del(members[i])
			}
		}
	}()
	if k == 0 {
		return fn(cur)
	}
	if k > len(members) {
		return true
	}
	for {
		if !fn(cur) {
			return false
		}
		// Advance to the next combination in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == len(members)-k+i {
			i--
		}
		if i < 0 {
			return true
		}
		del(members[idx[i]])
		idx[i]++
		add(members[idx[i]])
		for j := i + 1; j < k; j++ {
			del(members[idx[j]])
			idx[j] = idx[j-1] + 1
			add(members[idx[j]])
		}
	}
}

// SortedMembers is a convenience for tests: it returns members sorted
// ascending (Members already sorts; this exists for symmetry with external
// slices).
func SortedMembers(ids []int) []int {
	out := make([]int, len(ids))
	copy(out, ids)
	sort.Ints(out)
	return out
}
