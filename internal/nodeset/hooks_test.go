package nodeset

import "testing"

// TestSubsetsAscendingSizeHooked checks the incremental-callback contract:
// onAdd/onRemove fire once per membership transition, the mirror they
// maintain always equals the enumerated subset, and adds and removes
// balance even when the consumer stops enumeration early.
func TestSubsetsAscendingSizeHooked(t *testing.T) {
	ground := FromMembers(10, 0, 2, 3, 5, 7, 9)
	mirror := make(map[int]bool)
	adds, removes, seen := 0, 0, 0
	onAdd := func(id int) {
		if mirror[id] {
			t.Fatalf("onAdd(%d) for element already present", id)
		}
		mirror[id] = true
		adds++
	}
	onRemove := func(id int) {
		if !mirror[id] {
			t.Fatalf("onRemove(%d) for element not present", id)
		}
		delete(mirror, id)
		removes++
	}
	SubsetsAscendingSizeHooked(ground, 0, 3, onAdd, onRemove, func(s Set) bool {
		seen++
		if s.Count() != len(mirror) {
			t.Fatalf("mirror size %d != subset size %d", len(mirror), s.Count())
		}
		s.ForEach(func(id int) bool {
			if !mirror[id] {
				t.Fatalf("element %d in subset but not in mirror", id)
			}
			return true
		})
		return true
	})
	// C(6,0)+C(6,1)+C(6,2)+C(6,3) = 1+6+15+20 = 42.
	if seen != 42 {
		t.Fatalf("enumerated %d subsets, want 42", seen)
	}
	if adds != removes {
		t.Fatalf("unbalanced hooks: %d adds, %d removes", adds, removes)
	}

	// Early stop: the unwinding must still balance the hooks.
	adds, removes = 0, 0
	count := 0
	SubsetsAscendingSizeHooked(ground, 1, 3, onAdd, onRemove, func(Set) bool {
		count++
		return count < 9
	})
	if adds != removes {
		t.Fatalf("unbalanced hooks after early stop: %d adds, %d removes", adds, removes)
	}
	if len(mirror) != 0 {
		t.Fatalf("mirror not emptied after early stop: %v", mirror)
	}
}
