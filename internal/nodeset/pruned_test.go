package nodeset

import "testing"

// TestSubsetsAscendingSizePruned checks the admission-filter contract: the
// enumerated candidates are exactly the full enumeration's candidates whose
// members are all admitted at that size, in the same relative order, and the
// sized callback reports every size's pool exactly once — including sizes
// whose pool is smaller than the size itself.
func TestSubsetsAscendingSizePruned(t *testing.T) {
	ground := FromMembers(12, 0, 2, 3, 5, 7, 9, 11)
	// Admit id at size k iff id < 2*k — a size-dependent filter like the
	// checker's degree bound (pools grow with the candidate size).
	admit := func(id, size int) bool { return id < 2*size }

	var want [][]int
	SubsetsAscendingSize(ground, 1, 4, func(s Set) bool {
		ok := true
		k := s.Count()
		s.ForEach(func(id int) bool {
			if !admit(id, k) {
				ok = false
				return false
			}
			return true
		})
		if ok {
			want = append(want, s.Members())
		}
		return true
	})

	var got [][]int
	sizedCalls := map[int][2]int{}
	SubsetsAscendingSizePruned(ground, 1, 4, admit,
		func(size, kept, total int) {
			if _, dup := sizedCalls[size]; dup {
				t.Fatalf("sized called twice for size %d", size)
			}
			sizedCalls[size] = [2]int{kept, total}
		},
		func(s Set) bool {
			got = append(got, s.Members())
			return true
		})

	if len(got) != len(want) {
		t.Fatalf("enumerated %d pruned subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("subset %d: %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("subset %d: %v, want %v (order must match the full enumeration)", i, got[i], want[i])
			}
		}
	}
	for k := 1; k <= 4; k++ {
		rec, ok := sizedCalls[k]
		if !ok {
			t.Fatalf("sized not called for size %d", k)
		}
		wantKept := 0
		ground.ForEach(func(id int) bool {
			if admit(id, k) {
				wantKept++
			}
			return true
		})
		if rec[0] != wantKept || rec[1] != 7 {
			t.Fatalf("sized(%d) = (kept=%d, total=%d), want (%d, 7)", k, rec[0], rec[1], wantKept)
		}
	}

	// Size 1 admits only {0} (id < 2): the pool (1 member) is not smaller
	// than the size, but size 2 admits {0, 2, 3} and size 1 of a different
	// filter can empty out — exercise the pool-smaller-than-size path.
	calls := 0
	SubsetsAscendingSizePruned(ground, 3, 3, func(id, size int) bool { return id == 0 }, nil, func(Set) bool {
		calls++
		return true
	})
	if calls != 0 {
		t.Fatalf("pool of 1 member yielded %d size-3 subsets, want 0", calls)
	}

	// nil admit + nil sized degenerates to SubsetsAscendingSize.
	full, pruned := 0, 0
	SubsetsAscendingSize(ground, 0, 7, func(Set) bool { full++; return true })
	SubsetsAscendingSizePruned(ground, 0, 7, nil, nil, func(Set) bool { pruned++; return true })
	if full != pruned || full != 128 { // 2^7 subsets
		t.Fatalf("nil-admit enumeration = %d, full = %d, want both 128", pruned, full)
	}

	// Early stop propagates.
	seen := 0
	SubsetsAscendingSizePruned(ground, 1, 7, nil, nil, func(Set) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("early stop after %d subsets, want 5", seen)
	}
}
