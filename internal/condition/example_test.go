package condition_test

import (
	"fmt"
	"log"

	"iabc/internal/condition"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// ExampleCheck decides the paper's Section 6.3 counterexample: the chord
// network with n = 7, f = 2 meets both corollaries (n > 3f, in-degree
// 2f+1 = 5) yet fails the tight condition.
func ExampleCheck() {
	g, err := topology.Chord(7, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("corollary screens:", len(condition.QuickScreen(g, 2)))
	res, err := condition.Check(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("satisfied:", res.Satisfied)
	fmt.Println("witness verifies:", res.Witness.Verify(g, 2, condition.SyncThreshold(2)) == nil)
	// Output:
	// corollary screens: 0
	// satisfied: false
	// witness verifies: true
}

// ExampleMaxF audits how many Byzantine nodes a topology tolerates.
func ExampleMaxF() {
	core, err := topology.CoreNetwork(7, 2)
	if err != nil {
		log.Fatal(err)
	}
	cube, err := topology.Hypercube(3)
	if err != nil {
		log.Fatal(err)
	}
	fc, err := condition.MaxF(core)
	if err != nil {
		log.Fatal(err)
	}
	fh, err := condition.MaxF(cube)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("core network(7,2):", fc)
	fmt.Println("3-cube:", fh)
	// Output:
	// core network(7,2): 2
	// 3-cube: 0
}

// ExampleMaxFWithStats shows the checker-work account behind a tolerance
// audit: the degree lower bound prunes most of the candidate space on a core
// network, and the pruning never exceeds the candidates accounted for.
func ExampleMaxFWithStats() {
	g, err := topology.CoreNetwork(10, 3)
	if err != nil {
		log.Fatal(err)
	}
	best, stats, err := condition.MaxFWithStats(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maxf:", best)
	fmt.Println("pruning fired:", stats.CandidatesPruned > 0)
	fmt.Println("account consistent:", stats.CandidatesPruned <= stats.CandidatesExamined)
	// Output:
	// maxf: 3
	// pruning fired: true
	// account consistent: true
}

// ExamplePropagates runs Definition 3 on a directed cycle: a single node
// propagates to the rest one step at a time.
func ExamplePropagates() {
	g, err := topology.DirectedCycle(5)
	if err != nil {
		log.Fatal(err)
	}
	a := nodeset.FromMembers(5, 0)
	p, err := condition.Propagates(g, a, a.Complement(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("propagates:", p.OK, "in", p.Steps, "steps")
	// Output:
	// propagates: true in 4 steps
}

// ExampleRepair fixes the 3-cube so it tolerates one Byzantine node.
func ExampleRepair() {
	g, err := topology.Hypercube(3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := condition.Repair(g, 1, 64)
	if err != nil {
		log.Fatal(err)
	}
	after, err := condition.Check(res.Repaired, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edges added:", len(res.Added))
	fmt.Println("now satisfies:", after.Satisfied)
	// Output:
	// edges added: 8
	// now satisfies: true
}
