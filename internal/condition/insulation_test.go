package condition

import (
	"math/rand"
	"testing"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// TestInsulationScratchMatchesReference cross-checks the incremental
// insulated test and the worklist maximal-insulated-subset against the
// retained reference implementations, over random graphs, ground sets, and
// candidate enumerations — exactly the access pattern the checker uses.
func TestInsulationScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(8)
		g, err := topology.RandomDigraph(n, 0.2+0.6*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		universe := nodeset.Universe(n)
		ground := universe.Clone()
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 && ground.Count() > 2 {
				ground.Remove(i)
			}
		}
		threshold := 1 + rng.Intn(3)
		scratch := newInsulationScratch(g)
		scratch.setGround(ground)

		m := ground.Count()
		nodeset.SubsetsAscendingSize(ground, 1, m/2, func(l nodeset.Set) bool {
			gotIns := scratch.insulated(l, threshold)
			wantIns := isInsulated(g, ground, l, threshold)
			if gotIns != wantIns {
				t.Fatalf("trial %d: insulated(%v) = %v, reference %v (ground %v, th %d)",
					trial, l, gotIns, wantIns, ground, threshold)
			}
			rest := ground.Difference(l)
			got := scratch.maximalInsulated(ground, rest, threshold)
			want := maximalInsulatedSubset(g, ground, rest, threshold)
			if !got.Equal(want) {
				t.Fatalf("trial %d: maximalInsulated(%v) = %v, reference %v",
					trial, rest, got, want)
			}
			return true
		})
	}
}

// TestCheckAgreesWithBruteForcedReference re-runs the full checker against a
// from-scratch implementation built on the reference primitives only, so a
// bug in the incremental path cannot hide behind a bug in the enumeration.
func TestCheckAgreesWithBruteForcedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		g, err := topology.RandomDigraph(n, 0.3+0.5*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		f := rng.Intn(3)
		if n-f < 1 {
			f = 0
		}
		threshold := SyncThreshold(f)
		res, err := CheckThreshold(g, f, threshold)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceCheck(g, f, threshold)
		if res.Satisfied != want {
			t.Fatalf("trial %d: Check = %v, reference = %v on %s (f=%d)",
				trial, res.Satisfied, want, g, f)
		}
		if !res.Satisfied {
			if res.Witness == nil {
				t.Fatalf("trial %d: unsatisfied without witness", trial)
			}
			if err := res.Witness.Verify(g, f, threshold); err != nil {
				t.Fatalf("trial %d: witness fails verification: %v", trial, err)
			}
		}
	}
}

// referenceCheck decides the condition with the reference primitives and no
// incremental state.
func referenceCheck(g *graph.Graph, f, threshold int) bool {
	n := g.N()
	universe := nodeset.Universe(n)
	ok := true
	for fSize := 0; fSize <= f && fSize <= n && ok; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(fSet nodeset.Set) bool {
			ground := universe.Difference(fSet)
			nodeset.SubsetsAscendingSize(ground, 1, ground.Count()/2, func(l nodeset.Set) bool {
				if !isInsulated(g, ground, l, threshold) {
					return true
				}
				r := maximalInsulatedSubset(g, ground, ground.Difference(l), threshold)
				if !r.Empty() {
					ok = false
					return false
				}
				return true
			})
			return ok
		})
	}
	return ok
}
