package condition

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"iabc/internal/statestore"
	"iabc/internal/topology"
)

// stripResumeMarkers zeroes the fields that only report how a Result was
// obtained, so resumed and uninterrupted runs can be compared field-by-field.
func stripResumeMarkers(r Result) Result {
	r.FaultSetsResumed = 0
	r.CacheHit = false
	return r
}

// TestCheckScanVerdictCache pins the memoization contract: the second scan of
// the same (graph, f, threshold) is served whole from the verdict cache —
// identical verdict, witness, and counters, with CacheHit set — and a
// different threshold misses.
func TestCheckScanVerdictCache(t *testing.T) {
	g, err := topology.CoreNetwork(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	store := statestore.NewMem()
	first, err := CheckScan(context.Background(), g, 3, SyncThreshold(3), ScanOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first scan must not report CacheHit")
	}
	second, err := CheckScan(context.Background(), g, 3, SyncThreshold(3), ScanOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second scan should be a cache hit")
	}
	if stripResumeMarkers(second) != stripResumeMarkers(first) {
		t.Fatalf("cached result differs:\nfirst  %+v\nsecond %+v", first, second)
	}
	// A different threshold is a different scan identity.
	miss, err := CheckScan(context.Background(), g, 3, AsyncThreshold(3), ScanOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit {
		t.Fatal("different threshold must not hit the cache")
	}
}

// TestCheckScanVerdictCacheUnsatisfied covers the negative-verdict side: the
// cached witness round-trips and still verifies.
func TestCheckScanVerdictCacheUnsatisfied(t *testing.T) {
	g, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := statestore.NewMem()
	first, err := CheckScan(context.Background(), g, 2, SyncThreshold(2), ScanOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if first.Satisfied {
		t.Fatal("chord(7,2) should be violated")
	}
	second, err := CheckScan(context.Background(), g, 2, SyncThreshold(2), ScanOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Satisfied {
		t.Fatalf("cached verdict wrong: %+v", second)
	}
	if !second.Witness.F.Equal(first.Witness.F) ||
		!second.Witness.L.Equal(first.Witness.L) ||
		!second.Witness.C.Equal(first.Witness.C) ||
		!second.Witness.R.Equal(first.Witness.R) {
		t.Fatalf("cached witness differs:\nfirst  %v\nsecond %v", first.Witness, second.Witness)
	}
	if err := second.Witness.Verify(g, 2, SyncThreshold(2)); err != nil {
		t.Fatalf("cached witness does not verify: %v", err)
	}
}

// TestCheckScanResumeEquivalence is the tentpole invariant: a scan killed
// mid-flight and restarted over the same store finishes with a Result
// identical (verdict, witness, every counter) to an uninterrupted run — at
// both worker counts.
func TestCheckScanResumeEquivalence(t *testing.T) {
	g, err := topology.CoreNetwork(14, 2)
	if err != nil {
		t.Fatal(err)
	}
	const f = 2
	baseline, err := CheckScan(context.Background(), g, f, SyncThreshold(f), ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Satisfied {
		t.Fatal("core(14,2) should satisfy")
	}
	for _, workers := range []int{1, 4} {
		store := statestore.NewMem()
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Int64
		_, err := CheckScan(ctx, g, f, SyncThreshold(f), ScanOptions{
			Workers:         workers,
			CheckpointEvery: 4,
			Store:           store,
			OnProgress: func(p Progress) {
				if fired.Add(1) == 40 {
					cancel()
				}
			},
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: interrupted scan err=%v, want context.Canceled", workers, err)
		}
		resumed, err := CheckScan(context.Background(), g, f, SyncThreshold(f), ScanOptions{
			Workers:         workers,
			CheckpointEvery: 4,
			Store:           store,
		})
		if err != nil {
			t.Fatalf("workers=%d: resume failed: %v", workers, err)
		}
		if resumed.FaultSetsResumed == 0 {
			t.Errorf("workers=%d: resume skipped nothing — checkpoint was not honored", workers)
		}
		if resumed.CacheHit {
			t.Errorf("workers=%d: resume must re-run, not cache-hit", workers)
		}
		if stripResumeMarkers(resumed) != baseline {
			t.Errorf("workers=%d: resumed result differs from uninterrupted:\nbase    %+v\nresumed %+v",
				workers, baseline, resumed)
		}
	}
}

// TestCheckScanResumeUnsatisfied interrupts a scan over a violated graph and
// checks the resumed run reports the canonical witness — the same one the
// uninterrupted sequential scan finds.
func TestCheckScanResumeUnsatisfied(t *testing.T) {
	g, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := CheckScan(context.Background(), g, 2, SyncThreshold(2), ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	store := statestore.NewMem()
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Int64
	_, err = CheckScan(ctx, g, 2, SyncThreshold(2), ScanOptions{
		Workers:         1,
		CheckpointEvery: 2,
		Store:           store,
		OnProgress: func(p Progress) {
			if fired.Add(1) == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted scan err=%v, want context.Canceled", err)
	}
	resumed, err := CheckScan(context.Background(), g, 2, SyncThreshold(2), ScanOptions{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Satisfied {
		t.Fatal("resumed scan lost the violation")
	}
	if !resumed.Witness.F.Equal(baseline.Witness.F) ||
		!resumed.Witness.L.Equal(baseline.Witness.L) ||
		!resumed.Witness.R.Equal(baseline.Witness.R) {
		t.Fatalf("resumed witness differs:\nbase    %v\nresumed %v", baseline.Witness, resumed.Witness)
	}
	// Counter totals must match too; the witness pointers are distinct
	// allocations, so compare with them normalized out.
	br, rr := baseline, stripResumeMarkers(resumed)
	br.Witness, rr.Witness = nil, nil
	if br != rr {
		t.Fatalf("resumed counters differ:\nbase    %+v\nresumed %+v", br, rr)
	}
}

// TestCheckScanIgnoresCorruptState: garbage at the checkpoint and verdict
// keys must degrade to a fresh scan, never a wrong verdict.
func TestCheckScanIgnoresCorruptState(t *testing.T) {
	g, err := topology.CoreNetwork(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	store := statestore.NewMem()
	cpKey, vKey := scanKeys(g.Encode(), 3, SyncThreshold(3))
	for _, garbage := range [][]byte{[]byte("not json"), []byte(`{"version":99}`), []byte(`{"version":1,"graph":"g1:3","done":7}`)} {
		if err := store.Write(context.Background(), cpKey, garbage); err != nil {
			t.Fatal(err)
		}
		if err := store.Write(context.Background(), vKey, garbage); err != nil {
			t.Fatal(err)
		}
		res, err := CheckScan(context.Background(), g, 3, SyncThreshold(3), ScanOptions{Workers: 1, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit || !res.Satisfied || res.FaultSetsResumed != 0 {
			t.Fatalf("corrupt state leaked into result: %+v", res)
		}
		if err := store.Delete(context.Background(), vKey); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMaxFScanResumeEquivalence interrupts a MaxF sweep mid-check, resumes it
// over the same store, and requires best-f and every stats total to match an
// uninterrupted sweep; a subsequent fresh sweep of the settled graph must be
// served entirely from the verdict cache.
func TestMaxFScanResumeEquivalence(t *testing.T) {
	g, err := topology.CoreNetwork(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	bestBase, statsBase, err := MaxFScan(context.Background(), g, MaxFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store := statestore.NewMem()
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Int64
	_, _, err = MaxFScan(ctx, g, MaxFOptions{
		Store:           store,
		CheckpointEvery: 4,
		OnProgress: func(f int, p Progress) {
			// Let a few checks settle, then kill mid-check at a larger f.
			if f >= 2 && fired.Add(1) == 10 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep err=%v, want context.Canceled", err)
	}
	best, stats, err := MaxFScan(context.Background(), g, MaxFOptions{Store: store, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if best != bestBase {
		t.Fatalf("resumed best=%d, uninterrupted best=%d", best, bestBase)
	}
	if stats.ChecksResumed == 0 {
		t.Error("resumed sweep replayed no settled checks")
	}
	got := stats
	got.ChecksResumed, got.CacheHits, got.FaultSetsResumed = 0, 0, 0
	if got != statsBase {
		t.Fatalf("resumed stats differ:\nbase    %+v\nresumed %+v", statsBase, got)
	}

	// The sweep settled: the in-flight record is gone, so a fresh sweep is
	// answered check-by-check from the verdict cache.
	best2, stats2, err := MaxFScan(context.Background(), g, MaxFOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if best2 != bestBase {
		t.Fatalf("cached sweep best=%d, want %d", best2, bestBase)
	}
	if stats2.CacheHits != stats2.ChecksRun || stats2.CacheHits == 0 {
		t.Fatalf("cached sweep should hit on every check: %+v", stats2)
	}
	if stats2.ChecksResumed != 0 {
		t.Fatalf("cached sweep is not a resume: %+v", stats2)
	}
	got2 := stats2
	got2.ChecksResumed, got2.CacheHits, got2.FaultSetsResumed = 0, 0, 0
	if got2 != statsBase {
		t.Fatalf("cached sweep stats differ:\nbase   %+v\ncached %+v", statsBase, got2)
	}
}

// TestMaxFScanResumeAfterNegativeCheck simulates a crash after a failing
// check settled (its record saved) but before the in-flight record cleanup:
// the resumed sweep must finish immediately from the record — replaying the
// negative verdict without re-running anything — and clean the record up.
// Chord(7,2) ends its sweep with a genuine failing check at f=2 (§6.3).
func TestMaxFScanResumeAfterNegativeCheck(t *testing.T) {
	g, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	bestBase, statsBase, err := MaxFScan(context.Background(), g, MaxFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bestBase != 1 {
		t.Fatalf("chord(7,2) maxf = %d, want 1 (f=2 fails)", bestBase)
	}
	// Run a full sweep to populate the verdict cache, then capture the
	// per-check results and fabricate the in-flight record a crash-before-
	// cleanup would have left behind (the settled sweep deletes it).
	store := statestore.NewMem()
	if _, _, err := MaxFScan(context.Background(), g, MaxFOptions{Store: store}); err != nil {
		t.Fatal(err)
	}
	rec, err := loadMaxFRecord(context.Background(), store, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Checks) != 0 {
		t.Fatal("settled sweep should have deleted its record")
	}
	full := maxfRecord{Version: stateVersion, Graph: g.Encode()}
	if _, _, err := MaxFScan(context.Background(), g, MaxFOptions{
		Store: store,
		OnCheck: func(f int, res Result) {
			full.Checks = append(full.Checks, maxfCheck{
				F: f, Satisfied: res.Satisfied,
				FaultSets:  res.FaultSetsExamined,
				Candidates: res.CandidatesExamined,
				Pruned:     res.CandidatesPruned,
				MemoHits:   res.MemoHits,
			})
		},
	}); err != nil {
		t.Fatal(err)
	}
	if n := len(full.Checks); n != 3 || full.Checks[2].Satisfied {
		t.Fatalf("expected checks f=0,1,2 ending unsatisfied, got %+v", full.Checks)
	}
	if err := full.save(context.Background(), store); err != nil {
		t.Fatal(err)
	}
	best, stats, err := MaxFScan(context.Background(), g, MaxFOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if best != bestBase {
		t.Fatalf("best=%d, want %d", best, bestBase)
	}
	if stats.ChecksResumed != len(full.Checks) || stats.ChecksRun != len(full.Checks) {
		t.Fatalf("sweep should settle wholly from the record: %+v (want %d replayed)", stats, len(full.Checks))
	}
	got := stats
	got.ChecksResumed, got.CacheHits, got.FaultSetsResumed = 0, 0, 0
	if got != statsBase {
		t.Fatalf("replayed stats differ:\nbase     %+v\nreplayed %+v", statsBase, got)
	}
	rec2, err := loadMaxFRecord(context.Background(), store, g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Checks) != 0 {
		t.Fatal("negative replay should delete the in-flight record")
	}
}
