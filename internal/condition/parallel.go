package condition

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// CheckParallel is Check with the fault-set enumeration fanned out across
// worker goroutines. The verdict is identical to Check's, and so is the
// witness: workers race, but the reported witness always comes from the
// lowest-indexed failing fault set in canonical enumeration order, which is
// the one the sequential checker would return.
//
// workers ≤ 0 selects GOMAXPROCS. The speedup tracks core count when the
// cost is spread over many fault sets (large n, f ≥ 2) — per-fault-set work
// is independent and lock-free — though coordination overhead caps the gain
// on few-core machines. For trivially small inputs the sequential path is
// used directly.
func CheckParallel(g *graph.Graph, f, workers int) (Result, error) {
	threshold := SyncThreshold(f)
	n := g.N()
	if f < 0 {
		return Result{}, fmt.Errorf("condition: f must be >= 0, got %d", f)
	}
	if n-f > 62 {
		return Result{}, fmt.Errorf("condition: exact check infeasible for n-f = %d > 62 nodes", n-f)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < 8 {
		return CheckThreshold(g, f, threshold)
	}

	// Materialize the fault sets in canonical (size-ascending, then
	// combination-lexicographic) order — the same order CheckThreshold
	// visits them.
	universe := nodeset.Universe(n)
	var faultSets []nodeset.Set
	for fSize := 0; fSize <= f && fSize <= n; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(s nodeset.Set) bool {
			faultSets = append(faultSets, s.Clone())
			return true
		})
	}

	witnesses := make([]*Witness, len(faultSets))
	var (
		next       atomic.Int64
		bestFail   atomic.Int64
		candidates atomic.Int64
		pruned     atomic.Int64
		memoHits   atomic.Int64
		examined   atomic.Int64
	)
	bestFail.Store(int64(len(faultSets)))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Per-worker scratch: the base counters, the peel worklist, and
			// the empty-complement memo all mutate during a fault set.
			scratch := newInsulationScratch(g)
			var local checkCounters
			defer func() {
				candidates.Add(local.candidates)
				pruned.Add(local.pruned)
				memoHits.Add(local.memoHits)
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(faultSets)) {
					return
				}
				if i > bestFail.Load() {
					// A lower-indexed fault set already failed; anything we
					// find here would be discarded.
					continue
				}
				examined.Add(1)
				fSet := faultSets[i]
				ground := universe.Difference(fSet)
				wit := findDisjointInsulatedPair(scratch, ground, threshold, &local)
				if wit == nil {
					continue
				}
				wit.F = fSet.Clone()
				wit.C = ground.Difference(wit.L).Difference(wit.R)
				witnesses[i] = wit
				// Lower bestFail to i if i is smaller.
				for {
					b := bestFail.Load()
					if i >= b || bestFail.CompareAndSwap(b, i) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	res := Result{
		Satisfied:          true,
		FaultSetsExamined:  examined.Load(),
		CandidatesExamined: candidates.Load(),
		CandidatesPruned:   pruned.Load(),
		MemoHits:           memoHits.Load(),
	}
	if b := bestFail.Load(); b < int64(len(faultSets)) {
		res.Satisfied = false
		res.Witness = witnesses[b]
	}
	return res, nil
}
