package condition

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// Progress is a streaming snapshot of an exact check's fault-set scan.
type Progress struct {
	// FaultSetsDone counts the fault sets fully processed so far.
	FaultSetsDone int64
	// FaultSetsTotal is Σ_{k≤f} C(n,k) — the scan's full extent — or 0 when
	// it exceeds the int64 binomial table (n > 62), in which case only
	// FaultSetsDone is meaningful.
	FaultSetsTotal int64
}

// ProgressFunc receives Progress snapshots, one per processed fault set.
// With workers > 1 it is invoked concurrently from worker goroutines and
// must be safe for concurrent use; it runs on the scan's hot path, so it
// must be fast.
type ProgressFunc func(Progress)

// totalFaultSets returns Σ_{k=0..f} C(n,k), or 0 when n is outside the
// binomial table (the count is only reported, never used for control flow).
func totalFaultSets(n, f int) int64 {
	if n > 62 {
		return 0
	}
	var total int64
	for k := 0; k <= f && k <= n; k++ {
		total += binom(n, k)
	}
	return total
}

// CheckScan is the full exact-check coordinator behind CheckThreshold and
// CheckParallel: it decides the Theorem 1 condition at the given in-link
// threshold with a configurable worker count, honoring ctx and streaming
// per-fault-set progress.
//
// Cancellation is checked between fault sets — never inside the candidate
// enumeration — so CheckScan returns within one fault set's scan time of
// ctx being canceled. On cancellation (or any error) the returned Result
// carries the work counters accumulated so far, but Satisfied and Witness
// are meaningless; the error wraps ctx.Err() together with how far the scan
// got.
//
// workers ≤ 0 selects GOMAXPROCS; 1 (or trivially small inputs) runs the
// sequential scan. The verdict and witness are identical at every worker
// count: workers race, but the reported witness always comes from the
// lowest-indexed failing fault set in canonical enumeration order, which is
// the one the sequential scan would return.
func CheckScan(ctx context.Context, g *graph.Graph, f, threshold, workers int, onProgress ProgressFunc) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N()
	if f < 0 {
		return Result{}, fmt.Errorf("condition: f must be >= 0, got %d", f)
	}
	if threshold < 1 {
		return Result{}, fmt.Errorf("condition: threshold must be >= 1, got %d", threshold)
	}
	if n-f > 62 {
		return Result{}, fmt.Errorf("condition: exact check infeasible for n-f = %d > 62 nodes", n-f)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < 8 {
		return checkSequential(ctx, g, f, threshold, onProgress)
	}
	return checkParallel(ctx, g, f, threshold, workers, onProgress)
}

// checkSequential is the single-goroutine fault-set scan — the reference
// enumeration order the parallel scan's witness selection reproduces.
func checkSequential(ctx context.Context, g *graph.Graph, f, threshold int, onProgress ProgressFunc) (Result, error) {
	n := g.N()
	universe := nodeset.Universe(n)
	total := totalFaultSets(n, f)
	res := Result{Satisfied: true}
	scratch := newInsulationScratch(g)
	var counters checkCounters
	var scanErr error

	for fSize := 0; fSize <= f && fSize <= n; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(fSet nodeset.Set) bool {
			if ctx.Err() != nil {
				scanErr = fmt.Errorf("condition: check canceled after %d/%d fault sets: %w",
					res.FaultSetsExamined, total, context.Cause(ctx))
				return false
			}
			res.FaultSetsExamined++
			ground := universe.Difference(fSet)
			w := findDisjointInsulatedPair(scratch, ground, threshold, &counters)
			if w != nil {
				w.F = fSet.Clone()
				w.C = ground.Difference(w.L).Difference(w.R)
				res.Satisfied = false
				res.Witness = w
				return false
			}
			if onProgress != nil {
				onProgress(Progress{FaultSetsDone: res.FaultSetsExamined, FaultSetsTotal: total})
			}
			return true
		})
		if !res.Satisfied || scanErr != nil {
			break
		}
	}
	res.CandidatesExamined = counters.candidates
	res.CandidatesPruned = counters.pruned
	res.MemoHits = counters.memoHits
	if scanErr != nil {
		// The verdict is undecided on an interrupted scan; only the work
		// counters are meaningful.
		res.Satisfied = false
	}
	return res, scanErr
}

// checkParallel fans the fault-set enumeration across worker goroutines.
func checkParallel(ctx context.Context, g *graph.Graph, f, threshold, workers int, onProgress ProgressFunc) (Result, error) {
	n := g.N()
	// Materialize the fault sets in canonical (size-ascending, then
	// combination-lexicographic) order — the same order checkSequential
	// visits them.
	universe := nodeset.Universe(n)
	var faultSets []nodeset.Set
	for fSize := 0; fSize <= f && fSize <= n; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(s nodeset.Set) bool {
			faultSets = append(faultSets, s.Clone())
			return true
		})
	}
	total := totalFaultSets(n, f)

	witnesses := make([]*Witness, len(faultSets))
	var (
		next       atomic.Int64
		bestFail   atomic.Int64
		canceled   atomic.Bool
		candidates atomic.Int64
		pruned     atomic.Int64
		memoHits   atomic.Int64
		examined   atomic.Int64
	)
	bestFail.Store(int64(len(faultSets)))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Per-worker scratch: the base counters, the peel worklist, and
			// the empty-complement memo all mutate during a fault set.
			scratch := newInsulationScratch(g)
			var local checkCounters
			defer func() {
				candidates.Add(local.candidates)
				pruned.Add(local.pruned)
				memoHits.Add(local.memoHits)
			}()
			for !canceled.Load() {
				i := next.Add(1) - 1
				if i >= int64(len(faultSets)) {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				if i > bestFail.Load() {
					// A lower-indexed fault set already failed; anything we
					// find here would be discarded.
					continue
				}
				done := examined.Add(1)
				fSet := faultSets[i]
				ground := universe.Difference(fSet)
				wit := findDisjointInsulatedPair(scratch, ground, threshold, &local)
				if wit == nil {
					if onProgress != nil {
						onProgress(Progress{FaultSetsDone: done, FaultSetsTotal: total})
					}
					continue
				}
				wit.F = fSet.Clone()
				wit.C = ground.Difference(wit.L).Difference(wit.R)
				witnesses[i] = wit
				// Lower bestFail to i if i is smaller.
				for {
					b := bestFail.Load()
					if i >= b || bestFail.CompareAndSwap(b, i) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	res := Result{
		Satisfied:          true,
		FaultSetsExamined:  examined.Load(),
		CandidatesExamined: candidates.Load(),
		CandidatesPruned:   pruned.Load(),
		MemoHits:           memoHits.Load(),
	}
	if canceled.Load() {
		res.Satisfied = false
		return res, fmt.Errorf("condition: check canceled after %d/%d fault sets: %w",
			examined.Load(), total, context.Cause(ctx))
	}
	if b := bestFail.Load(); b < int64(len(faultSets)) {
		res.Satisfied = false
		res.Witness = witnesses[b]
	}
	return res, nil
}

// CheckParallel is Check with the fault-set enumeration fanned out across
// worker goroutines — CheckScan at the synchronous threshold, without
// progress streaming. The verdict and witness are identical to Check's.
//
// The speedup tracks core count when the cost is spread over many fault
// sets (large n, f ≥ 2) — per-fault-set work is independent and lock-free —
// though coordination overhead caps the gain on few-core machines.
func CheckParallel(ctx context.Context, g *graph.Graph, f, workers int) (Result, error) {
	return CheckScan(ctx, g, f, SyncThreshold(f), workers, nil)
}
