package condition

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/statestore"
)

// Progress is a streaming snapshot of an exact check's fault-set scan.
type Progress struct {
	// FaultSetsDone counts the fault sets fully processed so far.
	FaultSetsDone int64
	// FaultSetsTotal is Σ_{k≤f} C(n,k) — the scan's full extent — or 0 when
	// it exceeds the int64 binomial table (n > 62), in which case only
	// FaultSetsDone is meaningful.
	FaultSetsTotal int64
}

// ProgressFunc receives Progress snapshots, one per processed fault set.
// With workers > 1 it is invoked concurrently from worker goroutines and
// must be safe for concurrent use; it runs on the scan's hot path, so it
// must be fast.
type ProgressFunc func(Progress)

// totalFaultSets returns Σ_{k=0..f} C(n,k), or 0 when n is outside the
// binomial table (the count is only reported, never used for control flow).
func totalFaultSets(n, f int) int64 {
	if n > 62 {
		return 0
	}
	var total int64
	for k := 0; k <= f && k <= n; k++ {
		total += binom(n, k)
	}
	return total
}

// ScanOptions configures a CheckScan.
type ScanOptions struct {
	// Workers fans the fault-set enumeration across goroutines: ≤ 0 selects
	// GOMAXPROCS, 1 (or trivially small inputs) runs the sequential scan.
	// The verdict and witness are identical at every worker count.
	Workers int
	// OnProgress, when non-nil, streams one Progress snapshot per processed
	// fault set (see ProgressFunc for the concurrency contract).
	OnProgress ProgressFunc
	// Store, when non-nil, makes the scan durable: the contiguous prefix of
	// completed fault sets and its aggregate work counters are checkpointed
	// periodically, a fresh scan resumes past the persisted prefix with
	// verdict, witness, and counter totals identical to an uninterrupted
	// run, and settled verdicts are cached by the canonical graph encoding
	// (Result.CacheHit) so repeated topologies skip enumeration entirely.
	// Store errors abort the scan.
	Store statestore.Backend
	// CheckpointEvery is the fault-set interval between checkpoint writes
	// (0 = DefaultCheckpointEvery); a time-based flush runs alongside it.
	// The cadence never affects results, only resume freshness.
	CheckpointEvery int
}

// CheckScan is the full exact-check coordinator behind CheckThreshold and
// CheckParallel: it decides the Theorem 1 condition at the given in-link
// threshold with a configurable worker count, honoring ctx, streaming
// per-fault-set progress, and — with ScanOptions.Store — checkpointing the
// scan for crash-safe resume plus caching the settled verdict.
//
// Cancellation is checked between fault sets — never inside the candidate
// enumeration — so CheckScan returns within one fault set's scan time of
// ctx being canceled. On cancellation (or any error) the returned Result
// carries the work counters accumulated so far, but Satisfied and Witness
// are meaningless; the error wraps ctx.Err() together with how far the scan
// got. With a Store, an interrupted scan flushes a final checkpoint before
// returning, so the next CheckScan with the same store resumes there.
//
// With workers > 1 the workers race, but the reported witness always comes
// from the lowest-indexed failing fault set in canonical enumeration order,
// which is the one the sequential scan would return.
func CheckScan(ctx context.Context, g *graph.Graph, f, threshold int, opts ScanOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N()
	if f < 0 {
		return Result{}, fmt.Errorf("condition: f must be >= 0, got %d", f)
	}
	if threshold < 1 {
		return Result{}, fmt.Errorf("condition: threshold must be >= 1, got %d", threshold)
	}
	if n-f > 62 {
		return Result{}, fmt.Errorf("condition: exact check infeasible for n-f = %d > 62 nodes", n-f)
	}
	var st *scanState
	if opts.Store != nil {
		var cached *Result
		var err error
		st, cached, err = loadScanState(ctx, opts.Store, g, f, threshold, opts.CheckpointEvery)
		if err != nil {
			return Result{}, err
		}
		if cached != nil {
			return *cached, nil
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < 8 {
		return checkSequential(ctx, g, f, threshold, opts.OnProgress, st)
	}
	return checkParallel(ctx, g, f, threshold, workers, opts.OnProgress, st)
}

// checkSequential is the single-goroutine fault-set scan — the reference
// enumeration order the parallel scan's witness selection reproduces. With
// a scanState it skips the checkpointed prefix (restoring its counter
// aggregate) and checkpoints completed fault sets as it goes.
func checkSequential(ctx context.Context, g *graph.Graph, f, threshold int, onProgress ProgressFunc, st *scanState) (Result, error) {
	n := g.N()
	universe := nodeset.Universe(n)
	total := totalFaultSets(n, f)
	skip, resumed := st.resumePoint()
	res := Result{Satisfied: true, FaultSetsExamined: skip, FaultSetsResumed: skip}
	scratch := newInsulationScratch(g)
	var counters checkCounters
	var idx int64 // position in the canonical enumeration order
	var scanErr error

	for fSize := 0; fSize <= f && fSize <= n; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(fSet nodeset.Set) bool {
			if idx < skip {
				// Checkpointed prefix: satisfied, counters restored below.
				idx++
				return true
			}
			if ctx.Err() != nil {
				scanErr = fmt.Errorf("condition: check canceled after %d/%d fault sets: %w",
					res.FaultSetsExamined, total, context.Cause(ctx))
				return false
			}
			res.FaultSetsExamined++
			before := counters
			ground := universe.Difference(fSet)
			w := findDisjointInsulatedPair(scratch, ground, threshold, &counters)
			if w != nil {
				w.F = fSet.Clone()
				w.C = ground.Difference(w.L).Difference(w.R)
				res.Satisfied = false
				res.Witness = w
				return false
			}
			if scanErr = st.complete(ctx, idx, checkCounters{
				candidates: counters.candidates - before.candidates,
				pruned:     counters.pruned - before.pruned,
				memoHits:   counters.memoHits - before.memoHits,
			}); scanErr != nil {
				return false
			}
			idx++
			if onProgress != nil {
				onProgress(Progress{FaultSetsDone: res.FaultSetsExamined, FaultSetsTotal: total})
			}
			return true
		})
		if !res.Satisfied || scanErr != nil {
			break
		}
	}
	res.CandidatesExamined = resumed.candidates + counters.candidates
	res.CandidatesPruned = resumed.pruned + counters.pruned
	res.MemoHits = resumed.memoHits + counters.memoHits
	if scanErr != nil {
		// The verdict is undecided on an interrupted scan; only the work
		// counters are meaningful. Flush a final checkpoint (on a fresh
		// context — ctx is typically the canceled one) so a resume loses
		// nothing that completed.
		res.Satisfied = false
		if ctx.Err() != nil {
			st.flush(context.Background()) // best effort; scanErr already set
		}
		return res, scanErr
	}
	if err := st.finish(ctx, res); err != nil {
		return res, err
	}
	return res, nil
}

// checkParallel fans the fault-set enumeration across worker goroutines.
// With a scanState the checkpointed prefix is skipped outright and each
// completed fault set reports its counter delta to the checkpointer, whose
// reorder buffer keeps the durable frontier contiguous.
func checkParallel(ctx context.Context, g *graph.Graph, f, threshold, workers int, onProgress ProgressFunc, st *scanState) (Result, error) {
	n := g.N()
	// Materialize the fault sets in canonical (size-ascending, then
	// combination-lexicographic) order — the same order checkSequential
	// visits them.
	universe := nodeset.Universe(n)
	var faultSets []nodeset.Set
	for fSize := 0; fSize <= f && fSize <= n; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(s nodeset.Set) bool {
			faultSets = append(faultSets, s.Clone())
			return true
		})
	}
	total := totalFaultSets(n, f)
	skip, resumed := st.resumePoint()
	if skip > int64(len(faultSets)) {
		skip = int64(len(faultSets))
	}

	witnesses := make([]*Witness, len(faultSets))
	var (
		next       atomic.Int64
		bestFail   atomic.Int64
		canceled   atomic.Bool
		candidates atomic.Int64
		pruned     atomic.Int64
		memoHits   atomic.Int64
		examined   atomic.Int64
		storeMu    sync.Mutex
		storeErr   error
	)
	bestFail.Store(int64(len(faultSets)))
	next.Store(skip)
	examined.Store(skip)
	candidates.Store(resumed.candidates)
	pruned.Store(resumed.pruned)
	memoHits.Store(resumed.memoHits)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Per-worker scratch: the base counters, the peel worklist, and
			// the empty-complement memo all mutate during a fault set.
			scratch := newInsulationScratch(g)
			var local checkCounters
			defer func() {
				candidates.Add(local.candidates)
				pruned.Add(local.pruned)
				memoHits.Add(local.memoHits)
			}()
			for !canceled.Load() {
				i := next.Add(1) - 1
				if i >= int64(len(faultSets)) {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				if i > bestFail.Load() {
					// A lower-indexed fault set already failed; anything we
					// find here would be discarded.
					continue
				}
				done := examined.Add(1)
				before := local
				fSet := faultSets[i]
				ground := universe.Difference(fSet)
				wit := findDisjointInsulatedPair(scratch, ground, threshold, &local)
				if wit == nil {
					if err := st.complete(ctx, i, checkCounters{
						candidates: local.candidates - before.candidates,
						pruned:     local.pruned - before.pruned,
						memoHits:   local.memoHits - before.memoHits,
					}); err != nil {
						storeMu.Lock()
						if storeErr == nil {
							storeErr = err
						}
						storeMu.Unlock()
						canceled.Store(true)
						return
					}
					if onProgress != nil {
						onProgress(Progress{FaultSetsDone: done, FaultSetsTotal: total})
					}
					continue
				}
				wit.F = fSet.Clone()
				wit.C = ground.Difference(wit.L).Difference(wit.R)
				witnesses[i] = wit
				// Lower bestFail to i if i is smaller.
				for {
					b := bestFail.Load()
					if i >= b || bestFail.CompareAndSwap(b, i) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	res := Result{
		Satisfied:          true,
		FaultSetsExamined:  examined.Load(),
		FaultSetsResumed:   skip,
		CandidatesExamined: candidates.Load(),
		CandidatesPruned:   pruned.Load(),
		MemoHits:           memoHits.Load(),
	}
	if storeErr != nil {
		res.Satisfied = false
		return res, storeErr
	}
	if canceled.Load() {
		res.Satisfied = false
		// Flush the contiguous frontier so the resume loses at most the
		// out-of-order tail; ctx is the canceled one, so write on a fresh
		// context.
		st.flush(context.Background())
		return res, fmt.Errorf("condition: check canceled after %d/%d fault sets: %w",
			examined.Load(), total, context.Cause(ctx))
	}
	if b := bestFail.Load(); b < int64(len(faultSets)) {
		res.Satisfied = false
		res.Witness = witnesses[b]
	}
	if err := st.finish(ctx, res); err != nil {
		return res, err
	}
	return res, nil
}

// CheckParallel is Check with the fault-set enumeration fanned out across
// worker goroutines — CheckScan at the synchronous threshold, without
// progress streaming or persistence. The verdict and witness are identical
// to Check's.
//
// The speedup tracks core count when the cost is spread over many fault
// sets (large n, f ≥ 2) — per-fault-set work is independent and lock-free —
// though coordination overhead caps the gain on few-core machines.
func CheckParallel(ctx context.Context, g *graph.Graph, f, workers int) (Result, error) {
	return CheckScan(ctx, g, f, SyncThreshold(f), ScanOptions{Workers: workers})
}
