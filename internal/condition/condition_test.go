package condition

import (
	"math/rand"
	"testing"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

func mustComplete(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := topology.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestThresholds(t *testing.T) {
	if SyncThreshold(2) != 3 {
		t.Errorf("SyncThreshold(2) = %d, want 3", SyncThreshold(2))
	}
	if AsyncThreshold(2) != 5 {
		t.Errorf("AsyncThreshold(2) = %d, want 5", AsyncThreshold(2))
	}
}

func TestReachesAndIn(t *testing.T) {
	// 0,1,2 all point at 3; only 0 points at 4.
	g := graph.NewBuilder(5).
		AddEdge(0, 3).AddEdge(1, 3).AddEdge(2, 3).
		AddEdge(0, 4).
		MustBuild()
	a := nodeset.FromMembers(5, 0, 1, 2)
	b := nodeset.FromMembers(5, 3, 4)

	if !Reaches(g, a, b, 3) {
		t.Error("A ⇒ B should hold at threshold 3 (node 3 has 3 in-links)")
	}
	if Reaches(g, a, b, 4) {
		t.Error("A ⇒ B should fail at threshold 4")
	}
	in3 := In(g, a, b, 3)
	if !in3.Equal(nodeset.FromMembers(5, 3)) {
		t.Errorf("in(A⇒B) at 3 = %v, want {3}", in3)
	}
	in1 := In(g, a, b, 1)
	if !in1.Equal(b) {
		t.Errorf("in(A⇒B) at 1 = %v, want {3, 4}", in1)
	}
	if got := In(g, a, b, 4); !got.Empty() {
		t.Errorf("in(A⇒B) at 4 = %v, want empty (A ⇏ B convention)", got)
	}
}

func TestPropagatesCompleteGraph(t *testing.T) {
	g := mustComplete(t, 4)
	a := nodeset.FromMembers(4, 0, 1)
	b := nodeset.FromMembers(4, 2, 3)
	p, err := Propagates(g, a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK || p.Steps != 1 {
		t.Fatalf("K4 {0,1}→{2,3}: OK=%v steps=%d, want true/1", p.OK, p.Steps)
	}
	if len(p.ASeq) != 2 || len(p.BSeq) != 2 {
		t.Fatalf("sequence lengths %d/%d, want 2/2", len(p.ASeq), len(p.BSeq))
	}
	if !p.BSeq[1].Empty() {
		t.Fatalf("B_l = %v, want empty", p.BSeq[1])
	}
}

func TestPropagatesDirectedCycleChain(t *testing.T) {
	// On a directed cycle with threshold 1, {0} propagates to the rest one
	// node per step: l = n-1.
	n := 6
	g, err := topology.DirectedCycle(n)
	if err != nil {
		t.Fatal(err)
	}
	a := nodeset.FromMembers(n, 0)
	b := a.Complement()
	p, err := Propagates(g, a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK || p.Steps != n-1 {
		t.Fatalf("cycle propagation: OK=%v steps=%d, want true/%d", p.OK, p.Steps, n-1)
	}
	// Definition 3 invariants along the sequences.
	for tau := 0; tau <= p.Steps; tau++ {
		if !p.ASeq[tau].Disjoint(p.BSeq[tau]) {
			t.Fatalf("A_%d and B_%d overlap", tau, tau)
		}
		if got := p.ASeq[tau].Union(p.BSeq[tau]); !got.Equal(a.Union(b)) {
			t.Fatalf("A_%d ∪ B_%d = %v does not partition A∪B", tau, tau, got)
		}
		if tau < p.Steps && p.BSeq[tau].Empty() {
			t.Fatalf("B_%d empty before the final step", tau)
		}
	}
}

func TestPropagatesFailure(t *testing.T) {
	// Two disconnected 2-cliques: {0,1} cannot propagate to {2,3}.
	g := graph.NewBuilder(4).AddUndirected(0, 1).AddUndirected(2, 3).MustBuild()
	a := nodeset.FromMembers(4, 0, 1)
	b := nodeset.FromMembers(4, 2, 3)
	p, err := Propagates(g, a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.OK {
		t.Fatal("propagation across disconnection should fail")
	}
	if p.Steps != 0 {
		t.Fatalf("steps = %d, want 0", p.Steps)
	}
}

func TestPropagatesInputValidation(t *testing.T) {
	g := mustComplete(t, 4)
	empty := nodeset.New(4)
	a := nodeset.FromMembers(4, 0, 1)
	if _, err := Propagates(g, empty, a, 1); err == nil {
		t.Error("empty A should error")
	}
	if _, err := Propagates(g, a, empty, 1); err == nil {
		t.Error("empty B should error")
	}
	if _, err := Propagates(g, a, nodeset.FromMembers(4, 1, 2), 1); err == nil {
		t.Error("overlapping sets should error")
	}
}

func TestPropagationStepsBound(t *testing.T) {
	// Paper: l ≤ n − f − 1 whenever A propagates to B with |A| ≥ f+1.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		f := rng.Intn(2)
		g, err := topology.RandomDigraph(n, 0.6, rng)
		if err != nil {
			t.Fatal(err)
		}
		a := nodeset.New(n)
		for a.Count() < f+1 {
			a.Add(rng.Intn(n))
		}
		b := a.Complement()
		if b.Empty() {
			continue
		}
		p, err := Propagates(g, a, b, f+1)
		if err != nil {
			t.Fatal(err)
		}
		if p.OK && p.Steps > n-f-1 {
			t.Fatalf("n=%d f=%d: %d steps exceeds n-f-1", n, f, p.Steps)
		}
	}
}

// naiveCheck is the literal Theorem 1 statement: enumerate every partition
// F, L, C, R with |F| ≤ f and L, R non-empty, and test the two ⇒ relations
// directly. Exponential (3^n per fault set) — used only to cross-validate
// the insulated-set checker on small graphs.
func naiveCheck(t *testing.T, g *graph.Graph, f, threshold int) *Witness {
	t.Helper()
	n := g.N()
	universe := nodeset.Universe(n)
	var witness *Witness
	for fsz := 0; fsz <= f && fsz <= n; fsz++ {
		nodeset.SubsetsAscendingSize(universe, fsz, fsz, func(fSet nodeset.Set) bool {
			ground := universe.Difference(fSet)
			members := ground.Members()
			m := len(members)
			total := 1
			for i := 0; i < m; i++ {
				total *= 3
			}
			for code := 0; code < total; code++ {
				l, c, r := nodeset.New(n), nodeset.New(n), nodeset.New(n)
				x := code
				for _, v := range members {
					switch x % 3 {
					case 0:
						l.Add(v)
					case 1:
						c.Add(v)
					default:
						r.Add(v)
					}
					x /= 3
				}
				if l.Empty() || r.Empty() {
					continue
				}
				if !Reaches(g, c.Union(r), l, threshold) && !Reaches(g, l.Union(c), r, threshold) {
					witness = &Witness{F: fSet.Clone(), L: l, C: c, R: r}
					return false
				}
			}
			return true
		})
		if witness != nil {
			break
		}
	}
	return witness
}

func TestCheckAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6) // 2..7
		f := rng.Intn(3)     // 0..2
		p := 0.2 + 0.6*rng.Float64()
		g, err := topology.RandomDigraph(n, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		naive := naiveCheck(t, g, f, SyncThreshold(f))
		if res.Satisfied != (naive == nil) {
			t.Fatalf("n=%d f=%d: checker says satisfied=%v, naive witness=%v\ngraph:\n%s",
				n, f, res.Satisfied, naive, g.EdgeListString())
		}
		if res.Witness != nil {
			if err := res.Witness.Verify(g, f, SyncThreshold(f)); err != nil {
				t.Fatalf("checker witness fails verification: %v", err)
			}
		}
		if naive != nil {
			if err := naive.Verify(g, f, SyncThreshold(f)); err != nil {
				t.Fatalf("naive witness fails verification: %v", err)
			}
		}
	}
}

func TestCheckAgainstNaiveAsyncThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		f := rng.Intn(2)
		g, err := topology.RandomDigraph(n, 0.7, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CheckAsync(g, f)
		if err != nil {
			t.Fatal(err)
		}
		naive := naiveCheck(t, g, f, AsyncThreshold(f))
		if res.Satisfied != (naive == nil) {
			t.Fatalf("async n=%d f=%d: satisfied=%v naive=%v", n, f, res.Satisfied, naive)
		}
	}
}

func TestCheckCompleteGraphs(t *testing.T) {
	// Complete graphs satisfy the condition exactly when n > 3f.
	for n := 2; n <= 8; n++ {
		for f := 0; f <= 2; f++ {
			g := mustComplete(t, n)
			res, err := Check(g, f)
			if err != nil {
				t.Fatal(err)
			}
			want := n > 3*f
			if res.Satisfied != want {
				t.Errorf("K%d f=%d: satisfied=%v, want %v", n, f, res.Satisfied, want)
			}
		}
	}
}

func TestCheckCoreNetworks(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {5, 1}, {7, 2}, {8, 2}, {10, 3}} {
		g, err := topology.CoreNetwork(tc.n, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(g, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			t.Errorf("CoreNetwork(%d,%d) should satisfy Theorem 1; witness %v", tc.n, tc.f, res.Witness)
		}
	}
}

func TestCheckChordPaperCases(t *testing.T) {
	// Section 6.3, claim 1: f=1, n=4 is complete, trivially satisfies.
	c4, err := topology.Chord(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(c4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("Chord(4,1): want satisfied, witness %v", res.Witness)
	}

	// Claim 2: f=1, n=5 satisfies Theorem 1.
	c5, err := topology.Chord(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Check(c5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("Chord(5,1): want satisfied, witness %v", res.Witness)
	}

	// Claim 3: f=2, n=7 does NOT satisfy Theorem 1.
	c7, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Check(c7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("Chord(7,2): want violation")
	}
	if err := res.Witness.Verify(c7, 2, SyncThreshold(2)); err != nil {
		t.Fatalf("Chord(7,2) witness invalid: %v", err)
	}

	// The paper's own counterexample must verify too:
	// F={5,6}, L={0,2}, R={1,3,4}, C=∅.
	paper := &Witness{
		F: nodeset.FromMembers(7, 5, 6),
		L: nodeset.FromMembers(7, 0, 2),
		C: nodeset.New(7),
		R: nodeset.FromMembers(7, 1, 3, 4),
	}
	if err := paper.Verify(c7, 2, SyncThreshold(2)); err != nil {
		t.Fatalf("the paper's Chord(7,2) witness fails verification: %v", err)
	}
}

func TestCheckHypercube(t *testing.T) {
	// Section 6.2: hypercubes fail for f=1; the dimension cut is a witness.
	for d := 2; d <= 4; d++ {
		g, err := topology.Hypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfied {
			t.Errorf("hypercube d=%d should fail Theorem 1 at f=1", d)
		}
		// The paper's Fig. 3 witness: F=∅, halves along the top dimension.
		n := g.N()
		low := nodeset.New(n)
		for i := 0; i < n/2; i++ {
			low.Add(i)
		}
		w := &Witness{F: nodeset.New(n), L: low, C: nodeset.New(n), R: low.Complement()}
		if err := w.Verify(g, 1, SyncThreshold(1)); err != nil {
			t.Errorf("dimension-cut witness for d=%d fails: %v", d, err)
		}
		// But f=0 holds: hypercubes are connected.
		res0, err := Check(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res0.Satisfied {
			t.Errorf("hypercube d=%d should satisfy f=0", d)
		}
	}
}

func TestCheckCorollary2Exhaustive(t *testing.T) {
	// Corollary 2: no graph with n ≤ 3f satisfies the condition. Exhaust all
	// 64 digraphs on 3 nodes at f=1, and all 2-node digraphs at f=1.
	edges3 := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	for mask := 0; mask < 1<<6; mask++ {
		b := graph.NewBuilder(3)
		for i, e := range edges3 {
			if mask&(1<<i) != 0 {
				b.AddEdge(e[0], e[1])
			}
		}
		g := b.MustBuild()
		res, err := Check(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfied {
			t.Fatalf("3-node graph (mask %b) satisfies f=1, contradicting Corollary 2", mask)
		}
	}
	edges2 := [][2]int{{0, 1}, {1, 0}}
	for mask := 0; mask < 1<<2; mask++ {
		b := graph.NewBuilder(2)
		for i, e := range edges2 {
			if mask&(1<<i) != 0 {
				b.AddEdge(e[0], e[1])
			}
		}
		g := b.MustBuild()
		res, err := Check(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfied {
			t.Fatalf("2-node graph (mask %b) satisfies f=1", mask)
		}
	}
}

func TestCheckCorollary3(t *testing.T) {
	// Take K7 (satisfies f=2) and strip node 0 down to in-degree 4 = 2f:
	// the condition must now fail.
	g := mustComplete(t, 7)
	pruned, err := topology.RemoveEdges(g, [][2]int{{1, 0}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.InDegree(0) != 4 {
		t.Fatalf("in-degree = %d, want 4", pruned.InDegree(0))
	}
	res, err := Check(pruned, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("in-degree 2f node should violate the condition (Corollary 3)")
	}
	if err := res.Witness.Verify(pruned, 2, SyncThreshold(2)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckF0EquivalentToUniqueSourceSCC(t *testing.T) {
	// For f = 0 the condition is equivalent to the graph having exactly one
	// source component — cross-check on random digraphs.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(8)
		g, err := topology.RandomDigraph(n, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfied != (countSourceSCCs(g) == 1) {
			t.Fatalf("f=0 condition (%v) disagrees with unique-source-SCC (%d sources)\n%s",
				res.Satisfied, countSourceSCCs(g), g.EdgeListString())
		}
	}
}

func countSourceSCCs(g *graph.Graph) int {
	comps := g.StronglyConnectedComponents()
	id := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			id[v] = ci
		}
	}
	hasIncoming := make([]bool, len(comps))
	g.ForEachEdge(func(from, to int) {
		if id[from] != id[to] {
			hasIncoming[id[to]] = true
		}
	})
	sources := 0
	for _, in := range hasIncoming {
		if !in {
			sources++
		}
	}
	return sources
}

func TestCheckInputValidation(t *testing.T) {
	g := mustComplete(t, 4)
	if _, err := Check(g, -1); err == nil {
		t.Error("negative f should error")
	}
	if _, err := CheckThreshold(g, 1, 0); err == nil {
		t.Error("zero threshold should error")
	}
	big := graph.NewBuilder(70).AddEdge(0, 1).MustBuild()
	if _, err := Check(big, 0); err == nil {
		t.Error("n-f > 62 should be rejected as infeasible")
	}
}

func TestWitnessVerifyRejectsBadWitnesses(t *testing.T) {
	g := mustComplete(t, 4)
	n := 4
	full := nodeset.Universe(n)
	cases := []struct {
		name string
		w    Witness
	}{
		{"not covering", Witness{F: nodeset.New(n), L: nodeset.FromMembers(n, 0), C: nodeset.New(n), R: nodeset.FromMembers(n, 1)}},
		{"overlap", Witness{F: nodeset.New(n), L: nodeset.FromMembers(n, 0, 1), C: nodeset.FromMembers(n, 1, 2), R: nodeset.FromMembers(n, 3)}},
		{"F too big", Witness{F: nodeset.FromMembers(n, 0, 1), L: nodeset.FromMembers(n, 2), C: nodeset.New(n), R: nodeset.FromMembers(n, 3)}},
		{"empty L", Witness{F: nodeset.New(n), L: nodeset.New(n), C: nodeset.FromMembers(n, 0, 1), R: nodeset.FromMembers(n, 2, 3)}},
		{"condition holds", Witness{F: nodeset.New(n), L: nodeset.FromMembers(n, 0, 1), C: nodeset.New(n), R: nodeset.FromMembers(n, 2, 3)}},
	}
	_ = full
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.w.Verify(g, 1, 2); err == nil {
				t.Fatal("Verify accepted a bad witness")
			}
		})
	}
}

func TestMaxF(t *testing.T) {
	cases := []struct {
		name string
		g    func() (*graph.Graph, error)
		want int
	}{
		{"K4", func() (*graph.Graph, error) { return topology.Complete(4) }, 1},
		{"K7", func() (*graph.Graph, error) { return topology.Complete(7) }, 2},
		{"K10", func() (*graph.Graph, error) { return topology.Complete(10) }, 3},
		{"hypercube3", func() (*graph.Graph, error) { return topology.Hypercube(3) }, 0},
		{"core(7,2)", func() (*graph.Graph, error) { return topology.CoreNetwork(7, 2) }, 2},
		{"chord(5,1)", func() (*graph.Graph, error) { return topology.Chord(5, 1) }, 1},
		{"two cliques", func() (*graph.Graph, error) {
			return graph.NewBuilder(4).AddUndirected(0, 1).AddUndirected(2, 3).Build()
		}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			got, err := MaxF(g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("MaxF = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestMaxFMonotonicity(t *testing.T) {
	// If the condition holds for f it must hold for all f' < f: spot-check
	// on random graphs by verifying Check agrees below MaxF and fails just
	// above it.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		g, err := topology.RandomDigraph(n, 0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		maxF, err := MaxF(g)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f <= maxF; f++ {
			res, err := Check(g, f)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Satisfied {
				t.Fatalf("condition fails at f=%d below MaxF=%d", f, maxF)
			}
		}
		if 3*(maxF+1) < n {
			res, err := Check(g, maxF+1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Satisfied {
				t.Fatalf("condition holds at f=%d above MaxF=%d", maxF+1, maxF)
			}
		}
	}
}

func TestConditionMonotoneInEdges(t *testing.T) {
	// Adding edges can only help: every ⇒ relation is monotone in the edge
	// set, so a satisfying graph stays satisfying under any edge addition.
	rng := rand.New(rand.NewSource(131))
	checked := 0
	for trial := 0; trial < 60 && checked < 15; trial++ {
		n := 4 + rng.Intn(5)
		f := 1
		g, err := topology.RandomDigraph(n, 0.6+0.3*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			continue
		}
		checked++
		// Add up to three random missing edges.
		var add [][2]int
		for len(add) < 3 {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				add = append(add, [2]int{u, v})
			}
			if g.NumEdges()+len(add) >= n*(n-1) {
				break
			}
		}
		if len(add) == 0 {
			continue
		}
		bigger, err := topology.AddEdges(g, add)
		if err != nil {
			t.Fatal(err)
		}
		after, err := Check(bigger, f)
		if err != nil {
			t.Fatal(err)
		}
		if !after.Satisfied {
			t.Fatalf("adding edges %v broke the condition:\n%s", add, g.EdgeListString())
		}
	}
	if checked < 5 {
		t.Fatalf("only %d satisfying graphs sampled", checked)
	}
}

func TestEitherPropagatesDichotomy(t *testing.T) {
	// Lemma 2: on a Theorem 1-satisfying graph, any partition A, B, F with
	// |F| ≤ f has A→B or B→A.
	rng := rand.New(rand.NewSource(41))
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for trial := 0; trial < 60; trial++ {
		f := nodeset.New(n)
		for f.Count() < rng.Intn(3) {
			f.Add(rng.Intn(n))
		}
		rest := f.Complement().Members()
		if len(rest) < 2 {
			continue
		}
		a, b := nodeset.New(n), nodeset.New(n)
		for i, v := range rest {
			if i == 0 || (i > 1 && rng.Intn(2) == 0) {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		_, p, ok, err := EitherPropagates(g, a, b, SyncThreshold(2))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Lemma 2 dichotomy violated for A=%v B=%v F=%v", a, b, f)
		}
		if !p.OK {
			t.Fatal("returned propagation not OK")
		}
	}
}

func TestEitherPropagatesFailureCertifiesViolation(t *testing.T) {
	// On the failing Chord(7,2), the witness partition's L and R propagate
	// in neither direction once F is removed from the graph... Lemma 2 is
	// stated on partitions A, B, F of V; use the paper's witness sets.
	g, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := nodeset.FromMembers(7, 0, 2)
	r := nodeset.FromMembers(7, 1, 3, 4)
	_, _, ok, err := EitherPropagates(g, l, r, SyncThreshold(2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("L and R of a violating partition should not propagate either way")
	}
}

func TestQuickScreen(t *testing.T) {
	k4 := mustComplete(t, 4)
	if v := QuickScreen(k4, 1); len(v) != 0 {
		t.Errorf("K4 f=1 violations = %v, want none", v)
	}
	if v := QuickScreen(k4, 2); len(v) == 0 {
		t.Error("K4 f=2 should violate corollary2 (n ≤ 3f) and corollary3")
	}
	single := graph.NewBuilder(1).MustBuild()
	if v := QuickScreen(single, 0); len(v) != 1 || v[0].Rule != "order" {
		t.Errorf("singleton violations = %v, want [order]", v)
	}
	ring, err := topology.UndirectedRing(8)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range QuickScreen(ring, 1) {
		if v.Rule == "corollary3" {
			found = true
		}
	}
	if !found {
		t.Error("ring with in-degree 2 should violate corollary3 at f=1")
	}
	// Violation implements Stringer.
	if s := (Violation{Rule: "x", Detail: "y"}).String(); s != "x: y" {
		t.Errorf("Violation.String = %q", s)
	}
}

func TestQuickScreenAsync(t *testing.T) {
	k5 := mustComplete(t, 5)
	if v := QuickScreenAsync(k5, 1); len(v) == 0 {
		t.Error("K5 f=1 async should violate n > 5f")
	}
	k7 := mustComplete(t, 7)
	if v := QuickScreenAsync(k7, 1); len(v) != 0 {
		t.Errorf("K7 f=1 async violations = %v, want none", v)
	}
	// Screen passing does not imply the exact async condition; but K7 f=1
	// should genuinely satisfy it (in-degree 6 ≥ 3f+1 = 4, n = 7 > 5).
	res, err := CheckAsync(k7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("K7 f=1 async exact check: want satisfied, witness %v", res.Witness)
	}
}

func TestCheckAsyncStricterThanSync(t *testing.T) {
	// Any graph satisfying the async condition satisfies the sync one
	// (2f+1 ≥ f+1 makes ⇒ harder, so violations transfer downward).
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		f := 1
		g, err := topology.RandomDigraph(n, 0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		asyncRes, err := CheckAsync(g, f)
		if err != nil {
			t.Fatal(err)
		}
		syncRes, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		if asyncRes.Satisfied && !syncRes.Satisfied {
			t.Fatalf("async condition satisfied but sync violated on n=%d", n)
		}
	}
}

func TestResultCounters(t *testing.T) {
	g := mustComplete(t, 5)
	res, err := Check(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultSetsExamined < 6 { // C(5,0) + C(5,1) = 6
		t.Errorf("FaultSetsExamined = %d, want ≥ 6", res.FaultSetsExamined)
	}
	if res.CandidatesExamined == 0 {
		t.Error("CandidatesExamined should be positive")
	}
}
