package condition

import (
	"math/rand"
	"testing"

	"iabc/internal/topology"
)

func TestCheckParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(5)
		f := 1 + rng.Intn(2)
		g, err := topology.RandomDigraph(n, 0.4+0.4*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		par, err := CheckParallel(g, f, 4)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Satisfied != par.Satisfied {
			t.Fatalf("n=%d f=%d: verdict mismatch seq=%v par=%v", n, f, seq.Satisfied, par.Satisfied)
		}
		if !seq.Satisfied {
			// Deterministic witness: same fault set, same L and R.
			if !seq.Witness.F.Equal(par.Witness.F) ||
				!seq.Witness.L.Equal(par.Witness.L) ||
				!seq.Witness.R.Equal(par.Witness.R) {
				t.Fatalf("witness mismatch:\nseq %v\npar %v", seq.Witness, par.Witness)
			}
			if err := par.Witness.Verify(g, f, SyncThreshold(f)); err != nil {
				t.Fatalf("parallel witness invalid: %v", err)
			}
		}
	}
}

func TestCheckParallelPaperCases(t *testing.T) {
	c7, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckParallel(c7, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("chord(7,2) should be violated")
	}
	cn, err := topology.CoreNetwork(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err = CheckParallel(cn, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("core(10,3) should satisfy; witness %v", res.Witness)
	}
	if res.FaultSetsExamined == 0 || res.CandidatesExamined == 0 {
		t.Error("work counters should be positive")
	}
}

func TestCheckParallelDefaultsAndSmallInputs(t *testing.T) {
	g := mustComplete(t, 4)
	// workers <= 0 → GOMAXPROCS; n < 8 → sequential fallback. Both paths
	// must agree with Check.
	for _, workers := range []int{-1, 0, 1, 2, 16} {
		res, err := CheckParallel(g, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			t.Fatalf("workers=%d: K4 f=1 should satisfy", workers)
		}
	}
	if _, err := CheckParallel(g, -1, 2); err == nil {
		t.Error("negative f should error")
	}
}

func TestCheckParallelInfeasibleSize(t *testing.T) {
	big, err := topology.DirectedCycle(70)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckParallel(big, 0, 4); err == nil {
		t.Error("n-f > 62 should be rejected")
	}
}
