package condition

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"iabc/internal/topology"
)

func TestCheckParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(5)
		f := 1 + rng.Intn(2)
		g, err := topology.RandomDigraph(n, 0.4+0.4*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		par, err := CheckParallel(context.Background(), g, f, 4)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Satisfied != par.Satisfied {
			t.Fatalf("n=%d f=%d: verdict mismatch seq=%v par=%v", n, f, seq.Satisfied, par.Satisfied)
		}
		if !seq.Satisfied {
			// Deterministic witness: same fault set, same L and R.
			if !seq.Witness.F.Equal(par.Witness.F) ||
				!seq.Witness.L.Equal(par.Witness.L) ||
				!seq.Witness.R.Equal(par.Witness.R) {
				t.Fatalf("witness mismatch:\nseq %v\npar %v", seq.Witness, par.Witness)
			}
			if err := par.Witness.Verify(g, f, SyncThreshold(f)); err != nil {
				t.Fatalf("parallel witness invalid: %v", err)
			}
		}
	}
}

func TestCheckParallelPaperCases(t *testing.T) {
	c7, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckParallel(context.Background(), c7, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("chord(7,2) should be violated")
	}
	cn, err := topology.CoreNetwork(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err = CheckParallel(context.Background(), cn, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("core(10,3) should satisfy; witness %v", res.Witness)
	}
	if res.FaultSetsExamined == 0 || res.CandidatesExamined == 0 {
		t.Error("work counters should be positive")
	}
}

func TestCheckParallelDefaultsAndSmallInputs(t *testing.T) {
	g := mustComplete(t, 4)
	// workers <= 0 → GOMAXPROCS; n < 8 → sequential fallback. Both paths
	// must agree with Check.
	for _, workers := range []int{-1, 0, 1, 2, 16} {
		res, err := CheckParallel(context.Background(), g, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			t.Fatalf("workers=%d: K4 f=1 should satisfy", workers)
		}
	}
	if _, err := CheckParallel(context.Background(), g, -1, 2); err == nil {
		t.Error("negative f should error")
	}
}

// TestCheckScanCancellation pins the context contract at both worker
// counts: a canceled scan stops at fault-set granularity, wraps
// context.Canceled with the progress made, and leaves the work counters
// populated.
func TestCheckScanCancellation(t *testing.T) {
	g, err := topology.CoreNetwork(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run("pre-canceled", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := CheckScan(ctx, g, 2, SyncThreshold(2), ScanOptions{Workers: workers})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
			}
			if !strings.Contains(err.Error(), "canceled after") {
				t.Errorf("workers=%d: error does not report progress: %v", workers, err)
			}
			if res.Satisfied {
				t.Errorf("workers=%d: canceled scan must not report Satisfied", workers)
			}
		})
		t.Run("mid-scan", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			var fired atomic.Int64
			progress := func(p Progress) {
				if p.FaultSetsTotal == 0 {
					t.Error("fault-set total missing for n ≤ 62")
				}
				if fired.Add(1) == 3 {
					cancel()
				}
			}
			_, err := CheckScan(ctx, g, 2, SyncThreshold(2), ScanOptions{Workers: workers, OnProgress: progress})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
			}
			total := totalFaultSets(g.N(), 2)
			if n := fired.Load(); n >= total {
				t.Errorf("workers=%d: scan processed all %d fault sets despite cancellation", workers, n)
			}
		})
	}
}

// TestCheckScanProgress checks the streaming counters: one snapshot per
// processed fault set, reaching the exact Σ C(n,k) total on a satisfied
// scan.
func TestCheckScanProgress(t *testing.T) {
	g := mustComplete(t, 9)
	want := totalFaultSets(9, 2) // 1 + 9 + 36
	var calls int64
	res, err := CheckScan(context.Background(), g, 2, SyncThreshold(2), ScanOptions{Workers: 1, OnProgress: func(p Progress) {
		calls++
		if p.FaultSetsDone != calls || p.FaultSetsTotal != want {
			t.Fatalf("progress %+v at call %d (total %d)", p, calls, want)
		}
	}})
	if err != nil || !res.Satisfied {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if calls != want {
		t.Fatalf("progress calls = %d, want %d", calls, want)
	}
}

// TestMaxFScanCallbacks drives the full coordinator: per-check completions
// arrive in ascending f, and cancellation surfaces partial stats.
func TestMaxFScanCallbacks(t *testing.T) {
	g := mustComplete(t, 10)
	var checked []int
	best, stats, err := MaxFScan(context.Background(), g, MaxFOptions{
		Workers: 2,
		OnCheck: func(f int, res Result) {
			checked = append(checked, f)
			if !res.Satisfied && f <= 3 {
				t.Errorf("K10 must satisfy f=%d", f)
			}
		},
	})
	if err != nil || best != 3 {
		t.Fatalf("best=%d err=%v, want 3", best, err)
	}
	// OnCheck fires for every completed check, including the failing f that
	// ends the scan.
	if len(checked) != stats.ChecksRun {
		t.Fatalf("OnCheck calls = %d, ChecksRun = %d", len(checked), stats.ChecksRun)
	}
	for i, f := range checked {
		if f != i {
			t.Fatalf("OnCheck order = %v", checked)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	best, stats, err = MaxFScan(ctx, g, MaxFOptions{})
	if !errors.Is(err, context.Canceled) || best != -1 {
		t.Fatalf("canceled scan: best=%d err=%v", best, err)
	}
	if stats.ChecksRun == 0 {
		t.Error("canceled scan should still report the interrupted check in stats")
	}
}

func TestCheckParallelInfeasibleSize(t *testing.T) {
	big, err := topology.DirectedCycle(70)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckParallel(context.Background(), big, 0, 4); err == nil {
		t.Error("n-f > 62 should be rejected")
	}
}
