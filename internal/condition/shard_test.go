package condition

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"iabc/internal/graph"
	"iabc/internal/statestore"
	"iabc/internal/topology"
)

// composeRanges runs scanner over [0, total) in chunks of the given size and
// composes the spans the way the distributed coordinator does: full-span
// counters for clean chunks, the satisfied prefix plus the violating set's
// partial for the chunk that stops. It returns the composed Result.
func composeRanges(t *testing.T, scanner *ShardScanner, chunk int64) Result {
	t.Helper()
	ctx := context.Background()
	total := scanner.NumFaultSets()
	res := Result{Satisfied: true}
	var agg WorkCounters
	for lo := int64(0); lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		rr, err := scanner.ScanRange(ctx, lo, hi)
		if err != nil {
			t.Fatalf("ScanRange[%d,%d): %v", lo, hi, err)
		}
		agg.Add(rr.Satisfied)
		res.FaultSetsExamined += rr.Completed
		if rr.Violation >= 0 {
			if rr.Violation != lo+rr.Completed {
				t.Fatalf("violation index %d != lo+completed %d", rr.Violation, lo+rr.Completed)
			}
			agg.Add(rr.Partial)
			res.FaultSetsExamined++
			res.Satisfied = false
			res.Witness = rr.Witness
			break
		}
		if rr.Completed != hi-lo {
			t.Fatalf("clean range completed %d of %d", rr.Completed, hi-lo)
		}
	}
	res.CandidatesExamined = agg.Candidates
	res.CandidatesPruned = agg.Pruned
	res.MemoHits = agg.MemoHits
	return res
}

// resultEqual compares the fields a distributed scan must reproduce.
func resultEqual(t *testing.T, got, want Result) {
	t.Helper()
	if got.Satisfied != want.Satisfied {
		t.Fatalf("Satisfied = %v, want %v", got.Satisfied, want.Satisfied)
	}
	if got.FaultSetsExamined != want.FaultSetsExamined {
		t.Fatalf("FaultSetsExamined = %d, want %d", got.FaultSetsExamined, want.FaultSetsExamined)
	}
	if got.CandidatesExamined != want.CandidatesExamined ||
		got.CandidatesPruned != want.CandidatesPruned ||
		got.MemoHits != want.MemoHits {
		t.Fatalf("counters = (%d,%d,%d), want (%d,%d,%d)",
			got.CandidatesExamined, got.CandidatesPruned, got.MemoHits,
			want.CandidatesExamined, want.CandidatesPruned, want.MemoHits)
	}
	if (got.Witness == nil) != (want.Witness == nil) {
		t.Fatalf("witness presence = %v, want %v", got.Witness != nil, want.Witness != nil)
	}
	if got.Witness != nil && !reflect.DeepEqual(got.Witness, want.Witness) {
		t.Fatalf("witness = %v, want %v", got.Witness, want.Witness)
	}
}

// shardCase builds the named topology for the shard conformance tests.
func shardCase(t *testing.T, kind string, n, f int) *graph.Graph {
	t.Helper()
	var g *graph.Graph
	var err error
	switch kind {
	case "core":
		g, err = topology.CoreNetwork(n, f)
	case "chord":
		g, err = topology.Chord(n, f)
	default:
		t.Fatalf("unknown topology kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestShardScanComposesToSequential pins the distribution seam's soundness:
// for every chunking of the canonical enumeration, composing ScanRange spans
// reproduces the sequential CheckScan verbatim — verdict, witness (lowest
// violating index, early-exit partial counters included), and work totals.
func TestShardScanComposesToSequential(t *testing.T) {
	for _, tc := range []struct {
		kind string
		n, f int
	}{
		{"core", 13, 4},  // satisfied
		{"chord", 7, 2},  // violated (Section 6.3's example)
		{"chord", 11, 3}, // violated
	} {
		g := shardCase(t, tc.kind, tc.n, tc.f)
		threshold := SyncThreshold(tc.f)
		want, err := CheckScan(context.Background(), g, tc.f, threshold, ScanOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		scanner, err := NewShardScanner(g, tc.f, threshold)
		if err != nil {
			t.Fatal(err)
		}
		if got, wantTotal := scanner.NumFaultSets(), NumFaultSets(tc.n, tc.f); got != wantTotal {
			t.Fatalf("NumFaultSets = %d, want %d", got, wantTotal)
		}
		for _, chunk := range []int64{1, 7, 64, scanner.NumFaultSets() + 1} {
			got := composeRanges(t, scanner, chunk)
			resultEqual(t, got, want)
		}
	}
}

// TestShardScanRangeIsPure re-scans the same range twice on one scanner and
// on a fresh scanner; all three must agree — the purity fact lease
// re-execution rests on.
func TestShardScanRangeIsPure(t *testing.T) {
	g := shardCase(t, "chord", 11, 3)
	threshold := SyncThreshold(3)
	s1, err := NewShardScanner(g, 3, threshold)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewShardScanner(g, 3, threshold)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	total := s1.NumFaultSets()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		lo := rng.Int63n(total)
		hi := lo + 1 + rng.Int63n(total-lo)
		a, err := s1.ScanRange(ctx, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s1.ScanRange(ctx, lo, hi) // same scanner, again
		if err != nil {
			t.Fatal(err)
		}
		c, err := s2.ScanRange(ctx, lo, hi) // fresh scanner
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
			t.Fatalf("range [%d,%d) not pure:\n a=%+v\n b=%+v\n c=%+v", lo, hi, a, b, c)
		}
	}
}

// TestScanFrontierSpans drives the exported frontier with out-of-order
// spans over a Mem store and checks the durable frontier never jumps the
// gap, then resumes from exactly the journaled prefix.
func TestScanFrontierSpans(t *testing.T) {
	g := shardCase(t, "core", 13, 4)
	store := statestore.NewMem()
	ctx := context.Background()
	threshold := SyncThreshold(4)
	fr, cached, err := LoadScanFrontier(ctx, store, g, 4, threshold, 1)
	if err != nil || cached != nil {
		t.Fatalf("LoadScanFrontier: cached=%v err=%v", cached, err)
	}
	if start, _ := fr.ResumePoint(); start != 0 {
		t.Fatalf("fresh resume point = %d", start)
	}
	// Journal [40, 100) before [0, 40): the frontier must hold at 0.
	if err := fr.CompleteSpan(ctx, 40, 100, WorkCounters{Candidates: 60}); err != nil {
		t.Fatal(err)
	}
	if pos, _ := fr.Position(); pos != 0 {
		t.Fatalf("frontier jumped the gap: %d", pos)
	}
	if err := fr.CompleteSpan(ctx, 0, 40, WorkCounters{Candidates: 40, Pruned: 4}); err != nil {
		t.Fatal(err)
	}
	pos, agg := fr.Position()
	if pos != 100 || agg.Candidates != 100 || agg.Pruned != 4 {
		t.Fatalf("after gap fill: pos=%d agg=%+v", pos, agg)
	}
	if err := fr.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// A fresh frontier over the same store resumes at the flushed prefix.
	fr2, cached, err := LoadScanFrontier(ctx, store, g, 4, threshold, 1)
	if err != nil || cached != nil {
		t.Fatalf("reload: cached=%v err=%v", cached, err)
	}
	start, agg := fr2.ResumePoint()
	if start != 100 || agg.Candidates != 100 || agg.Pruned != 4 {
		t.Fatalf("resume point = %d, %+v", start, agg)
	}
	// Finish caches the verdict; the next load serves it.
	res := Result{Satisfied: true, FaultSetsExamined: fr2.Total(), CandidatesExamined: 1234}
	if err := fr2.Finish(ctx, res); err != nil {
		t.Fatal(err)
	}
	_, cached, err = LoadScanFrontier(ctx, store, g, 4, threshold, 1)
	if err != nil || cached == nil || !cached.CacheHit || cached.CandidatesExamined != 1234 {
		t.Fatalf("after finish: cached=%+v err=%v", cached, err)
	}
	// Memory-only frontier (nil store) aggregates without persistence.
	fr3, cached, err := LoadScanFrontier(ctx, nil, g, 4, threshold, 0)
	if err != nil || cached != nil {
		t.Fatalf("nil-store load: cached=%v err=%v", cached, err)
	}
	if err := fr3.CompleteSpan(ctx, 0, 5, WorkCounters{MemoHits: 2}); err != nil {
		t.Fatal(err)
	}
	if pos, agg := fr3.Position(); pos != 5 || agg.MemoHits != 2 {
		t.Fatalf("nil-store frontier: pos=%d agg=%+v", pos, agg)
	}
	if err := fr3.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}
