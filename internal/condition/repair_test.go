package condition

import (
	"math/rand"
	"testing"

	"iabc/internal/topology"
)

func TestRepairSuggestionNeutralizesWitness(t *testing.T) {
	g, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := Check(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Satisfied {
		t.Fatal("chord(7,2) should be violated")
	}
	edges := RepairSuggestion(g, chk.Witness, SyncThreshold(2))
	if len(edges) == 0 {
		t.Fatal("no suggestion for a genuine witness")
	}
	patched, err := topology.AddEdges(g, edges)
	if err != nil {
		t.Fatal(err)
	}
	// The specific witness must no longer verify on the patched graph.
	if err := chk.Witness.Verify(patched, 2, SyncThreshold(2)); err == nil {
		t.Fatal("witness still violates after the suggested patch")
	}
}

func TestRepairChord72(t *testing.T) {
	g, err := topology.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repair(g, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := Check(res.Repaired, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Satisfied {
		t.Fatal("repaired graph still violates")
	}
	if len(res.Added) == 0 || res.Iterations < 2 {
		t.Errorf("suspicious repair: %d edges in %d iterations", len(res.Added), res.Iterations)
	}
	// Every added edge must be new relative to the original.
	for _, e := range res.Added {
		if g.HasEdge(e[0], e[1]) {
			t.Errorf("added edge %v already existed", e)
		}
	}
	// Original edges all survive.
	g.ForEachEdge(func(from, to int) {
		if !res.Repaired.HasEdge(from, to) {
			t.Errorf("repair dropped edge (%d,%d)", from, to)
		}
	})
}

func TestRepairHypercube(t *testing.T) {
	g, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repair(g, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := Check(res.Repaired, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Satisfied {
		t.Fatal("repaired 3-cube still violates")
	}
	t.Logf("3-cube repaired for f=1 with %d added edges in %d iterations", len(res.Added), res.Iterations)
}

func TestRepairAlreadySatisfied(t *testing.T) {
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repair(g, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 || res.Iterations != 1 {
		t.Errorf("no-op repair added %d edges in %d iterations", len(res.Added), res.Iterations)
	}
}

func TestRepairErrors(t *testing.T) {
	small, err := topology.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Repair(small, 1, 10); err == nil {
		t.Error("n ≤ 3f should be rejected")
	}
	cube, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Repair(cube, 1, 1); err == nil {
		t.Error("impossible edge budget should error")
	}
}

func TestRepairRandomViolators(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	repaired := 0
	for trial := 0; trial < 30 && repaired < 8; trial++ {
		n := 5 + rng.Intn(4)
		g, err := topology.RandomDigraph(n, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		chk, err := Check(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if chk.Satisfied {
			continue
		}
		res, err := Repair(g, 1, n*n)
		if err != nil {
			t.Fatal(err)
		}
		after, err := Check(res.Repaired, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !after.Satisfied {
			t.Fatalf("repair left graph violated:\n%s", g.EdgeListString())
		}
		repaired++
	}
	if repaired < 3 {
		t.Fatalf("only %d violating graphs sampled", repaired)
	}
}
