package condition

import (
	"fmt"

	"iabc/internal/graph"
)

// Repair tooling: a Theorem 1 witness is constructive in both directions —
// it tells the adversary where to attack, and it tells the network designer
// where links are missing. RepairSuggestion converts one witness into a
// minimal edge set neutralizing that partition; Repair iterates
// check-and-patch until the graph satisfies the condition.

// RepairSuggestion returns directed edges whose addition makes the
// witness's partition satisfy C∪R ⇒ L: it picks the node of L with the
// most existing in-edges from C∪R and tops it up to threshold. (Fixing
// either side kills the witness; L is chosen arbitrarily but
// deterministically.) The suggestion is minimal for this witness — exactly
// threshold − max existing edges — but other partitions may still violate;
// use Repair for a global fix.
func RepairSuggestion(g *graph.Graph, w *Witness, threshold int) [][2]int {
	sources := w.C.Union(w.R)
	// Find the L node already closest to the threshold.
	bestNode, bestHave := -1, -1
	w.L.ForEach(func(v int) bool {
		if have := g.CountInFrom(v, sources); have > bestHave {
			bestNode, bestHave = v, have
		}
		return true
	})
	if bestNode < 0 || bestHave >= threshold {
		return nil
	}
	// Add edges from sources not already feeding bestNode.
	need := threshold - bestHave
	existing := g.InSet(bestNode)
	var out [][2]int
	sources.ForEach(func(u int) bool {
		if existing.Contains(u) {
			return true
		}
		out = append(out, [2]int{u, bestNode})
		need--
		return need > 0
	})
	return out
}

// RepairResult describes a completed Repair run.
type RepairResult struct {
	// Repaired is the augmented graph satisfying the condition.
	Repaired *graph.Graph
	// Added lists the directed edges added, in order.
	Added [][2]int
	// Iterations counts check-and-patch rounds.
	Iterations int
}

// Repair adds edges to g until it satisfies Theorem 1 for f, patching one
// witness per iteration with RepairSuggestion. maxEdges caps the additions
// (a safety valve — the complete graph always satisfies n > 3f, so
// termination is guaranteed well below n² new edges, but runaway budgets
// should be explicit). Greedy patching is not globally minimal; it is a
// practical designer's tool, not an optimizer.
func Repair(g *graph.Graph, f, maxEdges int) (*RepairResult, error) {
	if 3*f >= g.N() {
		return nil, fmt.Errorf("condition: no graph on %d nodes can tolerate f = %d (Corollary 2)", g.N(), f)
	}
	res := &RepairResult{Repaired: g}
	threshold := SyncThreshold(f)
	for {
		chk, err := Check(res.Repaired, f)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		if chk.Satisfied {
			return res, nil
		}
		suggested := RepairSuggestion(res.Repaired, chk.Witness, threshold)
		if len(suggested) == 0 {
			return nil, fmt.Errorf("condition: witness %v yielded no repair edges", chk.Witness)
		}
		if len(res.Added)+len(suggested) > maxEdges {
			return nil, fmt.Errorf("condition: repair needs more than %d edges (added %d, next patch %d)",
				maxEdges, len(res.Added), len(suggested))
		}
		b := graph.NewBuilder(res.Repaired.N())
		res.Repaired.ForEachEdge(func(from, to int) { b.AddEdge(from, to) })
		for _, e := range suggested {
			b.AddEdge(e[0], e[1])
		}
		next, err := b.Build()
		if err != nil {
			return nil, err
		}
		res.Repaired = next
		res.Added = append(res.Added, suggested...)
	}
}
