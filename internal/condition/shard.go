package condition

// This file exports the checker's two distribution seams. A scan is
// embarrassingly parallel across fault sets, and each fault set's work —
// verdict contribution and counter delta alike — is a pure function of
// (graph, ground, threshold): that is the same determinism argument the
// checkpoint/resume layer rests on (see state.go). The distributed runner
// in internal/distrib builds on exactly these two pieces:
//
//   - ShardScanner executes an arbitrary index range of the canonical
//     fault-set enumeration on a worker, reproducing the sequential scan's
//     early-exit semantics within the range.
//   - ScanFrontier is the coordinator's durable contiguous frontier — the
//     same reorder-buffered checkpointer CheckScan uses internally,
//     generalized from single indices to lease-sized spans.
//
// Because both sides are pure in the scan identity, a run sharded across
// machines — including one where leases expire and are re-executed —
// finishes with verdict, witness, and counters identical to the
// single-process scan.

import (
	"context"
	"fmt"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/statestore"
)

// WorkCounters is the exported form of the per-scan work account: candidate
// L sets examined (tested + pruned), the pruned split, and memo hits. It is
// the unit that flows from workers to the coordinator and into checkpoints.
type WorkCounters struct {
	Candidates int64
	Pruned     int64
	MemoHits   int64
}

// Add accumulates other into c.
func (c *WorkCounters) Add(other WorkCounters) {
	c.Candidates += other.Candidates
	c.Pruned += other.Pruned
	c.MemoHits += other.MemoHits
}

func (c WorkCounters) internal() checkCounters {
	return checkCounters{candidates: c.Candidates, pruned: c.Pruned, memoHits: c.MemoHits}
}

func exportCounters(c checkCounters) WorkCounters {
	return WorkCounters{Candidates: c.candidates, Pruned: c.pruned, MemoHits: c.memoHits}
}

// NumFaultSets returns the scan extent Σ_{k≤f} C(n,k) — the number of fault
// sets the canonical enumeration visits — or 0 when n exceeds the int64
// binomial table (n > 62), in which case the scan cannot be partitioned by
// index and must run locally.
func NumFaultSets(n, f int) int64 { return totalFaultSets(n, f) }

// ScanFrontier is the coordinator-facing handle on a scan's durable
// contiguous frontier: completed spans are journaled out of order, the
// frontier advances only over gap-free prefixes, and the aggregate is
// checkpointed through a statestore.Backend on the usual cadence. With a
// nil store the frontier is memory-only — same aggregation, no durability.
type ScanFrontier struct {
	st    *scanState
	total int64
}

// LoadScanFrontier consults the store (which may be nil) for the scan
// identity (g, f, threshold) and returns, in order of preference: a cached
// verdict (cached != nil — the scan need not run), or a frontier seeded
// from the newest checkpoint (possibly empty). The validation mirrors
// CheckScan's: f ≥ 0, threshold ≥ 1, n−f ≤ 62.
func LoadScanFrontier(ctx context.Context, store statestore.Backend, g *graph.Graph, f, threshold, checkpointEvery int) (fr *ScanFrontier, cached *Result, err error) {
	if f < 0 {
		return nil, nil, fmt.Errorf("condition: f must be >= 0, got %d", f)
	}
	if threshold < 1 {
		return nil, nil, fmt.Errorf("condition: threshold must be >= 1, got %d", threshold)
	}
	if g.N()-f > 62 {
		return nil, nil, fmt.Errorf("condition: exact check infeasible for n-f = %d > 62 nodes", g.N()-f)
	}
	st, cached, err := loadScanState(ctx, store, g, f, threshold, checkpointEvery)
	if err != nil || cached != nil {
		return nil, cached, err
	}
	return &ScanFrontier{st: st, total: totalFaultSets(g.N(), f)}, nil, nil
}

// Total returns the scan extent (see NumFaultSets).
func (fr *ScanFrontier) Total() int64 { return fr.total }

// ResumePoint returns the first fault-set index still to scan and the
// counter aggregate the persisted prefix already accounts for.
func (fr *ScanFrontier) ResumePoint() (int64, WorkCounters) {
	idx, cc := fr.st.resumePoint()
	return idx, exportCounters(cc)
}

// CompleteSpan journals the fault sets [lo, hi) as satisfied with their
// aggregate counter delta. Spans must be disjoint; out-of-order spans wait
// in the reorder buffer, so the durable frontier never jumps a gap.
func (fr *ScanFrontier) CompleteSpan(ctx context.Context, lo, hi int64, delta WorkCounters) error {
	return fr.st.completeSpan(ctx, lo, hi, delta.internal())
}

// Position returns the current contiguous frontier and the counter
// aggregate over [0, frontier) — resumed prefix included.
func (fr *ScanFrontier) Position() (int64, WorkCounters) {
	fr.st.mu.Lock()
	defer fr.st.mu.Unlock()
	return fr.st.frontier, exportCounters(fr.st.agg)
}

// Flush forces a checkpoint write of the current frontier — the last act of
// an interrupted coordinator, so a resume loses at most the reorder tail.
func (fr *ScanFrontier) Flush(ctx context.Context) error { return fr.st.flush(ctx) }

// Finish settles the scan: the verdict is cached for later calls with the
// same identity and the in-flight checkpoint is removed — byte-identical to
// what a single-process CheckScan would persist for the same Result.
func (fr *ScanFrontier) Finish(ctx context.Context, res Result) error {
	return fr.st.finish(ctx, res)
}

// RangeResult reports a ShardScanner.ScanRange outcome.
type RangeResult struct {
	// Completed counts the satisfied fault sets scanned: indexes
	// [lo, lo+Completed) passed. Equal to hi−lo iff no violation.
	Completed int64
	// Violation is the absolute index of the first violating fault set in
	// the range, or -1. The scan stops there, exactly like the sequential
	// scan does.
	Violation int64
	// Witness is the violating partition when Violation >= 0.
	Witness *Witness
	// Satisfied aggregates the counter deltas of the Completed prefix.
	Satisfied WorkCounters
	// Partial is the violating fault set's own early-exit counter delta —
	// the work findDisjointInsulatedPair did before stopping at the first
	// violating candidate. Zero when the range is clean. The single-process
	// scan includes exactly this partial in its totals, so a distributed
	// aggregate that adds Partial once (for the lowest violation) matches.
	Partial WorkCounters
}

// ShardScanner executes index ranges of the canonical fault-set enumeration
// for one scan identity (g, f, threshold) — a worker's compute kernel. The
// fault sets are materialized once in canonical (size-ascending, then
// combination-lexicographic) order, so any [lo, hi) range is addressable in
// O(1); the insulation scratch is reused across calls, which is sound
// because all cross-fault-set state resets per ground (see state.go).
//
// A ShardScanner is not safe for concurrent use; give each goroutine its
// own.
type ShardScanner struct {
	g         *graph.Graph
	threshold int
	universe  nodeset.Set
	faultSets []nodeset.Set
	scratch   *insulationScratch
}

// NewShardScanner materializes the enumeration for (g, f, threshold). The
// feasibility validation mirrors CheckScan's.
func NewShardScanner(g *graph.Graph, f, threshold int) (*ShardScanner, error) {
	n := g.N()
	if f < 0 {
		return nil, fmt.Errorf("condition: f must be >= 0, got %d", f)
	}
	if threshold < 1 {
		return nil, fmt.Errorf("condition: threshold must be >= 1, got %d", threshold)
	}
	if n-f > 62 {
		return nil, fmt.Errorf("condition: exact check infeasible for n-f = %d > 62 nodes", n-f)
	}
	universe := nodeset.Universe(n)
	var faultSets []nodeset.Set
	for fSize := 0; fSize <= f && fSize <= n; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(s nodeset.Set) bool {
			faultSets = append(faultSets, s.Clone())
			return true
		})
	}
	return &ShardScanner{
		g: g, threshold: threshold, universe: universe,
		faultSets: faultSets, scratch: newInsulationScratch(g),
	}, nil
}

// NumFaultSets returns the enumeration's extent.
func (s *ShardScanner) NumFaultSets() int64 { return int64(len(s.faultSets)) }

// ScanRange scans fault sets [lo, hi), stopping at the first violation —
// the sequential scan restricted to the range. Cancellation is checked
// between fault sets; on cancellation the partial result is discarded and
// only the error returns (the caller's lease is simply re-run elsewhere).
func (s *ShardScanner) ScanRange(ctx context.Context, lo, hi int64) (RangeResult, error) {
	res := RangeResult{Violation: -1}
	if lo < 0 || hi < lo || hi > int64(len(s.faultSets)) {
		return res, fmt.Errorf("condition: scan range [%d, %d) outside [0, %d)", lo, hi, len(s.faultSets))
	}
	for i := lo; i < hi; i++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("condition: shard scan canceled at fault set %d: %w", i, context.Cause(ctx))
		}
		fSet := s.faultSets[i]
		ground := s.universe.Difference(fSet)
		var cc checkCounters
		w := findDisjointInsulatedPair(s.scratch, ground, s.threshold, &cc)
		if w != nil {
			w.F = fSet.Clone()
			w.C = ground.Difference(w.L).Difference(w.R)
			res.Violation = i
			res.Witness = w
			res.Partial = exportCounters(cc)
			return res, nil
		}
		res.Completed++
		res.Satisfied.Add(exportCounters(cc))
	}
	return res, nil
}
