package condition

import (
	"math/rand"
	"testing"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

func TestSourceComponents(t *testing.T) {
	// {0,1} -> {2,3}: one source component {0,1}.
	g := graph.NewBuilder(4).
		AddEdge(0, 1).AddEdge(1, 0).
		AddEdge(2, 3).AddEdge(3, 2).
		AddEdge(1, 2).
		MustBuild()
	src := SourceComponents(g)
	if len(src) != 1 || len(src[0]) != 2 || src[0][0] != 0 {
		t.Fatalf("sources = %v, want [[0 1]]", src)
	}
	// Remove the bridge: two sources.
	g2 := graph.NewBuilder(4).
		AddEdge(0, 1).AddEdge(1, 0).
		AddEdge(2, 3).AddEdge(3, 2).
		MustBuild()
	if got := SourceComponents(g2); len(got) != 2 {
		t.Fatalf("sources = %v, want 2 components", got)
	}
	// DAG: the unique root is the source.
	dag := graph.NewBuilder(3).AddEdge(0, 1).AddEdge(0, 2).MustBuild()
	if got := SourceComponents(dag); len(got) != 1 || got[0][0] != 0 {
		t.Fatalf("sources = %v, want [[0]]", got)
	}
}

func TestForEachReducedGraphCounts(t *testing.T) {
	// Directed cycle on 3 nodes, F = ∅, maxDrop 1: each node has in-degree
	// 1, so 2 choices each → 8 reduced graphs.
	g, err := topology.DirectedCycle(3)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = ForEachReducedGraph(g, nodeset.New(3), 1, func(rg *graph.Graph, origID []int) bool {
		count++
		if rg.N() != 3 || len(origID) != 3 {
			t.Fatalf("unexpected reduced shape n=%d", rg.N())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("enumerated %d reduced graphs, want 8", count)
	}
}

func TestForEachReducedGraphEarlyStop(t *testing.T) {
	g, err := topology.DirectedCycle(3)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = ForEachReducedGraph(g, nodeset.New(3), 1, func(*graph.Graph, []int) bool {
		count++
		return count < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("early stop after %d", count)
	}
}

func TestForEachReducedGraphRemovesFaultSet(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	err = ForEachReducedGraph(g, nodeset.FromMembers(4, 3), 0, func(rg *graph.Graph, origID []int) bool {
		seen = true
		if rg.N() != 3 {
			t.Fatalf("n = %d, want 3", rg.N())
		}
		for _, oid := range origID {
			if oid == 3 {
				t.Fatal("fault node survived reduction")
			}
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("no reduced graph produced")
	}
}

// TestReducedGraphEquivalence is the theorem-level cross-validation: the
// insulated-set checker and the reduced-graph characterization must agree
// on every small random graph. They share no code beyond the graph type, so
// agreement is strong evidence both are right.
func TestReducedGraphEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4) // 2..5
		f := rng.Intn(2)     // 0..1
		g, err := topology.RandomDigraph(n, 0.3+0.5*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		byWitness, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		byReduced, err := CheckViaReducedGraphs(g, f)
		if err != nil {
			t.Fatal(err)
		}
		if byWitness.Satisfied != byReduced {
			t.Fatalf("n=%d f=%d: insulated-set says %v, reduced-graph says %v\n%s",
				n, f, byWitness.Satisfied, byReduced, g.EdgeListString())
		}
	}
}

func TestReducedGraphEquivalencePaperCases(t *testing.T) {
	k4, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CheckViaReducedGraphs(k4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("K4 f=1 should pass the reduced-graph check")
	}
	cube, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = CheckViaReducedGraphs(cube, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("3-cube f=1 should fail the reduced-graph check")
	}
}

func TestCheckViaReducedGraphsLimits(t *testing.T) {
	big, err := topology.Complete(11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckViaReducedGraphs(big, 1); err == nil {
		t.Error("n > 10 should be rejected")
	}
	small, err := topology.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckViaReducedGraphs(small, -1); err == nil {
		t.Error("negative f should be rejected")
	}
}

func TestSampleReducedGraphs(t *testing.T) {
	// On a satisfying graph every sample has a unique source.
	cn, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	unique, total, err := SampleReducedGraphs(cn, 2, 200, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if total != 200 || unique != total {
		t.Errorf("core(7,2): %d/%d unique-source samples, want all", unique, total)
	}
	// Two triangles joined by one bridge: disconnecting needs only the two
	// bridge endpoints to each drop one specific in-edge, so sampling finds
	// multi-source reductions quickly. (The hypercube's violation, by
	// contrast, needs 2^{d-1}·2 correlated deletions — random sampling is a
	// screen, not a decision procedure; see the doc comment.)
	barbell, err := topology.Barbell(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	unique, total, err = SampleReducedGraphs(barbell, 1, 500, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if unique == total {
		t.Error("barbell: sampling found no multi-source reduced graph in 500 draws")
	}
	if _, _, err := SampleReducedGraphs(barbell, 1, 10, nil); err == nil {
		t.Error("nil rng should error")
	}
}
