package condition

import (
	"context"
	"fmt"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/statestore"
)

// Witness is a partition F, L, C, R of V violating Theorem 1: |F| ≤ f,
// L and R non-empty, C∪R ⇏ L and L∪C ⇏ R. It certifies that no correct
// iterative approximate Byzantine consensus algorithm exists for (G, f)
// (the adversary of the Theorem 1 proof — adversary.PartitionAttack —
// freezes L and R at distinct values forever).
type Witness struct {
	F, L, C, R nodeset.Set
}

// String renders the witness partition.
func (w *Witness) String() string {
	return fmt.Sprintf("F=%v L=%v C=%v R=%v", w.F, w.L, w.C, w.R)
}

// Verify checks the witness against the literal statement of Theorem 1 and
// Definition 1 — independently of the checker's internal reformulation.
// It returns an error describing the first defect found, or nil if the
// witness genuinely violates the condition for (g, f) under threshold.
func (w *Witness) Verify(g *graph.Graph, f, threshold int) error {
	n := g.N()
	universe := nodeset.Universe(n)
	union := w.F.Union(w.L).Union(w.C).Union(w.R)
	if !union.Equal(universe) {
		return fmt.Errorf("condition: witness sets do not cover V: %v", union)
	}
	total := w.F.Count() + w.L.Count() + w.C.Count() + w.R.Count()
	if total != n {
		return fmt.Errorf("condition: witness sets overlap (%d memberships over %d nodes)", total, n)
	}
	if w.F.Count() > f {
		return fmt.Errorf("condition: |F| = %d exceeds f = %d", w.F.Count(), f)
	}
	if w.L.Empty() || w.R.Empty() {
		return fmt.Errorf("condition: L and R must be non-empty (|L|=%d, |R|=%d)", w.L.Count(), w.R.Count())
	}
	if Reaches(g, w.C.Union(w.R), w.L, threshold) {
		return fmt.Errorf("condition: C∪R ⇒ L holds, not a violation")
	}
	if Reaches(g, w.L.Union(w.C), w.R, threshold) {
		return fmt.Errorf("condition: L∪C ⇒ R holds, not a violation")
	}
	return nil
}

// Result reports the outcome of an exact Theorem 1 check.
type Result struct {
	// Satisfied is true iff every partition passes the condition — i.e.
	// iterative approximate Byzantine consensus tolerating f faults is
	// possible on this graph (Theorems 1–3).
	Satisfied bool
	// Witness is a violating partition when Satisfied is false, nil
	// otherwise.
	Witness *Witness
	// FaultSetsExamined counts the fault sets F enumerated.
	FaultSetsExamined int64
	// CandidatesExamined counts candidate L sets accounted for by the
	// enumeration: those explicitly tested for insulation plus those the
	// degree lower bound pruned without a visit. On a satisfied graph the
	// total equals the unpruned checker's count exactly (Σ_F Σ_k C(m,k)),
	// so work numbers stay comparable across checker versions; the split
	// is CandidatesPruned.
	CandidatesExamined int64
	// CandidatesPruned counts candidate L sets skipped wholesale by the
	// degree lower bound (see the pruning invariant in the package doc of
	// iabc's doc.go): a node with base[v] ≥ threshold + |L| − 1 in-neighbors
	// from ground cannot belong to any insulated set of size |L|, so every
	// candidate containing it is skipped unvisited. Always ≤
	// CandidatesExamined.
	CandidatesPruned int64
	// MemoHits counts maximal-insulated-subset computations skipped because
	// a previously peeled subset of the candidate already proved the
	// complement's maximal insulated subset empty (see
	// insulationScratch.dead). Always ≤ CandidatesExamined.
	MemoHits int64
	// FaultSetsResumed counts fault sets skipped because a persisted
	// checkpoint (ScanOptions.Store) already covered them. Their counter
	// contributions are restored from the checkpoint, so every total above
	// equals an uninterrupted run's; this field only reports how much of
	// the scan was inherited.
	FaultSetsResumed int64
	// CacheHit reports that the whole Result — verdict, witness, and
	// counters — was served from the verdict cache without enumeration.
	CacheHit bool
}

// checkCounters accumulates per-fault-set work; one instance per goroutine.
type checkCounters struct {
	candidates int64
	pruned     int64
	memoHits   int64
}

// binomTable holds C(n, k) for n ≤ 62 — the checker's feasibility cap on
// ground sizes — built by Pascal's rule so no intermediate overflows int64
// (the largest entry, C(62,31) ≈ 4.2e17, fits comfortably).
var binomTable = func() [63][63]int64 {
	var t [63][63]int64
	for n := 0; n <= 62; n++ {
		t[n][0] = 1
		for k := 1; k <= n; k++ {
			t[n][k] = t[n-1][k-1] + t[n-1][k]
		}
	}
	return t
}()

// binom returns C(n, k), or 0 when the pair is out of the table's range.
// Callers that difference two binom values must keep both arguments inside
// the table (the pruning account guards total ≤ 62), or the zero for an
// oversized n would turn the difference negative.
func binom(n, k int) int64 {
	if k < 0 || k > n || n > 62 {
		return 0
	}
	return binomTable[n][k]
}

// Check runs the exact Theorem 1 check for the synchronous model
// (threshold f+1). See CheckThreshold for the algorithm.
func Check(g *graph.Graph, f int) (Result, error) {
	return CheckThreshold(g, f, SyncThreshold(f))
}

// CheckAsync runs the exact check for the asynchronous condition of
// Section 7 (threshold 2f+1).
func CheckAsync(g *graph.Graph, f int) (Result, error) {
	return CheckThreshold(g, f, AsyncThreshold(f))
}

// CheckThreshold decides, exactly, whether every partition F, L, C, R of V
// with |F| ≤ f and L, R ≠ ∅ satisfies C∪R ⇒ L or L∪C ⇒ R under the given
// in-link threshold.
//
// # Insulated-set reformulation
//
// Fix F and let W = V−F. Call X ⊆ W insulated (w.r.t. W, threshold) if
// every v ∈ X has at most threshold−1 in-neighbors in W−X. Because
// C∪R = W−L and L∪C = W−R, the condition fails for this F iff there exist
// two disjoint non-empty insulated sets L, R ⊆ W. Insulated sets are closed
// under union, so the maximal insulated subset of any ground set is unique
// and computable by iterative deletion in O(n²) bitset steps. The checker
// therefore enumerates candidate L (2^|W| subsets, ascending size, early
// exit) and, for each insulated L, computes the maximal insulated subset of
// W−L; non-empty means a violation with R = that subset.
//
// This replaces the naive 3^n enumeration over (L, C, R) triples. The
// candidate enumeration is further cut down — without changing Satisfied or
// the returned witness — by degree-lower-bound pruning and an
// empty-complement memo (see findDisjointInsulatedPair); Result reports the
// savings as CandidatesPruned and MemoHits. The returned witness is
// re-verifiable via (*Witness).Verify.
//
// CheckThreshold is the sequential, uncancellable form; CheckScan is the
// full coordinator with context, workers, and progress streaming.
func CheckThreshold(g *graph.Graph, f, threshold int) (Result, error) {
	return CheckScan(context.Background(), g, f, threshold, ScanOptions{Workers: 1})
}

// isInsulated reports whether every node of x has at most threshold-1
// in-neighbors in ground−x.
//
// Retained as the reference oracle for insulationScratch.insulated, which
// the checker's hot path uses instead (incremental counters maintained by
// the subset enumeration, no per-candidate set algebra); the equivalence
// test in insulation_test.go cross-checks the two.
func isInsulated(g *graph.Graph, ground, x nodeset.Set, threshold int) bool {
	outside := ground.Difference(x)
	ok := true
	x.ForEach(func(v int) bool {
		if g.CountInFrom(v, outside) >= threshold {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// maximalInsulatedSubset returns the unique maximal subset S of sub that is
// insulated with respect to ground (every v ∈ S has ≤ threshold−1
// in-neighbors in ground−S). Iterative deletion: remove any node with too
// many in-neighbors outside the shrinking S; by union-closure of insulated
// sets, every insulated subset of sub survives, so the fixpoint is maximal.
//
// Retained as the reference oracle for insulationScratch.maximalInsulated
// (worklist peeling over cached counts), which the checker uses instead.
func maximalInsulatedSubset(g *graph.Graph, ground, sub nodeset.Set, threshold int) nodeset.Set {
	s := sub.Clone()
	outside := ground.Difference(s)
	for {
		var removed []int
		s.ForEach(func(v int) bool {
			if g.CountInFrom(v, outside) >= threshold {
				removed = append(removed, v)
			}
			return true
		})
		if len(removed) == 0 {
			return s
		}
		for _, v := range removed {
			s.Remove(v)
			outside.Add(v)
		}
	}
}

// findDisjointInsulatedPair searches for two disjoint non-empty insulated
// subsets of ground. It enumerates candidate L in ascending size (violations
// with small L — e.g. single under-connected nodes — are found immediately)
// and pairs each insulated L with the maximal insulated subset of the
// complement. Returns a witness with L and R filled in, or nil.
//
// The insulation tests run on s's cached in-degree-from-ground counts —
// the optimization that turned the exact checker's inner loop
// allocation-free. Two further cuts keep the search exact while skipping
// most of it:
//
//   - Degree pruning. A node v in an insulated set X has at most |X|−1
//     in-neighbors inside X (no self-loops), so base[v] − (|X|−1) ≤
//     threshold−1 must hold — any v with base[v] ≥ threshold + |X| − 1 is
//     inadmissible at size |X|, and every candidate containing it is
//     skipped unvisited via nodeset.SubsetsAscendingSizePruned. Insulated
//     sets survive the filter by construction, so the first violating
//     candidate found — and hence the witness — is unchanged.
//   - Empty-complement memo. For each insulated L whose complement peeled
//     to ∅, the scratch records L (s.recordDead); a later insulated L' ⊇ L
//     has ground−L' ⊆ ground−L, and the maximal insulated subset is
//     monotone in its sub argument, so its peel is provably ∅ and skipped
//     (s.knownDead). Only peels are skipped, never candidate tests, so
//     counter accounting and the returned witness are unaffected.
func findDisjointInsulatedPair(s *insulationScratch, ground nodeset.Set, threshold int, c *checkCounters) *Witness {
	m := ground.Count()
	if m < 2 {
		return nil
	}
	s.setGround(ground)
	var found *Witness
	// L needs at most floor(m/2) nodes: if a disjoint pair (L, R) exists,
	// the smaller side has ≤ m/2 nodes, and the pair is symmetric in L/R.
	nodeset.SubsetsAscendingSizePruned(ground, 1, m/2,
		func(v, size int) bool { return s.base[v] < threshold+size-1 },
		func(size, kept, total int) {
			if total > 62 {
				// Grounds beyond the binom table (possible while n−f ≤ 62
				// when fSize < f) have no exact int64 account — C(64,32)
				// alone overflows — and are never enumerable to completion
				// anyway; leave them out of the account rather than report
				// a negative or saturated number.
				return
			}
			skipped := binom(total, size) - binom(kept, size)
			c.candidates += skipped
			c.pruned += skipped
		},
		func(l nodeset.Set) bool {
			c.candidates++
			if !s.insulated(l, threshold) {
				return true
			}
			if s.knownDead(l) {
				c.memoHits++
				return true
			}
			rest := ground.Difference(l)
			r := s.maximalInsulated(ground, rest, threshold)
			if !r.Empty() {
				found = &Witness{L: l.Clone(), R: r}
				return false
			}
			s.recordDead(l)
			return true
		})
	return found
}

// MaxF returns the largest f ≥ 0 for which the graph satisfies Theorem 1
// under the synchronous threshold, or -1 if even f = 0 fails (the graph
// cannot reach consensus iteratively at all — it has multiple source
// components). The condition is monotone: satisfying f implies satisfying
// every f' < f, so a linear scan with early exit is exact.
func MaxF(g *graph.Graph) (int, error) {
	best, _, err := MaxFWithStats(g)
	return best, err
}

// MaxFStats aggregates the checker work a MaxF scan performed across its
// Check calls — the numbers `iabc maxf` reports.
type MaxFStats struct {
	// ChecksRun counts the checks settled by the scan, one per f tried —
	// including checks replayed from a persisted scan record or served by
	// the verdict cache, so the total matches an uninterrupted scan.
	ChecksRun int
	// FaultSetsExamined, CandidatesExamined, CandidatesPruned and MemoHits
	// sum the corresponding Result counters over all checks.
	FaultSetsExamined  int64
	CandidatesExamined int64
	CandidatesPruned   int64
	MemoHits           int64
	// ChecksResumed counts checks settled from the persisted scan record of
	// an interrupted MaxFScan (skipped without re-running).
	ChecksResumed int
	// CacheHits counts checks served whole from the verdict cache.
	CacheHits int
	// FaultSetsResumed sums Result.FaultSetsResumed over the live checks —
	// fault sets inherited from mid-check checkpoints.
	FaultSetsResumed int64
}

// MaxFWithStats is MaxF plus the aggregated work counters of the scan.
func MaxFWithStats(g *graph.Graph) (int, MaxFStats, error) {
	return MaxFScan(context.Background(), g, MaxFOptions{})
}

// MaxFOptions configures MaxFScan.
type MaxFOptions struct {
	// Workers is the per-check worker count (see CheckScan); 0 — the zero
	// value — runs the sequential scan, < 0 selects GOMAXPROCS.
	Workers int
	// OnCheck, when non-nil, is invoked after each completed Check with the
	// f just decided and its Result — the f-sweep's progress stream. It is
	// not re-fired for checks replayed from a persisted scan record.
	OnCheck func(f int, res Result)
	// OnProgress, when non-nil, streams the inner fault-set progress of the
	// check currently running at f (see ProgressFunc for the concurrency
	// contract).
	OnProgress func(f int, p Progress)
	// Store, when non-nil, makes the scan durable: each settled f is
	// persisted (with its Result counters) so an interrupted scan resumes
	// past settled checks, each in-flight check checkpoints at fault-set
	// granularity, and settled verdicts are cached by canonical graph
	// encoding — a later scan of the same graph reports cache hits instead
	// of re-enumerating. Stats totals are identical either way.
	Store statestore.Backend
	// CheckpointEvery is the per-check checkpoint cadence (see
	// ScanOptions.CheckpointEvery).
	CheckpointEvery int
	// CheckRunner, when non-nil, replaces CheckScan as the executor of each
	// per-f check — the seam the distributed coordinator plugs into so one
	// MaxFScan reuses its replay, caching, and stats aggregation unchanged
	// while the fault-set enumeration runs on remote workers. The runner
	// must honor the CheckScan contract: same Result for the same
	// (g, f, threshold), opts.Store consulted for resume/caching.
	CheckRunner func(ctx context.Context, g *graph.Graph, f, threshold int, opts ScanOptions) (Result, error)
}

// MaxFScan is the full MaxF coordinator: the monotone f-sweep with context
// cancellation (checked at fault-set granularity inside each CheckScan),
// a per-check worker count, progress callbacks, and — with MaxFOptions.
// Store — crash-safe resume. On error — including cancellation — it
// returns the best f decided so far and the stats accumulated up to the
// point of interruption.
func MaxFScan(ctx context.Context, g *graph.Graph, opts MaxFOptions) (int, MaxFStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	best := -1
	var stats MaxFStats
	var rec maxfRecord
	startF := 0
	if opts.Store != nil {
		var err error
		rec, err = loadMaxFRecord(ctx, opts.Store, g.Encode())
		if err != nil {
			return best, stats, err
		}
		// Replay the settled prefix: each recorded check contributes its
		// original counters, so totals equal an uninterrupted scan's.
		for _, c := range rec.Checks {
			stats.ChecksRun++
			stats.ChecksResumed++
			stats.FaultSetsExamined += c.FaultSets
			stats.CandidatesExamined += c.Candidates
			stats.CandidatesPruned += c.Pruned
			stats.MemoHits += c.MemoHits
			if !c.Satisfied {
				// The scan had already settled negatively; only the record
				// cleanup was lost. Finish it now.
				if err := opts.Store.Delete(ctx, maxfKey(rec.Graph)); err != nil {
					return best, stats, fmt.Errorf("condition: clearing maxf record: %w", err)
				}
				return best, stats, nil
			}
			best = c.F
		}
		startF = len(rec.Checks)
	}
	runCheck := opts.CheckRunner
	if runCheck == nil {
		runCheck = CheckScan
	}
	for f := startF; 3*f < g.N(); f++ {
		var progress ProgressFunc
		if opts.OnProgress != nil {
			f := f
			progress = func(p Progress) { opts.OnProgress(f, p) }
		}
		res, err := runCheck(ctx, g, f, SyncThreshold(f), ScanOptions{
			Workers:         workers,
			OnProgress:      progress,
			Store:           opts.Store,
			CheckpointEvery: opts.CheckpointEvery,
		})
		stats.ChecksRun++
		stats.FaultSetsExamined += res.FaultSetsExamined
		stats.CandidatesExamined += res.CandidatesExamined
		stats.CandidatesPruned += res.CandidatesPruned
		stats.MemoHits += res.MemoHits
		stats.FaultSetsResumed += res.FaultSetsResumed
		if res.CacheHit {
			stats.CacheHits++
		}
		if err != nil {
			return best, stats, fmt.Errorf("condition: maxf scan at f=%d: %w", f, err)
		}
		if opts.Store != nil {
			rec.Checks = append(rec.Checks, maxfCheck{
				F: f, Satisfied: res.Satisfied,
				FaultSets:  res.FaultSetsExamined,
				Candidates: res.CandidatesExamined,
				Pruned:     res.CandidatesPruned,
				MemoHits:   res.MemoHits,
			})
			if err := rec.save(ctx, opts.Store); err != nil {
				return best, stats, err
			}
		}
		if opts.OnCheck != nil {
			opts.OnCheck(f, res)
		}
		if !res.Satisfied {
			break
		}
		best = f
	}
	if opts.Store != nil {
		// The scan settled: drop the in-flight record. The per-f verdicts
		// stay cached, so a fresh scan of this graph reports CacheHits.
		if err := opts.Store.Delete(ctx, maxfKey(rec.Graph)); err != nil {
			return best, stats, fmt.Errorf("condition: clearing maxf record: %w", err)
		}
	}
	return best, stats, nil
}

// Violation is a human-readable reason a graph fails a polynomial-time
// necessary condition.
type Violation struct {
	// Rule identifies the failed check: "order" (n ≥ 2), "corollary2"
	// (n > 3f; n > 5f async), or "corollary3" (in-degree ≥ 2f+1; ≥ 3f+1
	// async).
	Rule string
	// Detail describes the failure.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// QuickScreen evaluates the polynomial-time necessary conditions implied by
// Theorem 1 — Corollary 2 (n > 3f) and Corollary 3 (every in-degree
// ≥ 2f+1 when f > 0) — without running the exponential check. An empty
// result does NOT imply the condition holds (the f=2, n=7 chord network
// passes both corollaries yet fails Theorem 1, Section 6.3); a non-empty
// result proves it fails.
func QuickScreen(g *graph.Graph, f int) []Violation {
	return quickScreen(g, f, 3*f, 2*f+1)
}

// QuickScreenAsync is QuickScreen for the Section 7 asynchronous model:
// n > 5f and in-degree ≥ 3f+1 when f > 0.
func QuickScreenAsync(g *graph.Graph, f int) []Violation {
	return quickScreen(g, f, 5*f, 3*f+1)
}

func quickScreen(g *graph.Graph, f, minOrderExclusive, minInDegree int) []Violation {
	var out []Violation
	if g.N() < 2 {
		out = append(out, Violation{
			Rule:   "order",
			Detail: fmt.Sprintf("need n >= 2 nodes, have %d", g.N()),
		})
	}
	if f > 0 && g.N() <= minOrderExclusive {
		out = append(out, Violation{
			Rule:   "corollary2",
			Detail: fmt.Sprintf("need n > %d for f = %d, have n = %d", minOrderExclusive, f, g.N()),
		})
	}
	if f > 0 {
		for i := 0; i < g.N(); i++ {
			if d := g.InDegree(i); d < minInDegree {
				out = append(out, Violation{
					Rule:   "corollary3",
					Detail: fmt.Sprintf("node %d has in-degree %d < %d", i, d, minInDegree),
				})
			}
		}
	}
	return out
}
