package condition

// This file is the checker's durability layer: periodic checkpoints of an
// in-flight fault-set scan, and a cache of settled verdicts, both persisted
// through a pluggable statestore.Backend so multi-hour exact scans survive
// process death and repeated topologies hit instead of recompute.
//
// Soundness rests on two determinism facts:
//
//   - The verdict is a pure function of (graph, f, threshold) — Theorem 1
//     quantifies over partitions of the graph alone — so a cached Result
//     keyed by the canonical graph.Encode plus (f, threshold) can be
//     replayed verbatim for any later call with the same key.
//   - Each fault set's work-counter contribution (candidates, pruned, memo
//     hits) is a pure function of (graph, ground, threshold): the degree
//     pruning depends only on base in-degrees, and the empty-complement
//     memo is cleared per ground (insulationScratch.setGround), so no state
//     leaks across fault sets. A resumed scan that restores the persisted
//     prefix aggregate and skips those fault sets therefore finishes with
//     counter totals identical to an uninterrupted run.
//
// Checkpoints record only a *contiguous* completed prefix of the canonical
// fault-set enumeration order. The parallel scan completes fault sets out
// of order, so the checkpointer keeps a reorder buffer of per-index counter
// deltas and advances the durable frontier as gaps fill — what lands on
// disk is always "the first Done fault sets are satisfied, and here is
// exactly their aggregate work", never a sparse set.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/statestore"
)

// stateVersion versions the persisted record schemas; bump on any change so
// stale records miss instead of misparse.
const stateVersion = 1

// DefaultCheckpointEvery is the fault-set interval between checkpoint
// writes when ScanOptions.CheckpointEvery is unset. A time-based flush
// (checkpointFlushInterval) runs alongside it, so slow scans with huge
// per-fault-set cost still leave fresh checkpoints.
const DefaultCheckpointEvery = 256

// checkpointFlushInterval bounds how stale a checkpoint can get on scans
// whose fault sets take much longer than CheckpointEvery would suggest.
const checkpointFlushInterval = time.Second

// scanKeys derives the checkpoint and verdict keys for a scan identity.
// The key embeds a truncated hash of the canonical graph encoding; the
// records embed the full encoding, verified on load, so a hash collision
// degrades to a cache miss, never a wrong verdict.
func scanKeys(enc string, f, threshold int) (checkpointKey, verdictKey string) {
	sum := sha256.Sum256([]byte(enc))
	base := fmt.Sprintf("%s-f%d-t%d", hex.EncodeToString(sum[:8]), f, threshold)
	return "checkpoint/" + base, "verdict/" + base
}

// maxfKey derives the in-flight MaxF scan record's key.
func maxfKey(enc string) string {
	sum := sha256.Sum256([]byte(enc))
	return "maxf/" + hex.EncodeToString(sum[:8])
}

// checkpointRecord is the persisted image of an in-flight scan: the first
// Done fault sets of the canonical enumeration are satisfied, with the
// given aggregate work counters.
type checkpointRecord struct {
	Version    int    `json:"version"`
	Graph      string `json:"graph"`
	F          int    `json:"f"`
	Threshold  int    `json:"threshold"`
	Done       int64  `json:"done"`
	Candidates int64  `json:"candidates"`
	Pruned     int64  `json:"pruned"`
	MemoHits   int64  `json:"memo_hits"`
}

// witnessRecord serializes a Witness partition by set members.
type witnessRecord struct {
	N int   `json:"n"`
	F []int `json:"f"`
	L []int `json:"l"`
	C []int `json:"c"`
	R []int `json:"r"`
}

func toWitnessRecord(w *Witness) *witnessRecord {
	if w == nil {
		return nil
	}
	return &witnessRecord{
		N: w.F.Cap(),
		F: w.F.Members(), L: w.L.Members(), C: w.C.Members(), R: w.R.Members(),
	}
}

func (wr *witnessRecord) witness() *Witness {
	if wr == nil {
		return nil
	}
	return &Witness{
		F: nodeset.FromMembers(wr.N, wr.F...),
		L: nodeset.FromMembers(wr.N, wr.L...),
		C: nodeset.FromMembers(wr.N, wr.C...),
		R: nodeset.FromMembers(wr.N, wr.R...),
	}
}

// verdictRecord is the persisted image of a settled check: the full Result
// of an uninterrupted (or resumed — by construction identical) scan.
type verdictRecord struct {
	Version    int            `json:"version"`
	Graph      string         `json:"graph"`
	F          int            `json:"f"`
	Threshold  int            `json:"threshold"`
	Satisfied  bool           `json:"satisfied"`
	Witness    *witnessRecord `json:"witness,omitempty"`
	FaultSets  int64          `json:"fault_sets"`
	Candidates int64          `json:"candidates"`
	Pruned     int64          `json:"pruned"`
	MemoHits   int64          `json:"memo_hits"`
}

// pendingSpan is a completed half-open range [lo, hi) of satisfied fault
// sets (keyed by lo in scanState.pending) with its aggregate counter delta,
// awaiting the contiguous frontier. The local scans complete one index at a
// time (hi = lo+1); the distributed coordinator journals whole lease chunks.
type pendingSpan struct {
	hi int64
	cc checkCounters
}

// scanState carries one CheckScan run's persistence: the loaded resume
// point and the live checkpointer. A nil *scanState disables persistence
// (every method is nil-safe where the scan loop calls it); a scanState with
// a nil store tracks the frontier in memory only — the distributed
// coordinator uses that form to aggregate counters when no backend is
// configured.
type scanState struct {
	store      statestore.Backend
	cpKey      string
	vKey       string
	enc        string
	f          int
	threshold  int
	every      int64
	resumed    checkCounters // aggregate over the resumed prefix, frozen at load
	resumedSet int64         // number of fault sets in the resumed prefix

	mu         sync.Mutex
	frontier   int64                 // contiguous completed prefix length
	pending    map[int64]pendingSpan // completed out-of-order, awaiting the frontier
	agg        checkCounters         // aggregate over [0, frontier)
	sinceWrite int64
	lastWrite  time.Time
}

// loadScanState consults the store for this scan identity. It returns, in
// order of preference: a cached verdict (cached != nil — the scan need not
// run at all), or a scanState seeded from the newest checkpoint (possibly
// empty), or an error if the store misbehaves. Records failing version or
// graph verification are treated as absent.
func loadScanState(ctx context.Context, store statestore.Backend, g *graph.Graph, f, threshold int, every int) (st *scanState, cached *Result, err error) {
	enc := g.Encode()
	cpKey, vKey := scanKeys(enc, f, threshold)
	if store == nil {
		if every <= 0 {
			every = DefaultCheckpointEvery
		}
		return &scanState{
			enc: enc, f: f, threshold: threshold, every: int64(every),
			pending:   make(map[int64]pendingSpan),
			lastWrite: time.Now(),
		}, nil, nil
	}
	if raw, err := store.Read(ctx, vKey); err == nil {
		var rec verdictRecord
		if json.Unmarshal(raw, &rec) == nil && rec.Version == stateVersion &&
			rec.Graph == enc && rec.F == f && rec.Threshold == threshold {
			return nil, &Result{
				Satisfied:          rec.Satisfied,
				Witness:            rec.Witness.witness(),
				FaultSetsExamined:  rec.FaultSets,
				CandidatesExamined: rec.Candidates,
				CandidatesPruned:   rec.Pruned,
				MemoHits:           rec.MemoHits,
				CacheHit:           true,
			}, nil
		}
	} else if err != statestore.ErrNotFound {
		return nil, nil, fmt.Errorf("condition: reading verdict cache: %w", err)
	}
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	st = &scanState{
		store: store, cpKey: cpKey, vKey: vKey, enc: enc,
		f: f, threshold: threshold, every: int64(every),
		pending:   make(map[int64]pendingSpan),
		lastWrite: time.Now(),
	}
	raw, err := store.Read(ctx, cpKey)
	if err == statestore.ErrNotFound {
		return st, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("condition: reading checkpoint: %w", err)
	}
	var rec checkpointRecord
	if json.Unmarshal(raw, &rec) != nil || rec.Version != stateVersion ||
		rec.Graph != enc || rec.F != f || rec.Threshold != threshold || rec.Done < 0 {
		return st, nil, nil // foreign or stale record: start fresh
	}
	if total := totalFaultSets(g.N(), f); total > 0 && rec.Done > total {
		return st, nil, nil // corrupt prefix length: start fresh
	}
	st.frontier = rec.Done
	st.agg = checkCounters{candidates: rec.Candidates, pruned: rec.Pruned, memoHits: rec.MemoHits}
	st.resumed = st.agg
	st.resumedSet = rec.Done
	return st, nil, nil
}

// resumePoint returns the fault-set index the scan should start at and the
// counter aggregate already accounted for. Nil-safe.
func (st *scanState) resumePoint() (int64, checkCounters) {
	if st == nil {
		return 0, checkCounters{}
	}
	return st.resumedSet, st.resumed
}

// complete records fault set i as satisfied with the given counter delta,
// advances the durable frontier over any filled gap, and checkpoints when
// the write cadence (count- or time-based) is due.
func (st *scanState) complete(ctx context.Context, i int64, delta checkCounters) error {
	return st.completeSpan(ctx, i, i+1, delta)
}

// completeSpan records the fault sets [lo, hi) as satisfied with their
// aggregate counter delta, advances the durable frontier over any filled
// gap, and checkpoints on the write cadence. Spans must be disjoint; the
// frontier only advances when the span at its position arrives, so a gap —
// an unreported lease, a violating index — is never jumped.
func (st *scanState) completeSpan(ctx context.Context, lo, hi int64, delta checkCounters) error {
	if st == nil {
		return nil
	}
	if hi <= lo {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.pending[lo] = pendingSpan{hi: hi, cc: delta}
	for {
		s, ok := st.pending[st.frontier]
		if !ok {
			break
		}
		delete(st.pending, st.frontier)
		st.agg.candidates += s.cc.candidates
		st.agg.pruned += s.cc.pruned
		st.agg.memoHits += s.cc.memoHits
		st.sinceWrite += s.hi - st.frontier
		st.frontier = s.hi
	}
	if st.sinceWrite >= st.every || (st.sinceWrite > 0 && time.Since(st.lastWrite) >= checkpointFlushInterval) {
		return st.writeLocked(ctx)
	}
	return nil
}

// flush forces a checkpoint write of the current frontier — the last act of
// an interrupted scan, so a resume loses at most the out-of-order tail.
func (st *scanState) flush(ctx context.Context) error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.writeLocked(ctx)
}

func (st *scanState) writeLocked(ctx context.Context) error {
	if st.store == nil {
		st.sinceWrite = 0
		st.lastWrite = time.Now()
		return nil
	}
	rec := checkpointRecord{
		Version: stateVersion, Graph: st.enc, F: st.f, Threshold: st.threshold,
		Done:       st.frontier,
		Candidates: st.agg.candidates,
		Pruned:     st.agg.pruned,
		MemoHits:   st.agg.memoHits,
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := st.store.Write(ctx, st.cpKey, raw); err != nil {
		return fmt.Errorf("condition: writing checkpoint: %w", err)
	}
	st.sinceWrite = 0
	st.lastWrite = time.Now()
	return nil
}

// finish settles the scan: the verdict is cached for every later call with
// the same (graph, f, threshold), and the in-flight checkpoint is removed.
func (st *scanState) finish(ctx context.Context, res Result) error {
	if st == nil || st.store == nil {
		return nil
	}
	rec := verdictRecord{
		Version: stateVersion, Graph: st.enc, F: st.f, Threshold: st.threshold,
		Satisfied:  res.Satisfied,
		Witness:    toWitnessRecord(res.Witness),
		FaultSets:  res.FaultSetsExamined,
		Candidates: res.CandidatesExamined,
		Pruned:     res.CandidatesPruned,
		MemoHits:   res.MemoHits,
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := st.store.Write(ctx, st.vKey, raw); err != nil {
		return fmt.Errorf("condition: writing verdict: %w", err)
	}
	if err := st.store.Delete(ctx, st.cpKey); err != nil {
		return fmt.Errorf("condition: clearing checkpoint: %w", err)
	}
	return nil
}

// maxfRecord is the persisted image of an in-flight MaxF scan: the settled
// checks in f order (index == f). It exists only while a scan is in flight
// — completion deletes it, leaving the per-f verdict cache as the durable
// memo — so a resumed scan skips settled f values outright while a fresh
// scan over a previously settled graph reports verdict-cache hits.
type maxfRecord struct {
	Version int         `json:"version"`
	Graph   string      `json:"graph"`
	Checks  []maxfCheck `json:"checks"`
}

// maxfCheck summarizes one settled check of a MaxF scan.
type maxfCheck struct {
	F          int   `json:"f"`
	Satisfied  bool  `json:"satisfied"`
	FaultSets  int64 `json:"fault_sets"`
	Candidates int64 `json:"candidates"`
	Pruned     int64 `json:"pruned"`
	MemoHits   int64 `json:"memo_hits"`
}

// loadMaxFRecord returns the in-flight scan record for g, or an empty one.
func loadMaxFRecord(ctx context.Context, store statestore.Backend, enc string) (maxfRecord, error) {
	rec := maxfRecord{Version: stateVersion, Graph: enc}
	raw, err := store.Read(ctx, maxfKey(enc))
	if err == statestore.ErrNotFound {
		return rec, nil
	}
	if err != nil {
		return rec, fmt.Errorf("condition: reading maxf record: %w", err)
	}
	var got maxfRecord
	if json.Unmarshal(raw, &got) != nil || got.Version != stateVersion || got.Graph != enc {
		return rec, nil // foreign or stale: start fresh
	}
	for i, c := range got.Checks {
		if c.F != i {
			return rec, nil // corrupt ordering: start fresh
		}
	}
	return got, nil
}

// save persists the record after a settled check.
func (rec *maxfRecord) save(ctx context.Context, store statestore.Backend) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := store.Write(ctx, maxfKey(rec.Graph), raw); err != nil {
		return fmt.Errorf("condition: writing maxf record: %w", err)
	}
	return nil
}
