package condition

import (
	"fmt"
	"math/rand"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// This file implements the *reduced graph* characterization of the
// Theorem 1 condition — the lens under which the paper's Markov-chain
// remark (Section 2.3) becomes an analysis tool: one round of Algorithm 1
// at a fault-free node is a convex combination supported on some reduced
// graph's in-edges.
//
// For a fault set F (|F| ≤ f), a reduced graph is obtained from G by
// removing F and its edges, and then removing up to f additional incoming
// edges at every remaining node. The equivalence:
//
//	G satisfies Theorem 1 for f  ⟺  every reduced graph of every F has
//	                                 exactly one source component.
//
// (⇐ by contraposition: two disjoint insulated sets L, R yield a reduced
// graph — drop each L-node's ≤ f in-edges from outside L and each R-node's
// from outside R — in which L and R have no incoming edges, hence at least
// two source components. ⇒ similarly: two source components of a reduced
// graph are insulated in G−F, because reduction removed at most f in-edges
// per node.)
//
// Enumerating all reduced graphs costs ∏_i C(indeg_i, ≤f) and is only
// feasible for tiny graphs; it is exposed for cross-validation, while
// SampleReducedGraphs provides randomized falsification for larger ones.

// SourceComponents returns the strongly connected components of g that have
// no incoming edge from outside themselves, as sorted node slices.
func SourceComponents(g *graph.Graph) [][]int {
	comps := g.StronglyConnectedComponents()
	id := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			id[v] = ci
		}
	}
	hasIncoming := make([]bool, len(comps))
	g.ForEachEdge(func(from, to int) {
		if id[from] != id[to] {
			hasIncoming[id[to]] = true
		}
	})
	var sources [][]int
	for ci, comp := range comps {
		if !hasIncoming[ci] {
			sources = append(sources, comp)
		}
	}
	return sources
}

// reducedBase removes the fault set F (nodes and incident edges) from g and
// returns the surviving graph along with the mapping from new to original
// IDs.
func reducedBase(g *graph.Graph, fSet nodeset.Set) (*graph.Graph, []int, error) {
	keep := fSet.Complement()
	return g.InducedSubgraph(keep)
}

// ForEachReducedGraph enumerates every reduced graph of g for the given
// fault set: all ways of deleting up to maxDrop incoming edges at each
// fault-free node. fn receives each reduced graph (node IDs renumbered to
// 0..|V−F|−1; mapping returned alongside) and returns false to stop early.
//
// The count is ∏_i Σ_{k≤maxDrop} C(indeg_i, k); callers must keep the base
// graph tiny (the tests use n ≤ 6).
func ForEachReducedGraph(g *graph.Graph, fSet nodeset.Set, maxDrop int, fn func(rg *graph.Graph, origID []int) bool) error {
	base, origID, err := reducedBase(g, fSet)
	if err != nil {
		return err
	}
	n := base.N()
	// dropChoices[i] = all subsets of size ≤ maxDrop of node i's in-edges.
	dropChoices := make([][][]int, n)
	for i := 0; i < n; i++ {
		ins := base.InNeighbors(i)
		var choices [][]int
		var rec func(start int, cur []int)
		rec = func(start int, cur []int) {
			c := make([]int, len(cur))
			copy(c, cur)
			choices = append(choices, c)
			if len(cur) == maxDrop {
				return
			}
			for k := start; k < len(ins); k++ {
				rec(k+1, append(cur, ins[k]))
			}
		}
		rec(0, nil)
		dropChoices[i] = choices
	}
	// Odometer over per-node choices.
	idx := make([]int, n)
	for {
		b := graph.NewBuilder(n)
		base.ForEachEdge(func(from, to int) {
			for _, dropped := range dropChoices[to][idx[to]] {
				if dropped == from {
					return
				}
			}
			b.AddEdge(from, to)
		})
		rg, err := b.Build()
		if err != nil {
			return err
		}
		if !fn(rg, origID) {
			return nil
		}
		// Advance the odometer.
		pos := 0
		for pos < n {
			idx[pos]++
			if idx[pos] < len(dropChoices[pos]) {
				break
			}
			idx[pos] = 0
			pos++
		}
		if pos == n {
			return nil
		}
	}
}

// CheckViaReducedGraphs decides the Theorem 1 condition by the reduced
// graph characterization: exhaustively enumerate every fault set and every
// reduced graph, and verify each has exactly one source component. It is
// doubly exponential in spirit and exists to cross-validate Check on tiny
// graphs (the property test asserts the two agree); it returns the first
// offending (F, reduced graph) pair's source components for diagnosis.
func CheckViaReducedGraphs(g *graph.Graph, f int) (bool, error) {
	n := g.N()
	if f < 0 {
		return false, fmt.Errorf("condition: f must be >= 0, got %d", f)
	}
	if n > 10 {
		return false, fmt.Errorf("condition: reduced-graph enumeration infeasible for n = %d > 10", n)
	}
	universe := nodeset.Universe(n)
	ok := true
	for fSize := 0; fSize <= f && fSize < n && ok; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(fSet nodeset.Set) bool {
			err := ForEachReducedGraph(g, fSet, f, func(rg *graph.Graph, _ []int) bool {
				if len(SourceComponents(rg)) != 1 {
					ok = false
					return false
				}
				return true
			})
			if err != nil {
				ok = false
				return false
			}
			return ok
		})
	}
	return ok, nil
}

// SampleReducedGraphs draws random reduced graphs (random fault set of size
// ≤ f, random ≤ f in-edge deletions per node) and reports how many had a
// unique source component. A deficit is a *proof* of violation (the
// offending reduced graph converts to a Theorem 1 witness); a full score is
// only evidence, not proof. Useful as a cheap screen on graphs too large
// for the exact checker.
func SampleReducedGraphs(g *graph.Graph, f, samples int, rng *rand.Rand) (unique, total int, err error) {
	if rng == nil {
		return 0, 0, fmt.Errorf("condition: nil rng")
	}
	n := g.N()
	for s := 0; s < samples; s++ {
		fSet := nodeset.New(n)
		fSize := rng.Intn(f + 1)
		for fSet.Count() < fSize && fSet.Count() < n-1 {
			fSet.Add(rng.Intn(n))
		}
		base, _, err := reducedBase(g, fSet)
		if err != nil {
			return unique, total, err
		}
		b := graph.NewBuilder(base.N())
		for v := 0; v < base.N(); v++ {
			ins := base.InNeighbors(v)
			rng.Shuffle(len(ins), func(i, j int) { ins[i], ins[j] = ins[j], ins[i] })
			drop := rng.Intn(f + 1)
			if drop > len(ins) {
				drop = len(ins)
			}
			for _, from := range ins[drop:] {
				b.AddEdge(from, v)
			}
		}
		rg, err := b.Build()
		if err != nil {
			return unique, total, err
		}
		total++
		if len(SourceComponents(rg)) == 1 {
			unique++
		}
	}
	return unique, total, nil
}
