// Package condition implements the graph-theoretic machinery of the paper:
// the ⇒ relation (Definition 1), in(A ⇒ B) (Definition 2), set propagation
// (Definition 3), and — centrally — an exact checker for the tight necessary
// and sufficient condition of Theorem 1:
//
//	For every partition F, L, C, R of V with |F| ≤ f, L ≠ ∅, R ≠ ∅:
//	C ∪ R ⇒ L  or  L ∪ C ⇒ R.
//
// The same machinery parameterized with threshold 2f+1 instead of f+1 yields
// the asynchronous condition of Section 7.
//
// # Complexity
//
// Deciding the condition is equivalent to a graph-robustness property that
// is coNP-hard in general, so the exact checker is exponential. It avoids
// the naive 3^n enumeration of (L, C, R) partitions via the insulated-set
// reformulation (see Check), giving 2^n·poly(n) per fault set F; graphs up
// to n ≈ 20–24 are practical. QuickScreen provides polynomial-time
// necessary-condition checks (Corollaries 2 and 3) for larger graphs.
package condition

import (
	"fmt"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// SyncThreshold returns the in-link threshold of Definition 1 for the
// synchronous model: A ⇒ B needs a node of B with at least f+1 in-neighbors
// in A.
func SyncThreshold(f int) int { return f + 1 }

// AsyncThreshold returns the strengthened threshold of Section 7 for
// asynchronous networks: 2f+1 in-links.
func AsyncThreshold(f int) int { return 2*f + 1 }

// Reaches reports whether A ⇒ B under the given threshold (Definition 1):
// some node v ∈ B has at least threshold in-neighbors in A. A and B must be
// disjoint for the relation to match the paper's definition; Reaches does
// not enforce disjointness (callers construct partitions).
func Reaches(g *graph.Graph, a, b nodeset.Set, threshold int) bool {
	found := false
	b.ForEach(func(v int) bool {
		if g.CountInFrom(v, a) >= threshold {
			found = true
			return false
		}
		return true
	})
	return found
}

// In returns in(A ⇒ B) (Definition 2): the set of nodes in B with at least
// threshold in-neighbors in A. When A ⇏ B the result is empty, matching the
// paper's convention.
func In(g *graph.Graph, a, b nodeset.Set, threshold int) nodeset.Set {
	out := nodeset.New(g.N())
	b.ForEach(func(v int) bool {
		if g.CountInFrom(v, a) >= threshold {
			out.Add(v)
		}
		return true
	})
	return out
}

// Propagation is the result of a Definition 3 propagation attempt from A to
// B. When OK is true, ASeq and BSeq are the propagating sequences
// A_0..A_l and B_0..B_l with B_l = ∅; Steps = l. When OK is false, the
// sequences hold the maximal prefix constructed before a step with
// A_τ ⇏ B_τ and B_τ ≠ ∅ occurred.
type Propagation struct {
	OK    bool
	Steps int
	ASeq  []nodeset.Set
	BSeq  []nodeset.Set
}

// Propagates runs Definition 3: A propagates to B in l steps if repeatedly
// moving in(A_τ ⇒ B_τ) from B to A empties B. The construction is
// deterministic: A_{τ+1} = A_τ ∪ in(A_τ ⇒ B_τ), B_{τ+1} = B_τ − in(A_τ ⇒ B_τ).
//
// A and B must be non-empty and disjoint; otherwise an error is returned.
// When A propagates to B, Steps ≤ |A∪B| − threshold is guaranteed finite
// (each step strictly shrinks B).
func Propagates(g *graph.Graph, a, b nodeset.Set, threshold int) (Propagation, error) {
	if a.Empty() || b.Empty() {
		return Propagation{}, fmt.Errorf("condition: propagation requires non-empty sets (|A|=%d, |B|=%d)", a.Count(), b.Count())
	}
	if !a.Disjoint(b) {
		return Propagation{}, fmt.Errorf("condition: propagation requires disjoint sets, got A=%v B=%v", a, b)
	}
	p := Propagation{
		ASeq: []nodeset.Set{a.Clone()},
		BSeq: []nodeset.Set{b.Clone()},
	}
	curA, curB := a.Clone(), b.Clone()
	for !curB.Empty() {
		moved := In(g, curA, curB, threshold)
		if moved.Empty() { // A_τ ⇏ B_τ: propagation fails.
			return p, nil
		}
		curA = curA.Union(moved)
		curB = curB.Difference(moved)
		p.ASeq = append(p.ASeq, curA.Clone())
		p.BSeq = append(p.BSeq, curB.Clone())
		p.Steps++
	}
	p.OK = true
	return p, nil
}

// EitherPropagates implements the dichotomy of Lemma 2: for any partition
// A, B, F of V with A, B non-empty and |F| ≤ f, if the graph satisfies
// Theorem 1 then A propagates to B or B propagates to A. It returns which
// direction succeeded ("A→B" favored when both hold) and the successful
// propagation. If neither direction propagates, ok is false — which, per
// Lemma 2, certifies that the graph violates Theorem 1.
func EitherPropagates(g *graph.Graph, a, b nodeset.Set, threshold int) (dir string, p Propagation, ok bool, err error) {
	pa, err := Propagates(g, a, b, threshold)
	if err != nil {
		return "", Propagation{}, false, err
	}
	if pa.OK {
		return "A→B", pa, true, nil
	}
	pb, err := Propagates(g, b, a, threshold)
	if err != nil {
		return "", Propagation{}, false, err
	}
	if pb.OK {
		return "B→A", pb, true, nil
	}
	return "", Propagation{}, false, nil
}
