package condition

import (
	"iabc/internal/graph"
	"iabc/internal/nodeset"
)

// insulationScratch is the exact checker's hot-path workspace. The insulated
// test of Definition 1 needs, for every member v of a candidate set L,
// |N⁻_v ∩ (ground−L)|. The retained reference isInsulated materializes
// ground−L per candidate — an allocation plus a full set difference for
// every one of the 2^|W| candidates. The scratch instead caches
//
//	base[v] = |N⁻_v ∩ ground|
//
// once per fault set (the ground set is fixed across the whole candidate
// enumeration) and evaluates |N⁻_v ∩ (ground−L)| = base[v] − |N⁻_v ∩ L|
// with a single word-parallel intersection count per member — no set
// algebra, no allocation.
//
// A counter-per-node variant maintained through enumeration add/remove
// hooks (nodeset.SubsetsAscendingSizeHooked) was measured too: with the
// exact checker capped at n−f ≤ 62, every set is one machine word, so the
// fused popcount beats paying O(out-degree) per enumeration transition by
// ~2× on the condition benchmarks. One scratch serves one goroutine;
// CheckParallel gives each worker its own.
type insulationScratch struct {
	g    *graph.Graph
	base []int
	// peel state for maximalInsulated.
	cntS  []int
	queue []int
	// dead memoizes maximal insulated subsets that peeled to ∅: it holds
	// candidates L (of the current ground) for which the maximal insulated
	// subset of ground−L was computed and found empty. Because that subset
	// is monotone in its sub argument (every insulated subset of a smaller
	// sub is an insulated subset of the larger one), any later candidate
	// L' ⊇ L has an empty complement too, and its peel is skipped — a memo
	// hit. Dominated entries are never stored (a superset of a stored entry
	// is already a hit), and the table is capped at deadCap to bound the
	// subset scans.
	//
	// The memo is valid only relative to the current ground: insulation
	// w.r.t. a smaller ground is a weaker property, so an empty result under
	// one ground proves nothing under another — the fault-set enumeration
	// visits shrinking grounds, which is exactly the unsound direction.
	// setGround therefore clears the table; what persists across fault sets
	// is the storage and the accumulated hit count, not the entries.
	dead []nodeset.Set
}

// deadCap bounds the empty-complement memo. Entries beyond the cap are
// dropped (losing potential hits, never correctness); 64 single-word subset
// tests cost less than one O(edges) peel, so the scan stays profitable.
const deadCap = 64

func newInsulationScratch(g *graph.Graph) *insulationScratch {
	n := g.N()
	return &insulationScratch{
		g:     g,
		base:  make([]int, n),
		cntS:  make([]int, n),
		queue: make([]int, 0, n),
	}
}

// setGround prepares the scratch for candidate enumeration over a new
// ground set.
func (s *insulationScratch) setGround(ground nodeset.Set) {
	ground.ForEach(func(v int) bool {
		s.base[v] = s.g.CountInFrom(v, ground)
		return true
	})
	s.dead = s.dead[:0]
}

// knownDead reports whether some memoized candidate is a subset of l —
// proving, by monotonicity, that the maximal insulated subset of ground−l
// is empty without peeling it.
func (s *insulationScratch) knownDead(l nodeset.Set) bool {
	for _, d := range s.dead {
		if d.SubsetOf(l) {
			return true
		}
	}
	return false
}

// recordDead memoizes a candidate whose complement peeled to ∅. Candidates
// arrive in ascending size, so no new entry can strictly dominate a stored
// one; knownDead screens out the supersets before they get here.
func (s *insulationScratch) recordDead(l nodeset.Set) {
	if len(s.dead) >= deadCap {
		return
	}
	s.dead = append(s.dead, l.Clone())
}

// insulated reports whether every node of the current candidate l has at
// most threshold−1 in-neighbors in ground−l, using the cached ground
// counts. Result-identical to the reference isInsulated.
func (s *insulationScratch) insulated(l nodeset.Set, threshold int) bool {
	ok := true
	l.ForEach(func(v int) bool {
		if s.base[v]-s.g.CountInFrom(v, l) >= threshold {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// maximalInsulated returns the unique maximal subset of sub that is
// insulated with respect to ground, by worklist peeling over the cached
// counts: a node joins the removal queue the moment its in-degree from
// outside the shrinking set reaches threshold. The fixpoint is the same as
// the reference maximalInsulatedSubset's (the maximal insulated subset is
// unique, so removal order is immaterial), at O(edges) instead of
// O(iterations · n · words).
func (s *insulationScratch) maximalInsulated(ground, sub nodeset.Set, threshold int) nodeset.Set {
	res := sub.Clone()
	q := s.queue[:0]
	res.ForEach(func(v int) bool {
		s.cntS[v] = s.g.CountInFrom(v, res)
		return true
	})
	res.ForEach(func(v int) bool {
		if s.base[v]-s.cntS[v] >= threshold {
			q = append(q, v)
		}
		return true
	})
	for len(q) > 0 {
		u := q[len(q)-1]
		q = q[:len(q)-1]
		if !res.Contains(u) {
			continue
		}
		res.Remove(u)
		for _, w := range s.g.OutView(u) {
			if !res.Contains(w) {
				continue
			}
			s.cntS[w]--
			if s.base[w]-s.cntS[w] == threshold {
				q = append(q, w)
			}
		}
	}
	s.queue = q[:0]
	return res
}
