package condition

import (
	"context"
	"math/rand"
	"testing"

	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// referenceWitness decides the condition with the reference primitives only
// (no scratch, no pruning, no memo) and returns the first witness in
// canonical enumeration order — the exact partition the pre-pruning checker
// reported. Used to pin the pruned checker bit for bit.
func referenceWitness(g *graph.Graph, f, threshold int) *Witness {
	n := g.N()
	universe := nodeset.Universe(n)
	var found *Witness
	for fSize := 0; fSize <= f && fSize <= n && found == nil; fSize++ {
		nodeset.SubsetsAscendingSize(universe, fSize, fSize, func(fSet nodeset.Set) bool {
			ground := universe.Difference(fSet)
			m := ground.Count()
			if m < 2 {
				return true
			}
			nodeset.SubsetsAscendingSize(ground, 1, m/2, func(l nodeset.Set) bool {
				if !isInsulated(g, ground, l, threshold) {
					return true
				}
				r := maximalInsulatedSubset(g, ground, ground.Difference(l), threshold)
				if r.Empty() {
					return true
				}
				found = &Witness{
					F: fSet.Clone(),
					L: l.Clone(),
					C: ground.Difference(l).Difference(r),
					R: r,
				}
				return false
			})
			return found == nil
		})
	}
	return found
}

// TestPrunedCheckBitIdenticalToReference is the PR's core guarantee: on
// random graphs across every feasible f, the pruned-and-memoized checker
// returns the same Satisfied verdict as the unpruned reference and the
// byte-identical witness partition (same F, L, C, R — not merely any valid
// witness), CheckParallel agrees with both, and every returned witness
// passes the independent Theorem 1 oracle (*Witness).Verify.
func TestPrunedCheckBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8) // 2..9
		g, err := topology.RandomDigraph(n, 0.15+0.7*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		maxFeasible := n - 2 // below that ground has < 2 nodes at fSize = f
		if maxFeasible > 4 {
			maxFeasible = 4 // keep the exponential reference affordable
		}
		for f := 0; f <= maxFeasible; f++ {
			threshold := SyncThreshold(f)
			res, err := Check(g, f)
			if err != nil {
				t.Fatal(err)
			}
			ref := referenceWitness(g, f, threshold)
			if res.Satisfied != (ref == nil) {
				t.Fatalf("trial %d n=%d f=%d: pruned Satisfied=%v, reference witness=%v\n%s",
					trial, n, f, res.Satisfied, ref, g.EdgeListString())
			}
			if ref != nil {
				w := res.Witness
				if w == nil {
					t.Fatalf("trial %d f=%d: violated without witness", trial, f)
				}
				if !w.F.Equal(ref.F) || !w.L.Equal(ref.L) || !w.C.Equal(ref.C) || !w.R.Equal(ref.R) {
					t.Fatalf("trial %d f=%d: witness drifted from unpruned reference:\npruned    %v\nreference %v",
						trial, f, w, ref)
				}
				if err := w.Verify(g, f, threshold); err != nil {
					t.Fatalf("trial %d f=%d: pruned witness fails Verify: %v", trial, f, err)
				}
			}
			par, err := CheckParallel(context.Background(), g, f, 3)
			if err != nil {
				t.Fatal(err)
			}
			if par.Satisfied != res.Satisfied {
				t.Fatalf("trial %d f=%d: parallel verdict %v != sequential %v", trial, f, par.Satisfied, res.Satisfied)
			}
			if !par.Satisfied {
				if !par.Witness.F.Equal(res.Witness.F) || !par.Witness.L.Equal(res.Witness.L) ||
					!par.Witness.R.Equal(res.Witness.R) {
					t.Fatalf("trial %d f=%d: parallel witness %v != sequential %v", trial, f, par.Witness, res.Witness)
				}
				if err := par.Witness.Verify(g, f, threshold); err != nil {
					t.Fatalf("trial %d f=%d: parallel witness fails Verify: %v", trial, f, err)
				}
			}
			// Counter sanity on every path: the pruning account never
			// exceeds the candidates accounted for.
			for _, r := range []Result{res, par} {
				if r.CandidatesPruned < 0 || r.CandidatesPruned > r.CandidatesExamined {
					t.Fatalf("trial %d f=%d: pruned %d out of range [0,%d]",
						trial, f, r.CandidatesPruned, r.CandidatesExamined)
				}
				if r.MemoHits < 0 || r.MemoHits > r.CandidatesExamined {
					t.Fatalf("trial %d f=%d: memo hits %d out of range [0,%d]",
						trial, f, r.MemoHits, r.CandidatesExamined)
				}
			}
		}
	}
}

// TestPrunedCheckAgainstReducedGraphs pins the pruned checker against the
// doubly-exponential reduced-graph characterization — a decider that shares
// no code with the candidate enumeration, so a pruning bug cannot cancel out.
func TestPrunedCheckAgainstReducedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4) // reduced-graph enumeration caps at tiny n
		f := rng.Intn(2)
		g, err := topology.RandomDigraph(n, 0.2+0.6*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		byReduced, err := CheckViaReducedGraphs(g, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfied != byReduced {
			t.Fatalf("trial %d n=%d f=%d: pruned checker %v, reduced graphs %v\n%s",
				trial, n, f, res.Satisfied, byReduced, g.EdgeListString())
		}
	}
}

// TestPrunedCountersAccounting pins the counter semantics on satisfied
// graphs, where no early exit perturbs the account:
//
//   - CandidatesExamined equals the unpruned checker's candidate count
//     exactly — Σ over fault sets of Σ_{k=1..m/2} C(m,k) — so work numbers
//     stay comparable across checker versions;
//   - the counters are monotone in f (each scan extends the previous one);
//   - CandidatesPruned and MemoHits never exceed CandidatesExamined;
//   - CheckParallel reports the identical account.
func TestPrunedCountersAccounting(t *testing.T) {
	g, err := topology.CoreNetwork(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	var prevExamined, prevPruned, prevFaultSets int64
	for f := 0; f <= 3; f++ {
		res, err := Check(g, f)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			t.Fatalf("core(10,3) must satisfy f=%d", f)
		}
		var wantCand, wantFault int64
		for fSize := 0; fSize <= f; fSize++ {
			m := n - fSize
			wantFault += binom(n, fSize)
			var perGround int64
			for k := 1; k <= m/2; k++ {
				perGround += binom(m, k)
			}
			wantCand += binom(n, fSize) * perGround
		}
		if res.FaultSetsExamined != wantFault {
			t.Fatalf("f=%d: FaultSetsExamined = %d, want %d", f, res.FaultSetsExamined, wantFault)
		}
		if res.CandidatesExamined != wantCand {
			t.Fatalf("f=%d: CandidatesExamined = %d, want the unpruned count %d", f, res.CandidatesExamined, wantCand)
		}
		if res.CandidatesPruned > res.CandidatesExamined || res.CandidatesPruned < 0 {
			t.Fatalf("f=%d: CandidatesPruned %d exceeds CandidatesExamined %d",
				f, res.CandidatesPruned, res.CandidatesExamined)
		}
		if res.MemoHits > res.CandidatesExamined || res.MemoHits < 0 {
			t.Fatalf("f=%d: MemoHits %d exceeds CandidatesExamined %d", f, res.MemoHits, res.CandidatesExamined)
		}
		if res.CandidatesExamined < prevExamined || res.CandidatesPruned < prevPruned ||
			res.FaultSetsExamined < prevFaultSets {
			t.Fatalf("f=%d: counters regressed vs f=%d (examined %d<%d, pruned %d<%d, fault sets %d<%d)",
				f, f-1, res.CandidatesExamined, prevExamined, res.CandidatesPruned, prevPruned,
				res.FaultSetsExamined, prevFaultSets)
		}
		prevExamined, prevPruned, prevFaultSets = res.CandidatesExamined, res.CandidatesPruned, res.FaultSetsExamined

		par, err := CheckParallel(context.Background(), g, f, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.FaultSetsExamined != res.FaultSetsExamined ||
			par.CandidatesExamined != res.CandidatesExamined ||
			par.CandidatesPruned != res.CandidatesPruned ||
			par.MemoHits != res.MemoHits {
			t.Fatalf("f=%d: parallel account %+v differs from sequential %+v", f, par, res)
		}
	}
	// Pruning must actually fire on this family — the clique nodes' high
	// in-degree-from-ground makes them inadmissible at small candidate
	// sizes.
	res, err := Check(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesPruned == 0 {
		t.Fatal("degree-bound pruning did not fire on core(10,3)")
	}
}

// TestPrunedCountersOversizedGround covers the gap between the feasibility
// gate (n − f ≤ 62) and the binom table (n ≤ 62): at fault-set sizes below
// f the ground can exceed 62 members, where no exact int64 account exists.
// The account must skip such grounds, never go negative. The graph plants
// two under-connected 2-cliques in an otherwise dense 64-node digraph, so
// the first candidate ({0} at F = ∅, ground of 64 members) already violates
// and the check terminates immediately.
func TestPrunedCountersOversizedGround(t *testing.T) {
	const n = 64
	b := graph.NewBuilder(n)
	b.AddUndirected(0, 1)
	b.AddUndirected(2, 3)
	for v := 4; v < n; v++ {
		for d := 1; d <= 3; d++ {
			from := 4 + (v-4+d)%(n-4)
			b.AddEdge(from, v)
		}
	}
	g := b.MustBuild()
	res, err := Check(g, 2) // n−f = 62: passes the gate, ground at fSize=0 is 64
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("isolated 2-cliques must violate the condition")
	}
	if err := res.Witness.Verify(g, 2, SyncThreshold(2)); err != nil {
		t.Fatalf("witness fails Verify: %v", err)
	}
	if res.CandidatesExamined < 1 {
		t.Fatalf("CandidatesExamined = %d, want >= 1", res.CandidatesExamined)
	}
	if res.CandidatesPruned < 0 || res.CandidatesPruned > res.CandidatesExamined {
		t.Fatalf("pruning account out of range on oversized ground: pruned %d, examined %d",
			res.CandidatesPruned, res.CandidatesExamined)
	}
	if res.MemoHits < 0 || res.MemoHits > res.CandidatesExamined {
		t.Fatalf("MemoHits %d out of range [0,%d]", res.MemoHits, res.CandidatesExamined)
	}
}

// TestMemoHitsFire builds a graph with nested insulated candidates whose
// complements peel to empty — {0,1} first, then {0,1,2} ⊇ {0,1} — so the
// empty-complement memo provably skips the second peel. The verdict must
// still match the reference.
func TestMemoHitsFire(t *testing.T) {
	// In-neighbor design (no self-loops): in(0)={1,2}, in(1)={0,2},
	// in(2)={0,1,3}, in(3)={0,1,4,5}, in(4)={0,1,3,5}, in(5)={0,1,3,4}.
	b := graph.NewBuilder(6)
	ins := map[int][]int{
		0: {1, 2}, 1: {0, 2}, 2: {0, 1, 3},
		3: {0, 1, 4, 5}, 4: {0, 1, 3, 5}, 5: {0, 1, 3, 4},
	}
	for to, froms := range ins {
		for _, from := range froms {
			b.AddEdge(from, to)
		}
	}
	g := b.MustBuild()
	res, err := Check(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHits < 1 {
		t.Fatalf("MemoHits = %d, want >= 1 ({0,1,2} ⊇ {0,1} at F=∅)", res.MemoHits)
	}
	ref := referenceWitness(g, 1, SyncThreshold(1))
	if res.Satisfied != (ref == nil) {
		t.Fatalf("memoized verdict %v disagrees with reference (witness %v)", res.Satisfied, ref)
	}
	if res.Witness != nil {
		if err := res.Witness.Verify(g, 1, SyncThreshold(1)); err != nil {
			t.Fatalf("witness fails Verify: %v", err)
		}
		if !res.Witness.F.Equal(ref.F) || !res.Witness.L.Equal(ref.L) || !res.Witness.R.Equal(ref.R) {
			t.Fatalf("witness drifted: got %v, reference %v", res.Witness, ref)
		}
	}
}

// TestBinom spot-checks the Pascal table against known values and the
// out-of-range convention.
func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 2, 10}, {16, 8, 12870}, {62, 0, 1}, {62, 62, 1},
		{62, 31, 465428353255261088}, {5, 6, 0}, {5, -1, 0}, {63, 1, 0},
	}
	for _, tc := range cases {
		if got := binom(tc.n, tc.k); got != tc.want {
			t.Errorf("binom(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}
