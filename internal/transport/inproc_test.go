package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInprocDelivers(t *testing.T) {
	tr := NewInproc(3, 4)
	defer tr.Close()
	ctx := context.Background()
	if err := tr.Send(ctx, 0, 2, Msg{Round: 1, Value: 0.5, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-tr.Recv(2):
		want := Delivery{From: 0, To: 2, Msg: Msg{Round: 1, Value: 0.5, Seq: 7}}
		if d != want {
			t.Fatalf("delivery = %+v, want %+v", d, want)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
	if tr.Sends() != 1 {
		t.Fatalf("Sends() = %d", tr.Sends())
	}
}

func TestInprocBoundsCheck(t *testing.T) {
	tr := NewInproc(2, 1)
	defer tr.Close()
	for _, link := range [][2]int{{-1, 0}, {0, 2}, {5, -3}} {
		if err := tr.Send(context.Background(), link[0], link[1], Msg{}); err == nil {
			t.Fatalf("send %d -> %d accepted", link[0], link[1])
		}
	}
}

// TestInprocBackpressure pins the bounded-queue contract: with the
// receiver's queue full, Send blocks until ctx cancellation (and reports
// ctx.Err()), rather than growing memory or dropping.
func TestInprocBackpressure(t *testing.T) {
	tr := NewInproc(2, 2)
	defer tr.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := tr.Send(ctx, 0, 1, Msg{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := tr.Send(cctx, 0, 1, Msg{Seq: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full-queue send: err = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("full-queue send returned before ctx expiry — no backpressure")
	}
	// Draining one slot unblocks the next send immediately.
	<-tr.Recv(1)
	if err := tr.Send(ctx, 0, 1, Msg{Seq: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestInprocCloseUnblocksSenders(t *testing.T) {
	tr := NewInproc(2, 1)
	if err := tr.Send(context.Background(), 0, 1, Msg{}); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- tr.Send(context.Background(), 0, 1, Msg{Seq: 1}) }()
	time.Sleep(10 * time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked send after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock the pending send")
	}
	if err := tr.Send(context.Background(), 1, 0, Msg{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after Close: err = %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}

// TestInprocCloseSendDrainRace pins the Close/Send/drain three-way race: a
// Send parked on a full queue whose transport is then closed must report
// ErrClosed even when a concurrent drain frees a slot, making the enqueue
// case ready alongside the closed case. The select picks between ready cases
// at random, so without the post-enqueue done re-check the parked send
// sneaks its message into the dead queue and returns nil on roughly half the
// runs — the loop makes that coin flip land many times per test execution.
func TestInprocCloseSendDrainRace(t *testing.T) {
	for i := 0; i < 200; i++ {
		tr := NewInproc(2, 1)
		if err := tr.Send(context.Background(), 0, 1, Msg{}); err != nil {
			t.Fatal(err)
		}
		parked := make(chan error, 1)
		go func() { parked <- tr.Send(context.Background(), 0, 1, Msg{Seq: 1}) }()
		// Give the sender time to park on the full queue, then close and
		// free a slot: both select cases become ready at once.
		time.Sleep(time.Millisecond)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		<-tr.Recv(1)
		select {
		case err := <-parked:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("iteration %d: parked send after Close: err = %v, want ErrClosed", i, err)
			}
		case <-time.After(time.Second):
			t.Fatal("parked send never returned")
		}
	}
}

// TestInprocSendCloseConcurrent hammers Send against Close under the race
// detector: whatever the interleaving, Send returns nil or ErrClosed (never
// panics, never blocks), and Close is idempotent.
func TestInprocSendCloseConcurrent(t *testing.T) {
	tr := NewInproc(4, 2)
	done := make(chan struct{})
	for s := 0; s < 4; s++ {
		s := s
		go func() {
			for j := 0; ; j++ {
				err := tr.Send(context.Background(), s, (s+1)%4, Msg{Seq: uint64(j)})
				if errors.Is(err, ErrClosed) {
					done <- struct{}{}
					return
				}
				if err != nil {
					t.Error(err)
					done <- struct{}{}
					return
				}
			}
		}()
	}
	// Let the senders fill the queues and park, then close under them.
	time.Sleep(5 * time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("a sender never observed the close")
		}
	}
}
