// Package transport moves round-tagged protocol messages between node
// actors. It is the boundary ROADMAP item 1 calls for: the node runtime
// (internal/node) talks only to the Transport interface, so the same actor
// code runs over in-process channels today and a TCP/gRPC implementation
// tomorrow — and, crucially, over the Chaos wrapper, which injects seeded,
// reproducible network faults (drop, duplication, reordering delay, link
// partitions with heal schedules, node crash windows) between any inner
// transport and its callers.
//
// Delivery semantics are deliberately weak — at-most-once, unordered across
// links, fallible — because the Section 7 algorithm's robustness argument
// is exactly that it needs nothing stronger: the actor layer masks loss by
// idempotent retransmission and the quorum/inbox logic dedups.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Msg is one round-tagged protocol message: the sender's state Value after
// Round updates. Seq is a per-sender monotone counter distinguishing
// physical transmissions of the same logical (Round, Value) — resends and
// chaos-injected duplicates — so fault decisions can be keyed per
// transmission.
type Msg struct {
	Round int
	Value float64
	Seq   uint64
}

// Delivery is a Msg as it arrives: stamped with the link it traveled.
type Delivery struct {
	From, To int
	Msg
}

// Transport moves messages between the n nodes of a cluster.
//
// Send delivers m from node `from` to node `to`, blocking while the
// receiver's bounded queue is full (backpressure) until ctx is done or the
// transport closes. A nil return means the message was accepted, not that
// it will be processed — lossy wrappers may have silently dropped it.
// Send is safe for concurrent use.
//
// Recv returns node's delivery stream. The channel is owned by the
// transport and is NEVER closed — not while the transport is open and not
// by Close — so consumers must select against their own context rather
// than range over it. Each node's stream has exactly one consuming actor.
// Implementations serving only a subset of the cluster's nodes (the TCP
// transport) return nil for nodes they do not host.
//
// Close releases the transport: blocked and future Sends fail with
// ErrClosed, and any wrapper-internal goroutines (delayed deliveries) are
// waited out — after Close returns, the transport owns no goroutines.
// After Close, Recv streams are drained, not closed: deliveries that were
// already queued before Close remain readable, no new delivery is ever
// enqueued once Close has returned, and the channel stays open. This
// contract is normative — the conformance battery (transporttest.Run) pins
// it for every implementation.
type Transport interface {
	Send(ctx context.Context, from, to int, m Msg) error
	Recv(node int) <-chan Delivery
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: closed")

// ErrLinkDown is returned by Send when the (from, to) link is cut — a
// partition window, or a crash window of either endpoint. It is the
// retryable error: the link may heal, so senders should back off and retry
// within their per-message budget rather than treat it as fatal.
var ErrLinkDown = errors.New("transport: link down")

// Inproc is the in-process Transport: one bounded channel per receiving
// node. Send blocks while the receiver's queue is full — backpressure, the
// property that distinguishes a transport from an unbounded event queue —
// until space frees, ctx is done, or the transport closes.
type Inproc struct {
	qs     []chan Delivery
	closed chan struct{}
	done   atomic.Bool
	sends  atomic.Int64
}

// DefaultQueueCap is the per-node queue bound used when NewInproc is given
// a non-positive capacity.
const DefaultQueueCap = 64

// NewInproc returns an in-process transport for nodes [0, n) with the given
// per-node queue capacity (DefaultQueueCap if ≤ 0).
func NewInproc(n, queueCap int) *Inproc {
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	t := &Inproc{
		qs:     make([]chan Delivery, n),
		closed: make(chan struct{}),
	}
	for i := range t.qs {
		t.qs[i] = make(chan Delivery, queueCap)
	}
	return t
}

// N returns the number of nodes the transport serves.
func (t *Inproc) N() int { return len(t.qs) }

// Sends returns the number of messages accepted so far.
func (t *Inproc) Sends() int64 { return t.sends.Load() }

// Send implements Transport.
func (t *Inproc) Send(ctx context.Context, from, to int, m Msg) error {
	if from < 0 || from >= len(t.qs) || to < 0 || to >= len(t.qs) {
		return fmt.Errorf("transport: send %d -> %d outside [0,%d)", from, to, len(t.qs))
	}
	if t.done.Load() {
		return ErrClosed
	}
	select {
	case t.qs[to] <- Delivery{From: from, To: to, Msg: m}:
		// Winning the enqueue does not prove the transport was open: when a
		// send parked on a full queue is raced by Close and a concurrent
		// drain, both select cases are ready and the runtime picks one at
		// random. Re-check the flag so a Send that lost that race to Close
		// still reports ErrClosed — Close's contract is that blocked Sends
		// fail, not that they may sneak a message into a dead queue. (The
		// enqueued copy is unreachable either way: the queues are abandoned
		// after Close.)
		if t.done.Load() {
			return ErrClosed
		}
		t.sends.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.closed:
		return ErrClosed
	}
}

// Recv implements Transport.
func (t *Inproc) Recv(node int) <-chan Delivery { return t.qs[node] }

// Close implements Transport. It is idempotent.
func (t *Inproc) Close() error {
	if t.done.CompareAndSwap(false, true) {
		close(t.closed)
	}
	return nil
}
