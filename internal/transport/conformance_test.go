package transport_test

// The four transport stacks the cluster can actually run on — Inproc,
// Chaos(Inproc), TCP, Chaos(TCP) — all held to the one executable contract
// in transporttest. The chaos wrappers run with a benign (fault-free)
// configuration here: the battery pins that wrapping alone cannot bend the
// contract, while the fault-injection behaviors have their own tests in
// chaos_test.go.

import (
	"testing"
	"time"

	"iabc/internal/transport"
	"iabc/internal/transport/transporttest"
)

func inprocFactory(t *testing.T, n, queueCap int) transport.Transport {
	return transport.NewInproc(n, queueCap)
}

// tcpFactory hosts all n nodes on one loopback listener: every Send still
// crosses a real socket (the instance dials itself), so framing, accept,
// read-side enqueue, and write-side backpressure are all on the wire path.
// Tiny socket buffers make backpressure engage after a handful of frames
// instead of after megabytes.
func tcpFactory(t *testing.T, n, queueCap int) transport.Transport {
	t.Helper()
	tr, err := transport.NewTCP(transport.TCPConfig{
		Addrs:       make([]string, n), // empty entries resolve to this instance
		Listen:      "127.0.0.1:0",
		QueueCap:    queueCap,
		DialBackoff: time.Millisecond,
		SockBuf:     4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func chaosOver(inner transporttest.Factory) transporttest.Factory {
	return func(t *testing.T, n, queueCap int) transport.Transport {
		return transport.NewChaos(inner(t, n, queueCap), transport.ChaosConfig{Seed: 1})
	}
}

func TestTransportConformance(t *testing.T) {
	stacks := []struct {
		name    string
		factory transporttest.Factory
	}{
		{"inproc", inprocFactory},
		{"chaos-inproc", chaosOver(inprocFactory)},
		{"tcp", tcpFactory},
		{"chaos-tcp", chaosOver(tcpFactory)},
	}
	for _, s := range stacks {
		s := s
		t.Run(s.name, func(t *testing.T) { transporttest.Run(t, s.factory) })
	}
}
