// Package transporttest holds the executable Transport contract: one shared
// conformance battery that every implementation — in-process, chaos-wrapped,
// wire — must pass, instead of each implementation re-testing (or silently
// reinterpreting) the interface comments. The battery pins exactly the
// clauses the node runtime leans on:
//
//   - Send after Close returns transport.ErrClosed, including Sends that
//     were already parked on backpressure when Close ran; Close is
//     idempotent.
//   - Canceling a Send's context unblocks a backpressured Send promptly
//     with ctx.Err().
//   - After Close returns, Recv streams are drained, not closed: already
//     queued deliveries remain readable, nothing new is ever enqueued, and
//     the channel stays open.
//   - Per-link FIFO: Seq values sent sequentially on one link arrive in
//     order (delivery across different links stays unordered).
//   - Zero goroutine leaks: after Close returns, every goroutine the
//     transport started is gone.
//
// It lives in its own package (the httptest idiom) so production binaries
// importing internal/transport never link the testing machinery.
package transporttest

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"iabc/internal/transport"
)

// Factory builds a fresh transport serving nodes [0, n) with the given
// per-node receive-queue capacity for one battery subtest. The battery owns
// the result and Closes it; a factory whose transport needs companion state
// (a peer instance, a chaos inner) must tie that state's lifetime to the
// returned transport's Close or to t.Cleanup.
type Factory func(t *testing.T, n, queueCap int) transport.Transport

// sendCap bounds the backpressure-probe send count: a transport that has
// accepted this many undrained messages without blocking has no
// backpressure to speak of.
const sendCap = 200_000

// Run exercises the full Transport conformance battery against factory.
// Call it once per implementation, under -race; each clause is a subtest.
func Run(t *testing.T, factory Factory) {
	t.Run("delivers", func(t *testing.T) { testDelivers(t, factory) })
	t.Run("send-after-close", func(t *testing.T) { testSendAfterClose(t, factory) })
	t.Run("close-unblocks-backpressured-send", func(t *testing.T) { testCloseUnblocks(t, factory) })
	t.Run("cancel-unblocks-backpressured-send", func(t *testing.T) { testCancelUnblocks(t, factory) })
	t.Run("no-new-delivery-after-close", func(t *testing.T) { testDrainedNotClosed(t, factory) })
	t.Run("per-link-fifo", func(t *testing.T) { testPerLinkFIFO(t, factory) })
	t.Run("no-goroutine-leaks", func(t *testing.T) { testNoLeaks(t, factory) })
}

// recvOne receives from stream with a generous timeout.
func recvOne(t *testing.T, stream <-chan transport.Delivery) transport.Delivery {
	t.Helper()
	select {
	case d, ok := <-stream:
		if !ok {
			t.Fatal("Recv stream closed — the contract says drained, never closed")
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery within 5s")
	}
	panic("unreachable")
}

func testDelivers(t *testing.T, factory Factory) {
	tr := factory(t, 3, 8)
	defer tr.Close()
	want := transport.Delivery{From: 0, To: 2, Msg: transport.Msg{Round: 3, Value: 1.25, Seq: 9}}
	if err := tr.Send(context.Background(), 0, 2, want.Msg); err != nil {
		t.Fatal(err)
	}
	if d := recvOne(t, tr.Recv(2)); d != want {
		t.Fatalf("delivery = %+v, want %+v", d, want)
	}
}

func testSendAfterClose(t *testing.T, factory Factory) {
	tr := factory(t, 2, 4)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(context.Background(), 0, 1, transport.Msg{}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after Close: err = %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
}

// park starts a goroutine sending 0 -> 1 with nobody draining until the
// transport backpressures it (no accepted send for a quiet window), then
// returns the channel that will carry the parked Send's eventual error.
func park(t *testing.T, tr transport.Transport, ctx context.Context) <-chan error {
	t.Helper()
	var accepted atomic.Int64
	errc := make(chan error, 1)
	go func() {
		for seq := uint64(0); ; seq++ {
			if err := tr.Send(ctx, 0, 1, transport.Msg{Seq: seq}); err != nil {
				errc <- err
				return
			}
			if accepted.Add(1) >= sendCap {
				errc <- errors.New("transporttest: no backpressure engaged")
				return
			}
		}
	}()
	// Wait for progress to stall: the count must hold still for a full
	// quiet window while the sender is still alive.
	deadline := time.Now().Add(10 * time.Second)
	last, lastChange := int64(-1), time.Now()
	for {
		select {
		case err := <-errc:
			t.Fatalf("sender finished instead of parking: %v", err)
		default:
		}
		if n := accepted.Load(); n != last {
			last, lastChange = n, time.Now()
		} else if time.Since(lastChange) > 250*time.Millisecond {
			return errc
		}
		if time.Now().After(deadline) {
			t.Fatal("send progress never stalled — no backpressure")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func testCloseUnblocks(t *testing.T, factory Factory) {
	tr := factory(t, 2, 2)
	errc := park(t, tr, context.Background())
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("parked Send after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the parked Send")
	}
}

func testCancelUnblocks(t *testing.T, factory Factory) {
	tr := factory(t, 2, 2)
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := park(t, tr, ctx)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parked Send after cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ctx cancel did not unblock the backpressured Send")
	}
}

// testDrainedNotClosed pins the post-Close Recv contract: queued deliveries
// stay readable, nothing new arrives once Close has returned, and the
// stream channel is never closed.
func testDrainedNotClosed(t *testing.T, factory Factory) {
	tr := factory(t, 2, 8)
	const sent = 4
	for i := 0; i < sent; i++ {
		if err := tr.Send(context.Background(), 0, 1, transport.Msg{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Prove the pipeline is flowing before closing (wire transports
	// enqueue asynchronously after Send returns).
	first := recvOne(t, tr.Recv(1))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Close has returned: everything still queued is readable (drained)...
	drained := []transport.Delivery{first}
	for {
		select {
		case d, ok := <-tr.Recv(1):
			if !ok {
				t.Fatal("Recv stream closed by Close — contract says drained, not closed")
			}
			drained = append(drained, d)
			continue
		default:
		}
		break
	}
	if len(drained) > sent {
		t.Fatalf("drained %d deliveries, sent only %d", len(drained), sent)
	}
	// ...and nothing new ever appears: the queue stays exactly as drained.
	select {
	case d, ok := <-tr.Recv(1):
		if !ok {
			t.Fatal("Recv stream closed after Close — contract says drained, not closed")
		}
		t.Fatalf("delivery %+v enqueued after Close returned", d)
	case <-time.After(100 * time.Millisecond):
	}
	if err := tr.Send(context.Background(), 0, 1, transport.Msg{Seq: 99}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after Close: err = %v, want ErrClosed", err)
	}
}

func testPerLinkFIFO(t *testing.T, factory Factory) {
	const k = 200
	tr := factory(t, 2, k+8)
	defer tr.Close()
	for i := 0; i < k; i++ {
		if err := tr.Send(context.Background(), 0, 1, transport.Msg{Round: i, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		d := recvOne(t, tr.Recv(1))
		if d.From != 0 || d.To != 1 {
			t.Fatalf("delivery %d traveled %d -> %d, want 0 -> 1", i, d.From, d.To)
		}
		if d.Seq != uint64(i) {
			t.Fatalf("delivery %d: Seq = %d — per-link FIFO violated", i, d.Seq)
		}
	}
}

// testNoLeaks runs a create / exercise / close cycle — including a
// backpressured-then-canceled Send, the path most likely to strand a
// goroutine — and requires the goroutine count to return to baseline.
func testNoLeaks(t *testing.T, factory Factory) {
	base := runtime.NumGoroutine()
	tr := factory(t, 3, 2)
	if err := tr.Send(context.Background(), 0, 2, transport.Msg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, tr.Recv(2))
	ctx, cancel := context.WithCancel(context.Background())
	errc := park(t, tr, ctx)
	cancel()
	select {
	case <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Send never returned")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before the transport existed",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
