package transport

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func TestWireFrameRoundTrip(t *testing.T) {
	cases := []Delivery{
		{},
		{From: 0, To: 1, Msg: Msg{Round: 0, Value: 0, Seq: 0}},
		{From: 12, To: 3, Msg: Msg{Round: 1 << 40, Value: -math.Pi, Seq: ^uint64(0)}},
		{From: 1<<31 - 1, To: 7, Msg: Msg{Round: -3, Value: math.Inf(-1), Seq: 42}},
		{From: 5, To: 6, Msg: Msg{Round: 9, Value: math.NaN(), Seq: 7}},
	}
	var stream []byte
	for _, d := range cases {
		stream = appendFrame(nil, d)
		got, _, err := readFrame(bufio.NewReader(bytes.NewReader(stream)), nil)
		if err != nil {
			t.Fatalf("%+v: %v", d, err)
		}
		if got.From != d.From || got.To != d.To || got.Round != d.Round || got.Seq != d.Seq ||
			math.Float64bits(got.Value) != math.Float64bits(d.Value) {
			t.Fatalf("round trip %+v -> %+v", d, got)
		}
	}
}

func TestWireFrameLengthCap(t *testing.T) {
	// A hostile length prefix must be rejected before any allocation.
	hostile := []byte{0xff, 0xff, 0xff, 0xff}
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(hostile)), nil)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("hostile length prefix: err = %v, want cap violation", err)
	}
}

func TestWireFrameTruncation(t *testing.T) {
	full := appendFrame(nil, Delivery{From: 1, To: 0, Msg: Msg{Round: 5, Value: 2.5, Seq: 3}})
	for cut := 0; cut < len(full); cut++ {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(full[:cut])), nil)
		switch {
		case cut == 0:
			if err != io.EOF {
				t.Fatalf("empty stream: err = %v, want io.EOF", err)
			}
		case err == nil:
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}

// FuzzWireCodec drives the decoder over arbitrary byte streams: it must
// never panic or over-allocate (the length-prefix cap bounds every read),
// and every frame it does accept must re-encode to exactly the bytes it
// consumed — encode∘decode is the identity on valid frames, which with
// TestWireFrameRoundTrip (decode∘encode = identity) pins the codec as a
// bijection between Deliveries and frames.
func FuzzWireCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, Delivery{From: 2, To: 1, Msg: Msg{Round: 7, Value: 0.5, Seq: 11}}))
	two := appendFrame(nil, Delivery{From: 0, To: 1, Msg: Msg{Round: 1, Value: 1, Seq: 1}})
	f.Add(appendFrame(two, Delivery{From: 1, To: 0, Msg: Msg{Round: -1, Value: math.Inf(1), Seq: 2}}))
	f.Add([]byte{0, 0, 0, 32, 1, 2, 3})         // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0}) // hostile length
	f.Add([]byte{0, 0, 0, 31})                  // wrong (short) length
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var scratch []byte
		offset := 0
		for {
			d, sc, err := readFrame(br, scratch)
			scratch = sc
			if cap(scratch) > maxFramePayload {
				t.Fatalf("scratch grew to %d bytes, cap is %d", cap(scratch), maxFramePayload)
			}
			if err != nil {
				return // any error ends the stream; no panic is the property
			}
			consumed := data[offset : offset+frameHeaderLen+framePayloadLen]
			if re := appendFrame(nil, d); !bytes.Equal(re, consumed) {
				t.Fatalf("decoded frame %+v re-encodes to % x, consumed % x", d, re, consumed)
			}
			offset += frameHeaderLen + framePayloadLen
		}
	})
}
