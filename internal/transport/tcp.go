package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Default TCP tuning knobs applied by TCPConfig defaults.
const (
	// DefaultDialBackoff is the initial reconnect backoff after a failed
	// dial; it doubles per attempt, capped at maxDialBackoffFactor times
	// the initial value.
	DefaultDialBackoff = 5 * time.Millisecond
	// maxDialBackoffFactor caps the exponential dial backoff at this
	// multiple of the initial backoff.
	maxDialBackoffFactor = 32
	// DefaultDialTimeout bounds one dial attempt (the reconnect loop as a
	// whole is bounded only by the sender's ctx).
	DefaultDialTimeout = 2 * time.Second
)

// TCPConfig parameterizes a TCP transport instance.
type TCPConfig struct {
	// Addrs maps node id -> host:port of the process hosting that node.
	// Multiple node ids may share one address (that process hosts them
	// all). Required, length = cluster size.
	Addrs []string
	// Local lists the node ids hosted by this instance — the ids whose
	// Recv streams this instance serves. Empty means all nodes are local
	// (the single-process layout tests use).
	Local []int
	// Listen overrides the listen address (default: Addrs of the first
	// local node). Use "host:0" plus the Listener field's Addr when the
	// kernel should pick the port.
	Listen string
	// Listener, when non-nil, is a pre-bound listener the transport
	// adopts instead of binding Listen itself — the way tests reserve
	// ephemeral ports race-free before the address map is assembled.
	// Ownership passes to the transport: Close closes it.
	Listener net.Listener
	// QueueCap bounds each local node's receive queue (DefaultQueueCap
	// if ≤ 0). The accept-side reader blocks while a queue is full, so
	// backpressure propagates to senders through TCP flow control.
	QueueCap int
	// DialBackoff is the initial reconnect backoff after a failed dial,
	// doubling per attempt up to maxDialBackoffFactor times this value
	// (0 selects DefaultDialBackoff).
	DialBackoff time.Duration
	// SockBuf, when > 0, clamps SO_SNDBUF/SO_RCVBUF on every connection.
	// Tests use tiny buffers so socket backpressure engages after a few
	// frames instead of after megabytes.
	SockBuf int
}

// TCP is the wire Transport: node ids map to host:port addresses, every
// out-link (from, to) keeps one long-lived connection that is redialed with
// capped exponential backoff when it breaks, frames are length-prefixed
// binary (see wire.go), and each local node's deliveries land in a bounded
// queue — the reader blocks while the queue is full, so the backpressure
// contract holds across the wire through TCP flow control.
//
// An instance serves the Local subset of the cluster: Recv streams exist
// for local nodes only (Recv of a remote node returns nil), while Send may
// be called for any configured out-link. Frames addressed to nodes that are
// not local are dropped on arrival.
//
// What the wire does NOT add: no delivery acknowledgment (a nil Send means
// the frame was written to the socket, not processed), no ordering across
// links, no authentication — the From field is trusted exactly as far as
// the deployment trusts its network. Per-link FIFO holds for frames that
// survive one connection; a reconnect may lose frames buffered in the dead
// socket. The actor layer's idempotent resends repair all of it.
type TCP struct {
	cfg    TCPConfig
	local  map[int]bool
	qs     map[int]chan Delivery
	ln     net.Listener
	closed chan struct{}
	done   atomic.Bool

	mu    sync.Mutex
	links map[[2]int]*tcpLink
	conns map[net.Conn]struct{}

	wg sync.WaitGroup // accept loop + per-connection readers
}

var _ Transport = (*TCP)(nil)

// tcpLink is one out-link's connection state. The sem channel (capacity 1)
// is the link lock: acquired with a select so waiters stay cancelable, and
// holding it serializes senders — which is what gives the link its FIFO.
type tcpLink struct {
	sem     chan struct{}
	conn    net.Conn
	backoff time.Duration // next dial backoff; 0 = dial immediately
	buf     []byte        // frame encode scratch
}

// NewTCP binds the listener (unless one is supplied) and starts the accept
// loop. Dialing is lazy: the first Send on a link establishes it.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("transport: tcp: empty address map")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = DefaultDialBackoff
	}
	local := make(map[int]bool)
	if len(cfg.Local) == 0 {
		for i := range cfg.Addrs {
			local[i] = true
		}
	} else {
		for _, id := range cfg.Local {
			if id < 0 || id >= len(cfg.Addrs) {
				return nil, fmt.Errorf("transport: tcp: local node %d outside [0,%d)", id, len(cfg.Addrs))
			}
			local[id] = true
		}
	}
	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Listen
		if addr == "" {
			for id := range cfg.Addrs {
				if local[id] {
					addr = cfg.Addrs[id]
					break
				}
			}
		}
		if addr == "" {
			return nil, fmt.Errorf("transport: tcp: no listen address (no local nodes and no Listen)")
		}
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: tcp: listen %s: %w", addr, err)
		}
	}
	t := &TCP{
		cfg:    cfg,
		local:  local,
		qs:     make(map[int]chan Delivery, len(local)),
		ln:     ln,
		closed: make(chan struct{}),
		links:  make(map[[2]int]*tcpLink),
		conns:  make(map[net.Conn]struct{}),
	}
	// Private copy of the address map, resolving self-referential entries:
	// an empty Addrs[i] means "this instance", which is only knowable once
	// the listener is bound.
	t.cfg.Addrs = append([]string(nil), cfg.Addrs...)
	for i, a := range t.cfg.Addrs {
		if a == "" {
			t.cfg.Addrs[i] = ln.Addr().String()
		}
	}
	for id := range local {
		t.qs[id] = make(chan Delivery, cfg.QueueCap)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with a ":0" Listen).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// acceptLoop accepts inbound connections until the listener closes, one
// reader goroutine per connection.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // Close closed the listener
		}
		t.clampSockBuf(conn)
		t.mu.Lock()
		if t.done.Load() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames off one inbound connection and enqueues them into
// the addressee's bounded queue, blocking while it is full — that blocked
// read is what turns a slow consumer into TCP backpressure on the sender.
// Frames for nodes this instance does not host are dropped.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	var scratch []byte
	for {
		var d Delivery
		var err error
		d, scratch, err = readFrame(br, scratch)
		if err != nil {
			return // EOF, peer reset, codec violation, or Close
		}
		q, ok := t.qs[d.To]
		if !ok || d.From < 0 || d.From >= len(t.cfg.Addrs) {
			continue // misrouted or forged header: drop, keep the stream
		}
		select {
		case q <- d:
		case <-t.closed:
			return
		}
	}
}

// clampSockBuf applies the configured socket buffer bound to a connection.
func (t *TCP) clampSockBuf(conn net.Conn) {
	if t.cfg.SockBuf <= 0 {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(t.cfg.SockBuf)
		tc.SetWriteBuffer(t.cfg.SockBuf)
	}
}

// link returns the (from, to) out-link, creating it on first use.
func (t *TCP) link(from, to int) *tcpLink {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.links[key]
	if l == nil {
		l = &tcpLink{sem: make(chan struct{}, 1)}
		t.links[key] = l
	}
	return l
}

// Send implements Transport. It serializes with other Sends on the same
// out-link, establishes the link's connection if needed — redialing with
// capped exponential backoff for as long as ctx allows — then writes one
// frame. A write failure tears the connection down and is returned to the
// caller (the next Send on the link redials); Send never silently resends a
// frame, so the wire adds duplicates no faster than the layers above it.
func (t *TCP) Send(ctx context.Context, from, to int, m Msg) error {
	if from < 0 || from >= len(t.cfg.Addrs) || to < 0 || to >= len(t.cfg.Addrs) {
		return fmt.Errorf("transport: send %d -> %d outside [0,%d)", from, to, len(t.cfg.Addrs))
	}
	if t.done.Load() {
		return ErrClosed
	}
	l := t.link(from, to)
	select {
	case l.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	case <-t.closed:
		return ErrClosed
	}
	defer func() { <-l.sem }()

	if l.conn == nil {
		if err := t.redial(ctx, l, to); err != nil {
			return err
		}
	}
	l.buf = appendFrame(l.buf[:0], Delivery{From: from, To: to, Msg: m})
	if err := t.write(ctx, l); err != nil {
		// The connection is gone (or deadline-poisoned); the next Send
		// redials after the link's backoff.
		l.conn.Close()
		t.forget(l.conn)
		l.conn = nil
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if t.done.Load() {
			return ErrClosed
		}
		return fmt.Errorf("transport: tcp: send %d -> %d: %w", from, to, err)
	}
	return nil
}

// forget drops a dead outbound connection from the Close set.
func (t *TCP) forget(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// redial establishes l's connection to node to, retrying failed dials with
// the link's capped exponential backoff until one succeeds, ctx ends, or
// the transport closes. The backoff state persists across Send calls, so a
// sender hammering a dead peer parks here instead of spinning.
func (t *TCP) redial(ctx context.Context, l *tcpLink, to int) error {
	for {
		if l.backoff > 0 {
			timer := time.NewTimer(l.backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-t.closed:
				timer.Stop()
				return ErrClosed
			}
		}
		dctx, cancel := t.sendCtx(ctx)
		d := net.Dialer{Timeout: DefaultDialTimeout}
		conn, err := d.DialContext(dctx, "tcp", t.cfg.Addrs[to])
		cancel()
		if err == nil {
			t.clampSockBuf(conn)
			t.mu.Lock()
			if t.done.Load() {
				t.mu.Unlock()
				conn.Close()
				return ErrClosed
			}
			t.conns[conn] = struct{}{}
			t.mu.Unlock()
			// Nothing is ever read off an outbound connection here, but
			// the peer may still close it; a reader per out-link just to
			// notice would be a goroutine tax — the write path notices.
			l.conn = conn
			l.backoff = 0
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if t.done.Load() {
			return ErrClosed
		}
		if l.backoff == 0 {
			l.backoff = t.cfg.DialBackoff
		} else if l.backoff *= 2; l.backoff > maxDialBackoffFactor*t.cfg.DialBackoff {
			l.backoff = maxDialBackoffFactor * t.cfg.DialBackoff
		}
	}
}

// errWriteInterrupted marks a write cut short by ctx or Close; Send
// normalizes it to ctx.Err() or ErrClosed.
var errWriteInterrupted = fmt.Errorf("transport: tcp: write interrupted")

// write performs one frame write, interruptible by ctx and Close: a watcher
// poisons the write deadline so a write blocked on a full socket (receiver
// backpressure) unblocks promptly instead of waiting for kernel timeouts.
func (t *TCP) write(ctx context.Context, l *tcpLink) error {
	conn := l.conn // captured: the watcher may outlive this Send by a beat
	stop := make(chan struct{})
	fired := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-t.closed:
		case <-stop:
			return
		}
		conn.SetWriteDeadline(time.Unix(1, 0))
		close(fired)
	}()
	_, err := conn.Write(l.buf)
	close(stop)
	if err == nil {
		select {
		case <-fired:
			// Poisoned after the write completed: mirror Inproc's
			// Close/Send race contract — the interrupt wins, even though
			// the frame may have reached the peer (at-most-once allows
			// the ambiguity; the caller tears the connection down).
			err = errWriteInterrupted
		default:
		}
	}
	return err
}

// sendCtx derives a context that additionally ends when the transport
// closes. The watcher goroutine exits when cancel runs — callers must
// cancel promptly (they do: it spans one dial).
func (t *TCP) sendCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	mctx, cancel := context.WithCancel(ctx)
	go func() {
		select {
		case <-t.closed:
			cancel()
		case <-mctx.Done():
		}
	}()
	return mctx, cancel
}

// Recv implements Transport. The stream exists for local nodes only; Recv
// of a node hosted elsewhere returns nil (which blocks forever in a select
// — remote nodes are not this instance's to consume).
func (t *TCP) Recv(node int) <-chan Delivery { return t.qs[node] }

// Close implements Transport: stop accepting, sever every connection
// (unblocking reads, writes, and dials in flight), and wait out the accept
// and reader goroutines. Idempotent; after it returns the transport owns no
// goroutines. Deliveries already queued remain readable; no new ones are
// enqueued (see the Transport contract).
func (t *TCP) Close() error {
	if !t.done.CompareAndSwap(false, true) {
		return nil
	}
	close(t.closed)
	t.ln.Close()
	// Every live connection — inbound and outbound link conns alike — is
	// registered in t.conns, so closing the set unblocks all reads and
	// writes in flight. Senders holding a link sem then observe t.closed
	// or a write error and return ErrClosed.
	t.mu.Lock()
	for conn := range t.conns {
		conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
