package transport_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"iabc/internal/transport"
)

// listenLoopback reserves a loopback port race-free by handing the bound
// listener to the transport (TCPConfig.Listener).
func listenLoopback(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// twoInstances builds a 2-node cluster as two TCP instances on loopback:
// instance 0 hosts node 0, instance 1 hosts node 1.
func twoInstances(t *testing.T) (*transport.TCP, *transport.TCP) {
	t.Helper()
	ln0, ln1 := listenLoopback(t), listenLoopback(t)
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	a, err := transport.NewTCP(transport.TCPConfig{
		Addrs: addrs, Local: []int{0}, Listener: ln0, DialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := transport.NewTCP(transport.TCPConfig{
		Addrs: addrs, Local: []int{1}, Listener: ln1, DialBackoff: time.Millisecond,
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	return a, b
}

func TestTCPDeliversAcrossInstances(t *testing.T) {
	a, b := twoInstances(t)
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	if err := a.Send(ctx, 0, 1, transport.Msg{Round: 2, Value: 1.5, Seq: 10}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ctx, 1, 0, transport.Msg{Round: 3, Value: -4, Seq: 11}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-b.Recv(1):
		want := transport.Delivery{From: 0, To: 1, Msg: transport.Msg{Round: 2, Value: 1.5, Seq: 10}}
		if d != want {
			t.Fatalf("delivery = %+v, want %+v", d, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery at instance b")
	}
	select {
	case d := <-a.Recv(0):
		want := transport.Delivery{From: 1, To: 0, Msg: transport.Msg{Round: 3, Value: -4, Seq: 11}}
		if d != want {
			t.Fatalf("delivery = %+v, want %+v", d, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery at instance a")
	}
	// A remote node's stream does not exist on this instance.
	if a.Recv(1) != nil || b.Recv(0) != nil {
		t.Fatal("Recv of a remote node must return nil")
	}
}

// TestTCPPeerDeathParksSenderThenCancelDrains is the cluster-facing
// robustness contract (mirroring TestClusterCancellationFacade one layer
// down): kill the peer mid-round, and the sender must park in reconnect
// backoff — not return instantly, not spin — until its ctx is canceled,
// then unwind cleanly with ctx.Err() and zero leaked goroutines.
func TestTCPPeerDeathParksSenderThenCancelDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	a, b := twoInstances(t)
	defer a.Close()

	ctx := context.Background()
	if err := a.Send(ctx, 0, 1, transport.Msg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv(1):
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery before the kill")
	}
	// Kill the peer: its listener and accepted conns all go away.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// The established connection is dead; sends now fail fast (broken
	// pipe) or park dialing a refused port. Drive Sends until one parks:
	// it must still be blocked after a generous window, proving the
	// backoff loop is holding it rather than hot-spinning errors.
	sctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		for seq := uint64(2); ; seq++ {
			err := a.Send(sctx, 0, 1, transport.Msg{Seq: seq})
			if err == nil {
				continue // a buffered write may still "succeed" before the reset lands
			}
			if sctx.Err() != nil {
				errc <- err
				return
			}
			// A fast failure (write error on the dead conn): the next
			// Send enters the redial path and parks.
		}
	}()
	select {
	case err := <-errc:
		t.Fatalf("sender returned %v before cancel — never parked in reconnect backoff", err)
	case <-time.After(300 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parked send after cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not drain the parked sender")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after peer death + cancel: %d vs base %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPReconnectAfterPeerRestart pins the reconnect half of the link
// contract: when a dead peer comes back on the same address, a retrying
// sender reestablishes the connection and traffic flows again — no
// transport restart required.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b := twoInstances(t)
	defer a.Close()
	addr := b.Addr()

	ctx := context.Background()
	if err := a.Send(ctx, 0, 1, transport.Msg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	<-b.Recv(1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the peer on the same address (rebinding can race another
	// process grabbing the port; skip rather than flake if it does).
	addrs := []string{"", addr}
	b2, err := transport.NewTCP(transport.TCPConfig{
		Addrs: addrs, Local: []int{1}, Listen: addr, DialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Skipf("rebinding %s: %v", addr, err)
	}
	defer b2.Close()

	// Retry sends until one is actually delivered at the restarted peer. A
	// Send can return nil yet deliver nothing — a buffered write on the old
	// dead connection "succeeds" until the RST lands — so success is a
	// delivery, not a nil error.
	deadline := time.Now().Add(10 * time.Second)
	for seq := uint64(2); ; seq++ {
		sctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		err := a.Send(sctx, 0, 1, transport.Msg{Seq: seq})
		cancel()
		if err == nil {
			select {
			case d := <-b2.Recv(1):
				if d.From != 0 || d.To != 1 {
					t.Fatalf("delivery after restart traveled %d -> %d", d.From, d.To)
				}
				return
			case <-time.After(200 * time.Millisecond):
				// Accepted but not delivered: the write died on the old
				// conn. Keep going — the next failure tears the conn down
				// and the redial path takes over.
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("sender never reconnected to the restarted peer (last err: %v)", err)
		}
	}
}

func TestTCPBoundsAndConfigValidation(t *testing.T) {
	tr, err := transport.NewTCP(transport.TCPConfig{
		Addrs: []string{"", ""}, Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, link := range [][2]int{{-1, 0}, {0, 2}, {5, -3}} {
		if err := tr.Send(context.Background(), link[0], link[1], transport.Msg{}); err == nil {
			t.Fatalf("send %d -> %d accepted", link[0], link[1])
		}
	}
	if _, err := transport.NewTCP(transport.TCPConfig{}); err == nil {
		t.Fatal("empty address map accepted")
	}
	if _, err := transport.NewTCP(transport.TCPConfig{
		Addrs: []string{"127.0.0.1:1"}, Local: []int{3},
	}); err == nil {
		t.Fatal("out-of-range local node accepted")
	}
}

// TestTCPMisroutedFramesDropped sends a frame addressed to a node the
// receiving instance does not host: the instance must drop it and keep the
// stream alive for well-formed traffic behind it.
func TestTCPMisroutedFramesDropped(t *testing.T) {
	ln := listenLoopback(t)
	addr := ln.Addr().String()
	// Node 2's address also points at b, which hosts only node 1: frames
	// for node 2 arrive at b and must be dropped.
	addrs := []string{"", addr, addr}
	a, err := transport.NewTCP(transport.TCPConfig{
		Addrs: addrs, Local: []int{0}, Listen: "127.0.0.1:0", DialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.NewTCP(transport.TCPConfig{
		Addrs: addrs, Local: []int{1}, Listener: ln, DialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	if err := a.Send(ctx, 0, 2, transport.Msg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, 0, 1, transport.Msg{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-b.Recv(1):
		if d.Seq != 2 {
			t.Fatalf("delivery Seq = %d, want 2 (the misrouted frame must vanish)", d.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("well-formed frame behind a misrouted one never arrived")
	}
}
