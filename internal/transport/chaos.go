package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"iabc/internal/hashrand"
	"iabc/internal/nodeset"
)

// Partition cuts every link between the node sets A and B in both
// directions for a wall-clock window: active from From after the chaos
// transport's creation until Until (Until ≤ 0 means the cut never heals).
// Sends across an active cut fail with ErrLinkDown, and messages already
// in flight (delayed by jitter) are lost if the cut is active when they
// would land.
type Partition struct {
	A, B        nodeset.Set
	From, Until time.Duration
}

// active reports whether the window covers the instant now.
func (p Partition) active(now time.Duration) bool {
	return now >= p.From && (p.Until <= 0 || now < p.Until)
}

// cuts reports whether the partition severs the link from -> to.
func (p Partition) cuts(from, to int, now time.Duration) bool {
	if !p.active(now) {
		return false
	}
	return (p.A.Contains(from) && p.B.Contains(to)) ||
		(p.B.Contains(from) && p.A.Contains(to))
}

// Crash takes Node off the network for a wall-clock window (semantics as in
// Partition): all links to and from it behave as down. The node runtime
// additionally restarts the node's actor from its durable state at the end
// of the window — the transport layer only models the connectivity loss.
type Crash struct {
	Node        int
	From, Until time.Duration
}

func (c Crash) active(now time.Duration) bool {
	return now >= c.From && (c.Until <= 0 || now < c.Until)
}

// ChaosConfig parameterizes a Chaos transport. All probabilistic decisions
// are pure functions of (Seed, from, to, Msg.Seq) through the hashrand
// keyed generator: given the same sequence numbering, the same messages are
// dropped, duplicated, and delayed by the same amounts on every run — the
// chaos is seeded and reproducible, while wall-clock interleaving remains
// the scheduler's.
type ChaosConfig struct {
	// Seed keys every probabilistic decision. Runs with equal seeds make
	// identical per-transmission decisions.
	Seed int64
	// Drop is the probability a message silently vanishes.
	Drop float64
	// Dup is the probability a message is delivered twice (the duplicate
	// draws its own independent delay, so the copies may reorder).
	Dup float64
	// MaxDelay bounds the per-message forwarding delay: each accepted
	// message waits a keyed-uniform duration in [0, MaxDelay) before it is
	// passed to the inner transport. Distinct delays on one link reorder
	// messages. 0 forwards synchronously.
	MaxDelay time.Duration
	// Partitions are the link cuts with their heal schedules.
	Partitions []Partition
	// Crashes are the per-node down windows.
	Crashes []Crash
}

// Stats counts what the chaos layer did to traffic. All counters are
// cumulative since creation.
type Stats struct {
	// Sent counts messages accepted into the chaos layer (before faults).
	Sent int64
	// Dropped counts messages the drop probability ate.
	Dropped int64
	// Duplicated counts extra copies injected.
	Duplicated int64
	// LinkDown counts sends refused because a partition or crash window
	// covered the link.
	LinkDown int64
	// Lost counts in-flight messages destroyed because their link was cut
	// or the transport closed before their delay elapsed.
	Lost int64
}

// Chaos wraps an inner Transport with seeded fault injection. It composes:
// any Transport can be wrapped, and the wrapper is itself a Transport, so
// the node runtime is oblivious to whether its network is clean or hostile.
//
// Close cancels all in-flight delayed deliveries, waits out the wrapper's
// goroutines, and closes the inner transport — Chaos owns what it wraps.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig
	start time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	sent, dropped, duplicated, linkDown, lost atomic.Int64
}

var _ Transport = (*Chaos)(nil)

// NewChaos wraps inner with the configured fault injection. The wall clock
// for partition and crash windows starts now.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	ctx, cancel := context.WithCancel(context.Background())
	return &Chaos{inner: inner, cfg: cfg, start: time.Now(), ctx: ctx, cancel: cancel}
}

// now returns the wall-clock offset the fault windows are scheduled in.
func (c *Chaos) now() time.Duration { return time.Since(c.start) }

// linkUp reports whether from -> to is currently traversable.
func (c *Chaos) linkUp(from, to int, now time.Duration) bool {
	for _, p := range c.cfg.Partitions {
		if p.cuts(from, to, now) {
			return false
		}
	}
	for _, cr := range c.cfg.Crashes {
		if (cr.Node == from || cr.Node == to) && cr.active(now) {
			return false
		}
	}
	return true
}

// salts separating the per-transmission decision variates: one keyed hash
// per (Seed, from, to, Seq), re-mixed per decision so drop, dup, and the
// two delay draws are independent.
const (
	saltDrop = 0x64726f70 // "drop"
	saltDup  = 0x00647570 // "dup"
	saltDel1 = 0x64656c31 // "del1"
	saltDel2 = 0x64656c32 // "del2"
)

// variate derives the salted uniform in [0,1) from a transmission key.
func variate(key, salt uint64) float64 {
	return float64(hashrand.Splitmix64(key^salt)>>11) / (1 << 53)
}

// Send implements Transport. The decision cascade per transmission:
// link up? → drop? → delay (forward now or via a timer goroutine) → dup?
// (the copy draws its own delay). A nil return covers silent drops — the
// caller learns nothing, exactly like a lossy network.
func (c *Chaos) Send(ctx context.Context, from, to int, m Msg) error {
	if c.ctx.Err() != nil {
		return ErrClosed
	}
	if !c.linkUp(from, to, c.now()) {
		c.linkDown.Add(1)
		return ErrLinkDown
	}
	c.sent.Add(1)
	key := hashrand.Key(c.cfg.Seed, uint64(from), uint64(to), m.Seq)
	if c.cfg.Drop > 0 && variate(key, saltDrop) < c.cfg.Drop {
		c.dropped.Add(1)
		return nil
	}
	if err := c.forward(ctx, from, to, m, variate(key, saltDel1)); err != nil {
		return err
	}
	if c.cfg.Dup > 0 && variate(key, saltDup) < c.cfg.Dup {
		c.duplicated.Add(1)
		// The duplicate is best-effort: its delivery failure is not the
		// sender's problem (the original got through).
		_ = c.forward(ctx, from, to, m, variate(key, saltDel2))
	}
	return nil
}

// forward passes m to the inner transport after u·MaxDelay, synchronously
// when the delay rounds to zero, else via a tracked timer goroutine whose
// landing re-checks the link (in-flight messages die on an active cut).
func (c *Chaos) forward(ctx context.Context, from, to int, m Msg, u float64) error {
	d := time.Duration(u * float64(c.cfg.MaxDelay))
	if d <= 0 {
		return c.inner.Send(ctx, from, to, m)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.ctx.Done():
			c.lost.Add(1)
			return
		}
		if !c.linkUp(from, to, c.now()) {
			c.lost.Add(1)
			return
		}
		// Delivery uses the chaos lifetime, not the sender's ctx: the
		// sender already got its nil and moved on.
		if err := c.inner.Send(c.ctx, from, to, m); err != nil {
			c.lost.Add(1)
		}
	}()
	return nil
}

// Recv implements Transport.
func (c *Chaos) Recv(node int) <-chan Delivery { return c.inner.Recv(node) }

// Close implements Transport: abort in-flight deliveries, wait the wrapper
// goroutines out, then close the inner transport. The wait must precede the
// inner Close — a delayed-delivery goroutine that already passed its
// ctx.Done check may still be inside inner.Send, and closing the inner
// transport under it would hand a live send a closed peer (counted as Lost
// today, a use-after-close for inner transports with stricter lifecycles).
func (c *Chaos) Close() error {
	c.cancel()
	c.wg.Wait()
	return c.inner.Close()
}

// Stats returns a snapshot of the fault counters.
func (c *Chaos) Stats() Stats {
	return Stats{
		Sent:       c.sent.Load(),
		Dropped:    c.dropped.Load(),
		Duplicated: c.duplicated.Load(),
		LinkDown:   c.linkDown.Load(),
		Lost:       c.lost.Load(),
	}
}
