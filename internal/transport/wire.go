package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format of the TCP transport: length-prefixed binary frames, one per
// Delivery. Each frame is a 4-byte big-endian payload length followed by a
// fixed 32-byte payload:
//
//	from  uint32   sending node id
//	to    uint32   receiving node id
//	round uint64   Msg.Round (two's complement of the int64 value)
//	value uint64   Msg.Value as IEEE-754 bits (math.Float64bits)
//	seq   uint64   Msg.Seq
//
// The codec is strict: the declared length must equal framePayloadLen
// exactly, and any length above maxFramePayload is rejected before a single
// payload byte is read — a corrupt or adversarial length prefix can never
// make the reader allocate or buffer an attacker-chosen amount. Because the
// format has exactly one encoding per Delivery, decode∘encode is the
// identity on frames and encode∘decode is the identity on valid payloads —
// the property FuzzWireCodec pins.

const (
	// frameHeaderLen is the length prefix size in bytes.
	frameHeaderLen = 4
	// framePayloadLen is the exact payload size of the one frame type.
	framePayloadLen = 32
	// maxFramePayload is the sanity cap on the declared payload length.
	// Anything above it is a protocol error, rejected before allocation.
	// It leaves headroom over framePayloadLen so a future frame revision
	// can grow without changing the cap, while still bounding a hostile
	// length prefix to a kilobyte.
	maxFramePayload = 1024
)

// appendFrame appends d's wire frame (header + payload) to dst.
func appendFrame(dst []byte, d Delivery) []byte {
	dst = binary.BigEndian.AppendUint32(dst, framePayloadLen)
	dst = binary.BigEndian.AppendUint32(dst, uint32(d.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(d.To))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(d.Round)))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Value))
	dst = binary.BigEndian.AppendUint64(dst, d.Seq)
	return dst
}

// decodePayload decodes one frame payload. The length was validated by the
// caller (readFrame), but decodePayload re-checks so it is total on
// arbitrary input.
func decodePayload(p []byte) (Delivery, error) {
	if len(p) != framePayloadLen {
		return Delivery{}, fmt.Errorf("transport: frame payload %d bytes, want %d", len(p), framePayloadLen)
	}
	return Delivery{
		From: int(int32(binary.BigEndian.Uint32(p[0:4]))),
		To:   int(int32(binary.BigEndian.Uint32(p[4:8]))),
		Msg: Msg{
			Round: int(int64(binary.BigEndian.Uint64(p[8:16]))),
			Value: math.Float64frombits(binary.BigEndian.Uint64(p[16:24])),
			Seq:   binary.BigEndian.Uint64(p[24:32]),
		},
	}, nil
}

// readFrame reads one frame from br into scratch (grown only up to the
// sanity cap) and decodes it. io.EOF at a frame boundary is returned as-is;
// a stream that ends mid-frame yields io.ErrUnexpectedEOF.
func readFrame(br *bufio.Reader, scratch []byte) (Delivery, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// io.EOF here is a clean frame boundary; a partial header is
		// already io.ErrUnexpectedEOF from ReadFull.
		return Delivery{}, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFramePayload {
		return Delivery{}, scratch, fmt.Errorf("transport: frame payload length %d exceeds cap %d", n, maxFramePayload)
	}
	if n != framePayloadLen {
		return Delivery{}, scratch, fmt.Errorf("transport: frame payload length %d, want %d", n, framePayloadLen)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(br, scratch); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Delivery{}, scratch, err
	}
	d, err := decodePayload(scratch)
	return d, scratch, err
}
