package transport

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"iabc/internal/nodeset"
)

// drain collects every delivery currently available for node, waiting up to
// grace for stragglers.
func drain(tr Transport, node int, grace time.Duration) []Delivery {
	var out []Delivery
	for {
		select {
		case d := <-tr.Recv(node):
			out = append(out, d)
		case <-time.After(grace):
			return out
		}
	}
}

// TestChaosDropRateAndDeterminism sends a message train through two chaos
// transports with equal seeds and one with a different seed: equal seeds
// must make identical per-seq drop decisions, the different seed must not,
// and the drop rate must be near the configured probability.
func TestChaosDropRateAndDeterminism(t *testing.T) {
	const n, msgs, p = 2, 2000, 0.3
	ctx := context.Background()
	arrived := func(seed int64) map[uint64]bool {
		c := NewChaos(NewInproc(n, msgs+1), ChaosConfig{Seed: seed, Drop: p})
		defer c.Close()
		for i := 0; i < msgs; i++ {
			if err := c.Send(ctx, 0, 1, Msg{Round: i, Seq: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		got := map[uint64]bool{}
		for _, d := range drain(c, 1, 10*time.Millisecond) {
			got[d.Seq] = true
		}
		if want := int64(msgs - len(got)); c.Stats().Dropped != want {
			t.Fatalf("seed %d: Stats().Dropped = %d, want %d", seed, c.Stats().Dropped, want)
		}
		return got
	}
	a, b, c := arrived(1), arrived(1), arrived(2)
	if len(a) != len(b) {
		t.Fatalf("equal seeds delivered %d vs %d messages", len(a), len(b))
	}
	for seq := range a {
		if !b[seq] {
			t.Fatalf("equal seeds disagree on seq %d", seq)
		}
	}
	rate := 1 - float64(len(a))/msgs
	if math.Abs(rate-p) > 0.05 {
		t.Fatalf("drop rate %.3f far from %.1f", rate, p)
	}
	same := true
	for seq := range a {
		if !c[seq] {
			same = false
		}
	}
	if same && len(a) == len(c) {
		t.Fatal("different seeds made identical drop decisions")
	}
}

func TestChaosDuplication(t *testing.T) {
	const msgs = 500
	c := NewChaos(NewInproc(2, 2*msgs), ChaosConfig{Seed: 3, Dup: 0.4})
	defer c.Close()
	for i := 0; i < msgs; i++ {
		if err := c.Send(context.Background(), 0, 1, Msg{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(c, 1, 10*time.Millisecond)
	dups := len(got) - msgs
	if int64(dups) != c.Stats().Duplicated {
		t.Fatalf("observed %d duplicates, stats say %d", dups, c.Stats().Duplicated)
	}
	if rate := float64(dups) / msgs; math.Abs(rate-0.4) > 0.08 {
		t.Fatalf("dup rate %.3f far from 0.4", rate)
	}
}

// TestChaosDelayReorders pushes a train through a jittered link and checks
// that (a) everything arrives, (b) arrival order differs from send order —
// the reordering fault — while per-message delay stays under MaxDelay.
func TestChaosDelayReorders(t *testing.T) {
	const msgs = 64
	c := NewChaos(NewInproc(2, msgs), ChaosConfig{Seed: 11, MaxDelay: 30 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := c.Send(context.Background(), 0, 1, Msg{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(c, 1, 100*time.Millisecond)
	if len(got) != msgs {
		t.Fatalf("arrived %d of %d", len(got), msgs)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deliveries took far longer than MaxDelay")
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i].Seq < got[i-1].Seq {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("64 jittered messages arrived in send order — no reordering")
	}
}

func TestChaosPartitionWindowAndHeal(t *testing.T) {
	n := 4
	cut := Partition{
		A:    nodeset.FromMembers(n, 0, 1),
		B:    nodeset.FromMembers(n, 2, 3),
		From: 0, Until: 40 * time.Millisecond,
	}
	c := NewChaos(NewInproc(n, 8), ChaosConfig{Partitions: []Partition{cut}})
	defer c.Close()
	ctx := context.Background()
	// Active window: both directions across the cut fail, inside-set links work.
	if err := c.Send(ctx, 0, 2, Msg{}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("0->2 during cut: err = %v, want ErrLinkDown", err)
	}
	if err := c.Send(ctx, 3, 1, Msg{}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("3->1 during cut: err = %v, want ErrLinkDown", err)
	}
	if err := c.Send(ctx, 0, 1, Msg{}); err != nil {
		t.Fatalf("0->1 inside A during cut: %v", err)
	}
	if c.Stats().LinkDown != 2 {
		t.Fatalf("LinkDown = %d, want 2", c.Stats().LinkDown)
	}
	// After the heal, the cut link works again.
	time.Sleep(50 * time.Millisecond)
	if err := c.Send(ctx, 0, 2, Msg{Seq: 1}); err != nil {
		t.Fatalf("0->2 after heal: %v", err)
	}
	if got := drain(c, 2, 10*time.Millisecond); len(got) != 1 {
		t.Fatalf("post-heal deliveries = %d, want 1", len(got))
	}
}

func TestChaosCrashWindow(t *testing.T) {
	c := NewChaos(NewInproc(3, 8), ChaosConfig{
		Crashes: []Crash{{Node: 1, From: 0, Until: 40 * time.Millisecond}},
	})
	defer c.Close()
	ctx := context.Background()
	if err := c.Send(ctx, 0, 1, Msg{}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send to crashed node: err = %v, want ErrLinkDown", err)
	}
	if err := c.Send(ctx, 1, 2, Msg{}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send from crashed node: err = %v, want ErrLinkDown", err)
	}
	if err := c.Send(ctx, 0, 2, Msg{}); err != nil {
		t.Fatalf("bystander link during crash: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.Send(ctx, 0, 1, Msg{Seq: 1}); err != nil {
		t.Fatalf("send after restart window: %v", err)
	}
}

// TestChaosInFlightLostOnCut: a delayed message whose partition activates
// while it is in flight must be destroyed, not delivered through the cut.
func TestChaosInFlightLostOnCut(t *testing.T) {
	n := 2
	c := NewChaos(NewInproc(n, 8), ChaosConfig{
		Seed:     5,
		MaxDelay: 300 * time.Millisecond,
		Partitions: []Partition{{
			A:    nodeset.FromMembers(n, 0),
			B:    nodeset.FromMembers(n, 1),
			From: 20 * time.Millisecond,
		}},
	})
	defer c.Close()
	// Fire a burst immediately; any copy delayed past 20ms dies on the cut.
	accepted := 0
	for i := 0; i < 32; i++ {
		if err := c.Send(context.Background(), 0, 1, Msg{Seq: uint64(i)}); err == nil {
			accepted++
		}
	}
	if accepted == 0 {
		t.Skip("scheduler delayed the burst past the cut window")
	}
	got := drain(c, 1, 400*time.Millisecond)
	if len(got) >= accepted {
		t.Fatalf("all %d accepted messages arrived despite mid-flight cut", accepted)
	}
	if c.Stats().Lost == 0 {
		t.Fatal("no in-flight losses recorded")
	}
}

// lifecycleProbe is a Transport that records whether any Send arrives after
// Close returned — the use-after-close a wrapper with delayed deliveries can
// commit if it closes its inner transport before waiting its goroutines out.
type lifecycleProbe struct {
	inner           Transport
	closed          atomic.Bool
	sendsAfterClose atomic.Int64
}

func (p *lifecycleProbe) Send(ctx context.Context, from, to int, m Msg) error {
	if p.closed.Load() {
		p.sendsAfterClose.Add(1)
		return ErrClosed
	}
	// Dwell inside the send so a racing Close has a window to overlap it.
	time.Sleep(200 * time.Microsecond)
	if p.closed.Load() {
		p.sendsAfterClose.Add(1)
		return ErrClosed
	}
	return p.inner.Send(ctx, from, to, m)
}

func (p *lifecycleProbe) Recv(node int) <-chan Delivery { return p.inner.Recv(node) }

func (p *lifecycleProbe) Close() error {
	p.closed.Store(true)
	return p.inner.Close()
}

// TestChaosCloseOrdersInnerAfterDrain pins the Close ordering: the wrapper
// must wait its delayed-delivery goroutines out BEFORE closing the inner
// transport, so no inner Send ever overlaps or follows the inner Close.
// With the order inverted (inner.Close before wg.Wait), goroutines whose
// timers fired just before Close land their Sends on a closed transport —
// the probe counts those.
func TestChaosCloseOrdersInnerAfterDrain(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		probe := &lifecycleProbe{inner: NewInproc(2, 256)}
		c := NewChaos(probe, ChaosConfig{Seed: int64(trial), MaxDelay: 2 * time.Millisecond})
		for i := 0; i < 128; i++ {
			if err := c.Send(context.Background(), 0, 1, Msg{Seq: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Close while a crowd of delayed deliveries is mid-flight — some
		// timers have fired and their goroutines are inside probe.Send.
		time.Sleep(time.Millisecond)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if n := probe.sendsAfterClose.Load(); n != 0 {
			t.Fatalf("trial %d: %d inner Sends arrived at or after inner Close", trial, n)
		}
	}
}

// TestChaosCloseWaitsForGoroutines pins the Close contract: after Close
// returns, the wrapper owns no goroutines even with deliveries in flight.
func TestChaosCloseWaitsForGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	c := NewChaos(NewInproc(2, 4), ChaosConfig{Seed: 9, MaxDelay: 200 * time.Millisecond})
	for i := 0; i < 64; i++ {
		_ = c.Send(context.Background(), 0, 1, Msg{Seq: uint64(i)})
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d vs base %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Send(context.Background(), 0, 1, Msg{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after Close: err = %v, want ErrClosed", err)
	}
}
