// Package quorum holds the round-quorum machinery the Section 7
// asynchronous iteration is built on, shared by the discrete-event
// simulator (internal/async) and the real node actors (internal/node):
// the per-node inbox ring buffering round-tagged arrivals, and the
// |N⁻_i| − f quorum count a node waits for before advancing a round.
package quorum

import "iabc/internal/core"

// Count returns |N⁻_i| − f: how many distinct round-t values a node with
// the given in-degree waits for before it can apply the round-t update.
// It cannot wait for more — up to f faulty in-neighbors may stay silent
// forever (Section 7).
func Count(inDegree, f int) int { return inDegree - f }

// Ring buffers round-tagged arrivals for one node without per-delivery
// map allocation. Conceptually it is inbox[round][sender] = value for rounds
// in a sliding window [base, base+slots): each round owns a flat slot of
// in-degree values aligned with the node's sorted in-neighbor list, plus
// presence flags (first arrival per (sender, round) wins — equivocating
// re-sends are dropped) and a fill count for the quorum test.
//
// The window advances one round at a time as the node's round counter moves
// and grows geometrically when a sender runs far ahead of the receiver, so
// steady-state delivery touches no allocator at all.
//
// A Ring is owned by exactly one consumer (the simulator's event loop, or
// one node actor's goroutine); it is not safe for concurrent use.
type Ring struct {
	deg     int
	base    int // round number stored at ring position start
	start   int // ring position of round base
	slots   int
	vals    []float64 // slots × deg
	present []bool    // slots × deg
	count   []int     // per slot
}

// NewRing returns an empty ring for a node with the given in-degree.
func NewRing(deg int) *Ring {
	const initialSlots = 8
	return &Ring{
		deg:     deg,
		slots:   initialSlots,
		vals:    make([]float64, initialSlots*deg),
		present: make([]bool, initialSlots*deg),
		count:   make([]int, initialSlots),
	}
}

// Base returns the lowest round the ring currently stores — the owner's
// round counter, advanced by Pop.
func (ib *Ring) Base() int { return ib.base }

// slot maps a round number in [base, base+slots) to its ring position.
func (ib *Ring) slot(round int) int {
	return (ib.start + (round - ib.base)) % ib.slots
}

// grow re-lays the ring out with at least need slots.
func (ib *Ring) grow(need int) {
	newSlots := ib.slots * 2
	for newSlots < need {
		newSlots *= 2
	}
	vals := make([]float64, newSlots*ib.deg)
	present := make([]bool, newSlots*ib.deg)
	count := make([]int, newSlots)
	for r := 0; r < ib.slots; r++ {
		old := ib.slot(ib.base + r)
		copy(vals[r*ib.deg:(r+1)*ib.deg], ib.vals[old*ib.deg:(old+1)*ib.deg])
		copy(present[r*ib.deg:(r+1)*ib.deg], ib.present[old*ib.deg:(old+1)*ib.deg])
		count[r] = ib.count[old]
	}
	ib.vals, ib.present, ib.count = vals, present, count
	ib.slots, ib.start = newSlots, 0
}

// Put records an arrival for (round, pos) where pos is the sender's index in
// the node's sorted in-neighbor list. It reports whether the arrival was
// fresh (false = duplicate, dropped). round must be ≥ Base().
func (ib *Ring) Put(round, pos int, v float64) bool {
	if round-ib.base >= ib.slots {
		ib.grow(round - ib.base + 1)
	}
	off := ib.slot(round)*ib.deg + pos
	if ib.present[off] {
		return false
	}
	ib.present[off] = true
	ib.vals[off] = v
	ib.count[ib.slot(round)]++
	return true
}

// Filled returns how many distinct senders have delivered for round.
// Rounds outside the stored window report 0.
func (ib *Ring) Filled(round int) int {
	if round < ib.base || round-ib.base >= ib.slots {
		return 0
	}
	return ib.count[ib.slot(round)]
}

// Gather appends the present values of round's slot to buf in ascending
// sender order (positions are aligned with the sorted in-neighbor list
// senders, so no sort is needed) and returns the extended slice. Rounds
// outside the stored window gather nothing — the same totality guard
// Filled has, so a round Filled reports empty can never gather another
// round's values through the modular slot mapping.
func (ib *Ring) Gather(round int, senders []int, buf []core.ValueFrom) []core.ValueFrom {
	if round < ib.base || round-ib.base >= ib.slots {
		return buf
	}
	s := ib.slot(round)
	for k := 0; k < ib.deg; k++ {
		if ib.present[s*ib.deg+k] {
			buf = append(buf, core.ValueFrom{From: senders[k], Value: ib.vals[s*ib.deg+k]})
		}
	}
	return buf
}

// Pop clears the slot of round Base() and advances the window by one round.
// Callers must have consumed the slot first.
func (ib *Ring) Pop() {
	s := ib.start
	for k := 0; k < ib.deg; k++ {
		ib.present[s*ib.deg+k] = false
	}
	ib.count[s] = 0
	ib.base++
	ib.start = (ib.start + 1) % ib.slots
}

// Reset drops all buffered arrivals and rebases the window at round — the
// volatile-state loss of a node crash: the owner restarts from its durable
// (round, value) state with an empty inbox and relies on peer resends to
// re-fill the current round's slot.
func (ib *Ring) Reset(round int) {
	for i := range ib.present {
		ib.present[i] = false
	}
	for i := range ib.count {
		ib.count[i] = 0
	}
	ib.base, ib.start = round, 0
}
