package quorum

import (
	"math/rand"
	"testing"

	"iabc/internal/core"
)

func TestCount(t *testing.T) {
	if got := Count(7, 2); got != 5 {
		t.Fatalf("Count(7,2) = %d, want 5", got)
	}
}

func TestRingBasics(t *testing.T) {
	senders := []int{2, 5, 9}
	ib := NewRing(len(senders))
	if ib.Base() != 0 {
		t.Fatalf("fresh ring base = %d", ib.Base())
	}
	if !ib.Put(0, 1, 5.0) {
		t.Fatal("first arrival rejected")
	}
	if ib.Put(0, 1, 6.0) {
		t.Fatal("duplicate (sender, round) accepted")
	}
	if got := ib.Filled(0); got != 1 {
		t.Fatalf("Filled(0) = %d, want 1", got)
	}
	ib.Put(0, 0, 2.0)
	ib.Put(0, 2, 9.0)
	got := ib.Gather(0, senders, nil)
	want := []core.ValueFrom{{From: 2, Value: 2}, {From: 5, Value: 5}, {From: 9, Value: 9}}
	if len(got) != len(want) {
		t.Fatalf("gathered %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Gather[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	ib.Pop()
	if ib.Base() != 1 {
		t.Fatalf("base after Pop = %d, want 1", ib.Base())
	}
	if ib.Filled(1) != 0 {
		t.Fatal("round 1 not empty after Pop")
	}
}

func TestRingGrowsForRunahead(t *testing.T) {
	ib := NewRing(2)
	// A sender 40 rounds ahead forces two geometric growths; earlier
	// arrivals must survive the re-layout.
	ib.Put(0, 0, 1.0)
	ib.Put(3, 1, 4.0)
	ib.Put(40, 0, 7.0)
	if ib.Filled(0) != 1 || ib.Filled(3) != 1 || ib.Filled(40) != 1 {
		t.Fatalf("fill counts after growth: %d %d %d",
			ib.Filled(0), ib.Filled(3), ib.Filled(40))
	}
	got := ib.Gather(3, []int{10, 11}, nil)
	if len(got) != 1 || got[0] != (core.ValueFrom{From: 11, Value: 4}) {
		t.Fatalf("Gather(3) = %+v after growth", got)
	}
}

func TestRingReset(t *testing.T) {
	ib := NewRing(3)
	ib.Put(0, 0, 1.0)
	ib.Put(2, 1, 2.0)
	ib.Reset(5)
	if ib.Base() != 5 {
		t.Fatalf("base after Reset = %d, want 5", ib.Base())
	}
	for r := 5; r < 10; r++ {
		if ib.Filled(r) != 0 {
			t.Fatalf("round %d not empty after Reset", r)
		}
	}
	if !ib.Put(5, 0, 3.0) {
		t.Fatal("arrival after Reset rejected")
	}
	if ib.Filled(5) != 1 {
		t.Fatal("Reset ring does not accept fresh arrivals")
	}
}

// TestRingMatchesMap cross-checks the ring against a naive map model under a
// random workload of puts, pops, and run-ahead rounds.
func TestRingMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const deg = 4
	senders := []int{1, 3, 6, 8}
	ib := NewRing(deg)
	model := map[[2]int]float64{} // (round, pos) -> value
	base := 0
	for step := 0; step < 2000; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			round := base + rng.Intn(12)
			pos := rng.Intn(deg)
			v := rng.Float64()
			_, dup := model[[2]int{round, pos}]
			if fresh := ib.Put(round, pos, v); fresh == dup {
				t.Fatalf("step %d: Put(%d,%d) fresh=%v, model dup=%v", step, round, pos, fresh, dup)
			}
			if !dup {
				model[[2]int{round, pos}] = v
			}
		case 2:
			full := 0
			for pos := 0; pos < deg; pos++ {
				if _, ok := model[[2]int{base, pos}]; ok {
					full++
				}
			}
			if ib.Filled(base) != full {
				t.Fatalf("step %d: Filled(%d) = %d, model %d", step, base, ib.Filled(base), full)
			}
			if full == deg {
				got := ib.Gather(base, senders, nil)
				for k, pos := 0, 0; pos < deg; pos++ {
					want := core.ValueFrom{From: senders[pos], Value: model[[2]int{base, pos}]}
					if got[k] != want {
						t.Fatalf("step %d: Gather[%d] = %+v, want %+v", step, k, got[k], want)
					}
					k++
				}
				ib.Pop()
				for pos := 0; pos < deg; pos++ {
					delete(model, [2]int{base, pos})
				}
				base++
			}
		}
	}
}
