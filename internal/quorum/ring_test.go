package quorum

import (
	"math/rand"
	"testing"

	"iabc/internal/core"
)

func TestCount(t *testing.T) {
	if got := Count(7, 2); got != 5 {
		t.Fatalf("Count(7,2) = %d, want 5", got)
	}
}

func TestRingBasics(t *testing.T) {
	senders := []int{2, 5, 9}
	ib := NewRing(len(senders))
	if ib.Base() != 0 {
		t.Fatalf("fresh ring base = %d", ib.Base())
	}
	if !ib.Put(0, 1, 5.0) {
		t.Fatal("first arrival rejected")
	}
	if ib.Put(0, 1, 6.0) {
		t.Fatal("duplicate (sender, round) accepted")
	}
	if got := ib.Filled(0); got != 1 {
		t.Fatalf("Filled(0) = %d, want 1", got)
	}
	ib.Put(0, 0, 2.0)
	ib.Put(0, 2, 9.0)
	got := ib.Gather(0, senders, nil)
	want := []core.ValueFrom{{From: 2, Value: 2}, {From: 5, Value: 5}, {From: 9, Value: 9}}
	if len(got) != len(want) {
		t.Fatalf("gathered %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Gather[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	ib.Pop()
	if ib.Base() != 1 {
		t.Fatalf("base after Pop = %d, want 1", ib.Base())
	}
	if ib.Filled(1) != 0 {
		t.Fatal("round 1 not empty after Pop")
	}
}

func TestRingGrowsForRunahead(t *testing.T) {
	ib := NewRing(2)
	// A sender 40 rounds ahead forces two geometric growths; earlier
	// arrivals must survive the re-layout.
	ib.Put(0, 0, 1.0)
	ib.Put(3, 1, 4.0)
	ib.Put(40, 0, 7.0)
	if ib.Filled(0) != 1 || ib.Filled(3) != 1 || ib.Filled(40) != 1 {
		t.Fatalf("fill counts after growth: %d %d %d",
			ib.Filled(0), ib.Filled(3), ib.Filled(40))
	}
	got := ib.Gather(3, []int{10, 11}, nil)
	if len(got) != 1 || got[0] != (core.ValueFrom{From: 11, Value: 4}) {
		t.Fatalf("Gather(3) = %+v after growth", got)
	}
}

func TestRingReset(t *testing.T) {
	ib := NewRing(3)
	ib.Put(0, 0, 1.0)
	ib.Put(2, 1, 2.0)
	ib.Reset(5)
	if ib.Base() != 5 {
		t.Fatalf("base after Reset = %d, want 5", ib.Base())
	}
	for r := 5; r < 10; r++ {
		if ib.Filled(r) != 0 {
			t.Fatalf("round %d not empty after Reset", r)
		}
	}
	if !ib.Put(5, 0, 3.0) {
		t.Fatal("arrival after Reset rejected")
	}
	if ib.Filled(5) != 1 {
		t.Fatal("Reset ring does not accept fresh arrivals")
	}
}

// ringModel is the naive reference: inbox[(round, pos)] = value with
// first-arrival-wins, a base cursor, and no windowing at all.
type ringModel struct {
	vals map[[2]int]float64
	base int
}

func newRingModel() *ringModel { return &ringModel{vals: map[[2]int]float64{}} }

func (m *ringModel) put(round, pos int, v float64) bool {
	if _, dup := m.vals[[2]int{round, pos}]; dup {
		return false
	}
	m.vals[[2]int{round, pos}] = v
	return true
}

func (m *ringModel) filled(round, deg int) int {
	n := 0
	for pos := 0; pos < deg; pos++ {
		if _, ok := m.vals[[2]int{round, pos}]; ok {
			n++
		}
	}
	return n
}

func (m *ringModel) gather(round int, senders []int) []core.ValueFrom {
	var out []core.ValueFrom
	for pos := range senders {
		if v, ok := m.vals[[2]int{round, pos}]; ok {
			out = append(out, core.ValueFrom{From: senders[pos], Value: v})
		}
	}
	return out
}

func (m *ringModel) pop(deg int) {
	for pos := 0; pos < deg; pos++ {
		delete(m.vals, [2]int{m.base, pos})
	}
	m.base++
}

func (m *ringModel) reset(round int) {
	m.vals = map[[2]int]float64{}
	m.base = round
}

// checkAgainstModel compares every round of the ring's live window (plus a
// margin past it) with the model.
func checkAgainstModel(t *testing.T, ib *Ring, m *ringModel, deg int, senders []int, window int) {
	t.Helper()
	if ib.Base() != m.base {
		t.Fatalf("base: ring %d, model %d", ib.Base(), m.base)
	}
	for round := m.base; round < m.base+window; round++ {
		if got, want := ib.Filled(round), m.filled(round, deg); got != want {
			t.Fatalf("Filled(%d): ring %d, model %d", round, got, want)
		}
		got := ib.Gather(round, senders, nil)
		want := m.gather(round, senders)
		if len(got) != len(want) {
			t.Fatalf("Gather(%d): ring %d values, model %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Gather(%d)[%d]: ring %+v, model %+v", round, i, got[i], want[i])
			}
		}
	}
}

// TestRingGrowAfterWrap pins the re-layout that the basic growth test never
// reaches: growth triggered while start is nonzero (the window has wrapped
// around the slot array), for every possible start offset. The grow path
// must re-linearize the wrapped window without losing or misplacing any
// buffered arrival.
func TestRingGrowAfterWrap(t *testing.T) {
	const deg = 3
	senders := []int{4, 7, 9}
	for wrap := 0; wrap < 16; wrap++ { // 16 = two initial-capacity laps
		ib := NewRing(deg)
		m := newRingModel()
		// Advance the window so start sits at wrap % initialSlots, with live
		// arrivals straddling the wrap point.
		for r := 0; r < wrap; r++ {
			ib.Put(r, 0, float64(r))
			m.put(r, 0, float64(r))
			ib.Pop()
			m.pop(deg)
		}
		// Fill the whole current window, then one Put far past it forces a
		// (possibly repeated) growth from this exact wrap offset.
		for r := m.base; r < m.base+8; r++ {
			for pos := 0; pos < deg; pos++ {
				ib.Put(r, pos, float64(r*10+pos))
				m.put(r, pos, float64(r*10+pos))
			}
		}
		far := m.base + 40
		ib.Put(far, 1, 123.5)
		m.put(far, 1, 123.5)
		checkAgainstModel(t, ib, m, deg, senders, 48)
		// The window must still pop and refill coherently after the growth.
		for i := 0; i < 10; i++ {
			ib.Pop()
			m.pop(deg)
		}
		checkAgainstModel(t, ib, m, deg, senders, 48)
	}
}

// TestRingMatchesMap cross-checks the ring against a naive map model under a
// random workload of puts, pops, and run-ahead rounds.
func TestRingMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const deg = 4
	senders := []int{1, 3, 6, 8}
	ib := NewRing(deg)
	model := map[[2]int]float64{} // (round, pos) -> value
	base := 0
	for step := 0; step < 2000; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			round := base + rng.Intn(12)
			pos := rng.Intn(deg)
			v := rng.Float64()
			_, dup := model[[2]int{round, pos}]
			if fresh := ib.Put(round, pos, v); fresh == dup {
				t.Fatalf("step %d: Put(%d,%d) fresh=%v, model dup=%v", step, round, pos, fresh, dup)
			}
			if !dup {
				model[[2]int{round, pos}] = v
			}
		case 2:
			full := 0
			for pos := 0; pos < deg; pos++ {
				if _, ok := model[[2]int{base, pos}]; ok {
					full++
				}
			}
			if ib.Filled(base) != full {
				t.Fatalf("step %d: Filled(%d) = %d, model %d", step, base, ib.Filled(base), full)
			}
			if full == deg {
				got := ib.Gather(base, senders, nil)
				for k, pos := 0, 0; pos < deg; pos++ {
					want := core.ValueFrom{From: senders[pos], Value: model[[2]int{base, pos}]}
					if got[k] != want {
						t.Fatalf("step %d: Gather[%d] = %+v, want %+v", step, k, got[k], want)
					}
					k++
				}
				ib.Pop()
				for pos := 0; pos < deg; pos++ {
					delete(model, [2]int{base, pos})
				}
				base++
			}
		}
	}
}

// FuzzRingModel drives an op sequence decoded from the fuzz input — Put with
// arbitrary run-ahead (growth at whatever start offset the preceding Pops
// left), Pop, and Reset — and asserts full Filled/Gather/Base equivalence
// against the map model after every op. `go test` runs the seed corpus;
// `go test -fuzz=FuzzRingModel ./internal/quorum/` explores.
func FuzzRingModel(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0x10, 0xC3, 0x07, 0x55})       // mixed ops
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x3F, 0x00})       // pops then far put
	f.Add([]byte{0x3F, 0xC5, 0x80, 0x3F, 0x80, 0x80, 0x3F, 0xC0}) // grow, reset, grow
	f.Fuzz(func(t *testing.T, ops []byte) {
		const deg = 3
		senders := []int{2, 5, 11}
		ib := NewRing(deg)
		m := newRingModel()
		for i, op := range ops {
			switch {
			case op < 0x80: // Put: low bits choose run-ahead and position
				round := m.base + int(op>>2)%30
				pos := int(op) % deg
				v := float64(i)
				if fresh, want := ib.Put(round, pos, v), m.put(round, pos, v); fresh != want {
					t.Fatalf("op %d: Put(%d,%d) fresh=%v, model %v", i, round, pos, fresh, want)
				}
			case op < 0xC0: // Pop
				ib.Pop()
				m.pop(deg)
			default: // Reset with a forward jump
				round := m.base + int(op&0x3F)
				ib.Reset(round)
				m.reset(round)
			}
			checkAgainstModel(t, ib, m, deg, senders, 40)
		}
	})
}
