package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestRamp(t *testing.T) {
	got := Ramp(4)
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("Ramp[%d] = %v", i, v)
		}
	}
	if len(Ramp(0)) != 0 {
		t.Fatal("Ramp(0) should be empty")
	}
}

func TestConstant(t *testing.T) {
	for _, v := range Constant(5, 3.5) {
		if v != 3.5 {
			t.Fatalf("Constant value %v", v)
		}
	}
}

func TestBimodal(t *testing.T) {
	got := Bimodal(5, -1, 1)
	want := []float64{-1, -1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bimodal = %v, want %v", got, want)
		}
	}
}

func TestBimodalSets(t *testing.T) {
	got, err := BimodalSets(4, []int{0, 3}, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 9, 9, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BimodalSets = %v, want %v", got, want)
		}
	}
	if _, err := BimodalSets(4, []int{4}, 0, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestSpike(t *testing.T) {
	got, err := Spike(4, 2, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 15 || got[0] != 10 {
		t.Fatalf("Spike = %v", got)
	}
	if _, err := Spike(4, -1, 0, 1); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestUniformRangeAndDeterminism(t *testing.T) {
	a := Uniform(100, 2, 5, rand.New(rand.NewSource(7)))
	b := Uniform(100, 2, 5, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] < 2 || a[i] >= 5 {
			t.Fatalf("Uniform[%d] = %v outside [2,5)", i, a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed produced different vectors")
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	xs := Gaussian(20000, 10, 2, rand.New(rand.NewSource(8)))
	var sum, sq float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	std := math.Sqrt(sq / float64(len(xs)))
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ≈ 10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("stddev = %v, want ≈ 2", std)
	}
}
