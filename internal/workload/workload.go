// Package workload generates initial-value vectors (the inputs v_i[0] of
// Section 2.3) for simulations, experiments, and benchmarks. Each generator
// is deterministic given its arguments; randomized ones take an explicit
// seeded *rand.Rand.
//
// The shapes matter for convergence studies: Ramp is the generic
// disagreement workload; Bimodal is the worst case driving Theorem 3's
// analysis (two camps at the extremes — exactly the A/B split of the proof);
// Spike isolates a single outlier.
package workload

import (
	"fmt"
	"math/rand"
)

// Ramp returns 0, 1, ..., n-1: uniform disagreement, unit steps.
func Ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// Constant returns n copies of v: already-converged inputs.
func Constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Bimodal splits the nodes into two camps: the first half (rounded down)
// holds lo, the rest holds hi — the adversarial split at the heart of the
// Theorem 3 convergence argument.
func Bimodal(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i < n/2 {
			out[i] = lo
		} else {
			out[i] = hi
		}
	}
	return out
}

// BimodalSets assigns lo to the listed low nodes and hi elsewhere. Node IDs
// out of range are rejected.
func BimodalSets(n int, low []int, lo, hi float64) ([]float64, error) {
	out := Constant(n, hi)
	for _, i := range low {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("workload: node %d out of range [0,%d)", i, n)
		}
		out[i] = lo
	}
	return out, nil
}

// Spike returns base everywhere except one node holding base+height:
// a single outlier's influence decays at the contraction rate.
func Spike(n, at int, base, height float64) ([]float64, error) {
	if at < 0 || at >= n {
		return nil, fmt.Errorf("workload: spike node %d out of range [0,%d)", at, n)
	}
	out := Constant(n, base)
	out[at] = base + height
	return out, nil
}

// Uniform draws n independent values uniformly from [lo, hi).
func Uniform(n int, lo, hi float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// Gaussian draws n independent values from N(mean, stddev²) — the sensor
// noise model of the data-aggregation application.
func Gaussian(n int, mean, stddev float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + rng.NormFloat64()*stddev
	}
	return out
}
