package graph

import (
	"strings"
	"testing"
)

// FuzzParseEdgeList hardens the interchange-format parser: any input must
// either produce a graph that round-trips exactly, or an error — never a
// panic or an inconsistent graph.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("n 1\n")
	f.Add("# comment\nn 4\n\n0 1\n")
	f.Add("n 0\n")
	f.Add("n -5\n")
	f.Add("0 1\n")
	f.Add("n 3\n0 0\n")
	f.Add("n 3\n0 99\n")
	f.Add("n two\n")
	f.Add(strings.Repeat("n 2\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseEdgeListString(input)
		if err != nil {
			return
		}
		if g.N() < 1 {
			t.Fatalf("parser returned graph with %d nodes and no error", g.N())
		}
		// Round trip must be exact.
		back, err := ParseEdgeListString(g.EdgeListString())
		if err != nil {
			t.Fatalf("re-parse of emitted form failed: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("edge-list round trip changed the graph")
		}
		// Structural invariants.
		sumIn, sumOut := 0, 0
		for v := 0; v < g.N(); v++ {
			sumIn += g.InDegree(v)
			sumOut += g.OutDegree(v)
			if g.HasEdge(v, v) {
				t.Fatal("self-loop survived parsing")
			}
		}
		if sumIn != g.NumEdges() || sumOut != g.NumEdges() {
			t.Fatalf("degree sums %d/%d != m = %d", sumIn, sumOut, g.NumEdges())
		}
	})
}
