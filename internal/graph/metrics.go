package graph

// Metrics used by the topology-audit tooling and the experiment tables.

// Density returns |E| / (n(n−1)), the fraction of possible directed edges
// present. A single-node graph has density 0.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(g.edges) / float64(g.n*(g.n-1))
}

// Diameter returns the longest shortest directed path between any ordered
// pair of nodes, or -1 if some node cannot reach another (the graph is not
// strongly connected). Single-node graphs have diameter 0.
func (g *Graph) Diameter() int {
	if g.n == 1 {
		return 0
	}
	diameter := 0
	dist := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for src := 0; src < g.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		seen := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.out[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > diameter {
						diameter = dist[w]
					}
					seen++
					queue = append(queue, w)
				}
			}
		}
		if seen != g.n {
			return -1
		}
	}
	return diameter
}

// InDegreeHistogram returns counts[d] = number of nodes with in-degree d.
// The slice has length max in-degree + 1.
func (g *Graph) InDegreeHistogram() []int {
	maxDeg := 0
	for i := 0; i < g.n; i++ {
		if d := len(g.in[i]); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for i := 0; i < g.n; i++ {
		counts[len(g.in[i])]++
	}
	return counts
}

// UndirectedEdgeCount returns the number of undirected links when the graph
// is symmetric: each mutual pair (i,j),(j,i) counts once. One-way edges
// count as a full link too (they still cost a radio/wire), so the result is
// the number of unordered pairs with at least one edge.
func (g *Graph) UndirectedEdgeCount() int {
	count := 0
	g.ForEachEdge(func(from, to int) {
		if from < to || !g.HasEdge(to, from) {
			count++
		}
	})
	return count
}
