package graph

import (
	"math/rand"
	"testing"
)

func completeGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

func undirectedCycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddUndirected(i, (i+1)%n)
	}
	return b.MustBuild()
}

func hypercube(d int) *Graph {
	n := 1 << uint(d)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for bit := 0; bit < d; bit++ {
			j := i ^ (1 << uint(bit))
			if i < j {
				b.AddUndirected(i, j)
			}
		}
	}
	return b.MustBuild()
}

func TestVertexConnectivityKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"singleton", NewBuilder(1).MustBuild(), 0},
		{"K2", completeGraph(2), 1},
		{"K5", completeGraph(5), 4},
		{"cycle6", undirectedCycle(6), 2},
		{"cube3", hypercube(3), 3},
		{"cube4", hypercube(4), 4},
		{"path", NewBuilder(3).AddUndirected(0, 1).AddUndirected(1, 2).MustBuild(), 1},
		{"disconnected", NewBuilder(4).AddUndirected(0, 1).AddUndirected(2, 3).MustBuild(), 0},
		{"directed cycle", func() *Graph {
			b := NewBuilder(4)
			for i := 0; i < 4; i++ {
				b.AddEdge(i, (i+1)%4)
			}
			return b.MustBuild()
		}(), 1},
		{"one-way pair", NewBuilder(2).AddEdge(0, 1).MustBuild(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.VertexConnectivity(); got != tc.want {
				t.Fatalf("κ = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestVertexConnectivityCompleteBipartite(t *testing.T) {
	// K_{a,b} has κ = min(a, b).
	b := NewBuilder(7)
	for i := 0; i < 3; i++ {
		for j := 3; j < 7; j++ {
			b.AddUndirected(i, j)
		}
	}
	if got := b.MustBuild().VertexConnectivity(); got != 3 {
		t.Fatalf("κ(K_{3,4}) = %d, want 3", got)
	}
}

func TestVertexConnectivityAtMostMinDegree(t *testing.T) {
	// κ ≤ min degree — spot-check on random symmetric graphs.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) > 0 {
					b.AddUndirected(i, j)
				}
			}
		}
		g := b.MustBuild()
		minDeg := n
		for i := 0; i < n; i++ {
			if d := g.InDegree(i); d < minDeg {
				minDeg = d
			}
		}
		if k := g.VertexConnectivity(); k > minDeg {
			t.Fatalf("κ = %d exceeds min degree %d\n%s", k, minDeg, g.EdgeListString())
		}
	}
}
