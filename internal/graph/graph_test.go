package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"iabc/internal/nodeset"
)

// diamond builds 0->1, 0->2, 1->3, 2->3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder(4).AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := diamond(t)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got, want := g.OutNeighbors(0), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("OutNeighbors(0) = %v, want %v", got, want)
	}
	if got, want := g.InNeighbors(3), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("InNeighbors(3) = %v, want %v", got, want)
	}
	if g.InDegree(0) != 0 || g.OutDegree(0) != 2 {
		t.Errorf("degrees of 0 = (%d,%d), want (0,2)", g.InDegree(0), g.OutDegree(0))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Error("HasEdge answers wrong")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("HasEdge out of range should be false")
	}
	if g.MinInDegree() != 0 {
		t.Errorf("MinInDegree = %d, want 0", g.MinInDegree())
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"self-loop", func() (*Graph, error) { return NewBuilder(3).AddEdge(1, 1).Build() }},
		{"negative from", func() (*Graph, error) { return NewBuilder(3).AddEdge(-1, 0).Build() }},
		{"to out of range", func() (*Graph, error) { return NewBuilder(3).AddEdge(0, 3).Build() }},
		{"zero order", func() (*Graph, error) { return NewBuilder(0).Build() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build(); err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestBuilderKeepsFirstError(t *testing.T) {
	_, err := NewBuilder(3).AddEdge(5, 5).AddEdge(0, 1).Build()
	if err == nil || !strings.Contains(err.Error(), "(5,5)") {
		t.Fatalf("err = %v, want mention of (5,5)", err)
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	g, err := NewBuilder(2).AddEdge(0, 1).AddEdge(0, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 0).MustBuild()
}

func TestNeighborCopiesAreDefensive(t *testing.T) {
	g := diamond(t)
	out := g.OutNeighbors(0)
	out[0] = 99
	if got := g.OutNeighbors(0)[0]; got != 1 {
		t.Fatalf("mutating returned slice changed graph: %d", got)
	}
	s := g.InSet(3)
	s.Add(0)
	if g.InSet(3).Contains(0) {
		t.Fatal("mutating returned set changed graph")
	}
}

func TestCountInFrom(t *testing.T) {
	g := diamond(t)
	s := nodeset.FromMembers(4, 1, 2)
	if got := g.CountInFrom(3, s); got != 2 {
		t.Fatalf("CountInFrom(3, {1,2}) = %d, want 2", got)
	}
	if got := g.CountInFrom(0, s); got != 0 {
		t.Fatalf("CountInFrom(0, {1,2}) = %d, want 0", got)
	}
}

func TestTranspose(t *testing.T) {
	g := diamond(t)
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(3, 1) || tr.HasEdge(0, 1) {
		t.Fatal("transpose edges wrong")
	}
	if !tr.Transpose().Equal(g) {
		t.Fatal("double transpose is not identity")
	}
}

func TestIsSymmetric(t *testing.T) {
	if diamond(t).IsSymmetric() {
		t.Error("diamond is not symmetric")
	}
	u := NewBuilder(3).AddUndirected(0, 1).AddUndirected(1, 2).MustBuild()
	if !u.IsSymmetric() {
		t.Error("undirected path should be symmetric")
	}
}

func TestEqual(t *testing.T) {
	a := diamond(t)
	b := diamond(t)
	if !a.Equal(b) {
		t.Fatal("identical graphs not Equal")
	}
	c := NewBuilder(4).AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(3, 2).MustBuild()
	if a.Equal(c) {
		t.Fatal("different graphs Equal")
	}
	d := NewBuilder(5).MustBuild()
	if a.Equal(d) {
		t.Fatal("different orders Equal")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond(t)
	sub, mapping, err := g.InducedSubgraph(nodeset.FromMembers(4, 0, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d, want 3", sub.N())
	}
	if want := []int{0, 1, 3}; !reflect.DeepEqual(mapping, want) {
		t.Fatalf("mapping = %v, want %v", mapping, want)
	}
	// Edges 0->1 and 1->3 survive under new IDs 0->1, 1->2.
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.NumEdges() != 2 {
		t.Fatalf("induced edges wrong: %s", sub.EdgeListString())
	}
	if _, _, err := g.InducedSubgraph(nodeset.New(4)); err == nil {
		t.Fatal("empty induced subgraph should error")
	}
}

func TestReachableFrom(t *testing.T) {
	g := diamond(t)
	r := g.ReachableFrom(0)
	if r.Count() != 4 {
		t.Fatalf("ReachableFrom(0) = %v, want all", r)
	}
	r3 := g.ReachableFrom(3)
	if r3.Count() != 1 || !r3.Contains(3) {
		t.Fatalf("ReachableFrom(3) = %v, want {3}", r3)
	}
	if got := g.ReachableFrom(-1); !got.Empty() {
		t.Fatalf("ReachableFrom(-1) = %v, want empty", got)
	}
}

func TestIsStronglyConnected(t *testing.T) {
	if diamond(t).IsStronglyConnected() {
		t.Error("diamond is not strongly connected")
	}
	cyc := NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0).MustBuild()
	if !cyc.IsStronglyConnected() {
		t.Error("directed cycle is strongly connected")
	}
}

func TestStronglyConnectedComponents(t *testing.T) {
	// Two 2-cycles joined by a one-way bridge: {0,1} -> {2,3}.
	g := NewBuilder(4).
		AddEdge(0, 1).AddEdge(1, 0).
		AddEdge(2, 3).AddEdge(3, 2).
		AddEdge(1, 2).
		MustBuild()
	comps := g.StronglyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(comps), comps)
	}
	// Reverse topological order: the sink component {2,3} first.
	if !reflect.DeepEqual(comps[0], []int{2, 3}) || !reflect.DeepEqual(comps[1], []int{0, 1}) {
		t.Fatalf("components = %v, want [[2 3] [0 1]]", comps)
	}
}

func TestSCCSingletons(t *testing.T) {
	g := diamond(t)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("DAG should have n singleton SCCs, got %v", comps)
	}
}

func TestSCCLongPathNoStackOverflow(t *testing.T) {
	const n = 200000
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	if got := len(g.StronglyConnectedComponents()); got != n {
		t.Fatalf("got %d SCCs, want %d", got, n)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond(t)
	s := g.EdgeListString()
	back, err := ParseEdgeListString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", s, back.EdgeListString())
	}
}

// TestEncodeCanonical pins the cache-key contract of Encode: equal graphs
// encode equally regardless of edge insertion order, unequal graphs encode
// differently, and the format carries its version prefix.
func TestEncodeCanonical(t *testing.T) {
	g1 := NewBuilder(4).AddEdge(0, 1).AddEdge(0, 2).AddEdge(2, 3).MustBuild()
	g2 := NewBuilder(4).AddEdge(2, 3).AddEdge(0, 2).AddEdge(0, 1).MustBuild()
	if g1.Encode() != g2.Encode() {
		t.Fatalf("insertion order changed encoding:\n%s\nvs\n%s", g1.Encode(), g2.Encode())
	}
	if want := "g1:4;0>1,2;2>3"; g1.Encode() != want {
		t.Fatalf("Encode() = %q, want %q", g1.Encode(), want)
	}
	distinct := []*Graph{
		g1,
		NewBuilder(4).AddEdge(0, 1).AddEdge(0, 2).MustBuild(),               // edge subset
		NewBuilder(5).AddEdge(0, 1).AddEdge(0, 2).AddEdge(2, 3).MustBuild(), // larger order
		NewBuilder(4).AddEdge(1, 0).AddEdge(2, 0).AddEdge(3, 2).MustBuild(), // transpose
	}
	seen := make(map[string]int)
	for i, g := range distinct {
		if j, dup := seen[g.Encode()]; dup {
			t.Fatalf("graphs %d and %d alias to %q", i, j, g.Encode())
		}
		seen[g.Encode()] = i
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"only comments", "# hi\n\n"},
		{"bad header", "order 4\n"},
		{"bad edge", "n 3\n0 x\n"},
		{"self loop", "n 3\n1 1\n"},
		{"out of range", "n 3\n0 7\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseEdgeListString(tc.in); err == nil {
				t.Fatalf("ParseEdgeListString(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestParseEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	g, err := ParseEdgeListString("# header\n\nn 3\n# edge below\n0 1\n\n1 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %s, want n=3 m=2", g)
	}
}

func TestDOT(t *testing.T) {
	mixed := NewBuilder(3).AddUndirected(0, 1).AddEdge(1, 2).MustBuild()
	dot := mixed.DOT("g")
	if !strings.Contains(dot, "0 -> 1 [dir=both];") {
		t.Errorf("symmetric pair not collapsed:\n%s", dot)
	}
	if strings.Contains(dot, "1 -> 0") {
		t.Errorf("reverse of collapsed pair still present:\n%s", dot)
	}
	if !strings.Contains(dot, "1 -> 2;") {
		t.Errorf("one-way edge missing:\n%s", dot)
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(3) == 0 {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.MustBuild()

		// Serialization round trip.
		back, err := ParseEdgeListString(g.EdgeListString())
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(back) {
			t.Fatal("edge-list round trip mismatch")
		}

		// In/out consistency: (i,j) in out(i) iff i in in(j); degree sums.
		sumIn, sumOut := 0, 0
		for v := 0; v < n; v++ {
			sumIn += g.InDegree(v)
			sumOut += g.OutDegree(v)
			for _, w := range g.OutNeighbors(v) {
				found := false
				for _, x := range back.InNeighbors(w) {
					if x == v {
						found = true
					}
				}
				if !found {
					t.Fatalf("edge (%d,%d) not reflected in InNeighbors", v, w)
				}
			}
		}
		if sumIn != g.NumEdges() || sumOut != g.NumEdges() {
			t.Fatalf("degree sums %d/%d != m=%d", sumIn, sumOut, g.NumEdges())
		}

		// Transpose involution.
		if !g.Transpose().Transpose().Equal(g) {
			t.Fatal("transpose involution failed")
		}

		// SCC partition: components cover all nodes exactly once.
		seen := make(map[int]bool)
		for _, comp := range g.StronglyConnectedComponents() {
			for _, v := range comp {
				if seen[v] {
					t.Fatalf("node %d in two SCCs", v)
				}
				seen[v] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("SCCs cover %d of %d nodes", len(seen), n)
		}
	}
}
