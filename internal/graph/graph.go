// Package graph implements the simple directed graphs of the paper's network
// model (Section 2.1): a set of nodes V = {0, ..., n-1} and directed edges
// without self-loops. Edge (i, j) means node i can transmit to node j.
//
// Graphs are immutable once built; construct them with a Builder or one of
// the generators in internal/topology. Immutability lets the simulation and
// condition-checking packages share a graph across goroutines without locks.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"iabc/internal/nodeset"
)

// Graph is an immutable simple directed graph on nodes 0..n-1.
type Graph struct {
	n   int
	out [][]int // out[i] = sorted out-neighbors N+_i
	in  [][]int // in[i]  = sorted in-neighbors  N-_i

	inSet  []nodeset.Set // inSet[i] = bitset of N-_i
	outSet []nodeset.Set // outSet[i] = bitset of N+_i
	edges  int
}

// Builder accumulates edges for a Graph. The zero value is not usable; use
// NewBuilder.
type Builder struct {
	n   int
	adj []map[int]struct{}
	err error
}

// NewBuilder returns a Builder for a graph on n nodes. n must be at least 1.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n}
	if n < 1 {
		b.err = fmt.Errorf("graph: order must be >= 1, got %d", n)
		return b
	}
	b.adj = make([]map[int]struct{}, n)
	for i := range b.adj {
		b.adj[i] = make(map[int]struct{})
	}
	return b
}

// AddEdge records the directed edge from -> to. Self-loops and out-of-range
// endpoints are deferred errors reported by Build. Duplicate edges are
// ignored (the graph is simple).
func (b *Builder) AddEdge(from, to int) *Builder {
	if b.err != nil {
		return b
	}
	switch {
	case from < 0 || from >= b.n || to < 0 || to >= b.n:
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, b.n)
	case from == to:
		b.err = fmt.Errorf("graph: self-loop (%d,%d) not allowed", from, to)
	default:
		b.adj[from][to] = struct{}{}
	}
	return b
}

// AddUndirected records both (u,v) and (v,u), modeling the undirected graphs
// of Section 6 where each link is a pair of directed edges.
func (b *Builder) AddUndirected(u, v int) *Builder {
	return b.AddEdge(u, v).AddEdge(v, u)
}

// Build finalizes the graph. It returns the first error encountered while
// adding edges.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		n:      b.n,
		out:    make([][]int, b.n),
		in:     make([][]int, b.n),
		inSet:  make([]nodeset.Set, b.n),
		outSet: make([]nodeset.Set, b.n),
	}
	for i := range g.inSet {
		g.inSet[i] = nodeset.New(b.n)
		g.outSet[i] = nodeset.New(b.n)
	}
	for from, tos := range b.adj {
		out := make([]int, 0, len(tos))
		for to := range tos {
			out = append(out, to)
		}
		sort.Ints(out)
		g.out[from] = out
		g.edges += len(out)
		for _, to := range out {
			g.in[to] = append(g.in[to], from)
			g.inSet[to].Add(from)
			g.outSet[from].Add(to)
		}
	}
	for i := range g.in {
		sort.Ints(g.in[i])
	}
	return g, nil
}

// MustBuild is Build that panics on error, for use with statically correct
// construction (tests, generators with validated inputs).
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// InNeighbors returns a copy of N-_i, the nodes with an edge into i, sorted
// ascending.
func (g *Graph) InNeighbors(i int) []int {
	return append([]int(nil), g.in[i]...)
}

// OutNeighbors returns a copy of N+_i, the nodes i has an edge to, sorted
// ascending.
func (g *Graph) OutNeighbors(i int) []int {
	return append([]int(nil), g.out[i]...)
}

// InView returns N-_i sorted ascending, sharing the graph's internal
// storage: callers must not modify the returned slice. The engines' round
// loops use it to avoid the per-call copy of InNeighbors.
func (g *Graph) InView(i int) []int { return g.in[i] }

// OutView returns N+_i sorted ascending, sharing the graph's internal
// storage: callers must not modify the returned slice.
func (g *Graph) OutView(i int) []int { return g.out[i] }

// InDegree returns |N-_i|.
func (g *Graph) InDegree(i int) int { return len(g.in[i]) }

// OutDegree returns |N+_i|.
func (g *Graph) OutDegree(i int) int { return len(g.out[i]) }

// MinInDegree returns the smallest in-degree over all nodes.
func (g *Graph) MinInDegree() int {
	min := g.n
	for i := 0; i < g.n; i++ {
		if d := len(g.in[i]); d < min {
			min = d
		}
	}
	return min
}

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Graph) HasEdge(from, to int) bool {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return false
	}
	return g.outSet[from].Contains(to)
}

// InSet returns a copy of the bitset of in-neighbors of i.
func (g *Graph) InSet(i int) nodeset.Set { return g.inSet[i].Clone() }

// OutSet returns a copy of the bitset of out-neighbors of i.
func (g *Graph) OutSet(i int) nodeset.Set { return g.outSet[i].Clone() }

// CountInFrom returns |N-_v ∩ s| — how many in-neighbors of v lie in s —
// without allocating. This is the hot operation of the condition checker
// (Definition 1 evaluates it for every node in a candidate set).
func (g *Graph) CountInFrom(v int, s nodeset.Set) int {
	return g.inSet[v].IntersectionCount(s)
}

// ForEachEdge calls fn(from, to) for every edge in (from, to) ascending
// order.
func (g *Graph) ForEachEdge(fn func(from, to int)) {
	for from := 0; from < g.n; from++ {
		for _, to := range g.out[from] {
			fn(from, to)
		}
	}
}

// Transpose returns the graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	b := NewBuilder(g.n)
	g.ForEachEdge(func(from, to int) { b.AddEdge(to, from) })
	return b.MustBuild()
}

// IsSymmetric reports whether the graph is undirected in the paper's sense:
// (i,j) in E implies (j,i) in E.
func (g *Graph) IsSymmetric() bool {
	sym := true
	g.ForEachEdge(func(from, to int) {
		if !g.HasEdge(to, from) {
			sym = false
		}
	})
	return sym
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.edges != h.edges {
		return false
	}
	for i := 0; i < g.n; i++ {
		if !g.outSet[i].Equal(h.outSet[i]) {
			return false
		}
	}
	return true
}

// InducedSubgraph returns the subgraph induced by keep, along with the
// mapping from new IDs (0..|keep|-1) to original IDs.
func (g *Graph) InducedSubgraph(keep nodeset.Set) (*Graph, []int, error) {
	orig := keep.Members()
	if len(orig) == 0 {
		return nil, nil, errors.New("graph: induced subgraph of empty set")
	}
	newID := make(map[int]int, len(orig))
	for ni, oi := range orig {
		newID[oi] = ni
	}
	b := NewBuilder(len(orig))
	g.ForEachEdge(func(from, to int) {
		nf, okF := newID[from]
		nt, okT := newID[to]
		if okF && okT {
			b.AddEdge(nf, nt)
		}
	})
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// ReachableFrom returns the set of nodes reachable from start by directed
// paths (including start itself).
func (g *Graph) ReachableFrom(start int) nodeset.Set {
	seen := nodeset.New(g.n)
	if start < 0 || start >= g.n {
		return seen
	}
	stack := []int{start}
	seen.Add(start)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.out[v] {
			if !seen.Contains(w) {
				seen.Add(w)
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// IsStronglyConnected reports whether every node reaches every other node.
func (g *Graph) IsStronglyConnected() bool {
	if g.n == 0 {
		return false
	}
	if g.ReachableFrom(0).Count() != g.n {
		return false
	}
	return g.Transpose().ReachableFrom(0).Count() == g.n
}

// StronglyConnectedComponents returns the SCCs of the graph in reverse
// topological order (Tarjan's algorithm, iterative to avoid deep recursion
// on large path graphs). Each component is a sorted slice of node IDs.
func (g *Graph) StronglyConnectedComponents() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		nextID int
	)

	type frame struct {
		v  int
		ni int // next out-neighbor index to explore
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = nextID
		low[root] = nextID
		nextID++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ni < len(g.out[f.v]) {
				w := g.out[f.v][f.ni]
				f.ni++
				if index[w] == unvisited {
					index[w] = nextID
					low[w] = nextID
					nextID++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Done with v: pop frame, maybe emit a component.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// String returns a compact description like "Graph(n=5, m=20)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.edges)
}
