package graph

// Vertex connectivity via Menger's theorem and unit-capacity max-flow with
// node splitting. The paper contrasts its tight condition against classical
// connectivity bounds (connectivity > 2f suffices for non-iterative
// algorithms [12], yet is not sufficient for the iterative family —
// Sections 6.2 and 6.3); VertexConnectivity lets experiments put numbers on
// that gap.

// VertexConnectivity returns κ(G): the minimum number of nodes whose
// removal disconnects some ordered pair (makes t unreachable from s), or
// n−1 for complete graphs. By Menger's theorem κ(s,t) for non-adjacent
// (s,t) equals the maximum number of internally node-disjoint s→t paths,
// computed here as max-flow on the split graph (each node v becomes
// v_in → v_out with capacity 1; each edge u→v becomes u_out → v_in).
//
// Cost: O(n) max-flow computations of O(κ·E) each — fine for the sizes the
// exact condition checker handles anyway.
func (g *Graph) VertexConnectivity() int {
	n := g.n
	if n < 2 {
		return 0
	}
	complete := true
	for i := 0; i < n && complete; i++ {
		if g.OutDegree(i) != n-1 {
			complete = false
		}
	}
	if complete {
		return n - 1
	}
	best := n - 1
	// κ(G) = min over s of min over non-adjacent t of κ(s, t); a standard
	// refinement checks one fixed s against all t plus all t against s,
	// because a minimum separator avoids at least one node. Scanning all
	// ordered pairs keeps the code obviously correct at O(n²) flows — the
	// condition checker dominates total cost in every caller.
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || g.HasEdge(s, t) {
				continue
			}
			if k := g.maxFlowNodeDisjoint(s, t, best); k < best {
				best = k
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

// maxFlowNodeDisjoint counts internally node-disjoint s→t paths, stopping
// early once the count reaches limit. Split-graph max-flow with unit
// capacities, BFS augmentation (Edmonds–Karp).
func (g *Graph) maxFlowNodeDisjoint(s, t, limit int) int {
	n := g.n
	// Split node v into v_in = 2v, v_out = 2v+1.
	const (
		inSide  = 0
		outSide = 1
	)
	id := func(v, side int) int { return 2*v + side }
	size := 2 * n

	// Residual adjacency as capacity maps: arcs have capacity 1 (node arcs
	// and edge arcs both; unit edge arcs suffice because each endpoint's
	// node arc already limits flow to 1).
	res := make([]map[int]int, size)
	for i := range res {
		res[i] = make(map[int]int)
	}
	addArc := func(u, v int) {
		res[u][v] = 1
		if _, ok := res[v][u]; !ok {
			res[v][u] = 0
		}
	}
	for v := 0; v < n; v++ {
		addArc(id(v, inSide), id(v, outSide))
	}
	g.ForEachEdge(func(from, to int) {
		addArc(id(from, outSide), id(to, inSide))
	})

	source, sink := id(s, outSide), id(t, inSide)
	flow := 0
	prev := make([]int, size)
	for flow < limit {
		// BFS for an augmenting path.
		for i := range prev {
			prev[i] = -1
		}
		prev[source] = source
		queue := []int{source}
		for len(queue) > 0 && prev[sink] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v, c := range res[u] {
				if c > 0 && prev[v] < 0 {
					prev[v] = u
					queue = append(queue, v)
				}
			}
		}
		if prev[sink] < 0 {
			break
		}
		for v := sink; v != source; v = prev[v] {
			u := prev[v]
			res[u][v]--
			res[v][u]++
		}
		flow++
	}
	return flow
}
