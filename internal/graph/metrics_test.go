package graph

import "testing"

func TestDensity(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).MustBuild()
	if got, want := g.Density(), 3.0/12.0; got != want {
		t.Errorf("Density = %v, want %v", got, want)
	}
	if NewBuilder(1).MustBuild().Density() != 0 {
		t.Error("singleton density should be 0")
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"singleton", NewBuilder(1).MustBuild(), 0},
		{"directed cycle 5", func() *Graph {
			b := NewBuilder(5)
			for i := 0; i < 5; i++ {
				b.AddEdge(i, (i+1)%5)
			}
			return b.MustBuild()
		}(), 4},
		{"complete 4", func() *Graph {
			b := NewBuilder(4)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					if i != j {
						b.AddEdge(i, j)
					}
				}
			}
			return b.MustBuild()
		}(), 1},
		{"path not strong", NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).MustBuild(), -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Diameter(); got != tc.want {
				t.Fatalf("Diameter = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestInDegreeHistogram(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 1).AddEdge(2, 1).AddEdge(3, 1).AddEdge(1, 2).MustBuild()
	hist := g.InDegreeHistogram()
	// in-degrees: node0=0, node1=3, node2=1, node3=0.
	want := []int{2, 1, 0, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
}

func TestUndirectedEdgeCount(t *testing.T) {
	g := NewBuilder(3).AddUndirected(0, 1).AddEdge(1, 2).MustBuild()
	// One mutual pair (0,1) + one one-way (1,2).
	if got := g.UndirectedEdgeCount(); got != 2 {
		t.Fatalf("UndirectedEdgeCount = %d, want 2", got)
	}
}
