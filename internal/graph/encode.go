package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The textual edge-list format is:
//
//	# optional comments
//	n <order>
//	<from> <to>
//	...
//
// One edge per line. It is the interchange format of cmd/iabc and the
// topologyaudit example.

// WriteEdgeList writes the graph in edge-list format.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.n); err != nil {
		return err
	}
	var err error
	g.ForEachEdge(func(from, to int) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", from, to)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// EdgeListString returns the edge-list encoding as a string.
func (g *Graph) EdgeListString() string {
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		// strings.Builder never errors; keep the invariant visible.
		panic(err)
	}
	return sb.String()
}

// Encode returns the graph's canonical encoding: a compact single-line
// string determined entirely by the node and edge sets — "g1:<n>;" followed
// by each node's sorted out-neighbor list ("0>2,5;1>0;…", edge-free nodes
// omitted). Two graphs encode equally iff Graph.Equal holds, independent of
// construction order, so the encoding is a sound identity key for caches of
// graph-determined results (the condition package's verdict cache keys on
// it; Theorem 1's verdict is a pure function of (G, f, threshold)).
//
// The "g1" prefix versions the format: any future change to the encoding
// must bump it so stale persisted keys miss instead of aliasing.
func (g *Graph) Encode() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "g1:%d", g.n)
	for i := 0; i < g.n; i++ {
		if len(g.out[i]) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";%d>", i)
		for k, to := range g.out[i] {
			if k > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", to)
		}
	}
	return sb.String()
}

// ParseEdgeList reads a graph in edge-list format.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if b == nil {
			var n int
			if _, err := fmt.Sscanf(text, "n %d", &n); err != nil {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <order>\", got %q", line, text)
			}
			b = NewBuilder(n)
			continue
		}
		var from, to int
		if _, err := fmt.Sscanf(text, "%d %d", &from, &to); err != nil {
			return nil, fmt.Errorf("graph: line %d: expected \"<from> <to>\", got %q", line, text)
		}
		b.AddEdge(from, to)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	return b.Build()
}

// ParseEdgeListString parses the edge-list format from a string.
func ParseEdgeListString(s string) (*Graph, error) {
	return ParseEdgeList(strings.NewReader(s))
}

// DOT renders the graph in Graphviz DOT syntax. Symmetric edge pairs are
// collapsed into a single undirected-looking edge (dir=both) to keep the
// drawings of Section 6 graphs readable.
func (g *Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	for i := 0; i < g.n; i++ {
		fmt.Fprintf(&sb, "  %d;\n", i)
	}
	g.ForEachEdge(func(from, to int) {
		if g.HasEdge(to, from) {
			if from < to {
				fmt.Fprintf(&sb, "  %d -> %d [dir=both];\n", from, to)
			}
			return
		}
		fmt.Fprintf(&sb, "  %d -> %d;\n", from, to)
	})
	sb.WriteString("}\n")
	return sb.String()
}
