package topology

import (
	"math/rand"
	"testing"
)

func TestComplete(t *testing.T) {
	g, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.NumEdges() != 20 {
		t.Fatalf("got %s, want n=5 m=20", g)
	}
	for i := 0; i < 5; i++ {
		if g.InDegree(i) != 4 || g.OutDegree(i) != 4 {
			t.Fatalf("node %d degrees (%d,%d), want (4,4)", i, g.InDegree(i), g.OutDegree(i))
		}
	}
	if !g.IsSymmetric() {
		t.Error("complete graph should be symmetric")
	}
	if _, err := Complete(0); err == nil {
		t.Error("Complete(0) should error")
	}
}

func TestCoreNetwork(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}, {8, 1}, {13, 4}} {
		g, err := CoreNetwork(tc.n, tc.f)
		if err != nil {
			t.Fatalf("CoreNetwork(%d,%d): %v", tc.n, tc.f, err)
		}
		k := 2*tc.f + 1
		if g.N() != tc.n {
			t.Fatalf("n = %d, want %d", g.N(), tc.n)
		}
		if !g.IsSymmetric() {
			t.Errorf("CoreNetwork(%d,%d) not symmetric", tc.n, tc.f)
		}
		// Core members: linked to all other core members and all outside nodes.
		for i := 0; i < k; i++ {
			if got, want := g.InDegree(i), tc.n-1; got != want {
				t.Errorf("core node %d in-degree %d, want %d", i, got, want)
			}
		}
		// Peripheral members: linked to exactly the core.
		for v := k; v < tc.n; v++ {
			if got := g.InDegree(v); got != k {
				t.Errorf("peripheral node %d in-degree %d, want %d", v, got, k)
			}
			for u := 0; u < k; u++ {
				if !g.HasEdge(v, u) || !g.HasEdge(u, v) {
					t.Errorf("missing core link %d<->%d", v, u)
				}
			}
		}
	}
}

func TestCoreNetworkErrors(t *testing.T) {
	if _, err := CoreNetwork(3, 1); err == nil {
		t.Error("n = 3f should error")
	}
	if _, err := CoreNetwork(4, -1); err == nil {
		t.Error("negative f should error")
	}
}

func TestCoreNetworkDegenerate(t *testing.T) {
	// f = 0: core is a single node, everyone links to it.
	g, err := CoreNetwork(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.InDegree(0) != 3 {
		t.Fatalf("hub in-degree = %d, want 3", g.InDegree(0))
	}
	for v := 1; v < 4; v++ {
		if g.InDegree(v) != 1 {
			t.Fatalf("leaf %d in-degree = %d, want 1", v, g.InDegree(v))
		}
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 6; d++ {
		g, err := Hypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 1<<uint(d) {
			t.Fatalf("d=%d: n = %d", d, g.N())
		}
		for i := 0; i < g.N(); i++ {
			if g.InDegree(i) != d || g.OutDegree(i) != d {
				t.Fatalf("d=%d node %d degree (%d,%d), want (%d,%d)", d, i, g.InDegree(i), g.OutDegree(i), d, d)
			}
		}
		if !g.IsSymmetric() {
			t.Errorf("hypercube d=%d not symmetric", d)
		}
		if !g.IsStronglyConnected() {
			t.Errorf("hypercube d=%d not strongly connected", d)
		}
	}
	// Adjacency is exactly single-bit difference.
	g, err := Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 4) || g.HasEdge(0, 3) || g.HasEdge(0, 7) {
		t.Error("hypercube adjacency wrong")
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) should error")
	}
	if _, err := Hypercube(21); err == nil {
		t.Error("Hypercube(21) should error")
	}
}

func TestChord(t *testing.T) {
	// Definition 5: edge (i, i+k mod n) for 1 <= k <= 2f+1.
	g, err := Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 {
		t.Fatalf("n = %d", g.N())
	}
	for i := 0; i < 7; i++ {
		if g.OutDegree(i) != 5 || g.InDegree(i) != 5 {
			t.Fatalf("node %d degrees (%d,%d), want (5,5)", i, g.InDegree(i), g.OutDegree(i))
		}
		for k := 1; k <= 5; k++ {
			if !g.HasEdge(i, (i+k)%7) {
				t.Fatalf("missing chord edge (%d,%d)", i, (i+k)%7)
			}
		}
	}
	// f=1, n=4 chord is the complete graph (paper, Section 6.3).
	c4, err := Chord(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if !c4.Equal(k4) {
		t.Error("Chord(4,1) should be the complete graph K4")
	}
	if _, err := Chord(5, 2); err == nil {
		t.Error("Chord with n <= 2f+1 should error")
	}
	if _, err := Chord(5, -1); err == nil {
		t.Error("Chord with negative f should error")
	}
}

func TestCirculant(t *testing.T) {
	g, err := Circulant(6, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(0, 3) || g.HasEdge(0, 1) {
		t.Error("circulant offsets wrong")
	}
	if _, err := Circulant(6, []int{0}); err == nil {
		t.Error("offset 0 should error")
	}
	if _, err := Circulant(6, []int{6}); err == nil {
		t.Error("offset n should error")
	}
}

func TestRings(t *testing.T) {
	r, err := UndirectedRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsSymmetric() || r.NumEdges() != 10 {
		t.Errorf("ring: symmetric=%v m=%d", r.IsSymmetric(), r.NumEdges())
	}
	c, err := DirectedCycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != 5 || !c.IsStronglyConnected() {
		t.Errorf("cycle: m=%d strong=%v", c.NumEdges(), c.IsStronglyConnected())
	}
	if _, err := UndirectedRing(2); err == nil {
		t.Error("ring n=2 should error")
	}
	if _, err := DirectedCycle(1); err == nil {
		t.Error("cycle n=1 should error")
	}
}

func TestWheelAndStar(t *testing.T) {
	w, err := Wheel(6)
	if err != nil {
		t.Fatal(err)
	}
	if w.InDegree(0) != 5 {
		t.Errorf("wheel hub in-degree = %d, want 5", w.InDegree(0))
	}
	for i := 1; i < 6; i++ {
		if w.InDegree(i) != 3 {
			t.Errorf("wheel rim %d in-degree = %d, want 3", i, w.InDegree(i))
		}
	}
	s, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.InDegree(0) != 4 || s.InDegree(1) != 1 {
		t.Error("star degrees wrong")
	}
	if _, err := Wheel(3); err == nil {
		t.Error("wheel n=3 should error")
	}
	if _, err := Star(1); err == nil {
		t.Error("star n=1 should error")
	}
}

func TestGridAndTorus(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || !g.IsSymmetric() {
		t.Errorf("grid: n=%d symmetric=%v", g.N(), g.IsSymmetric())
	}
	// Corner has degree 2, center degree 4.
	if g.InDegree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", g.InDegree(0))
	}
	if g.InDegree(5) != 4 {
		t.Errorf("center degree = %d, want 4", g.InDegree(5))
	}
	tor, err := Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tor.N(); i++ {
		if tor.InDegree(i) != 4 {
			t.Fatalf("torus node %d degree %d, want 4", i, tor.InDegree(i))
		}
	}
	if _, err := Grid(0, 3); err == nil {
		t.Error("grid 0 rows should error")
	}
	if _, err := Torus(2, 3); err == nil {
		t.Error("torus 2 rows should error")
	}
}

func TestRandomDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := RandomDigraph(20, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	maxEdges := 20 * 19
	if g.NumEdges() == 0 || g.NumEdges() == maxEdges {
		t.Errorf("p=0.5 digraph has degenerate edge count %d", g.NumEdges())
	}
	// Determinism: same seed, same graph.
	g2, err := RandomDigraph(20, 0.5, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Error("same seed produced different graphs")
	}
	full, err := RandomDigraph(5, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumEdges() != 20 {
		t.Errorf("p=1 should be complete, m=%d", full.NumEdges())
	}
	if _, err := RandomDigraph(5, 1.5, rng); err == nil {
		t.Error("p>1 should error")
	}
	if _, err := RandomDigraph(5, 0.5, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestRandomInRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomInRegular(10, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if g.InDegree(i) != 4 {
			t.Fatalf("node %d in-degree %d, want 4", i, g.InDegree(i))
		}
	}
	if _, err := RandomInRegular(5, 5, rng); err == nil {
		t.Error("d >= n should error")
	}
	if _, err := RandomInRegular(5, 2, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestRemoveAddEdges(t *testing.T) {
	g, err := Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := RemoveEdges(g, [][2]int{{0, 1}, {2, 3}, {9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if removed.HasEdge(0, 1) || removed.HasEdge(2, 3) {
		t.Error("edges not removed")
	}
	if removed.NumEdges() != g.NumEdges()-2 {
		t.Errorf("m = %d, want %d", removed.NumEdges(), g.NumEdges()-2)
	}
	back, err := AddEdges(removed, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("add after remove should restore the graph")
	}
	if _, err := AddEdges(removed, [][2]int{{0, 0}}); err == nil {
		t.Error("adding a self-loop should error")
	}
}
