package topology

import (
	"fmt"

	"iabc/internal/graph"
)

// Additional families used by the extension experiments and tests.

// CompleteBipartite builds K_{a,b}: every left node linked (undirected) to
// every right node, none within a side. Bipartite graphs are a stress case
// for the condition: each side is insulated from itself.
func CompleteBipartite(a, b int) (*graph.Graph, error) {
	if a < 1 || b < 1 {
		return nil, fmt.Errorf("topology: bipartite sides must be ≥ 1, got %d,%d", a, b)
	}
	bd := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			bd.AddUndirected(i, j)
		}
	}
	return bd.Build()
}

// Barbell builds two k-cliques joined by a path of bridge nodes — the
// canonical "two communities, thin pipe" topology that the Theorem 1
// condition rejects for f ≥ 1. bridge = 0 joins the cliques directly with a
// single undirected edge.
func Barbell(k, bridge int) (*graph.Graph, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: barbell cliques need k ≥ 2, got %d", k)
	}
	if bridge < 0 {
		return nil, fmt.Errorf("topology: negative bridge length %d", bridge)
	}
	n := 2*k + bridge
	b := graph.NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddUndirected(i, j)     // left clique: 0..k-1
			b.AddUndirected(k+i, k+j) // right clique: k..2k-1
		}
	}
	// Chain: left clique's node k-1 — bridge nodes 2k..2k+bridge-1 — right
	// clique's node k.
	prev := k - 1
	for t := 0; t < bridge; t++ {
		b.AddUndirected(prev, 2*k+t)
		prev = 2*k + t
	}
	b.AddUndirected(prev, k)
	return b.Build()
}

// KAryTree builds a complete k-ary tree with n nodes, edges undirected
// (parent i has children ki+1 .. ki+k). Trees have leaves of degree 1 and
// thus never tolerate f ≥ 1.
func KAryTree(n, k int) (*graph.Graph, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("topology: k-ary tree needs n ≥ 1, k ≥ 1, got n=%d k=%d", n, k)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for c := 1; c <= k; c++ {
			child := k*i + c
			if child < n {
				b.AddUndirected(i, child)
			}
		}
	}
	return b.Build()
}

// PFCN builds a Partially Fully Connected Network in the spirit of
// Azadmanesh & Bajwa's construction cited by the paper ([1]): a fully
// connected backbone of hubs, with each non-hub node attached (undirected)
// to every hub but to no other non-hub. With hubs = 2f+1 this coincides
// with the paper's core network; larger hub counts trade edges for
// robustness margin.
func PFCN(n, hubs int) (*graph.Graph, error) {
	if hubs < 1 || hubs > n {
		return nil, fmt.Errorf("topology: PFCN needs 1 ≤ hubs ≤ n, got hubs=%d n=%d", hubs, n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < hubs; i++ {
		for j := i + 1; j < hubs; j++ {
			b.AddUndirected(i, j)
		}
	}
	for v := hubs; v < n; v++ {
		for u := 0; u < hubs; u++ {
			b.AddUndirected(v, u)
		}
	}
	return b.Build()
}
