package topology

import "testing"

func TestCompleteBipartite(t *testing.T) {
	g, err := CompleteBipartite(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.NumEdges() != 12 { // 2*3 undirected = 12 directed
		t.Fatalf("K_{2,3}: n=%d m=%d", g.N(), g.NumEdges())
	}
	if g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Error("within-side edges present")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(4, 1) {
		t.Error("cross-side edges missing")
	}
	if _, err := CompleteBipartite(0, 3); err == nil {
		t.Error("empty side should error")
	}
}

func TestBarbell(t *testing.T) {
	g, err := Barbell(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("n = %d, want 8", g.N())
	}
	if !g.HasEdge(3, 4) || !g.HasEdge(4, 3) {
		t.Error("direct bridge missing")
	}
	if !g.IsStronglyConnected() {
		t.Error("barbell should be strongly connected")
	}

	g2, err := Barbell(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 8 {
		t.Fatalf("bridged barbell n = %d, want 8", g2.N())
	}
	// Chain: 2 - 6 - 7 - 3.
	for _, e := range [][2]int{{2, 6}, {6, 7}, {7, 3}} {
		if !g2.HasEdge(e[0], e[1]) || !g2.HasEdge(e[1], e[0]) {
			t.Errorf("bridge edge %v missing", e)
		}
	}
	if _, err := Barbell(1, 0); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := Barbell(3, -1); err == nil {
		t.Error("negative bridge should error")
	}
}

func TestKAryTree(t *testing.T) {
	g, err := KAryTree(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Complete binary tree on 7 nodes: root degree 2, internals 3, leaves 1.
	if g.InDegree(0) != 2 {
		t.Errorf("root degree = %d, want 2", g.InDegree(0))
	}
	if g.InDegree(1) != 3 {
		t.Errorf("internal degree = %d, want 3", g.InDegree(1))
	}
	if g.InDegree(6) != 1 {
		t.Errorf("leaf degree = %d, want 1", g.InDegree(6))
	}
	if !g.IsSymmetric() {
		t.Error("tree should be symmetric")
	}
	if _, err := KAryTree(0, 2); err == nil {
		t.Error("n=0 should error")
	}
}

func TestPFCNMatchesCoreNetworkAtMinimalHubs(t *testing.T) {
	pf, err := PFCN(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := CoreNetwork(7, 2) // core size 2f+1 = 5
	if err != nil {
		t.Fatal(err)
	}
	if !pf.Equal(cn) {
		t.Error("PFCN(n, 2f+1) should equal CoreNetwork(n, f)")
	}
	if _, err := PFCN(4, 0); err == nil {
		t.Error("hubs=0 should error")
	}
	if _, err := PFCN(4, 5); err == nil {
		t.Error("hubs>n should error")
	}
}

func TestPFCNAllHubsIsComplete(t *testing.T) {
	pf, err := PFCN(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	k5, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if !pf.Equal(k5) {
		t.Error("PFCN(n, n) should be the complete graph")
	}
}
