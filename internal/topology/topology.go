// Package topology generates the graph families studied in the paper's
// Section 6 (core networks, hypercubes, chord networks) plus standard
// families used by the test suite, benchmarks, and examples (complete
// graphs, rings, circulants, grids, random digraphs).
//
// All generators return immutable *graph.Graph values; randomized generators
// take an explicit *rand.Rand so every experiment is reproducible.
package topology

import (
	"fmt"
	"math/rand"

	"iabc/internal/graph"
)

// Complete returns the complete directed graph on n nodes: every ordered
// pair (i, j), i != j, is an edge. Requires n >= 1.
func Complete(n int) (*graph.Graph, error) {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// CoreNetwork builds the paper's Definition 4 on n nodes: nodes 0..2f (the
// core K, |K| = 2f+1) form a clique, and every node outside K has undirected
// links to all of K. Requires n > 3f and f >= 0.
//
// The paper conjectures that with n = 3f+1 this is edge-minimal among
// undirected graphs admitting iterative approximate consensus.
func CoreNetwork(n, f int) (*graph.Graph, error) {
	if f < 0 {
		return nil, fmt.Errorf("topology: core network needs f >= 0, got %d", f)
	}
	if n <= 3*f {
		return nil, fmt.Errorf("topology: core network needs n > 3f (n=%d, f=%d)", n, f)
	}
	k := 2*f + 1
	b := graph.NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddUndirected(i, j)
		}
	}
	for v := k; v < n; v++ {
		for u := 0; u < k; u++ {
			b.AddUndirected(v, u)
		}
	}
	return b.Build()
}

// Hypercube builds the d-dimensional binary hypercube (Section 6.2, Fig. 3):
// 2^d nodes; i and j adjacent (in both directions) iff their labels differ
// in exactly one bit. Requires 1 <= d <= 20.
func Hypercube(d int) (*graph.Graph, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("topology: hypercube dimension must be in [1,20], got %d", d)
	}
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for bit := 0; bit < d; bit++ {
			j := i ^ (1 << uint(bit))
			if i < j {
				b.AddUndirected(i, j)
			}
		}
	}
	return b.Build()
}

// Chord builds the paper's Definition 5: a directed graph on nodes
// 0..n-1 with edges (i, (i+k) mod n) for 1 <= k <= 2f+1. Requires n > 2f+1
// so that the offsets are distinct (the paper additionally assumes n > 3f
// when asking whether consensus is possible, but the topology itself only
// needs distinct offsets).
func Chord(n, f int) (*graph.Graph, error) {
	if f < 0 {
		return nil, fmt.Errorf("topology: chord needs f >= 0, got %d", f)
	}
	if n <= 2*f+1 {
		return nil, fmt.Errorf("topology: chord needs n > 2f+1 (n=%d, f=%d)", n, f)
	}
	return Circulant(n, offsets(2*f+1))
}

// offsets returns [1, 2, ..., k].
func offsets(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Circulant builds a directed circulant graph: edge (i, (i+k) mod n) for
// every offset k in offs. Offsets must be in [1, n-1]; duplicates collapse.
func Circulant(n int, offs []int) (*graph.Graph, error) {
	b := graph.NewBuilder(n)
	for _, k := range offs {
		if k < 1 || k >= n {
			return nil, fmt.Errorf("topology: circulant offset %d out of range [1,%d)", k, n)
		}
		for i := 0; i < n; i++ {
			b.AddEdge(i, (i+k)%n)
		}
	}
	return b.Build()
}

// UndirectedRing builds the cycle graph on n nodes with each undirected link
// realized as two directed edges. Requires n >= 3.
func UndirectedRing(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs n >= 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddUndirected(i, (i+1)%n)
	}
	return b.Build()
}

// DirectedCycle builds the directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func DirectedCycle(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: directed cycle needs n >= 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Wheel builds a hub node 0 connected (undirected) to every rim node, with
// the rim 1..n-1 forming an undirected cycle. Requires n >= 4.
func Wheel(n int) (*graph.Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("topology: wheel needs n >= 4, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddUndirected(0, i)
	}
	for i := 1; i < n; i++ {
		next := i + 1
		if next == n {
			next = 1
		}
		b.AddUndirected(i, next)
	}
	return b.Build()
}

// Star builds hub node 0 with undirected links to every other node.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs n >= 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddUndirected(0, i)
	}
	return b.Build()
}

// Grid builds a rows x cols undirected grid (4-neighborhood).
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddUndirected(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddUndirected(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Build()
}

// Torus builds a rows x cols undirected torus (grid with wraparound).
// Requires rows, cols >= 3 so wrap edges are distinct.
func Torus(rows, cols int) (*graph.Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topology: torus needs dimensions >= 3, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddUndirected(id(r, c), id((r+1)%rows, c))
			b.AddUndirected(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.Build()
}

// RandomDigraph builds a directed Erdős–Rényi graph: each ordered pair
// (i, j), i != j, is an edge independently with probability p.
func RandomDigraph(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: probability %v out of [0,1]", p)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: nil rng (pass rand.New(rand.NewSource(seed)))")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// RandomInRegular builds a random digraph where every node has in-degree
// exactly d: each node selects d distinct in-neighbors uniformly at random.
// Requires 1 <= d <= n-1.
func RandomInRegular(n, d int, rng *rand.Rand) (*graph.Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("topology: in-degree %d out of [1,%d)", d, n)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: nil rng (pass rand.New(rand.NewSource(seed)))")
	}
	b := graph.NewBuilder(n)
	others := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		others = others[:0]
		for u := 0; u < n; u++ {
			if u != v {
				others = append(others, u)
			}
		}
		rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
		for _, u := range others[:d] {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// RemoveEdges returns a copy of g with the listed directed edges removed.
// Missing edges are ignored. Used to perturb topologies in robustness
// studies.
func RemoveEdges(g *graph.Graph, drop [][2]int) (*graph.Graph, error) {
	gone := make(map[[2]int]bool, len(drop))
	for _, e := range drop {
		gone[e] = true
	}
	b := graph.NewBuilder(g.N())
	g.ForEachEdge(func(from, to int) {
		if !gone[[2]int{from, to}] {
			b.AddEdge(from, to)
		}
	})
	return b.Build()
}

// AddEdges returns a copy of g with the listed directed edges added.
func AddEdges(g *graph.Graph, add [][2]int) (*graph.Graph, error) {
	b := graph.NewBuilder(g.N())
	g.ForEachEdge(func(from, to int) { b.AddEdge(from, to) })
	for _, e := range add {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
