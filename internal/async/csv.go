package async

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV emits the asynchronous range history as a CSV time series —
// the data behind range-vs-simulation-time convergence figures. Columns:
// time, range.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "range"}); err != nil {
		return err
	}
	for _, p := range t.History {
		row := []string{
			strconv.FormatFloat(p.Time, 'g', 17, 64),
			strconv.FormatFloat(p.Range, 'g', 17, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
