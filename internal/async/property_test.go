package async

import (
	"context"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
	"iabc/internal/workload"
)

// TestRandomConfigurationsStaySafe is the asynchronous safety property
// sampled across random dense digraphs: whatever the delays and the
// Byzantine strategy, fault-free states never leave the initial honest
// hull, and every run terminates in a classified state (converged, stalled,
// or round-capped) rather than hanging.
func TestRandomConfigurationsStaySafe(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	ran := 0
	for trial := 0; trial < 60 && ran < 20; trial++ {
		n := 5 + rng.Intn(5) // 5..9
		f := rng.Intn(2)     // 0..1
		g, err := topology.RandomDigraph(n, 0.8+0.2*rng.Float64(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.MinInDegree() < 3*f+1 {
			continue
		}
		faulty := nodeset.New(n)
		if f > 0 {
			faulty.Add(rng.Intn(n))
		}
		initial := workload.Uniform(n, -5, 5, rng)
		lo, hi := 5.0, -5.0
		faulty.Complement().ForEach(func(i int) bool {
			if initial[i] < lo {
				lo = initial[i]
			}
			if initial[i] > hi {
				hi = initial[i]
			}
			return true
		})

		strategies := []adversary.Strategy{
			adversary.Fixed{Value: 1e9},
			adversary.Silent{},
			&adversary.RandomNoise{Rng: rand.New(rand.NewSource(int64(trial))), Lo: -1e6, Hi: 1e6},
		}
		strat := strategies[rng.Intn(len(strategies))]

		delays := []DelayPolicy{
			Fixed{D: 1},
			&Uniform{B: 3, Rng: rand.New(rand.NewSource(int64(trial) + 1))},
			Targeted{Slow: nodeset.FromMembers(n, 0, 1), B: 10, Fast: 0.2},
		}
		tr, err := Run(context.Background(), Config{
			G: g, F: f, Faulty: faulty, Initial: initial,
			Rule:      core.TrimmedMean{},
			Adversary: strat,
			Delays:    delays[rng.Intn(len(delays))],
			MaxRounds: 300, Epsilon: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		ran++
		faulty.Complement().ForEach(func(i int) bool {
			if tr.Final[i] < lo-1e-9 || tr.Final[i] > hi+1e-9 {
				t.Errorf("trial %d: node %d final %v escaped honest hull [%v,%v] under %s",
					trial, i, tr.Final[i], lo, hi, strat.Name())
			}
			return true
		})
		for _, p := range tr.History {
			if p.Range > (hi-lo)+1e-9 {
				t.Errorf("trial %d: range %v exceeded initial %v", trial, p.Range, hi-lo)
			}
		}
	}
	if ran < 10 {
		t.Fatalf("only %d configurations exercised", ran)
	}
}
