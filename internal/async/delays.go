// Package async implements the Section 7 extension: iterative approximate
// Byzantine consensus over asynchronous networks. Messages are tagged with
// the sender's round; a fault-free node advances from round t once it holds
// round-t values from |N⁻_i| − f distinct in-neighbors (it cannot wait for
// all — up to f faulty in-neighbors may stay silent forever), trims the f
// smallest and f largest, and averages the survivors with its own state.
//
// Because the received vector has |N⁻_i| − f entries, the update is exactly
// core.TrimmedMean with that shorter vector: the weight becomes
// 1/(|N⁻_i| − 3f + 1), well-defined precisely when |N⁻_i| ≥ 3f + 1 — the
// strengthened in-degree requirement the paper derives for asynchrony
// (with n > 5f and the 2f+1-threshold version of Theorem 1, see
// condition.CheckAsync).
//
// The engine is a deterministic discrete-event simulator: a DelayPolicy
// assigns every message a delay in (0, B], modeling the partially
// asynchronous network of Bertsekas–Tsitsiklis cited by the paper;
// adversarial policies can starve chosen links up to the bound.
package async

import (
	"fmt"
	"math/rand"

	"iabc/internal/hashrand"
	"iabc/internal/nodeset"
)

// DelayPolicy assigns a delivery delay to each message. Implementations
// must be deterministic given their configuration; randomized policies take
// an explicit seeded *rand.Rand. Returned delays must be positive.
type DelayPolicy interface {
	// Delay returns the network delay for the round-tagged message sent
	// from -> to.
	Delay(from, to, round int) float64
	// Name identifies the policy in traces.
	Name() string
}

// Fixed delivers every message after exactly D time units — asynchrony
// degenerating to lockstep; useful as a control.
type Fixed struct {
	D float64
}

var _ DelayPolicy = Fixed{}

// Name implements DelayPolicy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%g)", f.D) }

// Delay implements DelayPolicy.
func (f Fixed) Delay(int, int, int) float64 { return f.D }

// Uniform draws each delay independently and uniformly from (0, B].
//
// Uniform is NOT safe for concurrent callers: successive Delay calls
// advance the shared *rand.Rand stream, which is stateful and unlocked.
// That is fine inside the discrete-event engine — Delay is only ever
// invoked from the single event-loop goroutine — but it must not be handed
// to code that evaluates delays from multiple goroutines (the node-actor
// cluster, a parallel sweep's per-worker chaos). For those, use Jitter:
// the same marginal distribution, computed statelessly per message.
type Uniform struct {
	B   float64
	Rng *rand.Rand
}

var _ DelayPolicy = (*Uniform)(nil)

// Name implements DelayPolicy.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(0,%g]", u.B) }

// Delay implements DelayPolicy.
func (u *Uniform) Delay(int, int, int) float64 {
	return u.B * (1 - u.Rng.Float64()) // in (0, B]
}

// Jitter draws each delay from (0, B] like Uniform, but statelessly: the
// delay of a message is a pure function of (Seed, from, to, round) through
// the hashrand keyed generator, so there is no rng stream to advance and no
// lock to take. Any number of goroutines may call Delay concurrently, and a
// run is reproducible from Seed alone regardless of evaluation order — the
// delay policy to use wherever concurrency makes Uniform's shared stream
// unsound.
type Jitter struct {
	B    float64
	Seed int64
}

var _ DelayPolicy = Jitter{}

// Name implements DelayPolicy.
func (j Jitter) Name() string { return fmt.Sprintf("jitter(0,%g;seed=%d)", j.B, j.Seed) }

// Delay implements DelayPolicy: B·(1 − u) in (0, B] with u the keyed
// uniform variate of (Seed, from, to, round).
func (j Jitter) Delay(from, to, round int) float64 {
	return j.B * (1 - hashrand.Unit(j.Seed, uint64(from), uint64(to), uint64(round)))
}

// Targeted is the adversarial scheduler: messages originating from nodes in
// Slow are delayed by the full bound B; all other messages arrive after
// Fast. It starves receivers of chosen senders' values for as long as the
// model permits — the worst case the |N⁻_i| − f quorum must absorb.
type Targeted struct {
	Slow nodeset.Set
	B    float64
	Fast float64
}

var _ DelayPolicy = Targeted{}

// Name implements DelayPolicy.
func (t Targeted) Name() string { return fmt.Sprintf("targeted(slow=%v)", t.Slow) }

// Delay implements DelayPolicy.
func (t Targeted) Delay(from, _, _ int) float64 {
	if t.Slow.Contains(from) {
		return t.B
	}
	return t.Fast
}
