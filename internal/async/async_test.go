package async

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

func initialRamp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{
		G: g, F: 1, Initial: initialRamp(7), Rule: core.TrimmedMean{},
		Delays: Fixed{D: 1}, MaxRounds: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"nil graph", func(c *Config) { c.G = nil }},
		{"bad initial", func(c *Config) { c.Initial = nil }},
		{"nil rule", func(c *Config) { c.Rule = nil }},
		{"nil delays", func(c *Config) { c.Delays = nil }},
		{"zero rounds", func(c *Config) { c.MaxRounds = 0 }},
		{"negative F", func(c *Config) { c.F = -1 }},
		{"faulty capacity", func(c *Config) { c.Faulty = nodeset.FromMembers(3, 0) }},
		{"faulty no adversary", func(c *Config) { c.Faulty = nodeset.FromMembers(7, 0) }},
		{"all faulty", func(c *Config) {
			c.Faulty = nodeset.Universe(7)
			c.Adversary = adversary.Fixed{Value: 0}
		}},
		// Quorum = in-degree − F = 6−2 = 4 < 2F+1 = 5: async needs
		// in-degree ≥ 3f+1 = 7 > 6.
		{"in-degree below 3f+1", func(c *Config) { c.F = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestDelayPolicies(t *testing.T) {
	if d := (Fixed{D: 2.5}).Delay(0, 1, 3); d != 2.5 {
		t.Errorf("Fixed delay = %v", d)
	}
	u := &Uniform{B: 3, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 100; i++ {
		d := u.Delay(0, 1, i)
		if d <= 0 || d > 3 {
			t.Fatalf("uniform delay %v outside (0,3]", d)
		}
	}
	tg := Targeted{Slow: nodeset.FromMembers(4, 2), B: 10, Fast: 0.5}
	if d := tg.Delay(2, 0, 0); d != 10 {
		t.Errorf("slow sender delay = %v, want 10", d)
	}
	if d := tg.Delay(1, 0, 0); d != 0.5 {
		t.Errorf("fast sender delay = %v, want 0.5", d)
	}
	for _, p := range []DelayPolicy{Fixed{D: 1}, u, tg} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

func TestAsyncConvergesNoFaults(t *testing.T) {
	g, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), Config{
		G: g, F: 0, Initial: initialRamp(6), Rule: core.TrimmedMean{},
		Delays:    &Uniform{B: 2, Rng: rand.New(rand.NewSource(3))},
		MaxRounds: 200, Epsilon: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("no convergence; history tail %v", tr.History[len(tr.History)-1])
	}
	if tr.Stalled {
		t.Error("converged run marked stalled")
	}
}

func TestAsyncConvergesUnderByzantineFault(t *testing.T) {
	// K7 with f=1 satisfies the async requirements: in-degree 6 ≥ 3f+1,
	// n = 7 > 5f.
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []adversary.Strategy{
		adversary.Fixed{Value: 1e6},
		adversary.Silent{},
		adversary.Extremes{Amplitude: 100},
		&adversary.RandomNoise{Rng: rand.New(rand.NewSource(4)), Lo: -50, Hi: 50},
	} {
		tr, err := Run(context.Background(), Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(7, 6),
			Initial: initialRamp(7), Rule: core.TrimmedMean{},
			Adversary: strat,
			Delays:    &Uniform{B: 1.5, Rng: rand.New(rand.NewSource(5))},
			MaxRounds: 500, Epsilon: 1e-8,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if !tr.Converged {
			t.Errorf("%s: no convergence (stalled=%v)", strat.Name(), tr.Stalled)
		}
		// Validity: fault-free finals inside the initial fault-free hull.
		for i := 0; i < 6; i++ {
			if tr.Final[i] < -1e-9 || tr.Final[i] > 5+1e-9 {
				t.Errorf("%s: node %d final %v outside [0,5]", strat.Name(), i, tr.Final[i])
			}
		}
	}
}

func TestAsyncAdversarialDelays(t *testing.T) {
	// Messages from half the fault-free nodes maximally delayed: the quorum
	// mechanism must still deliver convergence.
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), Config{
		G: g, F: 1, Faulty: nodeset.FromMembers(7, 0),
		Initial: initialRamp(7), Rule: core.TrimmedMean{},
		Adversary: adversary.Hug{High: true},
		Delays: Targeted{
			Slow: nodeset.FromMembers(7, 1, 2, 3),
			B:    20, Fast: 0.1,
		},
		MaxRounds: 800, Epsilon: 1e-7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("no convergence under targeted delays (stalled=%v)", tr.Stalled)
	}
}

func TestAsyncStallsWhenTooManySilent(t *testing.T) {
	// Two silent nodes with F=1: quorum 6−1=5 but only 4 fault-free
	// in-neighbors respond for every node — permanent starvation, which the
	// engine must report as a stall, not loop forever.
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), Config{
		G: g, F: 1, Faulty: nodeset.FromMembers(7, 5, 6),
		Initial: initialRamp(7), Rule: core.TrimmedMean{},
		Adversary: adversary.Silent{},
		Delays:    Fixed{D: 1},
		MaxRounds: 50, Epsilon: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Converged {
		t.Fatal("should not converge")
	}
	if !tr.Stalled {
		t.Fatal("starved run not marked stalled")
	}
}

func TestAsyncDeterminism(t *testing.T) {
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Trace {
		tr, err := Run(context.Background(), Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(7, 3),
			Initial: initialRamp(7), Rule: core.TrimmedMean{},
			Adversary: &adversary.RandomNoise{Rng: rand.New(rand.NewSource(8)), Lo: -10, Hi: 10},
			Delays:    &Uniform{B: 2, Rng: rand.New(rand.NewSource(9))},
			MaxRounds: 100, Epsilon: 1e-8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if a.Deliveries != b.Deliveries || a.Time != b.Time || a.Converged != b.Converged {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Fatalf("final state %d differs: %v vs %v", i, a.Final[i], b.Final[i])
		}
	}
}

func TestAsyncValidityEnvelope(t *testing.T) {
	// States must never leave the initial fault-free hull, even under an
	// extreme liar (async validity).
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), Config{
		G: g, F: 1, Faulty: nodeset.FromMembers(7, 2),
		Initial: []float64{3, 0, 100, 7, 5, 1, 4}, // faulty node 2's input irrelevant
		Rule:    core.TrimmedMean{},
		Adversary: adversary.Extremes{
			Amplitude: 1e6,
		},
		Delays:    &Uniform{B: 3, Rng: rand.New(rand.NewSource(10))},
		MaxRounds: 300, Epsilon: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free hull: [0, 7].
	for _, p := range tr.History {
		if p.Range > 7+1e-9 {
			t.Fatalf("range %v exceeded initial envelope 7", p.Range)
		}
	}
	faultFree := nodeset.FromMembers(7, 0, 1, 3, 4, 5, 6)
	faultFree.ForEach(func(i int) bool {
		if tr.Final[i] < -1e-9 || tr.Final[i] > 7+1e-9 {
			t.Errorf("node %d final %v outside [0,7]", i, tr.Final[i])
		}
		return true
	})
	if !tr.Converged {
		t.Error("should converge")
	}
}

func TestAsyncLockstepMatchesIntuition(t *testing.T) {
	// Fixed equal delays degrade asynchrony to round-robin lockstep; the
	// run must converge to the same consensus value neighborhood as sync.
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), Config{
		G: g, F: 0, Initial: []float64{0, 1, 2, 3, 4}, Rule: core.TrimmedMean{},
		Delays: Fixed{D: 1}, MaxRounds: 50, Epsilon: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatal("lockstep async should converge")
	}
	// K5 mean: fixpoint is the average 2.
	for i := 0; i < 5; i++ {
		if math.Abs(tr.Final[i]-2) > 1e-6 {
			t.Errorf("node %d final %v, want ≈ 2", i, tr.Final[i])
		}
	}
}

func TestMinRound(t *testing.T) {
	tr := &Trace{Rounds: []int{5, 3, 9}}
	ff := nodeset.FromMembers(3, 0, 2)
	if got := tr.MinRound(ff); got != 5 {
		t.Errorf("MinRound = %d, want 5", got)
	}
}

func TestFaultyTickDefault(t *testing.T) {
	// FaultyTick 0 must not hang (defaults to 1.0).
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), Config{
		G: g, F: 1, Faulty: nodeset.FromMembers(7, 1),
		Initial: initialRamp(7), Rule: core.TrimmedMean{},
		Adversary: adversary.Fixed{Value: 42}, Delays: Fixed{D: 0.5},
		MaxRounds: 40, Epsilon: 1e-8, FaultyTick: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged && tr.Stalled {
		t.Fatal("default tick stalled the run")
	}
}

func TestHistoryDecimation(t *testing.T) {
	// A long fault-free run with Epsilon = 0 produces one state change per
	// node round; undecimated recording grows without bound, decimated
	// recording must stay near changes/k while keeping the exact endpoints.
	g, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		G: g, F: 0, Initial: initialRamp(6), Rule: core.TrimmedMean{},
		Delays: Fixed{D: 1}, MaxRounds: 400,
	}
	full, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	changes := len(full.History) - 1 // minus the t=0 point
	if changes < 2000 {
		t.Fatalf("test needs a long run; got only %d state changes", changes)
	}

	const k = 100
	dec := base
	dec.HistoryEvery = k
	decTr, err := Run(context.Background(), dec)
	if err != nil {
		t.Fatal(err)
	}
	// Memory cap: every k-th change, the t=0 point, plus the always-kept
	// final change.
	if max := changes/k + 2; len(decTr.History) > max {
		t.Fatalf("decimated history has %d points, want ≤ %d", len(decTr.History), max)
	}
	first, last := decTr.History[0], decTr.History[len(decTr.History)-1]
	wantFirst, wantLast := full.History[0], full.History[len(full.History)-1]
	if first != wantFirst {
		t.Errorf("first point %+v, want %+v", first, wantFirst)
	}
	if last != wantLast {
		t.Errorf("final point %+v, want %+v", last, wantLast)
	}
	// Every decimated point must appear in the full history (same run, just
	// sampled).
	idx := 0
	for _, pt := range decTr.History {
		for idx < len(full.History) && full.History[idx] != pt {
			idx++
		}
		if idx == len(full.History) {
			t.Fatalf("decimated point %+v not found in full history", pt)
		}
	}
	// The run outcome is untouched by decimation.
	if decTr.Time != full.Time || decTr.Deliveries != full.Deliveries {
		t.Errorf("decimation changed the run: time %v/%v deliveries %d/%d",
			decTr.Time, full.Time, decTr.Deliveries, full.Deliveries)
	}
	for i := range full.Final {
		if math.Float64bits(decTr.Final[i]) != math.Float64bits(full.Final[i]) {
			t.Fatalf("final state changed under decimation at node %d", i)
		}
	}

	// HistoryEvery 0 and 1 are both full resolution.
	one := base
	one.HistoryEvery = 1
	oneTr, err := Run(context.Background(), one)
	if err != nil {
		t.Fatal(err)
	}
	if len(oneTr.History) != len(full.History) {
		t.Errorf("HistoryEvery=1: %d points, want %d", len(oneTr.History), len(full.History))
	}

	// The convergence-triggering point is always recorded, ending the
	// decimated history exactly where the full one ends.
	conv := base
	conv.Epsilon = 1e-6
	convFull, err := Run(context.Background(), conv)
	if err != nil {
		t.Fatal(err)
	}
	convDec := conv
	convDec.HistoryEvery = k
	convDecTr, err := Run(context.Background(), convDec)
	if err != nil {
		t.Fatal(err)
	}
	if !convDecTr.Converged {
		t.Fatal("decimated run must still converge")
	}
	if got, want := convDecTr.History[len(convDecTr.History)-1], convFull.History[len(convFull.History)-1]; got != want {
		t.Errorf("decimated convergence point %+v, want %+v", got, want)
	}

	bad := base
	bad.HistoryEvery = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative HistoryEvery must be rejected")
	}
}
