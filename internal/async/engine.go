package async

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/quorum"
)

// Config describes one asynchronous run.
type Config struct {
	// G is the communication graph.
	G *graph.Graph
	// F is the fault-tolerance parameter.
	F int
	// Faulty is the actual fault set (|Faulty| ≤ F for guarantees).
	Faulty nodeset.Set
	// Initial holds v_i[0], length G.N().
	Initial []float64
	// Rule is the update rule; core.TrimmedMean realizes the Section 7
	// algorithm when fed the |N⁻_i|−F quorum vector.
	Rule core.UpdateRule
	// Adversary decides faulty transmissions; omitted receivers genuinely
	// receive nothing (unlike the synchronous engine). May be nil iff
	// Faulty is empty.
	Adversary adversary.Strategy
	// Delays assigns per-message delays. Required.
	Delays DelayPolicy
	// MaxRounds caps every node's round counter.
	MaxRounds int
	// Epsilon, when > 0, stops once the fault-free range is ≤ Epsilon.
	Epsilon float64
	// FaultyTick is the interval at which faulty nodes emit their round-k
	// message batches (they are not bound by the protocol; a tick of 0
	// defaults to 1.0).
	FaultyTick float64
	// HistoryEvery decimates Trace.History for long runs: when > 1 only
	// every k-th state change is recorded (the initial point, the
	// convergence-triggering change, and the final change are always kept),
	// bounding history memory at roughly changes/k points instead of one
	// point per state change. 0 or 1 records every change — the default,
	// preserving the full-resolution behavior for short runs.
	HistoryEvery int
	// OnRange, when non-nil, is invoked after every fault-free state change
	// with the simulation time and the fault-free range — streaming progress
	// independent of (and undecimated by) HistoryEvery. It runs on the event
	// loop, so it must be fast and must not block.
	OnRange func(time, rng float64)
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.G == nil {
		return errors.New("async: nil graph")
	}
	n := c.G.N()
	if len(c.Initial) != n {
		return fmt.Errorf("async: len(Initial) = %d, want n = %d", len(c.Initial), n)
	}
	if c.Rule == nil {
		return errors.New("async: nil update rule")
	}
	if c.Delays == nil {
		return errors.New("async: nil delay policy")
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("async: MaxRounds must be ≥ 1, got %d", c.MaxRounds)
	}
	if c.F < 0 {
		return fmt.Errorf("async: negative F %d", c.F)
	}
	if c.HistoryEvery < 0 {
		return fmt.Errorf("async: negative HistoryEvery %d", c.HistoryEvery)
	}
	if c.Faulty.Cap() != 0 && c.Faulty.Cap() != n {
		return fmt.Errorf("async: Faulty set capacity %d does not match n = %d", c.Faulty.Cap(), n)
	}
	if !c.faulty().Empty() && c.Adversary == nil {
		return errors.New("async: faulty nodes configured but Adversary is nil")
	}
	if c.faulty().Count() == n {
		return errors.New("async: all nodes faulty")
	}
	var err error
	c.faulty().Complement().ForEach(func(i int) bool {
		quorum := c.G.InDegree(i) - c.F
		if e := c.Rule.Validate(quorum, c.F); e != nil {
			err = fmt.Errorf("async: node %d (in-degree %d, quorum %d): %w", i, c.G.InDegree(i), quorum, e)
			return false
		}
		return true
	})
	return err
}

func (c *Config) faulty() nodeset.Set {
	if c.Faulty.Cap() == 0 {
		return nodeset.New(c.G.N())
	}
	return c.Faulty
}

// RangePoint samples the fault-free range at a simulation time.
type RangePoint struct {
	Time  float64
	Range float64
}

// Trace records an asynchronous run.
type Trace struct {
	// Converged reports whether the Epsilon stop fired.
	Converged bool
	// Stalled is true if the event queue drained while some fault-free node
	// had not reached MaxRounds and Epsilon had not fired — progress
	// starvation (e.g. more than F silent faulty in-neighbors).
	Stalled bool
	// Time is the simulation time at which the run ended.
	Time float64
	// Deliveries counts messages delivered.
	Deliveries int
	// Rounds[i] is node i's final round counter.
	Rounds []int
	// Final is the final state vector (faulty entries are their initial
	// values — the engine does not model faulty internal state).
	Final []float64
	// History samples the fault-free range after state changes: every
	// change by default, every k-th (plus the final one) under
	// Config.HistoryEvery decimation.
	History []RangePoint
	// InitialRange is U[0] − µ[0] over fault-free nodes.
	InitialRange float64
}

// MinRound returns the smallest round counter among fault-free nodes.
func (t *Trace) MinRound(faultFree nodeset.Set) int {
	min := math.MaxInt
	faultFree.ForEach(func(i int) bool {
		if t.Rounds[i] < min {
			min = t.Rounds[i]
		}
		return true
	})
	return min
}

// event kinds.
const (
	evArrival = iota // a message reaches its receiver
	evEmit           // a faulty node emits its round-k batch
)

type event struct {
	at   float64
	seq  int64 // FIFO tie-break for determinism
	kind int

	from, to int
	round    int
	value    float64
}

// cancelCheckEvery is the event-batch granularity of Run's cancellation
// checks: ctx.Err() is consulted once per this many popped events, keeping
// the per-event cost of cancellation support at one counter increment.
const cancelCheckEvery = 256

// Run executes the asynchronous simulation to completion.
//
// The pending-event set lives in a bucketed calendar queue (see
// calendarQueue): O(1) amortized push/pop and no per-event allocation, with
// the delivery order — earliest time first, FIFO among ties — pinned
// identical to the container/heap reference by the differential suite.
//
// ctx is checked at event-batch granularity (every cancelCheckEvery popped
// events), so cancellation returns promptly without taxing the per-event
// hot path. On cancellation the error wraps ctx.Err() together with the
// simulation time reached and the deliveries processed.
func Run(ctx context.Context, cfg Config) (*Trace, error) {
	return runOnQueue(ctx, cfg, newCalendarQueue())
}

// runOnQueue is Run over an explicit event queue — the seam the
// calendar-vs-heap conformance tests replay identical configurations
// through.
func runOnQueue(ctx context.Context, cfg Config, q eventPQ) (*Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	faulty := cfg.faulty()
	faultFree := faulty.Complement()
	tick := cfg.FaultyTick
	if tick == 0 {
		tick = 1.0
	}

	states := make([]float64, n)
	copy(states, cfg.Initial)
	rounds := make([]int, n)
	// Flat ring-buffer inboxes (first arrival per (from, round) wins),
	// allocated only for fault-free receivers — faulty receivers discard.
	// The ring lives in internal/quorum, shared with the real node actors.
	inbox := make([]*quorum.Ring, n)
	maxDeg := 0
	faultFree.ForEach(func(i int) bool {
		inbox[i] = quorum.NewRing(cfg.G.InDegree(i))
		if d := cfg.G.InDegree(i); d > maxDeg {
			maxDeg = d
		}
		return true
	})
	recvBuf := make([]core.ValueFrom, 0, maxDeg)
	buffered, _ := cfg.Rule.(core.BufferedRule)
	var scratch core.Scratch

	var seq int64
	push := func(e event) {
		e.seq = seq
		seq++
		q.push(e)
	}

	// send schedules the arrival of one round-tagged message.
	send := func(now float64, from, to, round int, value float64) {
		push(event{
			at:    now + cfg.Delays.Delay(from, to, round),
			kind:  evArrival,
			from:  from,
			to:    to,
			round: round,
			value: value,
		})
	}
	// EdgeWriter fast path: probed once, scattered through a reused sink so
	// faulty emissions allocate no per-batch map.
	ew, _ := cfg.Adversary.(adversary.EdgeWriter)
	esink := emitSink{send: send}

	lo, hi := faultFreeRange(states, faultFree)
	tr := &Trace{
		Rounds:       rounds,
		InitialRange: hi - lo,
		History:      []RangePoint{{Time: 0, Range: hi - lo}},
	}

	// Kick-off: fault-free nodes broadcast their round-0 state; faulty nodes
	// get an emit event per tick.
	faultFree.ForEach(func(i int) bool {
		for _, to := range cfg.G.OutNeighbors(i) {
			send(0, i, to, 0, states[i])
		}
		return true
	})
	faulty.ForEach(func(s int) bool {
		push(event{at: 0, kind: evEmit, from: s, round: 0})
		return true
	})

	// quorumOf[i] = |N⁻_i| − F: how many round-t values node i waits for.
	quorumOf := make([]int, n)
	for i := 0; i < n; i++ {
		quorumOf[i] = quorum.Count(cfg.G.InDegree(i), cfg.F)
	}

	// History decimation: with HistoryEvery = k > 1, only every k-th state
	// change is appended; the last skipped point is kept pending so the
	// history always ends at the final state change regardless of k.
	histEvery := cfg.HistoryEvery
	if histEvery < 1 {
		histEvery = 1
	}
	var (
		changes    int
		pending    RangePoint
		pendingSet bool
	)
	recordRange := func(now float64) bool {
		lo, hi := faultFreeRange(states, faultFree)
		pt := RangePoint{Time: now, Range: hi - lo}
		if cfg.OnRange != nil {
			cfg.OnRange(pt.Time, pt.Range)
		}
		converged := cfg.Epsilon > 0 && pt.Range <= cfg.Epsilon
		if changes%histEvery == 0 || converged {
			tr.History = append(tr.History, pt)
			pendingSet = false
		} else {
			pending, pendingSet = pt, true
		}
		changes++
		if converged {
			tr.Converged = true
			return true
		}
		return false
	}

	var runErr error
	var popped int
	for q.len() > 0 && !tr.Converged && runErr == nil {
		if popped%cancelCheckEvery == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("async: run canceled at t=%.6g after %d deliveries: %w",
				tr.Time, tr.Deliveries, context.Cause(ctx))
		}
		popped++
		e, _ := q.pop()
		tr.Time = e.at
		switch e.kind {
		case evEmit:
			emitFaulty(&cfg, e, states, faultFree, send, ew, &esink)
			if e.round+1 <= cfg.MaxRounds {
				push(event{at: e.at + tick, kind: evEmit, from: e.from, round: e.round + 1})
			}

		case evArrival:
			tr.Deliveries++
			i := e.to
			if !faultFree.Contains(i) {
				// Faulty receivers discard; their behavior is the
				// adversary's, not the protocol's.
				continue
			}
			if e.round < rounds[i] {
				continue // stale
			}
			ins := cfg.G.InView(i)
			pos := sort.SearchInts(ins, e.from)
			if !inbox[i].Put(e.round, pos, e.value) {
				continue // duplicates (equivocating re-sends) are dropped
			}

			// Advance as many rounds as the inbox now supports. The node
			// moves the moment the quorum fills, so received usually holds
			// exactly quorum[i] values; buffered later rounds can hold more
			// (the rule tolerates that).
			for rounds[i] < cfg.MaxRounds {
				if inbox[i].Filled(rounds[i]) < quorumOf[i] {
					break
				}
				// Slot positions are aligned with the sorted in-neighbor
				// list, so received comes out in ascending sender order —
				// deterministic with no sort.
				received := inbox[i].Gather(rounds[i], ins, recvBuf[:0])
				var v float64
				var err error
				if buffered != nil {
					v, err = buffered.UpdateInto(&scratch, states[i], received, cfg.F)
				} else {
					v, err = cfg.Rule.Update(states[i], received, cfg.F)
				}
				if err != nil {
					runErr = fmt.Errorf("async: node %d round %d: %w", i, rounds[i], err)
					break
				}
				inbox[i].Pop()
				states[i] = v
				rounds[i]++
				for _, to := range cfg.G.OutView(i) {
					send(e.at, i, to, rounds[i], states[i])
				}
				if recordRange(e.at) {
					break
				}
			}
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	if pendingSet {
		// The run ended between decimation samples: append the final state
		// change so History's last point matches the undecimated run's.
		tr.History = append(tr.History, pending)
	}

	if !tr.Converged && tr.MinRound(faultFree) < cfg.MaxRounds {
		tr.Stalled = true
	}
	tr.Final = states
	return tr, nil
}

// emitSink adapts the event-queue send to adversary.EdgeSink for one faulty
// emission at a time: each Send schedules the arrival on the sender's k-th
// out-edge. Edges the strategy skips get no event — asynchronous silence.
type emitSink struct {
	send  func(now float64, from, to, round int, value float64)
	outs  []int
	now   float64
	from  int
	round int
}

// Send implements adversary.EdgeSink.
func (s *emitSink) Send(k int, value float64) {
	s.send(s.now, s.from, s.outs[k], s.round, value)
}

// emitFaulty schedules one faulty node's round-k batch according to the
// adversary strategy, through the EdgeWriter fast path when available.
func emitFaulty(cfg *Config, e event, states []float64, faultFree nodeset.Set, send func(now float64, from, to, round int, value float64), ew adversary.EdgeWriter, esink *emitSink) {
	lo, hi := faultFreeRange(states, faultFree)
	view := adversary.RoundView{
		Round:  e.round,
		G:      cfg.G,
		F:      cfg.F,
		Faulty: cfg.faulty(),
		States: states,
		Lo:     lo,
		Hi:     hi,
	}
	if ew != nil {
		esink.outs = cfg.G.OutView(e.from)
		esink.now, esink.from, esink.round = e.at, e.from, e.round
		ew.WriteMessages(view, e.from, esink)
		return
	}
	msgs := cfg.Adversary.Messages(view, e.from)
	for _, to := range cfg.G.OutView(e.from) {
		if v, ok := msgs[to]; ok {
			send(e.at, e.from, to, e.round, v)
		}
		// Omitted receivers genuinely get nothing: asynchronous silence.
	}
}

func faultFreeRange(states []float64, faultFree nodeset.Set) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	faultFree.ForEach(func(i int) bool {
		if states[i] < lo {
			lo = states[i]
		}
		if states[i] > hi {
			hi = states[i]
		}
		return true
	})
	return lo, hi
}
