package async

import (
	"context"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// allocsConfig is the fixture for the allocation gates: a K7 run with one
// EdgeWriter adversary, no Epsilon stop (it always runs to MaxRounds), and
// history decimation wide enough that the History slice never grows during
// the measured window.
func allocsConfig(t *testing.T, rounds int) Config {
	t.Helper()
	g, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		G: g, F: 1, Faulty: nodeset.FromMembers(7, 6),
		Initial: initialRamp(7), Rule: core.TrimmedMean{},
		Adversary:    adversary.Fixed{Value: 1e4},
		Delays:       Fixed{D: 1},
		MaxRounds:    rounds,
		HistoryEvery: 1 << 20,
	}
}

// TestAsyncEventLoopZeroSteadyStateAllocs is the calendar-queue counterpart
// of the engines' differential allocs gate: a run with 4× the rounds must
// allocate exactly as much as the short run (setup only). The
// container/heap reference cannot pass this — heap.Push boxes every event
// into an interface value, one allocation per scheduled message — which the
// second half of the test demonstrates to keep the gate honest.
func TestAsyncEventLoopZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates nondeterministically")
	}
	measure := func(rounds int, mk func() eventPQ) float64 {
		return testing.AllocsPerRun(5, func() {
			tr, err := runOnQueue(context.Background(), allocsConfig(t, rounds), mk())
			if err != nil {
				t.Fatal(err)
			}
			if tr.Converged {
				t.Fatal("allocs fixture unexpectedly converged")
			}
		})
	}

	calShort := measure(100, func() eventPQ { return newCalendarQueue() })
	calLong := measure(400, func() eventPQ { return newCalendarQueue() })
	if calLong > calShort {
		t.Errorf("calendar-queue event loop allocates in steady state: %.1f allocs at 100 rounds vs %.1f at 400 (≈%.3f/round)",
			calShort, calLong, (calLong-calShort)/300)
	}

	heapShort := measure(100, func() eventPQ { return newHeapQueue() })
	heapLong := measure(400, func() eventPQ { return newHeapQueue() })
	if heapLong <= heapShort {
		t.Errorf("heap reference no longer allocates per event (%.1f at 100 rounds vs %.1f at 400); the differential gate has lost its discriminating power",
			heapShort, heapLong)
	}
}

// TestCalendarQueueWarmOpsAllocFree pins the queue-level half of the
// contract directly: once bucket capacities are warm, push and pop allocate
// nothing.
func TestCalendarQueueWarmOpsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates nondeterministically")
	}
	q := newCalendarQueue()
	// Warm: drive occupancy past the final steady-state level, then drain
	// back so the measured window reuses existing bucket capacity.
	var seq int64
	for i := 0; i < 256; i++ {
		q.push(event{at: float64(i % 17), seq: seq})
		seq++
	}
	for i := 0; i < 192; i++ {
		q.pop()
	}
	at := 17.0
	allocs := testing.AllocsPerRun(100, func() {
		q.push(event{at: at, seq: seq})
		seq++
		at += 0.25
		if _, ok := q.pop(); !ok {
			t.Fatal("warm queue empty")
		}
	})
	if allocs != 0 {
		t.Errorf("warm push/pop cycle allocates %.1f per op, want 0", allocs)
	}
}
